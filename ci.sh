#!/bin/sh
# Tier-1 gate: full build, the complete test suite at the sequential
# oracle (CMO_JOBS=1), then again at a worker pool (CMO_JOBS=4) with
# the between-phase IL verifier enabled (CMO_CHECK=1), the
# incremental-cache smoke benchmark, the parallel-determinism smoke
# benchmark (li personality, sharded; exits nonzero if any worker
# count's image, objects or cached bytes diverge from the j=1
# oracle), the fixed-seed differential-fuzz campaign smoke (any
# divergence from the reference interpreter is shrunk, saved under
# test/corpus/, and fails the gate), and the traced-build smoke (a
# --trace build must be byte-identical to a plain one and emit a
# Chrome-trace JSON that parses, has balanced spans, and names every
# pipeline stage), and the crash-point sweep smoke (every I/O
# operation of a small cold build is crashed in turn; each recovery
# build must be byte-identical to a never-faulted oracle, and every
# non-crash fault kind must degrade gracefully).  The fault test
# suite also reruns alone at a fixed fuzz seed so the corruption
# property is reproducible in CI logs.  Run from the repository
# root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest (CMO_JOBS=1) =="
CMO_JOBS=1 dune runtest --force

echo "== dune runtest (CMO_JOBS=4, CMO_CHECK=1) =="
CMO_JOBS=4 CMO_CHECK=1 dune runtest --force

echo "== incremental cache smoke =="
dune exec bench/main.exe -- incremental-smoke

echo "== parallel determinism smoke =="
dune exec bench/main.exe -- parallel-smoke

echo "== differential fuzz smoke (seed 1) =="
dune exec bench/main.exe -- fuzz-smoke

echo "== traced build smoke =="
dune exec bench/main.exe -- trace-smoke

echo "== crash-point sweep smoke =="
dune exec bench/main.exe -- fault-sweep-smoke

echo "== fault suite (fixed seed) =="
CMO_JOBS=1 CMO_FUZZ_SEED=1 dune exec test/test_main.exe -- test fault

echo "CI OK"
