#!/bin/sh
# Tier-1 gate: full build, the complete test suite at the sequential
# oracle (CMO_JOBS=1), then again at a worker pool (CMO_JOBS=4) with
# the between-phase IL verifier enabled (CMO_CHECK=1), the
# incremental-cache smoke benchmark, the parallel-determinism smoke
# benchmark (li personality, sharded; exits nonzero if any worker
# count's image, objects or cached bytes diverge from the j=1
# oracle), the fixed-seed differential-fuzz campaign smoke (any
# divergence from the reference interpreter is shrunk, saved under
# test/corpus/, and fails the gate), and the traced-build smoke (a
# --trace build must be byte-identical to a plain one and emit a
# Chrome-trace JSON that parses, has balanced spans, and names every
# pipeline stage), and the crash-point sweep smoke (every I/O
# operation of a small cold build is crashed in turn; each recovery
# build must be byte-identical to a never-faulted oracle, and every
# non-crash fault kind must degrade gracefully).  The fault test
# suite also reruns alone at a fixed fuzz seed so the corruption
# property is reproducible in CI logs.  Finally the build server is
# exercised twice: the in-process edit-storm smoke (concurrent
# clients held byte-identical to one-shot builds, warm-cache hit
# rate rising, per-request crash isolation), and a process-level
# cmocd smoke — daemon start, concurrent cmoc --remote builds at j=1
# and j=4 compared against a local one-shot, one $CMO_FAULT chaos
# request that must fail alone, and a SIGTERM shutdown that must
# remove the socket.  The distributed build is gated the same way:
# the dist-smoke benchmark (partition jobs on worker processes and a
# remote artifact cache, all held byte-identical to the one-shot
# oracle), then a process-level smoke — cmocd as the remote cache,
# two checkouts built with cmoc build --dist at j=2, one worker
# SIGKILLed mid-protocol via $CMO_DIST_CHAOS, object files compared
# byte-for-byte across all three builds, and a SIGTERM teardown that
# must remove both the socket and the pid file.  Fleet-scale profile
# ingestion is gated twice: the pgo-smoke benchmark (sampling x
# staleness sweep with the hot-set overlap metric, arrival-order
# determinism, and the poisoning clamp), and a process-level ingest
# smoke (eight shards including one corrupted and one version-skewed;
# ingest must skip-and-count, two arrival orders must produce
# byte-identical merged databases, and PBO builds from both must
# agree).  Profile cohorts are gated the same way: the canary-smoke
# benchmark (divergence x sampling sweep with the would-flip verdict,
# the divergence-0 identity law, and registry arrival-order
# permutation), and a process-level canary smoke — a live cmocd holds
# a stable cohort and two canary cohorts fed from the arms of an A/B
# fleet; the diff against the divergent arm must report FLIP (and
# --fail-on-flip must exit nonzero), the diff against the identical
# arm must report no-flip, and a cohort pull must be byte-identical
# to a local ingest of the same shards.  The multi-machine transport
# is gated by a TCP worker-fleet smoke: two cmoc-worker --listen
# processes on loopback ephemeral ports serve a cmoc build --dist
# --workers over real sockets, a second build severs the network with
# a sticky $CMO_NET_FAULT partition mid-protocol, and every object
# file of both fleet builds must match a never-distributed local
# oracle byte for byte before the workers are torn down.  Run from
# the repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest (CMO_JOBS=1) =="
CMO_JOBS=1 dune runtest --force

echo "== dune runtest (CMO_JOBS=4, CMO_CHECK=1) =="
CMO_JOBS=4 CMO_CHECK=1 dune runtest --force

echo "== incremental cache smoke =="
dune exec bench/main.exe -- incremental-smoke

echo "== parallel determinism smoke =="
dune exec bench/main.exe -- parallel-smoke

echo "== differential fuzz smoke (seed 1) =="
dune exec bench/main.exe -- fuzz-smoke

echo "== traced build smoke =="
dune exec bench/main.exe -- trace-smoke

echo "== crash-point sweep smoke =="
dune exec bench/main.exe -- fault-sweep-smoke

echo "== fleet PGO smoke (sampling x staleness sweep) =="
dune exec bench/main.exe -- pgo-smoke

echo "== canary flip smoke (divergence x sampling sweep) =="
dune exec bench/main.exe -- canary-smoke

echo "== fault suite (fixed seed) =="
CMO_JOBS=1 CMO_FUZZ_SEED=1 dune exec test/test_main.exe -- test fault

echo "== edit-storm smoke (in-process daemon, concurrent clients) =="
dune exec bench/main.exe -- storm-smoke

echo "== cmocd daemon smoke (process level) =="
CMOC=_build/default/bin/cmoc.exe
CMOCD=_build/default/bin/cmocd.exe
SMOKE_DIR=$(mktemp -d)
CMOCD_PID=
DIST_DIR=
DIST_PID=
PROF_DIR=
COHORT_PID=
FLEET_DIR=
W1_PID=
W2_PID=
cleanup() {
  [ -n "$CMOCD_PID" ] && kill "$CMOCD_PID" 2>/dev/null || true
  [ -n "$DIST_PID" ] && kill "$DIST_PID" 2>/dev/null || true
  [ -n "$COHORT_PID" ] && kill "$COHORT_PID" 2>/dev/null || true
  [ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null || true
  [ -n "$W2_PID" ] && kill "$W2_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
  [ -n "$DIST_DIR" ] && rm -rf "$DIST_DIR"
  [ -n "$PROF_DIR" ] && rm -rf "$PROF_DIR"
  [ -n "$FLEET_DIR" ] && rm -rf "$FLEET_DIR"
}
trap cleanup EXIT INT TERM
mkdir -p "$SMOKE_DIR/src"
"$CMOC" gen --bench storm --dir "$SMOKE_DIR/src"
SOCK="$SMOKE_DIR/cmocd.sock"
"$CMOCD" --socket "$SOCK" --state-dir "$SMOKE_DIR/state" -j 2 &
CMOCD_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$SOCK" ] || { echo "cmocd never came up"; exit 1; }

# Local one-shot oracle, then concurrent remote builds at j=1 and
# j=4: all three must run to the same output (the remote path relinks
# byte-identical objects).
"$CMOC" compile -O 4 -j 1 --run --input 64,3 "$SMOKE_DIR"/src/*.mc \
  > "$SMOKE_DIR/local.out"
"$CMOC" compile -O 4 -j 1 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/remote1.out" &
R1=$!
"$CMOC" compile -O 4 -j 4 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/remote4.out" &
R4=$!
wait "$R1"
wait "$R4"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/remote1.out"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/remote4.out"

# Chaos: a per-request $CMO_FAULT crash plan must fail that request
# only — the daemon keeps serving, byte-identically.
if CMO_FAULT=crash@2,seed=7 "$CMOC" compile -O 4 --remote --socket "$SOCK" \
  "$SMOKE_DIR"/src/*.mc >/dev/null 2>&1; then
  echo "daemon smoke: crash-plan request unexpectedly succeeded"
  exit 1
fi
"$CMOC" compile -O 4 -j 1 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/retry.out"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/retry.out"

# Graceful shutdown: SIGTERM drains and removes the socket file.
kill -TERM "$CMOCD_PID"
wait "$CMOCD_PID" || true
CMOCD_PID=
if [ -S "$SOCK" ]; then
  echo "daemon smoke: socket left behind after shutdown"
  exit 1
fi
echo "daemon smoke OK"

echo "== fleet profile ingest smoke (process level) =="
# Eight shards — six current at 1/2 sampling, one recorded against
# edited sources (version skew), one current at full rate — with the
# first record's frame magic destroyed in flight.  Ingest must skip
# and count exactly the casualty, down-weight the skewed shard, and
# produce a database byte-identical to ingesting the same surviving
# shards appended in a different order; PBO builds from both merged
# databases must agree output-for-output.
PROF_DIR=$(mktemp -d)
mkdir -p "$PROF_DIR/src"
"$CMOC" gen --bench li --dir "$PROF_DIR/src"
"$CMOC" train -o "$PROF_DIR/app.prof" --input 1000,17 "$PROF_DIR"/src/*.mc \
  > /dev/null
FP=$("$CMOC" profile fingerprint "$PROF_DIR"/src/*.mc)
# A previous source version: same profile, different fingerprint.
cp -r "$PROF_DIR/src" "$PROF_DIR/src-old"
printf '\n' >> "$(ls "$PROF_DIR"/src-old/*.mc | head -1)"
for k in 1 2 3 4 5 6; do
  "$CMOC" profile shard --profile "$PROF_DIR/app.prof" --sample-rate 0.5 \
    -o "$PROF_DIR/fleetA.shards" "$PROF_DIR"/src/*.mc > /dev/null
done
"$CMOC" profile shard --profile "$PROF_DIR/app.prof" --age 1 \
  -o "$PROF_DIR/fleetA.shards" "$PROF_DIR"/src-old/*.mc > /dev/null
"$CMOC" profile shard --profile "$PROF_DIR/app.prof" \
  -o "$PROF_DIR/fleetA.shards" "$PROF_DIR"/src/*.mc > /dev/null
# Corrupt the first shard's frame magic.
printf 'XXXX' | dd of="$PROF_DIR/fleetA.shards" bs=1 conv=notrunc 2>/dev/null
"$CMOC" profile ingest --fp "$FP" -o "$PROF_DIR/fleetA.prof" \
  "$PROF_DIR/fleetA.shards" > "$PROF_DIR/ingestA.out"
cat "$PROF_DIR/ingestA.out"
grep -q "ingested 7 shards (1 skipped, 1 skewed, 0 clamped" \
  "$PROF_DIR/ingestA.out" || {
  echo "ingest smoke: unexpected ingest accounting"
  exit 1
}
# The same surviving shards, appended in a different order.
"$CMOC" profile shard --profile "$PROF_DIR/app.prof" \
  -o "$PROF_DIR/fleetB.shards" "$PROF_DIR"/src/*.mc > /dev/null
"$CMOC" profile shard --profile "$PROF_DIR/app.prof" --age 1 \
  -o "$PROF_DIR/fleetB.shards" "$PROF_DIR"/src-old/*.mc > /dev/null
for k in 1 2 3 4 5; do
  "$CMOC" profile shard --profile "$PROF_DIR/app.prof" --sample-rate 0.5 \
    -o "$PROF_DIR/fleetB.shards" "$PROF_DIR"/src/*.mc > /dev/null
done
"$CMOC" profile ingest --fp "$FP" -o "$PROF_DIR/fleetB.prof" \
  "$PROF_DIR/fleetB.shards" > /dev/null
cmp "$PROF_DIR/fleetA.prof" "$PROF_DIR/fleetB.prof" || {
  echo "ingest smoke: arrival order changed the merged database"
  exit 1
}
"$CMOC" compile -O 4 -P --profile "$PROF_DIR/fleetA.prof" --run \
  --input 1000,17 "$PROF_DIR"/src/*.mc > "$PROF_DIR/buildA.out"
"$CMOC" compile -O 4 -P --profile "$PROF_DIR/fleetB.prof" --run \
  --input 1000,17 "$PROF_DIR"/src/*.mc > "$PROF_DIR/buildB.out"
cmp "$PROF_DIR/buildA.out" "$PROF_DIR/buildB.out"
echo "ingest smoke OK"

echo "== profile cohort canary smoke (process level) =="
# Two A/B arms with a planted full-rank divergence, three cohorts on
# a live daemon: stable (arm A), canary (the divergent arm B), and
# canary-same (arm A again).  The diff against canary must report a
# FLIP and --fail-on-flip must turn it into a nonzero exit; the diff
# against canary-same must report no-flip; and a daemon-side cohort
# pull must be byte-identical to a local ingest of the same shards.
"$CMOC" profile ab --profile "$PROF_DIR/app.prof" --divergence 1.0 \
  --users 30 -a "$PROF_DIR/armA.shards" -b "$PROF_DIR/armB.shards" \
  "$PROF_DIR"/src/*.mc > /dev/null
CSOCK="$PROF_DIR/cmocd.sock"
"$CMOCD" --socket "$CSOCK" --state-dir "$PROF_DIR/state" -j 2 &
COHORT_PID=$!
i=0
while [ ! -S "$CSOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$CSOCK" ] || { echo "cmocd (cohort) never came up"; exit 1; }
"$CMOC" profile cohort create stable --socket "$CSOCK"
"$CMOC" profile cohort ingest stable "$PROF_DIR/armA.shards" \
  --socket "$CSOCK"
"$CMOC" profile cohort ingest canary "$PROF_DIR/armB.shards" \
  --socket "$CSOCK"
"$CMOC" profile cohort ingest canary-same "$PROF_DIR/armA.shards" \
  --socket "$CSOCK"
"$CMOC" profile cohort list --socket "$CSOCK" > "$PROF_DIR/cohorts.out"
for name in stable canary canary-same; do
  grep -q "$name" "$PROF_DIR/cohorts.out" || {
    echo "canary smoke: cohort $name missing from the listing"
    exit 1
  }
done
"$CMOC" profile cohort diff stable canary --socket "$CSOCK" \
  "$PROF_DIR"/src/*.mc > "$PROF_DIR/flip.out"
cat "$PROF_DIR/flip.out"
grep -q "cohort-diff: FLIP" "$PROF_DIR/flip.out" || {
  echo "canary smoke: planted divergence not detected"
  exit 1
}
if "$CMOC" profile cohort diff stable canary --fail-on-flip \
  --socket "$CSOCK" "$PROF_DIR"/src/*.mc > /dev/null 2>&1; then
  echo "canary smoke: --fail-on-flip exited zero on a flip"
  exit 1
fi
"$CMOC" profile cohort diff stable canary-same --socket "$CSOCK" \
  "$PROF_DIR"/src/*.mc > "$PROF_DIR/same.out"
grep -q "cohort-diff: no-flip" "$PROF_DIR/same.out" || {
  echo "canary smoke: identical arms reported a flip"
  exit 1
}
"$CMOC" profile pull -o "$PROF_DIR/pulled.prof" --cohort stable \
  --fp "$FP" --socket "$CSOCK" > /dev/null
"$CMOC" profile ingest --fp "$FP" -o "$PROF_DIR/localA.prof" \
  "$PROF_DIR/armA.shards" > /dev/null
cmp "$PROF_DIR/pulled.prof" "$PROF_DIR/localA.prof" || {
  echo "canary smoke: daemon pull diverged from a local ingest"
  exit 1
}
kill -TERM "$COHORT_PID"
wait "$COHORT_PID" || true
COHORT_PID=
if [ -S "$CSOCK" ]; then
  echo "canary smoke: socket left behind after shutdown"
  exit 1
fi
echo "canary smoke OK"

echo "== distributed CMO smoke (dist-smoke bench) =="
dune exec bench/main.exe -- dist-smoke

echo "== distributed build smoke (process level) =="
DIST_DIR=$(mktemp -d)
mkdir -p "$DIST_DIR/co1/src" "$DIST_DIR/co2/src" "$DIST_DIR/oracle"
"$CMOC" gen --bench storm --dir "$DIST_DIR/co1/src"
cp "$DIST_DIR"/co1/src/*.mc "$DIST_DIR/co2/src/"
DSOCK="$DIST_DIR/cmocd.sock"
DPID_FILE="$DIST_DIR/cmocd.pid"
"$CMOCD" --socket "$DSOCK" --state-dir "$DIST_DIR/state" -j 2 \
  --pid-file "$DPID_FILE" &
DIST_PID=$!
i=0
while [ ! -S "$DSOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$DSOCK" ] || { echo "cmocd (dist) never came up"; exit 1; }
[ -f "$DPID_FILE" ] || { echo "dist smoke: pid file never written"; exit 1; }

# Local one-shot oracle, no workers, no daemon.
"$CMOC" build -O 4 -j 1 --dir "$DIST_DIR/oracle" --run --input 64,3 \
  "$DIST_DIR"/co1/src/*.mc > "$DIST_DIR/oracle.out"

# Checkout 1: distributed build on two worker processes, publishing
# every module artifact to the daemon; chaos SIGKILLs one worker
# mid-protocol and the build must degrade invisibly.
CMO_DIST_CHAOS=kill@4 "$CMOC" build -O 4 -j 2 --dist --socket "$DSOCK" \
  --dir "$DIST_DIR/co1" --run --input 64,3 \
  "$DIST_DIR"/co1/src/*.mc > "$DIST_DIR/co1.out"

# Checkout 2: a fresh checkout must be served entirely from the
# daemon's remote cache — every remote lookup a hit, nothing
# re-optimized.
"$CMOC" build -O 4 -j 2 --dist --socket "$DSOCK" \
  --dir "$DIST_DIR/co2" --run --input 64,3 \
  "$DIST_DIR"/co2/src/*.mc > "$DIST_DIR/co2.out"
grep -q "remote cache: [1-9][0-9]* hits, 0 misses" "$DIST_DIR/co2.out" || {
  echo "dist smoke: second checkout was not fully served by the remote cache"
  cat "$DIST_DIR/co2.out"
  exit 1
}
grep -q " 0 re-optimized" "$DIST_DIR/co2.out" || {
  echo "dist smoke: second checkout re-optimized modules"
  exit 1
}

# Byte-identity: every object file of both distributed checkouts
# matches the oracle's, chaos kill and all; so does the VM outcome.
for f in "$DIST_DIR"/oracle/*.o; do
  cmp "$f" "$DIST_DIR/co1/$(basename "$f")"
  cmp "$f" "$DIST_DIR/co2/$(basename "$f")"
done
grep "^exit:" "$DIST_DIR/oracle.out" > "$DIST_DIR/oracle.exit"
for out in co1 co2; do
  grep "^exit:" "$DIST_DIR/$out.out" > "$DIST_DIR/$out.exit"
  cmp "$DIST_DIR/oracle.exit" "$DIST_DIR/$out.exit"
done

# Graceful teardown: SIGTERM drains, removes the socket and pid file,
# and leaves no stray worker processes behind.
kill -TERM "$DIST_PID"
wait "$DIST_PID" || true
DIST_PID=
if [ -S "$DSOCK" ]; then
  echo "dist smoke: socket left behind after shutdown"
  exit 1
fi
if [ -f "$DPID_FILE" ]; then
  echo "dist smoke: pid file left behind after shutdown"
  exit 1
fi
echo "dist smoke OK"

echo "== TCP worker fleet smoke (process level) =="
# Two cmoc-worker fleet members on loopback ephemeral ports serve a
# distributed build over real TCP (version handshake, heartbeats,
# framed jobs); a second build severs the network with a sticky
# $CMO_NET_FAULT partition mid-protocol and must degrade invisibly
# to in-process recompute, reporting the injection.  Every object
# file of both fleet builds must match a never-distributed local
# oracle byte for byte, and tearing the workers down must leave no
# stray processes.
CMOC_WORKER=_build/default/bin/cmoc_worker.exe
FLEET_DIR=$(mktemp -d)
mkdir -p "$FLEET_DIR/co1/src" "$FLEET_DIR/co2/src" "$FLEET_DIR/oracle"
"$CMOC" gen --bench storm --dir "$FLEET_DIR/co1/src"
cp "$FLEET_DIR"/co1/src/*.mc "$FLEET_DIR/co2/src/"
"$CMOC_WORKER" --listen 127.0.0.1:0 --port-file "$FLEET_DIR/w1.port" \
  > /dev/null &
W1_PID=$!
"$CMOC_WORKER" --listen 127.0.0.1:0 --port-file "$FLEET_DIR/w2.port" \
  > /dev/null &
W2_PID=$!
i=0
while { [ ! -f "$FLEET_DIR/w1.port" ] || [ ! -f "$FLEET_DIR/w2.port" ]; } \
  && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
if [ ! -f "$FLEET_DIR/w1.port" ] || [ ! -f "$FLEET_DIR/w2.port" ]; then
  echo "fleet smoke: workers never wrote their port files"
  exit 1
fi
W1="127.0.0.1:$(cat "$FLEET_DIR/w1.port")"
W2="127.0.0.1:$(cat "$FLEET_DIR/w2.port")"

# Local one-shot oracle: no workers, no network.
"$CMOC" build -O 4 -j 1 --dir "$FLEET_DIR/oracle" --run --input 64,3 \
  "$FLEET_DIR"/co1/src/*.mc > "$FLEET_DIR/oracle.out"

# Checkout 1: a clean distributed build over the two-machine fleet.
"$CMOC" build -O 4 -j 2 --dist --workers "$W1,$W2" \
  --dir "$FLEET_DIR/co1" --run --input 64,3 \
  "$FLEET_DIR"/co1/src/*.mc > "$FLEET_DIR/co1.out"

# Checkout 2: the network is severed at the fifth wire operation —
# live conversations die and later dials are refused; the build must
# finish from in-process recompute and report the injection.
CMO_NET_FAULT=partition@5 "$CMOC" build -O 4 -j 2 --dist \
  --workers "$W1,$W2" --dir "$FLEET_DIR/co2" --run --input 64,3 \
  "$FLEET_DIR"/co2/src/*.mc \
  > "$FLEET_DIR/co2.out" 2> "$FLEET_DIR/co2.err"
grep -q "net fault plan: [0-9]* net ops, [1-9][0-9]* injected" \
  "$FLEET_DIR/co2.err" || {
  echo "fleet smoke: partition plan never fired"
  cat "$FLEET_DIR/co2.err"
  exit 1
}

# Byte-identity: every object of both fleet builds matches the
# oracle's, severed network and all; so does the VM outcome.
for f in "$FLEET_DIR"/oracle/*.o; do
  cmp "$f" "$FLEET_DIR/co1/$(basename "$f")"
  cmp "$f" "$FLEET_DIR/co2/$(basename "$f")"
done
grep "^exit:" "$FLEET_DIR/oracle.out" > "$FLEET_DIR/oracle.exit"
for out in co1 co2; do
  grep "^exit:" "$FLEET_DIR/$out.out" > "$FLEET_DIR/$out.exit"
  cmp "$FLEET_DIR/oracle.exit" "$FLEET_DIR/$out.exit"
done

# Clean teardown: both listeners die on signal, leaving nothing.
kill "$W1_PID" "$W2_PID"
wait "$W1_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true
if kill -0 "$W1_PID" 2>/dev/null || kill -0 "$W2_PID" 2>/dev/null; then
  echo "fleet smoke: worker process survived teardown"
  exit 1
fi
W1_PID=
W2_PID=
echo "fleet smoke OK"

echo "CI OK"
