#!/bin/sh
# Tier-1 gate: full build, the complete test suite at both the
# sequential oracle (CMO_JOBS=1) and a worker pool (CMO_JOBS=4), the
# incremental-cache smoke benchmark, and the parallel-determinism
# smoke benchmark (li personality, sharded; exits nonzero if any
# worker count's image, objects or cached bytes diverge from the
# j=1 oracle).  Run from the repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest (CMO_JOBS=1) =="
CMO_JOBS=1 dune runtest --force

echo "== dune runtest (CMO_JOBS=4) =="
CMO_JOBS=4 dune runtest --force

echo "== incremental cache smoke =="
dune exec bench/main.exe -- incremental-smoke

echo "== parallel determinism smoke =="
dune exec bench/main.exe -- parallel-smoke

echo "CI OK"
