#!/bin/sh
# Tier-1 gate: full build, the complete test suite at the sequential
# oracle (CMO_JOBS=1), then again at a worker pool (CMO_JOBS=4) with
# the between-phase IL verifier enabled (CMO_CHECK=1), the
# incremental-cache smoke benchmark, the parallel-determinism smoke
# benchmark (li personality, sharded; exits nonzero if any worker
# count's image, objects or cached bytes diverge from the j=1
# oracle), the fixed-seed differential-fuzz campaign smoke (any
# divergence from the reference interpreter is shrunk, saved under
# test/corpus/, and fails the gate), and the traced-build smoke (a
# --trace build must be byte-identical to a plain one and emit a
# Chrome-trace JSON that parses, has balanced spans, and names every
# pipeline stage), and the crash-point sweep smoke (every I/O
# operation of a small cold build is crashed in turn; each recovery
# build must be byte-identical to a never-faulted oracle, and every
# non-crash fault kind must degrade gracefully).  The fault test
# suite also reruns alone at a fixed fuzz seed so the corruption
# property is reproducible in CI logs.  Finally the build server is
# exercised twice: the in-process edit-storm smoke (concurrent
# clients held byte-identical to one-shot builds, warm-cache hit
# rate rising, per-request crash isolation), and a process-level
# cmocd smoke — daemon start, concurrent cmoc --remote builds at j=1
# and j=4 compared against a local one-shot, one $CMO_FAULT chaos
# request that must fail alone, and a SIGTERM shutdown that must
# remove the socket.  Run from the repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest (CMO_JOBS=1) =="
CMO_JOBS=1 dune runtest --force

echo "== dune runtest (CMO_JOBS=4, CMO_CHECK=1) =="
CMO_JOBS=4 CMO_CHECK=1 dune runtest --force

echo "== incremental cache smoke =="
dune exec bench/main.exe -- incremental-smoke

echo "== parallel determinism smoke =="
dune exec bench/main.exe -- parallel-smoke

echo "== differential fuzz smoke (seed 1) =="
dune exec bench/main.exe -- fuzz-smoke

echo "== traced build smoke =="
dune exec bench/main.exe -- trace-smoke

echo "== crash-point sweep smoke =="
dune exec bench/main.exe -- fault-sweep-smoke

echo "== fault suite (fixed seed) =="
CMO_JOBS=1 CMO_FUZZ_SEED=1 dune exec test/test_main.exe -- test fault

echo "== edit-storm smoke (in-process daemon, concurrent clients) =="
dune exec bench/main.exe -- storm-smoke

echo "== cmocd daemon smoke (process level) =="
CMOC=_build/default/bin/cmoc.exe
CMOCD=_build/default/bin/cmocd.exe
SMOKE_DIR=$(mktemp -d)
CMOCD_PID=
cleanup() {
  [ -n "$CMOCD_PID" ] && kill "$CMOCD_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT INT TERM
mkdir -p "$SMOKE_DIR/src"
"$CMOC" gen --bench storm --dir "$SMOKE_DIR/src"
SOCK="$SMOKE_DIR/cmocd.sock"
"$CMOCD" --socket "$SOCK" --state-dir "$SMOKE_DIR/state" -j 2 &
CMOCD_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$SOCK" ] || { echo "cmocd never came up"; exit 1; }

# Local one-shot oracle, then concurrent remote builds at j=1 and
# j=4: all three must run to the same output (the remote path relinks
# byte-identical objects).
"$CMOC" compile -O 4 -j 1 --run --input 64,3 "$SMOKE_DIR"/src/*.mc \
  > "$SMOKE_DIR/local.out"
"$CMOC" compile -O 4 -j 1 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/remote1.out" &
R1=$!
"$CMOC" compile -O 4 -j 4 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/remote4.out" &
R4=$!
wait "$R1"
wait "$R4"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/remote1.out"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/remote4.out"

# Chaos: a per-request $CMO_FAULT crash plan must fail that request
# only — the daemon keeps serving, byte-identically.
if CMO_FAULT=crash@2,seed=7 "$CMOC" compile -O 4 --remote --socket "$SOCK" \
  "$SMOKE_DIR"/src/*.mc >/dev/null 2>&1; then
  echo "daemon smoke: crash-plan request unexpectedly succeeded"
  exit 1
fi
"$CMOC" compile -O 4 -j 1 --remote --socket "$SOCK" --run --input 64,3 \
  "$SMOKE_DIR"/src/*.mc > "$SMOKE_DIR/retry.out"
cmp "$SMOKE_DIR/local.out" "$SMOKE_DIR/retry.out"

# Graceful shutdown: SIGTERM drains and removes the socket file.
kill -TERM "$CMOCD_PID"
wait "$CMOCD_PID" || true
CMOCD_PID=
if [ -S "$SOCK" ]; then
  echo "daemon smoke: socket left behind after shutdown"
  exit 1
fi
echo "daemon smoke OK"

echo "CI OK"
