#!/bin/sh
# Tier-1 gate: full build, the complete test suite, and the
# incremental-cache smoke benchmark (li personality; asserts nothing
# but fails on any crash and prints the cold/warm/edit table for the
# log).  Run from the repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== incremental cache smoke =="
dune exec bench/main.exe -- incremental-smoke

echo "CI OK"
