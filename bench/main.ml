(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

   Usage:
     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig1    -- one experiment
   Experiments: fig1 fig4 fig5 fig6 bytes-per-line ablation stale micro
   incremental incremental-smoke parallel parallel-smoke fuzz-smoke
   check-overhead trace-smoke fault-sweep fault-sweep-smoke storm
   storm-smoke dist dist-smoke pgo pgo-smoke canary canary-smoke *)

module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Loader = Cmo_naim.Loader
module Db = Cmo_profile.Db
module Vm = Cmo_vm.Vm
module Ilcodec = Cmo_il.Ilcodec
module Size = Cmo_il.Size
module Ilmod = Cmo_il.Ilmod
module Buildsys = Cmo_driver.Buildsys
module Phase = Cmo_hlo.Phase
module Store = Cmo_cache.Store
module Fsio = Cmo_support.Fsio

let mb bytes = float_of_int bytes /. 1024.0 /. 1024.0

let sources_of cfg =
  List.map
    (fun (name, text) -> { Pipeline.name; text })
    (Genprog.generate cfg)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure 1: speedups of PBO, CMO, CMO+PBO over the +O2 baseline for
   the SPECint95-like benchmarks and the MCAD-like ISV applications.
   Mcad3's baseline is +O1, as in the paper.  The paper could never
   compile the MCAD applications with CMO alone (section 5), so the
   harness skips those cells the same way. *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1: speedup over +O2 (Mcad3 over +O1), reference inputs";
  Printf.printf "%-10s %8s | %7s %7s %9s | %s\n" "program" "lines" "PBO" "CMO"
    "CMO+PBO" "(baseline Mcycles)";
  let run_one (name, cfg) =
    let is_mcad = String.length name >= 4 && String.sub name 0 4 = "mcad" in
    let sources = sources_of cfg in
    let lines = Genprog.source_lines (Genprog.generate cfg) in
    let input = Genprog.reference_input cfg in
    let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
    let cycles ?profile options =
      let build = Pipeline.compile ?profile options sources in
      (Pipeline.run ~input build).Vm.cycles
    in
    (* Mcad3's baseline is +O1 (paper: "optimize only within basic
       block boundaries"), everything else +O2. *)
    let baseline =
      if name = "mcad3" then cycles Options.o1 else cycles Options.o2
    in
    let pbo = cycles ~profile:db Options.o2_pbo in
    let cmo = if is_mcad then None else Some (cycles Options.o4) in
    let cmo_pbo = cycles ~profile:db Options.o4_pbo in
    let speedup c = float_of_int baseline /. float_of_int c in
    Printf.printf "%-10s %8d | %7.2f %7s %9.2f | %.1f%s\n%!" name lines
      (speedup pbo)
      (match cmo with
      | Some c -> Printf.sprintf "%.2f" (speedup c)
      | None -> "n/a")
      (speedup cmo_pbo)
      (float_of_int baseline /. 1e6)
      (if name = "mcad3" then "  [baseline +O1]" else "");
    (name, speedup pbo, Option.map speedup cmo, speedup cmo_pbo)
  in
  let rows = List.map run_one Suite.all in
  let module Stats = Cmo_support.Stats in
  let geo f = Stats.geomean (Array.of_list (List.filter_map f rows)) in
  Printf.printf "%-10s %8s | %7.2f %7.2f %9.2f | geometric means\n" "geomean" ""
    (geo (fun (_, p, _, _) -> Some p))
    (geo (fun (_, _, c, _) -> c))
    (geo (fun (_, _, _, s) -> Some s));
  let best =
    List.fold_left (fun acc (_, _, _, s) -> Float.max acc s) 0.0 rows
  in
  Printf.printf
    "(paper: all programs gain; ISV apps gain most, up to 1.71x; best here %.2fx)\n"
    best

(* ------------------------------------------------------------------ *)
(* Figure 4: compiler and HLO memory versus lines of code compiled in
   CMO mode.  NAIM holds the HLO curve sub-linear; with NAIM off the
   growth is linear.  Memory is the modeled resident footprint (see
   DESIGN.md on the substitution for process RSS). *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Figure 4: optimizer memory vs lines compiled under CMO (mcad1)";
  (* The paper's figure samples resident memory as a single CMO
     compilation of Mcad1 progresses through the application's lines.
     We replay that: register modules one by one into the loader,
     optimize, then code-generate, sampling the accountant at every
     step; one pass with NAIM (24 MB machine) and one with NAIM off. *)
  let module Memstats = Cmo_naim.Memstats in
  let module Hlo = Cmo_hlo.Hlo in
  let module Llo = Cmo_llo.Llo in
  let cfg = Suite.find "mcad1" in
  let run_pass ~label ~config =
    let sources = sources_of cfg in
    let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
    let modules = Pipeline.frontend sources in
    ignore (Cmo_profile.Correlate.annotate db modules);
    let cg = Cmo_il.Callgraph.build modules in
    let mem = Memstats.create () in
    let loader = Loader.create config mem in
    let samples = ref [] in
    let lines = ref 0 in
    (* Phase A: the linker feeds IL modules to HLO one at a time; the
       x-axis of the paper's figure is these cumulative lines. *)
    List.iter
      (fun (m : Ilmod.t) ->
        lines := !lines + Ilmod.src_lines m;
        Loader.register_module loader m;
        samples := (!lines, Memstats.hlo_resident mem) :: !samples)
      modules;
    (* Phase B: cross-module optimization. *)
    ignore (Hlo.run loader cg (Hlo.o4_options ~profile:true));
    let opt_peak_hlo = Memstats.peak_hlo mem in
    (* Phase C: code generation; LLO's (quadratic) working set charges
       against the accountant per routine, so the overall-compiler
       peak can exceed the HLO peak here. *)
    Memstats.reset_peak mem;
    List.iter
      (fun fname ->
        let mname = Loader.module_of_func loader fname in
        Loader.with_func loader fname (fun f ->
            ignore (Llo.compile_func ~mem ~layout:true ~module_name:mname f)))
      (Loader.func_names loader);
    let codegen_peak = Memstats.peak mem in
    Loader.close loader;
    (label, List.rev !samples, opt_peak_hlo, codegen_peak)
  in
  let naim =
    run_pass ~label:"naim"
      ~config:{ Loader.default_config with Loader.machine_memory = 24 * 1024 * 1024 }
  in
  let off =
    run_pass ~label:"off"
      ~config:
        { Loader.default_config with
          Loader.machine_memory = 1 lsl 40;
          forced_level = Some Loader.Off }
  in
  (* Print ~8 evenly spaced registration-phase samples per pass. *)
  let print_pass (label, samples, opt_peak_hlo, codegen_peak) =
    let n = List.length samples in
    let picks =
      List.filteri (fun i _ -> i = n - 1 || i mod (max 1 (n / 8)) = 0) samples
    in
    Printf.printf "-- NAIM %s --\n" label;
    Printf.printf "%24s | %10s\n" "lines read in" "HLO MB";
    List.iter
      (fun (l, hlo) -> Printf.printf "%24d | %10.2f\n" l (mb hlo))
      picks;
    Printf.printf "%24s | %10.2f\n" "HLO peak (optimization)" (mb opt_peak_hlo);
    Printf.printf "%24s | %10.2f\n%!" "overall peak (codegen)" (mb codegen_peak)
  in
  print_pass naim;
  print_pass off;
  Printf.printf
    "(paper: HLO sub-linear with NAIM, linear without; overall higher than HLO\n\
    \ during code generation of heavily-inlined routines)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: HLO compile time vs memory when compiling 126.gcc at
   increasing NAIM levels: everything expanded -> IR compaction ->
   symbol-table compaction -> disk offloading. *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "Figure 5: compile time vs memory across NAIM levels (gcc)";
  Printf.printf "%-16s | %10s | %12s | %s\n" "NAIM level" "HLO sec"
    "peak HLO MB" "loader (compact/uncompact/offload)";
  let cfg = Suite.find "gcc" in
  let sources = sources_of cfg in
  let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let levels =
    [
      ("off", Loader.Off);
      ("ir-compaction", Loader.Ir_compaction);
      ("st-compaction", Loader.St_compaction);
      ("offloading", Loader.Offloading);
    ]
  in
  List.iter
    (fun (label, level) ->
      (* Small machine so the cache budget forces real eviction
         traffic; repeat to stabilize the timing. *)
      let opts =
        {
          Options.o4_pbo with
          Options.naim_level = Some level;
          machine_memory = 6 * 1024 * 1024;
        }
      in
      let best_time = ref infinity in
      let peak = ref 0 in
      let stats = ref None in
      for _ = 1 to 3 do
        let build = Pipeline.compile ~profile:db opts sources in
        let r = build.Pipeline.report in
        if r.Pipeline.hlo_seconds < !best_time then
          best_time := r.Pipeline.hlo_seconds;
        peak := r.Pipeline.mem_peak_hlo;
        stats := r.Pipeline.loader_stats
      done;
      let l =
        match !stats with
        | Some s ->
          Printf.sprintf "%d/%d/%d" s.Loader.compactions s.Loader.uncompactions
            s.Loader.offloads
        | None -> "-"
      in
      Printf.printf "%-16s | %10.3f | %12.2f | %s\n%!" label !best_time
        (mb !peak) l)
    levels;
  Printf.printf
    "(paper: 240MB/18min expanded down to 25MB at +50%% compile time)\n"

(* ------------------------------------------------------------------ *)
(* Figure 6: compile time and run time of Mcad1 as the selectivity
   percentage grows.  Run time should plateau once the hot ~20%% of
   the code is covered while compile time keeps climbing. *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Figure 6: selectivity sweep on mcad1 (CMO+PBO vs PBO-only rest)";
  Printf.printf "%-8s | %9s %9s | %9s %8s %8s | %10s\n" "sel %" "CMO lines"
    "of total" "compile s" "opt ops" "inlines" "run Mcyc";
  let cfg = Suite.find "mcad1" in
  let sources = sources_of cfg in
  let input = Genprog.reference_input cfg in
  let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  List.iter
    (fun percent ->
      let t0 = Sys.time () in
      let build =
        Pipeline.compile ~profile:db (Options.o4_pbo_selective percent) sources
      in
      let compile_s = Sys.time () -. t0 in
      let outcome = Pipeline.run ~input build in
      let r = build.Pipeline.report in
      let rewrites, inlines =
        match r.Pipeline.hlo with
        | Some h ->
          ( h.Cmo_hlo.Hlo.rewrites,
            match h.Cmo_hlo.Hlo.inline_stats with
            | Some s -> s.Cmo_hlo.Inline.operations
            | None -> 0 )
        | None -> (0, 0)
      in
      Printf.printf "%-8.1f | %9d %8.1f%% | %9.3f %8d %8d | %10.2f\n%!" percent
        r.Pipeline.cmo_lines
        (100.0 *. float_of_int r.Pipeline.cmo_lines
        /. float_of_int (max 1 r.Pipeline.total_lines))
        compile_s rewrites inlines
        (float_of_int outcome.Vm.cycles /. 1e6))
    [ 0.0; 1.0; 2.0; 5.0; 10.0; 20.0; 40.0; 70.0; 100.0 ];
  Printf.printf
    "(paper: run time flat past ~20%% of code / 5%% of sites while compile\n\
    \ time keeps rising; here the run-time knee reproduces, and the growing\n\
    \ optimizer-operation counts show where the extra CMO effort goes --\n\
    \ wall-clock compile time stays flat because our scalar phases are\n\
    \ orders of magnitude cheaper relative to parsing and code generation\n\
    \ than the 1998 HLO's were)\n"

(* ------------------------------------------------------------------ *)
(* Section 8's memory-per-line numbers: 1.7 KB/line expanded (HP-UX
   9.0), ~0.9 KB/line after IR compaction. *)
(* ------------------------------------------------------------------ *)

let bytes_per_line () =
  header "Memory per source line (gcc personality)";
  let cfg = Suite.find "gcc" in
  let modules = Pipeline.frontend (sources_of cfg) in
  let lines =
    List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 modules
  in
  let expanded =
    List.fold_left (fun acc m -> acc + Size.module_expanded_bytes m) 0 modules
  in
  let compacted =
    List.fold_left
      (fun acc m -> acc + String.length (Ilcodec.encode_module m))
      0 modules
  in
  let core =
    List.fold_left
      (fun acc (m : Ilmod.t) ->
        List.fold_left
          (fun acc f -> acc + Size.func_expanded_core_bytes f)
          (acc + Size.module_symtab_expanded_bytes m)
          m.Ilmod.funcs)
      0 modules
  in
  Printf.printf "source lines:             %d\n" lines;
  Printf.printf "expanded bytes/line:      %.2f KB   (paper: ~1.7 KB, HP-UX 9.0)\n"
    (float_of_int expanded /. float_of_int lines /. 1024.0);
  Printf.printf "w/o derived slots:        %.2f KB   (paper: ~0.9 KB after IR compaction)\n"
    (float_of_int core /. float_of_int lines /. 1024.0);
  Printf.printf "compacted (measured):     %.2f KB   (relocatable byte form)\n"
    (float_of_int compacted /. float_of_int lines /. 1024.0);
  Printf.printf "compaction ratio:         %.1fx\n"
    (float_of_int expanded /. float_of_int compacted)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks for the core operations behind the
   figures: compaction/uncompaction (Fig 5's overhead), loader hit
   path, inlining, the scalar phase pipeline, and VM dispatch. *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let cfg = Suite.find "compress" in
  let modules = Pipeline.frontend (sources_of cfg) in
  let some_func =
    List.find_map
      (fun (m : Ilmod.t) ->
        List.find_opt (fun f -> Cmo_il.Func.instr_count f > 30) m.Ilmod.funcs)
      modules
    |> Option.get
  in
  let names = Cmo_support.Intern.create () in
  let encoded = Ilcodec.encode_func ~names some_func in
  let test_compact =
    Test.make ~name:"ilcodec.encode_func (compaction)"
      (Staged.stage (fun () -> ignore (Ilcodec.encode_func ~names some_func)))
  in
  let test_uncompact =
    Test.make ~name:"ilcodec.decode_func (uncompaction)"
      (Staged.stage (fun () -> ignore (Ilcodec.decode_func ~names encoded)))
  in
  let test_phase =
    Test.make ~name:"phase.optimize_func"
      (Staged.stage (fun () ->
           ignore (Cmo_hlo.Phase.optimize_func (Ilcodec.roundtrip_func some_func))))
  in
  let image =
    (Pipeline.compile Options.o2 (sources_of cfg)).Pipeline.image
  in
  let test_vm =
    Test.make ~name:"vm.run (compress, training input)"
      (Staged.stage (fun () ->
           ignore (Vm.run ~input:(Genprog.training_input cfg) image)))
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg_b = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg_b [ instance ] test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.printf "%-44s %12.1f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "%-44s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark [ test_compact; test_uncompact; test_phase; test_vm ]

(* ------------------------------------------------------------------ *)
(* Ablations for the design choices DESIGN.md calls out: how much of
   the PBO win is block layout vs routine clustering vs the i-cache
   model at all; how sensitive inlining is to its density heuristic;
   and how the NAIM memory budget trades compile time. *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let module Ilmod = Cmo_il.Ilmod in
  let module Llo = Cmo_llo.Llo in
  let module Objfile = Cmo_link.Objfile in
  let module Linker = Cmo_link.Linker in
  let module Cluster = Cmo_link.Cluster in
  let module Correlate = Cmo_profile.Correlate in
  let module Inline = Cmo_hlo.Inline in
  let cfg = Suite.find "gcc" in
  let input = Genprog.reference_input cfg in
  let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] (sources_of cfg) in

  header "Ablation A: code placement (gcc, +O2-grade code, 2x2)";
  (* Compile the same annotated IL with/without block layout and
     with/without routine clustering; run under the full cost model. *)
  let build_image ~layout ~cluster =
    let modules = Pipeline.frontend (sources_of cfg) in
    ignore (Correlate.annotate db modules);
    List.iter
      (fun (m : Ilmod.t) ->
        List.iter (fun f -> ignore (Cmo_hlo.Phase.optimize_func f)) m.Ilmod.funcs)
      modules;
    let weights =
      List.concat_map
        (fun (m : Ilmod.t) ->
          List.concat_map
            (fun (f : Cmo_il.Func.t) ->
              List.filter_map
                (fun (_, (c : Cmo_il.Instr.call)) ->
                  if c.Cmo_il.Instr.call_count > 0.0 then
                    Some
                      ((f.Cmo_il.Func.name, c.Cmo_il.Instr.callee),
                       c.Cmo_il.Instr.call_count)
                  else None)
                (Cmo_il.Func.site_calls f))
            m.Ilmod.funcs)
        modules
    in
    let names =
      List.concat_map
        (fun (m : Ilmod.t) ->
          List.map (fun f -> f.Cmo_il.Func.name) m.Ilmod.funcs)
        modules
    in
    let objects =
      List.map
        (fun (m : Ilmod.t) ->
          let codes, _ = Llo.compile_module ~layout m in
          Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
            ~source_digest:"" codes)
        modules
    in
    let routine_order =
      if cluster then Some (Cluster.order ~names ~weights) else None
    in
    match Linker.link ?routine_order objects with
    | Ok image -> image
    | Error _ -> failwith "ablation link failed"
  in
  Printf.printf "%-28s | %12s | %10s | %8s\n" "configuration" "cycles"
    "icache miss" "taken br";
  let baseline = ref 0 in
  List.iter
    (fun (label, layout, cluster) ->
      let image = build_image ~layout ~cluster in
      let o = Vm.run ~input image in
      if !baseline = 0 then baseline := o.Vm.cycles;
      Printf.printf "%-28s | %12d | %10d | %8d  (%.3fx)\n%!" label o.Vm.cycles
        o.Vm.icache_misses o.Vm.taken_branches
        (float_of_int !baseline /. float_of_int o.Vm.cycles))
    [
      ("neither", false, false);
      ("block layout only", true, false);
      ("clustering only", false, true);
      ("layout + clustering", true, true);
    ];

  header "Ablation B: the i-cache model itself (unclustered image)";
  let image = build_image ~layout:false ~cluster:false in
  List.iter
    (fun (label, cm) ->
      let o = Vm.run ~input ~costmodel:cm image in
      Printf.printf "%-28s | %12d cycles (%d misses)\n%!" label o.Vm.cycles
        o.Vm.icache_misses)
    [
      ("default model", Cmo_vm.Costmodel.default);
      ("no i-cache penalty", Cmo_vm.Costmodel.no_icache);
      ("no d-cache penalty", Cmo_vm.Costmodel.no_dcache);
      ("no load-use stall", Cmo_vm.Costmodel.no_stall);
    ];

  header "Ablation B2: the list scheduler (same IL, default model)";
  let build_sched schedule =
    let modules = Pipeline.frontend (sources_of cfg) in
    ignore (Correlate.annotate db modules);
    List.iter
      (fun (m : Ilmod.t) ->
        List.iter (fun f -> ignore (Cmo_hlo.Phase.optimize_func f)) m.Ilmod.funcs)
      modules;
    let objects =
      List.map
        (fun (m : Ilmod.t) ->
          let codes, _ = Llo.compile_module ~layout:true ~schedule m in
          Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
            ~source_digest:"" codes)
        modules
    in
    match Linker.link objects with
    | Ok image -> Vm.run ~input image
    | Error _ -> failwith "ablation link failed"
  in
  let unsched = build_sched false in
  let sched = build_sched true in
  Printf.printf "%-28s | %12d cycles
" "no scheduling" unsched.Vm.cycles;
  Printf.printf "%-28s | %12d cycles  (%.3fx; load-use stalls hidden)
%!"
    "list scheduling" sched.Vm.cycles
    (float_of_int unsched.Vm.cycles /. float_of_int sched.Vm.cycles);

  header "Ablation C: inline density-ratio sweep (gcc, +O4 +P)";
  Printf.printf "%-8s | %10s | %8s | %10s | %10s\n" "ratio" "cycles"
    "inlines" "code bytes" "hlo sec";
  List.iter
    (fun ratio ->
      let sources = sources_of cfg in
      let options =
        {
          Options.o4_pbo with
          Options.inline_config =
            Some { Inline.default_config with Inline.hot_density_ratio = ratio };
        }
      in
      let build = Pipeline.compile ~profile:db options sources in
      let o = Pipeline.run ~input build in
      let inlines =
        match build.Pipeline.report.Pipeline.hlo with
        | Some { Cmo_hlo.Hlo.inline_stats = Some s; _ } -> s.Inline.operations
        | _ -> 0
      in
      Printf.printf "%-8.2f | %10d | %8d | %10d | %10.3f\n%!" ratio o.Vm.cycles
        inlines
        (Cmo_link.Image.code_bytes build.Pipeline.image)
        build.Pipeline.report.Pipeline.hlo_seconds)
    [ 0.25; 0.5; 1.5; 4.0; 16.0; 1000.0 ];

  header "Ablation D: NAIM machine-memory sweep (gcc, +O4 +P)";
  Printf.printf "%-12s | %10s | %12s | %s\n" "machine MB" "hlo sec"
    "peak HLO MB" "level reached";
  List.iter
    (fun mm ->
      let sources = sources_of cfg in
      let options =
        { Options.o4_pbo with Options.machine_memory = mm * 1024 * 1024 }
      in
      let build = Pipeline.compile ~profile:db options sources in
      let r = build.Pipeline.report in
      let traffic =
        match r.Pipeline.loader_stats with
        | Some s ->
          if s.Loader.offloads > 0 then "offloading"
          else if s.Loader.symtab_compactions > 0 then "st-compaction"
          else if s.Loader.compactions > 0 then "ir-compaction"
          else "off"
        | None -> "-"
      in
      Printf.printf "%-12d | %10.3f | %12.2f | %s\n%!" mm
        r.Pipeline.hlo_seconds (mb r.Pipeline.mem_peak_hlo) traffic)
    [ 4; 8; 16; 32; 256 ]

(* ------------------------------------------------------------------ *)
(* Stale profiles (section 6.2): "our system does allow old profile
   data to be used with new code, but as the new code base diverges
   from the old, the benefits obtained with stale profiles will
   diminish over time".  We "develop" the application by regenerating
   a growing fraction of its modules, keep optimizing with the profile
   trained on the original version, and measure how much of the fresh-
   profile benefit survives. *)
(* ------------------------------------------------------------------ *)

let stale () =
  header "Stale-profile decay (vortex): benefit vs fraction of modules changed";
  let cfg = Suite.find "vortex" in
  let input = Genprog.reference_input cfg in
  let sources_of_listing listing =
    List.map (fun (name, text) -> { Pipeline.name; text }) listing
  in
  let stale_db =
    Pipeline.train ~inputs:[ Genprog.training_input cfg ]
      (sources_of_listing (Genprog.generate cfg))
  in
  Printf.printf "%-10s | %10s %10s %10s | %s\n" "changed" "O2+P cyc"
    "stale cyc" "fresh cyc" "benefit retained";
  List.iter
    (fun percent ->
      (* Change every (100/percent)-th module: the sample spreads over
         both the hot and the cold region. *)
      let changed =
        List.init cfg.Genprog.modules Fun.id
        |> List.filter (fun i ->
               percent > 0 && i mod (max 1 (100 / percent)) = 0)
      in
      let listing = Genprog.evolve cfg ~changed ~evolution:1 in
      let sources = sources_of_listing listing in
      let cycles options db =
        let build = Pipeline.compile ?profile:db options sources in
        (Pipeline.run ~input build).Vm.cycles
      in
      let baseline = cycles Options.o2_pbo (Some stale_db) in
      let with_stale = cycles Options.o4_pbo (Some stale_db) in
      let fresh_db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
      let with_fresh = cycles Options.o4_pbo (Some fresh_db) in
      let benefit stale_or_fresh =
        float_of_int baseline /. float_of_int stale_or_fresh
      in
      let retained =
        if benefit with_fresh <= 1.0 then 1.0
        else (benefit with_stale -. 1.0) /. (benefit with_fresh -. 1.0)
      in
      Printf.printf "%-9d%% | %10d %10d %10d | %6.0f%%\n%!" percent baseline
        with_stale with_fresh (100.0 *. retained))
    [ 0; 10; 25; 50; 100 ];
  Printf.printf
    "(paper: stale-profile benefit diminishes as the code diverges [Grove et al.])\n"

(* ------------------------------------------------------------------ *)
(* Incremental rebuilds through the link-time artifact cache: a cold
   build, a no-change rebuild (must skip HLO entirely) and a
   one-module edit, driven through Buildsys like a make-style tool
   would.  `incremental` uses the gcc personality; `incremental-smoke`
   is the same experiment on the small li personality for CI. *)
(* ------------------------------------------------------------------ *)

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let incremental_for name =
  header
    (Printf.sprintf "Incremental re-optimization through the cache (%s, +O4)"
       name);
  let cfg = Suite.find name in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      ("cmo-bench-incremental-" ^ name)
  in
  remove_tree dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let ws = Buildsys.create ~dir () in
  let sources_of_listing listing =
    List.map (fun (name, text) -> { Pipeline.name; text }) listing
  in
  let timed sources =
    let before = Sys.time () in
    let hlo_before = Phase.funcs_processed () in
    let outcome = Buildsys.build ws Options.o4 sources in
    let seconds = Sys.time () -. before in
    (outcome, seconds, Phase.funcs_processed () - hlo_before)
  in
  Printf.printf "%-20s | %8s | %6s | %14s | %17s | %s\n" "build" "seconds"
    "front" "module cache" "cmo set" "funcs through HLO";
  let describe label (outcome, seconds, hlo_funcs) =
    let cache = outcome.Buildsys.build.Pipeline.report.Pipeline.cache in
    let hits, misses, cached, reopt =
      match cache with
      | Some c ->
        ( c.Pipeline.hits,
          c.Pipeline.misses,
          List.length c.Pipeline.cmo_cached,
          List.length c.Pipeline.cmo_reoptimized )
      | None -> (0, 0, 0, 0)
    in
    Printf.printf "%-20s | %8.2f | %6d | %4d hit %4d miss | %4d cached %4d reopt | %d\n%!"
      label seconds
      (List.length outcome.Buildsys.recompiled)
      hits misses cached reopt hlo_funcs
  in
  let image (outcome, _, _) = outcome.Buildsys.build.Pipeline.image in
  let cycles (outcome, _, _) =
    (Pipeline.run ~input:(Genprog.reference_input cfg) outcome.Buildsys.build)
      .Vm.cycles
  in
  let sources = sources_of_listing (Genprog.generate cfg) in
  let cold = timed sources in
  describe "cold" cold;
  let warm = timed sources in
  describe "warm (no change)" warm;
  let edited = sources_of_listing (Genprog.evolve cfg ~changed:[ 0 ] ~evolution:1) in
  let one_edit = timed edited in
  describe "one-module edit" one_edit;
  let back = timed sources in
  describe "edit reverted" back;
  let _, _, warm_hlo = warm in
  Printf.printf "warm rebuild bit-identical to cold: %b, zero HLO work: %b\n"
    (image cold = image warm) (warm_hlo = 0);
  Printf.printf "reverted rebuild bit-identical to cold: %b (%d Mcycles)\n"
    (image cold = image back)
    (cycles back / 1_000_000);
  let store = Store.open_ ~dir:(Buildsys.cache_dir ws) () in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      Format.printf "artifact store (all tiers, all builds): %a@."
        Store.pp_stats (Store.stats store))

let incremental () = incremental_for "gcc"
let incremental_smoke () = incremental_for "li"

(* ------------------------------------------------------------------ *)
(* Parallel link-time CMO (the paper's section-8 future work): a
   sharded workload gives the link step several independent
   invalidation components; we build it at j in {1,2,4} and record
   per-phase wall time and the realized cpu/wall speedup.  The
   headline claim is determinism, which the harness enforces: any
   output divergence from the j=1 oracle is a benchmark failure. *)
(* ------------------------------------------------------------------ *)

let parallel_for name ~shards =
  header
    (Printf.sprintf "Parallel link-time CMO (%s x %d shards, +O4)" name shards);
  let cfg = Suite.find name in
  let listing = Genprog.sharded cfg ~shards in
  Printf.printf "%d modules, %d lines\n" (List.length listing)
    (Genprog.source_lines listing);
  let sources =
    List.map (fun (name, text) -> { Pipeline.name; text }) listing
  in
  (* The driver couples every shard it calls into one component, so it
     stays outside the CMO set — its two-line main has nothing to gain
     from CMO anyway. *)
  let cmo_set =
    List.filter_map
      (fun (n, _) -> if String.equal n "main_mod" then None else Some n)
      listing
  in
  let build jobs =
    let options = { Options.o4 with Options.cmo_modules = Some cmo_set; jobs } in
    Pipeline.compile options sources
  in
  Printf.printf "%-5s | %8s %8s %8s | %8s | %8s | %s\n" "jobs" "fe wall"
    "hlo wall" "llo wall" "cpu s" "speedup" "output";
  let oracle = build 1 in
  let failures = ref 0 in
  List.iter
    (fun jobs ->
      let b = if jobs = 1 then oracle else build jobs in
      let r = b.Pipeline.report in
      let identical =
        b.Pipeline.image.Cmo_link.Image.code
          = oracle.Pipeline.image.Cmo_link.Image.code
        && b.Pipeline.image.Cmo_link.Image.funcs
             = oracle.Pipeline.image.Cmo_link.Image.funcs
        && b.Pipeline.objects = oracle.Pipeline.objects
      in
      if not identical then incr failures;
      Printf.printf "%-5d | %8.3f %8.3f %8.3f | %8.3f | %7.2fx | %s\n%!" jobs
        r.Pipeline.frontend_wall_seconds r.Pipeline.hlo_wall_seconds
        r.Pipeline.llo_wall_seconds
        (Pipeline.phase_cpu_seconds r)
        (Pipeline.par_speedup r)
        (if identical then "identical to j=1" else "DIVERGED from j=1"))
    [ 1; 2; 4 ];
  Printf.printf
    "(speedup is cpu/wall; it tracks the hardware thread count, so on a\n\
    \ single-core host it sits at ~1.0 for every j while the determinism\n\
    \ check still exercises the full parallel machinery)\n";
  if !failures > 0 then begin
    Printf.eprintf "parallel benchmark: %d job level(s) diverged from j=1\n"
      !failures;
    exit 1
  end

let parallel () = parallel_for "gcc" ~shards:4
let parallel_smoke () = parallel_for "li" ~shards:3

(* ------------------------------------------------------------------ *)
(* The differential-fuzz campaign (smoke): a fixed seed stream of
   generated programs held to the oracle's smoke matrix (all four
   O-levels cold, plus O4+P warm at j=4).  Any divergence is shrunk,
   persisted under test/corpus/, and fails the run — CI's end-to-end
   semantic-preservation gate. *)
(* ------------------------------------------------------------------ *)

let fuzz_smoke () =
  header "Differential fuzz campaign (smoke matrix, fixed seeds)";
  let module Campaign = Cmo_campaign.Campaign in
  let module Oracle = Cmo_campaign.Oracle in
  let seed =
    Option.value ~default:1
      (Options.from_env ()).Options.env_fuzz_seed
  in
  Printf.printf "seed %d (override with CMO_FUZZ_SEED)\n%!" seed;
  let r =
    Campaign.run ~points:Oracle.smoke_matrix ~save_dir:"test/corpus"
      ~log:(fun line -> Printf.printf "  %s\n%!" line)
      ~seed ~count:4 ()
  in
  Format.printf "%a@." Campaign.pp_result r;
  if r.Campaign.findings <> [] then begin
    Printf.eprintf
      "fuzz-smoke: %d divergence(s); shrunk reproducers saved to test/corpus\n"
      (List.length r.Campaign.findings);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Verifier overhead: the same +O4 +P build of the gcc personality
   with and without --check, reported as % of compile wall time (the
   EXPERIMENTS.md row). *)
(* ------------------------------------------------------------------ *)

let check_overhead () =
  header "IL-verifier overhead (--check) at +O4 +P (gcc personality)";
  let cfg = Suite.find "gcc" in
  let sources = sources_of cfg in
  let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let wall options =
    (* Best of three: the verifier cost is deterministic, the noise
       is not. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (Pipeline.compile ~profile:db options sources);
      let t = Unix.gettimeofday () -. t0 in
      if t < !best then best := t
    done;
    !best
  in
  let plain = wall Options.o4_pbo in
  let checked = wall { Options.o4_pbo with Options.check = true } in
  Printf.printf "%-22s | %8.3f s\n" "without --check" plain;
  Printf.printf "%-22s | %8.3f s\n" "with --check" checked;
  Printf.printf "%-22s | %+7.1f%%\n" "overhead"
    (100.0 *. (checked -. plain) /. plain)

(* ------------------------------------------------------------------ *)
(* Tracing overhead and Chrome-trace validation: the fig1 smoke
   personality (li) at +O4 j=4, built plain and with --trace.  The
   harness enforces the observability acceptance bar — byte-identical
   outputs, a parseable trace with balanced spans, the four stage
   spans, per-worker tracks, cache counters and the NAIM memory
   timeline — and reports the wall-time overhead (the EXPERIMENTS.md
   row) plus the machine-readable report. *)
(* ------------------------------------------------------------------ *)

let trace_smoke () =
  header "Tracing overhead + Chrome-trace validation (li, +O4, j=4)";
  let module Json = Cmo_obs.Json in
  let cfg = Suite.find "li" in
  let sources = sources_of cfg in
  let options = { Options.o4 with Options.jobs = 4; trace = None } in
  (* Each build gets its own cold store so plain and traced runs see
     identical cache traffic (and the trace records cache.* counters). *)
  let build options =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ()) "cmo-bench-trace-cache"
    in
    remove_tree dir;
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
    let store = Store.open_ ~dir () in
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let b = Pipeline.compile ~cache:store options sources in
    (b, Unix.gettimeofday () -. t0)
  in
  ignore (build options);  (* warm-up: exclude first-run noise *)
  let plain, plain_wall = build options in
  let path = Filename.temp_file "cmo-trace" ".json" in
  let traced, traced_wall = build { options with Options.trace = Some path } in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let require cond fmt =
    Printf.ksprintf (fun m -> if not cond then failures := m :: !failures) fmt
  in
  (* 1. Tracing is observational: identical image and objects. *)
  require
    (plain.Pipeline.image.Cmo_link.Image.code
       = traced.Pipeline.image.Cmo_link.Image.code
    && plain.Pipeline.image.Cmo_link.Image.funcs
         = traced.Pipeline.image.Cmo_link.Image.funcs
    && plain.Pipeline.objects = traced.Pipeline.objects)
    "traced build diverged from untraced build";
  (* 2. The trace parses and has the right shape. *)
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  (match Json.parse text with
  | Error e -> fail "trace is not valid JSON: %s" e
  | Ok (Json.Arr events) ->
    let stage_names = ref [] in
    let worker_tracks = ref 0 in
    let naim_samples = ref 0 in
    let cache_counters = ref 0 in
    let depth : (float, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun ev ->
        let field f conv = Option.bind (Json.member f ev) conv in
        let tid = Option.value ~default:(-1.0) (field "tid" Json.num) in
        let name = Option.value ~default:"" (field "name" Json.str) in
        match field "ph" Json.str with
        | Some "B" ->
          Hashtbl.replace depth tid
            (1 + Option.value ~default:0 (Hashtbl.find_opt depth tid));
          if field "cat" Json.str = Some "stage" then
            stage_names := name :: !stage_names
        | Some "E" ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          if d <= 0 then fail "unbalanced E event on tid %g" tid
          else Hashtbl.replace depth tid (d - 1)
        | Some "M" ->
          (match Option.bind (field "args" (Json.member "name")) Json.str with
          | Some track
            when String.length track > 7 && String.sub track 0 7 = "worker-" ->
            incr worker_tracks
          | Some _ | None -> ())
        | Some "C" ->
          let starts_with p =
            String.length name >= String.length p
            && String.sub name 0 (String.length p) = p
          in
          if starts_with "NAIM memory" then incr naim_samples
          else if starts_with "cache." then incr cache_counters
        | Some "i" -> ()
        | Some ph -> fail "unknown phase type %S" ph
        | None -> fail "event without ph")
      events;
    Hashtbl.iter
      (fun tid d -> if d <> 0 then fail "%d unclosed span(s) on tid %g" d tid)
      depth;
    List.iter
      (fun stage ->
        require
          (List.mem stage !stage_names)
          "missing stage span %S in trace" stage)
      [ "frontend"; "hlo"; "llo"; "link" ];
    require (!worker_tracks >= 1) "no worker-* track in a -j 4 trace";
    require (!naim_samples >= 1) "no NAIM memory timeline samples";
    require (!cache_counters >= 1) "no cache.* counter events";
    Printf.printf "trace: %d events, %d worker tracks, %d NAIM samples\n"
      (List.length events) !worker_tracks !naim_samples
  | Ok _ -> fail "trace is not a JSON array of events");
  (* 3. Overhead row + machine-readable report. *)
  Printf.printf "%-22s | %8.3f s\n" "without --trace" plain_wall;
  Printf.printf "%-22s | %8.3f s\n" "with --trace" traced_wall;
  Printf.printf "%-22s | %+7.1f%%\n" "overhead"
    (100.0 *. (traced_wall -. plain_wall) /. plain_wall);
  Printf.printf "report: %s\n"
    (Json.to_string (Pipeline.report_to_json traced.Pipeline.report));
  if !failures <> [] then begin
    List.iter (Printf.eprintf "trace-smoke: %s\n") (List.rev !failures);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Crash-point sweep: count the I/O operations of a cold +O4
   workspace build, then for every operation index k run a cold build
   with a simulated power cut at k followed by a recovery build over
   whatever torn state the crash left, holding the recovery image to
   a never-faulted oracle.  A second pass cycles the non-crash fault
   kinds (enospc, eio, short, transient) through every site and
   requires the faulted build itself to succeed with the oracle's
   image — graceful degradation, never a failed build. *)
(* ------------------------------------------------------------------ *)

(* Small enough that the exhaustive sweep stays in CI budget, yet it
   exercises every artifact path: object save/load, the cache store's
   index, payload appends, and compaction-adjacent recovery. *)
let fault_mini_sources : Pipeline.source list =
  [
    { Pipeline.name = "fm_main";
      text =
        {|
        func main() {
          var n = 12;
          var s = 0;
          var i = 0;
          while (i < n) { s = s + mix(i, s); i = i + 1; }
          print(s);
          return s & 255;
        }
        |} };
    { Pipeline.name = "fm_lib";
      text =
        {|
        static func twist(v) { return v * 3 + 1; }
        func mix(x, seed) { return (seed / 3) + twist(x); }
        |} };
    { Pipeline.name = "fm_aux";
      text =
        {|
        global tally = 0;
        func pack(v) { tally = tally + v * 5; return tally; }
        |} };
  ]

(* A planned crash can fire inside an unwind-time finalizer (e.g. the
   store close), where [Fun.protect] wraps it — that is still the
   simulated power cut. *)
let rec is_crash = function
  | Fsio.Crash -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let fault_sweep_over label sources =
  header (Printf.sprintf "Crash-point sweep (%s, +O4, jobs=1)" label);
  (* Operation numbering is only deterministic single-threaded. *)
  let options = { Options.o4 with Options.jobs = 1 } in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("cmo-bench-fault-" ^ label)
  in
  let fresh () =
    remove_tree dir;
    Sys.mkdir dir 0o755
  in
  let build () = Buildsys.build (Buildsys.create ~dir ()) options sources in
  let install spec =
    match Fsio.install_plan spec with
    | Ok () -> ()
    | Error m -> failwith ("fault-sweep: bad plan: " ^ m)
  in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.eprintf fmt
  in
  Fun.protect
    ~finally:(fun () ->
      Fsio.clear_plan ();
      remove_tree dir)
  @@ fun () ->
  fresh ();
  let oracle = build () in
  let same (o : Buildsys.outcome) =
    let a = o.Buildsys.build and b = oracle.Buildsys.build in
    a.Pipeline.image.Cmo_link.Image.code = b.Pipeline.image.Cmo_link.Image.code
    && a.Pipeline.image.Cmo_link.Image.funcs
         = b.Pipeline.image.Cmo_link.Image.funcs
    && a.Pipeline.objects = b.Pipeline.objects
  in
  fresh ();
  install "count";
  ignore (build ());
  let n = Fsio.op_count () in
  Fsio.clear_plan ();
  Printf.printf "cold build: %d injection sites\n%!" n;
  let t0 = Unix.gettimeofday () in
  for k = 1 to n do
    fresh ();
    install (Printf.sprintf "crash@%d,seed=%d" k k);
    (match build () with
    | _ -> fail "crash@%d: the planned crash never fired\n" k
    | exception e when is_crash e -> ());
    Fsio.clear_plan ();
    (* Recovery: a fresh "process" over the torn workspace. *)
    match build () with
    | recovered ->
      if not (same recovered) then fail "crash@%d: recovery diverged\n" k
    | exception e ->
      fail "crash@%d: recovery failed: %s\n" k (Printexc.to_string e)
  done;
  let crash_seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "crash sweep: %d crash points, %.1fs, %s\n%!" n crash_seconds
    (if !failures = 0 then "all recovered byte-identical" else "FAILURES");
  let kinds = [| "enospc"; "eio"; "short"; "transient" |] in
  let t1 = Unix.gettimeofday () in
  for k = 1 to n do
    let kind = kinds.(k mod Array.length kinds) in
    fresh ();
    install (Printf.sprintf "%s@%d,seed=%d" kind k k);
    (match build () with
    | faulted ->
      if not (same faulted) then fail "%s@%d: image diverged\n" kind k
    | exception e ->
      fail "%s@%d: build failed instead of degrading: %s\n" kind k
        (Printexc.to_string e));
    Fsio.clear_plan ()
  done;
  Printf.printf
    "degradation sweep: %d sites (kinds cycled), %.1fs, %s\n%!" n
    (Unix.gettimeofday () -. t1)
    (if !failures = 0 then "every faulted build succeeded identically"
     else "FAILURES");
  if !failures > 0 then begin
    Printf.eprintf "fault-sweep: %d failure(s)\n" !failures;
    exit 1
  end

let fault_sweep () = fault_sweep_over "li" (sources_of (Suite.find "li"))
let fault_sweep_smoke () = fault_sweep_over "mini" fault_mini_sources

(* ------------------------------------------------------------------ *)
(* The IDE edit storm: an in-process cmocd serving concurrent clients
   that replay an editing session (Genprog.storm) as overlapping build
   requests.  The harness holds every reply to a one-shot oracle build
   of the same tree state (byte-identity over the encoded objects),
   requires the warm-cache hit rate to rise as the storm revisits
   states, and ends with a chaos request: a per-request crash plan
   must kill that request only — the daemon keeps serving and the
   retry is byte-identical. *)
(* ------------------------------------------------------------------ *)

let storm_for ~label ~clients ~per_client ~steps =
  let module Server = Cmo_server.Server in
  let module Client = Cmo_server.Client in
  let module Proto = Cmo_server.Proto in
  let module Json = Cmo_obs.Json in
  let module Objfile = Cmo_link.Objfile in
  header
    (Printf.sprintf "IDE edit storm (%s): %d clients x %d requests, %d states"
       label clients per_client (steps + 1));
  let cfg = Suite.storm in
  let states = Genprog.storm cfg ~steps ~seed:11 in
  let to_sources listing =
    List.map (fun (name, text) -> { Pipeline.name; text }) listing
  in
  (* One-shot oracle: a cold, cacheless compile of every tree state.
     The daemon must reproduce these bytes from warm state. *)
  let oracle_options = { Options.o4 with Options.jobs = 1 } in
  let oracle =
    Array.map
      (fun listing ->
        List.map Objfile.encode
          (Pipeline.compile oracle_options (to_sources listing)).Pipeline.objects)
      states
  in
  Printf.printf "%d modules, ~%d lines per state; oracle built all states\n%!"
    (cfg.Genprog.modules + 1)
    (Genprog.source_lines states.(0));
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("cmo-bench-storm-" ^ label)
  in
  remove_tree dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let config =
    {
      Server.socket = Filename.concat dir "cmocd.sock";
      builders = 2;
      queue_max = 64;
      state_dir = Filename.concat dir "state";
      cache_capacity = None;
      trace = Some (Filename.concat dir "trace.json");
    }
  in
  let server = Server.start config in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.eprintf fmt
  in
  let total = clients * per_client in
  let results = Array.make total None in
  let request ?fault ~tag idx =
    {
      Proto.tag;
      level = Options.O4;
      pbo = false;
      jobs = 1;
      check = false;
      fault;
      sources = to_sources states.(idx);
    }
  in
  (* Each client walks the state sequence from its own offset; with
     per_client > steps + 1 the tail rounds revisit states, which is
     where the warm store should already hold everything. *)
  let client_thread c =
    try
      Client.with_connect ~socket:config.Server.socket @@ fun conn ->
      for k = 0 to per_client - 1 do
        let idx = (c + k) mod (steps + 1) in
        let tag = Printf.sprintf "c%d-r%d" c k in
        let resp = Client.build conn (request ~tag idx) in
        results.((c * per_client) + k) <- Some (idx, resp)
      done
    with e ->
      fail "storm: client %d died: %s\n" c (Printexc.to_string e)
  in
  let threads = List.init clients (fun c -> Thread.create client_thread c) in
  List.iter Thread.join threads;
  (* Every reply must be Built and byte-identical to the oracle. *)
  let json_int path j =
    let rec walk j = function
      | [] -> Option.map int_of_float (Json.num j)
      | f :: rest -> Option.bind (Json.member f j) (fun j -> walk j rest)
    in
    walk j path
  in
  let report_cache = Array.make total (0, 0) in
  let report_obs = Array.make total None in
  Array.iteri
    (fun i -> function
      | None -> fail "storm: request %d has no reply\n" i
      | Some (idx, Proto.Built { objects; report; _ }) ->
        if objects <> oracle.(idx) then
          fail "storm: request %d diverged from the one-shot build of state %d\n"
            i idx;
        (match Json.parse report with
        | Error e -> fail "storm: request %d report is not JSON: %s\n" i e
        | Ok j ->
          let n path = Option.value ~default:0 (json_int path j) in
          report_cache.(i) <- (n [ "cache"; "hits" ], n [ "cache"; "misses" ]);
          (* The daemon owns the trace sink, so per-request reports
             carry the store's *cumulative* counters.  A counter that
             has never ticked (e.g. no hit yet, storm-opening miss
             burst) is absent, which reads as zero. *)
          (match json_int [ "trace"; "events" ] j with
          | None -> fail "storm: request %d report lacks a trace summary\n" i
          | Some _ ->
            let c name =
              Option.value ~default:0
                (json_int [ "trace"; "counters"; "cache.store/" ^ name ] j)
            in
            report_obs.(i) <- Some (c "hits", c "misses")))
      | Some (_, Proto.Rejected { tag; reason }) ->
        fail "storm: request %s rejected: %s\n" tag reason
      | Some (_, Proto.Failed { tag; reason }) ->
        fail "storm: request %s failed: %s\n" tag reason
      | Some (_, _) -> fail "storm: request %d got a non-build reply\n" i)
    results;
  (* Warm-cache hit rate must rise across the storm: aggregate the
     per-request (race-free) cache counts over the first and last
     third of each client's request sequence. *)
  let rate lo hi =
    let h = ref 0 and m = ref 0 in
    for c = 0 to clients - 1 do
      for k = lo to hi - 1 do
        let hits, misses = report_cache.((c * per_client) + k) in
        h := !h + hits;
        m := !m + misses
      done
    done;
    (100.0 *. float_of_int !h /. float_of_int (max 1 (!h + !m)), !h, !m)
  in
  let early, eh, em = rate 0 (per_client / 3) in
  let late, lh, lm = rate (2 * per_client / 3) per_client in
  Printf.printf
    "module-cache hit rate: first third %.1f%% (%d/%d), last third %.1f%% (%d/%d)\n"
    early eh (eh + em) late lh (lh + lm);
  if late <= early then
    fail "storm: warm-cache hit rate did not rise (%.1f%% -> %.1f%%)\n" early
      late;
  (* The same rise is visible in the daemon-lifetime obs counters the
     reports carry: compare the earliest and latest snapshots. *)
  (match (report_obs.(0), report_obs.(total - 1)) with
  | Some (h0, m0), Some (h1, m1) ->
    let r h m = 100.0 *. float_of_int h /. float_of_int (max 1 (h + m)) in
    Printf.printf
      "obs cache.store counters: early %d hits/%d misses (%.1f%%), late %d/%d (%.1f%%)\n"
      h0 m0 (r h0 m0) h1 m1 (r h1 m1);
    if h1 < h0 || m1 < m0 then
      fail "storm: obs counters went backwards\n"
  | _ -> ());
  (* Chaos: a per-request crash plan kills that request only. *)
  Client.with_connect ~socket:config.Server.socket (fun conn ->
      let idx = steps in
      (match Client.build conn (request ~fault:"crash@2,seed=7" ~tag:"chaos" idx)
       with
      | Proto.Failed { reason; _ } ->
        Printf.printf "chaos: injected crash killed the request (%s)\n" reason
      | Proto.Built _ -> fail "storm: chaos crash plan never fired\n"
      | _ -> fail "storm: chaos request got an unexpected reply\n");
      (match Client.build conn (request ~tag:"chaos-retry" idx) with
      | Proto.Built { objects; _ } ->
        if objects = oracle.(idx) then
          Printf.printf "chaos: daemon kept serving; retry byte-identical\n"
        else fail "storm: post-crash retry diverged\n"
      | _ -> fail "storm: post-crash retry did not build\n");
      let st = Client.stats conn in
      Printf.printf
        "daemon stats: %d accepted, %d completed, %d failed, %d rejected\n"
        st.Proto.accepted st.Proto.completed st.Proto.failed st.Proto.rejected;
      Client.shutdown_server conn);
  Server.wait server;
  if Sys.file_exists config.Server.socket then
    fail "storm: socket file left behind after shutdown\n";
  Printf.printf "shutdown clean: socket removed, %d requests verified\n%!" total;
  if !failures > 0 then begin
    Printf.eprintf "storm: %d failure(s)\n" !failures;
    exit 1
  end

let storm () = storm_for ~label:"full" ~clients:6 ~per_client:36 ~steps:17
let storm_smoke () = storm_for ~label:"smoke" ~clients:3 ~per_client:12 ~steps:8

(* ------------------------------------------------------------------ *)
(* Distributed link-time CMO: partition jobs on worker processes and
   module artifacts through a cmocd remote cache.  The harness holds
   the same line as the parallel benchmark — any divergence from the
   one-shot j=1 oracle is a failure — and reports wall/cpu per job
   level, partition jobs per worker pool, the remote-cache hit rate
   across two cold checkouts, and a chaos leg (worker SIGKILLed
   mid-protocol) that must still land on the oracle's bytes. *)
(* ------------------------------------------------------------------ *)

(* Spawn [n] real [cmoc-worker --listen] fleet members on loopback
   ephemeral ports; the atomically-written port file is the ready
   signal. *)
let with_worker_fleet n f =
  let bin = Cmo_driver.Distwork.resolve_worker () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cmo-bench-fleet-%d" (Unix.getpid ()))
  in
  remove_tree dir;
  Sys.mkdir dir 0o755;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let members =
    List.init n (fun i ->
        let pf = Filename.concat dir (Printf.sprintf "port%d" i) in
        let pid =
          Unix.create_process bin
            [| bin; "--listen"; "127.0.0.1:0"; "--port-file"; pf |]
            Unix.stdin devnull Unix.stderr
        in
        (pid, pf))
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (pid, _) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        members;
      remove_tree dir)
  @@ fun () ->
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let wait_port pf =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      match
        if Sys.file_exists pf then
          int_of_string_opt (String.trim (read_file pf))
        else None
      with
      | Some port -> Printf.sprintf "127.0.0.1:%d" port
      | None ->
        if Unix.gettimeofday () > deadline then
          failwith ("worker never wrote " ^ pf)
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    in
    go ()
  in
  f (List.map (fun (_, pf) -> wait_port pf) members)

let dist_for name ~shards =
  let module Distwork = Cmo_driver.Distwork in
  let module Netio = Cmo_support.Netio in
  let module Json = Cmo_obs.Json in
  let module Server = Cmo_server.Server in
  let module Client = Cmo_server.Client in
  header
    (Printf.sprintf "Distributed link-time CMO (%s x %d shards, +O4)" name
       shards);
  let listing = Genprog.sharded (Suite.find name) ~shards in
  Printf.printf "%d modules, %d lines; worker binary %s\n"
    (List.length listing)
    (Genprog.source_lines listing)
    (Distwork.resolve_worker ());
  let sources =
    List.map (fun (name, text) -> { Pipeline.name; text }) listing
  in
  let cmo_set =
    List.filter_map
      (fun (n, _) -> if String.equal n "main_mod" then None else Some n)
      listing
  in
  let options = { Options.o4 with Options.cmo_modules = Some cmo_set } in
  let failures = ref 0 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let identical (b : Pipeline.build) (o : Pipeline.build) =
    b.Pipeline.image.Cmo_link.Image.code = o.Pipeline.image.Cmo_link.Image.code
    && b.Pipeline.image.Cmo_link.Image.funcs
       = o.Pipeline.image.Cmo_link.Image.funcs
    && b.Pipeline.objects = o.Pipeline.objects
  in
  let oracle, oracle_wall =
    timed (fun () -> Pipeline.compile { options with Options.jobs = 1 } sources)
  in
  Printf.printf "one-shot oracle: %.3fs wall\n" oracle_wall;
  (* Every leg lands a row in BENCH_dist.json — the machine-readable
     record of the whole sweep, TCP legs included. *)
  let legs = ref [] in
  let note_leg leg wall cpu pjobs lost =
    legs :=
      Json.Obj
        [
          ("leg", Json.Str leg);
          ("wall_s", Json.Num wall);
          ("cpu_s", Json.Num cpu);
          ("pjobs", Json.Num (float_of_int pjobs));
          ("lost", Json.Num (float_of_int lost));
        ]
      :: !legs
  in
  let run_leg leg options' =
    let j0 = Distwork.jobs_total () and l0 = Distwork.lost_total () in
    let b, wall = timed (fun () -> Pipeline.compile options' sources) in
    let cpu = Pipeline.phase_cpu_seconds b.Pipeline.report in
    let pjobs = Distwork.jobs_total () - j0 in
    let lost = Distwork.lost_total () - l0 in
    note_leg leg wall cpu pjobs lost;
    let ok = identical b oracle in
    if not ok then incr failures;
    Printf.printf "%-16s | %8.3f | %8.3f | %6d %6d | %s\n%!" leg wall cpu pjobs
      lost
      (if ok then "identical to oracle" else "DIVERGED from oracle");
    lost
  in
  Printf.printf "%-16s | %8s | %8s | %6s %6s | %s\n" "leg" "wall s" "cpu s"
    "pjobs" "lost" "output";
  (* Process-isolated partition workers at j in {1, 2, 4}. *)
  List.iter
    (fun jobs ->
      ignore
        (run_leg
           (Printf.sprintf "proc-j%d" jobs)
           { options with Options.jobs = jobs; dist = true }))
    [ 1; 2; 4 ];
  (* The same partitions placed on a real TCP fleet (two loopback
     [cmoc-worker --listen] processes), then a mid-build network
     partition that must degrade to local recompute invisibly. *)
  with_worker_fleet 2 (fun workers ->
      List.iter
        (fun jobs ->
          ignore
            (run_leg
               (Printf.sprintf "tcp-j%d" jobs)
               { options with Options.jobs = jobs; dist = true; workers }))
        [ 2; 4 ];
      (match Netio.install_plan "partition@5" with
      | Ok () -> ()
      | Error m -> failwith ("partition plan rejected: " ^ m));
      Fun.protect ~finally:Netio.clear_plan (fun () ->
          let lost =
            run_leg "tcp-partition@5"
              { options with Options.jobs = 2; dist = true; workers }
          in
          if lost = 0 then begin
            incr failures;
            Printf.eprintf
              "dist: the tcp partition leg lost no worker (plan never fired)\n"
          end));
  (* The remote artifact cache: two cold checkouts share one daemon. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("cmo-bench-dist-" ^ name)
  in
  remove_tree dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let config =
    {
      Cmo_server.Server.socket = Filename.concat dir "cmocd.sock";
      builders = 1;
      queue_max = 4;
      state_dir = Filename.concat dir "state";
      cache_capacity = None;
      trace = None;
    }
  in
  let server = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Client.with_connect ~socket:config.Server.socket Client.shutdown_server;
      Server.wait server)
  @@ fun () ->
  Client.with_connect ~socket:config.Server.socket @@ fun conn ->
  let remote = Client.remote conn in
  let checkout label =
    let store_dir = Filename.concat dir label in
    Sys.mkdir store_dir 0o755;
    let store = Store.open_ ~dir:store_dir () in
    let j0 = Distwork.jobs_total () and l0 = Distwork.lost_total () in
    let (b, wall) =
      timed (fun () ->
          Fun.protect
            ~finally:(fun () -> Store.close store)
            (fun () ->
              Pipeline.compile ~cache:store ~remote
                { options with Options.jobs = 2; dist = true }
                sources))
    in
    note_leg ("remote-" ^ label) wall
      (Pipeline.phase_cpu_seconds b.Pipeline.report)
      (Distwork.jobs_total () - j0)
      (Distwork.lost_total () - l0);
    if not (identical b oracle) then begin
      incr failures;
      Printf.eprintf "dist: %s diverged from the oracle\n" label
    end;
    match b.Pipeline.report.Pipeline.cache with
    | None ->
      incr failures;
      Printf.eprintf "dist: %s carried no cache usage\n" label;
      (wall, 0, 0)
    | Some c -> (wall, c.Pipeline.remote_hits, c.Pipeline.remote_misses)
  in
  let w1, h1, m1 = checkout "checkout1" in
  let w2, h2, m2 = checkout "checkout2" in
  let rate h m = 100.0 *. float_of_int h /. float_of_int (max 1 (h + m)) in
  Printf.printf
    "remote cache: checkout1 %.3fs, %d hits/%d misses (%.1f%%); checkout2 \
     %.3fs, %d hits/%d misses (%.1f%%)\n"
    w1 h1 m1 (rate h1 m1) w2 h2 m2 (rate h2 m2);
  if h2 = 0 || m2 > 0 then begin
    incr failures;
    Printf.eprintf "dist: second checkout should hit the remote for every \
                    module (%d hits, %d misses)\n" h2 m2
  end;
  (* Chaos tail: a worker SIGKILLed mid-protocol degrades one
     partition to local recompute, invisibly. *)
  Unix.putenv "CMO_DIST_CHAOS" "kill@3";
  let j0 = Distwork.jobs_total () and l0 = Distwork.lost_total () in
  let chaos, chaos_wall =
    timed (fun () ->
        Fun.protect
          ~finally:(fun () -> Unix.putenv "CMO_DIST_CHAOS" "")
          (fun () ->
            Pipeline.compile
              { options with Options.jobs = 2; dist = true }
              sources))
  in
  let lost = Distwork.lost_total () - l0 in
  note_leg "chaos-kill@3" chaos_wall
    (Pipeline.phase_cpu_seconds chaos.Pipeline.report)
    (Distwork.jobs_total () - j0)
    lost;
  let ok = identical chaos oracle in
  if not ok || lost = 0 then incr failures;
  Printf.printf "chaos kill@3: %.3fs, %d worker(s) lost, %s\n" chaos_wall lost
    (if ok then "byte-identical recovery"
     else "DIVERGED (or chaos never fired)");
  let json_path = "BENCH_dist.json" in
  Fsio.atomic_write json_path
    (Json.to_string
       (Json.Obj
          [
            ("bench", Json.Str "dist");
            ("program", Json.Str name);
            ("shards", Json.Num (float_of_int shards));
            ("oracle_wall_s", Json.Num oracle_wall);
            ("legs", Json.Arr (List.rev !legs));
          ]));
  Printf.printf "wrote %s (%d legs)\n" json_path (List.length !legs);
  if !failures > 0 then begin
    Printf.eprintf "dist benchmark: %d failure(s)\n" !failures;
    exit 1
  end

let dist () = dist_for "gcc" ~shards:4
let dist_smoke () = dist_for "li" ~shards:3

(* ------------------------------------------------------------------ *)
(* Fleet-scale PGO: where does Fig-6-style selectivity start picking
   the wrong hot 20%?  A synthetic fleet of users uploads sampled,
   noisy, version-skewed profile shards; ingestion folds them into one
   canonical db; the metric is the overlap of the hot-module set that
   db selects with the single-run oracle's.  Three legs ride along:
   arrival-order determinism (any permutation of the shards must yield
   a byte-identical db), the poisoning clamp (one flat 1000x-inflated
   adversarial shard must not change module selection), and the
   unmatched-weight accounting under version skew. *)
(* ------------------------------------------------------------------ *)

let pgo_for name ~users ~rates ~stales ~assertions =
  header
    (Printf.sprintf "Fleet PGO sweep (%s personality, %d users)" name users);
  let module Ingest = Cmo_profile.Ingest in
  let module Correlate = Cmo_profile.Correlate in
  let module Fleet = Cmo_workload.Fleet in
  let module Selectivity = Cmo_hlo.Selectivity in
  let failures = ref 0 in
  let cfg = Suite.find name in
  let gen = Genprog.generate cfg in
  let sources = sources_of cfg in
  let current_fp = Ingest.fingerprint gen in
  let oracle = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  (* The previous source version: same interfaces, different bodies.
     Stale users' shards are drawn from a profile of *that* program
     and stamped with its fingerprint, so both the skew down-weight
     and the unmatched-key accounting get exercised by real drift. *)
  let prev = Genprog.evolve cfg ~changed:[ 0; 2 ] ~evolution:1 in
  let prev_fp = Ingest.fingerprint prev in
  let stale_oracle =
    Pipeline.train ~inputs:[ Genprog.training_input cfg ]
      (List.map (fun (name, text) -> { Pipeline.name; text }) prev)
  in
  let modules = Pipeline.frontend sources in
  let hot_set db =
    ignore (Correlate.annotate db modules);
    let sel = Selectivity.select ~percent:20.0 modules in
    Correlate.clear modules;
    List.sort_uniq compare sel.Cmo_hlo.Selectivity.cmo_modules
  in
  let oracle_set = hot_set oracle in
  let overlap set =
    let inter = List.filter (fun m -> List.mem m oracle_set) set in
    float_of_int (List.length inter)
    /. float_of_int (max 1 (List.length oracle_set))
  in
  let policy = Ingest.default_policy ~current_fp in
  let fleet ~rate ~stale_fraction ~seed =
    Fleet.generate
      {
        Fleet.users;
        sample_rate = rate;
        stale_fraction;
        noise = 0.1;
        fleet_seed = seed;
      }
      ~oracle ~current_fp ~stale:(stale_oracle, prev_fp) ()
  in
  Printf.printf "hot-20%% overlap vs single-run oracle (%d modules hot)\n"
    (List.length oracle_set);
  Printf.printf "%-12s |" "rate \\ stale";
  List.iter (fun s -> Printf.printf " %7.0f%%" (100.0 *. s)) stales;
  Printf.printf "\n";
  let cell = ref 0 in
  let results =
    List.map
      (fun rate ->
        Printf.printf "%-12s |" (Printf.sprintf "1/%g" (1.0 /. rate));
        let row =
          List.map
            (fun stale_fraction ->
              incr cell;
              let shards =
                fleet ~rate ~stale_fraction ~seed:(1000 + !cell)
              in
              let db, _ = Ingest.ingest ~policy shards in
              let ov = overlap (hot_set db) in
              Printf.printf " %7.2f " ov;
              ((rate, stale_fraction), ov))
            stales
        in
        Printf.printf "\n%!";
        row)
      rates
    |> List.concat
  in
  (* Unmatched-weight accounting at the most version-skewed cell: the
     drifted keys must be visible, not silently dropped. *)
  let most_stale =
    fleet ~rate:1.0 ~stale_fraction:(List.fold_left Float.max 0.0 stales)
      ~seed:77
  in
  let skew_db, skew_stats = Ingest.ingest ~policy most_stale in
  let st = Correlate.annotate skew_db modules in
  Correlate.clear modules;
  Printf.printf
    "version skew: %d shards skewed, %d db keys unmatched (weight %.0f of \
     %.0f)\n"
    skew_stats.Ingest.ing_skewed st.Correlate.unmatched_keys
    st.Correlate.unmatched_weight st.Correlate.total_count;
  (* Determinism leg: same shard multiset, reversed arrival order,
     byte-identical canonical db. *)
  let det_shards = fleet ~rate:0.01 ~stale_fraction:0.3 ~seed:42 in
  let d1, _ = Ingest.ingest ~policy det_shards in
  let d2, _ = Ingest.ingest ~policy (List.rev det_shards) in
  let det_ok = Db.encode d1 = Db.encode d2 in
  Printf.printf "arrival-order determinism: %s\n"
    (if det_ok then "byte-identical" else "DIVERGED");
  if not det_ok then incr failures;
  (* Poisoning leg: one flat, 1000x-inflated shard.  With the clamp it
     must not change module selection; with the clamp disabled it is
     allowed to (and usually does — that is the attack). *)
  let clean = fleet ~rate:1.0 ~stale_fraction:0.0 ~seed:7 in
  let poisoned = Fleet.poison ~factor:1000.0 (List.hd clean) :: clean in
  let clean_set = hot_set (fst (Ingest.ingest ~policy clean)) in
  let clamped_set = hot_set (fst (Ingest.ingest ~policy poisoned)) in
  let unclamped_set =
    hot_set
      (fst
         (Ingest.ingest
            ~policy:{ policy with Ingest.clamp_ratio = infinity }
            poisoned))
  in
  let clamp_ok = clamped_set = clean_set in
  Printf.printf
    "poisoning: clamped selection %s; unclamped selection %s the attack\n"
    (if clamp_ok then "unchanged" else "CHANGED")
    (if unclamped_set = clean_set then "also survived" else "followed");
  if not clamp_ok then incr failures;
  if assertions then begin
    (* The acceptance bar: 1/100 sampling at zero staleness must still
       find >= 95% of the oracle's hot set. *)
    List.iter
      (fun ((rate, stale), ov) ->
        if rate = 0.01 && stale = 0.0 && ov < 0.95 then begin
          incr failures;
          Printf.eprintf
            "pgo: overlap %.2f < 0.95 at 1/100 sampling, no staleness\n" ov
        end)
      results
  end;
  if !failures > 0 then begin
    Printf.eprintf "pgo benchmark: %d failure(s)\n" !failures;
    exit 1
  end

let pgo () =
  pgo_for "li" ~users:120
    ~rates:[ 1.0; 0.01; 1e-3; 1e-4; 1e-5 ]
    ~stales:[ 0.0; 0.3; 0.7 ] ~assertions:true

let pgo_smoke () =
  pgo_for "li" ~users:60 ~rates:[ 1.0; 0.01 ] ~stales:[ 0.0; 0.5 ]
    ~assertions:true

(* ------------------------------------------------------------------ *)
(* Canary detection floor: the stable and canary cohorts are fed from
   the two arms of an A/B fleet whose only difference is a controlled
   rank-swap divergence planted into the canary arm's oracle.  The
   sweep asks: across sampling rates, how much divergence does the
   selection diff need before it reports a module flip?  Two legs ride
   along: the divergence-0 identity law (same seed, byte-identical
   arms, a no-flip report with empty module deltas, deterministic
   report encoding) and a registry leg (the same shard multisets
   ingested in opposite arrival orders into two registries must pull
   byte-identical dbs and produce identical verdicts). *)
(* ------------------------------------------------------------------ *)

let canary_for name ~users ~rates ~divergences ~assertions =
  header
    (Printf.sprintf "Canary flip sweep (%s personality, %d users)" name users);
  let module Ingest = Cmo_profile.Ingest in
  let module Cohort = Cmo_profile.Cohort in
  let module Fleet = Cmo_workload.Fleet in
  let module Selectivity = Cmo_hlo.Selectivity in
  let failures = ref 0 in
  let cfg = Suite.find name in
  let gen = Genprog.generate cfg in
  let sources = sources_of cfg in
  let current_fp = Ingest.fingerprint gen in
  let oracle = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let modules = Pipeline.frontend sources in
  let policy = Ingest.default_policy ~current_fp in
  let hot label db =
    Selectivity.cohort_hot_set ~percent:20.0 ~label db modules
  in
  let arms ~rate ~divergence ~seed =
    Fleet.ab_arms
      { Fleet.users; sample_rate = rate; stale_fraction = 0.0; noise = 0.1;
        fleet_seed = seed }
      ~oracle ~current_fp ~divergence
  in
  let report_of (a, b) =
    let base, _ = Ingest.ingest ~policy a in
    let canary, _ = Ingest.ingest ~policy b in
    Cohort.Diff.diff ~base:(hot "stable" base) (hot "canary" canary)
  in
  Printf.printf
    "would-flip verdict at 20%% selection, threshold %.2f (FLIP, or max \
     share shift)\n"
    Cohort.Diff.default_threshold;
  Printf.printf "%-12s |" "rate \\ div";
  List.iter (fun d -> Printf.printf " %8.2f" d) divergences;
  Printf.printf "\n";
  let cell = ref 0 in
  let results =
    List.map
      (fun rate ->
        Printf.printf "%-12s |" (Printf.sprintf "1/%g" (1.0 /. rate));
        let row =
          List.map
            (fun divergence ->
              incr cell;
              let r = report_of (arms ~rate ~divergence ~seed:(3000 + !cell)) in
              (match r.Cohort.Diff.r_verdict with
              | Cohort.Diff.Flip -> Printf.printf "     FLIP"
              | Cohort.Diff.No_flip ->
                Printf.printf "   %.4f" r.Cohort.Diff.r_max_shift);
              ((rate, divergence), r))
            divergences
        in
        Printf.printf "\n%!";
        row)
      rates
    |> List.concat
  in
  (* Identity law: divergence 0 with a shared seed is the *same* fleet
     twice — byte-identical arms, a no-flip report with empty module
     deltas, and a deterministic report encoding. *)
  let a0, b0 = arms ~rate:1.0 ~divergence:0.0 ~seed:11 in
  let ia, _ = Ingest.ingest ~policy a0 in
  let ib, _ = Ingest.ingest ~policy b0 in
  let arms_ok = Db.encode ia = Db.encode ib in
  let r1 = Cohort.Diff.diff ~base:(hot "stable" ia) (hot "canary" ib) in
  let r2 = Cohort.Diff.diff ~base:(hot "stable" ia) (hot "canary" ib) in
  let clean_ok =
    r1.Cohort.Diff.r_verdict = Cohort.Diff.No_flip
    && r1.Cohort.Diff.r_mod_in = []
    && r1.Cohort.Diff.r_mod_out = []
  in
  let enc_ok = Cohort.Diff.encode r1 = Cohort.Diff.encode r2 in
  Printf.printf "identity law (divergence 0): arms %s, report %s, encoding %s\n"
    (if arms_ok then "byte-identical" else "DIVERGED")
    (if clean_ok then "no-flip/empty" else "NOISY")
    (if enc_ok then "deterministic" else "UNSTABLE");
  if not (arms_ok && clean_ok && enc_ok) then incr failures;
  (* Registry leg: the same shard multisets ingested in opposite
     arrival orders into two registries must pull byte-identical dbs
     and hand the diff the same report, byte for byte. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "cmo-bench-canary"
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let a1, b1 = arms ~rate:1.0 ~divergence:1.0 ~seed:21 in
  let feed sub order_a order_b =
    let reg = Cohort.open_ ~dir:(Filename.concat dir sub) in
    Cohort.create reg "stable";
    ignore (Cohort.ingest_into reg "stable" order_a);
    ignore (Cohort.ingest_into reg "canary" order_b);
    let base, _ = Cohort.pull reg ~policy "stable" in
    let canary, _ = Cohort.pull reg ~policy "canary" in
    ( Db.encode base,
      Db.encode canary,
      Cohort.Diff.diff ~base:(hot "stable" base) (hot "canary" canary) )
  in
  let sb1, sc1, rr1 = feed "fwd" a1 b1 in
  let sb2, sc2, rr2 = feed "rev" (List.rev a1) (List.rev b1) in
  let pull_ok = sb1 = sb2 && sc1 = sc2 in
  let verdict_ok = Cohort.Diff.encode rr1 = Cohort.Diff.encode rr2 in
  Printf.printf "registry permutation: pulls %s, report %s\n"
    (if pull_ok then "byte-identical" else "DIVERGED")
    (if verdict_ok then "unchanged" else "CHANGED");
  if not (pull_ok && verdict_ok) then incr failures;
  if assertions then
    (* The acceptance bar: a full rank swap must flip at every swept
       sampling rate, and identical arms must never flip. *)
    List.iter
      (fun ((rate, div), r) ->
        if div >= 1.0 && r.Cohort.Diff.r_verdict <> Cohort.Diff.Flip then begin
          incr failures;
          Printf.eprintf
            "canary: planted full divergence undetected at rate 1/%g\n"
            (1.0 /. rate)
        end;
        if div <= 0.0 && r.Cohort.Diff.r_verdict <> Cohort.Diff.No_flip
        then begin
          incr failures;
          Printf.eprintf "canary: identical arms reported a flip at rate 1/%g\n"
            (1.0 /. rate)
        end)
      results;
  if !failures > 0 then begin
    Printf.eprintf "canary benchmark: %d failure(s)\n" !failures;
    exit 1
  end

let canary () =
  canary_for "li" ~users:40 ~rates:[ 1.0; 0.1; 0.01 ]
    ~divergences:[ 0.0; 0.4; 0.8; 1.0 ] ~assertions:true

let canary_smoke () =
  canary_for "li" ~users:30 ~rates:[ 1.0; 0.01 ] ~divergences:[ 0.0; 1.0 ]
    ~assertions:true

let all = [ "fig1", fig1; "fig4", fig4; "fig5", fig5; "fig6", fig6;
            "bytes-per-line", bytes_per_line; "ablation", ablation;
            "stale", stale; "micro", micro; "incremental", incremental;
            "incremental-smoke", incremental_smoke;
            "parallel", parallel; "parallel-smoke", parallel_smoke;
            "fuzz-smoke", fuzz_smoke; "check-overhead", check_overhead;
            "trace-smoke", trace_smoke;
            "fault-sweep", fault_sweep; "fault-sweep-smoke", fault_sweep_smoke;
            "storm", storm; "storm-smoke", storm_smoke;
            "dist", dist; "dist-smoke", dist_smoke;
            "pgo", pgo; "pgo-smoke", pgo_smoke;
            "canary", canary; "canary-smoke", canary_smoke ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: rest when rest <> [] -> rest
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat ", " (List.map fst all));
        exit 1)
    requested
