(** The NAIM loader: owner and traffic manager of transitory optimizer
    data (paper sections 4.2-4.3).

    After {!register_module}, the loader owns every routine's IR as a
    *pool* that is, at any moment, in one of three states:

    - {b Expanded}: ordinary pointer-rich [Func.t], charged to the
      accountant at its modeled expanded size;
    - {b Compacted}: the relocatable byte form ({!Cmo_il.Ilcodec}),
      charged at its measured encoded length;
    - {b Offloaded}: stored in the disk {!Repository}, charging
      nothing.

    Clients {!acquire} a routine (pinning it expanded), mutate it,
    {!update} it if its size changed, and {!release} it.  Released
    pools are only *unload pending*: they sit in an LRU cache of
    expanded pools and are actually compacted/offloaded lazily when
    the cache exceeds its budget — the paper's lazy unloader.

    Whether eviction compacts, also compacts module symbol tables, or
    offloads to disk depends on the current {!level}, which is derived
    from resident bytes against the configured machine memory by
    staged thresholds (section 4.3: "these thresholds turn on more and
    more of the NAIM functionality"), or forced for experiments.

    Module symbol tables (globals, name tables) are their own pools:
    a module's symbol table is compactable only while none of its
    routines is expanded, and re-expands whenever one is acquired —
    the tree discipline of Figure 3 (children may point up, so a live
    child forces its parent expanded). *)

type level =
  | Off  (** Everything stays expanded. *)
  | Ir_compaction  (** Evicted routine IR is compacted in memory. *)
  | St_compaction  (** Additionally, idle module symbol tables compact. *)
  | Offloading  (** Additionally, evicted pools go to the repository. *)

type config = {
  machine_memory : int;  (** Modeled bytes of physical memory. *)
  ir_threshold : float;
      (** Fraction of [machine_memory] at which IR compaction engages. *)
  st_threshold : float;
  offload_threshold : float;
  cache_fraction : float;
      (** Fraction of [machine_memory] the expanded-pool cache may
          occupy before the unloader starts evicting. *)
  forced_level : level option;
      (** Override dynamic thresholds (used by the Figure 5 sweep). *)
}

val default_config : config
(** 256 MB machine, thresholds at 25% / 45% / 70%, cache at 30%. *)

type stats = {
  acquires : int;
  cache_hits : int;  (** Acquire found the pool expanded. *)
  uncompactions : int;  (** Acquire had to decode from bytes. *)
  repo_loads : int;  (** Acquire had to fetch from disk first. *)
  compactions : int;
  offloads : int;
  symtab_compactions : int;
}

type t

val create : ?repo:Repository.t -> config -> Memstats.t -> t
(** Without [repo], an in-memory repository backs offloading (tests,
    benches). *)

val memstats : t -> Memstats.t

val register_module : t -> Cmo_il.Ilmod.t -> unit
(** Takes ownership of the module's functions (the module's [funcs]
    list is emptied); globals and name table become the module's
    symbol-table pool.  Registration charges expanded sizes. *)

val acquire : t -> string -> Cmo_il.Func.t
(** Pin a routine expanded and return it.  Nested acquires are allowed
    (a pin count is kept).  @raise Not_found for an unknown name. *)

val release : t -> string -> unit
(** Unpin; when the pin count reaches zero the pool becomes unload
    pending and the lazy unloader may evict under memory pressure. *)

val update : t -> Cmo_il.Func.t -> unit
(** Re-measure a pinned routine after mutation; adjusts the
    accountant by the size delta.  The argument must be the exact
    value returned by {!acquire} (checked by name). *)

val add_func : t -> module_name:string -> Cmo_il.Func.t -> unit
(** Register a routine created during optimization (cloning). *)

val remove_func : t -> string -> unit
(** Delete a routine (dead-function elimination); discharges its
    bytes. *)

val with_func : t -> string -> (Cmo_il.Func.t -> 'a) -> 'a
(** [acquire] / f / [release], exception-safe. *)

val func_names : t -> string list
(** All registered routines, in deterministic registration order. *)

val arity_of : t -> string -> int option
(** A routine's arity without expanding it — interface data kept in
    the pool header.  [None] when no such routine is registered (a
    dangling reference, as far as this loader knows). *)

val global_size_of : t -> string -> int option
(** Size of a global owned by any registered module, by name. *)

val module_names : t -> string list

val funcs_of_module : t -> string -> string list

val module_of_func : t -> string -> string

val globals_of_module : t -> string -> Cmo_il.Ilmod.global list

val all_globals : t -> Cmo_il.Ilmod.global list
(** Every module's globals, in deterministic module order.  Global
    data is part of the always-available module records (reading it
    does not force routine pools in). *)

val extract_modules : t -> Cmo_il.Ilmod.t list
(** Rebuild complete modules (loading everything expanded); used when
    handing the program over to code generation or tests.  Leaves all
    pools unload-pending, not pinned. *)

val unload_all : t -> unit
(** Hint that nothing is needed soon: evict every unpinned pool as the
    current level allows. *)

val level : t -> level
(** The level the thresholds (or the override) currently dictate. *)

val stats : t -> stats

val close : t -> unit
(** Close (and delete) the backing repository file, if any. *)
