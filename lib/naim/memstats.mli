(** The optimizer memory accountant.

    Tracks modeled resident bytes by category, with a running peak.
    This is the measurement instrument behind Figures 4 and 5 of the
    paper: each pool charges its expanded (modeled, see
    {!Cmo_il.Size}) or compacted (measured encoding length) bytes to
    the appropriate category as the loader moves it between states.

    Categories follow the paper's data-structure taxonomy
    (Figure 3):
    - [Global]: program symbol table, call graph — always resident;
    - [Ir_expanded] / [Ir_compacted]: routine IR pools;
    - [Symtab_expanded] / [Symtab_compacted]: module symbol tables;
    - [Derived]: analysis results (recomputed, never persisted);
    - [Llo]: the low-level optimizer's working set. *)

type category =
  | Global
  | Ir_expanded
  | Ir_compacted
  | Symtab_expanded
  | Symtab_compacted
  | Derived
  | Llo

type t

val create : unit -> t

val charge : t -> category -> int -> unit
val release : t -> category -> int -> unit
(** Releasing more than is resident in a category is a programming
    error and raises [Invalid_argument]. *)

val resident : t -> int
(** Total currently-resident modeled bytes across all categories. *)

val resident_of : t -> category -> int

val hlo_resident : t -> int
(** Everything but [Llo] — the "HLO" series of Figure 4. *)

val peak : t -> int
(** High-water mark of {!resident}. *)

val peak_hlo : t -> int
(** High-water mark of {!hlo_resident}. *)

val reset_peak : t -> unit

val merge : t -> t -> unit
(** [merge dst src] folds a parallel worker's accountant into [dst]:
    residency adds per category, and the worker's peaks are rebased
    onto [dst]'s residency at merge time.  Merging one worker's
    accountant reproduces the sequential peaks exactly; merging
    several (in a fixed order) is the deterministic
    sequential-equivalent model the parallel pipeline reports. *)

val all_categories : category list

val pp : Format.formatter -> t -> unit
