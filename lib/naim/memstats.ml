type category =
  | Global
  | Ir_expanded
  | Ir_compacted
  | Symtab_expanded
  | Symtab_compacted
  | Derived
  | Llo

let all_categories =
  [ Global; Ir_expanded; Ir_compacted; Symtab_expanded; Symtab_compacted;
    Derived; Llo ]

let index = function
  | Global -> 0
  | Ir_expanded -> 1
  | Ir_compacted -> 2
  | Symtab_expanded -> 3
  | Symtab_compacted -> 4
  | Derived -> 5
  | Llo -> 6

let name = function
  | Global -> "global"
  | Ir_expanded -> "ir-expanded"
  | Ir_compacted -> "ir-compacted"
  | Symtab_expanded -> "symtab-expanded"
  | Symtab_compacted -> "symtab-compacted"
  | Derived -> "derived"
  | Llo -> "llo"

type t = {
  bytes : int array;
  mutable peak : int;
  mutable peak_hlo : int;
  mutable trace_ticks : int;  (* updates seen while tracing, for throttle *)
}

let create () =
  { bytes = Array.make 7 0; peak = 0; peak_hlo = 0; trace_ticks = 0 }

let resident t = Array.fold_left ( + ) 0 t.bytes

let hlo_resident t = resident t - t.bytes.(index Llo)

(* The trace sampler: every accountant update while tracing is on
   bumps [trace_ticks]; one update in [trace_interval] lands a
   multi-series gauge sample (per-category bytes + total) on the
   calling domain's track, giving the Perfetto memory-timeline view.
   Off the traced path this is one atomic load; [trace_ticks] is only
   touched when tracing, so untraced behaviour is bit-for-bit the
   old code. *)
let trace_interval = 32

let trace_sample t =
  Cmo_obs.Obs.sample "NAIM memory"
    (List.map
       (fun cat -> (name cat, float_of_int t.bytes.(index cat)))
       all_categories
    @ [ ("resident", float_of_int (resident t)) ])

let maybe_trace t =
  if Cmo_obs.Obs.enabled () then begin
    t.trace_ticks <- t.trace_ticks + 1;
    if t.trace_ticks mod trace_interval = 1 then trace_sample t
  end

let update_peaks t =
  let r = resident t in
  if r > t.peak then t.peak <- r;
  let h = hlo_resident t in
  if h > t.peak_hlo then t.peak_hlo <- h

let charge t cat n =
  assert (n >= 0);
  t.bytes.(index cat) <- t.bytes.(index cat) + n;
  update_peaks t;
  maybe_trace t

let release t cat n =
  assert (n >= 0);
  if n > t.bytes.(index cat) then
    invalid_arg
      (Printf.sprintf "Memstats.release: %s underflow (%d > %d)" (name cat) n
         t.bytes.(index cat));
  t.bytes.(index cat) <- t.bytes.(index cat) - n;
  maybe_trace t

let resident_of t cat = t.bytes.(index cat)

let peak t = t.peak

let peak_hlo t = t.peak_hlo

let reset_peak t =
  t.peak <- resident t;
  t.peak_hlo <- hlo_resident t

(* Fold a parallel worker's accountant into [dst].  The worker's
   charges are taken as having happened on top of whatever [dst] had
   resident when the worker started (which is what a sequential run
   would have seen), so on a single worker the merged peaks equal the
   sequential peaks exactly; with several concurrent workers the
   result is a deterministic sequential-equivalent model, not a
   measurement of true simultaneous residency. *)
let merge dst src =
  let base = resident dst in
  let base_hlo = hlo_resident dst in
  dst.peak <- max dst.peak (base + src.peak);
  dst.peak_hlo <- max dst.peak_hlo (base_hlo + src.peak_hlo);
  Array.iteri (fun i n -> dst.bytes.(i) <- dst.bytes.(i) + n) src.bytes;
  maybe_trace dst

let pp ppf t =
  Format.fprintf ppf "@[<v>resident %d bytes (peak %d, hlo peak %d)"
    (resident t) t.peak t.peak_hlo;
  List.iter
    (fun cat ->
      if t.bytes.(index cat) > 0 then
        Format.fprintf ppf "@,  %-18s %d" (name cat) t.bytes.(index cat))
    all_categories;
  Format.fprintf ppf "@]"
