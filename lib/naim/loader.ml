let log_src = Logs.Src.create "cmo.naim" ~doc:"NAIM loader traffic"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Ilcodec = Cmo_il.Ilcodec
module Size = Cmo_il.Size
module Intern = Cmo_support.Intern
module Codec = Cmo_support.Codec
module Obs = Cmo_obs.Obs

type level = Off | Ir_compaction | St_compaction | Offloading

type config = {
  machine_memory : int;
  ir_threshold : float;
  st_threshold : float;
  offload_threshold : float;
  cache_fraction : float;
  forced_level : level option;
}

let default_config =
  {
    machine_memory = 256 * 1024 * 1024;
    ir_threshold = 0.25;
    st_threshold = 0.45;
    offload_threshold = 0.70;
    cache_fraction = 0.30;
    forced_level = None;
  }

type stats = {
  acquires : int;
  cache_hits : int;
  uncompactions : int;
  repo_loads : int;
  compactions : int;
  offloads : int;
  symtab_compactions : int;
}

type pool_state =
  | Expanded of Func.t
  | Compacted of string
  | Offloaded of Repository.handle

type pool = {
  fname : string;
  pool_module : string;
  arity : int;  (* interface datum: readable without expanding *)
  mutable state : pool_state;
  mutable expanded_bytes : int;  (* modeled size of the expanded form *)
  mutable compact_charge : int;  (* modeled resident size when Compacted *)
  mutable pins : int;
  mutable last_touch : int;
  mutable pending : bool;  (* unpinned and expanded: eviction candidate *)
}

type module_rec = {
  mname : string;
  globals : Ilmod.global list;
  names : Intern.t;
  mutable symtab_bytes : int;
  mutable symtab_compact_bytes : int;
  mutable symtab_compacted : bool;
  mutable funcs_rev : string list;
  mutable expanded_count : int;
}

type t = {
  config : config;
  mem : Memstats.t;
  repo : Repository.t;
  owns_repo : bool;
  pools : (string, pool) Hashtbl.t;
  modules : (string, module_rec) Hashtbl.t;
  mutable module_order_rev : string list;
  mutable func_order_rev : string list;
  mutable clock : int;
  mutable s_acquires : int;
  mutable s_cache_hits : int;
  mutable s_uncompactions : int;
  mutable s_repo_loads : int;
  mutable s_compactions : int;
  mutable s_offloads : int;
  mutable s_symtab_compactions : int;
}

let create ?repo config mem =
  let owns_repo = repo = None in
  let repo = match repo with Some r -> r | None -> Repository.in_memory () in
  {
    config;
    mem;
    repo;
    owns_repo;
    pools = Hashtbl.create 512;
    modules = Hashtbl.create 64;
    module_order_rev = [];
    func_order_rev = [];
    clock = 0;
    s_acquires = 0;
    s_cache_hits = 0;
    s_uncompactions = 0;
    s_repo_loads = 0;
    s_compactions = 0;
    s_offloads = 0;
    s_symtab_compactions = 0;
  }

let memstats t = t.mem

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let level t =
  match t.config.forced_level with
  | Some l -> l
  | None ->
    let r = float_of_int (Memstats.resident t.mem) in
    let mm = float_of_int t.config.machine_memory in
    if r > t.config.offload_threshold *. mm then Offloading
    else if r > t.config.st_threshold *. mm then St_compaction
    else if r > t.config.ir_threshold *. mm then Ir_compaction
    else Off

let find_pool t fname =
  match Hashtbl.find_opt t.pools fname with
  | Some p -> p
  | None -> raise Not_found

let find_module t mname = Hashtbl.find t.modules mname

(* --- symbol-table pool state transitions --- *)

let encode_symtab (m : module_rec) =
  let w = Codec.Writer.create () in
  Codec.Writer.string w m.mname;
  let names = ref [] in
  Intern.iter m.names (fun _ s -> names := s :: !names);
  Codec.Writer.list w (Codec.Writer.string w) (List.rev !names);
  Codec.Writer.uvarint w (List.length m.globals);
  List.iter
    (fun (g : Ilmod.global) ->
      Codec.Writer.string w g.Ilmod.gname;
      Codec.Writer.uvarint w g.Ilmod.size;
      Codec.Writer.bool w g.Ilmod.exported;
      Codec.Writer.array w (Codec.Writer.int64 w) g.Ilmod.init)
    m.globals;
  Codec.Writer.length w

let compact_symtab t m =
  if not m.symtab_compacted then begin
    m.symtab_compact_bytes <- encode_symtab m;
    Memstats.release t.mem Memstats.Symtab_expanded m.symtab_bytes;
    Memstats.charge t.mem Memstats.Symtab_compacted m.symtab_compact_bytes;
    m.symtab_compacted <- true;
    t.s_symtab_compactions <- t.s_symtab_compactions + 1;
    Obs.tick "naim.loader" "symtab_compactions" 1
  end

let expand_symtab t m =
  if m.symtab_compacted then begin
    Memstats.release t.mem Memstats.Symtab_compacted m.symtab_compact_bytes;
    Memstats.charge t.mem Memstats.Symtab_expanded m.symtab_bytes;
    m.symtab_compacted <- false
  end

(* --- pool state transitions --- *)

let compact_pool t pool =
  match pool.state with
  | Expanded f ->
    let m = find_module t pool.pool_module in
    expand_symtab t m;  (* encoding needs the name table live *)
    let bytes = Ilcodec.encode_func ~names:m.names f in
    (* The resident compacted form is charged at its modeled
       relocatable size, not the (much denser) serialized stream. *)
    pool.compact_charge <- Size.func_compacted_bytes f;
    Memstats.release t.mem Memstats.Ir_expanded pool.expanded_bytes;
    Memstats.charge t.mem Memstats.Ir_compacted pool.compact_charge;
    pool.state <- Compacted bytes;
    pool.pending <- false;
    m.expanded_count <- m.expanded_count - 1;
    t.s_compactions <- t.s_compactions + 1;
    Obs.tick "naim.loader" "compactions" 1;
    Log.debug (fun log ->
        log "compacted %s (%d -> %d bytes)" pool.fname pool.expanded_bytes
          pool.compact_charge)
  | Compacted _ | Offloaded _ -> ()

let offload_pool t pool =
  compact_pool t pool;
  match pool.state with
  | Compacted bytes -> (
    match Repository.store t.repo bytes with
    | handle ->
      Memstats.release t.mem Memstats.Ir_compacted pool.compact_charge;
      pool.compact_charge <- 0;
      pool.state <- Offloaded handle;
      t.s_offloads <- t.s_offloads + 1;
      Obs.tick "naim.loader" "offloads" 1;
      Log.debug (fun log -> log "offloaded %s to the repository" pool.fname)
    | exception Sys_error m ->
      (* An unwritable repository costs memory headroom, not the
         build: the pool simply stays resident in compacted form. *)
      Obs.tick "naim.loader" "offload_skipped" 1;
      Log.warn (fun log ->
          log "repository store failed (%s); keeping %s in memory" m pool.fname))
  | Expanded _ | Offloaded _ -> ()

let expand_pool t pool =
  match pool.state with
  | Expanded f ->
    t.s_cache_hits <- t.s_cache_hits + 1;
    Obs.tick "naim.loader" "cache_hits" 1;
    f
  | Compacted bytes ->
    let m = find_module t pool.pool_module in
    expand_symtab t m;
    let f = Ilcodec.decode_func ~names:m.names bytes in
    Memstats.release t.mem Memstats.Ir_compacted pool.compact_charge;
    pool.compact_charge <- 0;
    Memstats.charge t.mem Memstats.Ir_expanded pool.expanded_bytes;
    pool.state <- Expanded f;
    m.expanded_count <- m.expanded_count + 1;
    t.s_uncompactions <- t.s_uncompactions + 1;
    Obs.tick "naim.loader" "uncompactions" 1;
    f
  | Offloaded handle ->
    let m = find_module t pool.pool_module in
    expand_symtab t m;
    let bytes = Repository.fetch t.repo handle in
    let f = Ilcodec.decode_func ~names:m.names bytes in
    Memstats.charge t.mem Memstats.Ir_expanded pool.expanded_bytes;
    pool.state <- Expanded f;
    m.expanded_count <- m.expanded_count + 1;
    t.s_repo_loads <- t.s_repo_loads + 1;
    t.s_uncompactions <- t.s_uncompactions + 1;
    Obs.tick "naim.loader" "repo_loads" 1;
    Obs.tick "naim.loader" "uncompactions" 1;
    f

(* --- the lazy unloader --- *)

let pending_bytes t =
  Hashtbl.fold
    (fun _ p acc -> if p.pending then acc + p.expanded_bytes else acc)
    t.pools 0

let lru_pending t =
  Hashtbl.fold
    (fun _ p best ->
      if not p.pending then best
      else
        match best with
        | Some b when b.last_touch <= p.last_touch -> best
        | _ -> Some p)
    t.pools None

let evict t =
  let lvl = level t in
  if lvl <> Off then begin
    let budget =
      int_of_float (t.config.cache_fraction *. float_of_int t.config.machine_memory)
    in
    let continue_ = ref true in
    while !continue_ && pending_bytes t > budget do
      match lru_pending t with
      | None -> continue_ := false
      | Some pool -> (
        match lvl with
        | Off -> continue_ := false
        | Ir_compaction | St_compaction -> compact_pool t pool
        | Offloading -> offload_pool t pool)
    done;
    match lvl with
    | St_compaction | Offloading ->
      Hashtbl.iter
        (fun _ m -> if m.expanded_count = 0 then compact_symtab t m)
        t.modules
    | Off | Ir_compaction -> ()
  end

(* --- public API --- *)

let register_module t (m : Ilmod.t) =
  if Hashtbl.mem t.modules m.Ilmod.mname then
    invalid_arg (Printf.sprintf "Loader: module %s already registered" m.Ilmod.mname);
  let names = Intern.create () in
  let rec_ =
    {
      mname = m.Ilmod.mname;
      globals = m.Ilmod.globals;
      names;
      symtab_bytes = Size.module_symtab_expanded_bytes m;
      symtab_compact_bytes = 0;
      symtab_compacted = false;
      funcs_rev = [];
      expanded_count = 0;
    }
  in
  Hashtbl.replace t.modules m.Ilmod.mname rec_;
  t.module_order_rev <- m.Ilmod.mname :: t.module_order_rev;
  Memstats.charge t.mem Memstats.Symtab_expanded rec_.symtab_bytes;
  List.iter
    (fun (f : Func.t) ->
      if Hashtbl.mem t.pools f.Func.name then
        invalid_arg (Printf.sprintf "Loader: function %s already registered" f.Func.name);
      let pool =
        {
          fname = f.Func.name;
          pool_module = m.Ilmod.mname;
          arity = f.Func.arity;
          state = Expanded f;
          expanded_bytes = Size.func_expanded_bytes f;
          compact_charge = 0;
          pins = 0;
          last_touch = tick t;
          pending = true;
        }
      in
      Hashtbl.replace t.pools f.Func.name pool;
      t.func_order_rev <- f.Func.name :: t.func_order_rev;
      rec_.funcs_rev <- f.Func.name :: rec_.funcs_rev;
      rec_.expanded_count <- rec_.expanded_count + 1;
      Memstats.charge t.mem Memstats.Ir_expanded pool.expanded_bytes)
    m.Ilmod.funcs;
  m.Ilmod.funcs <- [];
  evict t

let acquire t fname =
  let pool = find_pool t fname in
  t.s_acquires <- t.s_acquires + 1;
  Obs.tick "naim.loader" "acquires" 1;
  pool.last_touch <- tick t;
  let f = expand_pool t pool in
  pool.pending <- false;
  pool.pins <- pool.pins + 1;
  f

let release t fname =
  let pool = find_pool t fname in
  if pool.pins <= 0 then
    invalid_arg (Printf.sprintf "Loader.release: %s is not pinned" fname);
  pool.pins <- pool.pins - 1;
  if pool.pins = 0 then begin
    pool.pending <- true;
    evict t
  end

let update t (f : Func.t) =
  let pool = find_pool t f.Func.name in
  (match pool.state with
  | Expanded current when current == f -> ()
  | Expanded _ ->
    invalid_arg
      (Printf.sprintf "Loader.update: %s is not the acquired value" f.Func.name)
  | Compacted _ | Offloaded _ ->
    invalid_arg (Printf.sprintf "Loader.update: %s is not expanded" f.Func.name));
  let new_bytes = Size.func_expanded_bytes f in
  if new_bytes > pool.expanded_bytes then
    Memstats.charge t.mem Memstats.Ir_expanded (new_bytes - pool.expanded_bytes)
  else
    Memstats.release t.mem Memstats.Ir_expanded (pool.expanded_bytes - new_bytes);
  pool.expanded_bytes <- new_bytes

let add_func t ~module_name (f : Func.t) =
  let m = find_module t module_name in
  if Hashtbl.mem t.pools f.Func.name then
    invalid_arg (Printf.sprintf "Loader.add_func: %s already exists" f.Func.name);
  expand_symtab t m;
  let pool =
    {
      fname = f.Func.name;
      pool_module = module_name;
      arity = f.Func.arity;
      state = Expanded f;
      expanded_bytes = Size.func_expanded_bytes f;
      compact_charge = 0;
      pins = 0;
      last_touch = tick t;
      pending = true;
    }
  in
  Hashtbl.replace t.pools f.Func.name pool;
  t.func_order_rev <- f.Func.name :: t.func_order_rev;
  m.funcs_rev <- f.Func.name :: m.funcs_rev;
  m.expanded_count <- m.expanded_count + 1;
  Memstats.charge t.mem Memstats.Ir_expanded pool.expanded_bytes;
  evict t

let remove_func t fname =
  let pool = find_pool t fname in
  if pool.pins > 0 then
    invalid_arg (Printf.sprintf "Loader.remove_func: %s is pinned" fname);
  let m = find_module t pool.pool_module in
  (match pool.state with
  | Expanded _ ->
    Memstats.release t.mem Memstats.Ir_expanded pool.expanded_bytes;
    m.expanded_count <- m.expanded_count - 1
  | Compacted _ ->
    Memstats.release t.mem Memstats.Ir_compacted pool.compact_charge
  | Offloaded _ -> ());
  Hashtbl.remove t.pools fname;
  m.funcs_rev <- List.filter (fun n -> n <> fname) m.funcs_rev;
  t.func_order_rev <- List.filter (fun n -> n <> fname) t.func_order_rev

let with_func t fname f =
  let func = acquire t fname in
  Fun.protect ~finally:(fun () -> release t fname) (fun () -> f func)

let func_names t = List.rev t.func_order_rev

let arity_of t fname =
  Option.map (fun p -> p.arity) (Hashtbl.find_opt t.pools fname)

let global_size_of t gname =
  Hashtbl.fold
    (fun _ m acc ->
      match acc with
      | Some _ -> acc
      | None ->
        List.find_map
          (fun (g : Ilmod.global) ->
            if g.Ilmod.gname = gname then Some g.Ilmod.size else None)
          m.globals)
    t.modules None

let module_names t = List.rev t.module_order_rev

let funcs_of_module t mname = List.rev (find_module t mname).funcs_rev

let module_of_func t fname = (find_pool t fname).pool_module

let globals_of_module t mname = (find_module t mname).globals

let all_globals t =
  List.concat_map (fun mname -> (find_module t mname).globals) (module_names t)

let extract_modules t =
  List.map
    (fun mname ->
      let m = find_module t mname in
      let il = Ilmod.create mname in
      il.Ilmod.globals <- m.globals;
      il.Ilmod.funcs <-
        List.map
          (fun fname ->
            let f = acquire t fname in
            release t fname;
            f)
          (List.rev m.funcs_rev);
      il)
    (module_names t)

let unload_all t =
  let lvl = level t in
  if lvl <> Off then begin
    Hashtbl.iter
      (fun _ pool ->
        if pool.pins = 0 then begin
          match lvl with
          | Off -> ()
          | Ir_compaction | St_compaction -> compact_pool t pool
          | Offloading -> offload_pool t pool
        end)
      t.pools;
    match lvl with
    | St_compaction | Offloading ->
      Hashtbl.iter
        (fun _ m -> if m.expanded_count = 0 then compact_symtab t m)
        t.modules
    | Off | Ir_compaction -> ()
  end

let stats t =
  {
    acquires = t.s_acquires;
    cache_hits = t.s_cache_hits;
    uncompactions = t.s_uncompactions;
    repo_loads = t.s_repo_loads;
    compactions = t.s_compactions;
    offloads = t.s_offloads;
    symtab_compactions = t.s_symtab_compactions;
  }

let close t = if t.owns_repo then Repository.close t.repo
