type backing =
  | File of { path : string; mutable oc : out_channel option; mutable ic : in_channel option }
  | Memory of Buffer.t

type t = {
  backing : backing;
  mutable next_offset : int;
  mutable stores : int;
  mutable fetches : int;
  id : int;  (* guards against foreign handles *)
}

type handle = { repo_id : int; offset : int; length : int }

(* Atomic: parallel HLO workers each create their own in-memory
   repository through their loaders. *)
let next_id = Atomic.make 0

let make backing =
  { backing; next_offset = 0; stores = 0; fetches = 0;
    id = 1 + Atomic.fetch_and_add next_id 1 }

let create ~path =
  let oc = open_out_bin path in
  make (File { path; oc = Some oc; ic = None })

let in_memory () = make (Memory (Buffer.create 4096))

let store t bytes =
  let offset = t.next_offset in
  let length = String.length bytes in
  (match t.backing with
  | File f -> (
    match f.oc with
    | Some oc ->
      output_string oc bytes;
      flush oc
    | None -> invalid_arg "Repository.store: closed repository")
  | Memory buf -> Buffer.add_string buf bytes);
  t.next_offset <- offset + length;
  t.stores <- t.stores + 1;
  Cmo_obs.Obs.tick "naim.repo" "stores" 1;
  Cmo_obs.Obs.tick "naim.repo" "store_bytes" length;
  { repo_id = t.id; offset; length }

let fetch t handle =
  if handle.repo_id <> t.id then
    invalid_arg "Repository.fetch: handle from another repository";
  if handle.offset + handle.length > t.next_offset then
    invalid_arg "Repository.fetch: handle beyond stored data";
  t.fetches <- t.fetches + 1;
  Cmo_obs.Obs.tick "naim.repo" "fetches" 1;
  Cmo_obs.Obs.tick "naim.repo" "fetch_bytes" handle.length;
  match t.backing with
  | Memory buf -> Buffer.sub buf handle.offset handle.length
  | File f ->
    let ic =
      match f.ic with
      | Some ic -> ic
      | None ->
        let ic = open_in_bin f.path in
        f.ic <- Some ic;
        ic
    in
    seek_in ic handle.offset;
    really_input_string ic handle.length

let stored_bytes t = t.next_offset

let stores t = t.stores

let fetches t = t.fetches

let close t =
  match t.backing with
  | Memory _ -> ()
  | File f ->
    Option.iter close_out f.oc;
    Option.iter close_in f.ic;
    f.oc <- None;
    f.ic <- None;
    if Sys.file_exists f.path then Sys.remove f.path
