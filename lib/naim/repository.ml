module Fsio = Cmo_support.Fsio

(* The file backing writes each pool as an Fsio length+CRC framed
   record: a torn or corrupted pool is then detected at fetch time
   instead of silently decoding garbage IL.  The memory backing
   (tests, parallel workers) stays raw — it cannot tear. *)
type backing =
  | File of { path : string; mutable app : Fsio.appender option }
  | Memory of Buffer.t

type t = {
  backing : backing;
  mutable next_offset : int;
  mutable stores : int;
  mutable fetches : int;
  id : int;  (* guards against foreign handles *)
  lock : Mutex.t;
      (* One repository can back the loaders of several concurrent
         build requests (the daemon's warm NAIM state), so offset
         allocation and the counters are serialized here. *)
}

type handle = { repo_id : int; offset : int; length : int; crc : int32 }

(* Atomic: parallel HLO workers each create their own in-memory
   repository through their loaders. *)
let next_id = Atomic.make 0

let make backing =
  { backing; next_offset = 0; stores = 0; fetches = 0;
    id = 1 + Atomic.fetch_and_add next_id 1; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~path =
  let app = Fsio.open_append ~trunc:true path in
  make (File { path; app = Some app })

let in_memory () = make (Memory (Buffer.create 4096))

let store t bytes =
  locked t @@ fun () ->
  let length = String.length bytes in
  let offset, crc, next =
    match t.backing with
    | File f -> (
      match f.app with
      | Some app ->
        let offset = Fsio.append_record app bytes in
        (offset, Fsio.crc32 bytes, Fsio.append_pos app)
      | None -> invalid_arg "Repository.store: closed repository")
    | Memory buf ->
      let offset = t.next_offset in
      Buffer.add_string buf bytes;
      (offset, 0l, offset + length)
  in
  t.next_offset <- next;
  t.stores <- t.stores + 1;
  Cmo_obs.Obs.tick "naim.repo" "stores" 1;
  Cmo_obs.Obs.tick "naim.repo" "store_bytes" length;
  { repo_id = t.id; offset; length; crc }

let fetch t handle =
  locked t @@ fun () ->
  if handle.repo_id <> t.id then
    invalid_arg "Repository.fetch: handle from another repository";
  let payload_end =
    match t.backing with
    | File _ -> handle.offset + Fsio.frame_overhead + handle.length
    | Memory _ -> handle.offset + handle.length
  in
  if payload_end > t.next_offset then
    invalid_arg "Repository.fetch: handle beyond stored data";
  t.fetches <- t.fetches + 1;
  Cmo_obs.Obs.tick "naim.repo" "fetches" 1;
  Cmo_obs.Obs.tick "naim.repo" "fetch_bytes" handle.length;
  match t.backing with
  | Memory buf -> Buffer.sub buf handle.offset handle.length
  | File f ->
    Fsio.read_record ~expect_crc:handle.crc f.path ~offset:handle.offset
      ~length:handle.length

let stored_bytes t = locked t (fun () -> t.next_offset)

let stores t = locked t (fun () -> t.stores)

let fetches t = locked t (fun () -> t.fetches)

let close t =
  locked t @@ fun () ->
  match t.backing with
  | Memory _ -> ()
  | File f ->
    Option.iter Fsio.close_append f.app;
    f.app <- None;
    if Sys.file_exists f.path then
      try Fsio.remove f.path with Sys_error _ -> ()
