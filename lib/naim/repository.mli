(** The NAIM disk repository (paper section 4.2).

    An append-only store of compacted object pools.  "The process that
    manages the movement of data in and out of the repository is
    called the loader" — {!Loader} is the only intended client.  The
    offloaded representation is byte-identical to the in-memory
    compacted representation, which is what makes loading fast in the
    paper's comparison with the Convex Application Compiler (no
    translation step, just eager pointer swizzling on decode).

    A repository is backed by a real file ({!create}) or by an
    in-memory buffer ({!in_memory}, for tests); both count traffic.
    The file backing frames each pool with {!Cmo_support.Fsio}'s
    length+CRC record header and verifies it on fetch, so a torn or
    bit-flipped pool surfaces as {!Cmo_support.Fsio.Corrupt_record}
    rather than decoding garbage IL.  Store failures (disk full)
    surface as [Sys_error]; the loader degrades them by keeping the
    pool in memory.

    Operations are serialized by an internal mutex, so one repository
    can back the loaders of several concurrent build requests — the
    build server shares a single warm repository across its whole
    lifetime (loaders created with [?repo] never close it). *)

type t

type handle
(** Stable reference to one stored pool. *)

val create : path:string -> t
(** Creates/truncates the backing file. *)

val in_memory : unit -> t

val store : t -> string -> handle
val fetch : t -> handle -> string
(** @raise Invalid_argument on a foreign or stale handle. *)

val stored_bytes : t -> int
(** Total bytes ever written (the repository is append-only; dead
    pool versions are not reclaimed until {!close}). *)

val stores : t -> int
val fetches : t -> int

val close : t -> unit
(** Closes and removes the backing file, if any. *)
