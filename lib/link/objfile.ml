module Mach = Cmo_llo.Mach
module Codec = Cmo_support.Codec
module W = Codec.Writer
module R = Codec.Reader
module Ilmod = Cmo_il.Ilmod

type payload =
  | Code of Mach.func_code list
  | Il of Ilmod.t

type t = {
  module_name : string;
  globals : Ilmod.global list;
  payload : payload;
  source_digest : string;
}

let of_code ~module_name ~globals ~source_digest codes =
  { module_name; globals; payload = Code codes; source_digest }

let of_il ~source_digest (m : Ilmod.t) =
  {
    module_name = m.Ilmod.mname;
    globals = m.Ilmod.globals;
    payload = Il m;
    source_digest;
  }

let is_il t = match t.payload with Il _ -> true | Code _ -> false

let magic = "CMOOBJ01"

let write_global w (g : Ilmod.global) =
  W.string w g.Ilmod.gname;
  W.uvarint w g.Ilmod.size;
  W.bool w g.Ilmod.exported;
  W.array w (W.int64 w) g.Ilmod.init

let read_global r : Ilmod.global =
  let gname = R.string r in
  let size = R.uvarint r in
  let exported = R.bool r in
  let init = R.array r R.int64 in
  { Ilmod.gname; size; exported; init }

let encode t =
  let w = W.create () in
  W.string w magic;
  W.string w t.module_name;
  W.string w t.source_digest;
  W.list w (write_global w) t.globals;
  (match t.payload with
  | Code codes ->
    W.byte w 0;
    W.list w (fun fc -> W.string w (Mach.encode_func fc)) codes
  | Il m ->
    W.byte w 1;
    W.string w (Cmo_il.Ilcodec.encode_module m));
  W.contents w

let decode bytes =
  let r = R.of_string bytes in
  let m = R.string r in
  if m <> magic then R.corrupt "not a CMO object file";
  let module_name = R.string r in
  let source_digest = R.string r in
  let globals = R.list r read_global in
  let payload =
    match R.byte r with
    | 0 -> Code (R.list r (fun r -> Mach.decode_func (R.string r)))
    | 1 -> Il (Cmo_il.Ilcodec.decode_module (R.string r))
    | t -> R.corrupt (Printf.sprintf "bad object payload tag %d" t)
  in
  { module_name; globals; payload; source_digest }

(* Atomic: an interrupted save leaves the previous object (or none),
   never a torn one that [load] would report as corrupt. *)
let save t path = Cmo_support.Fsio.atomic_write path (encode t)

let load path = decode (Cmo_support.Fsio.read_file path)

let func_names t =
  match t.payload with
  | Code codes -> List.map (fun fc -> fc.Mach.fname) codes
  | Il m -> List.map (fun f -> f.Cmo_il.Func.name) m.Ilmod.funcs
