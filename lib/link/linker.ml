module Mach = Cmo_llo.Mach
module Ilmod = Cmo_il.Ilmod

type error =
  | Undefined_symbol of string * string
  | Duplicate_symbol of string * string * string
  | No_entry
  | Il_payload of string

let pp_error ppf = function
  | Undefined_symbol (m, s) ->
    Format.fprintf ppf "undefined symbol %s (referenced from %s)" s m
  | Duplicate_symbol (s, m1, m2) ->
    Format.fprintf ppf "symbol %s defined in both %s and %s" s m1 m2
  | No_entry -> Format.pp_print_string ppf "no main function"
  | Il_payload m ->
    Format.fprintf ppf
      "module %s still carries IL; it must pass through HLO/LLO first" m

let link_inner ?routine_order objs =
  let errors = ref [] in
  (* Reject IL payloads up front. *)
  List.iter
    (fun (o : Objfile.t) ->
      if Objfile.is_il o then errors := Il_payload o.Objfile.module_name :: !errors)
    objs;
  (* Gather functions and globals. *)
  let func_def = Hashtbl.create 256 in  (* name -> (module, code) *)
  let func_order_rev = ref [] in
  let global_def = Hashtbl.create 256 in  (* name -> (module, global) *)
  let global_order_rev = ref [] in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (g : Ilmod.global) ->
          match Hashtbl.find_opt global_def g.Ilmod.gname with
          | Some (m, _) ->
            errors :=
              Duplicate_symbol (g.Ilmod.gname, m, o.Objfile.module_name)
              :: !errors
          | None ->
            Hashtbl.replace global_def g.Ilmod.gname (o.Objfile.module_name, g);
            global_order_rev := g.Ilmod.gname :: !global_order_rev)
        o.Objfile.globals;
      match o.Objfile.payload with
      | Objfile.Il _ -> ()
      | Objfile.Code codes ->
        List.iter
          (fun (fc : Mach.func_code) ->
            match Hashtbl.find_opt func_def fc.Mach.fname with
            | Some (m, _) ->
              errors :=
                Duplicate_symbol (fc.Mach.fname, m, o.Objfile.module_name)
                :: !errors
            | None ->
              Hashtbl.replace func_def fc.Mach.fname (o.Objfile.module_name, fc);
              func_order_rev := fc.Mach.fname :: !func_order_rev)
          codes)
    objs;
  let input_order = List.rev !func_order_rev in
  let placed =
    match routine_order with
    | None -> input_order
    | Some order ->
      let requested = List.filter (Hashtbl.mem func_def) order in
      let mentioned = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace mentioned n ()) requested;
      requested @ List.filter (fun n -> not (Hashtbl.mem mentioned n)) input_order
  in
  (* Data layout. *)
  let global_base = Hashtbl.create 256 in
  let data_cells = ref 0 in
  let globals_layout =
    List.map
      (fun name ->
        let _, (g : Ilmod.global) = Hashtbl.find global_def name in
        let base = !data_cells in
        Hashtbl.replace global_base name base;
        data_cells := base + g.Ilmod.size;
        (name, base, g.Ilmod.size))
      (List.rev !global_order_rev)
  in
  let data_init =
    List.concat_map
      (fun (name, base, _) ->
        let _, (g : Ilmod.global) = Hashtbl.find global_def name in
        List.filteri (fun _ _ -> true)
          (Array.to_list g.Ilmod.init)
        |> List.mapi (fun i v -> (base + i, v))
        |> List.filter (fun (_, v) -> not (Int64.equal v 0L)))
      globals_layout
  in
  (* Code layout: compute bases, then resolve. *)
  let func_base = Hashtbl.create 256 in
  let total = ref 0 in
  let funcs_layout =
    List.map
      (fun name ->
        let _, (fc : Mach.func_code) = Hashtbl.find func_def name in
        let base = !total in
        Hashtbl.replace func_base name base;
        total := base + Array.length fc.Mach.code;
        (name, base, Array.length fc.Mach.code))
      placed
  in
  let code = Array.make !total Mach.Halt in
  List.iter
    (fun (name, base, _) ->
      let module_name, (fc : Mach.func_code) = Hashtbl.find func_def name in
      Array.iteri
        (fun i instr ->
          let resolved =
            match instr with
            | Mach.B _ | Mach.Bz _ | Mach.Bnz _ ->
              Mach.retarget (fun t -> t + base) instr
            | Mach.Call_sym callee -> (
              match Hashtbl.find_opt func_base callee with
              | Some addr -> Mach.Call_abs addr
              | None ->
                errors := Undefined_symbol (module_name, callee) :: !errors;
                Mach.Halt)
            | Mach.Lga (d, g) -> (
              match Hashtbl.find_opt global_base g with
              | Some cell -> Mach.Li (d, Int64.of_int cell)
              | None ->
                errors := Undefined_symbol (module_name, g) :: !errors;
                Mach.Halt)
            | other -> other
          in
          code.(base + i) <- resolved)
        fc.Mach.code)
    funcs_layout;
  Cmo_obs.Obs.tick "link" "code_words" !total;
  Cmo_obs.Obs.tick "link" "data_cells" !data_cells;
  let entry =
    match Hashtbl.find_opt func_base "main" with
    | Some addr -> addr
    | None ->
      errors := No_entry :: !errors;
      0
  in
  match List.rev !errors with
  | [] ->
    Ok
      {
        Image.code;
        entry;
        funcs = funcs_layout;
        globals = globals_layout;
        data_init;
        data_cells = !data_cells;
      }
  | errs -> Error errs

let link ?routine_order objs =
  Cmo_obs.Obs.with_span ~cat:"link" "resolve+layout" (fun () ->
      link_inner ?routine_order objs)
