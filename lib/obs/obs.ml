type event =
  | Begin of {
      name : string;
      cat : string;
      ts : float;
      args : (string * string) list;
    }
  | End of { ts : float; args : (string * string) list }
  | Counter of { name : string; ts : float; series : (string * float) list }
  | Instant of { name : string; cat : string; ts : float }

(* One buffer per (domain, trace generation).  Events are consed
   newest-first and reversed at export.  [counters] holds the
   cumulative per-track counter table behind [tick]. *)
type tbuf = {
  track : string;
  gen : int;
  order : int;  (* global registration sequence; ties broken by it *)
  mutable events : event list;
  mutable depth : int;  (* open spans, so stray span_end is ignored *)
  counters : (string, (string * float ref) list ref) Hashtbl.t;
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let next_order = Atomic.make 0
let epoch = Atomic.make 0.0

let reg_mutex = Mutex.create ()
let registry : tbuf list ref = ref []  (* newest first; guarded by reg_mutex *)

type dstate = { mutable dtrack : string; mutable dbuf : tbuf option }

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { dtrack = "main"; dbuf = None })

let enabled () = Atomic.get enabled_flag

let set_track name =
  let st = Domain.DLS.get dls in
  st.dtrack <- name;
  st.dbuf <- None

let buffer () =
  let st = Domain.DLS.get dls in
  let gen = Atomic.get generation in
  match st.dbuf with
  | Some b when b.gen = gen -> b
  | _ ->
    let b =
      {
        track = st.dtrack;
        gen;
        order = Atomic.fetch_and_add next_order 1;
        events = [];
        depth = 0;
        counters = Hashtbl.create 8;
      }
    in
    Mutex.lock reg_mutex;
    registry := b :: !registry;
    Mutex.unlock reg_mutex;
    st.dbuf <- Some b;
    b

let now () = Unix.gettimeofday () -. Atomic.get epoch

let start () =
  Mutex.lock reg_mutex;
  registry := [];
  Mutex.unlock reg_mutex;
  Atomic.incr generation;
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

(* ---------- recording ---------- *)

let span_begin ?(cat = "task") ?(args = []) name =
  if enabled () then begin
    let b = buffer () in
    b.depth <- b.depth + 1;
    b.events <- Begin { name; cat; ts = now (); args } :: b.events
  end

let span_end ?(args = []) () =
  if enabled () then begin
    let b = buffer () in
    if b.depth > 0 then begin
      b.depth <- b.depth - 1;
      b.events <- End { ts = now (); args } :: b.events
    end
  end

let with_span ?cat ?args name f =
  if not (enabled ()) then f ()
  else begin
    span_begin ?cat ?args name;
    match f () with
    | v ->
      span_end ();
      v
    | exception e ->
      span_end ();
      raise e
  end

let instant ?(cat = "task") name =
  if enabled () then begin
    let b = buffer () in
    b.events <- Instant { name; cat; ts = now () } :: b.events
  end

let tick name series n =
  if enabled () then begin
    let b = buffer () in
    let row =
      match Hashtbl.find_opt b.counters name with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add b.counters name r;
        r
    in
    let cell =
      match List.assoc_opt series !row with
      | Some c -> c
      | None ->
        let c = ref 0.0 in
        row := !row @ [ (series, c) ];
        c
    in
    cell := !cell +. float_of_int n;
    let series = List.map (fun (s, c) -> (s, !c)) !row in
    b.events <- Counter { name; ts = now (); series } :: b.events
  end

let sample name series =
  if enabled () then begin
    let b = buffer () in
    b.events <- Counter { name; ts = now (); series } :: b.events
  end

(* ---------- merge and export ---------- *)

let snapshot () =
  Mutex.lock reg_mutex;
  let bufs = List.rev !registry in  (* registration order *)
  Mutex.unlock reg_mutex;
  let gen = Atomic.get generation in
  List.filter (fun b -> b.gen = gen) bufs

(* "main" first, then the rest ordered by (length, name) so that
   worker-2 sorts before worker-10. *)
let track_compare a b =
  match (a = "main", b = "main") with
  | true, true -> 0
  | true, false -> -1
  | false, true -> 1
  | false, false ->
    let c = compare (String.length a) (String.length b) in
    if c <> 0 then c else compare a b

let tracks () =
  let bufs = snapshot () in
  let names =
    List.sort_uniq track_compare (List.map (fun b -> b.track) bufs)
  in
  List.map
    (fun name ->
      let events =
        bufs
        |> List.filter (fun b -> b.track = name)
        |> List.concat_map (fun b -> List.rev b.events)
      in
      (name, events))
    names

let counter_totals () =
  let totals = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name row ->
          List.iter
            (fun (series, cell) ->
              let key = name ^ "/" ^ series in
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt totals key)
              in
              Hashtbl.replace totals key (prev +. !cell))
            !row)
        b.counters)
    (snapshot ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type span_stat = { label : string; spn_count : int; spn_seconds : float }

type summary = {
  track_count : int;
  event_count : int;
  open_spans : int;
  span_stats : span_stat list;
  counters : (string * float) list;
}

let summary () =
  let tracks = tracks () in
  let events = ref 0 in
  let open_spans = ref 0 in
  let order = ref [] in  (* labels, first-seen order, reversed *)
  let stats : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let bucket label =
    match Hashtbl.find_opt stats label with
    | Some b -> b
    | None ->
      let b = (ref 0, ref 0.0) in
      Hashtbl.add stats label b;
      order := label :: !order;
      b
  in
  List.iter
    (fun (_, evs) ->
      let stack = ref [] in
      List.iter
        (fun ev ->
          incr events;
          match ev with
          | Begin { name; cat; ts; _ } ->
            (* Stage spans are few and load-bearing: keep them by
               name.  Everything else (per-function, per-module, per-
               component spans) aggregates by category to stay
               compact. *)
            let label = if cat = "stage" then name else cat in
            stack := (label, ts) :: !stack
          | End { ts; _ } -> (
            match !stack with
            | (label, t0) :: rest ->
              stack := rest;
              let count, seconds = bucket label in
              incr count;
              seconds := !seconds +. (ts -. t0)
            | [] -> ())
          | Counter _ | Instant _ -> ())
        evs;
      open_spans := !open_spans + List.length !stack)
    tracks;
  let span_stats =
    List.rev_map
      (fun label ->
        let count, seconds = Hashtbl.find stats label in
        { label; spn_count = !count; spn_seconds = !seconds })
      !order
    |> List.rev
  in
  {
    track_count = List.length tracks;
    event_count = !events;
    open_spans = !open_spans;
    span_stats;
    counters = counter_totals ();
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>trace: %d events on %d track%s%s" s.event_count
    s.track_count
    (if s.track_count = 1 then "" else "s")
    (if s.open_spans = 0 then ""
     else Printf.sprintf " (%d unclosed spans)" s.open_spans);
  List.iter
    (fun st ->
      Format.fprintf ppf "@,  %-12s %6d span%s %10.3fs" st.label st.spn_count
        (if st.spn_count = 1 then " " else "s")
        st.spn_seconds)
    s.span_stats;
  if s.counters <> [] then begin
    Format.fprintf ppf "@,  counters:";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@,    %-32s %12.0f" k v)
      s.counters
  end;
  Format.fprintf ppf "@]"

let to_json () =
  let tracks = tracks () in
  let us ts = ts *. 1e6 in
  let args_obj args =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  emit
    (Json.Obj
       [
         ("name", Json.Str "process_name");
         ("ph", Json.Str "M");
         ("pid", Json.Num 1.0);
         ("tid", Json.Num 0.0);
         ("args", Json.Obj [ ("name", Json.Str "cmoc") ]);
       ]);
  List.iteri
    (fun i (track, evs) ->
      let tid = float_of_int (i + 1) in
      emit
        (Json.Obj
           [
             ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Num 1.0);
             ("tid", Json.Num tid);
             ("args", Json.Obj [ ("name", Json.Str track) ]);
           ]);
      let counter_name name =
        if track = "main" then name else name ^ " (" ^ track ^ ")"
      in
      List.iter
        (fun ev ->
          let common ph ts =
            [
              ("ph", Json.Str ph);
              ("ts", Json.Num (us ts));
              ("pid", Json.Num 1.0);
              ("tid", Json.Num tid);
            ]
          in
          match ev with
          | Begin { name; cat; ts; args } ->
            emit
              (Json.Obj
                 (("name", Json.Str name) :: ("cat", Json.Str cat)
                 :: common "B" ts
                 @ (if args = [] then [] else [ ("args", args_obj args) ])))
          | End { ts; args } ->
            emit
              (Json.Obj
                 (common "E" ts
                 @ if args = [] then [] else [ ("args", args_obj args) ]))
          | Counter { name; ts; series } ->
            emit
              (Json.Obj
                 (("name", Json.Str (counter_name name))
                 :: common "C" ts
                 @ [
                      ( "args",
                        Json.Obj
                          (List.map (fun (s, v) -> (s, Json.Num v)) series) );
                   ]))
          | Instant { name; cat; ts } ->
            emit
              (Json.Obj
                 (("name", Json.Str name) :: ("cat", Json.Str cat)
                 :: ("s", Json.Str "t") :: common "i" ts)))
        evs)
    tracks;
  Json.Arr (List.rev !events)

let export () = Json.to_string (to_json ())
