(** Process-wide observability sink: spans, counters and gauges,
    exportable as Chrome-trace/Perfetto JSON and as a compact text
    summary.

    Design constraints (mirroring the [--check] discipline):

    - {b Observational only.}  Nothing recorded here may influence
      compilation.  With tracing off, every entry point is a single
      atomic load followed by a return — no allocation on hot paths.
      Call sites that must build a formatted name or an argument list
      are expected to guard with [enabled ()] themselves.
    - {b Lock-free-cheap per domain.}  Each domain appends events to
      its own buffer (found via [Domain.DLS]); the only global lock is
      taken once per domain per trace, when the buffer registers
      itself.  Worker domains name their buffer with [set_track].
    - {b Deterministic merge.}  Export groups buffers by track name
      ("main" first, then workers in numeric order); buffers sharing a
      name — successive [Parwork] pools reuse "worker-{i}" — are
      concatenated in registration order, which is chronological
      because pools are created and joined sequentially.

    Timestamps are seconds since [start] ([Unix.gettimeofday]); the
    Chrome export converts to microseconds. *)

(** Raw event, exposed so tests can assert on structure without going
    through the JSON round trip.  Within a track, events are
    chronological. *)
type event =
  | Begin of {
      name : string;
      cat : string;
      ts : float;
      args : (string * string) list;
    }
  | End of { ts : float; args : (string * string) list }
  | Counter of { name : string; ts : float; series : (string * float) list }
  | Instant of { name : string; cat : string; ts : float }

(** {2 Lifecycle} *)

val start : unit -> unit
(** Discard any previous trace, restart the clock, enable recording. *)

val stop : unit -> unit
(** Disable recording.  Buffers survive until the next [start], so
    export/summary may be called after [stop]. *)

val enabled : unit -> bool
(** One atomic load; the guard hot call sites use. *)

val set_track : string -> unit
(** Name the calling domain's track (default "main").  Worker domains
    call this once at spawn; cheap and safe with tracing off. *)

(** {2 Recording} *)

val span_begin : ?cat:string -> ?args:(string * string) list -> string -> unit
val span_end : ?args:(string * string) list -> unit -> unit
(** Open/close a span on the calling domain's track.  [span_end]
    without a matching [span_begin] is ignored.  End-time [args]
    (e.g. rewrite counts known only after the work) are merged with
    the begin args by trace viewers. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [span_begin]/[span_end] around [f], exception-safe.  Checks
    [enabled] before touching anything, but evaluating the name/args
    at the call site may allocate — use only off hot paths. *)

val instant : ?cat:string -> string -> unit
(** Point event (a thin vertical marker in the viewer). *)

val tick : string -> string -> int -> unit
(** [tick name series n] bumps the cumulative counter
    [name]/[series] on this track by [n] and records a sample of all
    series of [name].  Totals are summed across tracks for
    [counter_totals] and the summary. *)

val sample : string -> (string * float) list -> unit
(** Absolute multi-series gauge sample (e.g. the NAIM memory
    timeline: one series per [Memstats] category). *)

(** {2 Inspection and export} *)

val tracks : unit -> (string * event list) list
(** Merged per-track chronological event lists, in export order. *)

val counter_totals : unit -> (string * float) list
(** Final cumulative counter values, ["name/series"] keys, summed
    across tracks, sorted by key. *)

type span_stat = { label : string; spn_count : int; spn_seconds : float }

type summary = {
  track_count : int;
  event_count : int;
  open_spans : int;  (** begins without a matching end at capture *)
  span_stats : span_stat list;
      (** stage spans individually by name, other categories
          aggregated by category; wall-clock inclusive time *)
  counters : (string * float) list;  (** as [counter_totals] *)
}

val summary : unit -> summary
val pp_summary : Format.formatter -> summary -> unit

val to_json : unit -> Json.t
(** Chrome-trace JSON array: thread-name metadata per track, B/E
    duration events, C counter events (counter names from non-main
    tracks are suffixed with the track so per-worker series stay
    distinct in the viewer). *)

val export : unit -> string
(** The trace as a Chrome-trace JSON string.  Callers persist it
    themselves (the driver uses [Fsio.atomic_write]; this module
    sits below the I/O layer and does not write files). *)
