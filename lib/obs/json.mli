(** Minimal JSON tree, writer and parser.

    The observability subsystem sits below every other library, and
    the container has no JSON package, so this is a small, dependency
    free implementation: enough to emit Chrome-trace files and
    machine-readable reports, and to parse them back for validation in
    tests and [bench trace-smoke].  Numbers are floats (as in JSON
    itself); integral values print without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite numbers render as 0,
    so output is always valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Recursive-descent parser for the full value grammar (objects,
    arrays, strings with escapes, numbers incl. exponents, literals).
    Rejects trailing garbage.  Errors carry a byte offset. *)

(** {2 Accessors} — each returns [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val arr : t -> t list option
