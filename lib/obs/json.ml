type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- writer ---------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if not (Float.is_finite x) then Buffer.add_char buf '0'
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------- parser ---------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'n' ->
          Buffer.add_char buf '\n';
          loop ()
        | 't' ->
          Buffer.add_char buf '\t';
          loop ()
        | 'r' ->
          Buffer.add_char buf '\r';
          loop ()
        | 'b' ->
          Buffer.add_char buf '\b';
          loop ()
        | 'f' ->
          Buffer.add_char buf '\012';
          loop ()
        | 'u' ->
          if !pos + 4 > n then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Encode the scalar as UTF-8 (surrogate pairs unsupported;
             our own writer never emits them). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then (
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
          else (
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
          loop ()
        | _ -> fail "bad escape")
      | c -> (
        Buffer.add_char buf c;
        loop ())
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> x
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        Arr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let str = function
  | Str s -> Some s
  | _ -> None

let num = function
  | Num x -> Some x
  | _ -> None

let arr = function
  | Arr xs -> Some xs
  | _ -> None
