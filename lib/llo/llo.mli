(** The low-level optimizer and code generator (the "LLO" of the
    paper's Figure 2): block positioning, instruction selection,
    register allocation, peephole optimization, frame building and
    emission, per routine.

    LLO is where the second profile effect lives: with [layout]
    enabled (+P), Pettis–Hansen positioning turns hot edges into
    fall-throughs and banishes cold blocks, which the VM's
    taken-branch and i-cache costs reward.

    LLO's working-set memory is modeled as quadratic in routine size
    (the paper, Figure 4 caption: "LLO's memory requirements increase
    quadratically as the sizes of the routines it processes are
    increased") and charged to the accountant's [Llo] category for
    the duration of each routine's compilation — which is how heavy
    inlining shows up in the "overall compiler" memory series. *)

type stats = {
  routines : int;
  mach_instrs : int;
  spilled_vregs : int;
  peephole_rewrites : int;
  layout_changes : int;
}

val compile_func :
  ?mem:Cmo_naim.Memstats.t ->
  ?check:(phase:string -> Cmo_il.Func.t -> unit) ->
  ?layout:bool ->
  ?schedule:bool ->
  module_name:string ->
  Cmo_il.Func.t ->
  Mach.func_code
(** [layout] defaults to [false]; enable it for PBO builds.  The
    input function's block order is permuted in place when layout
    runs. *)

val compile_module :
  ?mem:Cmo_naim.Memstats.t ->
  ?check:(phase:string -> Cmo_il.Func.t -> unit) ->
  ?layout:bool ->
  ?schedule:bool ->
  Cmo_il.Ilmod.t ->
  Mach.func_code list * stats
(** [schedule] (default true) runs the list scheduler; disable for
    the scheduling ablation.  [check] runs after block layout — the
    one LLO stage that rewrites IL — under the phase name
    ["layout"]. *)

val modeled_llo_bytes : int -> int
(** Modeled LLO working set for a routine of the given machine
    instruction count. *)
