module Memstats = Cmo_naim.Memstats

type stats = {
  routines : int;
  mach_instrs : int;
  spilled_vregs : int;
  peephole_rewrites : int;
  layout_changes : int;
}

(* Linear term: per-instruction structures (dependence graph nodes,
   live ranges).  Quadratic term: interference/dependence edges. *)
let modeled_llo_bytes n = (300 * n) + (n * n)

let compile_internal ?mem ?check ~layout ~schedule ~module_name f =
  let layout_changed = if layout then Layout.run f else false in
  (* Layout is the one LLO stage that rewrites IL (block order); the
     later stages work on vcode/mach forms the verifier cannot see. *)
  (match check with
  | Some run_check when layout -> run_check ~phase:"layout" f
  | Some _ | None -> ());
  let vc = Isel.select ~module_name f in
  if schedule then ignore (Sched.run vc);
  let mach_count =
    List.fold_left
      (fun acc (b : Isel.vblock) -> acc + List.length b.Isel.body + 1)
      0 vc.Isel.vblocks
  in
  let charged = Option.map (fun m ->
      let bytes = modeled_llo_bytes mach_count in
      Memstats.charge m Memstats.Llo bytes;
      (m, bytes))
    mem
  in
  let result = Regalloc.run vc in
  let peeps = Peephole.run result.Regalloc.vcode in
  let code = Codegen.emit result in
  Option.iter (fun (m, bytes) -> Memstats.release m Memstats.Llo bytes) charged;
  (code, result.Regalloc.spilled_vregs, peeps, layout_changed)

let compile_func ?mem ?check ?(layout = false) ?(schedule = true) ~module_name f =
  let code, _, _, _ =
    compile_internal ?mem ?check ~layout ~schedule ~module_name f
  in
  code

let compile_module ?mem ?check ?(layout = false) ?(schedule = true)
    (m : Cmo_il.Ilmod.t) =
  (* Per-module codegen span; instruction count attached at close. *)
  let traced = Cmo_obs.Obs.enabled () in
  if traced then Cmo_obs.Obs.span_begin ~cat:"llo" m.Cmo_il.Ilmod.mname;
  let stats =
    ref
      {
        routines = 0;
        mach_instrs = 0;
        spilled_vregs = 0;
        peephole_rewrites = 0;
        layout_changes = 0;
      }
  in
  let codes =
    List.map
      (fun f ->
        let code, spills, peeps, layout_changed =
          compile_internal ?mem ?check ~layout ~schedule
            ~module_name:m.Cmo_il.Ilmod.mname f
        in
        stats :=
          {
            routines = !stats.routines + 1;
            mach_instrs = !stats.mach_instrs + Array.length code.Mach.code;
            spilled_vregs = !stats.spilled_vregs + spills;
            peephole_rewrites = !stats.peephole_rewrites + peeps;
            layout_changes = !stats.layout_changes + (if layout_changed then 1 else 0);
          };
        code)
      m.Cmo_il.Ilmod.funcs
  in
  if traced then
    Cmo_obs.Obs.span_end
      ~args:
        [
          ("routines", string_of_int !stats.routines);
          ("mach_instrs", string_of_int !stats.mach_instrs);
        ]
      ();
  (codes, !stats)
