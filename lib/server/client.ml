type t = { fd : Unix.file_descr; mutable open_ : bool }

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* A socket string is a Unix-domain path, or "tcp:HOST:PORT" to reach
   a daemon on another machine (dialed through Netio: connect
   deadline, bounded retry for transient errors — and the test
   fault-injection chokepoint). *)
let connect ~socket =
  let fd =
    if String.length socket > 4 && String.sub socket 0 4 = "tcp:" then
      let rest = String.sub socket 4 (String.length socket - 4) in
      match Cmo_support.Netio.parse_addr rest with
      | Ok (host, port) -> Cmo_support.Netio.connect host port
      | Error m -> raise (Sys_error m)
    else begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    end
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  { fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connect ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let roundtrip t req =
  if not t.open_ then fail "connection is closed";
  (try Proto.write_message t.fd (Proto.string_of_request req)
   with Unix.Unix_error (e, _, _) ->
     fail "send failed: %s" (Unix.error_message e));
  match Proto.read_message t.fd with
  | Ok payload -> (
    match Proto.response_of_string payload with
    | Ok resp -> resp
    | Error m -> fail "bad response: %s" m)
  | Error `Eof -> fail "server closed the connection"
  | Error (`Bad m) -> fail "bad frame: %s" m

let ping t = match roundtrip t Proto.Ping with
  | Proto.Pong -> true
  | _ -> false

let build t req = roundtrip t (Proto.Build req)

let stats t =
  match roundtrip t Proto.Stats with
  | Proto.Stats_reply s -> s
  | r ->
    fail "unexpected reply to Stats: %s"
      (match r with
      | Proto.Pong -> "Pong"
      | Proto.Built _ -> "Built"
      | Proto.Rejected _ -> "Rejected"
      | Proto.Failed { reason; _ } -> "Failed: " ^ reason
      | Proto.Stats_reply _ -> assert false
      | Proto.Shutting_down -> "Shutting_down"
      | Proto.Cache_hit _ -> "Cache_hit"
      | Proto.Cache_miss -> "Cache_miss"
      | Proto.Cache_stored -> "Cache_stored"
      | Proto.Profile_stored _ -> "Profile_stored"
      | Proto.Profile_db _ -> "Profile_db"
      | Proto.Cohort_listing _ -> "Cohort_listing"
      | Proto.Cohort_stored _ -> "Cohort_stored"
      | Proto.Cohort_db _ -> "Cohort_db"
      | Proto.Cohort_report _ -> "Cohort_report")

let shutdown_server t =
  match roundtrip t Proto.Shutdown with
  | Proto.Shutting_down -> ()
  | _ -> fail "unexpected reply to Shutdown"

let cache_get t key =
  match roundtrip t (Proto.Cache_get { key }) with
  | Proto.Cache_hit { data } -> Some data
  | Proto.Cache_miss -> None
  | _ -> fail "unexpected reply to Cache_get"

let cache_put t key data =
  match roundtrip t (Proto.Cache_put { key; data }) with
  | Proto.Cache_stored -> ()
  | _ -> fail "unexpected reply to Cache_put"

let profile_put t shard =
  match roundtrip t (Proto.Profile_put { shard }) with
  | Proto.Profile_stored { shards } -> shards
  | Proto.Failed { reason; _ } -> fail "profile put refused: %s" reason
  | _ -> fail "unexpected reply to Profile_put"

let profile_get t ~current_fp =
  match roundtrip t (Proto.Profile_get { current_fp }) with
  | Proto.Profile_db { data; shards; skipped } -> (data, shards, skipped)
  | _ -> fail "unexpected reply to Profile_get"

let cohort_list t =
  match roundtrip t Proto.Cohort_list with
  | Proto.Cohort_listing { cohorts } -> cohorts
  | Proto.Failed { reason; _ } -> fail "cohort list refused: %s" reason
  | _ -> fail "unexpected reply to Cohort_list"

let cohort_ingest t ~cohort shards =
  match roundtrip t (Proto.Cohort_ingest { cohort; shards }) with
  | Proto.Cohort_stored { shards; _ } -> shards
  | Proto.Failed { reason; _ } -> fail "cohort ingest refused: %s" reason
  | _ -> fail "unexpected reply to Cohort_ingest"

let cohort_pull t ~cohort ~current_fp =
  match roundtrip t (Proto.Cohort_pull { cohort; current_fp }) with
  | Proto.Cohort_db { data; shards; skipped } -> (data, shards, skipped)
  | Proto.Failed { reason; _ } -> fail "cohort pull refused: %s" reason
  | _ -> fail "unexpected reply to Cohort_pull"

let cohort_diff t ~base ~canary ~percent ~threshold sources =
  match roundtrip t (Proto.Cohort_diff { base; canary; percent; threshold; sources })
  with
  | Proto.Cohort_report { report } -> (
    match Cmo_profile.Cohort.Diff.decode report with
    | report -> report
    | exception Cmo_support.Codec.Reader.Corrupt m ->
      fail "bad cohort report: %s" m)
  | Proto.Failed { reason; _ } -> fail "cohort diff refused: %s" reason
  | _ -> fail "unexpected reply to Cohort_diff"

let remote t =
  (* The pipeline's contract is that a remote degrades internally: the
     first transport or protocol failure turns this remote off for the
     rest of the build (every later get is a miss, every put a no-op),
     so a daemon dying mid-build costs one degradation, not one error
     per module. *)
  let dead = ref false in
  let guard default f =
    if !dead then default
    else
      try f ()
      with Protocol_error _ | Unix.Unix_error _ | Sys_error _ ->
        dead := true;
        default
  in
  {
    Cmo_driver.Distwork.remote_get =
      (fun key -> guard None (fun () -> cache_get t key));
    remote_put = (fun key data -> guard () (fun () -> cache_put t key data));
  }
