type 'a entry = { seq : int; cost : int; round : int; item : 'a }

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue_max : int;
  small_cost : int;
  age_rounds : int;
  mutable entries : 'a entry list;  (* admission order; scan is O(depth) *)
  mutable next_seq : int;
  mutable dispatch_round : int;
  mutable closed : bool;
}

let create ?(small_cost = 200) ?(age_rounds = 4) ~queue_max () =
  if queue_max < 1 then invalid_arg "Sched.create: queue_max < 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue_max;
    small_cost;
    age_rounds;
    entries = [];
    next_seq = 0;
    dispatch_round = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let depth t = locked t (fun () -> List.length t.entries)

let closed t = locked t (fun () -> t.closed)

let submit t ~cost item =
  locked t @@ fun () ->
  if t.closed || List.length t.entries >= t.queue_max then false
  else begin
    let e =
      { seq = t.next_seq; cost; round = t.dispatch_round; item }
    in
    t.next_seq <- t.next_seq + 1;
    t.entries <- t.entries @ [ e ];
    Condition.signal t.nonempty;
    true
  end

(* Effective class: small requests dispatch ahead of large ones (an
   edit-storm burst of little builds does not sit behind one huge
   build), but a large entry that has been passed over for
   [age_rounds] dispatches is promoted to the small class — so the
   storm cannot starve it.  Within a class, FIFO by admission seq. *)
let key t e =
  let cls =
    if e.cost <= t.small_cost || t.dispatch_round - e.round >= t.age_rounds
    then 0
    else 1
  in
  (cls, e.seq)

let take t =
  locked t @@ fun () ->
  let rec wait () =
    if t.entries <> [] then begin
      let best =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some e
            | Some b -> if key t e < key t b then Some e else acc)
          None t.entries
        |> Option.get
      in
      t.entries <- List.filter (fun e -> e.seq <> best.seq) t.entries;
      t.dispatch_round <- t.dispatch_round + 1;
      Some best.item
    end
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.lock;
      wait ()
    end
  in
  wait ()

let close t =
  locked t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty
