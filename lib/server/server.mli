(** The build-server daemon ([cmocd]'s engine).

    A long-lived process serving {!Proto} build requests over a
    Unix-domain socket against warm state that one-shot [cmoc] throws
    away after every run: one open {!Cmo_cache.Store} (so an edit
    storm's unchanged modules are served from cache) and one shared
    NAIM repository (so loaders offload into a single long-lived
    pool file), both held by a {!Cmo_driver.Buildsys} session.

    {b Concurrency.}  One thread accepts connections and each
    connection gets a reader thread; build requests pass through
    {!Sched} (admission control + FIFO-with-aging fairness) to a
    fixed pool of builder threads ([builders], i.e. $CMO_DAEMON_JOBS).
    Each in-flight build parallelizes internally on its own
    {!Cmo_driver.Parwork} domain pool per its requested [jobs].
    Requests are isolated by the store's snapshot-read/ordered-commit
    transactions; shared structures (store, repository, scheduler)
    are internally synchronized.

    {b Chaos.}  A request carrying a fault plan runs exclusively (the
    plan is process-wide), and the plan is cleared and the store
    reopened from disk afterwards — an injected crash kills that
    request only, and a retry finds the daemon serving and produces
    byte-identical artifacts.

    {b Shutdown} ({!shutdown}, or a {!Proto.Shutdown} request, or
    SIGINT/SIGTERM under {!run}): stop accepting, refuse new builds,
    drain admitted ones, close the session, remove the socket file. *)

type config = {
  socket : string;
      (** Where to listen: a Unix-domain socket path, or
          [tcp:HOST:PORT] for the multi-machine transport (port 0
          binds an ephemeral port — read the actual one back from
          {!address}). *)
  builders : int;  (** Concurrent build requests (>= 1). *)
  queue_max : int;  (** Admission bound; beyond it requests are rejected. *)
  state_dir : string;
      (** Created if missing; holds the warm store and the NAIM
          repository (under [<state_dir>/.cmo-cache]). *)
  cache_capacity : int option;  (** Store live-byte bound override. *)
  trace : string option;
      (** Record the daemon's whole lifetime with {!Cmo_obs.Obs} and
          write a Chrome-trace file here on shutdown.  Per-request
          reports then carry the cumulative counters ([report.obs]),
          which is how the storm bench watches the warm-cache hit
          rate rise. *)
}

val default_config : config
(** Socket ["cmocd.sock"], state dir [".cmocd"], builders and queue
    bound from [$CMO_DAEMON_JOBS] / [$CMO_QUEUE_MAX]. *)

type t

val start : ?handle_signals:bool -> config -> t
(** Bind the socket, open the warm session, spawn the accept and
    builder threads, return immediately.  If a Unix socket path
    exists and a peer answers on it, raises [Unix.Unix_error
    (EADDRINUSE, _, _)] instead of hijacking the live daemon's
    socket; only a stale path (connect refused / gone) is unlinked.
    A [tcp:] socket relies on the kernel's [EADDRINUSE].  With
    [handle_signals] (default [false]), SIGINT/SIGTERM handlers that
    {!shutdown} the daemon are installed {e before} the signals are
    unblocked in the calling thread, so no delivery window is left
    where a signal would kill the process without a drain. *)

val address : t -> string
(** The address actually bound: [config.socket], except that a
    [tcp:HOST:0] request reports the ephemeral port picked — what a
    client should be pointed at. *)

val shutdown : t -> unit
(** Initiate graceful shutdown; idempotent, callable from a signal
    handler or any thread.  Returns without waiting — {!wait}
    observes completion. *)

val wait : t -> unit
(** Block until the daemon has fully shut down (someone must call
    {!shutdown}, or a client must send {!Proto.Shutdown}); then the
    socket file is gone and the warm session closed. *)

val stats : t -> Proto.stats

val stopped : t -> bool
(** Shutdown has been initiated (drain may still be in progress). *)

val run : config -> unit
(** [start ~handle_signals:true] then [wait] — the [cmocd] main
    loop. *)
