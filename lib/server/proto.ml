module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline

type build_req = {
  tag : string;
  level : Options.level;
  pbo : bool;
  jobs : int;
  check : bool;
  fault : string option;
  sources : Pipeline.source list;
}

type request = Ping | Build of build_req | Stats | Shutdown

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  rejected : int;
  queue_depth : int;
  inflight : int;
  store_hits : int;
  store_misses : int;
}

type response =
  | Pong
  | Built of { tag : string; objects : string list; report : string }
  | Rejected of { tag : string; reason : string }
  | Failed of { tag : string; reason : string }
  | Stats_reply of stats
  | Shutting_down

(* ---- binary encoding (Codec, same substrate as object files) ---- *)

let level_tag = function Options.O1 -> 1 | Options.O2 -> 2 | Options.O4 -> 4

let level_of_tag r = function
  | 1 -> Options.O1
  | 2 -> Options.O2
  | 4 -> Options.O4
  | n -> ignore r; Codec.Reader.corrupt (Printf.sprintf "bad level tag %d" n)

let write_option w f = function
  | None -> Codec.Writer.bool w false
  | Some v ->
    Codec.Writer.bool w true;
    f v

let read_option r f = if Codec.Reader.bool r then Some (f r) else None

let write_build_req w (b : build_req) =
  Codec.Writer.string w b.tag;
  Codec.Writer.byte w (level_tag b.level);
  Codec.Writer.bool w b.pbo;
  Codec.Writer.uvarint w b.jobs;
  Codec.Writer.bool w b.check;
  write_option w (Codec.Writer.string w) b.fault;
  Codec.Writer.list w
    (fun (s : Pipeline.source) ->
      Codec.Writer.string w s.Pipeline.name;
      Codec.Writer.string w s.Pipeline.text)
    b.sources

let read_build_req r =
  let tag = Codec.Reader.string r in
  let level = level_of_tag r (Codec.Reader.byte r) in
  let pbo = Codec.Reader.bool r in
  let jobs = Codec.Reader.uvarint r in
  let check = Codec.Reader.bool r in
  let fault = read_option r Codec.Reader.string in
  let sources =
    Codec.Reader.list r (fun r ->
        let name = Codec.Reader.string r in
        let text = Codec.Reader.string r in
        { Pipeline.name; text })
  in
  { tag; level; pbo; jobs; check; fault; sources }

let string_of_request req =
  let w = Codec.Writer.create () in
  (match req with
  | Ping -> Codec.Writer.byte w 1
  | Build b ->
    Codec.Writer.byte w 2;
    write_build_req w b
  | Stats -> Codec.Writer.byte w 3
  | Shutdown -> Codec.Writer.byte w 4);
  Codec.Writer.contents w

let request_of_reader r =
  match Codec.Reader.byte r with
  | 1 -> Ping
  | 2 -> Build (read_build_req r)
  | 3 -> Stats
  | 4 -> Shutdown
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad request tag %d" n)

let write_stats w (s : stats) =
  Codec.Writer.uvarint w s.accepted;
  Codec.Writer.uvarint w s.completed;
  Codec.Writer.uvarint w s.failed;
  Codec.Writer.uvarint w s.rejected;
  Codec.Writer.uvarint w s.queue_depth;
  Codec.Writer.uvarint w s.inflight;
  Codec.Writer.uvarint w s.store_hits;
  Codec.Writer.uvarint w s.store_misses

let read_stats r =
  let accepted = Codec.Reader.uvarint r in
  let completed = Codec.Reader.uvarint r in
  let failed = Codec.Reader.uvarint r in
  let rejected = Codec.Reader.uvarint r in
  let queue_depth = Codec.Reader.uvarint r in
  let inflight = Codec.Reader.uvarint r in
  let store_hits = Codec.Reader.uvarint r in
  let store_misses = Codec.Reader.uvarint r in
  { accepted; completed; failed; rejected; queue_depth; inflight;
    store_hits; store_misses }

let string_of_response resp =
  let w = Codec.Writer.create () in
  (match resp with
  | Pong -> Codec.Writer.byte w 1
  | Built { tag; objects; report } ->
    Codec.Writer.byte w 2;
    Codec.Writer.string w tag;
    Codec.Writer.list w (Codec.Writer.string w) objects;
    Codec.Writer.string w report
  | Rejected { tag; reason } ->
    Codec.Writer.byte w 3;
    Codec.Writer.string w tag;
    Codec.Writer.string w reason
  | Failed { tag; reason } ->
    Codec.Writer.byte w 4;
    Codec.Writer.string w tag;
    Codec.Writer.string w reason
  | Stats_reply s ->
    Codec.Writer.byte w 5;
    write_stats w s
  | Shutting_down -> Codec.Writer.byte w 6);
  Codec.Writer.contents w

let response_of_reader r =
  match Codec.Reader.byte r with
  | 1 -> Pong
  | 2 ->
    let tag = Codec.Reader.string r in
    let objects = Codec.Reader.list r Codec.Reader.string in
    let report = Codec.Reader.string r in
    Built { tag; objects; report }
  | 3 ->
    let tag = Codec.Reader.string r in
    let reason = Codec.Reader.string r in
    Rejected { tag; reason }
  | 4 ->
    let tag = Codec.Reader.string r in
    let reason = Codec.Reader.string r in
    Failed { tag; reason }
  | 5 -> Stats_reply (read_stats r)
  | 6 -> Shutting_down
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad response tag %d" n)

let decode of_reader payload =
  match
    let r = Codec.Reader.of_string payload in
    let v = of_reader r in
    if Codec.Reader.at_end r then v
    else Codec.Reader.corrupt "trailing bytes after message"
  with
  | v -> Ok v
  | exception Codec.Reader.Corrupt m -> Error m

let request_of_string = decode request_of_reader

let response_of_string = decode response_of_reader

(* ---- socket framing: CMR1 records over a stream ---- *)

let max_payload = 1 lsl 26 (* 64 MiB: far beyond any workload here *)

(* Raw fd I/O on purpose: the wire is not a durability surface, so it
   stays outside Fsio's fault-injection chokepoint — a fault plan
   aimed at a build must not corrupt the transport carrying it. *)
let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_message fd payload =
  let data = Fsio.frame payload in
  write_all fd data 0 (String.length data)

(* Read exactly [n] bytes; [`Eof of got] when the peer closes early. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error (`Eof off)
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_message fd =
  match read_exact fd Fsio.frame_overhead with
  | Error (`Eof 0) -> Error `Eof
  | Error (`Eof _) -> Error (`Bad "connection closed inside a frame header")
  | Ok header -> (
    match Fsio.scan_frame header ~pos:0 with
    | Fsio.Bad m -> Error (`Bad m)
    | Fsio.Frame { payload; _ } -> Ok payload (* zero-length payload *)
    | Fsio.Need n when n > max_payload -> Error (`Bad "oversized frame")
    | Fsio.Need n -> (
      match read_exact fd n with
      | Error (`Eof _) -> Error (`Bad "connection closed inside a frame body")
      | Ok body -> (
        match Fsio.scan_frame (header ^ body) ~pos:0 with
        | Fsio.Frame { payload; _ } -> Ok payload
        | Fsio.Bad m -> Error (`Bad m)
        | Fsio.Need _ -> Error (`Bad "incomplete frame"))))
