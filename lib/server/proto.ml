module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline

type build_req = {
  tag : string;
  level : Options.level;
  pbo : bool;
  jobs : int;
  check : bool;
  fault : string option;
  sources : Pipeline.source list;
}

type request =
  | Ping
  | Build of build_req
  | Stats
  | Shutdown
  | Cache_get of { key : string }
  | Cache_put of { key : string; data : string }
  | Profile_put of { shard : string }
  | Profile_get of { current_fp : string }
  | Cohort_list
  | Cohort_ingest of { cohort : string; shards : string list }
  | Cohort_pull of { cohort : string; current_fp : string }
  | Cohort_diff of {
      base : string;
      canary : string;
      percent : float;
      threshold : float;
      sources : Pipeline.source list;
    }

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  rejected : int;
  queue_depth : int;
  inflight : int;
  store_hits : int;
  store_misses : int;
}

type response =
  | Pong
  | Built of { tag : string; objects : string list; report : string }
  | Rejected of { tag : string; reason : string }
  | Failed of { tag : string; reason : string }
  | Stats_reply of stats
  | Shutting_down
  | Cache_hit of { data : string }
  | Cache_miss
  | Cache_stored
  | Profile_stored of { shards : int }
  | Profile_db of { data : string; shards : int; skipped : int }
  | Cohort_listing of { cohorts : Cmo_profile.Cohort.info list }
  | Cohort_stored of { cohort : string; shards : int }
  | Cohort_db of { data : string; shards : int; skipped : int }
  | Cohort_report of { report : string }

(* ---- binary encoding (Codec, same substrate as object files) ---- *)

let level_tag = function Options.O1 -> 1 | Options.O2 -> 2 | Options.O4 -> 4

let level_of_tag r = function
  | 1 -> Options.O1
  | 2 -> Options.O2
  | 4 -> Options.O4
  | n -> ignore r; Codec.Reader.corrupt (Printf.sprintf "bad level tag %d" n)

let write_option w f = function
  | None -> Codec.Writer.bool w false
  | Some v ->
    Codec.Writer.bool w true;
    f v

let read_option r f = if Codec.Reader.bool r then Some (f r) else None

let write_sources w sources =
  Codec.Writer.list w
    (fun (s : Pipeline.source) ->
      Codec.Writer.string w s.Pipeline.name;
      Codec.Writer.string w s.Pipeline.text)
    sources

let read_sources r =
  Codec.Reader.list r (fun r ->
      let name = Codec.Reader.string r in
      let text = Codec.Reader.string r in
      { Pipeline.name; text })

let write_build_req w (b : build_req) =
  Codec.Writer.string w b.tag;
  Codec.Writer.byte w (level_tag b.level);
  Codec.Writer.bool w b.pbo;
  Codec.Writer.uvarint w b.jobs;
  Codec.Writer.bool w b.check;
  write_option w (Codec.Writer.string w) b.fault;
  write_sources w b.sources

let read_build_req r =
  let tag = Codec.Reader.string r in
  let level = level_of_tag r (Codec.Reader.byte r) in
  let pbo = Codec.Reader.bool r in
  let jobs = Codec.Reader.uvarint r in
  let check = Codec.Reader.bool r in
  let fault = read_option r Codec.Reader.string in
  let sources = read_sources r in
  { tag; level; pbo; jobs; check; fault; sources }

let string_of_request req =
  let w = Codec.Writer.create () in
  (match req with
  | Ping -> Codec.Writer.byte w 1
  | Build b ->
    Codec.Writer.byte w 2;
    write_build_req w b
  | Stats -> Codec.Writer.byte w 3
  | Shutdown -> Codec.Writer.byte w 4
  | Cache_get { key } ->
    Codec.Writer.byte w 5;
    Codec.Writer.string w key
  | Cache_put { key; data } ->
    Codec.Writer.byte w 6;
    Codec.Writer.string w key;
    Codec.Writer.string w data
  | Profile_put { shard } ->
    Codec.Writer.byte w 7;
    Codec.Writer.string w shard
  | Profile_get { current_fp } ->
    Codec.Writer.byte w 8;
    Codec.Writer.string w current_fp
  | Cohort_list -> Codec.Writer.byte w 9
  | Cohort_ingest { cohort; shards } ->
    Codec.Writer.byte w 10;
    Codec.Writer.string w cohort;
    Codec.Writer.list w (Codec.Writer.string w) shards
  | Cohort_pull { cohort; current_fp } ->
    Codec.Writer.byte w 11;
    Codec.Writer.string w cohort;
    Codec.Writer.string w current_fp
  | Cohort_diff { base; canary; percent; threshold; sources } ->
    Codec.Writer.byte w 12;
    Codec.Writer.string w base;
    Codec.Writer.string w canary;
    Codec.Writer.float w percent;
    Codec.Writer.float w threshold;
    write_sources w sources);
  Codec.Writer.contents w

let request_of_reader r =
  match Codec.Reader.byte r with
  | 1 -> Ping
  | 2 -> Build (read_build_req r)
  | 3 -> Stats
  | 4 -> Shutdown
  | 5 -> Cache_get { key = Codec.Reader.string r }
  | 6 ->
    let key = Codec.Reader.string r in
    let data = Codec.Reader.string r in
    Cache_put { key; data }
  | 7 -> Profile_put { shard = Codec.Reader.string r }
  | 8 -> Profile_get { current_fp = Codec.Reader.string r }
  | 9 -> Cohort_list
  | 10 ->
    let cohort = Codec.Reader.string r in
    let shards = Codec.Reader.list r Codec.Reader.string in
    Cohort_ingest { cohort; shards }
  | 11 ->
    let cohort = Codec.Reader.string r in
    let current_fp = Codec.Reader.string r in
    Cohort_pull { cohort; current_fp }
  | 12 ->
    let base = Codec.Reader.string r in
    let canary = Codec.Reader.string r in
    let percent = Codec.Reader.float r in
    let threshold = Codec.Reader.float r in
    let sources = read_sources r in
    Cohort_diff { base; canary; percent; threshold; sources }
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad request tag %d" n)

let write_stats w (s : stats) =
  Codec.Writer.uvarint w s.accepted;
  Codec.Writer.uvarint w s.completed;
  Codec.Writer.uvarint w s.failed;
  Codec.Writer.uvarint w s.rejected;
  Codec.Writer.uvarint w s.queue_depth;
  Codec.Writer.uvarint w s.inflight;
  Codec.Writer.uvarint w s.store_hits;
  Codec.Writer.uvarint w s.store_misses

let read_stats r =
  let accepted = Codec.Reader.uvarint r in
  let completed = Codec.Reader.uvarint r in
  let failed = Codec.Reader.uvarint r in
  let rejected = Codec.Reader.uvarint r in
  let queue_depth = Codec.Reader.uvarint r in
  let inflight = Codec.Reader.uvarint r in
  let store_hits = Codec.Reader.uvarint r in
  let store_misses = Codec.Reader.uvarint r in
  { accepted; completed; failed; rejected; queue_depth; inflight;
    store_hits; store_misses }

let string_of_response resp =
  let w = Codec.Writer.create () in
  (match resp with
  | Pong -> Codec.Writer.byte w 1
  | Built { tag; objects; report } ->
    Codec.Writer.byte w 2;
    Codec.Writer.string w tag;
    Codec.Writer.list w (Codec.Writer.string w) objects;
    Codec.Writer.string w report
  | Rejected { tag; reason } ->
    Codec.Writer.byte w 3;
    Codec.Writer.string w tag;
    Codec.Writer.string w reason
  | Failed { tag; reason } ->
    Codec.Writer.byte w 4;
    Codec.Writer.string w tag;
    Codec.Writer.string w reason
  | Stats_reply s ->
    Codec.Writer.byte w 5;
    write_stats w s
  | Shutting_down -> Codec.Writer.byte w 6
  | Cache_hit { data } ->
    Codec.Writer.byte w 7;
    Codec.Writer.string w data
  | Cache_miss -> Codec.Writer.byte w 8
  | Cache_stored -> Codec.Writer.byte w 9
  | Profile_stored { shards } ->
    Codec.Writer.byte w 10;
    Codec.Writer.uvarint w shards
  | Profile_db { data; shards; skipped } ->
    Codec.Writer.byte w 11;
    Codec.Writer.string w data;
    Codec.Writer.uvarint w shards;
    Codec.Writer.uvarint w skipped
  | Cohort_listing { cohorts } ->
    Codec.Writer.byte w 12;
    Codec.Writer.list w
      (fun (i : Cmo_profile.Cohort.info) ->
        Codec.Writer.string w i.ci_name;
        Codec.Writer.uvarint w i.ci_shards;
        Codec.Writer.uvarint w i.ci_damaged;
        Codec.Writer.uvarint w i.ci_bytes;
        Codec.Writer.list w (Codec.Writer.string w) i.ci_tags;
        Codec.Writer.bool w i.ci_snapshot)
      cohorts
  | Cohort_stored { cohort; shards } ->
    Codec.Writer.byte w 13;
    Codec.Writer.string w cohort;
    Codec.Writer.uvarint w shards
  | Cohort_db { data; shards; skipped } ->
    Codec.Writer.byte w 14;
    Codec.Writer.string w data;
    Codec.Writer.uvarint w shards;
    Codec.Writer.uvarint w skipped
  | Cohort_report { report } ->
    Codec.Writer.byte w 15;
    Codec.Writer.string w report);
  Codec.Writer.contents w

let response_of_reader r =
  match Codec.Reader.byte r with
  | 1 -> Pong
  | 2 ->
    let tag = Codec.Reader.string r in
    let objects = Codec.Reader.list r Codec.Reader.string in
    let report = Codec.Reader.string r in
    Built { tag; objects; report }
  | 3 ->
    let tag = Codec.Reader.string r in
    let reason = Codec.Reader.string r in
    Rejected { tag; reason }
  | 4 ->
    let tag = Codec.Reader.string r in
    let reason = Codec.Reader.string r in
    Failed { tag; reason }
  | 5 -> Stats_reply (read_stats r)
  | 6 -> Shutting_down
  | 7 -> Cache_hit { data = Codec.Reader.string r }
  | 8 -> Cache_miss
  | 9 -> Cache_stored
  | 10 -> Profile_stored { shards = Codec.Reader.uvarint r }
  | 11 ->
    let data = Codec.Reader.string r in
    let shards = Codec.Reader.uvarint r in
    let skipped = Codec.Reader.uvarint r in
    Profile_db { data; shards; skipped }
  | 12 ->
    let cohorts =
      Codec.Reader.list r (fun r ->
          let ci_name = Codec.Reader.string r in
          let ci_shards = Codec.Reader.uvarint r in
          let ci_damaged = Codec.Reader.uvarint r in
          let ci_bytes = Codec.Reader.uvarint r in
          let ci_tags = Codec.Reader.list r Codec.Reader.string in
          let ci_snapshot = Codec.Reader.bool r in
          { Cmo_profile.Cohort.ci_name; ci_shards; ci_damaged; ci_bytes;
            ci_tags; ci_snapshot })
    in
    Cohort_listing { cohorts }
  | 13 ->
    let cohort = Codec.Reader.string r in
    let shards = Codec.Reader.uvarint r in
    Cohort_stored { cohort; shards }
  | 14 ->
    let data = Codec.Reader.string r in
    let shards = Codec.Reader.uvarint r in
    let skipped = Codec.Reader.uvarint r in
    Cohort_db { data; shards; skipped }
  | 15 -> Cohort_report { report = Codec.Reader.string r }
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad response tag %d" n)

let decode of_reader payload =
  match
    let r = Codec.Reader.of_string payload in
    let v = of_reader r in
    if Codec.Reader.at_end r then v
    else Codec.Reader.corrupt "trailing bytes after message"
  with
  | v -> Ok v
  | exception Codec.Reader.Corrupt m -> Error m

let request_of_string = decode request_of_reader

let response_of_string = decode response_of_reader

(* ---- socket framing: CMR1 records over a stream ---- *)

let max_payload = 1 lsl 26 (* 64 MiB: far beyond any workload here *)

(* The framed-fd transport itself lives in Fsio ([write_framed] /
   [read_framed]) so the build-server protocol and the cmoc-worker
   job protocol share one implementation — raw fd I/O on purpose,
   outside the fault-injection chokepoint: a fault plan aimed at a
   build must not corrupt the transport carrying it. *)
let write_message fd payload = Fsio.write_framed fd payload

let read_message fd =
  match Fsio.read_framed ~max_payload fd with
  | Ok payload -> Ok payload
  | Error `Eof -> Error `Eof
  | Error (`Bad m) -> Error (`Bad m)
  | Error `Timeout -> assert false (* no timeout requested *)
