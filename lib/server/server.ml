module Obs = Cmo_obs.Obs
module Fsio = Cmo_support.Fsio
module Netio = Cmo_support.Netio
module Codec = Cmo_support.Codec
module Store = Cmo_cache.Store
module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Cohort = Cmo_profile.Cohort
module Selectivity = Cmo_hlo.Selectivity
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Objfile = Cmo_link.Objfile

let log_src = Logs.Src.create "cmo.server" ~doc:"Build-server daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket : string;
  builders : int;
  queue_max : int;
  state_dir : string;
  cache_capacity : int option;
  trace : string option;
}

let default_config =
  {
    socket = "cmocd.sock";
    builders = Options.env.Options.env_daemon_jobs;
    queue_max = Options.env.Options.env_queue_max;
    state_dir = ".cmocd";
    cache_capacity = None;
    trace = None;
  }

(* A socket string is a Unix-domain path, or ["tcp:HOST:PORT"] — the
   multi-machine transport, so the remote artifact/profile cache can
   serve checkouts on other machines.  Port 0 binds an ephemeral
   port; {!address} reports the actual one. *)
let tcp_of_socket s =
  if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    match Netio.parse_addr (String.sub s 4 (String.length s - 4)) with
    | Ok hp -> Some hp
    | Error m -> raise (Sys_error m)
  else None

(* Requests holding a fault plan run exclusively: plans are
   process-wide, so a plan meant for one request must not see another
   request's I/O.  Normal requests hold the gate shared. *)
type gate = {
  glock : Mutex.t;
  gcond : Condition.t;
  mutable shared : int;
  mutable exclusive : bool;
}

let gate_create () =
  { glock = Mutex.create (); gcond = Condition.create ();
    shared = 0; exclusive = false }

let with_shared g f =
  Mutex.lock g.glock;
  while g.exclusive do Condition.wait g.gcond g.glock done;
  g.shared <- g.shared + 1;
  Mutex.unlock g.glock;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.glock;
      g.shared <- g.shared - 1;
      Condition.broadcast g.gcond;
      Mutex.unlock g.glock)

let with_exclusive g f =
  Mutex.lock g.glock;
  while g.exclusive do Condition.wait g.gcond g.glock done;
  g.exclusive <- true;
  while g.shared > 0 do Condition.wait g.gcond g.glock done;
  Mutex.unlock g.glock;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.glock;
      g.exclusive <- false;
      Condition.broadcast g.gcond;
      Mutex.unlock g.glock)

type job = { req : Proto.build_req; reply : Proto.response -> unit }

type t = {
  cfg : config;
  address : string;  (* the bound address: cfg.socket with a real port *)
  listen_fd : Unix.file_descr;
  (* Self-pipe: [shutdown] writes a byte to [wake_w] so the accept
     thread parked in select(2) wakes deterministically. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  session : Buildsys.session;
  session_lock : Mutex.t;  (* guards reopen_store vs. stats reads *)
  (* Fleet profile accumulation: shards from many checkouts land in
     one durable pack under state_dir.  The lock serializes appends
     and the shard counter. *)
  profile_lock : Mutex.t;
  mutable profile_shards : int;
  (* Named profile cohorts (canary vs stable, A/B arms), one registry
     under state_dir; per-cohort packs are serialized by
     [profile_lock] like the anonymous pack above. *)
  cohorts : Cohort.t;
  (* Counters banked from stores closed by [reopen_store], so stats
     stay cumulative across chaos requests; under [session_lock]. *)
  mutable store_hits_base : int;
  mutable store_misses_base : int;
  sched : job Sched.t;
  gate : gate;
  stop : bool Atomic.t;
  accepted : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  rejected : int Atomic.t;
  inflight : int Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable builder_threads : Thread.t list;
}

let stats t =
  let store_hits, store_misses =
    Mutex.lock t.session_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.session_lock) @@ fun () ->
    let hits, misses =
      match Buildsys.session_store t.session with
      | None -> (0, 0)
      | Some store ->
        let s = Store.stats store in
        (s.Store.hits, s.Store.misses)
    in
    (t.store_hits_base + hits, t.store_misses_base + misses)
  in
  {
    Proto.accepted = Atomic.get t.accepted;
    completed = Atomic.get t.completed;
    failed = Atomic.get t.failed;
    rejected = Atomic.get t.rejected;
    queue_depth = Sched.depth t.sched;
    inflight = Atomic.get t.inflight;
    store_hits;
    store_misses;
  }

let profile_pack t = Filename.concat t.cfg.state_dir "profiles.shards"

let rec is_crash = function
  | Fsio.Crash -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let options_of_req (b : Proto.build_req) =
  let base =
    match (b.Proto.level, b.Proto.pbo) with
    | Options.O1, _ -> Options.o1
    | Options.O2, false -> Options.o2
    | Options.O2, true -> Options.o2_pbo
    | Options.O4, false -> Options.o4
    | Options.O4, true -> Options.o4_pbo
  in
  {
    base with
    Options.jobs = max 1 b.Proto.jobs;
    check = b.Proto.check;
    (* The daemon owns the trace sink for its whole lifetime; a
       request must not start/stop/export it. *)
    trace = None;
    instrument = false;
  }

let source_lines (sources : Pipeline.source list) =
  List.fold_left
    (fun acc (s : Pipeline.source) ->
      acc + 1
      + String.fold_left
          (fun n c -> if c = '\n' then n + 1 else n)
          0 s.Pipeline.text)
    0 sources

let compile_once t options sources =
  Pipeline.compile
    ?cache:(Buildsys.session_store t.session)
    ?naim_repo:(Buildsys.session_repo t.session)
    options sources

(* One build request, against the shared warm session.  A fault plan
   makes the request exclusive; afterwards the plan is cleared and the
   store reopened from disk — a simulated power cut leaves the
   in-memory store state ahead of the bytes actually written, and
   reopening recovers exactly as a restarted process would, so a
   crashed request never poisons the requests after it. *)
let execute t (b : Proto.build_req) =
  let options = options_of_req b in
  let build () = compile_once t options b.Proto.sources in
  match
    match b.Proto.fault with
    | None -> with_shared t.gate build
    | Some spec ->
      with_exclusive t.gate @@ fun () ->
      (match Fsio.install_plan spec with
      | Error m ->
        raise (Pipeline.Compile_error (Printf.sprintf "bad fault plan: %s" m))
      | Ok () -> ());
      Fun.protect build ~finally:(fun () ->
          Fsio.clear_plan ();
          Mutex.lock t.session_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.session_lock)
            (fun () ->
              (* Reopening discards the store's in-memory counters;
                 bank them first so stats stay cumulative across
                 chaos requests. *)
              (match Buildsys.session_store t.session with
              | None -> ()
              | Some store ->
                let s = Store.stats store in
                t.store_hits_base <- t.store_hits_base + s.Store.hits;
                t.store_misses_base <- t.store_misses_base + s.Store.misses);
              Buildsys.reopen_store t.session))
  with
  | build ->
    Atomic.incr t.completed;
    if Obs.enabled () then Obs.tick "server" "completed" 1;
    Proto.Built
      {
        tag = b.Proto.tag;
        objects = List.map Objfile.encode build.Pipeline.objects;
        report =
          Cmo_obs.Json.to_string
            (Pipeline.report_to_json build.Pipeline.report);
      }
  | exception e ->
    Atomic.incr t.failed;
    if Obs.enabled () then Obs.tick "server" "failed" 1;
    let reason =
      match e with
      | Pipeline.Compile_error m -> m
      | e when is_crash e -> "injected crash killed this request"
      | Sys_error m -> "i/o failure: " ^ m
      (* A builder thread must survive anything a request throws at
         it; the failure is the request's, not the daemon's. *)
      | e -> "internal error: " ^ Printexc.to_string e
    in
    Proto.Failed { tag = b.Proto.tag; reason }

let builder_loop t =
  let rec loop () =
    match Sched.take t.sched with
    | None -> ()
    | Some job ->
      Atomic.incr t.inflight;
      if Obs.enabled () then begin
        Obs.tick "server" "dispatched" 1;
        Obs.sample "server.queue"
          [ ("depth", float_of_int (Sched.depth t.sched)) ]
      end;
      let resp =
        Obs.with_span ~cat:"server"
          ("request:" ^ job.req.Proto.tag)
          (fun () -> execute t job.req)
      in
      Atomic.decr t.inflight;
      job.reply resp;
      loop ()
  in
  loop ()

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    Log.info (fun f -> f "shutting down: draining %d queued request(s)"
                 (Sched.depth t.sched));
    Sched.close t.sched;
    (* Wake the accept thread out of select(2).  Unlike connecting to
       our own socket, this cannot be defeated by the socket file
       having been removed or replaced externally. *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  end

let conn_loop t id fd =
  (* A queued or in-flight build holds [reply] (and thus this fd) in
     its closure.  Closing the fd the moment the reader exits would
     let the kernel reuse the descriptor number, and a later reply
     would write its frame into whatever unrelated fd got that number
     — cross-connection corruption, not just a caught EBADF.  So the
     reader's exit only *retires* the connection; the fd is closed
     when the last pending reply has been delivered (immediately when
     none are), and replies after close are dropped under [lock]. *)
  let lock = Mutex.create () in
  let pending = ref 0 in
  let retired = ref false in
  let closed = ref false in
  let close_conn () =
    (* Callers hold [lock]. *)
    if not !closed then begin
      closed := true;
      Mutex.lock t.conns_lock;
      Hashtbl.remove t.conns id;
      Mutex.unlock t.conns_lock;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let reply resp =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
    if !closed then
      Log.debug (fun f -> f "conn %d: reply dropped, connection closed" id)
    else
      try Proto.write_message fd (Proto.string_of_response resp)
      with Unix.Unix_error _ | Sys_error _ ->
        (* The client vanished; its build is already done or doomed. *)
        Log.debug (fun f -> f "conn %d: reply dropped, peer gone" id)
  in
  let retain () =
    Mutex.lock lock;
    incr pending;
    Mutex.unlock lock
  in
  let release () =
    Mutex.lock lock;
    decr pending;
    if !retired && !pending = 0 then close_conn ();
    Mutex.unlock lock
  in
  let retire () =
    Mutex.lock lock;
    retired := true;
    if !pending = 0 then close_conn ();
    Mutex.unlock lock
  in
  let rec loop () =
    match Proto.read_message fd with
    | Error `Eof -> ()
    | Error (`Bad m) ->
      (* Framing violation: answer if the pipe still works, then drop
         the connection — there is no trustworthy next-frame offset. *)
      Log.warn (fun f -> f "conn %d: bad frame (%s)" id m);
      reply (Proto.Failed { tag = ""; reason = "protocol: " ^ m })
    | Ok payload -> (
      match Proto.request_of_string payload with
      | Error m ->
        Log.warn (fun f -> f "conn %d: bad message (%s)" id m);
        reply (Proto.Failed { tag = ""; reason = "protocol: " ^ m })
      | Ok Proto.Ping ->
        reply Proto.Pong;
        loop ()
      | Ok Proto.Stats ->
        reply (Proto.Stats_reply (stats t));
        loop ()
      | Ok Proto.Shutdown ->
        reply Proto.Shutting_down;
        shutdown t
      (* Cache traffic is served inline by this reader thread, never
         queued: lookups are cheap (the store is internally
         synchronized) and a build farm's cache requests must not sit
         behind build requests.  The gate is held shared so a chaos
         request's [reopen_store] cannot swap the store out from under
         us, and [session_lock] covers reading the current handle. *)
      | Ok (Proto.Cache_get { key }) ->
        let data =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.session_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.session_lock)
          @@ fun () ->
          match Buildsys.session_store t.session with
          | None -> None
          | Some store -> Store.find store key
        in
        if Obs.enabled () then
          Obs.tick "server"
            (match data with Some _ -> "cache_hits" | None -> "cache_misses")
            1;
        reply
          (match data with
          | Some data -> Proto.Cache_hit { data }
          | None -> Proto.Cache_miss);
        loop ()
      | Ok (Proto.Cache_put { key; data }) ->
        (with_shared t.gate @@ fun () ->
         Mutex.lock t.session_lock;
         Fun.protect ~finally:(fun () -> Mutex.unlock t.session_lock)
         @@ fun () ->
         match Buildsys.session_store t.session with
         | None -> ()
         | Some store -> Store.add store key data);
        if Obs.enabled () then Obs.tick "server" "cache_puts" 1;
        reply Proto.Cache_stored;
        loop ()
      (* Fleet profile traffic is served inline for the same reason as
         the cache pair.  The shared gate keeps a chaos request's
         fault plan away from the pack's durable writes; profile_lock
         serializes appends from concurrent connections. *)
      | Ok (Proto.Profile_put { shard }) ->
        let resp =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.profile_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
          @@ fun () ->
          match Ingest.decode_shard shard with
          | exception Codec.Reader.Corrupt m ->
            (* Reject garbage at the door: the pack stays a stream of
               shards that decoded at least once. *)
            Proto.Failed { tag = ""; reason = "bad profile shard: " ^ m }
          | s -> (
            match Ingest.append_pack (profile_pack t) [ s ] with
            | () ->
              t.profile_shards <- t.profile_shards + 1;
              Proto.Profile_stored { shards = t.profile_shards }
            | exception Sys_error m ->
              Proto.Failed { tag = ""; reason = "profile store: " ^ m })
        in
        if Obs.enabled () then Obs.tick "server" "profile_puts" 1;
        reply resp;
        loop ()
      | Ok (Proto.Profile_get { current_fp }) ->
        let resp =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.profile_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
          @@ fun () ->
          let shards, skipped =
            (* A missing pack is an empty fleet, not an error. *)
            try Ingest.read_pack (profile_pack t) with Sys_error _ -> ([], 0)
          in
          let policy = Ingest.default_policy ~current_fp in
          let db, st = Ingest.ingest ~policy ~skipped shards in
          Proto.Profile_db
            {
              data = Db.encode db;
              shards = st.Ingest.ing_shards;
              skipped = st.Ingest.ing_skipped;
            }
        in
        if Obs.enabled () then Obs.tick "server" "profile_gets" 1;
        reply resp;
        loop ()
      (* Cohort traffic: the same inline regime as the anonymous
         profile pair, against the named registry under state_dir.
         Bad cohort names and garbage shards are rejected at the door;
         everything else degrades (an unknown cohort pulls as empty,
         damage is skipped and counted by the registry reader). *)
      | Ok Proto.Cohort_list ->
        let resp =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.profile_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
          @@ fun () -> Proto.Cohort_listing { cohorts = Cohort.list t.cohorts }
        in
        reply resp;
        loop ()
      | Ok (Proto.Cohort_ingest { cohort; shards }) ->
        let resp =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.profile_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
          @@ fun () ->
          match List.map Ingest.decode_shard shards with
          | exception Codec.Reader.Corrupt m ->
            Proto.Failed { tag = ""; reason = "bad profile shard: " ^ m }
          | decoded -> (
            match
              Cohort.create t.cohorts cohort;
              Cohort.ingest_into t.cohorts cohort decoded
            with
            | n -> Proto.Cohort_stored { cohort; shards = n }
            | exception Cohort.Bad_name n ->
              Proto.Failed { tag = ""; reason = "bad cohort name: " ^ n }
            | exception Sys_error m ->
              Proto.Failed { tag = ""; reason = "cohort store: " ^ m })
        in
        if Obs.enabled () then Obs.tick "server" "cohort_ingests" 1;
        reply resp;
        loop ()
      | Ok (Proto.Cohort_pull { cohort; current_fp }) ->
        let resp =
          with_shared t.gate @@ fun () ->
          Mutex.lock t.profile_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
          @@ fun () ->
          match
            let policy = Ingest.default_policy ~current_fp in
            Cohort.pull t.cohorts ~policy cohort
          with
          | db, st ->
            Proto.Cohort_db
              {
                data = Db.encode db;
                shards = st.Ingest.ing_shards;
                skipped = st.Ingest.ing_skipped;
              }
          | exception Cohort.Bad_name n ->
            Proto.Failed { tag = ""; reason = "bad cohort name: " ^ n }
        in
        if Obs.enabled () then Obs.tick "server" "cohort_pulls" 1;
        reply resp;
        loop ()
      | Ok (Proto.Cohort_diff { base; canary; percent; threshold; sources }) ->
        let resp =
          with_shared t.gate @@ fun () ->
          match
            if not (Cohort.valid_name base) then raise (Cohort.Bad_name base);
            if not (Cohort.valid_name canary) then
              raise (Cohort.Bad_name canary);
            (* The floats arrive off the wire: clamp rather than let
               garbage reach Selectivity's percent assertion. *)
            let percent =
              if Float.is_nan percent then 20.0
              else Float.min 100.0 (Float.max 0.0 percent)
            in
            let threshold =
              if Float.is_nan threshold || threshold < 0.0 then
                Cohort.Diff.default_threshold
              else threshold
            in
            let current_fp =
              Ingest.fingerprint
                (List.map
                   (fun (s : Pipeline.source) ->
                     (s.Pipeline.name, s.Pipeline.text))
                   sources)
            in
            let policy = Ingest.default_policy ~current_fp in
            let pull name =
              Mutex.lock t.profile_lock;
              Fun.protect ~finally:(fun () -> Mutex.unlock t.profile_lock)
              @@ fun () -> fst (Cohort.pull t.cohorts ~policy name)
            in
            let base_db = pull base in
            let canary_db = pull canary in
            let modules = Pipeline.frontend sources in
            let hot label db =
              Selectivity.cohort_hot_set ~percent ~label db modules
            in
            let report =
              Cohort.Diff.diff ~threshold ~base:(hot base base_db)
                (hot canary canary_db)
            in
            Proto.Cohort_report { report = Cohort.Diff.encode report }
          with
          | resp -> resp
          | exception Cohort.Bad_name n ->
            Proto.Failed { tag = ""; reason = "bad cohort name: " ^ n }
          | exception e ->
            Proto.Failed
              { tag = ""; reason = "cohort diff: " ^ Printexc.to_string e }
        in
        if Obs.enabled () then Obs.tick "server" "cohort_diffs" 1;
        reply resp;
        loop ()
      | Ok (Proto.Build b) ->
        if Obs.enabled () then Obs.tick "server" "requests" 1;
        let cost = source_lines b.Proto.sources in
        retain ();
        let job =
          {
            req = b;
            reply =
              (fun resp ->
                reply resp;
                release ());
          }
        in
        if Sched.submit t.sched ~cost job then begin
          Atomic.incr t.accepted;
          if Obs.enabled () then
            Obs.sample "server.queue"
              [ ("depth", float_of_int (Sched.depth t.sched)) ]
        end
        else begin
          release ();
          Atomic.incr t.rejected;
          if Obs.enabled () then Obs.tick "server" "rejected" 1;
          let reason =
            if Atomic.get t.stop then "shutting down" else "queue full"
          in
          reply (Proto.Rejected { tag = b.Proto.tag; reason })
        end;
        loop ())
  in
  Fun.protect loop ~finally:retire

let accept_loop t =
  let next_conn = ref 0 in
  let drain_buf = Bytes.create 8 in
  (* Park in select on the listen fd plus the self-pipe rather than
     in accept(2) itself: [shutdown]'s wake byte then interrupts the
     wait deterministically, whatever happened to the socket file.
     The listen fd is non-blocking, so a connection aborted between
     select and accept cannot re-park us. *)
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      | ready, _, _ ->
        if List.mem t.wake_r ready then
          (try ignore (Unix.read t.wake_r drain_buf 0 (Bytes.length drain_buf))
           with Unix.Unix_error _ -> ());
        if Atomic.get t.stop then ()
        else if List.mem t.listen_fd ready then (
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ( (Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED),
                  _, _ ) ->
            loop ()
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
            incr next_conn;
            let id = !next_conn in
            Mutex.lock t.conns_lock;
            Hashtbl.replace t.conns id fd;
            Mutex.unlock t.conns_lock;
            ignore (Thread.create (fun () -> conn_loop t id fd) ());
            loop ())
        else loop ()
  in
  loop ()

let start ?(handle_signals = false) cfg =
  if cfg.builders < 1 then invalid_arg "Server.start: builders < 1";
  let tcp = tcp_of_socket cfg.socket in
  (* A stale socket file from a dead daemon would make bind fail —
     but only unlink it after probing that nothing answers on it, so
     a second cmocd pointed at a live daemon's socket refuses to
     start instead of silently hijacking the path.  (TCP needs no
     probe: the kernel's EADDRINUSE already distinguishes live from
     stale.) *)
  if tcp = None && Sys.file_exists cfg.socket then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX cfg.socket) with
          | () -> `Live
          | exception
              Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
            `Stale
          | exception Unix.Unix_error _ ->
            (* Not a connectable socket (e.g. a regular file); leave
               it alone and let bind report the conflict. *)
            `Other)
    in
    match verdict with
    | `Live -> raise (Unix.Unix_error (Unix.EADDRINUSE, "connect", cfg.socket))
    | `Stale -> (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ())
    | `Other -> ()
  end;
  Fsio.mkdirs cfg.state_dir;
  if cfg.trace <> None then Obs.start ();
  let ws =
    Cmo_driver.Buildsys.create ?cache_capacity:cfg.cache_capacity
      ~dir:cfg.state_dir ()
  in
  let session = Buildsys.open_session ~naim:true ws in
  let listen_fd, address =
    match tcp with
    | Some (host, port) -> (
      match Netio.listen ~backlog:64 host port with
      | fd, actual -> (fd, "tcp:" ^ Netio.format_addr host actual)
      | exception e ->
        Buildsys.close_session session;
        raise e)
    | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         Buildsys.close_session session;
         raise e);
      (fd, cfg.socket)
  in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* Deliver SIGINT/SIGTERM to the main thread only: the spawned
     threads inherit a mask blocking them, so the kernel cannot hand
     the signal to a thread parked in accept(2) or a condvar, where
     the OCaml-level handler would never get a safepoint to run. *)
  let old_mask =
    try Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]
    with Invalid_argument _ -> []
  in
  ignore old_mask;
  let t =
    {
      cfg;
      address;
      listen_fd;
      wake_r;
      wake_w;
      session;
      session_lock = Mutex.create ();
      profile_lock = Mutex.create ();
      profile_shards = 0;
      cohorts = Cohort.open_ ~dir:(Filename.concat cfg.state_dir "cohorts");
      store_hits_base = 0;
      store_misses_base = 0;
      sched = Sched.create ~queue_max:cfg.queue_max ();
      gate = gate_create ();
      stop = Atomic.make false;
      accepted = Atomic.make 0;
      completed = Atomic.make 0;
      failed = Atomic.make 0;
      rejected = Atomic.make 0;
      inflight = Atomic.make 0;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      accept_thread = None;
      builder_threads = [];
    }
  in
  (* A restarted daemon resumes its accumulated fleet: the shard
     counter picks up where the durable pack left off. *)
  (try t.profile_shards <- List.length (fst (Ingest.read_pack (profile_pack t)))
   with Sys_error _ -> ());
  t.builder_threads <-
    List.init cfg.builders (fun _ -> Thread.create builder_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  (* Handlers must be in place before the signals are unblocked, or a
     signal in the window dies with default disposition — no drain,
     socket file left behind. *)
  if handle_signals then begin
    let handler _ = shutdown t in
    (try ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler))
     with Invalid_argument _ | Sys_error _ -> ());
    (try ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handler))
     with Invalid_argument _ | Sys_error _ -> ())
  end;
  (try ignore (Thread.sigmask Unix.SIG_UNBLOCK [ Sys.sigint; Sys.sigterm ])
   with Invalid_argument _ -> ());
  Log.info (fun f ->
      f "listening on %s (%d builder(s), queue <= %d)" address cfg.builders
        cfg.queue_max);
  t

let address t = t.address

let stopped t = Atomic.get t.stop

let wait t =
  (* Poll rather than park in Thread.join right away: a thread blocked
     in pthread_join never reaches an OCaml safepoint, so a signal
     handler (the daemon's shutdown path) would never run.  Sleeping
     is interruptible and re-enters OCaml each tick. *)
  while not (Atomic.get t.stop) do
    Unix.sleepf 0.05
  done;
  Option.iter Thread.join t.accept_thread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  List.iter Thread.join t.builder_threads;
  (* In-flight and queued work is done; cut the remaining readers
     loose (their threads exit on the resulting EOF/error). *)
  Mutex.lock t.conns_lock;
  let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.conns_lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  Buildsys.close_session t.session;
  if tcp_of_socket t.cfg.socket = None && Sys.file_exists t.cfg.socket then (
    try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  (match t.cfg.trace with
  | None -> ()
  | Some path ->
    (try Fsio.atomic_write path (Obs.export ())
     with Sys_error m ->
       Log.warn (fun f -> f "trace not written to %s (%s)" path m));
    Obs.stop ());
  Log.info (fun f -> f "shutdown complete")

let run cfg = wait (start ~handle_signals:true cfg)
