module Obs = Cmo_obs.Obs
module Fsio = Cmo_support.Fsio
module Store = Cmo_cache.Store
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Objfile = Cmo_link.Objfile

let log_src = Logs.Src.create "cmo.server" ~doc:"Build-server daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket : string;
  builders : int;
  queue_max : int;
  state_dir : string;
  cache_capacity : int option;
  trace : string option;
}

let default_config =
  {
    socket = "cmocd.sock";
    builders = Options.env.Options.env_daemon_jobs;
    queue_max = Options.env.Options.env_queue_max;
    state_dir = ".cmocd";
    cache_capacity = None;
    trace = None;
  }

(* Requests holding a fault plan run exclusively: plans are
   process-wide, so a plan meant for one request must not see another
   request's I/O.  Normal requests hold the gate shared. *)
type gate = {
  glock : Mutex.t;
  gcond : Condition.t;
  mutable shared : int;
  mutable exclusive : bool;
}

let gate_create () =
  { glock = Mutex.create (); gcond = Condition.create ();
    shared = 0; exclusive = false }

let with_shared g f =
  Mutex.lock g.glock;
  while g.exclusive do Condition.wait g.gcond g.glock done;
  g.shared <- g.shared + 1;
  Mutex.unlock g.glock;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.glock;
      g.shared <- g.shared - 1;
      Condition.broadcast g.gcond;
      Mutex.unlock g.glock)

let with_exclusive g f =
  Mutex.lock g.glock;
  while g.exclusive do Condition.wait g.gcond g.glock done;
  g.exclusive <- true;
  while g.shared > 0 do Condition.wait g.gcond g.glock done;
  Mutex.unlock g.glock;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.glock;
      g.exclusive <- false;
      Condition.broadcast g.gcond;
      Mutex.unlock g.glock)

type job = { req : Proto.build_req; reply : Proto.response -> unit }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  session : Buildsys.session;
  session_lock : Mutex.t;  (* guards reopen_store vs. stats reads *)
  sched : job Sched.t;
  gate : gate;
  stop : bool Atomic.t;
  accepted : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  rejected : int Atomic.t;
  inflight : int Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable builder_threads : Thread.t list;
}

let stats t =
  let store_hits, store_misses =
    Mutex.lock t.session_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.session_lock) @@ fun () ->
    match Buildsys.session_store t.session with
    | None -> (0, 0)
    | Some store ->
      let s = Store.stats store in
      (s.Store.hits, s.Store.misses)
  in
  {
    Proto.accepted = Atomic.get t.accepted;
    completed = Atomic.get t.completed;
    failed = Atomic.get t.failed;
    rejected = Atomic.get t.rejected;
    queue_depth = Sched.depth t.sched;
    inflight = Atomic.get t.inflight;
    store_hits;
    store_misses;
  }

let rec is_crash = function
  | Fsio.Crash -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let options_of_req (b : Proto.build_req) =
  let base =
    match (b.Proto.level, b.Proto.pbo) with
    | Options.O1, _ -> Options.o1
    | Options.O2, false -> Options.o2
    | Options.O2, true -> Options.o2_pbo
    | Options.O4, false -> Options.o4
    | Options.O4, true -> Options.o4_pbo
  in
  {
    base with
    Options.jobs = max 1 b.Proto.jobs;
    check = b.Proto.check;
    (* The daemon owns the trace sink for its whole lifetime; a
       request must not start/stop/export it. *)
    trace = None;
    instrument = false;
  }

let source_lines (sources : Pipeline.source list) =
  List.fold_left
    (fun acc (s : Pipeline.source) ->
      acc + 1
      + String.fold_left
          (fun n c -> if c = '\n' then n + 1 else n)
          0 s.Pipeline.text)
    0 sources

let compile_once t options sources =
  Pipeline.compile
    ?cache:(Buildsys.session_store t.session)
    ?naim_repo:(Buildsys.session_repo t.session)
    options sources

(* One build request, against the shared warm session.  A fault plan
   makes the request exclusive; afterwards the plan is cleared and the
   store reopened from disk — a simulated power cut leaves the
   in-memory store state ahead of the bytes actually written, and
   reopening recovers exactly as a restarted process would, so a
   crashed request never poisons the requests after it. *)
let execute t (b : Proto.build_req) =
  let options = options_of_req b in
  let build () = compile_once t options b.Proto.sources in
  match
    match b.Proto.fault with
    | None -> with_shared t.gate build
    | Some spec ->
      with_exclusive t.gate @@ fun () ->
      (match Fsio.install_plan spec with
      | Error m ->
        raise (Pipeline.Compile_error (Printf.sprintf "bad fault plan: %s" m))
      | Ok () -> ());
      Fun.protect build ~finally:(fun () ->
          Fsio.clear_plan ();
          Mutex.lock t.session_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.session_lock)
            (fun () -> Buildsys.reopen_store t.session))
  with
  | build ->
    Atomic.incr t.completed;
    if Obs.enabled () then Obs.tick "server" "completed" 1;
    Proto.Built
      {
        tag = b.Proto.tag;
        objects = List.map Objfile.encode build.Pipeline.objects;
        report =
          Cmo_obs.Json.to_string
            (Pipeline.report_to_json build.Pipeline.report);
      }
  | exception e ->
    Atomic.incr t.failed;
    if Obs.enabled () then Obs.tick "server" "failed" 1;
    let reason =
      match e with
      | Pipeline.Compile_error m -> m
      | e when is_crash e -> "injected crash killed this request"
      | Sys_error m -> "i/o failure: " ^ m
      (* A builder thread must survive anything a request throws at
         it; the failure is the request's, not the daemon's. *)
      | e -> "internal error: " ^ Printexc.to_string e
    in
    Proto.Failed { tag = b.Proto.tag; reason }

let builder_loop t =
  let rec loop () =
    match Sched.take t.sched with
    | None -> ()
    | Some job ->
      Atomic.incr t.inflight;
      if Obs.enabled () then begin
        Obs.tick "server" "dispatched" 1;
        Obs.sample "server.queue"
          [ ("depth", float_of_int (Sched.depth t.sched)) ]
      end;
      let resp =
        Obs.with_span ~cat:"server"
          ("request:" ^ job.req.Proto.tag)
          (fun () -> execute t job.req)
      in
      Atomic.decr t.inflight;
      job.reply resp;
      loop ()
  in
  loop ()

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    Log.info (fun f -> f "shutting down: draining %d queued request(s)"
                 (Sched.depth t.sched));
    Sched.close t.sched;
    (* Wake the accept loop: it checks the stop flag per connection. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket)
          with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error _ -> ()
  end

let conn_loop t id fd =
  let send_lock = Mutex.create () in
  let reply resp =
    Mutex.lock send_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock send_lock) @@ fun () ->
    try Proto.write_message fd (Proto.string_of_response resp)
    with Unix.Unix_error _ | Sys_error _ ->
      (* The client vanished; its build is already done or doomed. *)
      Log.debug (fun f -> f "conn %d: reply dropped, peer gone" id)
  in
  let forget () =
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns id;
    Mutex.unlock t.conns_lock;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match Proto.read_message fd with
    | Error `Eof -> ()
    | Error (`Bad m) ->
      (* Framing violation: answer if the pipe still works, then drop
         the connection — there is no trustworthy next-frame offset. *)
      Log.warn (fun f -> f "conn %d: bad frame (%s)" id m);
      reply (Proto.Failed { tag = ""; reason = "protocol: " ^ m })
    | Ok payload -> (
      match Proto.request_of_string payload with
      | Error m ->
        Log.warn (fun f -> f "conn %d: bad message (%s)" id m);
        reply (Proto.Failed { tag = ""; reason = "protocol: " ^ m })
      | Ok Proto.Ping ->
        reply Proto.Pong;
        loop ()
      | Ok Proto.Stats ->
        reply (Proto.Stats_reply (stats t));
        loop ()
      | Ok Proto.Shutdown ->
        reply Proto.Shutting_down;
        shutdown t
      | Ok (Proto.Build b) ->
        if Obs.enabled () then Obs.tick "server" "requests" 1;
        let cost = source_lines b.Proto.sources in
        let job = { req = b; reply } in
        if Sched.submit t.sched ~cost job then begin
          Atomic.incr t.accepted;
          if Obs.enabled () then
            Obs.sample "server.queue"
              [ ("depth", float_of_int (Sched.depth t.sched)) ]
        end
        else begin
          Atomic.incr t.rejected;
          if Obs.enabled () then Obs.tick "server" "rejected" 1;
          let reason =
            if Atomic.get t.stop then "shutting down" else "queue full"
          in
          reply (Proto.Rejected { tag = b.Proto.tag; reason })
        end;
        loop ())
  in
  Fun.protect loop ~finally:forget

let accept_loop t =
  let next_conn = ref 0 in
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Atomic.get t.stop then () else loop ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      if Atomic.get t.stop then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ())
      else begin
        incr next_conn;
        let id = !next_conn in
        Mutex.lock t.conns_lock;
        Hashtbl.replace t.conns id fd;
        Mutex.unlock t.conns_lock;
        ignore (Thread.create (fun () -> conn_loop t id fd) ());
        loop ()
      end
  in
  loop ()

let start cfg =
  if cfg.builders < 1 then invalid_arg "Server.start: builders < 1";
  Fsio.mkdirs cfg.state_dir;
  if cfg.trace <> None then Obs.start ();
  let ws =
    Cmo_driver.Buildsys.create ?cache_capacity:cfg.cache_capacity
      ~dir:cfg.state_dir ()
  in
  let session = Buildsys.open_session ~naim:true ws in
  (* A stale socket file from a dead daemon would make bind fail. *)
  if Sys.file_exists cfg.socket then (
    try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket)
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Buildsys.close_session session;
     raise e);
  Unix.listen listen_fd 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* Deliver SIGINT/SIGTERM to the main thread only: the spawned
     threads inherit a mask blocking them, so the kernel cannot hand
     the signal to a thread parked in accept(2) or a condvar, where
     the OCaml-level handler would never get a safepoint to run. *)
  let old_mask =
    try Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]
    with Invalid_argument _ -> []
  in
  ignore old_mask;
  let t =
    {
      cfg;
      listen_fd;
      session;
      session_lock = Mutex.create ();
      sched = Sched.create ~queue_max:cfg.queue_max ();
      gate = gate_create ();
      stop = Atomic.make false;
      accepted = Atomic.make 0;
      completed = Atomic.make 0;
      failed = Atomic.make 0;
      rejected = Atomic.make 0;
      inflight = Atomic.make 0;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      accept_thread = None;
      builder_threads = [];
    }
  in
  t.builder_threads <-
    List.init cfg.builders (fun _ -> Thread.create builder_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  (try ignore (Thread.sigmask Unix.SIG_UNBLOCK [ Sys.sigint; Sys.sigterm ])
   with Invalid_argument _ -> ());
  Log.info (fun f ->
      f "listening on %s (%d builder(s), queue <= %d)" cfg.socket cfg.builders
        cfg.queue_max);
  t

let stopped t = Atomic.get t.stop

let wait t =
  (* Poll rather than park in Thread.join right away: a thread blocked
     in pthread_join never reaches an OCaml safepoint, so a signal
     handler (the daemon's shutdown path) would never run.  Sleeping
     is interruptible and re-enters OCaml each tick. *)
  while not (Atomic.get t.stop) do
    Unix.sleepf 0.05
  done;
  Option.iter Thread.join t.accept_thread;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter Thread.join t.builder_threads;
  (* In-flight and queued work is done; cut the remaining readers
     loose (their threads exit on the resulting EOF/error). *)
  Mutex.lock t.conns_lock;
  let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.conns_lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  Buildsys.close_session t.session;
  if Sys.file_exists t.cfg.socket then (
    try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  (match t.cfg.trace with
  | None -> ()
  | Some path ->
    (try Fsio.atomic_write path (Obs.export ())
     with Sys_error m ->
       Log.warn (fun f -> f "trace not written to %s (%s)" path m));
    Obs.stop ());
  Log.info (fun f -> f "shutdown complete")

let run cfg =
  let t = start cfg in
  let handler _ = shutdown t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () -> wait t)
