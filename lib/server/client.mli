(** Synchronous client for the build server: one outstanding request
    per connection, blocking until its response arrives.  [cmoc
    --remote], the storm load driver and the tests all speak through
    this. *)

type t

exception Protocol_error of string
(** The server answered with something other than the protocol allows
    (bad frame, bad message, wrong reply shape, early close). *)

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when the daemon is not there. *)

val close : t -> unit

val with_connect : socket:string -> (t -> 'a) -> 'a

val ping : t -> bool

val build : t -> Proto.build_req -> Proto.response
(** [Built], [Rejected] or [Failed] (never the other arms). *)

val stats : t -> Proto.stats

val shutdown_server : t -> unit
(** Ask the daemon to shut down gracefully; returns once acknowledged
    (drain completes after). *)

(** {2 Remote artifact cache} *)

val cache_get : t -> string -> string option
(** Fetch a store record by fingerprint key from the daemon's store;
    [None] on a miss (which is normal, not an error). *)

val cache_put : t -> string -> string -> unit
(** Publish a store record under its fingerprint key. *)

(** {2 Fleet profile accumulation} *)

val profile_put : t -> string -> int
(** Upload one encoded {!Cmo_profile.Ingest} shard; returns the
    daemon's decodable-shard count after the append.  Raises
    {!Protocol_error} when the daemon rejects the shard as garbage. *)

val profile_get : t -> current_fp:string -> string * int * int
(** [(db bytes, shards merged, shards skipped)]: the daemon's
    canonical merged database for the given source fingerprint
    (decay, skew and the poisoning clamp applied server-side).  An
    empty fleet is [(empty Db, 0, 0)], not an error. *)

val remote : t -> Cmo_driver.Distwork.remote
(** Wrap the connection as a degrading remote cache for
    {!Cmo_driver.Pipeline.compile}: any transport or protocol failure
    disables the remote for the rest of the build (misses / dropped
    puts) instead of raising — a remote-cache fault never fails a
    build. *)
