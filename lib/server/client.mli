(** Synchronous client for the build server: one outstanding request
    per connection, blocking until its response arrives.  [cmoc
    --remote], the storm load driver and the tests all speak through
    this. *)

type t

exception Protocol_error of string
(** The server answered with something other than the protocol allows
    (bad frame, bad message, wrong reply shape, early close). *)

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when the daemon is not there. *)

val close : t -> unit

val with_connect : socket:string -> (t -> 'a) -> 'a

val ping : t -> bool

val build : t -> Proto.build_req -> Proto.response
(** [Built], [Rejected] or [Failed] (never the other arms). *)

val stats : t -> Proto.stats

val shutdown_server : t -> unit
(** Ask the daemon to shut down gracefully; returns once acknowledged
    (drain completes after). *)
