(** Synchronous client for the build server: one outstanding request
    per connection, blocking until its response arrives.  [cmoc
    --remote], the storm load driver and the tests all speak through
    this. *)

type t

exception Protocol_error of string
(** The server answered with something other than the protocol allows
    (bad frame, bad message, wrong reply shape, early close). *)

val connect : socket:string -> t
(** Raises [Unix.Unix_error] when the daemon is not there. *)

val close : t -> unit

val with_connect : socket:string -> (t -> 'a) -> 'a

val ping : t -> bool

val build : t -> Proto.build_req -> Proto.response
(** [Built], [Rejected] or [Failed] (never the other arms). *)

val stats : t -> Proto.stats

val shutdown_server : t -> unit
(** Ask the daemon to shut down gracefully; returns once acknowledged
    (drain completes after). *)

(** {2 Remote artifact cache} *)

val cache_get : t -> string -> string option
(** Fetch a store record by fingerprint key from the daemon's store;
    [None] on a miss (which is normal, not an error). *)

val cache_put : t -> string -> string -> unit
(** Publish a store record under its fingerprint key. *)

(** {2 Fleet profile accumulation} *)

val profile_put : t -> string -> int
(** Upload one encoded {!Cmo_profile.Ingest} shard; returns the
    daemon's decodable-shard count after the append.  Raises
    {!Protocol_error} when the daemon rejects the shard as garbage. *)

val profile_get : t -> current_fp:string -> string * int * int
(** [(db bytes, shards merged, shards skipped)]: the daemon's
    canonical merged database for the given source fingerprint
    (decay, skew and the poisoning clamp applied server-side).  An
    empty fleet is [(empty Db, 0, 0)], not an error. *)

(** {2 Profile cohorts} *)

val cohort_list : t -> Cmo_profile.Cohort.info list
(** The daemon's named cohorts, sorted by name. *)

val cohort_ingest : t -> cohort:string -> string list -> int
(** Append encoded shards to a named cohort (created as needed; an
    empty list just creates); returns the cohort's decodable-shard
    count.  Raises {!Protocol_error} on a bad name or garbage
    shard. *)

val cohort_pull : t -> cohort:string -> current_fp:string -> string * int * int
(** {!profile_get} against one named cohort: [(db bytes, shards
    merged, shards skipped)] — byte-identical to a local ingest of
    the same shards.  An unknown cohort is an empty database, not an
    error. *)

val cohort_diff :
  t ->
  base:string ->
  canary:string ->
  percent:float ->
  threshold:float ->
  Cmo_driver.Pipeline.source list ->
  Cmo_profile.Cohort.Diff.report
(** Ask the daemon whether [canary] induces a different module hot
    set than [base] on this program (selection at [percent], flip
    verdict at [threshold]). *)

val remote : t -> Cmo_driver.Distwork.remote
(** Wrap the connection as a degrading remote cache for
    {!Cmo_driver.Pipeline.compile}: any transport or protocol failure
    disables the remote for the rest of the build (misses / dropped
    puts) instead of raising — a remote-cache fault never fails a
    build. *)
