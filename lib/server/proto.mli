(** The build-server wire protocol.

    Messages are {!Cmo_support.Codec} binary payloads framed on the
    socket with the same CMR1 magic + length + CRC-32 header the
    on-disk record streams use ({!Cmo_support.Fsio.frame}), so the
    transport inherits the store's corruption detection: a torn or
    bit-flipped message fails the frame scan instead of decoding
    garbage.  Framing violations are fatal for a connection — unlike a
    record file there is no authority for where the next record
    starts, so the peer closes rather than resynchronizing.

    One request is outstanding per connection at a time (the client is
    synchronous); concurrency comes from multiple connections. *)

type build_req = {
  tag : string;  (** Echoed in the response; client's correlation id. *)
  level : Cmo_driver.Options.level;
  pbo : bool;
      (** Accepted on the wire, but the daemon builds without a
          profile database, so +P degrades to the no-profile path. *)
  jobs : int;  (** Worker domains for this request's pipeline phases. *)
  check : bool;  (** Run the between-phase IL verifier. *)
  fault : string option;
      (** A per-request {!Cmo_support.Fsio} fault-plan spec.  Fault
          plans are process-wide, so the server runs such a request
          exclusively (no other request in flight) and restores the
          store afterwards; a crash plan kills this request only. *)
  sources : Cmo_driver.Pipeline.source list;
}

type request =
  | Ping
  | Build of build_req
  | Stats
  | Shutdown
  | Cache_get of { key : string }
      (** Remote artifact cache: fetch the store record under this
          fingerprint key.  Served inline by the connection reader
          (never queued): lookups are cheap and a build farm's cache
          traffic must not sit behind build requests. *)
  | Cache_put of { key : string; data : string }
      (** Remote artifact cache: publish a record.  Content-addressed,
          so concurrent puts of the same key are idempotent. *)
  | Profile_put of { shard : string }
      (** Fleet profile ingestion: upload one encoded
          {!Cmo_profile.Ingest} shard.  The daemon validates it
          (garbage is rejected, not stored) and appends it to its
          durable shard pack; served inline like the cache pair. *)
  | Profile_get of { current_fp : string }
      (** Fetch the canonical merged database: the daemon ingests its
          accumulated shards under the default policy for
          [current_fp] (skew/decay/clamp applied server-side) and
          returns the canonical {!Cmo_profile.Db.encode} bytes. *)
  | Cohort_list
      (** Enumerate the daemon's named profile cohorts
          ({!Cmo_profile.Cohort}); served inline like the cache pair. *)
  | Cohort_ingest of { cohort : string; shards : string list }
      (** Append encoded {!Cmo_profile.Ingest} shards to the named
          cohort's pack, creating the cohort as needed — so an empty
          list is "create".  Garbage shards are rejected, not stored;
          a bad cohort name is rejected outright. *)
  | Cohort_pull of { cohort : string; current_fp : string }
      (** [Profile_get] against one named cohort: the daemon ingests
          the cohort's shards under the default policy for
          [current_fp] and returns canonical Db bytes — byte-identical
          to a local ingest of the same shards. *)
  | Cohort_diff of {
      base : string;
      canary : string;
      percent : float;  (** Hot-set selection percentage. *)
      threshold : float;  (** Would-flip share threshold. *)
      sources : Cmo_driver.Pipeline.source list;
          (** The program the selection question is about; the daemon
              front-ends it and fingerprints it for the pull policy. *)
    }
      (** The canary question: does the [canary] cohort induce a
          different module hot set than [base] on this program?
          Returns an encoded {!Cmo_profile.Cohort.Diff.report}. *)

type stats = {
  accepted : int;  (** Build requests admitted to the queue, ever. *)
  completed : int;
  failed : int;
  rejected : int;  (** Refused by admission control (or shutdown). *)
  queue_depth : int;
  inflight : int;
  store_hits : int;  (** Warm-store traffic, daemon lifetime. *)
  store_misses : int;
}

type response =
  | Pong
  | Built of {
      tag : string;
      objects : string list;
          (** {!Cmo_link.Objfile.encode} of each linked object, in
              link order — the byte-identity surface: a one-shot build
              of the same tree yields these exact strings, and the
              image relinks deterministically from them. *)
      report : string;  (** {!Cmo_driver.Pipeline.report_to_json}. *)
    }
  | Rejected of { tag : string; reason : string }  (** Never attempted. *)
  | Failed of { tag : string; reason : string }  (** Attempted, failed. *)
  | Stats_reply of stats
  | Shutting_down
  | Cache_hit of { data : string }  (** [Cache_get] found the record. *)
  | Cache_miss
      (** [Cache_get]: no record under that key.  Clients degrade to
          local recompute — a miss is never an error. *)
  | Cache_stored  (** [Cache_put] acknowledged. *)
  | Profile_stored of { shards : int }
      (** [Profile_put] acknowledged; the pack now holds this many
          decodable shards. *)
  | Profile_db of { data : string; shards : int; skipped : int }
      (** [Profile_get]: canonical merged Db bytes plus how many
          shards were merged and how many damaged ones were skipped.
          An empty pack is [shards = 0] with an empty-Db [data] —
          clients treat it like a cache miss, never an error. *)
  | Cohort_listing of { cohorts : Cmo_profile.Cohort.info list }
      (** [Cohort_list]: every cohort, sorted by name. *)
  | Cohort_stored of { cohort : string; shards : int }
      (** [Cohort_ingest] acknowledged; the cohort's pack now holds
          this many decodable shards. *)
  | Cohort_db of { data : string; shards : int; skipped : int }
      (** [Cohort_pull]: same surface as [Profile_db].  An unknown
          cohort is [shards = 0] with empty-Db [data], never an
          error. *)
  | Cohort_report of { report : string }
      (** [Cohort_diff]: an encoded
          {!Cmo_profile.Cohort.Diff.report}. *)

val string_of_request : request -> string
val request_of_string : string -> (request, string) result
val string_of_response : response -> string
val response_of_string : string -> (response, string) result
(** Decoders reject bad tags, truncation and trailing bytes. *)

val max_payload : int
(** Frames advertising more than this many payload bytes are a
    protocol violation (64 MiB). *)

val write_message : Unix.file_descr -> string -> unit
(** Frame and send one message payload.  Raises [Unix.Unix_error] on
    transport failure (e.g. the peer vanished). *)

val read_message : Unix.file_descr -> (string, [ `Eof | `Bad of string ]) result
(** Read one framed message.  [`Eof] is a clean close between
    messages; [`Bad] is a framing violation (bad magic, CRC mismatch,
    oversized, or a close mid-frame) after which the connection is
    unusable. *)
