(** Admission control and fair dispatch for the build server.

    A bounded queue with two-class FIFO-with-aging dispatch:

    - {b Admission}: at most [queue_max] entries wait at once; beyond
      that {!submit} refuses (the daemon answers [Rejected], which an
      interactive client can retry — better than unbounded latency).
    - {b Dispatch}: entries whose [cost] is at most [small_cost] form
      the interactive class and dispatch first, FIFO; larger entries
      dispatch FIFO behind them, but any entry passed over for
      [age_rounds] dispatches is promoted to the interactive class.
      An edit storm of small builds therefore jumps ahead of a big
      batch build, while the big build waits at most [age_rounds]
      dispatches — neither side starves.

    Consumers block in {!take}; after {!close}, submission refuses,
    already-admitted entries still drain (graceful shutdown finishes
    what it accepted), and [take] returns [None] once empty. *)

type 'a t

val create : ?small_cost:int -> ?age_rounds:int -> queue_max:int -> unit -> 'a t
(** [small_cost] defaults to 200 (source lines), [age_rounds] to 4. *)

val submit : 'a t -> cost:int -> 'a -> bool
(** [false]: refused — the queue is full or closed.  Never blocks. *)

val take : 'a t -> 'a option
(** Block until an entry is available ([Some]) or the queue is closed
    and drained ([None]). *)

val depth : 'a t -> int

val close : 'a t -> unit
(** Refuse new entries, let the rest drain, wake all waiters. *)

val closed : 'a t -> bool
