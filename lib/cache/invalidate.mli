(** Invalidation closures for incremental CMO.

    Which modules must be re-optimized when one changes?  Within the
    link-time optimizer, two modules can observe each other through
    exactly two channels:

    - call edges — inlining grafts callee bodies into callers
      (transitively, in bottom-up order), and IPA derives per-callee
      argument pins and reachability from call sites in callers;
    - shared globals — IPA folds loads of never-stored globals, so a
      module defining, loading or storing a global is coupled to
      every other module touching that global.  Module-local statics
      are name-mangled by the frontend, so coupling by name is exact.

    Both channels are symmetric in effect, so the invalidation
    closure of a change is its weakly-connected component in the
    module graph whose edges are call edges plus shared-global
    coupling — the analogue of a WHOPR partition.  A component is an
    independent unit of link-time optimization: re-running CMO over
    one component reproduces bit-for-bit what a full run produces for
    its modules (the growth budgets in {!Cmo_hlo.Inline} are tracked
    per component for exactly this reason). *)

type t

val compute : Cmo_il.Ilmod.t list -> t
(** Analyze a CMO set.  Call sites whose callee is not defined in the
    set are external and do not create edges (the driver folds the
    external context into cache keys separately). *)

val component : t -> string -> string list
(** The weakly-connected component containing the module, in CMO-set
    order.  A module not in the analyzed set is its own component. *)

val components : t -> string list list
(** All components, each in CMO-set order, ordered by first member. *)

val closure : t -> changed:string list -> string list
(** Union of the components of the changed modules, in CMO-set
    order. *)

val global_refs : t -> string -> string list
(** Sorted names of the globals a module defines, loads or stores —
    the slice of the external store context that can influence its
    component's optimization. *)
