module Func = Cmo_il.Func
module Ilcodec = Cmo_il.Ilcodec
module Intern = Cmo_support.Intern
module W = Cmo_support.Codec.Writer
module R = Cmo_support.Codec.Reader

let encode f =
  let names = Intern.create () in
  let body = Ilcodec.encode_func ~names f in
  let w = W.create () in
  let table = ref [] in
  Intern.iter names (fun _ s -> table := s :: !table);
  W.list w (W.string w) (List.rev !table);
  W.string w body;
  W.contents w

let decode bytes =
  let r = R.of_string bytes in
  let names = Intern.create () in
  List.iter (fun s -> ignore (Intern.intern names s)) (R.list r R.string);
  Ilcodec.decode_func ~names (R.string r)

let overwrite ~(dst : Func.t) (src : Func.t) =
  dst.Func.linkage <- src.Func.linkage;
  dst.Func.entry <- src.Func.entry;
  dst.Func.blocks <- src.Func.blocks;
  dst.Func.next_reg <- src.Func.next_reg;
  dst.Func.next_label <- src.Func.next_label;
  dst.Func.next_site <- src.Func.next_site;
  dst.Func.src_lines <- src.Func.src_lines
