(** Persistent content-addressed artifact store.

    Link-time CMO results are cached on disk under keys produced by
    {!Cmo_support.Fingerprint.of_strings}.  A store directory holds
    two files:

    - [index] — {!Cmo_support.Codec}-framed: magic, the persisted
      hit/miss/store/eviction counters, the LRU clock, and one
      (key, offset, length, crc, last-use) record per live artifact;
    - [payload] — the artifact bytes, append-only, each artifact
      wrapped in a {!Cmo_support.Fsio} length+CRC record frame;
    - [quarantine/] — raw bytes of records whose CRC failed,
      preserved for post-mortems (created on demand).

    The store is capacity-bounded: when live bytes exceed the
    capacity, least-recently-used artifacts are evicted (their index
    records dropped).  Dead payload bytes — from eviction and from
    replaced keys — are reclaimed by compaction once they outweigh
    the live bytes.

    Robustness over cleverness: a missing, truncated or corrupt index
    simply reads as an empty store (every lookup misses and the next
    compaction reclaims the orphaned payload), never as an error.
    The index is written atomically (temp file + fsync + rename) on
    {!flush}/{!close}.  A torn payload tail — the state a crash
    mid-append leaves — is detected structurally on open and
    truncated away; a record whose CRC fails at read time is copied
    to [quarantine/] and degrades to a miss; an I/O failure while
    writing degrades to "not cached", never a failed build.  All
    file traffic goes through {!Cmo_support.Fsio}, so every one of
    those paths is exercised deterministically by the fault-injection
    sweep ([bench fault-sweep]).

    Every public operation is guarded by an internal mutex, so a
    store may be shared between domains.  Parallel link-time CMO does
    not rely on that alone: workers read through {!type-txn}
    transactions (snapshot reads, buffered writes, logged operations)
    committed in a fixed order, which keeps the on-disk index and
    payload byte-identical whatever the worker count. *)

type t

val open_ : ?capacity:int -> dir:string -> unit -> t
(** Opens (creating the directory and files as needed) a store.
    [capacity] bounds live payload bytes; default 256 MiB.  A single
    artifact larger than the capacity is kept — the bound is enforced
    by evicting down to at most one entry. *)

val find : t -> string -> string option
(** Lookup by key; counts a hit or a miss and refreshes LRU order.
    An unreadable payload degrades to a miss; a record whose framing
    or CRC fails is quarantined first. *)

val peek : t -> string -> string option
(** Lookup without observation: no counters, no LRU refresh, no
    recovery side effects.  Transactions read through this. *)

val add : t -> string -> string -> unit
(** [add t key data] stores (or replaces) an artifact and evicts as
    needed.  The payload write is flushed immediately; the index is
    persisted on {!flush}/{!close}. *)

val flush : t -> unit
val close : t -> unit

val clear : t -> unit
(** Drop every artifact and reset all counters; persists. *)

val wipe : dir:string -> unit
(** Remove a store's files, its quarantine directory, and the
    directory itself if then empty, without opening it; a no-op when
    nothing is there.  [Buildsys.clean] uses this. *)

type txn
(** An isolated view for one parallel worker: reads see the store as
    it stood at {!txn_begin} plus the transaction's own writes, and
    every operation is logged.  Nothing reaches the store (counters,
    LRU clock, files) until {!txn_commit} replays the log through the
    ordinary find/add path.  Workers run transactions concurrently;
    the committing thread commits them in a fixed (component) order,
    which makes the store's on-disk bytes independent of the worker
    count. *)

val txn_begin : t -> txn

val txn_find : txn -> string -> string option
(** Logged lookup: the transaction's own writes shadow the snapshot. *)

val txn_add : txn -> string -> string -> unit
(** Buffered, logged write; visible to this transaction's later
    [txn_find]s only. *)

val txn_commit : txn -> unit
(** Replay the log against the store in operation order.  Call from
    one thread at a time, in a deterministic transaction order.  The
    transaction is spent afterwards (its log and buffer are cleared). *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
  live_bytes : int;
  payload_bytes : int;  (** On-disk payload size, including dead bytes. *)
  capacity : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
