(** Self-contained single-function codec for the per-function phase
    cache.

    {!Cmo_il.Ilcodec.encode_func} interns symbol names into a shared
    module-level table; for content-addressed keying each function
    must instead be a closed byte string.  [encode] therefore bundles
    a private name table (built fresh, so identical functions encode
    identically) with the function body. *)

val encode : Cmo_il.Func.t -> string

val decode : string -> Cmo_il.Func.t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val overwrite : dst:Cmo_il.Func.t -> Cmo_il.Func.t -> unit
(** Replace [dst]'s mutable content (linkage, entry, blocks, counter
    watermarks, source lines) with [src]'s.  [name] and [arity] are
    immutable; the caller must have checked they agree.  Used to
    apply a cached post-phase body to a loader-acquired function in
    place, which is what {!Cmo_naim.Loader.update} requires. *)
