module Ilmod = Cmo_il.Ilmod
module Func = Cmo_il.Func
module Instr = Cmo_il.Instr
module Intrinsics = Cmo_il.Intrinsics

type t = {
  order : string list;  (* module names in CMO-set order *)
  root_of : (string, string) Hashtbl.t;  (* module -> component root *)
  grefs : (string, string list) Hashtbl.t;  (* module -> sorted global names *)
}

(* Union-find over module names, with path compression. *)
let rec find parent x =
  match Hashtbl.find_opt parent x with
  | Some p when not (String.equal p x) ->
    let r = find parent p in
    Hashtbl.replace parent x r;
    r
  | Some _ -> x
  | None ->
    Hashtbl.replace parent x x;
    x

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (String.equal ra rb) then Hashtbl.replace parent ra rb

let compute modules =
  let parent = Hashtbl.create 64 in
  let func_module = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      ignore (find parent m.Ilmod.mname);
      List.iter
        (fun (f : Func.t) ->
          Hashtbl.replace func_module f.Func.name m.Ilmod.mname)
        m.Ilmod.funcs)
    modules;
  (* One bucket per global name: every module touching it is coupled. *)
  let global_bucket = Hashtbl.create 64 in
  let grefs = Hashtbl.create 64 in
  List.iter
    (fun (m : Ilmod.t) ->
      let mname = m.Ilmod.mname in
      let touched = Hashtbl.create 8 in
      let touch g = Hashtbl.replace touched g () in
      List.iter (fun (g : Ilmod.global) -> touch g.Ilmod.gname) m.Ilmod.globals;
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              List.iter
                (fun i ->
                  match i with
                  | Instr.Load (_, { Instr.base; _ }) -> touch base
                  | Instr.Store ({ Instr.base; _ }, _) -> touch base
                  | Instr.Call { Instr.callee; _ }
                    when not (Intrinsics.is_intrinsic callee) -> (
                    match Hashtbl.find_opt func_module callee with
                    | Some callee_module -> union parent mname callee_module
                    | None -> ())
                  | Instr.Call _ | Instr.Move _ | Instr.Unop _ | Instr.Binop _
                  | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs;
      Hashtbl.iter
        (fun g () ->
          (match Hashtbl.find_opt global_bucket g with
          | Some other -> union parent mname other
          | None -> Hashtbl.replace global_bucket g mname);
          ())
        touched;
      Hashtbl.replace grefs mname
        (Hashtbl.fold (fun g () acc -> g :: acc) touched []
        |> List.sort String.compare))
    modules;
  let order = List.map (fun (m : Ilmod.t) -> m.Ilmod.mname) modules in
  let root_of = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.replace root_of name (find parent name)) order;
  { order; root_of; grefs }

let root t name =
  match Hashtbl.find_opt t.root_of name with Some r -> r | None -> name

let component t name =
  let r = root t name in
  match List.filter (fun n -> String.equal (root t n) r) t.order with
  | [] -> [ name ]
  | members -> members

let components t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun name ->
      let r = root t name in
      if Hashtbl.mem seen r then None
      else begin
        Hashtbl.replace seen r ();
        Some (component t name)
      end)
    t.order

let closure t ~changed =
  let roots = Hashtbl.create 8 in
  List.iter (fun name -> Hashtbl.replace roots (root t name) ()) changed;
  let inside = List.filter (fun n -> Hashtbl.mem roots (root t n)) t.order in
  let outside_set =
    List.filter (fun n -> not (List.mem n t.order)) changed
  in
  inside @ outside_set

let global_refs t name =
  match Hashtbl.find_opt t.grefs name with Some gs -> gs | None -> []
