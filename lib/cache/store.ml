module W = Cmo_support.Codec.Writer
module R = Cmo_support.Codec.Reader

let magic = "CMOCACHE1"

type entry = { mutable offset : int; length : int; mutable last_use : int }

type t = {
  dir : string;
  index_path : string;
  payload_path : string;
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;  (* guards every public operation *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable live_bytes : int;
  mutable payload_len : int;  (* includes dead bytes *)
  mutable out : out_channel option;  (* lazy append channel *)
}

let locked (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
  live_bytes : int;
  payload_bytes : int;
  capacity : int;
}

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_size path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> in_channel_length ic)
  | exception Sys_error _ -> 0

(* A missing or malformed index reads as empty: artifacts are then
   rediscovered as misses and the orphaned payload bytes are dead
   until the next compaction. *)
let load_index (t : t) =
  match read_file t.index_path with
  | exception Sys_error _ -> ()
  | bytes -> (
    try
      let r = R.of_string bytes in
      if R.string r <> magic then R.corrupt "bad cache magic";
      t.hits <- R.uvarint r;
      t.misses <- R.uvarint r;
      t.stores <- R.uvarint r;
      t.evictions <- R.uvarint r;
      t.tick <- R.uvarint r;
      List.iter
        (fun (key, offset, length, last_use) ->
          if offset >= 0 && length >= 0 && offset + length <= t.payload_len
          then begin
            Hashtbl.replace t.entries key { offset; length; last_use };
            t.live_bytes <- t.live_bytes + length
          end)
        (R.list r (fun r ->
             let key = R.string r in
             let offset = R.uvarint r in
             let length = R.uvarint r in
             let last_use = R.uvarint r in
             (key, offset, length, last_use)))
    with R.Corrupt _ | End_of_file ->
      Hashtbl.reset t.entries;
      t.live_bytes <- 0)

let save_index (t : t) =
  let w = W.create () in
  W.string w magic;
  W.uvarint w t.hits;
  W.uvarint w t.misses;
  W.uvarint w t.stores;
  W.uvarint w t.evictions;
  W.uvarint w t.tick;
  let items =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  W.list w
    (fun (key, (e : entry)) ->
      W.string w key;
      W.uvarint w e.offset;
      W.uvarint w e.length;
      W.uvarint w e.last_use)
    items;
  let tmp = t.index_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (W.contents w));
  Sys.rename tmp t.index_path

let open_ ?(capacity = 256 * 1024 * 1024) ~dir () =
  mkdirs dir;
  let t =
    {
      dir;
      index_path = Filename.concat dir "index";
      payload_path = Filename.concat dir "payload";
      capacity;
      entries = Hashtbl.create 64;
      lock = Mutex.create ();
      tick = 0;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
      live_bytes = 0;
      payload_len = 0;
      out = None;
    }
  in
  t.payload_len <- file_size t.payload_path;
  load_index t;
  t

let next_tick (t : t) =
  t.tick <- t.tick + 1;
  t.tick

let read_payload (t : t) offset length =
  let ic = open_in_bin t.payload_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic offset;
      really_input_string ic length)

let find_unlocked (t : t) key =
  match Hashtbl.find_opt t.entries key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e -> (
    match read_payload t e.offset e.length with
    | data ->
      t.hits <- t.hits + 1;
      e.last_use <- next_tick t;
      Some data
    | exception (Sys_error _ | End_of_file) ->
      (* Truncated payload: drop the record and degrade to a miss. *)
      Hashtbl.remove t.entries key;
      t.live_bytes <- t.live_bytes - e.length;
      t.misses <- t.misses + 1;
      None)

let find (t : t) key =
  let r = locked t (fun () -> find_unlocked t key) in
  Cmo_obs.Obs.tick "cache.store" (if r = None then "misses" else "hits") 1;
  r

(* Read without observation: no counter bump, no LRU refresh, no
   entry dropped on a truncated payload.  This is what transactions
   read through — their logged operations are replayed against the
   real store at commit, which is when the counters move. *)
let peek (t : t) key =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | None -> None
      | Some e -> (
        match read_payload t e.offset e.length with
        | data -> Some data
        | exception (Sys_error _ | End_of_file) -> None))

let append_channel (t : t) =
  match t.out with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.payload_path
    in
    t.out <- Some oc;
    oc

let close_append (t : t) =
  match t.out with
  | Some oc ->
    close_out_noerr oc;
    t.out <- None
  | None -> ()

let drop (t : t) key (e : entry) =
  Hashtbl.remove t.entries key;
  t.live_bytes <- t.live_bytes - e.length

let evict (t : t) =
  (* Down to the capacity, never below one entry: a single oversized
     artifact is more useful kept than thrashed. *)
  while t.live_bytes > t.capacity && Hashtbl.length t.entries > 1 do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_use <= e.last_use -> acc
          | _ -> Some (key, e))
        t.entries None
    in
    match victim with
    | Some (key, e) ->
      drop t key e;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

(* Rewrite the payload keeping only live artifacts, streamed in offset
   order so compaction memory stays at one artifact. *)
let compact (t : t) =
  let dead = t.payload_len - t.live_bytes in
  if dead > max (1 lsl 20) t.live_bytes then begin
    close_append t;
    let live =
      Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.entries []
      |> List.sort (fun (_, a) (_, b) -> compare a.offset b.offset)
    in
    let tmp = t.payload_path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       let pos = ref 0 in
       List.iter
         (fun (_, (e : entry)) ->
           let data = read_payload t e.offset e.length in
           e.offset <- !pos;
           output_string oc data;
           pos := !pos + e.length)
         live;
       close_out oc;
       Sys.rename tmp t.payload_path;
       t.payload_len <- t.live_bytes
     with Sys_error _ | End_of_file ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ()))
  end

let add_unlocked (t : t) key data =
  (match Hashtbl.find_opt t.entries key with
  | Some old -> drop t key old
  | None -> ());
  let oc = append_channel t in
  output_string oc data;
  flush oc;
  let e =
    { offset = t.payload_len; length = String.length data; last_use = next_tick t }
  in
  t.payload_len <- t.payload_len + e.length;
  t.live_bytes <- t.live_bytes + e.length;
  t.stores <- t.stores + 1;
  Hashtbl.replace t.entries key e;
  evict t;
  compact t

let add (t : t) key data =
  locked t (fun () -> add_unlocked t key data);
  Cmo_obs.Obs.tick "cache.store" "stores" 1;
  Cmo_obs.Obs.tick "cache.store" "store_bytes" (String.length data)

let flush (t : t) =
  locked t (fun () ->
      (match t.out with Some oc -> flush oc | None -> ());
      save_index t)

let close (t : t) =
  flush t;
  locked t (fun () -> close_append t)

let clear (t : t) =
  locked t (fun () ->
      close_append t;
      Hashtbl.reset t.entries;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.stores <- 0;
      t.evictions <- 0;
      t.live_bytes <- 0;
      t.payload_len <- 0;
      (try Sys.remove t.payload_path with Sys_error _ -> ());
      save_index t)

let wipe ~dir =
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ())
    [ "index"; "index.tmp"; "payload"; "payload.tmp" ];
  if Sys.file_exists dir then try Sys.rmdir dir with Sys_error _ -> ()

let stats (t : t) =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        entries = Hashtbl.length t.entries;
        live_bytes = t.live_bytes;
        payload_bytes = t.payload_len;
        capacity = t.capacity;
      })

(* ---- transactions -------------------------------------------------

   A transaction gives one parallel worker an isolated view: it reads
   the store as it stood when the transaction began (via [peek], which
   observes nothing) plus its own buffered writes, and it logs every
   find/add it performs.  Nothing touches the store's counters, LRU
   clock or files until [txn_commit] replays the log through the
   ordinary [find]/[add] path on the committing thread.

   Determinism: a worker's log is a function of the snapshot and its
   own inputs alone, so as long as transactions are begun against the
   same snapshot and committed in a fixed order, the store's on-disk
   bytes are identical no matter how many workers ran or how their
   execution interleaved. *)

type op = Ofind of string | Oadd of string * string

type txn = {
  origin : t;
  writes : (string, string) Hashtbl.t;
  mutable ops : op list;  (* newest first *)
}

let txn_begin (t : t) = { origin = t; writes = Hashtbl.create 16; ops = [] }

let txn_find (txn : txn) key =
  txn.ops <- Ofind key :: txn.ops;
  match Hashtbl.find_opt txn.writes key with
  | Some data -> Some data
  | None -> peek txn.origin key

let txn_add (txn : txn) key data =
  txn.ops <- Oadd (key, data) :: txn.ops;
  Hashtbl.replace txn.writes key data

let txn_commit (txn : txn) =
  Cmo_obs.Obs.tick "cache.store" "txn_commits" 1;
  List.iter
    (function
      | Ofind key -> ignore (find txn.origin key)
      | Oadd (key, data) -> add txn.origin key data)
    (List.rev txn.ops);
  txn.ops <- [];
  Hashtbl.reset txn.writes

let pp_stats ppf s =
  let ratio =
    if s.hits + s.misses = 0 then 0.0
    else 100.0 *. float_of_int s.hits /. float_of_int (s.hits + s.misses)
  in
  Format.fprintf ppf
    "@[<v>hits %d, misses %d (%.1f%% hit rate)@,stores %d, evictions %d@,%d \
     entries, %d live bytes (%d on disk, capacity %d)@]"
    s.hits s.misses ratio s.stores s.evictions s.entries s.live_bytes
    s.payload_bytes s.capacity
