module W = Cmo_support.Codec.Writer
module R = Cmo_support.Codec.Reader
module Fsio = Cmo_support.Fsio

let log_src = Logs.Src.create "cmo.cache" ~doc:"Artifact cache store"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* CMOCACHE2: payload records gained length+CRC framing and index
   entries remember each record's CRC, so a CMOCACHE1 store reads as
   empty (a cold rebuild, not an error). *)
let magic = "CMOCACHE2"

type entry = {
  mutable offset : int;  (* of the framed record, not the payload *)
  length : int;  (* of the payload *)
  crc : int32;
  mutable last_use : int;
}

type t = {
  dir : string;
  index_path : string;
  payload_path : string;
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;  (* guards every public operation *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable live_bytes : int;
  mutable payload_len : int;  (* includes dead bytes and framing *)
  mutable out : Fsio.appender option;  (* lazy append stream *)
}

let locked (t : t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
  live_bytes : int;
  payload_bytes : int;
  capacity : int;
}

(* On-disk footprint of an entry's record. *)
let disk_size (e : entry) = Fsio.frame_overhead + e.length

(* A missing or malformed index reads as empty: artifacts are then
   rediscovered as misses and the orphaned payload bytes are dead
   until the next compaction. *)
let load_index (t : t) =
  match Fsio.read_file t.index_path with
  | exception Sys_error _ -> ()
  | bytes -> (
    try
      let r = R.of_string bytes in
      if R.string r <> magic then R.corrupt "bad cache magic";
      t.hits <- R.uvarint r;
      t.misses <- R.uvarint r;
      t.stores <- R.uvarint r;
      t.evictions <- R.uvarint r;
      t.tick <- R.uvarint r;
      List.iter
        (fun (key, offset, length, crc, last_use) ->
          if
            offset >= 0 && length >= 0
            && offset + Fsio.frame_overhead + length <= t.payload_len
          then begin
            Hashtbl.replace t.entries key { offset; length; crc; last_use };
            t.live_bytes <- t.live_bytes + length
          end)
        (R.list r (fun r ->
             let key = R.string r in
             let offset = R.uvarint r in
             let length = R.uvarint r in
             let crc = Int32.of_int (R.uvarint r) in
             let last_use = R.uvarint r in
             (key, offset, length, crc, last_use)))
    with R.Corrupt _ | End_of_file ->
      Hashtbl.reset t.entries;
      t.live_bytes <- 0)

let save_index (t : t) =
  let w = W.create () in
  W.string w magic;
  W.uvarint w t.hits;
  W.uvarint w t.misses;
  W.uvarint w t.stores;
  W.uvarint w t.evictions;
  W.uvarint w t.tick;
  let items =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  W.list w
    (fun (key, (e : entry)) ->
      W.string w key;
      W.uvarint w e.offset;
      W.uvarint w e.length;
      W.uvarint w (Int32.to_int e.crc land 0xffffffff);
      W.uvarint w e.last_use)
    items;
  Fsio.atomic_write t.index_path (W.contents w)

(* An index that cannot be saved is a stale index, not a failed
   build: the affected artifacts are recomputed next time. *)
let save_index_soft (t : t) =
  try save_index t
  with Sys_error m ->
    Cmo_obs.Obs.tick "cache.store" "index_errors" 1;
    Log.warn (fun f -> f "cache index not saved (%s); will recompute" m)

let open_ ?(capacity = 256 * 1024 * 1024) ~dir () =
  (try Fsio.mkdirs dir
   with Sys_error m ->
     Cmo_obs.Obs.tick "cache.store" "io_errors" 1;
     Log.warn (fun f -> f "cache directory unavailable (%s)" m));
  let t =
    {
      dir;
      index_path = Filename.concat dir "index";
      payload_path = Filename.concat dir "payload";
      capacity;
      entries = Hashtbl.create 64;
      lock = Mutex.create ();
      tick = 0;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
      live_bytes = 0;
      payload_len = 0;
      out = None;
    }
  in
  (* Resynchronize after a torn append: keep the structurally whole
     record prefix, truncate the tail a crash left behind. *)
  let valid_end, size =
    try Fsio.valid_prefix t.payload_path with Sys_error _ -> (0, 0)
  in
  if valid_end < size then begin
    Cmo_obs.Obs.tick "cache.store" "torn_tail_truncated" 1;
    Log.warn (fun f ->
        f "cache payload torn at byte %d (of %d); truncating" valid_end size);
    try Fsio.truncate t.payload_path valid_end with Sys_error _ -> ()
  end;
  t.payload_len <- valid_end;
  load_index t;
  t

let next_tick (t : t) =
  t.tick <- t.tick + 1;
  t.tick

let read_entry (t : t) (e : entry) =
  Fsio.read_record ~expect_crc:e.crc t.payload_path ~offset:e.offset
    ~length:e.length

let drop (t : t) key (e : entry) =
  Hashtbl.remove t.entries key;
  t.live_bytes <- t.live_bytes - e.length

(* A record whose framing or CRC fails is data corruption, not an
   I/O error: preserve the damaged bytes for a post-mortem, then
   treat the key as a miss. *)
let quarantine (t : t) key (e : entry) reason =
  Cmo_obs.Obs.tick "cache.store" "quarantined" 1;
  Log.warn (fun f ->
      f "corrupt cache record at offset %d (%s); quarantined, key %s is a miss"
        e.offset reason
        (String.sub key 0 (min 12 (String.length key))));
  try
    let qdir = Filename.concat t.dir "quarantine" in
    Fsio.mkdirs qdir;
    let raw =
      Fsio.read_span t.payload_path ~offset:e.offset ~length:(disk_size e)
    in
    Fsio.atomic_write (Filename.concat qdir (Printf.sprintf "rec-%d" e.offset)) raw
  with Sys_error _ -> ()

let find_unlocked (t : t) key =
  match Hashtbl.find_opt t.entries key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e -> (
    match read_entry t e with
    | data ->
      t.hits <- t.hits + 1;
      e.last_use <- next_tick t;
      Some data
    | exception Fsio.Corrupt_record { reason; _ } ->
      quarantine t key e reason;
      drop t key e;
      t.misses <- t.misses + 1;
      None
    | exception (Sys_error _ | End_of_file) ->
      (* Unreadable payload: drop the record and degrade to a miss. *)
      Cmo_obs.Obs.tick "cache.store" "io_errors" 1;
      drop t key e;
      t.misses <- t.misses + 1;
      None)

let find (t : t) key =
  let r = locked t (fun () -> find_unlocked t key) in
  Cmo_obs.Obs.tick "cache.store" (if r = None then "misses" else "hits") 1;
  r

(* Read without observation: no counter bump, no LRU refresh, no
   entry dropped or quarantined on a damaged payload.  This is what
   transactions read through — their logged operations are replayed
   against the real store at commit, which is when the counters
   move. *)
let peek (t : t) key =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | None -> None
      | Some e -> (
        match read_entry t e with
        | data -> Some data
        | exception (Fsio.Corrupt_record _ | Sys_error _ | End_of_file) -> None))

let append_stream (t : t) =
  match t.out with
  | Some a -> a
  | None ->
    let a = Fsio.open_append t.payload_path in
    t.out <- Some a;
    a

let close_append (t : t) =
  match t.out with
  | Some a ->
    Fsio.close_append a;
    t.out <- None
  | None -> ()

let evict (t : t) =
  (* Down to the capacity, never below one entry: a single oversized
     artifact is more useful kept than thrashed. *)
  while t.live_bytes > t.capacity && Hashtbl.length t.entries > 1 do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_use <= e.last_use -> acc
          | _ -> Some (key, e))
        t.entries None
    in
    match victim with
    | Some (key, e) ->
      drop t key e;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

(* Rewrite the payload keeping only live artifacts, streamed in offset
   order so compaction memory stays at one artifact.  New offsets are
   staged on the side and committed only once the replacement file is
   in place — a failure at any point leaves the store untouched. *)
let compact (t : t) =
  let live_disk =
    Hashtbl.fold (fun _ e acc -> acc + disk_size e) t.entries 0
  in
  let dead = t.payload_len - live_disk in
  if dead > max (1 lsl 20) live_disk then begin
    close_append t;
    let live =
      Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.entries []
      |> List.sort (fun (_, a) (_, b) -> compare a.offset b.offset)
    in
    let tmp = t.payload_path ^ ".tmp" in
    match
      let a = Fsio.open_append ~trunc:true tmp in
      let moved =
        Fun.protect
          ~finally:(fun () -> Fsio.close_append ~fsync:true a)
          (fun () ->
            List.map (fun (_, e) -> (e, Fsio.append_record a (read_entry t e))) live)
      in
      Fsio.rename tmp t.payload_path;
      (moved, Fsio.append_pos a)
    with
    | moved, new_len ->
      List.iter (fun ((e : entry), off) -> e.offset <- off) moved;
      t.payload_len <- new_len
    | exception (Sys_error _ | Fsio.Corrupt_record _ | End_of_file) ->
      (* Abandon this compaction; the dead bytes stay until the next
         attempt and every entry still points into the old file. *)
      Cmo_obs.Obs.tick "cache.store" "io_errors" 1;
      Log.warn (fun f -> f "cache compaction abandoned");
      (try Fsio.remove tmp with Sys_error _ -> ())
  end

let add_unlocked (t : t) key data =
  (* Append before dropping any replaced entry: a failed append then
     leaves the old artifact still reachable. *)
  let a = append_stream t in
  let offset = Fsio.append_record a data in
  (match Hashtbl.find_opt t.entries key with
  | Some old -> drop t key old
  | None -> ());
  let e =
    {
      offset;
      length = String.length data;
      crc = Fsio.crc32 data;
      last_use = next_tick t;
    }
  in
  t.payload_len <- Fsio.append_pos a;
  t.live_bytes <- t.live_bytes + e.length;
  t.stores <- t.stores + 1;
  Hashtbl.replace t.entries key e;
  evict t;
  compact t

let add (t : t) key data =
  match locked t (fun () -> add_unlocked t key data) with
  | () ->
    Cmo_obs.Obs.tick "cache.store" "stores" 1;
    Cmo_obs.Obs.tick "cache.store" "store_bytes" (String.length data)
  | exception Sys_error m ->
    (* A store that cannot be written is a cache miss next time, not
       a failed build. *)
    Cmo_obs.Obs.tick "cache.store" "write_errors" 1;
    Log.warn (fun f -> f "cache write failed (%s); artifact not cached" m)

let flush (t : t) = locked t (fun () -> save_index_soft t)

let close (t : t) =
  flush t;
  locked t (fun () ->
      match t.out with
      | Some a ->
        Fsio.close_append ~fsync:true a;
        t.out <- None
      | None -> ())

let clear (t : t) =
  locked t (fun () ->
      close_append t;
      Hashtbl.reset t.entries;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.stores <- 0;
      t.evictions <- 0;
      t.live_bytes <- 0;
      t.payload_len <- 0;
      (try Fsio.remove t.payload_path with Sys_error _ -> ());
      save_index_soft t)

let wipe ~dir =
  let rm path =
    if Sys.file_exists path then try Fsio.remove path with Sys_error _ -> ()
  in
  List.iter
    (fun f -> rm (Filename.concat dir f))
    [ "index"; "index.tmp"; "payload"; "payload.tmp" ];
  let qdir = Filename.concat dir "quarantine" in
  if Sys.file_exists qdir then begin
    (try Array.iter (fun f -> rm (Filename.concat qdir f)) (Sys.readdir qdir)
     with Sys_error _ -> ());
    try Sys.rmdir qdir with Sys_error _ -> ()
  end;
  if Sys.file_exists dir then try Sys.rmdir dir with Sys_error _ -> ()

let stats (t : t) =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        entries = Hashtbl.length t.entries;
        live_bytes = t.live_bytes;
        payload_bytes = t.payload_len;
        capacity = t.capacity;
      })

(* ---- transactions -------------------------------------------------

   A transaction gives one parallel worker an isolated view: it reads
   the store as it stood when the transaction began (via [peek], which
   observes nothing) plus its own buffered writes, and it logs every
   find/add it performs.  Nothing touches the store's counters, LRU
   clock or files until [txn_commit] replays the log through the
   ordinary [find]/[add] path on the committing thread.

   Determinism: a worker's log is a function of the snapshot and its
   own inputs alone, so as long as transactions are begun against the
   same snapshot and committed in a fixed order, the store's on-disk
   bytes are identical no matter how many workers ran or how their
   execution interleaved. *)

type op = Ofind of string | Oadd of string * string

type txn = {
  origin : t;
  writes : (string, string) Hashtbl.t;
  mutable ops : op list;  (* newest first *)
}

let txn_begin (t : t) = { origin = t; writes = Hashtbl.create 16; ops = [] }

let txn_find (txn : txn) key =
  txn.ops <- Ofind key :: txn.ops;
  match Hashtbl.find_opt txn.writes key with
  | Some data -> Some data
  | None -> peek txn.origin key

let txn_add (txn : txn) key data =
  txn.ops <- Oadd (key, data) :: txn.ops;
  Hashtbl.replace txn.writes key data

let txn_commit (txn : txn) =
  Cmo_obs.Obs.tick "cache.store" "txn_commits" 1;
  List.iter
    (function
      | Ofind key -> ignore (find txn.origin key)
      | Oadd (key, data) -> add txn.origin key data)
    (List.rev txn.ops);
  txn.ops <- [];
  Hashtbl.reset txn.writes

let pp_stats ppf s =
  let ratio =
    if s.hits + s.misses = 0 then 0.0
    else 100.0 *. float_of_int s.hits /. float_of_int (s.hits + s.misses)
  in
  Format.fprintf ppf
    "@[<v>hits %d, misses %d (%.1f%% hit rate)@,stores %d, evictions %d@,%d \
     entries, %d live bytes (%d on disk, capacity %d)@]"
    s.hits s.misses ratio s.stores s.evictions s.entries s.live_bytes
    s.payload_bytes s.capacity
