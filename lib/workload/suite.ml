let mk name ~seed ~modules ~hot ~funcs ~weight ~iters ~leaf ~tiny =
  ( name,
    {
      Genprog.name;
      seed;
      modules;
      hot_modules = hot;
      funcs_per_module = funcs;
      hot_weight = weight;
      main_iters = iters;
      leaf_iters = leaf;
      tiny_leaf_percent = tiny;
    } )

(* Personalities: branchy (go), kernel-dominated (compress, ijpeg),
   call-heavy with small functions (li), large and flat (gcc, vortex,
   perl).  Seeds fixed for reproducibility. *)
let spec =
  [
    mk "go" ~seed:101 ~modules:12 ~hot:3 ~funcs:(8, 14) ~weight:80 ~iters:3000
      ~leaf:(8, 20) ~tiny:25;
    mk "m88ksim" ~seed:102 ~modules:10 ~hot:2 ~funcs:(6, 12) ~weight:90
      ~iters:4000 ~leaf:(10, 24) ~tiny:35;
    mk "gcc" ~seed:103 ~modules:60 ~hot:10 ~funcs:(10, 18) ~weight:75
      ~iters:2500 ~leaf:(6, 16) ~tiny:30;
    (* compress is loop-dominated, not call-dominated: long work
       loops, few tiny leaves, so inlining has little to remove --
       matching its small gain in the paper. *)
    mk "compress" ~seed:104 ~modules:4 ~hot:1 ~funcs:(4, 6) ~weight:95
      ~iters:2500 ~leaf:(40, 80) ~tiny:8;
    mk "li" ~seed:105 ~modules:8 ~hot:2 ~funcs:(6, 12) ~weight:88 ~iters:5000
      ~leaf:(6, 14) ~tiny:45;
    mk "ijpeg" ~seed:106 ~modules:9 ~hot:2 ~funcs:(8, 14) ~weight:92
      ~iters:4000 ~leaf:(16, 36) ~tiny:30;
    mk "perl" ~seed:107 ~modules:25 ~hot:5 ~funcs:(8, 16) ~weight:82
      ~iters:3000 ~leaf:(6, 16) ~tiny:35;
    mk "vortex" ~seed:108 ~modules:30 ~hot:6 ~funcs:(8, 16) ~weight:85
      ~iters:3000 ~leaf:(8, 18) ~tiny:30;
  ]

let mcad =
  [
    mk "mcad1" ~seed:201 ~modules:220 ~hot:40 ~funcs:(10, 18) ~weight:85
      ~iters:1500 ~leaf:(8, 18) ~tiny:30;
    mk "mcad2" ~seed:202 ~modules:160 ~hot:30 ~funcs:(10, 18) ~weight:85
      ~iters:1500 ~leaf:(8, 18) ~tiny:30;
    mk "mcad3" ~seed:203 ~modules:280 ~hot:50 ~funcs:(10, 18) ~weight:85
      ~iters:1200 ~leaf:(8, 18) ~tiny:30;
  ]

let all = spec @ mcad

(* The build-server load personality: li-shaped (call-heavy, tiny
   leaves) but smaller, so an edit storm of hundreds of requests
   rebuilds in seconds.  Not part of [all]: the figure experiments
   iterate [all], and storm is a load profile, not a data point. *)
let storm =
  snd
    (mk "storm" ~seed:109 ~modules:6 ~hot:2 ~funcs:(5, 9) ~weight:85
       ~iters:1200 ~leaf:(6, 12) ~tiny:40)

let find name = if String.equal name "storm" then storm else List.assoc name all
