(** Synthetic fleet of profiling users.

    Models "millions of users feeding the profile database" without
    running millions of instrumented builds: given one {e oracle}
    database (a full-fidelity training run), each simulated user's
    shard is a sampled, noisy, activity-scaled draw from it — exactly
    the signal an AutoFDO-style collector would upload.  Users on the
    previous source version draw from a {e stale} oracle instead and
    stamp their shards with that version's fingerprint, so ingestion's
    decay and skew policies have something real to bite on.

    Everything is deterministic in [(config, oracles)]: user [u]'s
    shard is a function of [seed + u] alone. *)

type config = {
  users : int;
  sample_rate : float;
      (** Per-event recording probability, in (0, 1]; shards carry it
          in their meta so ingestion can upscale. *)
  stale_fraction : float;
      (** Fraction of users still running the previous version. *)
  noise : float;
      (** Relative per-key multiplicative jitter, e.g. 0.1 = +-10%. *)
  fleet_seed : int;
}

val default : config
(** 100 users, full sampling, no staleness, 10% noise, seed 7. *)

val generate :
  config ->
  oracle:Cmo_profile.Db.t ->
  current_fp:string ->
  ?stale:Cmo_profile.Db.t * string ->
  unit ->
  Cmo_profile.Ingest.shard list
(** One shard per user.  [stale] is the previous version's oracle and
    fingerprint; without it every user is current regardless of
    [stale_fraction]. *)

val divert : fraction:float -> Cmo_profile.Db.t -> Cmo_profile.Db.t
(** A controlled divergence of the oracle: keys ranked by count are
    paired rank [i] with rank [n-1-i] and each count blended
    [fraction] of the way toward its partner's.  [fraction = 0] is a
    plain copy; [fraction = 1] swaps the hottest and coldest keys
    outright.  Deterministic — the planted hot-set flip the cohort
    diff must detect. *)

val ab_arms :
  config ->
  oracle:Cmo_profile.Db.t ->
  current_fp:string ->
  divergence:float ->
  Cmo_profile.Ingest.shard list * Cmo_profile.Ingest.shard list
(** The (A, B) arms of a canary experiment: arm A samples the oracle,
    arm B samples {!divert}[ ~fraction:divergence oracle], both with
    the same users and seed — so [divergence = 0] yields
    byte-identical arms, and the only difference between the arms is
    the planted divergence itself. *)

val poison :
  factor:float -> Cmo_profile.Ingest.shard -> Cmo_profile.Ingest.shard
(** An adversarial copy claiming the cold half of the program runs at
    [factor x] the shard's real hottest count — the inverted, inflated
    profile a hostile or broken client uploads to promote cold code
    into the hot set.  Ingestion's clamp is what keeps it from
    dominating. *)
