(** Synthetic fleet of profiling users.

    Models "millions of users feeding the profile database" without
    running millions of instrumented builds: given one {e oracle}
    database (a full-fidelity training run), each simulated user's
    shard is a sampled, noisy, activity-scaled draw from it — exactly
    the signal an AutoFDO-style collector would upload.  Users on the
    previous source version draw from a {e stale} oracle instead and
    stamp their shards with that version's fingerprint, so ingestion's
    decay and skew policies have something real to bite on.

    Everything is deterministic in [(config, oracles)]: user [u]'s
    shard is a function of [seed + u] alone. *)

type config = {
  users : int;
  sample_rate : float;
      (** Per-event recording probability, in (0, 1]; shards carry it
          in their meta so ingestion can upscale. *)
  stale_fraction : float;
      (** Fraction of users still running the previous version. *)
  noise : float;
      (** Relative per-key multiplicative jitter, e.g. 0.1 = +-10%. *)
  fleet_seed : int;
}

val default : config
(** 100 users, full sampling, no staleness, 10% noise, seed 7. *)

val generate :
  config ->
  oracle:Cmo_profile.Db.t ->
  current_fp:string ->
  ?stale:Cmo_profile.Db.t * string ->
  unit ->
  Cmo_profile.Ingest.shard list
(** One shard per user.  [stale] is the previous version's oracle and
    fingerprint; without it every user is current regardless of
    [stale_fraction]. *)

val poison :
  factor:float -> Cmo_profile.Ingest.shard -> Cmo_profile.Ingest.shard
(** An adversarial copy claiming the cold half of the program runs at
    [factor x] the shard's real hottest count — the inverted, inflated
    profile a hostile or broken client uploads to promote cold code
    into the hot set.  Ingestion's clamp is what keeps it from
    dominating. *)
