module Prng = Cmo_support.Prng

type config = {
  name : string;
  seed : int;
  modules : int;
  hot_modules : int;
  funcs_per_module : int * int;
  hot_weight : int;
  main_iters : int;
  leaf_iters : int * int;
  tiny_leaf_percent : int;
}

(* Small programs whose shape still varies with the seed — the
   differential-fuzz configuration (shared by the qcheck suites and
   the campaign driver, so a printed seed reproduces either way). *)
let fuzz_config ?(name = "fuzz") seed =
  {
    name;
    seed;
    modules = 4 + (seed mod 5);
    hot_modules = 1 + (seed mod 2);
    funcs_per_module = (3, 7);
    hot_weight = 80 + (seed mod 15);
    main_iters = 120;
    leaf_iters = (3, 8);
    tiny_leaf_percent = 20 + (seed mod 40);
  }

let scale c f =
  let modules = max 2 (int_of_float (Float.round (float_of_int c.modules *. f))) in
  let hot_modules =
    max 1
      (int_of_float
         (Float.round (float_of_int c.hot_modules *. float_of_int modules
                       /. float_of_int c.modules)))
  in
  { c with modules; hot_modules = min hot_modules modules }

let module_name i = Printf.sprintf "m%03d" i

let entry_name i = Printf.sprintf "m%03d_f0" i

let func_name i j = Printf.sprintf "m%03d_f%d" i j

let state_name i = Printf.sprintf "state_m%03d" i

(* --- function body generators ------------------------------------- *)

type kind = Entry | Tiny | Loop | Rec | Comb

type ctx = {
  mutable rng : Prng.t;
  cfg : config;
  buf : Buffer.t;
  mutable kinds : kind array;  (* current module's function plan *)
  mutable cur_module : int;
}

let line ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf s; Buffer.add_char ctx.buf '\n') fmt

let is_hot cfg i = i < cfg.hot_modules

(* Cross-module calls are layered: each temperature region is split
   into four bands and a module only calls entries in the next band.
   This keeps the graph acyclic AND bounds the dynamic call-tree
   depth at four cross-module hops regardless of program size — per-
   iteration work must not grow with the module count, or scaling the
   program (Figure 4) would also scale its run time. *)
let bands = 4

let region_of cfg i =
  if is_hot cfg i then (0, cfg.hot_modules) else (cfg.hot_modules, cfg.modules - cfg.hot_modules)

let callee_module ctx i =
  let cfg = ctx.cfg in
  let start, size = region_of cfg i in
  let pos = i - start in
  let band = bands * pos / max 1 size in
  if band >= bands - 1 then None
  else begin
    let lo = start + (size * (band + 1) / bands) in
    let hi = start + (size * (band + 2) / bands) - 1 in
    let lo = max lo (i + 1) in
    if lo > hi then None else Some (Prng.int_in ctx.rng lo hi)
  end

(* A leaf (non-calling) helper of the current module with index > j,
   if any; used for hot call loops, which must not amplify through
   further calls. *)
let leaf_after ctx j =
  let tiny = ref [] in
  let loops = ref [] in
  Array.iteri
    (fun idx k ->
      match k with
      | Tiny when idx > j -> tiny := idx :: !tiny
      | Loop when idx > j -> loops := idx :: !loops
      | Tiny | Loop | Entry | Rec | Comb -> ())
    ctx.kinds;
  (* Prefer tiny leaves: a call whose callee does almost no work is
     pure call overhead, the inliner's best case. *)
  match (!tiny, !loops) with
  | [], [] -> None
  | (_ :: _ as l), _ | [], l ->
    Some (func_name ctx.cur_module (Prng.choose ctx.rng (Array.of_list l)))

(* Non-entry helpers are [static] about a third of the time: they get
   Local linkage, making them fair game for interprocedural constant
   propagation and dead-static removal once the inliner swallows their
   bodies. *)
let func_kw ctx = if Prng.chance ctx.rng 0.35 then "static func" else "func"

let tiny_leaf ctx i j =
  let a = Prng.choose ctx.rng [| 2; 3; 5; 7; 8; 9; 11 |] in
  let b = Prng.int_in ctx.rng 1 63 in
  line ctx "%s %s(x, seed) {" (func_kw ctx) (func_name i j);
  if Prng.chance ctx.rng 0.3 then
    (* Constant-index read of the static table: IPA folds this. *)
    line ctx "  return (x * %d + seed + tbl[%d]) & 65535;" a
      (Prng.int_in ctx.rng 0 15)
  else line ctx "  return (x * %d + seed + %d) & 65535;" a b;
  line ctx "}"

let loop_leaf ctx i j =
  let lo, hi = ctx.cfg.leaf_iters in
  let iters = Prng.int_in ctx.rng lo hi in
  let mult = Prng.choose ctx.rng [| 2; 3; 4; 5; 7; 8 |] in
  let use_for = Prng.chance ctx.rng 0.5 in
  line ctx "%s %s(x, seed) {" (func_kw ctx) (func_name i j);
  line ctx "  var acc = seed & 1048575;";
  if use_for then line ctx "  for (var k = 0; k < %d; k = k + 1) {" iters
  else begin
    line ctx "  var k = 0;";
    line ctx "  while (k < %d) {" iters
  end;
  line ctx "    acc = (acc + tbl[k & 15] * (x + k) * %d) & 1048575;" mult;
  (* A heavily biased branch: taken 7 of 8 iterations. *)
  line ctx "    if ((k & 7) != 7) { acc = acc + 1; } else { acc = (acc * 3) & 1048575; }";
  if not use_for then line ctx "    k = k + 1;";
  line ctx "  }";
  line ctx "  return acc;";
  line ctx "}"

(* Depth is bounded by masking the control argument, so the deepest
   chain is ~64 frames regardless of caller values. *)
let rec_leaf ctx i j =
  line ctx "%s %s(x, seed) {" (func_kw ctx) (func_name i j);
  line ctx "  var m = x & 127;";
  line ctx "  if (m <= 1) { return seed & 65535; }";
  line ctx "  return (%s(m - 2, seed + m) + m) & 65535;" (func_name i j);
  line ctx "}"

(* Helper call targets available to function j of module i: own
   helpers with a larger index, or the entry of a later same-
   temperature module. *)
let pick_callee ctx i j nfuncs =
  let local =
    if j + 1 <= nfuncs - 1 then Some (func_name i (Prng.int_in ctx.rng (j + 1) (nfuncs - 1)))
    else None
  in
  let remote = Option.map entry_name (callee_module ctx i) in
  match (local, remote) with
  | Some l, Some r -> Some (if Prng.chance ctx.rng 0.55 then l else r)
  | Some l, None -> Some l
  | None, Some r -> Some r
  | None, None -> None

let combinator ctx i j nfuncs =
  line ctx "%s %s(x, seed) {" (func_kw ctx) (func_name i j);
  let c1 = Prng.int_in ctx.rng 0 31 in
  (match pick_callee ctx i j nfuncs with
  | Some callee -> line ctx "  var a = %s((x + %d) & 4095, seed & 65535);" callee c1
  | None -> line ctx "  var a = (x * 17 + seed + %d) & 65535;" c1);
  (* Hot regions are call-dense: combinators drive a *leaf* helper
     from a small loop, concentrating execution and call-site counts
     in the hot code — the structure aggressive inlining feeds on.
     Only leaves go in the loop: a combinator or remote entry here
     would multiply the call-tree fan-out at every level and make
     per-iteration work explode with program size. *)
  (if is_hot ctx.cfg i then
     match leaf_after ctx j with
     | Some callee ->
       let fan = Prng.int_in ctx.rng 4 7 in
       line ctx "  var k = 0;";
       line ctx "  while (k < %d) {" fan;
       line ctx "    a = (a + %s((x + k) & 4095, a & 65535)) & 1048575;" callee;
       line ctx "    k = k + 1;";
       line ctx "  }"
     | None -> ());
  (match pick_callee ctx i j nfuncs with
  | Some callee ->
    (* Sometimes pass a literal constant: cloning / IPA fodder. *)
    if Prng.chance ctx.rng 0.4 then
      line ctx "  var b = %s(a & 255, %d);" callee (Prng.int_in ctx.rng 1 7)
    else line ctx "  var b = %s(a & 255, (seed + %d) & 65535);" callee c1
  | None -> line ctx "  var b = (a * 3 + x) & 65535;");
  (* Biased branch: the else is the rare path. *)
  line ctx "  if ((x & 15) != 15) {";
  line ctx "    a = (a + b) & 1048575;";
  line ctx "  } else {";
  line ctx "    a = (a * b + tbl[x & 15]) & 1048575;";
  line ctx "    %s[(x + a) & 63] = a;" (state_name i);
  line ctx "  }";
  line ctx "  %s[x & 63] = (a + %s[(x + 1) & 63]) & 1048575;" (state_name i) (state_name i);
  line ctx "  return (a + b) & 1048575;";
  line ctx "}"

let entry_func ctx i nfuncs =
  line ctx "func %s(x, seed) {" (entry_name i);
  line ctx "  var acc = (x + seed) & 65535;";
  let ncalls = Prng.int_in ctx.rng 2 3 in
  for k = 1 to ncalls do
    match pick_callee ctx i 0 nfuncs with
    | Some callee ->
      line ctx "  acc = (acc + %s((x + %d) & 4095, acc)) & 1048575;" callee (k * 13)
    | None -> line ctx "  acc = (acc * 29 + %d) & 1048575;" (k * 7)
  done;
  line ctx "  %s[x & 63] = acc;" (state_name i);
  line ctx "  return acc;";
  line ctx "}"

let gen_module ctx i =
  let cfg = ctx.cfg in
  Buffer.clear ctx.buf;
  let lo, hi = cfg.funcs_per_module in
  let nfuncs = Prng.int_in ctx.rng (max 2 lo) (max 2 hi) in
  (* Plan the module's function kinds first so combinators can aim
     their hot call loops at leaves. *)
  let kinds =
    Array.init nfuncs (fun j ->
        if j = 0 then Entry
        else begin
          let tiny = Prng.int ctx.rng 100 < cfg.tiny_leaf_percent in
          let is_last = j = nfuncs - 1 in
          if is_last || tiny then
            if Prng.chance ctx.rng 0.08 then Rec
            else if tiny then Tiny
            else Loop
          else if Prng.chance ctx.rng 0.45 then Comb
          else if Prng.chance ctx.rng 0.5 then Loop
          else Tiny
        end)
  in
  ctx.kinds <- kinds;
  ctx.cur_module <- i;
  line ctx "// synthetic module %s (%s)" (module_name i)
    (if is_hot cfg i then "hot" else "cold");
  (* Constant table: static, never stored, so IPA can fold loads at
     immediate indices. *)
  let consts = List.init 16 (fun k -> string_of_int (3 + (k * k * 7 mod 91))) in
  line ctx "static global tbl[16] = {%s};" (String.concat ", " consts);
  line ctx "global %s[64];" (state_name i);
  entry_func ctx i nfuncs;
  Array.iteri
    (fun j kind ->
      match kind with
      | Entry -> ()
      | Tiny -> tiny_leaf ctx i j
      | Loop -> loop_leaf ctx i j
      | Rec -> rec_leaf ctx i j
      | Comb -> combinator ctx i j nfuncs)
    kinds;
  (module_name i, Buffer.contents ctx.buf)

(* --- main module --------------------------------------------------- *)

let gen_main ctx =
  let cfg = ctx.cfg in
  Buffer.clear ctx.buf;
  line ctx "// dispatcher for %s" cfg.name;
  (* Observability: read a couple of hot state arrays at the end. *)
  line ctx "extern global %s[64];" (state_name 0);
  if cfg.hot_modules > 1 then line ctx "extern global %s[64];" (state_name 1);
  line ctx "func main() {";
  line ctx "  var n = arg(0);";
  line ctx "  if (n <= 0) { n = %d; }" cfg.main_iters;
  line ctx "  var mix = arg(1) & 127;";
  line ctx "  var s = 0;";
  line ctx "  var i = 0;";
  line ctx "  while (i < n) {";
  line ctx "    var r = ((i * 1103515245 + mix * 12345) >> 5) & 127;";
  (* Hot entries split the hot mass zipf-style; cold entries split the
     rest round-robin over the first few cold modules. *)
  let hot_mass = cfg.hot_weight * 128 / 100 in
  let hot_entries = min cfg.hot_modules 4 in
  let cold_entries = min (cfg.modules - cfg.hot_modules) 3 in
  let threshold = ref 0 in
  let remaining = ref hot_mass in
  for k = 0 to hot_entries - 1 do
    let share = if k = hot_entries - 1 then !remaining else (!remaining + 1) / 2 in
    threshold := !threshold + share;
    remaining := !remaining - share;
    let kw = if k = 0 then "if" else "} else if" in
    line ctx "    %s (r < %d) {" kw !threshold;
    line ctx "      s = (s + %s(i & 4095, s & 65535)) & 1048575;" (entry_name k)
  done;
  if cold_entries > 0 then begin
    let cold_mass = 128 - !threshold in
    for k = 0 to cold_entries - 1 do
      let share = cold_mass * (k + 1) / cold_entries + !threshold in
      let mod_idx = cfg.hot_modules + k in
      if k = cold_entries - 1 then line ctx "    } else {"
      else line ctx "    } else if (r < %d) {" share;
      line ctx "      s = (s + %s(i & 63, s & 255)) & 1048575;" (entry_name mod_idx)
    done;
    line ctx "    }"
  end
  else line ctx "    }";
  line ctx "    i = i + 1;";
  line ctx "  }";
  line ctx "  print(s);";
  line ctx "  print(%s[1]);" (state_name 0);
  if cfg.hot_modules > 1 then line ctx "  print(%s[2]);" (state_name 1);
  line ctx "  return s;";
  line ctx "}";
  ("main_mod", Buffer.contents ctx.buf)

(* Each module draws from its own generator, derived from (seed,
   module index): module i's source is a function of the seed and i
   alone, so the program can evolve module-locally (a changed module
   does not perturb its neighbours) — the substrate of the
   stale-profile experiment. *)
let module_rng seed i = Prng.create ((seed * 1_000_003) + (i * 7919) + 17)

let generate_with cfg ~module_seed =
  assert (cfg.modules >= 2);
  assert (cfg.hot_modules >= 1 && cfg.hot_modules <= cfg.modules);
  let ctx =
    { rng = Prng.create cfg.seed; cfg; buf = Buffer.create 4096;
      kinds = [||]; cur_module = 0 }
  in
  let mods =
    List.init cfg.modules (fun i ->
        ctx.rng <- module_rng (module_seed i) i;
        gen_module ctx i)
  in
  ctx.rng <- module_rng cfg.seed (-1);
  let main = gen_main ctx in
  main :: mods

let generate cfg = generate_with cfg ~module_seed:(fun _ -> cfg.seed)

(* --- sharded variant ----------------------------------------------- *)

(* Every cross-module identifier the generator emits embeds an
   [m<3 digits>] module tag (module names, entries, helpers, state
   arrays), so prefixing exactly those occurrences renames a whole
   copy of the program into a fresh namespace.  [static] names are
   module-mangled by the frontend and need no care. *)
let shard_text k text =
  let prefix = Printf.sprintf "s%d" k in
  let is_digit c = c >= '0' && c <= '9' in
  let n = String.length text in
  let buf = Buffer.create (n + 512) in
  for i = 0 to n - 1 do
    if
      text.[i] = 'm'
      && i + 3 < n
      && is_digit text.[i + 1]
      && is_digit text.[i + 2]
      && is_digit text.[i + 3]
      && not (i + 4 < n && is_digit text.[i + 4])
    then Buffer.add_string buf prefix;
    Buffer.add_char buf text.[i]
  done;
  Buffer.contents buf

let replace_once ~sub ~by s =
  let ls = String.length sub and l = String.length s in
  let rec go i =
    if i + ls > l then s
    else if String.sub s i ls = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + ls) (l - i - ls)
    else go (i + 1)
  in
  go 0

let sharded cfg ~shards =
  assert (shards >= 1);
  let base = generate cfg in
  let shard k =
    List.map
      (fun (name, text) ->
        let text = shard_text k text in
        if String.equal name "main_mod" then
          ( Printf.sprintf "s%d_main_mod" k,
            replace_once ~sub:"func main()"
              ~by:(Printf.sprintf "func s%d_main()" k)
              text )
        else (shard_text k name, text))
      base
  in
  let driver =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "// sharded driver\n";
    Buffer.add_string buf "func main() {\n";
    Buffer.add_string buf "  var s = 0;\n";
    for k = 0 to shards - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  s = (s + s%d_main()) & 1048575;\n" k)
    done;
    Buffer.add_string buf "  print(s);\n  return s;\n}\n";
    ("main_mod", Buffer.contents buf)
  in
  driver :: List.concat (List.init shards shard)

let evolve cfg ~changed ~evolution =
  generate_with cfg
    ~module_seed:(fun i ->
      if List.mem i changed then cfg.seed + ((evolution + 1) * 7_654_321)
      else cfg.seed)

(* --- IDE edit storm ------------------------------------------------ *)

(* A development session in fast-forward: each step edits exactly one
   module (the rest byte-identical, like [evolve]), edits concentrate
   on a small drifting working set (the files being worked on), and
   about a quarter of the steps are undos back to the module's
   previous content — which is what makes a warm artifact cache pay:
   revisited states are cache re-hits, untouched modules always are. *)
let storm cfg ~steps ~seed =
  assert (steps >= 0);
  let g = Prng.create (seed lxor (cfg.seed * 131)) in
  (* Per-module content version: 0 is pristine; [n > 0] matches the
     stream [evolve] would use at evolution [n - 1]. *)
  let version = Array.make cfg.modules 0 in
  let previous = Array.make cfg.modules 0 in
  let next_version = Array.make cfg.modules 1 in
  let state () =
    generate_with cfg ~module_seed:(fun i ->
        if version.(i) = 0 then cfg.seed
        else cfg.seed + (version.(i) * 7_654_321))
  in
  let ws_size = max 1 (min 3 (cfg.modules / 2)) in
  let ws_base = ref 0 in
  let states = Array.make (steps + 1) [] in
  states.(0) <- state ();
  for k = 1 to steps do
    (* The working set drifts every few edits, like attention does. *)
    if k mod 8 = 0 then ws_base := (!ws_base + 1) mod cfg.modules;
    let m = (!ws_base + Prng.int g ws_size) mod cfg.modules in
    let undo = Prng.int g 100 < 25 && version.(m) <> previous.(m) in
    if undo then begin
      let v = version.(m) in
      version.(m) <- previous.(m);
      previous.(m) <- v
    end
    else begin
      previous.(m) <- version.(m);
      version.(m) <- next_version.(m);
      next_version.(m) <- next_version.(m) + 1
    end;
    states.(k) <- state ()
  done;
  states

let source_lines sources =
  List.fold_left
    (fun acc (_, text) ->
      acc + List.length (String.split_on_char '\n' text))
    0 sources

let training_input cfg =
  [| Int64.of_int (max 50 (cfg.main_iters / 5)); 17L |]

let reference_input cfg = [| Int64.of_int cfg.main_iters; 23L |]
