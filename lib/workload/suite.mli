(** The benchmark suite: personalities standing in for the paper's
    evaluation programs.

    Eight SPECint95-flavoured personalities and three MCAD-flavoured
    ISV application personalities (Figure 1's x-axis).  The absolute
    sizes are scaled down from the paper's (which ranged from ~10K to
    9M source lines) to keep the harness runnable in minutes; the
    *relative* proportions are preserved: the MCAD personalities are
    one to two orders of magnitude larger than the SPEC ones, with a
    small hot region inside a large cold mass, while SPEC personalities
    concentrate execution in a handful of modules. *)

val spec : (string * Genprog.config) list
(** go, m88ksim, gcc, compress, li, ijpeg, perl, vortex. *)

val mcad : (string * Genprog.config) list
(** mcad1, mcad2, mcad3. *)

val all : (string * Genprog.config) list
(** [spec @ mcad], Figure 1 order. *)

val storm : Genprog.config
(** The build-server edit-storm personality (li-shaped but smaller);
    deliberately not in {!all} — the figure experiments iterate
    {!all}, and storm is a load profile, not a data point. *)

val find : string -> Genprog.config
(** Resolves every {!all} name plus ["storm"].
    @raise Not_found for an unknown benchmark name. *)
