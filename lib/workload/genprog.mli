(** Synthetic MiniC program generator.

    Stands in for the paper's SPECint95 sources and the Mcad1/2/3
    ISV applications (multi-million-line proprietary code we cannot
    ship).  The experiments don't need those exact programs — they
    need programs with the properties the paper's techniques exploit,
    which the generator produces by construction:

    - many separately-compiled modules with cross-module call chains
      (module [i]'s routines call into modules [j > i], so the call
      graph is acyclic across modules, plus a sprinkling of genuine
      recursion inside modules);
    - a dispatcher [main] whose iteration mix makes a small set of
      "hot" modules carry almost all execution (configurable split),
      giving the skewed call-site profile selectivity relies on;
    - inline fodder (tiny arithmetic leaves called from hot loops),
      constant arguments at hot sites (cloning/IPA fodder), [static]
      constant tables (interprocedural constant propagation fodder),
      and biased branches (block-positioning fodder);
    - module-private state arrays and cross-module [extern] globals.

    Everything is deterministic in [seed].  All array indices are
    masked with power-of-two sizes, so generated programs never trap;
    [main] reads [arg 0] (iteration count) and [arg 1] (path-mix
    perturbation), which is how training and reference data sets
    differ. *)

type config = {
  name : string;
  seed : int;
  modules : int;  (** Excluding the main module. *)
  hot_modules : int;  (** Leading modules forming the hot region. *)
  funcs_per_module : int * int;  (** Inclusive range. *)
  hot_weight : int;
      (** Percent of dispatcher iterations entering hot modules. *)
  main_iters : int;  (** Default dispatcher trip count. *)
  leaf_iters : int * int;  (** Work-loop range inside loop leaves. *)
  tiny_leaf_percent : int;  (** Chance a leaf is an inline candidate. *)
}

val generate : config -> (string * string) list
(** [(module name, MiniC source)] pairs, main module first.  Each
    module's source is a function of [(seed, module index)] alone, so
    programs can evolve module-locally. *)

val sharded : config -> shards:int -> (string * string) list
(** [shards] renamed copies of [generate cfg] side by side, plus a
    driver [main_mod] whose [main] calls each copy's renamed
    (exported) dispatcher [s<k>_main].  The copies share no function
    or global names, so with the driver kept out of the CMO set
    (e.g. [cmo_modules] = every module but ["main_mod"]) the link
    step sees [shards] independent invalidation components — the
    workload for the parallel-CMO benchmark and determinism tests.
    Shard-local structure is byte-for-byte that of [generate cfg]
    modulo the renaming. *)

val evolve : config -> changed:int list -> evolution:int -> (string * string) list
(** The same program after "development": the modules whose indices
    are listed in [changed] are regenerated from a different stream
    (same entry-point interface, different bodies and call sites),
    everything else byte-identical.  [evolution] distinguishes
    successive rounds of change.  Used to study stale-profile decay
    (paper section 6.2). *)

val storm : config -> steps:int -> seed:int -> (string * string) list array
(** An IDE editing session in fast-forward: [steps + 1] full program
    states, state 0 pristine ([generate cfg]), each later state one
    single-module edit away from its predecessor.  Edits concentrate
    on a small drifting working set, and about a quarter of the steps
    undo a module back to its previous content — so a warm artifact
    cache sees re-hits on revisited states and hits on every
    untouched module.  Deterministic in [(cfg, steps, seed)]; each
    state is a valid input for {!generate}-consumers (main module
    first, same interfaces). *)

val source_lines : (string * string) list -> int
(** Total newline-counted source lines. *)

val training_input : config -> int64 array
(** Smaller trip count, training path mix. *)

val reference_input : config -> int64 array
(** Full trip count, a (configurably) different path mix. *)

val fuzz_config : ?name:string -> int -> config
(** A small (4-8 module) configuration whose module count, hot split
    and leaf mix still vary with the seed — the shape the
    differential-fuzz suites and the campaign driver compile, so a
    printed seed reproduces the same program in either harness. *)

val scale : config -> float -> config
(** [scale c f] multiplies the module count by [f] (at least 1
    module), keeping proportions — used for the memory-growth sweeps
    of Figure 4. *)
