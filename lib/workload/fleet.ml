module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Prng = Cmo_support.Prng

type config = {
  users : int;
  sample_rate : float;
  stale_fraction : float;
  noise : float;
  fleet_seed : int;
}

let default =
  {
    users = 100;
    sample_rate = 1.0;
    stale_fraction = 0.0;
    noise = 0.1;
    fleet_seed = 7;
  }

(* One user's draw from the oracle: every true count [c] becomes a
   binomial-ish sample with mean [c x activity x sample_rate],
   realized by stochastic rounding, then jittered.  Zero draws are
   dropped entirely — a sampled profile is sparse, and ingestion must
   cope with keys that most shards never saw. *)
let user_shard cfg prng ~oracle ~fp ~age =
  let db = Db.create () in
  (* How much this user actually ran the program: fleet activity is
     heavy-tailed, some users barely launch it. *)
  let activity = 0.25 +. Prng.float prng 1.5 in
  List.iter
    (fun (key, count) ->
      let expected = count *. activity *. cfg.sample_rate in
      let whole = floor expected in
      let sampled =
        whole +. (if Prng.chance prng (expected -. whole) then 1.0 else 0.0)
      in
      if sampled > 0.0 then begin
        let jitter = 1.0 +. (cfg.noise *. ((2.0 *. Prng.float prng 1.0) -. 1.0)) in
        let v = sampled *. Float.max 0.0 jitter in
        if v > 0.0 then Db.add db key v
      end)
    (Db.entries oracle);
  {
    Ingest.meta =
      { Ingest.source_fp = fp; sample_rate = cfg.sample_rate; weight = 1.0; age };
    db;
  }

let generate cfg ~oracle ~current_fp ?stale () =
  List.init cfg.users (fun u ->
      let prng = Prng.create (cfg.fleet_seed + (u * 1_000_003)) in
      let is_stale = Prng.chance prng cfg.stale_fraction in
      match (is_stale, stale) with
      | true, Some (stale_oracle, stale_fp) ->
        user_shard cfg prng ~oracle:stale_oracle ~fp:stale_fp ~age:1
      | _ -> user_shard cfg prng ~oracle ~fp:current_fp ~age:0)

(* Rank-swap blend: sort the oracle's keys by count (ties by key),
   pair rank i with rank n-1-i, and move each count [fraction] of the
   way toward its partner's.  fraction 0 is a plain copy (so two arms
   generated from the same seed are byte-identical), fraction 1 swaps
   the hottest and coldest keys outright — a planted, tunable hot-set
   flip for the canary machinery to detect. *)
let divert ~fraction oracle =
  if fraction <= 0.0 then Db.copy oracle
  else begin
    let f = Float.min 1.0 fraction in
    let ranked =
      List.sort
        (fun (k1, c1) (k2, c2) ->
          match compare c2 c1 with 0 -> compare k1 k2 | c -> c)
        (Db.entries oracle)
    in
    let arr = Array.of_list ranked in
    let n = Array.length arr in
    let db = Db.create () in
    Array.iteri
      (fun i (key, count) ->
        let _, partner = arr.(n - 1 - i) in
        let v = ((1.0 -. f) *. count) +. (f *. partner) in
        if v > 0.0 then Db.add db key v)
      arr;
    db
  end

(* The two arms of a canary experiment: A draws from the oracle as-is,
   B from a diverted oracle.  Both arms run the same users (same
   seed), so divergence 0 makes the arms byte-identical shard for
   shard — the no-flip baseline costs nothing to assert. *)
let ab_arms cfg ~oracle ~current_fp ~divergence =
  let arm_a = generate cfg ~oracle ~current_fp () in
  let arm_b =
    if divergence <= 0.0 then arm_a
    else
      generate cfg ~oracle:(divert ~fraction:divergence oracle) ~current_fp ()
  in
  (arm_a, arm_b)

(* A uniformly scaled copy of an honest shard would keep the same
   relative hotness and change nothing; the actual attack inverts it:
   claim the *cold* half of the program runs at [factor x] the real
   hottest count, promoting the attacker's code into the hot set. *)
let poison ~factor (s : Ingest.shard) =
  let entries = Db.entries s.Ingest.db in
  let top = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let counts = List.sort compare (List.map snd entries) in
  let med = List.nth counts (List.length counts / 2) in
  let db = Db.create () in
  List.iter
    (fun (k, v) -> if v <= med then Db.add db k (factor *. top))
    entries;
  { s with Ingest.db }
