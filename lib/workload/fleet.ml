module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Prng = Cmo_support.Prng

type config = {
  users : int;
  sample_rate : float;
  stale_fraction : float;
  noise : float;
  fleet_seed : int;
}

let default =
  {
    users = 100;
    sample_rate = 1.0;
    stale_fraction = 0.0;
    noise = 0.1;
    fleet_seed = 7;
  }

(* One user's draw from the oracle: every true count [c] becomes a
   binomial-ish sample with mean [c x activity x sample_rate],
   realized by stochastic rounding, then jittered.  Zero draws are
   dropped entirely — a sampled profile is sparse, and ingestion must
   cope with keys that most shards never saw. *)
let user_shard cfg prng ~oracle ~fp ~age =
  let db = Db.create () in
  (* How much this user actually ran the program: fleet activity is
     heavy-tailed, some users barely launch it. *)
  let activity = 0.25 +. Prng.float prng 1.5 in
  List.iter
    (fun (key, count) ->
      let expected = count *. activity *. cfg.sample_rate in
      let whole = floor expected in
      let sampled =
        whole +. (if Prng.chance prng (expected -. whole) then 1.0 else 0.0)
      in
      if sampled > 0.0 then begin
        let jitter = 1.0 +. (cfg.noise *. ((2.0 *. Prng.float prng 1.0) -. 1.0)) in
        let v = sampled *. Float.max 0.0 jitter in
        if v > 0.0 then Db.add db key v
      end)
    (Db.entries oracle);
  {
    Ingest.meta =
      { Ingest.source_fp = fp; sample_rate = cfg.sample_rate; weight = 1.0; age };
    db;
  }

let generate cfg ~oracle ~current_fp ?stale () =
  List.init cfg.users (fun u ->
      let prng = Prng.create (cfg.fleet_seed + (u * 1_000_003)) in
      let is_stale = Prng.chance prng cfg.stale_fraction in
      match (is_stale, stale) with
      | true, Some (stale_oracle, stale_fp) ->
        user_shard cfg prng ~oracle:stale_oracle ~fp:stale_fp ~age:1
      | _ -> user_shard cfg prng ~oracle ~fp:current_fp ~age:0)

(* A uniformly scaled copy of an honest shard would keep the same
   relative hotness and change nothing; the actual attack inverts it:
   claim the *cold* half of the program runs at [factor x] the real
   hottest count, promoting the attacker's code into the hot set. *)
let poison ~factor (s : Ingest.shard) =
  let entries = Db.entries s.Ingest.db in
  let top = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let counts = List.sort compare (List.map snd entries) in
  let med = List.nth counts (List.length counts / 2) in
  let db = Db.create () in
  List.iter
    (fun (k, v) -> if v <= med then Db.add db k (factor *. top))
    entries;
  { s with Ingest.db }
