module Loader = Cmo_naim.Loader
module Func = Cmo_il.Func
module Fingerprint = Cmo_support.Fingerprint
module Store = Cmo_cache.Store
module Funcodec = Cmo_cache.Funcodec
module W = Cmo_support.Codec.Writer
module R = Cmo_support.Codec.Reader

(* The phase tier is accessed through closures rather than a store
   handle: the sequential pipeline passes the store's own find/add,
   parallel component workers pass their transaction's logged
   operations. *)
type phase_cache = {
  pc_find : string -> string option;
  pc_add : string -> string -> unit;
}

let store_phase_cache store =
  { pc_find = Store.find store; pc_add = Store.add store }

type options = {
  clone : Clone.config option;
  inline : Inline.config option;
  ipa : bool;
  hot_filter : (string -> bool) option;
  rewrite_limit : int option;
  phase_cache : phase_cache option;
  check : (phase:string -> Func.t -> unit) option;
}

let o2_options =
  {
    clone = None;
    inline = None;
    ipa = false;
    hot_filter = None;
    rewrite_limit = None;
    phase_cache = None;
    check = None;
  }

let o4_options ~profile =
  {
    clone = (if profile then Some Clone.default_config else None);
    inline =
      Some (if profile then Inline.default_config else Inline.aggressive_no_profile);
    ipa = true;
    hot_filter = None;
    rewrite_limit = None;
    phase_cache = None;
    check = None;
  }

(* The phase pipeline is purely intraprocedural, so its result is a
   function of the routine body alone: cache it content-addressed.
   The envelope also records the rewrite count so reports stay
   identical between cached and uncached builds.  Disabled under a
   rewrite limit, whose budget is shared across routines. *)
let phase_version = "fn1"

let optimize_func_cached pc ~mem ~budget ?check (f : Func.t) =
  let before = Funcodec.encode f in
  let key = Fingerprint.of_strings [ phase_version; before ] in
  let hit =
    match pc.pc_find key with
    | None -> None
    | Some entry -> (
      match
        let r = R.of_string entry in
        let n = R.uvarint r in
        (n, Funcodec.decode (R.string r))
      with
      | n, g when g.Func.name = f.Func.name && g.Func.arity = f.Func.arity ->
        Some (n, g)
      | _ -> None
      | exception R.Corrupt _ -> None)
  in
  match hit with
  | Some (n, g) ->
    Funcodec.overwrite ~dst:f g;
    (* Cached bodies were verified when first produced, but the cache
       itself is now part of the trusted path: re-check the decode. *)
    (match check with
    | Some run_check -> run_check ~phase:"phase-cache" f
    | None -> ());
    n
  | None ->
    let n = Phase.optimize_func ~mem ~budget ?check f in
    let w = W.create () in
    W.uvarint w n;
    W.string w (Funcodec.encode f);
    pc.pc_add key (W.contents w);
    n

type report = {
  clones : int;
  inline_stats : Inline.stats option;
  ipa_stats : Ipa.stats option;
  funcs_optimized : int;
  funcs_skipped : int;
  rewrites : int;
}

(* Component reports fold into one program report: counters add,
   dead-function lists concatenate in merge (= component) order. *)
let merge_reports a b =
  let opt2 f = function
    | Some x, Some y -> Some (f x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  {
    clones = a.clones + b.clones;
    inline_stats =
      opt2
        (fun (x : Inline.stats) (y : Inline.stats) ->
          {
            Inline.operations = x.Inline.operations + y.Inline.operations;
            cross_module = x.Inline.cross_module + y.Inline.cross_module;
            bytes_grown = x.Inline.bytes_grown + y.Inline.bytes_grown;
            rejected_too_big =
              x.Inline.rejected_too_big + y.Inline.rejected_too_big;
            rejected_cold = x.Inline.rejected_cold + y.Inline.rejected_cold;
            rejected_recursive =
              x.Inline.rejected_recursive + y.Inline.rejected_recursive;
            rejected_caller_full =
              x.Inline.rejected_caller_full + y.Inline.rejected_caller_full;
          })
        (a.inline_stats, b.inline_stats);
    ipa_stats =
      opt2
        (fun (x : Ipa.stats) (y : Ipa.stats) ->
          {
            Ipa.const_params = x.Ipa.const_params + y.Ipa.const_params;
            const_global_loads =
              x.Ipa.const_global_loads + y.Ipa.const_global_loads;
            dead_functions = x.Ipa.dead_functions @ y.Ipa.dead_functions;
          })
        (a.ipa_stats, b.ipa_stats);
    funcs_optimized = a.funcs_optimized + b.funcs_optimized;
    funcs_skipped = a.funcs_skipped + b.funcs_skipped;
    rewrites = a.rewrites + b.rewrites;
  }

let run loader cg ?(ipa_context = Ipa.whole_program) options =
  (* With [check] on, sweep the whole loader after each
     interprocedural stage: these stages mint registers, labels and
     call sites (clone/inline) and delete functions (IPA), exactly
     the invariants the verifier polices. *)
  let sweep phase =
    match options.check with
    | None -> ()
    | Some run_check ->
      List.iter
        (fun fname ->
          Loader.with_func loader fname (fun f -> run_check ~phase f))
        (Loader.func_names loader)
  in
  let clones =
    match options.clone with
    | Some config ->
      Cmo_obs.Obs.with_span ~cat:"hlo" "clone" (fun () ->
          Clone.run loader cg config)
    | None -> 0
  in
  if options.clone <> None then sweep "clone";
  let inline_stats =
    Option.map
      (fun config ->
        Cmo_obs.Obs.with_span ~cat:"hlo" "inline" (fun () ->
            Inline.run loader cg config))
      options.inline
  in
  if options.inline <> None then sweep "inline";
  let ipa_stats =
    if options.ipa then
      Some
        (Cmo_obs.Obs.with_span ~cat:"hlo" "ipa" (fun () ->
             Ipa.run loader ipa_context))
    else None
  in
  if options.ipa then sweep "ipa";
  if Cmo_obs.Obs.enabled () then begin
    if clones > 0 then Cmo_obs.Obs.tick "hlo" "clones" clones;
    (match inline_stats with
    | Some (s : Inline.stats) ->
      Cmo_obs.Obs.tick "hlo" "inline_operations" s.Inline.operations;
      Cmo_obs.Obs.tick "hlo" "inline_cross_module" s.Inline.cross_module
    | None -> ());
    match ipa_stats with
    | Some (s : Ipa.stats) ->
      Cmo_obs.Obs.tick "hlo" "ipa_const_params" s.Ipa.const_params;
      Cmo_obs.Obs.tick "hlo" "ipa_dead_functions"
        (List.length s.Ipa.dead_functions)
    | None -> ()
  end;
  let budget =
    match options.rewrite_limit with
    | Some n -> Phase.limited n
    | None -> Phase.unlimited ()
  in
  let mem = Loader.memstats loader in
  let funcs_optimized = ref 0 in
  let funcs_skipped = ref 0 in
  let rewrites = ref 0 in
  List.iter
    (fun fname ->
      let hot =
        match options.hot_filter with Some f -> f fname | None -> true
      in
      if hot then begin
        incr funcs_optimized;
        Loader.with_func loader fname (fun f ->
            let n =
              match (options.phase_cache, options.rewrite_limit) with
              | Some pc, None ->
                optimize_func_cached pc ~mem ~budget ?check:options.check f
              | _ -> Phase.optimize_func ~mem ~budget ?check:options.check f
            in
            rewrites := !rewrites + n;
            Loader.update loader f)
      end
      else incr funcs_skipped)
    (Loader.func_names loader);
  Loader.unload_all loader;
  {
    clones;
    inline_stats;
    ipa_stats;
    funcs_optimized = !funcs_optimized;
    funcs_skipped = !funcs_skipped;
    rewrites = !rewrites;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>clones %d; funcs optimized %d, skipped %d; rewrites %d" r.clones
    r.funcs_optimized r.funcs_skipped r.rewrites;
  (match r.inline_stats with
  | Some s ->
    Format.fprintf ppf "@,inlines %d (%d cross-module), grew %d bytes"
      s.Inline.operations s.Inline.cross_module s.Inline.bytes_grown;
    Format.fprintf ppf
      "@,sites not inlined: %d too big, %d cold, %d recursive, %d caller-full"
      s.Inline.rejected_too_big s.Inline.rejected_cold
      s.Inline.rejected_recursive s.Inline.rejected_caller_full
  | None -> ());
  (match r.ipa_stats with
  | Some s ->
    Format.fprintf ppf "@,ipa: %d const params, %d const loads, %d dead funcs"
      s.Ipa.const_params s.Ipa.const_global_loads
      (List.length s.Ipa.dead_functions)
  | None -> ());
  Format.fprintf ppf "@]"
