module Loader = Cmo_naim.Loader
module Func = Cmo_il.Func
module Fingerprint = Cmo_support.Fingerprint
module Store = Cmo_cache.Store
module Funcodec = Cmo_cache.Funcodec
module W = Cmo_support.Codec.Writer
module R = Cmo_support.Codec.Reader

type options = {
  clone : Clone.config option;
  inline : Inline.config option;
  ipa : bool;
  hot_filter : (string -> bool) option;
  rewrite_limit : int option;
  phase_cache : Store.t option;
}

let o2_options =
  {
    clone = None;
    inline = None;
    ipa = false;
    hot_filter = None;
    rewrite_limit = None;
    phase_cache = None;
  }

let o4_options ~profile =
  {
    clone = (if profile then Some Clone.default_config else None);
    inline =
      Some (if profile then Inline.default_config else Inline.aggressive_no_profile);
    ipa = true;
    hot_filter = None;
    rewrite_limit = None;
    phase_cache = None;
  }

(* The phase pipeline is purely intraprocedural, so its result is a
   function of the routine body alone: cache it content-addressed.
   The envelope also records the rewrite count so reports stay
   identical between cached and uncached builds.  Disabled under a
   rewrite limit, whose budget is shared across routines. *)
let phase_version = "fn1"

let optimize_func_cached store ~mem ~budget (f : Func.t) =
  let before = Funcodec.encode f in
  let key = Fingerprint.of_strings [ phase_version; before ] in
  let hit =
    match Store.find store key with
    | None -> None
    | Some entry -> (
      match
        let r = R.of_string entry in
        let n = R.uvarint r in
        (n, Funcodec.decode (R.string r))
      with
      | n, g when g.Func.name = f.Func.name && g.Func.arity = f.Func.arity ->
        Some (n, g)
      | _ -> None
      | exception R.Corrupt _ -> None)
  in
  match hit with
  | Some (n, g) ->
    Funcodec.overwrite ~dst:f g;
    n
  | None ->
    let n = Phase.optimize_func ~mem ~budget f in
    let w = W.create () in
    W.uvarint w n;
    W.string w (Funcodec.encode f);
    Store.add store key (W.contents w);
    n

type report = {
  clones : int;
  inline_stats : Inline.stats option;
  ipa_stats : Ipa.stats option;
  funcs_optimized : int;
  funcs_skipped : int;
  rewrites : int;
}

let run loader cg ?(ipa_context = Ipa.whole_program) options =
  let clones =
    match options.clone with
    | Some config -> Clone.run loader cg config
    | None -> 0
  in
  let inline_stats =
    Option.map (fun config -> Inline.run loader cg config) options.inline
  in
  let ipa_stats =
    if options.ipa then Some (Ipa.run loader ipa_context) else None
  in
  let budget =
    match options.rewrite_limit with
    | Some n -> Phase.limited n
    | None -> Phase.unlimited ()
  in
  let mem = Loader.memstats loader in
  let funcs_optimized = ref 0 in
  let funcs_skipped = ref 0 in
  let rewrites = ref 0 in
  List.iter
    (fun fname ->
      let hot =
        match options.hot_filter with Some f -> f fname | None -> true
      in
      if hot then begin
        incr funcs_optimized;
        Loader.with_func loader fname (fun f ->
            let n =
              match (options.phase_cache, options.rewrite_limit) with
              | Some store, None -> optimize_func_cached store ~mem ~budget f
              | _ -> Phase.optimize_func ~mem ~budget f
            in
            rewrites := !rewrites + n;
            Loader.update loader f)
      end
      else incr funcs_skipped)
    (Loader.func_names loader);
  Loader.unload_all loader;
  {
    clones;
    inline_stats;
    ipa_stats;
    funcs_optimized = !funcs_optimized;
    funcs_skipped = !funcs_skipped;
    rewrites = !rewrites;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>clones %d; funcs optimized %d, skipped %d; rewrites %d" r.clones
    r.funcs_optimized r.funcs_skipped r.rewrites;
  (match r.inline_stats with
  | Some s ->
    Format.fprintf ppf "@,inlines %d (%d cross-module), grew %d bytes"
      s.Inline.operations s.Inline.cross_module s.Inline.bytes_grown;
    Format.fprintf ppf
      "@,sites not inlined: %d too big, %d cold, %d recursive, %d caller-full"
      s.Inline.rejected_too_big s.Inline.rejected_cold
      s.Inline.rejected_recursive s.Inline.rejected_caller_full
  | None -> ());
  (match r.ipa_stats with
  | Some s ->
    Format.fprintf ppf "@,ipa: %d const params, %d const loads, %d dead funcs"
      s.Ipa.const_params s.Ipa.const_global_loads
      (List.length s.Ipa.dead_functions)
  | None -> ());
  Format.fprintf ppf "@]"
