(** Cross-module inlining — the paper's headline optimization ("its
    main benefit is in enabling profile-based cross-module inlining",
    section 7, citing the companion Aggressive Inlining paper [1]).

    Inlining is plain block grafting in the non-SSA IL: callee blocks
    are spliced into the caller with registers, labels and call-site
    ids renamed; argument binding becomes [Move]s; returns become
    jumps to the split-off continuation block.

    Heuristics:
    - never inline intrinsics, recursive functions (any cycle member),
      or self calls;
    - callees at or below [always_threshold] instructions are inlined
      unconditionally (call overhead dominates);
    - with profile data, a site is inlined when its benefit density —
      dynamic calls per callee instruction — exceeds
      [hot_density_ratio] times the program-average call density
      (scale-free, so training-run length does not matter), it clears
      the [hot_count_threshold] noise floor, and the callee is at most
      [hot_size_limit] instructions; this prefers hot-and-small over
      warm-and-large, pricing the i-cache cost of duplicated code;
    - without profile data (+O4 alone), [cold_size_limit] applies
      everywhere — the thorough-but-expensive mode whose compile-time
      consequences section 5 describes;
    - the caller stops growing at [caller_size_limit] instructions and
      each weakly-connected call-graph component at [program_growth]
      times its initial size.  The growth budget is per component (not
      program-wide) so that re-optimizing a component in isolation
      makes exactly the decisions a full run makes for it — the
      independence the incremental artifact cache relies on; inlining
      never crosses component boundaries, so the cap is equally
      binding.

    Profile annotations are scaled on the way in: inlined block
    frequencies and call counts are multiplied by
    [site count / callee entry count].

    [operation_limit] bounds the number of inline operations performed
    program-wide; the bug-isolation driver (section 6.3) binary
    searches over it to pinpoint a faulty operation. *)

type config = {
  always_threshold : int;
  hot_count_threshold : float;  (** Absolute noise floor. *)
  hot_density_ratio : float;
      (** Required ratio of site call density (calls per callee
          instruction) to the program-average call density. *)
  hot_size_limit : int;
  cold_size_limit : int;
  caller_size_limit : int;
  program_growth : float;
  use_profile : bool;
  operation_limit : int option;
}

val default_config : config
(** Profile-guided defaults: always 12, density ratio 2.0 with a
    floor of 8 calls, hot size 600, cold size 0 (profile mode inlines
    cold sites only below [always_threshold]), caller cap 2400,
    growth 1.8. *)

val aggressive_no_profile : config
(** The +O4-without-profile heuristics: [cold_size_limit] 60 and
    growth 2.5 — thorough, and expensive on big programs, as the paper
    found. *)

type stats = {
  operations : int;  (** Call sites inlined. *)
  cross_module : int;  (** ... of which crossed a module boundary. *)
  bytes_grown : int;  (** Net modeled expanded-byte growth. *)
  rejected_too_big : int;  (** Hot sites whose callee exceeded limits. *)
  rejected_cold : int;  (** Sites below the hotness floor. *)
  rejected_recursive : int;  (** Cycle members and self calls. *)
  rejected_caller_full : int;
      (** Caller at its size cap.  Together, the rejection tallies
          are the paper's section-6.2 "diagnostics on what the
          compiler is optimizing": they tell a performance analyst
          why the inliner left call overhead behind. *)
}

val run :
  Cmo_naim.Loader.t -> Cmo_il.Callgraph.t -> config -> stats
(** Process every function in bottom-up call-graph order, inlining
    qualifying sites (including sites exposed by earlier inlining in
    the same caller, to a fixed point under the size caps).  Functions
    are acquired from and released to the loader one caller at a time;
    candidate callees are acquired grouped by defining module so
    cross-module inlines from the same module pair load the module
    symbol table once (the paper's cache-aware inline scheduling,
    section 4.3).  Call-graph node sizes are updated in place. *)

val inline_call_at :
  caller:Cmo_il.Func.t ->
  site:Cmo_il.Instr.site ->
  callee:Cmo_il.Func.t ->
  bool
(** Low-level single-site inliner (exposed for unit tests and the
    isolation driver): inline [callee] at the unique call site [site]
    of [caller].  Returns [false] when the site does not exist or
    calls a different function than [callee]. *)
