module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Callgraph = Cmo_il.Callgraph
module Size = Cmo_il.Size
module Loader = Cmo_naim.Loader

type config = {
  always_threshold : int;
  hot_count_threshold : float;
  hot_density_ratio : float;
  hot_size_limit : int;
  cold_size_limit : int;
  caller_size_limit : int;
  program_growth : float;
  use_profile : bool;
  operation_limit : int option;
}

let default_config =
  {
    always_threshold = 12;
    hot_count_threshold = 8.0;
    hot_density_ratio = 1.5;
    hot_size_limit = 600;
    cold_size_limit = 0;
    caller_size_limit = 2400;
    program_growth = 1.8;
    use_profile = true;
    operation_limit = None;
  }

let aggressive_no_profile =
  {
    default_config with
    use_profile = false;
    cold_size_limit = 60;
    program_growth = 2.5;
  }

type stats = {
  operations : int;
  cross_module : int;
  bytes_grown : int;
  rejected_too_big : int;
  rejected_cold : int;
  rejected_recursive : int;
  rejected_caller_full : int;
}

(* ---------- mechanics ---------- *)

let find_site (caller : Func.t) site =
  List.find_map
    (fun (b : Func.block) ->
      let rec go idx = function
        | [] -> None
        | Instr.Call c :: _ when c.Instr.site = site -> Some (b, idx, c)
        | _ :: rest -> go (idx + 1) rest
      in
      go 0 b.Func.instrs)
    caller.Func.blocks

let split_at n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let inline_call_at ~(caller : Func.t) ~site ~(callee : Func.t) =
  match find_site caller site with
  | None -> false
  | Some (_, _, c) when c.Instr.callee <> callee.Func.name -> false
  | Some (call_block, idx, c) ->
    let reg_off = caller.Func.next_reg in
    caller.Func.next_reg <- caller.Func.next_reg + callee.Func.next_reg;
    let map_reg r = reg_off + r in
    let map_operand = function
      | Instr.Reg r -> Instr.Reg (map_reg r)
      | Instr.Imm _ as op -> op
    in
    let label_map = Hashtbl.create 8 in
    List.iter
      (fun (b : Func.block) ->
        Hashtbl.replace label_map b.Func.label (Func.new_label caller))
      callee.Func.blocks;
    let map_label l = Hashtbl.find label_map l in
    let post_label = Func.new_label caller in
    (* Profile scaling: the inlined body runs [site count] times; the
       callee's annotations were measured over [entry count] calls. *)
    let entry_freq =
      match Func.find_block_opt callee callee.Func.entry with
      | Some b -> b.Func.freq
      | None -> 0.0
    in
    let scale =
      if c.Instr.call_count > 0.0 && entry_freq > 0.0 then
        c.Instr.call_count /. entry_freq
      else 0.0
    in
    let map_instr i =
      match i with
      | Instr.Move (d, a) -> Instr.Move (map_reg d, map_operand a)
      | Instr.Unop (op, d, a) -> Instr.Unop (op, map_reg d, map_operand a)
      | Instr.Binop (op, d, a, b) ->
        Instr.Binop (op, map_reg d, map_operand a, map_operand b)
      | Instr.Load (d, { Instr.base; index }) ->
        Instr.Load (map_reg d, { Instr.base; index = map_operand index })
      | Instr.Store ({ Instr.base; index }, v) ->
        Instr.Store ({ Instr.base; index = map_operand index }, map_operand v)
      | Instr.Call cc ->
        Instr.Call
          {
            Instr.dst = Option.map map_reg cc.Instr.dst;
            callee = cc.Instr.callee;
            args = List.map map_operand cc.Instr.args;
            site = Func.new_site caller;
            call_count = cc.Instr.call_count *. scale;
          }
      | Instr.Probe _ as p -> p
    in
    let inlined_blocks =
      List.map
        (fun (b : Func.block) ->
          let instrs = List.map map_instr b.Func.instrs in
          let instrs, term =
            match b.Func.term with
            | Instr.Ret v ->
              let ret_moves =
                match (c.Instr.dst, v) with
                | Some d, Some a -> [ Instr.Move (d, map_operand a) ]
                | Some d, None -> [ Instr.Move (d, Instr.Imm 0L) ]
                | None, _ -> []
              in
              (instrs @ ret_moves, Instr.Jmp post_label)
            | Instr.Jmp l -> (instrs, Instr.Jmp (map_label l))
            | Instr.Br { cond; ifso; ifnot } ->
              ( instrs,
                Instr.Br
                  {
                    cond = map_operand cond;
                    ifso = map_label ifso;
                    ifnot = map_label ifnot;
                  } )
          in
          {
            Func.label = map_label b.Func.label;
            instrs;
            term;
            freq = b.Func.freq *. scale;
          })
        callee.Func.blocks
    in
    (* Split the call block: prefix + argument binding, then the
       callee body, then the continuation with the original suffix. *)
    let before, rest = split_at idx call_block.Func.instrs in
    let after =
      match rest with
      | Instr.Call _ :: tail -> tail
      | _ -> assert false
    in
    let arg_moves = List.mapi (fun i a -> Instr.Move (map_reg i, a)) c.Instr.args in
    let post_block =
      {
        Func.label = post_label;
        instrs = after;
        term = call_block.Func.term;
        freq = call_block.Func.freq;
      }
    in
    call_block.Func.instrs <- before @ arg_moves;
    call_block.Func.term <- Instr.Jmp (map_label callee.Func.entry);
    (* Splice in layout order right after the call block. *)
    let rec splice = function
      | [] -> []
      | (b : Func.block) :: rest when b.Func.label = call_block.Func.label ->
        (b :: inlined_blocks) @ (post_block :: rest)
      | b :: rest -> b :: splice rest
    in
    caller.Func.blocks <- splice caller.Func.blocks;
    true

(* ---------- heuristics ---------- *)

type decision = Inline | Too_big | Cold | Recursive | Self | Caller_full

let decide config cg ~avg_density ~caller_name ~caller_size (c : Instr.call) =
  match Callgraph.node cg c.Instr.callee with
  | None -> Recursive  (* intrinsic or unknown: never inline *)
  | Some callee_node ->
    if c.Instr.callee = caller_name then Self
    else if Callgraph.in_cycle cg c.Instr.callee then Recursive
    else begin
      let callee_size = callee_node.Callgraph.instr_count in
      if caller_size + callee_size > config.caller_size_limit then Caller_full
      else if callee_size <= config.always_threshold then Inline
      else if config.use_profile then
        if
          c.Instr.call_count >= config.hot_count_threshold
          && callee_size <= config.hot_size_limit
          && c.Instr.call_count
             >= config.hot_density_ratio *. avg_density *. float_of_int callee_size
        then Inline
        else if c.Instr.call_count > 0.0 then Too_big
        else Cold
      else if callee_size <= config.cold_size_limit then Inline
      else Too_big
    end

(* Weakly-connected call-graph components, by union-find.  Growth is
   budgeted per component rather than program-wide so that inlining a
   component in isolation makes exactly the decisions a full-program
   run makes for it — the independence the incremental artifact cache
   relies on.  (Inlining never crosses a component boundary: an edge
   implies membership in the same weak component.) *)
let weak_components cg =
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when not (String.equal p x) ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | Some _ -> x
    | None ->
      Hashtbl.replace parent x x;
      x
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter (fun n -> ignore (find n.Callgraph.fname)) (Callgraph.nodes cg);
  List.iter
    (fun (e : Callgraph.edge) -> union e.Callgraph.caller e.Callgraph.callee)
    (Callgraph.edges cg);
  find

let run loader cg config =
  let initial_total =
    List.fold_left
      (fun acc n -> acc + n.Callgraph.instr_count)
      0 (Callgraph.nodes cg)
  in
  let component_of = weak_components cg in
  (* Per-component growth budget: initial size and running total. *)
  let budgets = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let root = component_of n.Callgraph.fname in
      let initial, total =
        match Hashtbl.find_opt budgets root with
        | Some b -> b
        | None ->
          let b = (ref 0, ref 0) in
          Hashtbl.replace budgets root b;
          b
      in
      initial := !initial + n.Callgraph.instr_count;
      total := !total + n.Callgraph.instr_count)
    (Callgraph.nodes cg);
  let budget_of fname =
    let initial, total = Hashtbl.find budgets (component_of fname) in
    let max_total =
      int_of_float (config.program_growth *. float_of_int !initial)
    in
    (total, max_total)
  in
  let operations = ref 0 in
  let cross_module = ref 0 in
  let bytes_grown = ref 0 in
  let too_big = ref 0 in
  let cold = ref 0 in
  let recursive = ref 0 in
  let caller_full = ref 0 in
  let limit_reached () =
    match config.operation_limit with
    | Some l -> !operations >= l
    | None -> false
  in
  (* The program-average call density (dynamic calls per IL
     instruction) normalizes the benefit test: a site must be several
     times denser than average to justify duplicating its callee.
     Being a ratio, it is independent of training-run length. *)
  let avg_density =
    Callgraph.total_edge_count cg /. float_of_int (max 1 initial_total)
  in
  let order = Callgraph.bottom_up cg in
  List.iter
    (fun caller_name ->
      if not (limit_reached ()) then begin
        let total, max_total = budget_of caller_name in
        let caller = Loader.acquire loader caller_name in
        let caller_module = Loader.module_of_func loader caller_name in
        let bytes_before = Size.func_expanded_bytes caller in
        let caller_size = ref (Func.instr_count caller) in
        let progress = ref true in
        while !progress && not (limit_reached ()) do
          progress := false;
          (* Candidate sites this round, grouped by callee module so
             that inlines from the same module pair happen
             back-to-back (cache-aware scheduling). *)
          let candidates =
            Func.site_calls caller
            |> List.filter_map (fun (site, c) ->
                   match
                     decide config cg ~avg_density ~caller_name
                       ~caller_size:!caller_size c
                   with
                   | Inline ->
                     let callee_module =
                       match Callgraph.node cg c.Instr.callee with
                       | Some n -> n.Callgraph.module_name
                       | None -> ""
                     in
                     Some (callee_module, site, c.Instr.callee)
                   | Too_big ->
                     incr too_big;
                     None
                   | Cold ->
                     incr cold;
                     None
                   | Recursive | Self ->
                     incr recursive;
                     None
                   | Caller_full ->
                     incr caller_full;
                     None)
            |> List.stable_sort (fun (m1, _, _) (m2, _, _) -> compare m1 m2)
          in
          List.iter
            (fun (callee_module, site, callee_name) ->
              if (not (limit_reached ())) && !total < max_total
                 && !caller_size < config.caller_size_limit
              then begin
                let callee = Loader.acquire loader callee_name in
                let callee_size = Func.instr_count callee in
                let ok = inline_call_at ~caller ~site ~callee in
                Loader.release loader callee_name;
                if ok then begin
                  incr operations;
                  if callee_module <> caller_module then incr cross_module;
                  caller_size := !caller_size + callee_size;
                  total := !total + callee_size;
                  progress := true
                end
              end)
            candidates
        done;
        ignore (Cfg.simplify caller);
        caller_size := Func.instr_count caller;
        (match Callgraph.node cg caller_name with
        | Some n -> n.Callgraph.instr_count <- !caller_size
        | None -> ());
        Loader.update loader caller;
        bytes_grown := !bytes_grown + Size.func_expanded_bytes caller - bytes_before;
        Loader.release loader caller_name
      end)
    order;
  {
    operations = !operations;
    cross_module = !cross_module;
    bytes_grown = !bytes_grown;
    rejected_too_big = !too_big;
    rejected_cold = !cold;
    rejected_recursive = !recursive;
    rejected_caller_full = !caller_full;
  }
