module Func = Cmo_il.Func
module Memstats = Cmo_naim.Memstats

type budget = { mutable remaining : int option; mutable used : int }

let unlimited () = { remaining = None; used = 0 }

let limited n = { remaining = Some n; used = 0 }

let spent b = b.used

(* Consume up to the budget: returns how many of [n] operations are
   allowed; phases are coarse-grained, so a pass that would exceed the
   budget is simply not run (the binary search only needs monotonicity
   in the limit, not exact cutting). *)
let take budget n =
  match budget.remaining with
  | None ->
    budget.used <- budget.used + n;
    n
  | Some r ->
    let granted = min r n in
    budget.remaining <- Some (r - granted);
    budget.used <- budget.used + granted;
    granted

let exhausted budget =
  match budget.remaining with Some 0 -> true | Some _ | None -> false

(* Process-wide count of optimize_func invocations: the phase-work
   meter the incremental-cache tests assert against (a fully
   cache-warm rebuild must not move it).  Atomic: parallel HLO
   workers optimize routines from several domains at once. *)
let processed = Atomic.make 0

let funcs_processed () = Atomic.get processed

(* The scalar pass ladder, named so the verifier hook can say which
   pass broke the IL. *)
let passes : (string * (Func.t -> int)) list =
  [
    ("constprop", Constprop.run);
    ("cfg", fun f -> if Cfg.simplify f then 1 else 0);
    ("unroll", Unroll.run ?max_trip:None ?budget:None);
    ("valnum", Valnum.run);
    ("copyprop", Copyprop.run);
    ("licm", Licm.run);
    ("dce", Dce.run);
    ("cfg2", fun f -> if Cfg.simplify f then 1 else 0);
  ]

let optimize_func ?mem ?(budget = unlimited ()) ?(max_rounds = 4) ?check
    (f : Func.t) =
  Atomic.incr processed;
  (* Per-routine span with the section-6.3 operation count attached at
     close.  [traced] is latched so a begin always meets its end even
     if tracing is switched off mid-routine; with tracing off this is
     one atomic load and no allocation. *)
  let traced = Cmo_obs.Obs.enabled () in
  if traced then Cmo_obs.Obs.span_begin ~cat:"phase" f.Func.name;
  let charge_derived () =
    match mem with
    | None -> fun () -> ()
    | Some mem ->
      (* Model the transient analysis footprint: dominators + liveness
         + loop info for this routine. *)
      let doms = Dominators.compute f in
      let live = Liveness.compute f in
      let loops = Loopinfo.compute f in
      let bytes =
        Dominators.modeled_bytes doms
        + Liveness.modeled_bytes live
        + Loopinfo.modeled_bytes loops
      in
      Memstats.charge mem Memstats.Derived bytes;
      fun () -> Memstats.release mem Memstats.Derived bytes
  in
  let total = ref 0 in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_rounds && not (exhausted budget) do
    incr rounds;
    let release = charge_derived () in
    let apply (name, pass) =
      if exhausted budget then 0
      else begin
        let n = pass f in
        (* The pass already ran; the budget records what it did.  A
           limited budget that goes negative simply stops later
           passes, preserving monotonicity for the binary search. *)
        ignore (take budget n);
        (match check with
        | Some run_check when n > 0 -> run_check ~phase:name f
        | Some _ | None -> ());
        n
      end
    in
    let n = List.fold_left (fun acc pass -> acc + apply pass) 0 passes in
    release ();
    total := !total + n;
    changed := n > 0
  done;
  if traced then
    Cmo_obs.Obs.span_end
      ~args:
        [
          ("rewrites", string_of_int !total);
          ("rounds", string_of_int !rounds);
        ]
      ();
  !total
