(** Profile-driven selectivity (paper section 5).

    Coarse-grained: the user gives a selection percentage; all call
    sites in the program are ordered by call frequency and the top
    percentage retained; the modules containing the callers and
    callees of the retained sites form the CMO set.  Everything else
    is compiled at the default level (with PBO when enabled).

    Fine-grained: within the CMO set, the functions that are callers
    or callees of retained sites are the ones worth full optimization
    effort; the rest are read in once for interprocedural facts and
    then left unloaded ("routines not selected for optimization are
    left unloaded until sent to LLO", section 5).

    Requires modules already annotated by {!Cmo_profile.Correlate}. *)

type t = {
  percent : float;
  selected_sites : (string * Cmo_il.Instr.site) list;
      (** (caller, site), hottest first. *)
  cmo_modules : string list;
      (** Modules to compile in CMO mode, deterministic order. *)
  hot_functions : string list;
      (** Callers and callees of selected sites. *)
  sites_total : int;
  lines_total : int;
  lines_selected : int;  (** Source lines in the CMO modules. *)
}

val select : percent:float -> Cmo_il.Ilmod.t list -> t
(** [percent] in [\[0, 100\]].  Zero-count sites are never selected,
    whatever the percentage: cold code cannot justify CMO effort.
    Ties are broken by (module, function, site) order so selection is
    reproducible (paper section 6.2). *)

val is_hot_function : t -> string -> bool

val cohort_hot_set :
  ?percent:float ->
  label:string ->
  Cmo_profile.Db.t ->
  Cmo_il.Ilmod.t list ->
  Cmo_profile.Cohort.Diff.hot_set
(** The weighted hot set [db] induces on the program: annotate the
    modules, retain the top [percent] (default 20) call sites, and
    attribute each selected site's traffic to its caller/callee
    modules and functions, normalized to shares of the selected
    total.  Clears the annotations before returning, so the modules
    come back count-free.  Deterministic in [(db, modules, percent)]
    — the comparison surface of {!Cmo_profile.Cohort.Diff.diff}. *)

val pp : Format.formatter -> t -> unit
