module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Intrinsics = Cmo_il.Intrinsics

type t = {
  percent : float;
  selected_sites : (string * Instr.site) list;
  cmo_modules : string list;
  hot_functions : string list;
  sites_total : int;
  lines_total : int;
  lines_selected : int;
}

(* Gather every call site with its count and coordinates, hottest
   first, ties broken by (module, function, site) so the order is
   reproducible (paper section 6.2).  Also returns the function ->
   module table the callee attribution needs. *)
let collect_sites modules =
  let sites = ref [] in
  let func_module = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          Hashtbl.replace func_module f.Func.name m.Ilmod.mname;
          List.iter
            (fun (site, (c : Instr.call)) ->
              if not (Intrinsics.is_intrinsic c.Instr.callee) then
                sites :=
                  (c.Instr.call_count, m.Ilmod.mname, f.Func.name, site,
                   c.Instr.callee)
                  :: !sites)
            (Func.site_calls f))
        m.Ilmod.funcs)
    modules;
  let all_sites =
    List.sort
      (fun (c1, m1, f1, s1, _) (c2, m2, f2, s2, _) ->
        match compare c2 c1 with
        | 0 -> compare (m1, f1, s1) (m2, f2, s2)
        | c -> c)
      !sites
  in
  (all_sites, func_module)

let top_sites ~percent all_sites =
  let sites_total = List.length all_sites in
  let keep =
    int_of_float (Float.round (percent /. 100.0 *. float_of_int sites_total))
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | ((count, _, _, _, _) as x) :: rest ->
      if count <= 0.0 then []  (* sorted: the rest are cold too *)
      else x :: take (n - 1) rest
  in
  take keep all_sites

let select ~percent modules =
  assert (percent >= 0.0 && percent <= 100.0);
  let all_sites, func_module = collect_sites modules in
  let sites_total = List.length all_sites in
  let selected = top_sites ~percent all_sites in
  let selected_sites = List.map (fun (_, _, f, s, _) -> (f, s)) selected in
  let hot_set = Hashtbl.create 64 in
  let module_set = Hashtbl.create 16 in
  List.iter
    (fun (_, m, caller, _, callee) ->
      Hashtbl.replace hot_set caller ();
      Hashtbl.replace hot_set callee ();
      Hashtbl.replace module_set m ();
      match Hashtbl.find_opt func_module callee with
      | Some cm -> Hashtbl.replace module_set cm ()
      | None -> ())
    selected;
  let cmo_modules =
    List.filter_map
      (fun (m : Ilmod.t) ->
        if Hashtbl.mem module_set m.Ilmod.mname then Some m.Ilmod.mname
        else None)
      modules
  in
  let hot_functions =
    List.concat_map
      (fun (m : Ilmod.t) ->
        List.filter_map
          (fun (f : Func.t) ->
            if Hashtbl.mem hot_set f.Func.name then Some f.Func.name else None)
          m.Ilmod.funcs)
      modules
  in
  let lines_total =
    List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 modules
  in
  let lines_selected =
    List.fold_left
      (fun acc (m : Ilmod.t) ->
        if Hashtbl.mem module_set m.Ilmod.mname then acc + Ilmod.src_lines m
        else acc)
      0 modules
  in
  {
    percent;
    selected_sites;
    cmo_modules;
    hot_functions;
    sites_total;
    lines_total;
    lines_selected;
  }

let is_hot_function t name = List.mem name t.hot_functions

(* The weighted hot set a profile database induces on a program: what
   the cohort diff engine compares.  Weights are shares of the total
   selected call traffic, attributed to both end points of each
   selected site — that makes a share a meaningful "how much of the
   hot path does this module carry" number, and two cohorts' shares
   directly comparable. *)
let cohort_hot_set ?(percent = 20.0) ~label db modules =
  ignore (Cmo_profile.Correlate.annotate db modules);
  Fun.protect
    ~finally:(fun () -> Cmo_profile.Correlate.clear modules)
    (fun () ->
      let all_sites, func_module = collect_sites modules in
      let selected = top_sites ~percent all_sites in
      let mod_w = Hashtbl.create 16 and fun_w = Hashtbl.create 64 in
      let bump tbl key w =
        Hashtbl.replace tbl key
          (w +. (match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0))
      in
      List.iter
        (fun (count, m, caller, _, callee) ->
          bump mod_w m count;
          bump fun_w caller count;
          if callee <> caller then bump fun_w callee count;
          match Hashtbl.find_opt func_module callee with
          | Some cm when cm <> m -> bump mod_w cm count
          | _ -> ())
        selected;
      let shares tbl =
        let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 entries in
        if total <= 0.0 then []
        else
          List.map (fun (k, v) -> (k, v /. total)) entries
          |> List.sort (fun (n1, s1) (n2, s2) ->
                 match compare s2 s1 with
                 | 0 -> String.compare n1 n2
                 | c -> c)
      in
      {
        Cmo_profile.Cohort.Diff.hs_label = label;
        hs_modules = shares mod_w;
        hs_functions = shares fun_w;
      })

let pp ppf t =
  Format.fprintf ppf
    "selectivity %.1f%%: %d/%d sites, %d modules, %d hot functions, %d/%d lines"
    t.percent
    (List.length t.selected_sites)
    t.sites_total
    (List.length t.cmo_modules)
    (List.length t.hot_functions)
    t.lines_selected t.lines_total
