(** The high-level optimizer's top-level driver.

    Orchestrates a CMO compilation over a {!Cmo_naim.Loader} holding
    the modules of the CMO set:

    + procedure cloning at hot constant call sites (optional);
    + cross-module inlining in bottom-up call-graph order (optional);
    + interprocedural constant propagation and dead-function removal
      (optional);
    + the intraprocedural phase pipeline per routine — under
      fine-grained selectivity, only for hot routines; cold routines
      are read once by the IPA scan and otherwise stay unloaded
      (paper section 5);
    + a final unload sweep.

    The same driver with everything disabled but the phase pipeline is
    the +O2-path optimizer used for non-CMO modules. *)

type phase_cache = {
  pc_find : string -> string option;
  pc_add : string -> string -> unit;
}
(** Access to the per-routine phase tier of the artifact store.  The
    sequential pipeline passes {!store_phase_cache}; parallel
    component workers pass their {!Cmo_cache.Store.txn}'s logged
    find/add so store bytes stay independent of the worker count. *)

val store_phase_cache : Cmo_cache.Store.t -> phase_cache
(** Direct store access (the sequential whole-set path). *)

type options = {
  clone : Clone.config option;
  inline : Inline.config option;
  ipa : bool;
  hot_filter : (string -> bool) option;
      (** Fine-grained selectivity: [Some f] optimizes only routines
          with [f name = true]. *)
  rewrite_limit : int option;
      (** Operation limit over scalar rewrites (bug isolation). *)
  phase_cache : phase_cache option;
      (** Content-addressed cache for per-routine phase results: the
          phase pipeline is purely intraprocedural, so a routine whose
          post-inline/IPA body is unchanged since a previous build is
          fetched instead of re-optimized.  Ignored when
          [rewrite_limit] is set (the budget is shared across
          routines). *)
  check : (phase:string -> Cmo_il.Func.t -> unit) option;
      (** Between-phase verification hook ([Options.check] passes the
          IL verifier here): called on every routine after each
          interprocedural stage ([clone], [inline], [ipa]), after
          each rewriting scalar pass, and on cache-served bodies
          ([phase-cache]).  Should raise to stop compilation. *)
}

val o2_options : options
(** Intraprocedural only: the default (+O2) optimization level. *)

val o4_options : profile:bool -> options
(** Full CMO: cloning (profile mode only), inlining (profile-guided
    or aggressive), IPA. *)

type report = {
  clones : int;
  inline_stats : Inline.stats option;
  ipa_stats : Ipa.stats option;
  funcs_optimized : int;
  funcs_skipped : int;  (** Left unloaded by fine-grained selectivity. *)
  rewrites : int;
}

val merge_reports : report -> report -> report
(** Fold per-component reports into one program report: counters add,
    IPA dead-function lists concatenate in merge order.  Used by the
    parallel pipeline after joining component workers. *)

val run :
  Cmo_naim.Loader.t -> Cmo_il.Callgraph.t -> ?ipa_context:Ipa.context ->
  options -> report
(** [ipa_context] defaults to {!Ipa.whole_program}; partial (selective)
    compilations must describe external callers/stores. *)

val pp_report : Format.formatter -> report -> unit
