(** The per-routine transformation pipeline and its bookkeeping.

    Runs the intraprocedural phases — constant propagation, CFG
    simplification, value numbering, copy propagation, loop-invariant
    code motion, dead-code elimination — to a fixed point (bounded by
    [max_rounds]).

    Derived analysis data (dominators, liveness, loop info) created by
    the phases is charged to the accountant's [Derived] category for
    the duration of the routine's optimization and released at the end
    — the paper's discipline of recompute-and-discard (section 4.1).

    [operation_limit] counts individual rewrites across a whole
    compilation and stops transforming when exhausted — the
    controllable operation limits of section 6.3 used by the
    bug-isolation driver's binary search. *)

type budget
(** Mutable program-wide rewrite budget. *)

val unlimited : unit -> budget
val limited : int -> budget
val spent : budget -> int

val passes : (string * (Cmo_il.Func.t -> int)) list
(** The scalar ladder in application order, under the names the
    verifier hook reports ([cfg2] is the second CFG cleanup). *)

val optimize_func :
  ?mem:Cmo_naim.Memstats.t ->
  ?budget:budget ->
  ?max_rounds:int ->
  ?check:(phase:string -> Cmo_il.Func.t -> unit) ->
  Cmo_il.Func.t ->
  int
(** Returns the total number of rewrites applied (0 = fixpoint on
    entry).  Default [max_rounds] is 4.  [check] runs after every
    pass application that rewrote something ([Options.check] passes
    the IL verifier here); it should raise to stop compilation. *)

val funcs_processed : unit -> int
(** Process-wide count of {!optimize_func} invocations — the
    phase-work meter: the artifact cache's warm-rebuild tests assert
    this does not move across a fully cached build. *)
