type program = Shrink.program

let marker = "// module: "

let render (program : program) =
  match program with
  | [ (_, text) ] -> text ^ if String.length text > 0 && text.[String.length text - 1] = '\n' then "" else "\n"
  | _ ->
    String.concat ""
      (List.map
         (fun (name, text) ->
           let text =
             if String.length text > 0 && text.[String.length text - 1] = '\n'
             then text
             else text ^ "\n"
           in
           marker ^ name ^ "\n" ^ text)
         program)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse ~default_name text =
  let lines = String.split_on_char '\n' text in
  let flush name acc_rev out =
    (* Splitting ate the newline separators; restore the trailing one
       so [parse] inverts [render] exactly on well-formed bodies. *)
    let text = String.concat "\n" (List.rev acc_rev) in
    let text =
      if text = "" || text.[String.length text - 1] = '\n' then text
      else text ^ "\n"
    in
    (name, text) :: out
  in
  let rec go name acc_rev out = function
    | [] -> List.rev (flush name acc_rev out)
    | line :: rest when starts_with ~prefix:marker (String.trim line) ->
      let next =
        String.trim
          (String.sub (String.trim line) (String.length marker)
             (String.length (String.trim line) - String.length marker))
      in
      if acc_rev = [] && out = [] && name = default_name then
        (* Marker opens the file: no leading anonymous module. *)
        go next [] out rest
      else go next [] (flush name acc_rev out) rest
    | line :: rest -> go name (line :: acc_rev) out rest
  in
  go default_name [] [] lines

let module_name_of_path path =
  Filename.remove_extension (Filename.basename path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  parse ~default_name:(module_name_of_path path) (read_file path)

let load_dir dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".mc")
    |> List.sort compare
    |> List.map (fun e -> (e, load_file (Filename.concat dir e)))
  | exception Sys_error _ -> []

let save ~dir ~name program =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let rec fresh i =
    let file =
      if i = 0 then name ^ ".mc" else Printf.sprintf "%s_%d.mc" name i
    in
    let path = Filename.concat dir file in
    if Sys.file_exists path then fresh (i + 1) else path
  in
  let path = fresh 0 in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render program));
  path
