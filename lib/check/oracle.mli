(** The differential-testing oracle: compile a MiniC program across a
    matrix of pipeline configurations and require every build to
    reproduce the reference interpreter's observables (return value of
    [main] and the printed sequence) exactly.

    The matrix spans the axes the last two PRs multiplied:
    optimization level ({b O1, O2, O4, O4+P}), artifact cache
    ({b cold} — no store — vs {b warm} — compile twice through one
    store and run the cache-served second build), and worker count
    ({b j=1} vs {b j=4}).  Any disagreement — wrong observables, a
    compile failure, a verifier violation, a VM fault — is a
    {!divergence} naming the offending point. *)

type program = Shrink.program

type point = {
  label : string;  (** E.g. ["O4+P/warm/j4"]; stable, filename-safe. *)
  options : Cmo_driver.Options.t;
  warm : bool;
      (** Compile twice through a fresh store; judge the second
          (cache-served) build. *)
}

val full_matrix : point list
(** {O1, O2, O4, O4+P} × {cold, warm} × {j=1, j=4}, with the
    redundant points removed: the cache axis only exists at O4 (the
    store keys link-time CMO artifacts), so O1/O2 appear cold-only. *)

val smoke_matrix : point list
(** The four O-levels, cold, j=1 — plus O4+P warm/j4, the single most
    loaded point.  For time-bounded CI smokes. *)

type divergence = {
  point : string;  (** [point.label] of the failing configuration. *)
  detail : string;  (** What disagreed, rendered for humans. *)
}

type verdict =
  | Agreed of int  (** All points checked and matching (the count). *)
  | Diverged of divergence list  (** Non-empty. *)
  | Skipped of string
      (** The program is not a valid oracle subject: the {e reference}
          itself failed (doesn't compile, interpreter fault).  Not a
          compiler bug; generators and shrink predicates treat it as
          uninteresting. *)

val reference :
  ?input:int64 array -> program -> (Cmo_il.Interp.outcome, string) result
(** Frontend + reference interpreter — the semantics to preserve. *)

val check_point :
  ?input:int64 array ->
  expected:Cmo_il.Interp.outcome ->
  point ->
  program ->
  divergence option
(** Compile and run [program] at one matrix point (training a profile
    first when the point wants PBO) and compare against [expected]. *)

val check : ?input:int64 array -> ?points:point list -> program -> verdict
(** The whole matrix ([points] defaults to {!full_matrix}). *)

val diverges_at : ?input:int64 array -> point -> program -> bool
(** [true] iff the reference succeeds and this point disagrees with
    it — the shrink predicate for a divergence found by {!check}:
    total, never raises. *)
