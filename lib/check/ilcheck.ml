module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Intrinsics = Cmo_il.Intrinsics

type binding =
  | Func_binding of { arity : int }
  | Global_binding of { size : int }

type env = { resolve : string -> binding option }

let env_of_modules modules =
  let table = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          Hashtbl.replace table f.Func.name
            (Func_binding { arity = f.Func.arity }))
        m.Ilmod.funcs;
      List.iter
        (fun (g : Ilmod.global) ->
          Hashtbl.replace table g.Ilmod.gname
            (Global_binding { size = g.Ilmod.size }))
        m.Ilmod.globals)
    modules;
  { resolve = Hashtbl.find_opt table }

let compose a b =
  {
    resolve =
      (fun name ->
        match a.resolve name with Some _ as r -> r | None -> b.resolve name);
  }

type violation = {
  phase : string;
  func : string;
  instr : string option;
  message : string;
}

exception Violation of violation list

let pp_violation ppf v =
  Format.fprintf ppf "[%s after %s]%t %s" v.func v.phase
    (fun ppf ->
      match v.instr with
      | Some i -> Format.fprintf ppf " at `%s`" i
      | None -> ())
    v.message

(* Must-defined sets as byte-array bitsets; register counts are small
   but routinely exceed the word size after inlining. *)
module Bits = struct
  let create n = Bytes.make ((n + 8) / 8) '\x00'
  let copy = Bytes.copy
  let equal = Bytes.equal
  let mem t r = Char.code (Bytes.get t (r lsr 3)) land (1 lsl (r land 7)) <> 0

  let add t r =
    Bytes.set t (r lsr 3)
      (Char.chr (Char.code (Bytes.get t (r lsr 3)) lor (1 lsl (r land 7))))

  (* a <- a ∩ b *)
  let inter a b =
    for i = 0 to Bytes.length a - 1 do
      Bytes.set a i
        (Char.chr (Char.code (Bytes.get a i) land Char.code (Bytes.get b i)))
    done

  let full n =
    let t = create n in
    for r = 0 to n - 1 do add t r done;
    t
end

let check_func ?env ~phase (f : Func.t) =
  let issues = ref [] in
  let report ?instr fmt =
    Format.kasprintf
      (fun message ->
        issues := { phase; func = f.Func.name; instr; message } :: !issues)
      fmt
  in
  let rendered i = Format.asprintf "%a" Instr.pp_instr i in
  let rendered_term t = Format.asprintf "%a" Instr.pp_terminator t in
  if f.Func.arity > f.Func.next_reg then
    report "arity %d exceeds register counter %d" f.Func.arity f.Func.next_reg;
  if f.Func.blocks = [] then report "function has no blocks"
  else begin
    (* --- labels and CFG edges --- *)
    let labels = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        if Hashtbl.mem labels b.Func.label then
          report "duplicate block label L%d" b.Func.label
        else Hashtbl.replace labels b.Func.label ();
        if b.Func.label < 0 || b.Func.label >= f.Func.next_label then
          report "block label L%d outside label counter %d" b.Func.label
            f.Func.next_label)
      f.Func.blocks;
    if not (Hashtbl.mem labels f.Func.entry) then
      report "entry label L%d does not exist" f.Func.entry;
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun target ->
            if not (Hashtbl.mem labels target) then
              report ~instr:(rendered_term b.Func.term)
                "branch from L%d to missing label L%d" b.Func.label target)
          (Instr.targets b.Func.term))
      f.Func.blocks;
    (* --- register ranges, call sites, linkage agreement --- *)
    let check_reg instr r =
      if r < 0 || r >= f.Func.next_reg then
        report ~instr "register r%d outside register counter %d" r
          f.Func.next_reg
    in
    let resolve name =
      match env with
      | None -> None
      | Some e -> (
        match Intrinsics.arity name with
        | Some a -> Some (Some (Func_binding { arity = a }))
        | None -> Some (e.resolve name))
    in
    let check_callee instr callee nargs =
      match resolve callee with
      | None -> ()  (* no environment: linkage unchecked *)
      | Some None ->
        report ~instr "call to %s, which no function defines (dangling ref?)"
          callee
      | Some (Some (Global_binding _)) ->
        report ~instr "call target %s is a global, not a function" callee
      | Some (Some (Func_binding { arity })) ->
        if nargs <> arity then
          report ~instr "call to %s passes %d args, expects %d" callee nargs
            arity
    in
    let check_base instr base =
      match resolve base with
      | None -> ()
      | Some None -> report ~instr "reference to undefined global %s" base
      | Some (Some (Func_binding _)) ->
        report ~instr "address base %s is a function, not a global" base
      | Some (Some (Global_binding _)) -> ()
    in
    let sites = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun i ->
            let instr = rendered i in
            Option.iter (check_reg instr) (Instr.def i);
            List.iter (check_reg instr) (Instr.uses i);
            match i with
            | Instr.Call { callee; args; site; _ } ->
              check_callee instr callee (List.length args);
              if site < 0 || site >= f.Func.next_site then
                report ~instr "call site s%d outside site counter %d" site
                  f.Func.next_site;
              if Hashtbl.mem sites site then
                report ~instr "duplicate call site id s%d" site
              else Hashtbl.replace sites site ()
            | Instr.Load (_, { Instr.base; _ }) -> check_base instr base
            | Instr.Store ({ Instr.base; _ }, _) -> check_base instr base
            | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Probe _ -> ())
          b.Func.instrs;
        List.iter
          (check_reg (rendered_term b.Func.term))
          (Instr.term_uses b.Func.term))
      f.Func.blocks;
    (* --- def-before-use over the reachable CFG --- *)
    (* Must-defined forward dataflow: in(entry) = parameters; in(b) =
       ∩ out(preds); out(b) = in(b) ∪ defs(b).  Unreachable blocks are
       skipped — they are dead weight a later CFG cleanup removes, and
       they have no defined entry state. *)
    let nregs = max f.Func.next_reg f.Func.arity in
    if nregs < 100_000 && Hashtbl.mem labels f.Func.entry then begin
      let reachable = Func.reachable f in
      let block_tbl = Hashtbl.create 16 in
      List.iter
        (fun (b : Func.block) -> Hashtbl.replace block_tbl b.Func.label b)
        f.Func.blocks;
      let defs_of (b : Func.block) from =
        let acc = Bits.copy from in
        List.iter (fun i -> Option.iter (Bits.add acc) (Instr.def i)) b.Func.instrs;
        acc
      in
      let entry_in = Bits.create nregs in
      for r = 0 to f.Func.arity - 1 do
        Bits.add entry_in r
      done;
      let in_sets = Hashtbl.create 16 in
      Hashtbl.replace in_sets f.Func.entry entry_in;
      let preds = Func.predecessors f in
      let order =
        List.filter
          (fun (b : Func.block) -> Hashtbl.mem reachable b.Func.label)
          f.Func.blocks
      in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (b : Func.block) ->
            let in_b =
              if b.Func.label = f.Func.entry then entry_in
              else begin
                let reach_preds =
                  List.filter
                    (fun p -> Hashtbl.mem reachable p)
                    (Option.value ~default:[]
                       (Hashtbl.find_opt preds b.Func.label))
                in
                (* A reachable non-entry block has at least one
                   reachable predecessor by construction. *)
                let acc = Bits.full nregs in
                List.iter
                  (fun p ->
                    match Hashtbl.find_opt in_sets p with
                    | Some in_p ->
                      Bits.inter acc (defs_of (Hashtbl.find block_tbl p) in_p)
                    | None -> ())
                  reach_preds;
                acc
              end
            in
            match Hashtbl.find_opt in_sets b.Func.label with
            | Some old when Bits.equal old in_b -> ()
            | _ ->
              Hashtbl.replace in_sets b.Func.label in_b;
              changed := true)
          order
      done;
      List.iter
        (fun (b : Func.block) ->
          match Hashtbl.find_opt in_sets b.Func.label with
          | None -> ()
          | Some in_b ->
            let defined = Bits.copy in_b in
            let use instr r =
              if r >= 0 && r < nregs && not (Bits.mem defined r) then
                report ~instr "use of r%d before any definition reaches it" r
            in
            List.iter
              (fun i ->
                let instr = rendered i in
                List.iter (use instr) (Instr.uses i);
                Option.iter
                  (fun d -> if d >= 0 && d < nregs then Bits.add defined d)
                  (Instr.def i))
              b.Func.instrs;
            List.iter
              (use (rendered_term b.Func.term))
              (Instr.term_uses b.Func.term))
        order
    end
  end;
  List.rev !issues

let check_func_exn ?env ~phase f =
  match check_func ?env ~phase f with [] -> () | vs -> raise (Violation vs)

let check_modules ?env ~phase modules =
  let env = match env with Some e -> e | None -> env_of_modules modules in
  let dup_issues = ref [] in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      let record kind name =
        match Hashtbl.find_opt seen name with
        | Some first ->
          dup_issues :=
            {
              phase;
              func = name;
              instr = None;
              message =
                Printf.sprintf "%s %s defined by both %s and %s" kind name
                  first m.Ilmod.mname;
            }
            :: !dup_issues
        | None -> Hashtbl.replace seen name m.Ilmod.mname
      in
      List.iter (fun (f : Func.t) -> record "function" f.Func.name) m.Ilmod.funcs;
      List.iter
        (fun (g : Ilmod.global) -> record "global" g.Ilmod.gname)
        m.Ilmod.globals)
    modules;
  List.rev !dup_issues
  @ List.concat_map
      (fun (m : Ilmod.t) ->
        List.concat_map (fun f -> check_func ~env ~phase f) m.Ilmod.funcs)
      modules

let check_modules_exn ?env ~phase modules =
  match check_modules ?env ~phase modules with
  | [] -> ()
  | vs -> raise (Violation vs)
