(** The fuzz-campaign driver: generate workload programs from a seed
    stream, hold each to the {!Oracle} matrix, and when a build
    diverges from the interpreter, {!Shrink} the program against that
    failing point and persist the reproducer into the {!Corpus}.

    Deterministic in [seed]: the programs, the order, and (modulo an
    actual compiler bug) the outcome are reproducible from the one
    number CI prints. *)

type program = Shrink.program

type finding = {
  seed : int;  (** The generator seed that produced the program. *)
  divergences : Oracle.divergence list;
  reproducer : program;  (** Shrunk against the first failing point. *)
  saved : string option;  (** Corpus path, when [save_dir] was given. *)
  shrink : Shrink.stats;
}

type result = {
  programs : int;
  points_checked : int;
  skipped : int;  (** Programs whose reference itself failed. *)
  findings : finding list;
}

val shrink_divergence :
  ?input:int64 array ->
  ?max_candidates:int ->
  Oracle.point ->
  program ->
  program * Shrink.stats
(** Reduce [program] while {!Oracle.diverges_at} the given point keeps
    holding.  The program must diverge there to begin with. *)

val run :
  ?points:Oracle.point list ->
  ?save_dir:string ->
  ?log:(string -> unit) ->
  ?shrink_budget:int ->
  seed:int ->
  count:int ->
  unit ->
  result
(** Check [count] generated programs (seeds [seed, seed+1, ...])
    against [points] (default {!Oracle.smoke_matrix}).  [log] receives
    one line per program and per finding. *)

val pp_result : Format.formatter -> result -> unit
