module Genprog = Cmo_workload.Genprog

type program = Shrink.program

type finding = {
  seed : int;
  divergences : Oracle.divergence list;
  reproducer : program;
  saved : string option;
  shrink : Shrink.stats;
}

type result = {
  programs : int;
  points_checked : int;
  skipped : int;
  findings : finding list;
}

let shrink_divergence ?input ?max_candidates point program =
  Shrink.shrink ?max_candidates
    ~interesting:(fun p -> Oracle.diverges_at ?input point p)
    program

let run ?(points = Oracle.smoke_matrix) ?save_dir ?(log = ignore)
    ?shrink_budget ~seed ~count () =
  let points_checked = ref 0 in
  let skipped = ref 0 in
  let findings = ref [] in
  for i = 0 to count - 1 do
    let seed = seed + i in
    let cfg = Genprog.fuzz_config ~name:"campaign" seed in
    let program = Genprog.generate cfg in
    let input = Genprog.reference_input cfg in
    match Oracle.check ~input ~points program with
    | Oracle.Agreed n ->
      points_checked := !points_checked + n;
      log
        (Printf.sprintf "seed %d: %d modules, %d lines — %d points agree" seed
           (List.length program)
           (Shrink.total_lines program)
           n)
    | Oracle.Skipped msg ->
      incr skipped;
      log (Printf.sprintf "seed %d: skipped (%s)" seed msg)
    | Oracle.Diverged ds ->
      points_checked := !points_checked + List.length points;
      let first = List.hd ds in
      let point = List.find (fun p -> p.Oracle.label = first.Oracle.point) points in
      log
        (Printf.sprintf "seed %d: DIVERGENCE at %s — %s; shrinking..." seed
           first.Oracle.point first.Oracle.detail);
      let reproducer, stats =
        shrink_divergence ~input ?max_candidates:shrink_budget point program
      in
      let saved =
        Option.map
          (fun dir ->
            Corpus.save ~dir
              ~name:(Printf.sprintf "div_seed%d_%s" seed first.Oracle.point)
              reproducer)
          save_dir
      in
      log
        (Printf.sprintf "seed %d: shrunk %d -> %d lines (%d candidates)%s" seed
           stats.Shrink.start_lines stats.Shrink.final_lines
           stats.Shrink.candidates
           (match saved with Some p -> " saved to " ^ p | None -> ""));
      findings :=
        { seed; divergences = ds; reproducer; saved; shrink = stats }
        :: !findings
  done;
  {
    programs = count;
    points_checked = !points_checked;
    skipped = !skipped;
    findings = List.rev !findings;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "campaign: %d programs, %d matrix points checked, %d skipped, %d divergences"
    r.programs r.points_checked r.skipped (List.length r.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.  seed %d: %s (%d -> %d lines%s)" f.seed
        (String.concat ", "
           (List.map (fun d -> d.Oracle.point) f.divergences))
        f.shrink.Shrink.start_lines f.shrink.Shrink.final_lines
        (match f.saved with Some p -> ", " ^ p | None -> ""))
    r.findings
