(** Delta-debugging reducer for multi-module MiniC programs.

    Given a program that exhibits some property (it miscompiles, it
    trips the verifier, ...) and a predicate that re-checks the
    property, [shrink] greedily removes structure while the predicate
    keeps holding, in decreasing granularity:

    + whole modules;
    + brace-balanced units — function definitions, then [if] /
      [while] / [for] bodies (header line through matching brace);
    + single lines (statements, declarations, blanks, comments).

    Each pass runs to fixpoint before the next, and the whole ladder
    repeats until one full sweep removes nothing.  The predicate must
    be total: it is expected to return [false] (not raise) on programs
    that no longer compile — reductions routinely produce syntax and
    scoping errors, and "doesn't compile" simply means "not
    interesting, keep the bigger program". *)

type program = (string * string) list
(** [(module name, MiniC source)] pairs, as {!Cmo_workload.Genprog}
    produces and the pipeline consumes. *)

type stats = {
  candidates : int;  (** Predicate evaluations spent. *)
  start_lines : int;
  final_lines : int;
}

val total_lines : program -> int
(** Non-blank, non-comment-only source lines, summed over modules. *)

val shrink :
  ?max_candidates:int ->
  interesting:(program -> bool) ->
  program ->
  program * stats
(** Reduce [program] to a local minimum of [interesting].  The input
    itself must satisfy the predicate.  [max_candidates] (default
    [4000]) bounds predicate evaluations; when exhausted the best
    reduction so far is returned — still guaranteed interesting. *)
