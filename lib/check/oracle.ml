module Ilcheck = Cmo_check.Ilcheck
module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Store = Cmo_cache.Store
module Vm = Cmo_vm.Vm

type program = Shrink.program

type point = {
  label : string;
  options : Options.t;
  warm : bool;
}

let with_jobs jobs (o : Options.t) = { o with Options.jobs }

let levels =
  [
    ("O1", Options.o1, false);
    ("O2", Options.o2, false);
    ("O4", Options.o4, true);
    ("O4P", Options.o4_pbo, true);
  ]

let full_matrix =
  List.concat_map
    (fun (lname, opts, cacheable) ->
      List.concat_map
        (fun warm ->
          List.map
            (fun jobs ->
              {
                label =
                  Printf.sprintf "%s-%s-j%d" lname
                    (if warm then "warm" else "cold")
                    jobs;
                options = with_jobs jobs opts;
                warm;
              })
            [ 1; 4 ])
        (if cacheable then [ false; true ] else [ false ]))
    levels

let find_point label = List.find (fun p -> p.label = label) full_matrix

let smoke_matrix =
  [
    find_point "O1-cold-j1";
    find_point "O2-cold-j1";
    find_point "O4-cold-j1";
    find_point "O4P-cold-j1";
    find_point "O4P-warm-j4";
  ]

type divergence = {
  point : string;
  detail : string;
}

type verdict =
  | Agreed of int
  | Diverged of divergence list
  | Skipped of string

let sources_of program =
  List.map (fun (name, text) -> { Pipeline.name; text }) program

(* Everything a broken reduction or a caught miscompile legitimately
   raises.  Deliberately not a catch-all: a Stack_overflow or assert
   failure in the compiler should crash the campaign loudly. *)
let describe_failure = function
  | Pipeline.Compile_error msg -> Some ("compile error: " ^ msg)
  | Ilcheck.Violation vs ->
    Some
      (Format.asprintf "verifier: %a"
         (Format.pp_print_list ~pp_sep:Format.pp_print_newline
            Ilcheck.pp_violation)
         vs)
  | Vm.Fault msg -> Some ("vm fault: " ^ msg)
  | Interp.Runtime_error msg -> Some ("interpreter fault: " ^ msg)
  | Failure msg -> Some ("failure: " ^ msg)
  | _ -> None

let reference ?(input = [||]) program =
  match Interp.run ~input (Pipeline.frontend (sources_of program)) with
  | outcome -> Ok outcome
  | exception e -> (
    match describe_failure e with Some msg -> Error msg | None -> raise e)

let pp_observables ppf (ret, output) =
  Format.fprintf ppf "ret=%Ld output=[%a]" ret
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf v -> Format.fprintf ppf "%Ld" v))
    output

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_store f =
  let dir = Filename.temp_file "cmo_oracle" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let store = Store.open_ ~dir () in
      Fun.protect ~finally:(fun () -> Store.close store) (fun () -> f store))

let build_at ?(input = [||]) point program =
  let sources = sources_of program in
  let profile =
    if point.options.Options.pbo then
      Some (Pipeline.train ~inputs:[ input ] sources)
    else None
  in
  if point.warm then
    with_temp_store (fun store ->
        ignore (Pipeline.compile ?profile ~cache:store point.options sources);
        Pipeline.compile ?profile ~cache:store point.options sources)
  else Pipeline.compile ?profile point.options sources

let check_point ?(input = [||]) ~expected point program =
  match
    let build = build_at ~input point program in
    Pipeline.run ~input build
  with
  | actual ->
    if
      Int64.equal expected.Interp.ret actual.Vm.ret
      && expected.Interp.output = actual.Vm.output
    then None
    else
      Some
        {
          point = point.label;
          detail =
            Format.asprintf "interpreter %a, vm %a" pp_observables
              (expected.Interp.ret, expected.Interp.output)
              pp_observables
              (actual.Vm.ret, actual.Vm.output);
        }
  | exception e -> (
    match describe_failure e with
    | Some msg -> Some { point = point.label; detail = msg }
    | None -> raise e)

let check ?(input = [||]) ?(points = full_matrix) program =
  match reference ~input program with
  | Error msg -> Skipped msg
  | Ok expected -> (
    match
      List.filter_map
        (fun point -> check_point ~input ~expected point program)
        points
    with
    | [] -> Agreed (List.length points)
    | ds -> Diverged ds)

let diverges_at ?(input = [||]) point program =
  try
    match reference ~input program with
    | Error _ -> false
    | Ok expected -> check_point ~input ~expected point program <> None
  with _ -> false
