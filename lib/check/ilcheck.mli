(** The between-phase IL well-formedness verifier.

    {!Cmo_il.Verify} is the frontend's acceptance check: it validates a
    module as lowering produced it.  [Ilcheck] is the optimizer's
    conscience: it is re-run after {e every} transformation phase (when
    [Options.check] / [cmoc --check] / [$CMO_CHECK] is on) and enforces
    the invariants a phase could silently break:

    - {b CFG consistency}: a function has blocks, its entry label
      exists, labels are unique and within the label counter, every
      branch targets an existing block;
    - {b def-before-use}: along every path from the entry, a register
      is written before it is read (parameters [0..arity-1] are defined
      on entry).  Computed by a must-defined forward dataflow over the
      reachable CFG, so joins are handled exactly;
    - {b counter hygiene}: registers below [next_reg], call sites
      unique and below [next_site] — the invariants cloning, inlining
      and unrolling must maintain when they mint names;
    - {b linkage agreement}: every callee resolves (against the
      environment assembled from the linked callgraph / NAIM loader /
      outside-context modules) to a function of matching arity, and
      every address base to a global — including that no call dangles
      into a function IPA removed and the loader compacted away (the
      NAIM ownership invariant).

    Violations carry the phase, function and offending instruction, so
    a failing build names the guilty pass directly. *)

type binding =
  | Func_binding of { arity : int }
  | Global_binding of { size : int }

type env = { resolve : string -> binding option }
(** Name resolution for linkage checks.  The environment is closed:
    a name that resolves to [None] (and is not an intrinsic) is a
    violation.  Omitting the environment skips linkage checks only. *)

val env_of_modules : Cmo_il.Ilmod.t list -> env
(** Snapshot the functions and globals of [modules] into a closed
    environment (names are copied out — later mutation of the modules,
    including loader registration emptying them, does not affect it). *)

val compose : env -> env -> env
(** [compose a b] resolves through [a] first, then [b]. *)

type violation = {
  phase : string;  (** The phase after which the check ran. *)
  func : string;
  instr : string option;  (** Rendered offending instruction, if any. *)
  message : string;
}

exception Violation of violation list
(** Raised by the [_exn] checkers; never empty. *)

val check_func : ?env:env -> phase:string -> Cmo_il.Func.t -> violation list
val check_func_exn : ?env:env -> phase:string -> Cmo_il.Func.t -> unit

val check_modules :
  ?env:env -> phase:string -> Cmo_il.Ilmod.t list -> violation list
(** Checks every function of every module, plus program-level
    uniqueness of function and global names.  [env] defaults to
    [env_of_modules modules] (the closed program). *)

val check_modules_exn : ?env:env -> phase:string -> Cmo_il.Ilmod.t list -> unit

val pp_violation : Format.formatter -> violation -> unit
