(** The persistent regression corpus under [test/corpus/].

    Each corpus entry is one [.mc] file holding a whole (possibly
    multi-module) MiniC program.  Modules are delimited by a marker
    comment the MiniC lexer already skips:

    {v
// module: main
func main() { return lib_f(3); }
// module: lib
func lib_f(x) { return x * 2; }
    v}

    A file without any marker is a single module named after the file.
    The replay test compiles every entry at every O-level and holds it
    to the interpreter's observables; the campaign appends new
    (shrunk) divergences here. *)

type program = Shrink.program

val marker : string
(** ["// module: "]. *)

val render : program -> string
(** One [.mc] body; single-module programs get no marker. *)

val parse : default_name:string -> string -> program
(** Inverse of {!render}; [default_name] names a marker-less file's
    module. *)

val load_file : string -> program
(** Read and {!parse} one [.mc] file ([default_name] = basename). *)

val load_dir : string -> (string * program) list
(** Every [.mc] file in [dir], sorted by filename; [[]] when the
    directory does not exist. *)

val save : dir:string -> name:string -> program -> string
(** Write [render program] to [dir/name.mc] (creating [dir],
    uniquifying [name] with a numeric suffix if taken); returns the
    path. *)
