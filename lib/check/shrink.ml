type program = (string * string) list

type stats = {
  candidates : int;
  start_lines : int;
  final_lines : int;
}

let split_lines s = String.split_on_char '\n' s
let join_lines ls = String.concat "\n" ls

let is_code line =
  let t = String.trim line in
  t <> "" && not (String.length t >= 2 && t.[0] = '/' && t.[1] = '/')

let total_lines program =
  List.fold_left
    (fun acc (_, text) ->
      acc + List.length (List.filter is_code (split_lines text)))
    0 program

(* Brace-balanced units.  For each line, track the depth before and
   after it; a line that opens net depth starts a unit ending at the
   first later line whose end-depth returns to the start-depth.  That
   rule swallows `} else {` chains whole, so an if/else removes as one
   candidate. *)
let units_of lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let depth_start = Array.make n 0 in
  let depth_end = Array.make n 0 in
  let d = ref 0 in
  for i = 0 to n - 1 do
    depth_start.(i) <- !d;
    String.iter
      (fun c -> if c = '{' then incr d else if c = '}' then decr d)
      arr.(i);
    depth_end.(i) <- !d
  done;
  let spans = ref [] in
  for i = 0 to n - 1 do
    if String.contains arr.(i) '{' && depth_end.(i) > depth_start.(i) then begin
      let j = ref i in
      while !j < n && depth_end.(!j) > depth_start.(i) do
        incr j
      done;
      if !j < n then spans := (i, !j) :: !spans
    end
  done;
  (* Biggest first: a whole function beats its inner loop. *)
  List.sort (fun (a, b) (c, d) -> compare (d - c, a) (b - a, c)) !spans

let remove_span lines (lo, hi) =
  List.filteri (fun i _ -> i < lo || i > hi) lines

let replace_module program idx text =
  List.mapi (fun i (name, t) -> if i = idx then (name, text) else (name, t))
    program

let shrink ?(max_candidates = 4000) ~interesting program =
  if not (interesting program) then
    invalid_arg "Shrink.shrink: input does not satisfy the predicate";
  let budget = ref max_candidates in
  let spent = ref 0 in
  let current = ref program in
  let try_program candidate =
    !budget > 0
    && begin
         decr budget;
         incr spent;
         if interesting candidate then begin
           current := candidate;
           true
         end
         else false
       end
  in
  (* Each pass returns whether it removed anything, retrying its own
     granularity to fixpoint before handing back. *)
  let drop_modules () =
    let changed = ref false in
    let progress = ref true in
    while !progress && !budget > 0 do
      progress := false;
      let n = List.length !current in
      if n > 1 then
        (* Later modules first: main (conventionally first) usually
           has to stay for the program to run at all. *)
        let idx = ref (n - 1) in
        while !idx >= 0 && not !progress do
          let candidate = List.filteri (fun i _ -> i <> !idx) !current in
          if List.length !current > 1 && try_program candidate then begin
            progress := true;
            changed := true
          end;
          decr idx
        done
    done;
    !changed
  in
  let drop_in_module ~candidates_of idx =
    let changed = ref false in
    let progress = ref true in
    while !progress && !budget > 0 do
      progress := false;
      let _, text = List.nth !current idx in
      let lines = split_lines text in
      let rec attempt = function
        | [] -> ()
        | span :: rest ->
          let candidate =
            replace_module !current idx (join_lines (remove_span lines span))
          in
          if try_program candidate then begin
            progress := true;
            changed := true
          end
          else attempt rest
      in
      attempt (candidates_of lines)
    done;
    !changed
  in
  let line_candidates lines =
    List.mapi (fun i line -> (i, line)) lines
    |> List.filter (fun (_, line) ->
           (not (String.contains line '{')) && String.trim line <> "}")
    |> List.map (fun (i, _) -> (i, i))
  in
  let sweep () =
    let changed = ref false in
    if drop_modules () then changed := true;
    let n_mods () = List.length !current in
    for idx = 0 to n_mods () - 1 do
      if idx < n_mods () && drop_in_module ~candidates_of:units_of idx then
        changed := true
    done;
    for idx = 0 to n_mods () - 1 do
      if idx < n_mods () && drop_in_module ~candidates_of:line_candidates idx
      then changed := true
    done;
    !changed
  in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := sweep ()
  done;
  (* Blank and comment-only lines carry no behaviour; sweep them
     without spending predicate budget, then confirm once. *)
  let cleaned =
    List.map
      (fun (name, text) ->
        (name, join_lines (List.filter is_code (split_lines text))))
      !current
  in
  if cleaned <> !current && interesting cleaned then begin
    incr spent;
    current := cleaned
  end;
  ( !current,
    {
      candidates = !spent;
      start_lines = total_lines program;
      final_lines = total_lines !current;
    } )
