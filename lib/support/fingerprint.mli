(** Deterministic content fingerprints for the artifact cache.

    FNV-1a over length-framed byte strings: dependency-free, fast,
    and stable across processes and platforms (unlike [Hashtbl.hash],
    which is documented to vary).  Framing each field with its length
    keeps concatenation injective, so ["ab"; "c"] and ["a"; "bc"]
    hash differently.

    A single 64-bit FNV state is cheap but collision-prone at cache
    scale; {!of_strings} therefore combines two independently seeded
    passes into a 128-bit hex key, which is what the cache store uses
    as its index key. *)

type t
(** A running 64-bit hash state (immutable; adders return the new
    state). *)

val empty : t

val seeded : int64 -> t
(** A state whose initial value mixes in the given seed. *)

val add_string : t -> string -> t
(** Hash the string's length, then its bytes. *)

val add_int : t -> int -> t

val to_hex : t -> string
(** 16 lowercase hex characters. *)

val of_strings : string list -> string
(** The 32-hex-character (128-bit) cache key of a field list: two
    independently seeded passes over the length-framed fields. *)
