module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let byte t b = Buffer.add_char t (Char.chr (b land 0xff))

  (* Writes the int's bit pattern as an unsigned base-128 quantity;
     works for any int including those whose top bit is set (the
     zig-zag image of min_int). *)
  let raw_base128 t v =
    let rec go v =
      if v >= 0 && v < 0x80 then byte t v
      else begin
        byte t (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let uvarint t v =
    assert (v >= 0);
    raw_base128 t v

  let varint t v =
    (* zig-zag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
    let z = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
    raw_base128 t z

  let int64 t v =
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

  let string t s =
    uvarint t (String.length s);
    Buffer.add_string t s

  let bool t b = byte t (if b then 1 else 0)

  let float t f = int64 t (Int64.bits_of_float f)

  let list t write_elem items =
    uvarint t (List.length items);
    List.iter write_elem items

  let array t write_elem items =
    uvarint t (Array.length items);
    Array.iter write_elem items

  let length t = Buffer.length t

  let contents t = Buffer.contents t
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Corrupt of string

  let corrupt msg = raise (Corrupt msg)

  let of_string data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then corrupt "unexpected end of input";
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let uvarint t =
    let rec go shift acc =
      if shift > Sys.int_size then corrupt "varint too long";
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let varint t =
    let z = uvarint t in
    (z lsr 1) lxor (- (z land 1))

  let int64 t =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    !v

  let string t =
    let len = uvarint t in
    if t.pos + len > String.length t.data then corrupt "string overruns input";
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | _ -> corrupt "invalid bool"

  let float t = Int64.float_of_bits (int64 t)

  (* Every element consumes at least one byte, so a length prefix
     larger than the remaining input is corruption — check before
     allocating, lest a garbage prefix demand a huge array. *)
  let seq_length t =
    let len = uvarint t in
    if len < 0 || len > String.length t.data - t.pos then
      corrupt "sequence length overruns input";
    len

  let list t read_elem =
    let len = seq_length t in
    List.init len (fun _ -> read_elem t)

  let array t read_elem =
    let len = seq_length t in
    Array.init len (fun _ -> read_elem t)

  let at_end t = t.pos = String.length t.data
end
