module Obs = Cmo_obs.Obs

exception Crash

exception Corrupt_record of { path : string; offset : int; reason : string }

(* ---- CRC-32 (IEEE 802.3), table-driven ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  Int32.of_int (!c lxor 0xffffffff)

let crc_bits c = Int32.to_int c land 0xffffffff

(* ---- fault plans ---- *)

type kind = Enospc | Eio | Short | Transient | Crash_op

type plan = {
  seed : int;
  faults : (int * kind) list;
  ops : int Atomic.t;
  injections : int Atomic.t;
  mutable crashed : bool;
}

let active : plan option Atomic.t = Atomic.make None

let parse spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if tokens = [] then Error "empty fault plan"
  else
    let seed = ref 0 in
    let faults = ref [] in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> err := Some m) fmt in
    List.iter
      (fun tok ->
        if !err <> None then ()
        else if tok = "count" then ()
        else
          match String.index_opt tok '@' with
          | Some i -> (
            let kind = String.sub tok 0 i in
            let at = String.sub tok (i + 1) (String.length tok - i - 1) in
            match (int_of_string_opt at, kind) with
            | None, _ | Some 0, _ ->
              fail "bad operation index in %S (want kind@K, K >= 1)" tok
            | Some k, _ when k < 1 ->
              fail "bad operation index in %S (want kind@K, K >= 1)" tok
            | Some k, "crash" -> faults := (k, Crash_op) :: !faults
            | Some k, "enospc" -> faults := (k, Enospc) :: !faults
            | Some k, "eio" -> faults := (k, Eio) :: !faults
            | Some k, "short" -> faults := (k, Short) :: !faults
            | Some k, "transient" -> faults := (k, Transient) :: !faults
            | Some _, _ ->
              fail
                "unknown fault kind %S (want crash, enospc, eio, short or \
                 transient)"
                kind)
          | None -> (
            match String.index_opt tok '=' with
            | Some i when String.sub tok 0 i = "seed" -> (
              match
                int_of_string_opt
                  (String.sub tok (i + 1) (String.length tok - i - 1))
              with
              | Some s -> seed := s
              | None -> fail "bad seed in %S" tok)
            | _ -> fail "unknown fault-plan token %S" tok))
      tokens;
    match !err with
    | Some m -> Error m
    | None ->
      Ok
        {
          seed = !seed;
          faults = List.rev !faults;
          ops = Atomic.make 0;
          injections = Atomic.make 0;
          crashed = false;
        }

let install_plan spec =
  match parse spec with
  | Ok p ->
    Atomic.set active (Some p);
    Ok ()
  | Error _ as e -> e

let clear_plan () = Atomic.set active None

let plan_active () = Atomic.get active <> None

let op_count () =
  match Atomic.get active with Some p -> Atomic.get p.ops | None -> 0

let injected () =
  match Atomic.get active with Some p -> Atomic.get p.injections | None -> 0

let retries_total = Atomic.make 0

let retries () = Atomic.get retries_total

(* How much of a torn write survived: a deterministic function of the
   plan seed and the operation index, covering the full [0, len]
   range so a sweep reaches "nothing written" and "everything written
   but not yet durable" as well as every cut in between. *)
let prefix_len plan k len =
  if len <= 0 then 0
  else
    let g = Prng.create (plan.seed lxor ((k * 0x9e3779b9) land max_int)) in
    Prng.int g (len + 1)

(* What the injection layer tells a primitive to do about the
   operation it is about to perform.  With no plan installed the
   check is the single [Atomic.get]. *)
type verdict =
  | Proceed
  | Inert  (* post-crash write: do nothing, report success *)
  | Cut of int  (* write this prefix, then raise [Crash] *)
  | Shortw of int  (* write this prefix, then raise [Sys_error] *)
  | Flaky of int  (* fail this many attempts transiently, then proceed *)

let verdict ~read op path len =
  match Atomic.get active with
  | None -> Proceed
  | Some p ->
    if p.crashed then if read then raise Crash else Inert
    else begin
      let k = 1 + Atomic.fetch_and_add p.ops 1 in
      match List.assoc_opt k p.faults with
      | None -> Proceed
      | Some f -> (
        Atomic.incr p.injections;
        Obs.tick "io" "injected" 1;
        let fail msg name =
          raise
            (Sys_error
               (Printf.sprintf "%s: %s (injected %s at io op %d, %s)" path msg
                  name k op))
        in
        match f with
        | Enospc -> fail "No space left on device" "enospc"
        | Eio -> fail "Input/output error" "eio"
        | Transient -> Flaky 2
        | Crash_op ->
          p.crashed <- true;
          if read then raise Crash else Cut (prefix_len p k len)
        | Short ->
          if read then fail "Input/output error" "short"
          else Shortw (prefix_len p k len))
    end

let flaky_of = function
  | Proceed -> 0
  | Flaky n -> n
  | Inert | Cut _ | Shortw _ -> assert false (* impossible for reads *)

(* ---- bounded retries with seeded-jitter backoff ---- *)

let max_attempts = 3

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m > 0 && at 0

let is_transient_msg m =
  contains m "Interrupted system call"
  || contains m "temporarily unavailable"
  || contains m "Resource temporarily"
  || contains m "injected transient"

let backoff attempt =
  let seed = match Atomic.get active with Some p -> p.seed | None -> 0 in
  let g = Prng.create (seed lxor ((attempt * 0x85ebca6b) land max_int)) in
  Unix.sleepf (0.0005 *. float_of_int (1 lsl attempt) *. (1.0 +. Prng.float g 1.0))

let note_retry () =
  Atomic.incr retries_total;
  Obs.tick "io" "retries" 1

(* One logical operation's syscall, with up to [max_attempts] tries
   for transient failures.  The first [flaky] attempts fail by
   injection; a real error retries only when it looks EINTR/EAGAIN
   class.  Retries do not re-enter [verdict], so the operation count
   stays attempt-independent. *)
let with_retries ~flaky ~path ~op f =
  let rec go attempt =
    if attempt <= flaky then
      if attempt >= max_attempts then
        raise
          (Sys_error
             (Printf.sprintf "%s: persistent transient failure (%s)" path op))
      else begin
        note_retry ();
        backoff attempt;
        go (attempt + 1)
      end
    else
      try f ()
      with Sys_error m when attempt < max_attempts && is_transient_msg m ->
        note_retry ();
        backoff attempt;
        go (attempt + 1)
  in
  go 1

(* Write-class operation with no meaningful partial state: fsync,
   rename, remove, mkdir, truncate. *)
let simple_op op path f =
  match verdict ~read:false op path 0 with
  | Inert -> ()
  | Proceed -> with_retries ~flaky:0 ~path ~op f
  | Flaky n -> with_retries ~flaky:n ~path ~op f
  | Cut _ -> raise Crash
  | Shortw _ ->
    raise (Sys_error (Printf.sprintf "%s: Input/output error (%s)" path op))

let sys_error_of_unix path e = Sys_error (path ^ ": " ^ Unix.error_message e)

(* ---- whole files ---- *)

let read_file path =
  let flaky = flaky_of (verdict ~read:true "read" path 0) in
  with_retries ~flaky ~path ~op:"read" @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fsync_path path =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Unix.fsync fd
        with Unix.Unix_error (e, _, _) -> raise (sys_error_of_unix path e))
  | exception Unix.Unix_error (e, _, _) -> raise (sys_error_of_unix path e)

let atomic_write path data =
  let tmp = path ^ ".tmp" in
  let write_tmp n_opt =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        (match n_opt with
        | None -> output_string oc data
        | Some n -> output_substring oc data 0 n);
        flush oc)
  in
  let inert = ref false in
  (match verdict ~read:false "write" tmp (String.length data) with
  | Inert -> inert := true
  | Proceed -> with_retries ~flaky:0 ~path:tmp ~op:"write" (fun () -> write_tmp None)
  | Flaky n -> with_retries ~flaky:n ~path:tmp ~op:"write" (fun () -> write_tmp None)
  | Cut n ->
    (try write_tmp (Some n) with Sys_error _ -> ());
    raise Crash
  | Shortw n ->
    (try write_tmp (Some n) with Sys_error _ -> ());
    raise (Sys_error (tmp ^ ": short write")));
  if not !inert then simple_op "fsync" tmp (fun () -> fsync_path tmp);
  if not !inert then simple_op "rename" path (fun () -> Sys.rename tmp path)

let remove path = simple_op "remove" path (fun () -> Sys.remove path)

let rename src dst = simple_op "rename" dst (fun () -> Sys.rename src dst)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    simple_op "mkdir" dir (fun () ->
        try Sys.mkdir dir 0o755
        with Sys_error _ when Sys.file_exists dir -> ())
  end

let truncate path len =
  simple_op "truncate" path (fun () ->
      try Unix.truncate path len
      with Unix.Unix_error (e, _, _) -> raise (sys_error_of_unix path e))

(* ---- framed record streams ---- *)

let record_magic = "CMR1"

let frame_overhead = 12

let le32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.unsafe_to_string b

let get_le32 s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

let frame payload =
  record_magic ^ le32 (String.length payload) ^ le32 (crc_bits (crc32 payload))
  ^ payload

type scan =
  | Frame of { payload : string; next : int }
  | Need of int
  | Bad of string

let scan_frame s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then invalid_arg "Fsio.scan_frame";
  if n - pos < frame_overhead then Need (frame_overhead - (n - pos))
  else if String.sub s pos 4 <> record_magic then Bad "bad record magic"
  else
    let len = get_le32 s (pos + 4) in
    if len < 0 then Bad "negative record length"
    else if n - pos - frame_overhead < len then
      Need (len - (n - pos - frame_overhead))
    else
      let payload = String.sub s (pos + frame_overhead) len in
      if crc_bits (crc32 payload) <> get_le32 s (pos + 8) then Bad "crc mismatch"
      else Frame { payload; next = pos + frame_overhead + len }

let valid_prefix_string s =
  let rec walk pos =
    match scan_frame s ~pos with
    | Frame { next; _ } -> walk next
    | Need _ | Bad _ -> pos
  in
  walk 0

(* ---- framed messages over a file descriptor ----

   Raw fd I/O on purpose: a pipe or socket is not a durability
   surface, so these stay outside the fault-injection chokepoint — a
   fault plan aimed at a build must not corrupt the transport carrying
   it.  Shared by the build-server wire protocol and the distributed
   partition-worker pipes. *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_framed fd payload =
  let data = frame payload in
  write_all fd data 0 (String.length data)

(* Read exactly [n] bytes; [`Eof got] when the peer closes early,
   [`Timeout] when [timeout_s] elapses between reads with the count
   still short.  The timeout is the distributed build's hang bound: a
   wedged worker degrades to local recompute instead of stalling the
   link step forever. *)
let read_exact ?timeout_s fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string buf)
    else begin
      let ready =
        match timeout_s with
        | None -> true
        | Some t -> (
          match Unix.select [ fd ] [] [] t with
          | [], _, _ -> false
          | _ -> true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
      in
      if not ready then Error `Timeout
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> Error (`Eof off)
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let read_framed ?timeout_s ?(max_payload = 1 lsl 26) fd =
  match read_exact ?timeout_s fd frame_overhead with
  | Error `Timeout -> Error `Timeout
  | Error (`Eof 0) -> Error `Eof
  | Error (`Eof _) -> Error (`Bad "connection closed inside a frame header")
  | Ok header -> (
    match scan_frame header ~pos:0 with
    | Bad m -> Error (`Bad m)
    | Frame { payload; _ } -> Ok payload (* zero-length payload *)
    | Need n when n > max_payload -> Error (`Bad "oversized frame")
    | Need n -> (
      match read_exact ?timeout_s fd n with
      | Error `Timeout -> Error `Timeout
      | Error (`Eof _) -> Error (`Bad "connection closed inside a frame body")
      | Ok body -> (
        match scan_frame (header ^ body) ~pos:0 with
        | Frame { payload; _ } -> Ok payload
        | Bad m -> Error (`Bad m)
        | Need _ -> Error (`Bad "incomplete frame"))))

type appender = {
  apath : string;
  mutable oc : out_channel option;  (* None once closed, or born inert *)
  mutable pos : int;
}

let open_append ?(trunc = false) path =
  let really () =
    let flags =
      [ Open_wronly; Open_creat; Open_binary ]
      @ if trunc then [ Open_trunc ] else [ Open_append ]
    in
    let oc = open_out_gen flags 0o644 path in
    { apath = path; oc = Some oc; pos = out_channel_length oc }
  in
  match verdict ~read:false "open" path 0 with
  | Inert -> { apath = path; oc = None; pos = 0 }
  | Proceed -> with_retries ~flaky:0 ~path ~op:"open" really
  | Flaky n -> with_retries ~flaky:n ~path ~op:"open" really
  | Cut _ -> raise Crash
  | Shortw _ -> raise (Sys_error (path ^ ": Input/output error (open)"))

let append_pos a = a.pos

let append_record a payload =
  let data = frame payload in
  let len = String.length data in
  let start = a.pos in
  let write n_opt oc =
    (match n_opt with
    | None -> output_string oc data
    | Some n -> output_substring oc data 0 n);
    flush oc
  in
  match verdict ~read:false "append" a.apath len with
  | Inert ->
    a.pos <- start + len;
    start
  | (Proceed | Flaky _) as v -> (
    match a.oc with
    | None -> raise (Sys_error (a.apath ^ ": append to a closed stream"))
    | Some oc ->
      with_retries ~flaky:(flaky_of v) ~path:a.apath ~op:"append" (fun () ->
          write None oc);
      a.pos <- start + len;
      start)
  | Cut n ->
    (match a.oc with
    | Some oc -> ( try write (Some n) oc with Sys_error _ -> ())
    | None -> ());
    raise Crash
  | Shortw n ->
    (match a.oc with
    | Some oc ->
      (try write (Some n) oc with Sys_error _ -> ());
      (* Repair the torn tail back to the record boundary so one
         failed append cannot poison the records written after it. *)
      (try Unix.ftruncate (Unix.descr_of_out_channel oc) start
       with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ());
    raise
      (Sys_error
         (Printf.sprintf "%s: short write (record at offset %d)" a.apath start))

let close_append ?(fsync = false) a =
  match a.oc with
  | None -> ()
  | Some oc ->
    a.oc <- None;
    let crashed =
      match Atomic.get active with Some p -> p.crashed | None -> false
    in
    if not crashed && fsync then (
      try
        simple_op "fsync" a.apath (fun () ->
            flush oc;
            try Unix.fsync (Unix.descr_of_out_channel oc)
            with Unix.Unix_error (e, _, _) -> raise (sys_error_of_unix a.apath e))
      with Sys_error _ -> ());
    close_out_noerr oc

let read_record ?expect_crc path ~offset ~length =
  let flaky = flaky_of (verdict ~read:true "read" path 0) in
  with_retries ~flaky ~path ~op:"read" @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let size = in_channel_length ic in
  let bad reason = raise (Corrupt_record { path; offset; reason }) in
  if offset < 0 || offset + frame_overhead > size then bad "offset beyond file";
  seek_in ic offset;
  let header = really_input_string ic frame_overhead in
  if String.sub header 0 4 <> record_magic then bad "bad record magic";
  if get_le32 header 4 <> length then bad "length mismatch";
  if offset + frame_overhead + length > size then bad "record beyond file";
  let payload = really_input_string ic length in
  let crc = crc_bits (crc32 payload) in
  if crc <> get_le32 header 8 then bad "crc mismatch";
  (match expect_crc with
  | Some c when crc_bits c <> crc -> bad "crc differs from the index"
  | Some _ | None -> ());
  payload

let read_span path ~offset ~length =
  let flaky = flaky_of (verdict ~read:true "read" path 0) in
  with_retries ~flaky ~path ~op:"read" @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let size = in_channel_length ic in
  if offset >= size || offset < 0 then ""
  else begin
    seek_in ic offset;
    really_input_string ic (min length (size - offset))
  end

let valid_prefix path =
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let flaky = flaky_of (verdict ~read:true "scan" path 0) in
    with_retries ~flaky ~path ~op:"scan" @@ fun () ->
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let size = in_channel_length ic in
    let rec walk off =
      if off + frame_overhead > size then off
      else begin
        seek_in ic off;
        let header = really_input_string ic frame_overhead in
        if String.sub header 0 4 <> record_magic then off
        else
          let len = get_le32 header 4 in
          if len < 0 || off + frame_overhead + len > size then off
          else walk (off + frame_overhead + len)
      end
    in
    (walk 0, size)
  end
