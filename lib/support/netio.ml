module Obs = Cmo_obs.Obs

(* ---- fault plans (Fsio's scheme, applied to the wire) ---- *)

type kind = Drop | Stall | Garble | Reset | Partition

type plan = {
  seed : int;
  faults : (int * kind) list;
  ops : int Atomic.t;
  injections : int Atomic.t;
  mutable partitioned : bool;
}

let active : plan option Atomic.t = Atomic.make None

let parse spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if tokens = [] then Error "empty net-fault plan"
  else
    let seed = ref 0 in
    let faults = ref [] in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> err := Some m) fmt in
    List.iter
      (fun tok ->
        if !err <> None then ()
        else if tok = "count" then ()
        else
          match String.index_opt tok '@' with
          | Some i -> (
            let kind = String.sub tok 0 i in
            let at = String.sub tok (i + 1) (String.length tok - i - 1) in
            match (int_of_string_opt at, kind) with
            | None, _ | Some 0, _ ->
              fail "bad operation index in %S (want kind@K, K >= 1)" tok
            | Some k, _ when k < 1 ->
              fail "bad operation index in %S (want kind@K, K >= 1)" tok
            | Some k, "drop" -> faults := (k, Drop) :: !faults
            | Some k, "stall" -> faults := (k, Stall) :: !faults
            | Some k, "garble" -> faults := (k, Garble) :: !faults
            | Some k, "reset" -> faults := (k, Reset) :: !faults
            | Some k, "partition" -> faults := (k, Partition) :: !faults
            | Some _, _ ->
              fail
                "unknown net-fault kind %S (want drop, stall, garble, reset \
                 or partition)"
                kind)
          | None -> (
            match String.index_opt tok '=' with
            | Some i when String.sub tok 0 i = "seed" -> (
              match
                int_of_string_opt
                  (String.sub tok (i + 1) (String.length tok - i - 1))
              with
              | Some s -> seed := s
              | None -> fail "bad seed in %S" tok)
            | _ -> fail "unknown net-fault-plan token %S" tok))
      tokens;
    match !err with
    | Some m -> Error m
    | None ->
      Ok
        {
          seed = !seed;
          faults = List.rev !faults;
          ops = Atomic.make 0;
          injections = Atomic.make 0;
          partitioned = false;
        }

let install_plan spec =
  match parse spec with
  | Ok p ->
    Atomic.set active (Some p);
    Ok ()
  | Error _ as e -> e

let clear_plan () = Atomic.set active None

let plan_active () = Atomic.get active <> None

let op_count () =
  match Atomic.get active with Some p -> Atomic.get p.ops | None -> 0

let injected () =
  match Atomic.get active with Some p -> Atomic.get p.injections | None -> 0

let retries_total = Atomic.make 0

let retries () = Atomic.get retries_total

(* What the injection layer tells send/recv to do.  [Severed] is the
   sticky partitioned state; the one-shot kinds carry the operation
   index for the error message. *)
type verdict = Proceed | Severed | Fault of kind * int

let verdict () =
  match Atomic.get active with
  | None -> Proceed
  | Some p ->
    if p.partitioned then Severed
    else begin
      let k = 1 + Atomic.fetch_and_add p.ops 1 in
      match List.assoc_opt k p.faults with
      | None -> Proceed
      | Some f ->
        Atomic.incr p.injections;
        Obs.tick "net" "injected" 1;
        if f = Partition then p.partitioned <- true;
        Fault (f, k)
    end

let partitioned () =
  match Atomic.get active with Some p -> p.partitioned | None -> false

(* ---- addresses ---- *)

let format_addr host port = Printf.sprintf "%s:%d" host port

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 && host <> "" -> Ok (host, p)
    | _ -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      raise (Sys_error (host ^ ": cannot resolve host")))

(* ---- connect, with deadline + bounded seeded-jitter retry ---- *)

let sys_error_of_unix where e = Sys_error (where ^ ": " ^ Unix.error_message e)

let is_transient_connect = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT | Unix.EHOSTUNREACH
  | Unix.ENETUNREACH | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK ->
    true
  | _ -> false

let max_attempts = 3

let backoff attempt =
  let seed = match Atomic.get active with Some p -> p.seed | None -> 0 in
  let g = Prng.create (seed lxor ((attempt * 0x85ebca6b) land max_int)) in
  Unix.sleepf (0.0005 *. float_of_int (1 lsl attempt) *. (1.0 +. Prng.float g 1.0))

let note_retry () =
  Atomic.incr retries_total;
  Obs.tick "net" "retries" 1

let connect_once ~timeout_s addr host port =
  let where = format_addr host port in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_INET (addr, port))
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec wait () =
      let remain = deadline -. Unix.gettimeofday () in
      if remain <= 0.0 then
        raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", where))
      else
        match Unix.select [] [ fd ] [] remain with
        | _, [ _ ], _ -> ()
        | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", where))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ();
    (match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (Unix.Unix_error (e, "connect", where)));
    Unix.clear_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(timeout_s = 10.0) host port =
  let where = format_addr host port in
  if partitioned () then
    raise (Sys_error (where ^ ": Connection timed out (injected partition)"));
  let addr = resolve host in
  let rec go attempt =
    match connect_once ~timeout_s addr host port with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
      if attempt < max_attempts && is_transient_connect e then begin
        note_retry ();
        backoff attempt;
        (* A partition can land while we were backing off. *)
        if partitioned () then
          raise
            (Sys_error (where ^ ": Connection timed out (injected partition)"))
        else go (attempt + 1)
      end
      else raise (sys_error_of_unix where e)
  in
  go 1

let listen ?(backlog = 16) host port =
  let addr = resolve host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd backlog;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, actual)
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (sys_error_of_unix (format_addr host port) e)

(* ---- framed messages through the injection chokepoint ---- *)

(* Corrupt one payload bit of a framed message (or a CRC bit when the
   payload is empty): the bytes still parse as a frame, so the peer's
   CRC check — not its framing scan — is what refuses them.  The
   position is a deterministic function of the plan seed and the
   operation index. *)
let garbled plan k data =
  let b = Bytes.of_string data in
  let lo = if Bytes.length b > Fsio.frame_overhead then Fsio.frame_overhead else 8 in
  let g = Prng.create (plan.seed lxor ((k * 0x9e3779b9) land max_int)) in
  let pos = lo + Prng.int g (Bytes.length b - lo) in
  let bit = Prng.int g 8 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

let injected_error name k op =
  Printf.sprintf "injected %s at net op %d, %s" name k op

let send fd payload =
  match verdict () with
  | Proceed -> Fsio.write_framed fd payload
  | Severed -> () (* the network ate it *)
  | Fault (Drop, _) -> ()
  | Fault (Partition, _) -> ()
  | Fault (Stall, k) ->
    raise
      (Sys_error
         ("Connection timed out (" ^ injected_error "stall" k "send" ^ ")"))
  | Fault (Reset, k) ->
    raise
      (Sys_error
         ("Connection reset by peer (" ^ injected_error "reset" k "send" ^ ")"))
  | Fault (Garble, k) -> (
    match Atomic.get active with
    | Some p ->
      let data = garbled p k (Fsio.frame payload) in
      (* Bypass [Fsio.write_framed] — these are already framed (and
         deliberately damaged) bytes. *)
      let rec write_all off len =
        if len > 0 then begin
          let n =
            try Unix.write_substring fd data off len
            with Unix.Unix_error (Unix.EINTR, _, _) -> 0
          in
          write_all (off + n) (len - n)
        end
      in
      write_all 0 (String.length data)
    | None -> Fsio.write_framed fd payload)

let recv ?timeout_s ?max_payload fd =
  match verdict () with
  | Proceed -> Fsio.read_framed ?timeout_s ?max_payload fd
  | Severed -> Error `Timeout
  | Fault ((Drop | Stall | Partition), _) -> Error `Timeout
  | Fault (Reset, k) ->
    Error (`Bad ("connection reset by peer (" ^ injected_error "reset" k "recv" ^ ")"))
  | Fault (Garble, k) ->
    Error (`Bad ("crc mismatch (" ^ injected_error "garble" k "recv" ^ ")"))
