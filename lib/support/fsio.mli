(** The single chokepoint for file I/O, with deterministic fault
    injection.

    Every artifact family the system persists — the CMO cache store,
    the NAIM disk repository, the profile database, trace exports,
    object files — performs its reads and writes through this module,
    which gives the whole toolchain one place to implement the
    durability discipline (temp + fsync + rename for whole files,
    length+CRC framing for appended records, bounded retries for
    transient errors) and one place to inject faults for testing.

    {2 Error model}

    Real failures and injected failures surface identically, as
    [Sys_error] — consumers that degrade gracefully under injection
    therefore degrade identically under a real full disk.  Two
    conditions get their own exceptions:

    - {!Corrupt_record}: a framed record whose magic, length or CRC
      does not check out.  The store quarantines these; they are data
      corruption, not I/O failure.
    - {!Crash}: a simulated power cut.  Raised at the planned
      operation after writing a seeded prefix of the data (the torn
      state a kill would leave), and the process-wide I/O layer then
      goes inert: subsequent writes silently do nothing (so
      unwind-time finalizers cannot touch the disk a "dead" process
      could not have touched) and subsequent reads re-raise.  [Crash]
      is never raised unless a plan with a [crash@k] directive is
      installed; production code must let it propagate.

    {2 Fault plans}

    A plan is a comma-separated spec, installed process-wide:

    - [count] — inject nothing, just number the operations (the sweep
      harness uses this to size a sweep);
    - [crash@K] — simulated power cut at operation K;
    - [enospc@K] / [eio@K] — fail operation K with the corresponding
      error;
    - [short@K] — write only a seeded prefix at operation K, then
      fail (the torn tail is repaired back to the record boundary
      where the framing allows it);
    - [transient@K] — operation K fails with an EINTR-class error
      that succeeds on retry (exercises the backoff path);
    - [seed=N] — seeds the torn-write prefix lengths and the retry
      jitter.

    Operations are numbered from 1 in execution order; with [jobs = 1]
    a build's sequence is deterministic, which is what makes
    "crash at the k-th operation" a meaningful sweep axis.

    With no plan installed every entry point's injection check is a
    single atomic load — the hot path costs nothing else. *)

exception Crash
(** Simulated power cut (see above).  Only a fault plan raises this. *)

exception Corrupt_record of { path : string; offset : int; reason : string }
(** A framed record failed its magic, length or CRC check. *)

(** {2 Fault plans} *)

val install_plan : string -> (unit, string) result
(** Parse and install a plan spec (see above); replaces any current
    plan and resets the operation counter.  [Error] describes the
    first bad token. *)

val clear_plan : unit -> unit
(** Remove the plan; injection checks return to the single-load fast
    path and the crashed state is reset. *)

val plan_active : unit -> bool

val op_count : unit -> int
(** Operations performed under the current plan (0 with no plan).
    Retries of one logical operation do not re-count. *)

val injected : unit -> int
(** Faults injected so far under the current plan. *)

val retries : unit -> int
(** Process-lifetime count of I/O retries (also ticked to the
    [io/retries] Obs counter). *)

(** {2 Whole files} *)

val read_file : string -> string
(** The file's entire contents.  [Sys_error] on any failure. *)

val atomic_write : string -> string -> unit
(** Write via [path ^ ".tmp"], fsync, rename — after a crash at any
    point the target holds either the old bytes or the new bytes,
    never a mixture.  Three injection sites: write, fsync, rename. *)

val remove : string -> unit
(** [Sys_error] when missing, like [Sys.remove]. *)

val rename : string -> string -> unit
(** [rename src dst], one injection site; [Sys_error] on failure.
    {!atomic_write} covers the common whole-file case — this is for
    owners that stream a replacement file themselves (compaction). *)

val mkdirs : string -> unit
(** Create the directory and its missing parents; existing
    directories are fine. *)

val truncate : string -> int -> unit

(** {2 Framed record streams}

    An append-only file of records, each framed as magic (4 bytes),
    payload length (4 bytes LE), CRC-32 of the payload (4 bytes LE),
    then the payload.  A torn append is structurally detectable
    ({!valid_prefix}) and a corrupted payload is content-detectable
    (the CRC), so a reader can always resynchronize: truncate at the
    first structurally bad record, quarantine records whose CRC
    fails. *)

val frame_overhead : int
(** Bytes of framing per record (12). *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string; exposed for tests and for index
    entries that want to remember a record's expected checksum. *)

val frame : string -> string
(** [frame payload] is the payload wrapped in the CMR1 framing (magic,
    LE length, LE CRC-32, payload) — the exact bytes {!append_record}
    writes.  Pure; no injection site.  The build-server wire protocol
    frames its messages with this. *)

type scan =
  | Frame of { payload : string; next : int }
      (** A whole, CRC-valid record starts at [pos]; [next] is the
          offset just past it. *)
  | Need of int  (** More bytes needed — at least this many. *)
  | Bad of string  (** Bad magic, negative length or CRC mismatch. *)

val scan_frame : string -> pos:int -> scan
(** Examine the framed record starting at [pos] in an in-memory byte
    stream.  Unlike {!valid_prefix} this also verifies the CRC —
    stream consumers (the wire protocol) treat a framing violation as
    fatal for the connection rather than resynchronizing past it. *)

val valid_prefix_string : string -> int
(** In-memory analogue of {!valid_prefix}: the end offset of the
    longest prefix of whole, CRC-valid records. *)

val write_framed : Unix.file_descr -> string -> unit
(** Write one framed message to a pipe or socket (blocking, restarts
    on EINTR).  {b Deliberately outside the fault-injection
    chokepoint}: the wire is not a durability surface, and a fault
    plan aimed at a build must not corrupt the transport carrying it.
    Raises [Unix.Unix_error] when the peer is gone (EPIPE with SIGPIPE
    ignored). *)

val read_framed :
  ?timeout_s:float ->
  ?max_payload:int ->
  Unix.file_descr ->
  (string, [ `Eof | `Bad of string | `Timeout ]) result
(** Read one framed message.  [`Eof] is a clean close on a message
    boundary; a close inside a frame, a framing violation or an
    oversized length (beyond [max_payload], default 64 MiB) is
    [`Bad] — stream consumers treat it as fatal for the connection
    (there is no trustworthy next-frame offset).  With [timeout_s],
    [`Timeout] when the peer stalls that long mid-message — the
    distributed build's hang bound.  Raw fd I/O, never
    fault-injected, like {!write_framed}. *)

type appender
(** An open append channel to a record stream.  Appends are flushed
    per record; {!close_append} optionally fsyncs. *)

val open_append : ?trunc:bool -> string -> appender
(** Open (creating as needed) for appending; [trunc] starts the file
    over.  The initial position is the current end of file. *)

val append_pos : appender -> int
(** Current end-of-file position (the offset the next record will
    start at). *)

val append_record : appender -> string -> int
(** Append one framed record and flush; returns the record's start
    offset (pass to {!read_record} with the payload's length).  On a
    short write the file is repaired back to the record boundary
    (best effort) before [Sys_error] is raised, so one failed append
    does not poison the records after it. *)

val close_append : ?fsync:bool -> appender -> unit
(** Never raises except {!Crash}-inertly (a crashed plan makes it a
    no-op). *)

val read_record : ?expect_crc:int32 -> string -> offset:int -> length:int -> string
(** Read and verify the record at [offset] whose payload is [length]
    bytes.  Raises {!Corrupt_record} when the magic, stored length,
    stored CRC, computed CRC or (when given) [expect_crc] disagree;
    [Sys_error] on I/O failure. *)

val read_span : string -> offset:int -> length:int -> string
(** Best-effort raw read of up to [length] bytes at [offset] (short
    when the file ends sooner); for quarantining damaged records.
    [Sys_error] on I/O failure. *)

val valid_prefix : string -> int * int
(** [(valid_end, size)]: walk the record structure from offset 0 and
    return the end of the last structurally whole record along with
    the physical file size; [valid_end < size] means a torn tail that
    the owner should {!truncate} away.  A missing file is [(0, 0)];
    an unreadable one degrades to [(0, size_if_known)]. *)
