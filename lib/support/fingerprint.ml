type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let add_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let empty = fnv_offset

let add_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let seeded seed = add_int64 empty seed

let add_int h n = add_int64 h (Int64.of_int n)

let add_string h s =
  let h = ref (add_int h (String.length s)) in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let to_hex = Printf.sprintf "%016Lx"

let of_strings parts =
  let h1 = List.fold_left add_string (seeded 0x9e3779b97f4a7c15L) parts in
  let h2 = List.fold_left add_string (seeded 0xc2b2ae3d27d4eb4fL) parts in
  to_hex h1 ^ to_hex h2
