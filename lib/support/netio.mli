(** The single chokepoint for network I/O, with deterministic fault
    injection — {!Fsio}'s design applied to the wire.

    Every TCP byte the toolchain moves — dialing a remote
    [cmoc-worker], the parent side of every distributed-worker
    conversation, a [cmocd] cache daemon reached over [tcp:] — goes
    through this module, which gives the system one place to implement
    the transport discipline (CMR1 framing, connect/read deadlines,
    bounded seed-jittered retry for transient connect errors) and one
    place to inject network faults for testing.

    {2 Error model}

    Injected failures surface exactly like real ones: a refused or
    timed-out dial is [Sys_error], a stalled read is [`Timeout], a
    corrupted or reset stream is [`Bad].  Consumers that degrade
    gracefully under injection therefore degrade identically under a
    real flaky network.  Injected faults are {e fail-fast}: a
    [stall@K] read returns [`Timeout] immediately rather than sleeping
    out the deadline, so a partition sweep over hundreds of protocol
    events costs seconds, not hours.

    {2 Fault plans}

    A plan is a comma-separated spec, installed process-wide (never
    inherited — each binary decides whether to install
    [$CMO_NET_FAULT]; [cmoc] does, [cmoc-worker] and [cmocd] do not,
    so a plan aimed at a build's parent cannot corrupt the far side
    of its own connections):

    - [count] — inject nothing, just number the operations (sweeps
      use this to size themselves);
    - [drop@K] — operation K's message is lost in transit: a send
      silently succeeds without writing, a receive reports
      [`Timeout];
    - [stall@K] — the peer wedges at operation K: a receive reports
      [`Timeout], a send fails like a filled-and-expired socket
      buffer ([Sys_error], timed-out);
    - [garble@K] — operation K's frame is corrupted in transit: a
      send writes the real frame with one payload bit flipped (the
      {e peer}'s CRC check refuses it), a receive reports [`Bad]
      locally;
    - [reset@K] — the connection dies at operation K
    ([Sys_error] reset on send, [`Bad] on receive), one-shot;
    - [partition@K] — the network is severed at operation K and
      {e stays severed}: every later send is dropped, every later
      receive reports [`Timeout], and every later {!connect} fails —
      the machine-loss analogue of {!Fsio}'s crash-inert state;
    - [seed=N] — seeds the garble bit position and the connect-retry
      jitter.

    Operations are numbered from 1 in execution order; {!send} and
    {!recv} each count one operation, {!connect} counts none (so the
    sweep axis is exactly the protocol-event sequence).  With no plan
    installed every entry point's injection check is a single atomic
    load. *)

(** {2 Fault plans} *)

val install_plan : string -> (unit, string) result
(** Parse and install a plan spec (see above); replaces any current
    plan and resets the operation counter and partitioned state.
    [Error] describes the first bad token. *)

val clear_plan : unit -> unit
(** Remove the plan; injection checks return to the single-load fast
    path and a severed partition heals. *)

val plan_active : unit -> bool

val op_count : unit -> int
(** Network operations performed under the current plan (0 with no
    plan).  Operations suppressed by a sticky partition do not
    count. *)

val injected : unit -> int
(** Faults injected so far under the current plan ([partition@K]
    counts once, at the severing operation). *)

val retries : unit -> int
(** Process-lifetime count of connect retries (also ticked to the
    [net/retries] Obs counter). *)

(** {2 Addresses} *)

val parse_addr : string -> (string * int, string) result
(** Split ["host:port"] at the last colon; the port must be an
    integer in [0, 65535]. *)

val format_addr : string -> int -> string
(** [format_addr host port] is ["host:port"]. *)

(** {2 Connections} *)

val connect : ?timeout_s:float -> string -> int -> Unix.file_descr
(** Dial [host:port] with a per-attempt deadline ([timeout_s],
    default 10): non-blocking connect + select, then the socket error
    is checked, so a black-holed peer cannot wedge the caller.
    Transient errors (refused, timed out, unreachable, reset,
    EINTR/EAGAIN class) are retried up to 3 attempts with
    seed-jittered exponential backoff; DNS resolution failures and
    other hard errors are not.  The resulting socket is blocking with
    [TCP_NODELAY] set.  Raises [Sys_error] (real and injected
    failures look identical). *)

val listen : ?backlog:int -> string -> int -> Unix.file_descr * int
(** Bind and listen on [host:port] ([SO_REUSEADDR]; port 0 picks an
    ephemeral port) and return the listening socket with the actual
    bound port.  Never fault-injected — the injector models a flaky
    {e network}, and a listener that cannot even bind is a
    configuration error the caller should see raw.  Raises
    [Sys_error]. *)

(** {2 Framed messages}

    The same CMR1 frames as {!Fsio.write_framed} /
    {!Fsio.read_framed}, wrapped in the injection chokepoint.  The
    distributed wire protocol sends every parent-side message through
    these; pipe-connected local workers use them too, so one fault
    plan covers every placement. *)

val send : Unix.file_descr -> string -> unit
(** Write one framed message.  Raises [Unix.Unix_error] /
    [Sys_error] when the peer is gone (and for injected stall /
    reset). *)

val recv :
  ?timeout_s:float ->
  ?max_payload:int ->
  Unix.file_descr ->
  (string, [ `Eof | `Bad of string | `Timeout ]) result
(** Read one framed message; the result contract is exactly
    {!Fsio.read_framed}'s.  Injected faults report without touching
    the descriptor, so they are immediate regardless of
    [timeout_s]. *)
