(** Distributed link-time CMO: the WHOPR-shaped process boundary.

    The pipeline's serial WPA step (partitioning into invalidation
    components, external-context scan, per-partition cache keys) stays
    in {!Pipeline}; this module is everything on the far side of it:

    - {!optimize_subset}, the one definition of "optimize a partition"
      — extracted from the pipeline so the in-process path and the
      worker process run {e the same code} on the same inputs, which
      is what makes distribution byte-invisible by construction;
    - the wire protocol a [cmoc-worker] process speaks over a CMR1
      framed socketpair {e or TCP connection} ({!parent_msg} /
      {!worker_msg} and their {!Cmo_support.Codec} codecs), including
      the phase-cache relay that forwards the worker's per-routine
      find/add traffic into the parent's store transaction {e in
      order}, so the transaction op log — and therefore every store
      byte — matches the in-process run exactly;
    - the parent-side worker pool: remote endpoints
      ([cmoc-worker --listen host:port], dialed round-robin through
      {!Cmo_support.Netio}) alongside spawn-on-demand local
      processes, a mandatory {!worker_msg.Hello} handshake carrying
      the worker's version fingerprint (wire-codec generation +
      binary digest — skewed workers are refused, never mixed into
      artifacts), heartbeat/deadline health tracking ({!worker_msg.Pulse}
      proves a slow worker alive; a job past [$CMO_DIST_DEADLINE] is
      redone locally anyway — straggler redo), a consecutive-loss
      circuit breaker that retires a flaky endpoint, bounded read
      timeouts (the distributed hang bound), and a deterministic
      chaos hook ([$CMO_DIST_CHAOS=kill@K] SIGKILLs the worker at the
      K-th protocol event) for the kill-sweep suite.

    Failure model (the PR-5 taxonomy applied to the wire): any worker
    loss — death, EOF, framing violation, oversized frame, stalled
    read, network partition, version refusal, straggler deadline,
    remote failure report — surfaces as {!Worker_lost}; the caller
    abandons the partition's (uncommitted) transaction and redoes the
    partition locally on a fresh one, reproducing the oracle's op log
    and bytes.  Degradation is never visible in artifacts, only in
    {!lost_total} (and its cause split across {!refused_total},
    {!stragglers_total}, {!retired_total}). *)

module Hlo := Cmo_hlo.Hlo

(** {2 The shared partition optimizer} *)

val optimize_subset :
  ?phase_cache:Hlo.phase_cache ->
  ?naim_repo:Cmo_naim.Repository.t ->
  ?hot_filter:(string -> bool) ->
  ?check_base:(unit -> Cmo_check.Ilcheck.env) ->
  options:Options.t ->
  externally_called:(string -> bool) ->
  externally_stored:(string -> bool) ->
  mem:Cmo_naim.Memstats.t ->
  Cmo_il.Ilmod.t list ->
  Cmo_il.Ilmod.t list * Hlo.report * Cmo_naim.Loader.stats
(** Run link-time CMO over one subset (a whole CMO set or one
    invalidation component): build the callgraph, register the modules
    with a fresh NAIM loader, run HLO with the subset-relative IPA
    context, and extract the optimized modules.  [check_base] supplies
    the outside-modules resolution environment for the between-phase
    verifier; when absent (worker processes cannot reconstruct it) the
    verifier is skipped — safe because checking is observational:
    checked and unchecked builds produce identical artifacts. *)

(** {2 Wire messages}

    Each message is one CMR1 frame ({!Cmo_support.Fsio.write_framed});
    the payload codecs below are exposed for the protocol fuzz suite.
    The conversation opens with a mandatory worker {!Hello} (version
    fingerprint; a skewed worker gets {!Refuse} and is discarded),
    then alternates strictly: the parent sends {!Job}, then answers
    each worker {!Need}/{!Keep} with {!Have}/{!Ack} until {!Done} or
    {!Fail} arrives.  {!Pulse} heartbeats may arrive at any point of
    a job and carry no reply. *)

val wire_version : int
(** The wire-codec generation this binary speaks; bumped whenever any
    payload changes shape.  A {!Hello} reporting a different value is
    version skew and is refused. *)

type hello = {
  h_wire : int;  (** The worker's {!wire_version}. *)
  h_digest : string;  (** The worker binary's content digest. *)
}

type job = {
  job_options : Options.t;
  job_modules : string list;  (** {!Cmo_il.Ilcodec.encode_module} each. *)
  job_called : string list;  (** Externally-called function names. *)
  job_stored : string list;  (** Externally-stored global names. *)
  job_hot : string list option;
      (** Fine-grained selectivity: hot function names, or [None] for
          no filter. *)
  job_phase_cache : bool;
      (** Relay per-routine phase-cache traffic over the wire. *)
}

type mem_summary = {
  ms_resident : int list;
      (** Final residency per {!Cmo_naim.Memstats.all_categories}
          entry, in that order. *)
  ms_peak : int;
  ms_peak_hlo : int;
}

type done_payload = {
  done_modules : string list;
      (** Optimized modules, encoded.  The parent stores these bytes
          verbatim under the partition's cache keys — the worker's
          encoder, not a parent-side re-encode, defines the
          artifact. *)
  done_report : Hlo.report;
  done_lstats : Cmo_naim.Loader.stats;
  done_mem : mem_summary;
}

type parent_msg =
  | Job of job
  | Have of string option  (** Reply to {!worker_msg.Need}. *)
  | Ack  (** Reply to {!worker_msg.Keep}. *)
  | Bye
  | Refuse of string
      (** The worker's {!worker_msg.Hello} failed verification; the
          reason travels so the far side can log it.  The connection
          is closed after this. *)

type worker_msg =
  | Need of string  (** Phase-cache find, by key. *)
  | Keep of string * string  (** Phase-cache add: key, payload. *)
  | Done of done_payload
  | Fail of string
  | Hello of hello  (** First message on every connection. *)
  | Pulse
      (** Heartbeat, sent every [$CMO_WORKER_HB] seconds (default 5)
          while a job runs; proof of life for straggler detection. *)

val encode_parent : parent_msg -> string
val encode_worker : worker_msg -> string

val decode_parent : string -> parent_msg
val decode_worker : string -> worker_msg
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed payloads,
    including trailing bytes. *)

val summary_of_memstats : Cmo_naim.Memstats.t -> mem_summary

val memstats_of_summary : mem_summary -> Cmo_naim.Memstats.t
(** Reconstruct an accountant whose per-category residency and peaks
    equal the worker's, so {!Cmo_naim.Memstats.merge} folds it exactly
    as it would have folded the worker's own. *)

(** {2 The worker side} *)

val worker_main : Unix.file_descr -> Unix.file_descr -> 'a
(** Serve jobs from [in_fd]/[out_fd] — {!worker_msg.Hello} first,
    then the job loop — until {!parent_msg.Bye}, {!parent_msg.Refuse}
    or EOF, then exit 0; exit 2 on a protocol violation.
    [bin/cmoc_worker] calls this on stdin/stdout.  Environment
    levers: [$CMO_WORKER_FP] overrides the reported binary digest
    (skew tests), [$CMO_WORKER_HB] the heartbeat period in seconds
    (default 5, 0 disables), [$CMO_WORKER_SLOW_S] sleeps that long
    before each job (straggler tests).  Never returns. *)

val worker_listen : ?port_file:string -> string -> int -> 'a
(** [cmoc-worker --listen HOST:PORT]: bind (port 0 picks an ephemeral
    port), print ["cmoc-worker: listening on HOST:PORT"] on stdout
    (and write the bare port to [port_file] when given — the
    race-free way for a harness to learn an ephemeral port), then
    serve each accepted connection in its own thread with the same
    protocol as {!worker_main}.  Never returns; dismiss it with a
    signal. *)

(** {2 The parent side} *)

type pool

exception Worker_lost
(** The partition's worker is gone (or reported failure): SIGKILLed
    by chaos, dead, stalled past the timeout, past its straggler
    deadline, version-refused, severed by a partition, or speaking
    garbage.  The worker has been reaped (or its endpoint charged a
    loss); the caller must redo the partition locally on a fresh
    transaction. *)

exception Unavailable of string
(** [create_pool] could find neither a worker binary nor any remote
    endpoint. *)

val resolve_worker : unit -> string
(** [$CMO_DIST_WORKER] when set, else [cmoc_worker.exe] next to the
    running executable, else [../bin/cmoc_worker.exe] from there (the
    dune layout seen from test and bench executables).  The result may
    not exist — {!create_pool} checks. *)

val create_pool :
  ?worker:string ->
  ?timeout_s:float ->
  ?deadline_s:float ->
  ?workers:string list ->
  ?chaos:string ->
  unit ->
  pool
(** Prepare a worker pool: no connections yet; each concurrent
    {!run_job} checks out an idle worker, else dials a [workers]
    endpoint (round-robin, skipping breaker-retired ones), else
    spawns a local process — all verified by handshake before their
    first job, all reused across jobs.  [timeout_s] (default
    [$CMO_DIST_TIMEOUT], else 60) bounds every parent-side read — the
    distributed build's hang bound.  [deadline_s] (default
    [$CMO_DIST_DEADLINE], else none) is the straggler bound: a job
    unfinished after this long is redone locally even while
    heartbeats prove its worker alive.  [workers] defaults to
    [$CMO_DIST_WORKERS].  An endpoint is retired for the pool's life
    after 3 consecutive losses (any completed job resets the count)
    or a version refusal.  [chaos] (default [$CMO_DIST_CHAOS])
    accepts [kill@K]: kill the active worker at the K-th protocol
    event (each send and each receive counts), once.
    @raise Unavailable when the worker binary does not exist and no
    endpoint was given. *)

val run_job : pool -> ?phase_cache:Hlo.phase_cache -> job -> done_payload
(** Drive one partition job on a pooled worker, answering its
    phase-cache relay from [phase_cache] in arrival order.
    @raise Worker_lost on any loss or remote failure (see above). *)

val close_pool : pool -> unit
(** Dismiss every worker (Bye + close + waitpid).  Never raises. *)

(** {2 Remote artifact cache}

    The hook {!Pipeline} uses to share module artifacts across
    checkouts through [cmocd] ([Cache_get]/[Cache_put]).  Both
    functions must degrade internally (miss / drop) rather than raise:
    a remote-cache fault must never fail a build. *)

type remote = {
  remote_get : string -> string option;
  remote_put : string -> string -> unit;
}

(** {2 Counters} — process-lifetime, for tests and the bench. *)

val jobs_total : unit -> int
(** Partition jobs completed on worker processes. *)

val lost_total : unit -> int
(** Workers lost (chaos kills included) plus remote failure reports —
    each one a partition degraded to local recompute. *)

val events_total : unit -> int
(** Parent-side protocol events across all pools; a clean run's delta
    sizes the kill-sweep. *)

val refused_total : unit -> int
(** Workers refused at handshake for version skew (wire-codec
    generation or binary-fingerprint mismatch). *)

val stragglers_total : unit -> int
(** Jobs redone locally because they outlived their deadline while
    the worker's heartbeats kept arriving. *)

val retired_total : unit -> int
(** Endpoints retired by the circuit breaker (consecutive losses) or
    by a version refusal. *)
