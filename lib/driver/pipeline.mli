(** The compilation pipeline (the paper's Figure 2, end to end).

    - [O1]/[O2] (+P): per-module frontend, intraprocedural HLO phases
      ([O2] only), LLO with profile-guided block positioning under
      +P, code object files, link (with profile-guided routine
      clustering under +P).
    - [O4] (+P): frontends produce IL object payloads; at link time
      the CMO set (all modules, or the selectivity-chosen subset) is
      registered with a NAIM loader and optimized by HLO
      (cloning/inlining/IPA/phases), then code-generated; modules
      outside the set take the [O2]+P path.  The interprocedural
      context for a partial set is derived by scanning the outside
      modules for calls into and stores into the set.
    - [+I]: probes are inserted and optimization suppressed; the
      returned manifest ties VM counters to profile-database keys.

    The pipeline works on in-memory values; {!Buildsys} adds the
    on-disk object-file workflow. *)

type source = { name : string; text : string }

type cache_usage = {
  hits : int;  (** Module-level artifacts served from the local store. *)
  misses : int;
      (** Module-level lookups served by neither the local store nor
          the remote cache. *)
  remote_hits : int;
      (** Artifacts fetched from the remote cache ([?remote]) and
          adopted into the local store. *)
  remote_misses : int;
      (** Remote lookups that missed; a failed or disabled remote
          counts here — never as a build error. *)
  cmo_cached : string list;
      (** CMO-set modules whose post-CMO IL came from the store. *)
  cmo_reoptimized : string list;
      (** CMO-set modules whose link-time optimization actually ran
          (the invalidation closure of the changed modules). *)
}
(** Artifact-cache traffic for one build.  Module-level only: the
    store's own {!Cmo_cache.Store.stats} additionally count the
    per-routine phase cache. *)

type report = {
  options : Options.t;
  hlo : Cmo_hlo.Hlo.report option;
  loader_stats : Cmo_naim.Loader.stats option;
  mem_peak : int;  (** Peak modeled bytes, all categories. *)
  mem_peak_hlo : int;  (** Peak excluding LLO (Figure 4's HLO series). *)
  selection : Cmo_hlo.Selectivity.t option;
  llo : Cmo_llo.Llo.stats;
  frontend_seconds : float;
  hlo_seconds : float;
  llo_seconds : float;
  link_seconds : float;
  frontend_wall_seconds : float;
      (** Wall clock for the phases that run on the worker pool; the
          [*_seconds] fields above are process CPU time across every
          domain, so cpu/wall is the realized parallel speedup (see
          {!par_speedup}).  Zero when measured via {!compile_modules}
          directly (the frontend ran elsewhere). *)
  hlo_wall_seconds : float;
  llo_wall_seconds : float;
  workers_used : int;  (** The [jobs] the build ran with. *)
  total_lines : int;
  cmo_lines : int;  (** Source lines in the CMO set. *)
  warm_lines : int;
      (** Lines outside the CMO set compiled at the default level. *)
  cold_lines : int;
      (** Tiered mode only: never-executed lines given the minimal
          (+O1-grade) compile. *)
  cache : cache_usage option;  (** [None] when built without a store. *)
  obs : Cmo_obs.Obs.summary option;
      (** Compact trace summary (event/track counts, per-stage span
          time, final counter values) when the build ran with
          [Options.trace]; [None] otherwise. *)
}

type build = {
  image : Cmo_link.Image.t;
  objects : Cmo_link.Objfile.t list;
      (** The code objects that went into the final link. *)
  report : report;
  manifest : Cmo_profile.Probe.manifest option;  (** +I builds only. *)
}

exception Compile_error of string
(** Frontend, verification or link failure, with rendered details. *)

val phase_cpu_seconds : report -> float
(** Summed cpu seconds of the three parallelizable phases
    (frontend + hlo + llo) — the single definition of that sum. *)

val phase_wall_seconds : report -> float
(** Summed wall seconds of the same three phases. *)

val par_speedup : report -> float
(** {!phase_cpu_seconds} over {!phase_wall_seconds};
    1.0 when either is unmeasured.  On a single hardware thread this
    sits at or slightly below 1 regardless of [workers_used]. *)

val with_tracing : Options.t -> (unit -> 'a) -> 'a
(** Run [f] under the trace sink when [options.trace] is set: start
    recording, run, write the Chrome-trace file, stop.  No-op without
    [trace].  {!compile} applies it itself; [Buildsys.build] wraps its
    own workflow with it.  A failing build stops the sink without
    writing a file. *)

val frontend : ?jobs:int -> source list -> Cmo_il.Ilmod.t list
(** Compile sources to IL, verifying the result as a program.
    Per-module lowering runs on [jobs] worker domains (default 1);
    results and error choice are independent of [jobs].
    @raise Compile_error on any error. *)

val frontend_one : source -> Cmo_il.Ilmod.t
(** Compile a single module with module-local verification only;
    cross-module references are checked later, at link time — the
    separate-compilation discipline the build system relies on.
    @raise Compile_error on any error. *)

val compile :
  ?profile:Cmo_profile.Db.t ->
  ?cache:Cmo_cache.Store.t ->
  ?naim_repo:Cmo_naim.Repository.t ->
  ?remote:Distwork.remote ->
  Options.t ->
  source list ->
  build

val compile_modules :
  ?profile:Cmo_profile.Db.t ->
  ?cache:Cmo_cache.Store.t ->
  ?naim_repo:Cmo_naim.Repository.t ->
  ?remote:Distwork.remote ->
  Options.t ->
  Cmo_il.Ilmod.t list ->
  build
(** Takes ownership of [modules]: profile annotation and optimization
    mutate them.

    With [Options.dist], link-time CMO partitions run in isolated
    [cmoc-worker] processes ({!Distwork}) instead of worker domains;
    any worker loss, wire fault or missing worker binary degrades the
    affected partition (or the whole build) to in-process execution.
    Distributed builds are byte-identical to in-process ones — the
    distribution determinism matrix enforces it.

    With [remote] (requires [cache]), module-artifact lookups that
    miss the local store consult the remote cache, adopting validated
    artifacts locally, and fresh artifacts are published back — the
    cross-checkout sharing path through [cmocd].  The remote must
    degrade internally (both functions return miss / drop on any
    fault); remote traffic happens only on the serial WPA path, so
    local store bytes stay independent of [jobs].

    With [naim_repo], the O4 loaders offload to the given repository
    instead of a private in-memory one — the build server passes its
    long-lived repository here so NAIM state stays warm across
    requests (loaders never close a repository they were given).
    Offloaded pools round-trip byte-identically, so sharing the
    repository does not change artifacts.

    With [cache], the O4 link step becomes incremental: post-CMO
    per-module IL is stored content-addressed, keyed on the module's
    invalidation-closure component (see {!Cmo_cache.Invalidate}), the
    canonical option fingerprint, and the external context visible to
    the component.  When every artifact is current the HLO phase runs
    not at all (the report's [hlo] is [None]); otherwise only the
    invalidation closure of the changed modules is re-optimized —
    falling back to the whole set under profile-guided cloning or the
    bug-isolation limits, whose budgets are program-wide.  Cached or
    not, the resulting image is bit-identical. *)

val run :
  ?input:int64 array -> ?fuel:int -> ?attribute:bool -> build ->
  Cmo_vm.Vm.outcome
(** Execute the built image on the VM.  [attribute] enables
    per-routine cycle attribution (see {!Cmo_vm.Vm.run}). *)

val train :
  ?inputs:int64 array list ->
  source list ->
  Cmo_profile.Db.t
(** Build instrumented (+I), run each training input on the VM, and
    accumulate the profile database — the paper's training loop. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Cmo_obs.Json.t
(** Machine-readable report: every numeric field plus the derived
    aggregates ([phase_cpu_seconds], [phase_wall_seconds],
    [par_speedup]) so consumers never re-derive arithmetic. *)
