(* A small fixed-size Domain pool.  Tasks are closures pushed on a
   mutex/condition queue; each future carries its own mutex so awaits
   don't contend with submissions.  Exceptions are captured with their
   backtrace and re-raised at [await] — the caller's control flow sees
   the same failure the sequential run would, at the same position. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  fmutex : Mutex.t;
  fcond : Condition.t;
}

type pool = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker pool =
  (* Drain the queue before honoring the stop flag, so a shutdown
     never strands a submitted task (and its awaiting future). *)
  let rec take () =
    match Queue.take_opt pool.queue with
    | Some task -> Some task
    | None ->
      if pool.stopping then None
      else begin
        Condition.wait pool.qcond pool.qmutex;
        take ()
      end
  in
  let rec loop () =
    Mutex.lock pool.qmutex;
    let task = take () in
    Mutex.unlock pool.qmutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      loop ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <-
      List.init jobs (fun i ->
          Domain.spawn (fun () ->
              (* Name the worker's trace track by pool index.  Pools
                 are created and joined sequentially, so successive
                 pools reuse the same names and their events merge
                 chronologically into one track per index. *)
              Cmo_obs.Obs.set_track (Printf.sprintf "worker-%d" (i + 1));
              Cmo_obs.Obs.with_span ~cat:"worker" "worker" (fun () ->
                  worker pool)));
  pool

let jobs pool = pool.jobs

let run_to_state f =
  match f () with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let submit pool f =
  let fut = { state = Pending; fmutex = Mutex.create (); fcond = Condition.create () } in
  if pool.domains = [] then fut.state <- run_to_state f
  else begin
    let task () =
      let result = run_to_state f in
      Mutex.lock fut.fmutex;
      fut.state <- result;
      Condition.broadcast fut.fcond;
      Mutex.unlock fut.fmutex
    in
    Mutex.lock pool.qmutex;
    Queue.add task pool.queue;
    Condition.signal pool.qcond;
    Mutex.unlock pool.qmutex
  end;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  let rec settled () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fcond fut.fmutex;
      settled ()
    | Done _ | Failed _ -> fut.state
  in
  let result = settled () in
  Mutex.unlock fut.fmutex;
  match result with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map pool f xs =
  let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
  List.map await futures

let shutdown pool =
  Mutex.lock pool.qmutex;
  pool.stopping <- true;
  Condition.broadcast pool.qcond;
  Mutex.unlock pool.qmutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
