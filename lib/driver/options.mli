(** Compilation options: the paper's command-line surface.

    Levels follow the HP-UX convention used throughout the paper:
    - [O1]: optimize only within basic blocks (no global scalar
      optimization, no layout) — the baseline Mcad3 had to use;
    - [O2]: the default — full intraprocedural optimization, strictly
      within routine boundaries;
    - [O4]: cross-module optimization — frontends emit IL object
      files and HLO runs over the whole CMO set at link time.

    Orthogonal flags:
    - [pbo] (+P): use the profile database — block frequencies,
      call-site counts, inline guidance, block positioning, routine
      clustering;
    - [instrument] (+I): insert profile probes and skip optimization
      (the training build);
    - [selectivity]: with [O4]+[pbo], compile only the modules
      containing the top given percent of call sites with CMO
      (section 5); the rest get the [O2]+[pbo] treatment;
    - [tiered]: the paper's multi-layered future work (section 8):
      with selectivity, modules outside the CMO set that the profile
      shows were never executed skip scalar optimization entirely
      (an [O1]-grade compile), leaving three tiers:
      hot -> CMO, warm -> default, cold -> minimal. *)

type level = O1 | O2 | O4

type t = {
  level : level;
  pbo : bool;
  instrument : bool;
  selectivity : float option;  (** Percent of call sites, 0-100. *)
  tiered : bool;  (** Three-layer mode; needs [pbo] and [selectivity]. *)
  machine_memory : int;  (** Modeled bytes for NAIM thresholds. *)
  naim_level : Cmo_naim.Loader.level option;
      (** Force a NAIM level (Figure 5 sweeps); [None] = dynamic
          thresholds. *)
  inline_config : Cmo_hlo.Inline.config option;
      (** Override the level-implied inlining heuristics. *)
  rewrite_limit : int option;  (** Bug isolation (section 6.3). *)
  inline_limit : int option;  (** Bug isolation: max inline operations. *)
  cmo_modules : string list option;
      (** Bug isolation: with [O4], restrict the CMO set to exactly
          these modules (overrides [selectivity]); the rest take the
          default-level path. *)
  jobs : int;
      (** Worker domains for the pipeline's parallel points —
          per-module frontend, per-component link-time HLO,
          per-module codegen (the paper's section-8 parallelization).
          1 = sequential, the default and the oracle; any [jobs]
          produces byte-identical images, objects and cache bytes
          (the determinism suite's headline invariant).  Defaults to
          [$CMO_JOBS] when set, else 1. *)
  check : bool;
      (** Run the between-phase IL verifier ({!Cmo_check.Ilcheck})
          after every transformation of every routine — clone,
          inline, IPA, each scalar pass, cache-served bodies, block
          layout — failing the build with a named
          phase/function/instruction diagnostic on the first broken
          invariant.  Observes only; checked and unchecked builds
          produce identical artifacts.  Defaults to [$CMO_CHECK]
          (any value but empty or [0]) or [cmoc --check]. *)
  trace : string option;
      (** Write a Chrome-trace/Perfetto JSON timeline of the build
          ({!Cmo_obs.Obs}) to this path.  Observational only: traced
          and untraced builds produce byte-identical artifacts, and
          the flag never enters {!cache_fingerprint}.  Defaults to
          [$CMO_TRACE] or [cmoc --trace FILE]. *)
  dist : bool;
      (** WHOPR-style distribution: run link-time CMO partitions in
          isolated [cmoc-worker] processes (up to [jobs] of them)
          instead of worker domains, talking over CMR1-framed pipes
          ({!Distwork}).  Byte-invisible by construction and by test:
          any worker loss, missing worker binary or wire fault
          degrades that partition to local recompute.  Never enters
          {!cache_fingerprint}.  Defaults to [$CMO_DIST] or
          [cmoc --dist]. *)
  workers : string list;
      (** Remote worker endpoints ([host:port], each a
          [cmoc-worker --listen]) the distributed pool dials before
          spawning local processes.  Version-skewed workers are
          refused at handshake and their jobs redone locally; like
          [dist], placement never enters {!cache_fingerprint}.
          Defaults to [$CMO_DIST_WORKERS] (comma-separated) or
          [cmoc --workers]. *)
  dist_timeout : float option;
      (** Read deadline in seconds for every parent-side receive from
          a distributed worker — the build's hang bound ([None] = the
          pool default, 60).  Defaults to [$CMO_DIST_TIMEOUT]. *)
}

(** Process-tree environment defaults, parsed once by {!from_env}.
    Every [CMO_*] knob resolves here so [cmoc], the test helpers and
    the bench campaigns agree on the parse. *)
type env = {
  env_jobs : int;  (** [$CMO_JOBS] when >= 1, else 1. *)
  env_check : bool;  (** [$CMO_CHECK]: any value but unset, [""], ["0"]. *)
  env_trace : string option;  (** [$CMO_TRACE] when non-empty. *)
  env_fuzz_seed : int option;
      (** [$CMO_FUZZ_SEED], else [$QCHECK_SEED] — the shared seed for
          every property-based suite and the fuzz campaign. *)
  env_fault : string option;
      (** [$CMO_FAULT] when non-empty: an {!Cmo_support.Fsio}
          fault-plan spec the driver installs before building
          ([cmoc --fault-plan] overrides it). *)
  env_socket : string option;
      (** [$CMO_SOCKET] when non-empty: the Unix-domain socket path
          [cmocd] listens on and [cmoc --remote] connects to. *)
  env_daemon_jobs : int;
      (** [$CMO_DAEMON_JOBS] when >= 1, else 2: how many build
          requests [cmocd] executes concurrently. *)
  env_queue_max : int;
      (** [$CMO_QUEUE_MAX] when >= 1, else 64: the daemon's admission
          bound — requests beyond this many queued are rejected. *)
  env_dist : bool;
      (** [$CMO_DIST]: any value but unset, [""], ["0"] — distribute
          link-time CMO partitions to worker processes. *)
  env_dist_worker : string option;
      (** [$CMO_DIST_WORKER] when non-empty: path to the
          [cmoc_worker] binary; otherwise it is resolved next to the
          running executable (see {!Distwork.resolve_worker}). *)
  env_dist_workers : string list;
      (** [$CMO_DIST_WORKERS]: comma-separated [host:port] endpoints
          of remote [cmoc-worker --listen] processes; empty when
          unset. *)
  env_dist_timeout : float option;
      (** [$CMO_DIST_TIMEOUT] when a positive float: the distributed
          read deadline in seconds (else the pool default, 60). *)
  env_dist_deadline : float option;
      (** [$CMO_DIST_DEADLINE] when a positive float: the per-job
          straggler bound in seconds — a job still unfinished after
          this long is redone locally even while the worker's
          heartbeats prove it alive.  Unset = no straggler redo. *)
  env_net_fault : string option;
      (** [$CMO_NET_FAULT] when non-empty: a {!Cmo_support.Netio}
          fault-plan spec [cmoc] installs before building.  Installed
          by the parent only — worker and daemon binaries ignore it,
          so the plan models a flaky network as seen from the
          build. *)
  env_cohort : string option;
      (** [$CMO_COHORT] when non-empty: the default cohort name for
          [cmoc profile push/pull --cohort]. *)
  env_flip_threshold : float option;
      (** [$CMO_FLIP_THRESHOLD] when a float in (0, 1]: the default
          would-flip share threshold for [cmoc profile cohort diff]
          (else {!Cmo_profile.Cohort.Diff.default_threshold}). *)
}

val from_env : ?get:(string -> string option) -> unit -> env
(** Parse the environment ([?get] is injectable for tests). *)

val env : env
(** [from_env ()] evaluated at startup; what [base] is built from. *)

val default_jobs : int
(** What [base.jobs] was initialized to: [env.env_jobs]. *)

val default_check : bool
(** What [base.check] was initialized to: [env.env_check]. *)

val o1 : t
val o2 : t
(** No profile. *)

val o2_pbo : t
val o4 : t
(** CMO without profile: the expensive thorough mode. *)

val o4_pbo : t
(** CMO + PBO, full program. *)

val o4_pbo_selective : float -> t
(** CMO + PBO with coarse-grained selectivity at the given percent. *)

val o4_pbo_tiered : float -> t
(** Selective CMO with the three-layer treatment of the remainder. *)

val instrumented : t
(** The +I training build. *)

val to_string : t -> string

val cache_fingerprint : t -> string
(** Canonical rendering of every field that influences generated
    code, for artifact-cache keys.  [machine_memory], [naim_level],
    [jobs], [check], [trace], [dist], [workers] and [dist_timeout]
    are excluded on purpose: they are behaviour-preserving (tested
    invariants), so cached artifacts survive memory-, worker-,
    verifier-, tracing- and distribution-configuration changes. *)

val encode : Cmo_support.Codec.Writer.t -> t -> unit
(** Append the full record (every field, excluded-from-fingerprint
    ones included) to a {!Cmo_support.Codec} writer — the partition
    jobs shipped to [cmoc-worker] processes carry options this way. *)

val decode : Cmo_support.Codec.Reader.t -> t
(** Inverse of {!encode}.
    @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)
