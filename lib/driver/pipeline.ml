module Ilmod = Cmo_il.Ilmod
module Func = Cmo_il.Func
module Instr = Cmo_il.Instr
module Verify = Cmo_il.Verify
module Callgraph = Cmo_il.Callgraph
module Intrinsics = Cmo_il.Intrinsics
module Ilcodec = Cmo_il.Ilcodec
module Fingerprint = Cmo_support.Fingerprint
module Store = Cmo_cache.Store
module Invalidate = Cmo_cache.Invalidate
module Frontend = Cmo_frontend.Frontend
module Db = Cmo_profile.Db
module Probe = Cmo_profile.Probe
module Correlate = Cmo_profile.Correlate
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Hlo = Cmo_hlo.Hlo
module Inline = Cmo_hlo.Inline
module Ipa = Cmo_hlo.Ipa
module Phase = Cmo_hlo.Phase
module Selectivity = Cmo_hlo.Selectivity
module Llo = Cmo_llo.Llo
module Objfile = Cmo_link.Objfile
module Linker = Cmo_link.Linker
module Cluster = Cmo_link.Cluster
module Image = Cmo_link.Image
module Vm = Cmo_vm.Vm

let log_src = Logs.Src.create "cmo.driver" ~doc:"CMO compilation driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type source = { name : string; text : string }

(* Module-level artifact traffic for one build; the store's own
   counters additionally include the per-routine phase cache. *)
type cache_usage = {
  hits : int;  (** Module artifacts served from the store. *)
  misses : int;
  cmo_cached : string list;  (** CMO-set modules taken from the store. *)
  cmo_reoptimized : string list;
      (** CMO-set modules whose link-time optimization actually ran. *)
}

type report = {
  options : Options.t;
  hlo : Hlo.report option;
  loader_stats : Loader.stats option;
  mem_peak : int;
  mem_peak_hlo : int;
  selection : Selectivity.t option;
  llo : Llo.stats;
  frontend_seconds : float;
  hlo_seconds : float;
  llo_seconds : float;
  link_seconds : float;
  total_lines : int;
  cmo_lines : int;
  warm_lines : int;  (* default-level (+O2) lines outside the CMO set *)
  cold_lines : int;  (* tiered mode: never-executed lines, minimal compile *)
  cache : cache_usage option;  (* None when no artifact store was given *)
}

type build = {
  image : Image.t;
  objects : Objfile.t list;
  report : report;
  manifest : Probe.manifest option;
}

exception Compile_error of string

let error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let frontend_one { name; text } =
  match Frontend.compile ~module_name:name text with
  | Ok m -> (
    match Verify.check_module m with
    | [] -> m
    | issues ->
      error "@[<v>IL verification failed in %s:@,%a@]" name
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Verify.pp_issue)
        issues)
  | Error errs ->
    error "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Frontend.pp_error)
      errs

let frontend sources =
  (* Duplicate module names would collide in every downstream table
     (symbols, loader pools, object files); reject them up front. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun { name; _ } ->
      if Hashtbl.mem seen name then
        error "duplicate module name %s among the sources" name
      else Hashtbl.replace seen name ())
    sources;
  let modules = List.map frontend_one sources in
  (match Verify.check_program modules with
  | [] -> ()
  | issues ->
    error "@[<v>IL verification failed:@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Verify.pp_issue)
      issues);
  modules

(* Dynamic call weights for routine clustering, from annotated IL. *)
let cluster_weights modules =
  let weights = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (_, (c : Instr.call)) ->
              if
                (not (Intrinsics.is_intrinsic c.Instr.callee))
                && c.Instr.call_count > 0.0
              then begin
                let key = (f.Func.name, c.Instr.callee) in
                Hashtbl.replace weights key
                  (c.Instr.call_count
                  +. Option.value ~default:0.0 (Hashtbl.find_opt weights key))
              end)
            (Func.site_calls f))
        m.Ilmod.funcs)
    modules;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort compare

let all_func_names modules =
  List.concat_map
    (fun (m : Ilmod.t) -> List.map (fun f -> f.Func.name) m.Ilmod.funcs)
    modules

(* Scan modules outside the CMO set for references into it. *)
let external_context outside_modules =
  let called = Hashtbl.create 64 in
  let stored = Hashtbl.create 64 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call { callee; _ } -> Hashtbl.replace called callee ()
                  | Instr.Store ({ Instr.base; _ }, _) ->
                    Hashtbl.replace stored base ()
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs)
    outside_modules;
  (called, stored)

let llo_module ~mem ~layout stats_acc (m : Ilmod.t) =
  let codes, stats = Llo.compile_module ?mem ~layout m in
  stats_acc :=
    {
      Llo.routines = !stats_acc.Llo.routines + stats.Llo.routines;
      mach_instrs = !stats_acc.Llo.mach_instrs + stats.Llo.mach_instrs;
      spilled_vregs = !stats_acc.Llo.spilled_vregs + stats.Llo.spilled_vregs;
      peephole_rewrites =
        !stats_acc.Llo.peephole_rewrites + stats.Llo.peephole_rewrites;
      layout_changes = !stats_acc.Llo.layout_changes + stats.Llo.layout_changes;
    };
  Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
    ~source_digest:"" codes

let zero_llo_stats =
  {
    Llo.routines = 0;
    mach_instrs = 0;
    spilled_vregs = 0;
    peephole_rewrites = 0;
    layout_changes = 0;
  }

let link_or_fail ?routine_order objects =
  match Linker.link ?routine_order objects with
  | Ok image -> image
  | Error errs ->
    error "@[<v>link failed:@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Linker.pp_error)
      errs

let compile_modules ?profile ?cache (options : Options.t) modules =
  let t0 = Sys.time () in
  let total_lines =
    List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 modules
  in
  (* +I: instrument and build without optimization. *)
  if options.Options.instrument then begin
    let instrumented, manifest = Probe.instrument modules in
    let mem = Memstats.create () in
    let llo_stats = ref zero_llo_stats in
    let objects =
      List.map (llo_module ~mem:(Some mem) ~layout:false llo_stats) instrumented
    in
    let image = link_or_fail objects in
    let t1 = Sys.time () in
    {
      image;
      objects;
      manifest = Some manifest;
      report =
        {
          options;
          hlo = None;
          loader_stats = None;
          mem_peak = Memstats.peak mem;
          mem_peak_hlo = Memstats.peak_hlo mem;
          selection = None;
          llo = !llo_stats;
          frontend_seconds = 0.0;
          hlo_seconds = 0.0;
          llo_seconds = t1 -. t0;
          link_seconds = 0.0;
          total_lines;
          cmo_lines = 0;
          warm_lines = 0;
          cold_lines = 0;
          cache = None;
        };
    }
  end
  else begin
    (* Profile annotation. *)
    (match (options.Options.pbo, profile) with
    | true, Some db -> ignore (Correlate.annotate db modules)
    | true, None -> Correlate.clear modules
    | false, _ -> Correlate.clear modules);
    let mem = Memstats.create () in
    let hlo_report = ref None in
    let loader_stats = ref None in
    let selection = ref None in
    let cmo_lines = ref 0 in
    let warm_lines = ref 0 in
    let cold_lines = ref 0 in
    let cache_hits = ref 0 in
    let cache_misses = ref 0 in
    let cmo_cached = ref [] in
    let cmo_reoptimized = ref [] in
    let hlo_t0 = Sys.time () in
    (* Decide the CMO set and optimize it. *)
    let processed_modules =
      match options.Options.level with
      | Options.O1 -> modules
      | Options.O2 ->
        List.iter
          (fun (m : Ilmod.t) ->
            List.iter
              (fun f -> ignore (Phase.optimize_func ~mem f))
              m.Ilmod.funcs)
          modules;
        modules
      | Options.O4 ->
        let cmo_set, outside =
          match (options.Options.cmo_modules, options.Options.selectivity) with
          | Some names, _ ->
            (* Explicit set: the bug-isolation driver's reduction axis. *)
            List.partition
              (fun (m : Ilmod.t) -> List.mem m.Ilmod.mname names)
              modules
          | None, Some percent when options.Options.pbo ->
            let sel = Selectivity.select ~percent modules in
            selection := Some sel;
            List.partition
              (fun (m : Ilmod.t) ->
                List.mem m.Ilmod.mname sel.Selectivity.cmo_modules)
              modules
          | None, (Some _ | None) -> (modules, [])
        in
        cmo_lines :=
          List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 cmo_set;
        (* The paper, section 5: "The remaining modules bypass HLO
           entirely, and are optimized at the default optimization
           level using PBO."  Under the tiered mode (the section-8
           multi-layered future work), modules the profile never saw
           execute also skip the default-level scalar optimization. *)
        let module_is_cold (m : Ilmod.t) =
          List.for_all
            (fun (f : Func.t) ->
              List.for_all
                (fun (b : Func.block) -> b.Func.freq = 0.0)
                f.Func.blocks)
            m.Ilmod.funcs
        in
        (* Decode a stored module artifact; anything unexpected —
           corrupt bytes, a key collision surfacing as the wrong
           module — degrades to a miss. *)
        let fetch_module store key mname =
          match Store.find store key with
          | None ->
            incr cache_misses;
            None
          | Some bytes -> (
            match Ilcodec.decode_module bytes with
            | m when m.Ilmod.mname = mname ->
              incr cache_hits;
              Some m
            | _ ->
              incr cache_misses;
              None
            | exception Cmo_support.Codec.Reader.Corrupt _ ->
              incr cache_misses;
              None)
        in
        (* The +O2 path outside the CMO set is per-module work keyed
           on the annotated IL alone. *)
        let optimize_outside (m : Ilmod.t) =
          if options.Options.tiered && module_is_cold m then begin
            cold_lines := !cold_lines + Ilmod.src_lines m;
            m
          end
          else begin
            warm_lines := !warm_lines + Ilmod.src_lines m;
            let optimize () =
              List.iter
                (fun f -> ignore (Phase.optimize_func ~mem f))
                m.Ilmod.funcs
            in
            match cache with
            | None ->
              optimize ();
              m
            | Some store -> (
              let key =
                Fingerprint.of_strings [ "o2out1"; Ilcodec.encode_module m ]
              in
              match fetch_module store key m.Ilmod.mname with
              | Some cached -> cached
              | None ->
                optimize ();
                Store.add store key (Ilcodec.encode_module m);
                m)
          end
        in
        let outside = List.map optimize_outside outside in
        if cmo_set = [] then outside
        else begin
          let called, stored = external_context outside in
          (* Run link-time CMO over [subset] (the whole set, or one
             invalidation closure).  The external context is always
             the non-CMO modules: components are closed under calls
             and shared globals, so modules of other components
             cannot observe this subset. *)
          let run_cmo subset =
            let cg = Callgraph.build subset in
            (* Everything that reads module function lists must run
               before registration: the loader takes ownership and
               empties them. *)
            let main_in_set =
              List.exists
                (fun (m : Ilmod.t) ->
                  List.exists (fun f -> f.Func.name = "main") m.Ilmod.funcs)
                subset
            in
            let loader_config =
              {
                Loader.default_config with
                Loader.machine_memory = options.Options.machine_memory;
                forced_level = options.Options.naim_level;
              }
            in
            let loader = Loader.create loader_config mem in
            List.iter (Loader.register_module loader) subset;
            let ipa_context =
              {
                Ipa.externally_called = Hashtbl.mem called;
                externally_stored = Hashtbl.mem stored;
                entry = (if main_in_set then Some "main" else None);
                keep_exported = true;
              }
            in
            let base_options = Hlo.o4_options ~profile:options.Options.pbo in
            let inline_config =
              let config =
                match options.Options.inline_config with
                | Some c -> c
                | None -> (
                  match base_options.Hlo.inline with
                  | Some c -> c
                  | None -> Inline.default_config)
              in
              { config with Inline.operation_limit = options.Options.inline_limit }
            in
            let hot_filter =
              Option.map
                (fun sel name -> Selectivity.is_hot_function sel name)
                !selection
            in
            let hlo_options =
              {
                base_options with
                Hlo.inline = Some inline_config;
                hot_filter;
                rewrite_limit = options.Options.rewrite_limit;
                phase_cache = cache;
              }
            in
            let report = Hlo.run loader cg ~ipa_context hlo_options in
            hlo_report := Some report;
            let optimized = Loader.extract_modules loader in
            loader_stats := Some (Loader.stats loader);
            Loader.close loader;
            optimized
          in
          match cache with
          | None -> run_cmo cmo_set @ outside
          | Some store ->
            let all_names =
              List.map (fun (m : Ilmod.t) -> m.Ilmod.mname) cmo_set
            in
            let part = Invalidate.compute cmo_set in
            (* Snapshot digests and function lists before any loader
               registration empties the modules. *)
            let il_fp = Hashtbl.create 16 in
            let mod_funcs = Hashtbl.create 16 in
            List.iter
              (fun (m : Ilmod.t) ->
                Hashtbl.replace il_fp m.Ilmod.mname
                  (Fingerprint.of_strings [ Ilcodec.encode_module m ]);
                Hashtbl.replace mod_funcs m.Ilmod.mname
                  (List.map
                     (fun (f : Func.t) -> (f.Func.name, f.Func.linkage))
                     m.Ilmod.funcs))
              cmo_set;
            let has_root names =
              List.exists
                (fun n ->
                  List.exists
                    (fun (fname, linkage) ->
                      fname = "main" || linkage = Func.Exported
                      || Hashtbl.mem called fname)
                    (Option.value ~default:[] (Hashtbl.find_opt mod_funcs n)))
                names
            in
            let roots_exist = has_root all_names in
            (* Per-component caching is exact only when every global
               decision decomposes by component: profile-guided
               cloning uses program-wide counters and name allocation,
               and the bug-isolation operation limits are program-wide
               budgets, so those modes fall back to whole-set keys
               (all-or-nothing reuse).  Likewise the degenerate
               rootless program, where IPA's keep-everything guard is
               not component-local. *)
            let decomposable =
              (not options.Options.pbo)
              && options.Options.inline_limit = None
              && options.Options.rewrite_limit = None
              && roots_exist
            in
            let opt_fp = Options.cache_fingerprint options in
            let sel_fp =
              match !selection with
              | None -> "nosel"
              | Some sel ->
                Fingerprint.of_strings
                  (("sel" :: sel.Selectivity.cmo_modules)
                  @ ("|" :: sel.Selectivity.hot_functions))
            in
            (* The key of a module: its component's (name, digest)
               pairs plus the slice of the external context its
               component can observe — external callers pin IPA
               argument lattices and keep functions alive; external
               stores block const-global folding. *)
            let comp_parts_memo = Hashtbl.create 8 in
            let component_parts comp =
              let head = List.hd comp in
              match Hashtbl.find_opt comp_parts_memo head with
              | Some parts -> parts
              | None ->
                let ext_called =
                  List.concat_map
                    (fun n ->
                      Option.value ~default:[] (Hashtbl.find_opt mod_funcs n)
                      |> List.filter_map (fun (fname, _) ->
                             if Hashtbl.mem called fname then Some fname
                             else None))
                    comp
                  |> List.sort String.compare
                in
                let ext_stored =
                  List.concat_map (Invalidate.global_refs part) comp
                  |> List.sort_uniq String.compare
                  |> List.filter (Hashtbl.mem stored)
                in
                let parts =
                  List.concat_map
                    (fun n ->
                      [ n; Option.value ~default:"" (Hashtbl.find_opt il_fp n) ])
                    comp
                  @ ("|called" :: ext_called)
                  @ ("|stored" :: ext_stored)
                in
                Hashtbl.replace comp_parts_memo head parts;
                parts
            in
            let keys = Hashtbl.create 16 in
            List.iter
              (fun name ->
                let comp =
                  if decomposable then Invalidate.component part name
                  else all_names
                in
                Hashtbl.replace keys name
                  (Fingerprint.of_strings
                     ("cmo1" :: opt_fp :: sel_fp :: name :: "|comp"
                     :: component_parts comp)))
              all_names;
            let fetched = Hashtbl.create 16 in
            let missing =
              List.filter
                (fun name ->
                  match fetch_module store (Hashtbl.find keys name) name with
                  | Some cached ->
                    Hashtbl.replace fetched name cached;
                    false
                  | None -> true)
                all_names
            in
            let store_results optimized =
              List.iter
                (fun (m' : Ilmod.t) ->
                  match Hashtbl.find_opt keys m'.Ilmod.mname with
                  | Some key -> Store.add store key (Ilcodec.encode_module m')
                  | None -> ())
                optimized
            in
            if missing = [] then begin
              (* Every artifact current: the link step skips HLO
                 entirely. *)
              cmo_cached := all_names;
              List.map (Hashtbl.find fetched) all_names @ outside
            end
            else begin
              let rerun_names =
                if decomposable then Invalidate.closure part ~changed:missing
                else all_names
              in
              if List.length rerun_names = List.length all_names then begin
                cmo_reoptimized := all_names;
                let optimized = run_cmo cmo_set in
                store_results optimized;
                optimized @ outside
              end
              else begin
                let rerun_set =
                  List.filter
                    (fun (m : Ilmod.t) -> List.mem m.Ilmod.mname rerun_names)
                    cmo_set
                in
                cmo_reoptimized := rerun_names;
                cmo_cached :=
                  List.filter
                    (fun n -> not (List.mem n rerun_names))
                    all_names;
                let optimized =
                  if has_root rerun_names then run_cmo rerun_set
                  else
                    (* A rootless closure (while roots exist
                       elsewhere): the full run's IPA removes every
                       one of its functions as unreachable, so the
                       re-optimized form is just the empty-bodied
                       modules — running HLO here would instead hit
                       IPA's keep-everything guard. *)
                    List.map
                      (fun (m : Ilmod.t) -> { m with Ilmod.funcs = [] })
                      rerun_set
                in
                store_results optimized;
                let opt_tbl = Hashtbl.create 16 in
                List.iter
                  (fun (m' : Ilmod.t) ->
                    Hashtbl.replace opt_tbl m'.Ilmod.mname m')
                  optimized;
                List.map
                  (fun name ->
                    match Hashtbl.find_opt opt_tbl name with
                    | Some m' -> m'
                    | None -> Hashtbl.find fetched name)
                  all_names
                @ outside
              end
            end
        end
    in
    let hlo_t1 = Sys.time () in
    Log.info (fun m ->
        m "%s: hlo %.3fs, cmo %d/%d lines" (Options.to_string options)
          (hlo_t1 -. hlo_t0) !cmo_lines total_lines);
    (* Code generation: sequential (with memory accounting) or across
       domains. *)
    let llo_stats = ref zero_llo_stats in
    let layout = options.Options.pbo && options.Options.level <> Options.O1 in
    let objects =
      if options.Options.parallel_codegen > 1 then begin
        let grouped, stats =
          Llo.compile_modules_parallel ~layout
            ~domains:options.Options.parallel_codegen processed_modules
        in
        llo_stats := stats;
        List.map
          (fun ((m : Ilmod.t), codes) ->
            Objfile.of_code ~module_name:m.Ilmod.mname
              ~globals:m.Ilmod.globals ~source_digest:"" codes)
          grouped
      end
      else
        List.map (llo_module ~mem:(Some mem) ~layout llo_stats) processed_modules
    in
    let llo_t1 = Sys.time () in
    (* Link, clustering routines when profiled. *)
    let routine_order =
      if options.Options.pbo then begin
        let weights = cluster_weights processed_modules in
        if weights = [] then None
        else
          Some
            (Cluster.order ~names:(all_func_names processed_modules) ~weights)
      end
      else None
    in
    let image = link_or_fail ?routine_order objects in
    let link_t1 = Sys.time () in
    Log.info (fun m ->
        m "%s: llo %.3fs, link %.3fs, %d instrs"
          (Options.to_string options) (llo_t1 -. hlo_t1) (link_t1 -. llo_t1)
          (Array.length image.Image.code));
    {
      image;
      objects;
      manifest = None;
      report =
        {
          options;
          hlo = !hlo_report;
          loader_stats = !loader_stats;
          mem_peak = Memstats.peak mem;
          mem_peak_hlo = Memstats.peak_hlo mem;
          selection = !selection;
          llo = !llo_stats;
          frontend_seconds = 0.0;
          hlo_seconds = hlo_t1 -. hlo_t0;
          llo_seconds = llo_t1 -. hlo_t1;
          link_seconds = link_t1 -. llo_t1;
          total_lines;
          cmo_lines = !cmo_lines;
          warm_lines = !warm_lines;
          cold_lines = !cold_lines;
          cache =
            Option.map
              (fun _ ->
                {
                  hits = !cache_hits;
                  misses = !cache_misses;
                  cmo_cached = !cmo_cached;
                  cmo_reoptimized = !cmo_reoptimized;
                })
              cache;
        };
    }
  end

let compile ?profile ?cache options sources =
  let t0 = Sys.time () in
  let modules = frontend sources in
  let t1 = Sys.time () in
  let build = compile_modules ?profile ?cache options modules in
  { build with report = { build.report with frontend_seconds = t1 -. t0 } }

let run ?input ?fuel ?attribute build = Vm.run ?input ?fuel ?attribute build.image

let train ?(inputs = [ [||] ]) sources =
  let build = compile Options.instrumented sources in
  let manifest =
    match build.manifest with
    | Some m -> m
    | None -> error "instrumented build produced no manifest"
  in
  let db = Db.create () in
  List.iter
    (fun input ->
      let outcome = Vm.run ~input build.image in
      Probe.record_counters manifest outcome.Vm.probes db)
    inputs;
  db

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s" (Options.to_string r.options);
  Format.fprintf ppf "@,lines: %d total, %d in CMO set%s" r.total_lines
    r.cmo_lines
    (if r.warm_lines + r.cold_lines > 0 then
       Printf.sprintf " (%d warm, %d cold)" r.warm_lines r.cold_lines
     else "");
  Format.fprintf ppf
    "@,time: frontend %.3fs, hlo %.3fs, llo %.3fs, link %.3fs"
    r.frontend_seconds r.hlo_seconds r.llo_seconds r.link_seconds;
  Format.fprintf ppf "@,memory peak: %d bytes (hlo %d)" r.mem_peak r.mem_peak_hlo;
  Format.fprintf ppf "@,llo: %d routines, %d instrs, %d spills, %d peeps"
    r.llo.Llo.routines r.llo.Llo.mach_instrs r.llo.Llo.spilled_vregs
    r.llo.Llo.peephole_rewrites;
  (match r.hlo with
  | Some h -> Format.fprintf ppf "@,%a" Hlo.pp_report h
  | None -> ());
  (match r.cache with
  | Some c ->
    Format.fprintf ppf
      "@,cache: %d module hits, %d misses; %d cmo cached, %d re-optimized"
      c.hits c.misses
      (List.length c.cmo_cached)
      (List.length c.cmo_reoptimized)
  | None -> ());
  (match r.selection with
  | Some s -> Format.fprintf ppf "@,%a" Selectivity.pp s
  | None -> ());
  Format.fprintf ppf "@]"
