module Ilmod = Cmo_il.Ilmod
module Func = Cmo_il.Func
module Instr = Cmo_il.Instr
module Verify = Cmo_il.Verify
module Callgraph = Cmo_il.Callgraph
module Intrinsics = Cmo_il.Intrinsics
module Ilcodec = Cmo_il.Ilcodec
module Fingerprint = Cmo_support.Fingerprint
module Fsio = Cmo_support.Fsio
module Store = Cmo_cache.Store
module Invalidate = Cmo_cache.Invalidate
module Frontend = Cmo_frontend.Frontend
module Db = Cmo_profile.Db
module Probe = Cmo_profile.Probe
module Correlate = Cmo_profile.Correlate
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Hlo = Cmo_hlo.Hlo
module Inline = Cmo_hlo.Inline
module Ipa = Cmo_hlo.Ipa
module Phase = Cmo_hlo.Phase
module Selectivity = Cmo_hlo.Selectivity
module Llo = Cmo_llo.Llo
module Objfile = Cmo_link.Objfile
module Linker = Cmo_link.Linker
module Cluster = Cmo_link.Cluster
module Image = Cmo_link.Image
module Vm = Cmo_vm.Vm
module Ilcheck = Cmo_check.Ilcheck
module Obs = Cmo_obs.Obs
module Json = Cmo_obs.Json

let log_src = Logs.Src.create "cmo.driver" ~doc:"CMO compilation driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type source = { name : string; text : string }

(* Module-level artifact traffic for one build; the store's own
   counters additionally include the per-routine phase cache. *)
type cache_usage = {
  hits : int;  (** Module artifacts served from the local store. *)
  misses : int;  (** Lookups served by neither local store nor remote. *)
  remote_hits : int;
      (** Module artifacts fetched from the remote cache (and adopted
          into the local store). *)
  remote_misses : int;
      (** Remote lookups that missed — failed or disabled remotes
          count here too, never as errors. *)
  cmo_cached : string list;  (** CMO-set modules taken from the store. *)
  cmo_reoptimized : string list;
      (** CMO-set modules whose link-time optimization actually ran. *)
}

type report = {
  options : Options.t;
  hlo : Hlo.report option;
  loader_stats : Loader.stats option;
  mem_peak : int;
  mem_peak_hlo : int;
  selection : Selectivity.t option;
  llo : Llo.stats;
  frontend_seconds : float;
  hlo_seconds : float;
  llo_seconds : float;
  link_seconds : float;
  (* cpu-seconds above (process-wide, all domains); wall-clock below
     for the three parallelizable phases — their ratio is the
     realized parallel speedup. *)
  frontend_wall_seconds : float;
  hlo_wall_seconds : float;
  llo_wall_seconds : float;
  workers_used : int;
  total_lines : int;
  cmo_lines : int;
  warm_lines : int;  (* default-level (+O2) lines outside the CMO set *)
  cold_lines : int;  (* tiered mode: never-executed lines, minimal compile *)
  cache : cache_usage option;  (* None when no artifact store was given *)
  obs : Obs.summary option;  (* trace summary; None when not tracing *)
}

(* The one definition of the cpu/wall arithmetic: [par_speedup],
   [report_to_json] and the bench tables all read these accessors. *)
let phase_cpu_seconds r = r.frontend_seconds +. r.hlo_seconds +. r.llo_seconds

let phase_wall_seconds r =
  r.frontend_wall_seconds +. r.hlo_wall_seconds +. r.llo_wall_seconds

let par_speedup r =
  let cpu = phase_cpu_seconds r in
  let wall = phase_wall_seconds r in
  if wall <= 0.0 || cpu <= 0.0 then 1.0 else cpu /. wall

type build = {
  image : Image.t;
  objects : Objfile.t list;
  report : report;
  manifest : Probe.manifest option;
}

exception Compile_error of string

let error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let frontend_one_inner { name; text } =
  match Frontend.compile ~module_name:name text with
  | Ok m -> (
    match Verify.check_module m with
    | [] -> m
    | issues ->
      error "@[<v>IL verification failed in %s:@,%a@]" name
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Verify.pp_issue)
        issues)
  | Error errs ->
    error "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Frontend.pp_error)
      errs

let frontend_one src =
  Obs.with_span ~cat:"frontend" src.name (fun () -> frontend_one_inner src)

let frontend ?(jobs = 1) sources =
  (* Duplicate module names would collide in every downstream table
     (symbols, loader pools, object files); reject them up front. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun { name; _ } ->
      if Hashtbl.mem seen name then
        error "duplicate module name %s among the sources" name
      else Hashtbl.replace seen name ())
    sources;
  (* Per-module lowering is independent; Parwork keeps result order
     and raises the first error by input order, like List.map. *)
  let modules =
    if jobs > 1 then
      Parwork.with_pool ~jobs (fun pool -> Parwork.map pool frontend_one sources)
    else List.map frontend_one sources
  in
  (match Verify.check_program modules with
  | [] -> ()
  | issues ->
    error "@[<v>IL verification failed:@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Verify.pp_issue)
      issues);
  modules

(* Dynamic call weights for routine clustering, from annotated IL. *)
let cluster_weights modules =
  let weights = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (_, (c : Instr.call)) ->
              if
                (not (Intrinsics.is_intrinsic c.Instr.callee))
                && c.Instr.call_count > 0.0
              then begin
                let key = (f.Func.name, c.Instr.callee) in
                Hashtbl.replace weights key
                  (c.Instr.call_count
                  +. Option.value ~default:0.0 (Hashtbl.find_opt weights key))
              end)
            (Func.site_calls f))
        m.Ilmod.funcs)
    modules;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort compare

let all_func_names modules =
  List.concat_map
    (fun (m : Ilmod.t) -> List.map (fun f -> f.Func.name) m.Ilmod.funcs)
    modules

(* Scan modules outside the CMO set for references into it. *)
let external_context outside_modules =
  let called = Hashtbl.create 64 in
  let stored = Hashtbl.create 64 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call { callee; _ } -> Hashtbl.replace called callee ()
                  | Instr.Store ({ Instr.base; _ }, _) ->
                    Hashtbl.replace stored base ()
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs)
    outside_modules;
  (called, stored)

let add_llo_stats a b =
  {
    Llo.routines = a.Llo.routines + b.Llo.routines;
    mach_instrs = a.Llo.mach_instrs + b.Llo.mach_instrs;
    spilled_vregs = a.Llo.spilled_vregs + b.Llo.spilled_vregs;
    peephole_rewrites = a.Llo.peephole_rewrites + b.Llo.peephole_rewrites;
    layout_changes = a.Llo.layout_changes + b.Llo.layout_changes;
  }

let merge_loader_stats (a : Loader.stats) (b : Loader.stats) =
  {
    Loader.acquires = a.Loader.acquires + b.Loader.acquires;
    cache_hits = a.Loader.cache_hits + b.Loader.cache_hits;
    uncompactions = a.Loader.uncompactions + b.Loader.uncompactions;
    repo_loads = a.Loader.repo_loads + b.Loader.repo_loads;
    compactions = a.Loader.compactions + b.Loader.compactions;
    offloads = a.Loader.offloads + b.Loader.offloads;
    symtab_compactions = a.Loader.symtab_compactions + b.Loader.symtab_compactions;
  }

let llo_module ?check ~mem ~layout stats_acc (m : Ilmod.t) =
  let codes, stats = Llo.compile_module ?mem ?check ~layout m in
  stats_acc := add_llo_stats !stats_acc stats;
  Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
    ~source_digest:"" codes

let zero_llo_stats =
  {
    Llo.routines = 0;
    mach_instrs = 0;
    spilled_vregs = 0;
    peephole_rewrites = 0;
    layout_changes = 0;
  }

let link_or_fail ?routine_order objects =
  match Linker.link ?routine_order objects with
  | Ok image -> image
  | Error errs ->
    error "@[<v>link failed:@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Linker.pp_error)
      errs

(* --- the between-phase verifier (Options.check) ------------------- *)

let render_violations vs =
  Format.asprintf "@[<v>IL verification failed:@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Ilcheck.pp_violation)
    vs

(* Trace summary for the report, captured while the sink is live. *)
let obs_summary () = if Obs.enabled () then Some (Obs.summary ()) else None

(* A domain-safe lazy.  Checker environments are shared read-only
   across the worker pool, and [Lazy.force] raises [Undefined] when
   two domains race to force the same suspension — so memoize behind
   a mutex instead. *)
let memo_locked f =
  let m = Mutex.create () in
  let cell = ref None in
  fun () ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) @@ fun () ->
    match !cell with
    | Some v -> v
    | None ->
      let v = f () in
      cell := Some v;
      v

let compile_modules_inner ?profile ?cache ?naim_repo ?remote
    (options : Options.t) modules =
  let jobs = max 1 options.Options.jobs in
  (* Checker factory: [None] when [check] is off, so the optimizers
     skip the hook entirely; environments are deferred (memoized
     thunks) because snapshots cost a pass over the program. *)
  let checker_of env_fn =
    if not options.Options.check then None
    else
      Some (fun ~phase f -> Ilcheck.check_func_exn ~env:(env_fn ()) ~phase f)
  in
  let t0 = Sys.time () in
  let w0 = Unix.gettimeofday () in
  let total_lines =
    List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 modules
  in
  (* +I: instrument and build without optimization.  Probe numbering
     is a global sequence, so this path stays sequential. *)
  if options.Options.instrument then begin
    let instrumented, manifest = Probe.instrument modules in
    let mem = Memstats.create () in
    let llo_stats = ref zero_llo_stats in
    let objects =
      List.map (llo_module ~mem:(Some mem) ~layout:false llo_stats) instrumented
    in
    let image = link_or_fail objects in
    let t1 = Sys.time () in
    let w1 = Unix.gettimeofday () in
    {
      image;
      objects;
      manifest = Some manifest;
      report =
        {
          options;
          hlo = None;
          loader_stats = None;
          mem_peak = Memstats.peak mem;
          mem_peak_hlo = Memstats.peak_hlo mem;
          selection = None;
          llo = !llo_stats;
          frontend_seconds = 0.0;
          hlo_seconds = 0.0;
          llo_seconds = t1 -. t0;
          link_seconds = 0.0;
          frontend_wall_seconds = 0.0;
          hlo_wall_seconds = 0.0;
          llo_wall_seconds = w1 -. w0;
          workers_used = 1;
          total_lines;
          cmo_lines = 0;
          warm_lines = 0;
          cold_lines = 0;
          cache = None;
          obs = obs_summary ();
        };
    }
  end
  else begin
    (* Profile annotation. *)
    (match (options.Options.pbo, profile) with
    | true, Some db -> ignore (Correlate.annotate db modules)
    | true, None -> Correlate.clear modules
    | false, _ -> Correlate.clear modules);
    (* The whole-program view as the frontends delivered it: valid
       for every check until HLO starts adding and removing
       functions. *)
    let snapshot_env = memo_locked (fun () -> Ilcheck.env_of_modules modules) in
    let mem = Memstats.create () in
    let hlo_report = ref None in
    let loader_stats = ref None in
    let selection = ref None in
    let cmo_lines = ref 0 in
    let warm_lines = ref 0 in
    let cold_lines = ref 0 in
    let cache_hits = ref 0 in
    let cache_misses = ref 0 in
    let remote_hits = ref 0 in
    let remote_misses = ref 0 in
    (* WHOPR-style distribution: one worker pool per build — remote
       [--workers] endpoints dialed on demand, local processes spawned
       on demand.  A missing worker binary (with no endpoints)
       degrades the whole build to in-process execution, never an
       error — [dist] is a behaviour-preserving knob like [jobs]. *)
    let dist_pool =
      if options.Options.dist && options.Options.level = Options.O4 then
        match
          Distwork.create_pool ~workers:options.Options.workers
            ?timeout_s:options.Options.dist_timeout ()
        with
        | pool -> Some pool
        | exception Distwork.Unavailable msg ->
          Log.warn (fun m -> m "dist: %s; building in-process" msg);
          None
      else None
    in
    let cmo_cached = ref [] in
    let cmo_reoptimized = ref [] in
    let hlo_t0 = Sys.time () in
    let hlo_w0 = Unix.gettimeofday () in
    (* Decide the CMO set and optimize it. *)
    let processed_modules =
      Fun.protect
        ~finally:(fun () -> Option.iter Distwork.close_pool dist_pool)
      @@ fun () ->
      Obs.with_span ~cat:"stage" "hlo" @@ fun () ->
      match options.Options.level with
      | Options.O1 -> modules
      | Options.O2 ->
        List.iter
          (fun (m : Ilmod.t) ->
            List.iter
              (fun f ->
                ignore
                  (Phase.optimize_func ~mem ?check:(checker_of snapshot_env) f))
              m.Ilmod.funcs)
          modules;
        modules
      | Options.O4 ->
        let cmo_set, outside =
          match (options.Options.cmo_modules, options.Options.selectivity) with
          | Some names, _ ->
            (* Explicit set: the bug-isolation driver's reduction axis. *)
            List.partition
              (fun (m : Ilmod.t) -> List.mem m.Ilmod.mname names)
              modules
          | None, Some percent when options.Options.pbo ->
            let sel = Selectivity.select ~percent modules in
            selection := Some sel;
            List.partition
              (fun (m : Ilmod.t) ->
                List.mem m.Ilmod.mname sel.Selectivity.cmo_modules)
              modules
          | None, (Some _ | None) -> (modules, [])
        in
        cmo_lines :=
          List.fold_left (fun acc m -> acc + Ilmod.src_lines m) 0 cmo_set;
        (* The paper, section 5: "The remaining modules bypass HLO
           entirely, and are optimized at the default optimization
           level using PBO."  Under the tiered mode (the section-8
           multi-layered future work), modules the profile never saw
           execute also skip the default-level scalar optimization. *)
        let module_is_cold (m : Ilmod.t) =
          List.for_all
            (fun (f : Func.t) ->
              List.for_all
                (fun (b : Func.block) -> b.Func.freq = 0.0)
                f.Func.blocks)
            m.Ilmod.funcs
        in
        (* Decode a stored module artifact; anything unexpected —
           corrupt bytes, a key collision surfacing as the wrong
           module — degrades to a miss. *)
        let decode_artifact bytes mname =
          match Ilcodec.decode_module bytes with
          | m when m.Ilmod.mname = mname -> Some m
          | _ -> None
          | exception Cmo_support.Codec.Reader.Corrupt _ -> None
        in
        (* Publish an artifact to the remote cache; the remote's own
           wrapper absorbs failures (a dead daemon must not fail the
           build). *)
        let remote_put key bytes =
          match remote with
          | Some r -> r.Distwork.remote_put key bytes
          | None -> ()
        in
        (* On a local non-hit, consult the remote cache; a validated
           remote artifact is adopted into the local store so the next
           build hits locally.  All remote traffic happens on the
           serial WPA path (the missing-scan and the outside sweep),
           so its effect on local store bytes is independent of
           [jobs]. *)
        let remote_fetch store key mname =
          match remote with
          | None -> None
          | Some r -> (
            match r.Distwork.remote_get key with
            | None ->
              incr remote_misses;
              Obs.tick "cache.module" "remote_misses" 1;
              None
            | Some bytes -> (
              match decode_artifact bytes mname with
              | Some m ->
                Store.add store key bytes;
                incr remote_hits;
                Obs.tick "cache.module" "remote_hits" 1;
                Some m
              | None ->
                incr remote_misses;
                Obs.tick "cache.module" "remote_misses" 1;
                None))
        in
        let fetch_module store key mname =
          match Option.bind (Store.find store key) (fun bytes ->
                    decode_artifact bytes mname) with
          | Some m ->
            incr cache_hits;
            Obs.tick "cache.module" "hits" 1;
            Some m
          | None -> (
            match remote_fetch store key mname with
            | Some m -> Some m
            | None ->
              incr cache_misses;
              Obs.tick "cache.module" "misses" 1;
              None)
        in
        (* The +O2 path outside the CMO set is per-module work keyed
           on the annotated IL alone. *)
        let optimize_outside (m : Ilmod.t) =
          if options.Options.tiered && module_is_cold m then begin
            cold_lines := !cold_lines + Ilmod.src_lines m;
            m
          end
          else begin
            warm_lines := !warm_lines + Ilmod.src_lines m;
            let optimize () =
              List.iter
                (fun f ->
                  ignore
                    (Phase.optimize_func ~mem ?check:(checker_of snapshot_env)
                       f))
                m.Ilmod.funcs
            in
            match cache with
            | None ->
              optimize ();
              m
            | Some store -> (
              let key =
                Fingerprint.of_strings [ "o2out1"; Ilcodec.encode_module m ]
              in
              match fetch_module store key m.Ilmod.mname with
              | Some cached -> cached
              | None ->
                optimize ();
                let bytes = Ilcodec.encode_module m in
                Store.add store key bytes;
                remote_put key bytes;
                m)
          end
        in
        let outside = List.map optimize_outside outside in
        (* What link-time CMO may reference beyond its own loader:
           the non-CMO modules' functions and globals.  Snapshot once;
           component workers share it read-only. *)
        let outside_env = memo_locked (fun () -> Ilcheck.env_of_modules outside) in
        if cmo_set = [] then outside
        else begin
          let called, stored = external_context outside in
          let all_names =
            List.map (fun (m : Ilmod.t) -> m.Ilmod.mname) cmo_set
          in
          let by_name = Hashtbl.create 16 in
          List.iter
            (fun (m : Ilmod.t) -> Hashtbl.replace by_name m.Ilmod.mname m)
            cmo_set;
          (* Snapshot function lists before any loader registration
             empties the modules. *)
          let mod_funcs = Hashtbl.create 16 in
          List.iter
            (fun (m : Ilmod.t) ->
              Hashtbl.replace mod_funcs m.Ilmod.mname
                (List.map
                   (fun (f : Func.t) -> (f.Func.name, f.Func.linkage))
                   m.Ilmod.funcs))
            cmo_set;
          let has_root names =
            List.exists
              (fun n ->
                List.exists
                  (fun (fname, linkage) ->
                    fname = "main" || linkage = Func.Exported
                    || Hashtbl.mem called fname)
                  (Option.value ~default:[] (Hashtbl.find_opt mod_funcs n)))
              names
          in
          let roots_exist = has_root all_names in
          (* Per-component treatment (caching and parallelism alike)
             is exact only when every global decision decomposes by
             component: profile-guided cloning uses program-wide
             counters and name allocation, and the bug-isolation
             operation limits are program-wide budgets, so those
             modes fall back to whole-set, sequential runs.  Likewise
             the degenerate rootless program, where IPA's
             keep-everything guard is not component-local. *)
          let decomposable =
            (not options.Options.pbo)
            && options.Options.inline_limit = None
            && options.Options.rewrite_limit = None
            && roots_exist
          in
          (* Run link-time CMO over [subset] (the whole set, or one
             component) — the exact code a [cmoc-worker] process runs
             ({!Distwork.optimize_subset}), which is what keeps
             distribution byte-invisible.  The external context is
             always the non-CMO modules: components are closed under
             calls and shared globals, so modules of other components
             cannot observe this subset. *)
          let hot_filter =
            Option.map
              (fun sel name -> Selectivity.is_hot_function sel name)
              !selection
          in
          let run_cmo ?phase_cache ~mem subset =
            Distwork.optimize_subset ?phase_cache ?naim_repo ?hot_filter
              ~check_base:outside_env ~options
              ~externally_called:(Hashtbl.mem called)
              ~externally_stored:(Hashtbl.mem stored) ~mem subset
          in
          (* A partition job carries everything the serial WPA step
             computed for this subset: the encoded modules, the
             external-context slices, the hot-function selection and
             the full option record. *)
          let job_of subset =
            {
              Distwork.job_options = options;
              job_modules = List.map Ilcodec.encode_module subset;
              job_called =
                Hashtbl.fold (fun k () acc -> k :: acc) called []
                |> List.sort String.compare;
              job_stored =
                Hashtbl.fold (fun k () acc -> k :: acc) stored []
                |> List.sort String.compare;
              job_hot =
                Option.map
                  (fun sel -> sel.Selectivity.hot_functions)
                  !selection;
              job_phase_cache = false (* run_job decides *);
            }
          in
          (* Optimize a subset on a pooled worker process; the result
             additionally carries the worker's own encoding of each
             optimized module, stored verbatim so the worker's encoder
             defines the artifact bytes.  Raises [Worker_lost]. *)
          let run_dist pool ?phase_cache ~mem subset =
            let payload = Distwork.run_job pool ?phase_cache (job_of subset) in
            let precoded =
              List.map
                (fun bytes -> (Ilcodec.decode_module bytes, bytes))
                payload.Distwork.done_modules
            in
            Memstats.merge mem
              (Distwork.memstats_of_summary payload.Distwork.done_mem);
            ( List.map fst precoded,
              payload.Distwork.done_report,
              payload.Distwork.done_lstats,
              List.map
                (fun ((m : Ilmod.t), bytes) -> (m.Ilmod.mname, bytes))
                precoded )
          in
          let record_hlo (report, lstats) =
            hlo_report :=
              Some
                (match !hlo_report with
                | None -> report
                | Some r -> Hlo.merge_reports r report);
            loader_stats :=
              Some
                (match !loader_stats with
                | None -> lstats
                | Some s -> merge_loader_stats s lstats)
          in
          (* Per-component execution: each component runs in its own
             loader and accountant (and store transaction when
             caching) on the worker pool.  Results, reports,
             accountants and transactions merge in deterministic
             component order after the join, so every artifact — and
             every cache byte — is independent of [jobs].  Whenever a
             store is attached this is the code path at every job
             count, j=1 included: the transaction logs, not the
             interleaving, decide what the store sees. *)
          let phase_cache_of txn =
            Option.map
              (fun txn ->
                { Hlo.pc_find = Store.txn_find txn; pc_add = Store.txn_add txn })
              txn
          in
          let run_components ~txns comps_names =
            let comps =
              List.map
                (fun comp ->
                  let txn =
                    if txns then Option.map Store.txn_begin cache else None
                  in
                  (List.map (Hashtbl.find by_name) comp, has_root comp, txn))
                comps_names
            in
            let results =
              Parwork.with_pool ~jobs (fun pool ->
                  Parwork.map pool
                    (fun (subset, rooted, txn) ->
                      Obs.with_span ~cat:"component"
                        (List.hd subset).Ilmod.mname
                      @@ fun () ->
                      if not rooted then
                        (* A rootless component (while roots exist
                           elsewhere): the whole-set run's IPA removes
                           every one of its functions as unreachable,
                           so the optimized form is just the
                           empty-bodied modules — running HLO here
                           would instead hit IPA's keep-everything
                           guard. *)
                        ( List.map
                            (fun (m : Ilmod.t) -> { m with Ilmod.funcs = [] })
                            subset,
                          None,
                          Memstats.create (),
                          txn,
                          [] )
                      else begin
                        let local txn =
                          let wmem = Memstats.create () in
                          let optimized, report, lstats =
                            run_cmo
                              ?phase_cache:(phase_cache_of txn)
                              ~mem:wmem subset
                          in
                          (optimized, Some (report, lstats), wmem, txn, [])
                        in
                        match dist_pool with
                        | None -> local txn
                        | Some dpool -> (
                          match
                            let wmem = Memstats.create () in
                            let optimized, report, lstats, precoded =
                              run_dist dpool
                                ?phase_cache:(phase_cache_of txn)
                                ~mem:wmem subset
                            in
                            (optimized, Some (report, lstats), wmem, txn,
                             precoded)
                          with
                          | result -> result
                          | exception Distwork.Worker_lost ->
                            (* The partition's worker is gone; its
                               transaction holds a partial op log that
                               must never commit.  Abandon it and redo
                               the component locally on a fresh one,
                               whose log then matches the oracle's
                               exactly. *)
                            let txn =
                              match txn with
                              | Some _ -> Option.map Store.txn_begin cache
                              | None -> None
                            in
                            local txn)
                      end)
                    comps)
            in
            (* The transaction each component actually used travels in
               its result (a lost worker's replacement transaction is
               the one to commit, not the abandoned original). *)
            List.iter
              (fun (_, stats, wmem, txn, _) ->
                Memstats.merge mem wmem;
                Option.iter record_hlo stats;
                Option.iter Store.txn_commit txn)
              results;
            ( List.concat_map (fun (optimized, _, _, _, _) -> optimized) results,
              List.concat_map (fun (_, _, _, _, precoded) -> precoded) results
            )
          in
          (* The whole-set (non-decomposable) run: program-wide
             decisions — profile-guided cloning counters, the
             bug-isolation operation budgets, IPA's rootless
             keep-everything guard — must be made once over the entire
             set, so distribution ships the whole set as a single job
             to one worker.  With a store attached the phase relay
             lands in a transaction, committed on success and
             abandoned on loss, so a lost worker leaves no trace and
             the local redo replays the oracle's op log against the
             store directly. *)
          let run_whole ~mem subset =
            let local () =
              let phase_cache = Option.map Hlo.store_phase_cache cache in
              let optimized, report, lstats = run_cmo ?phase_cache ~mem subset in
              (optimized, report, lstats, [])
            in
            match dist_pool with
            | None -> local ()
            | Some dpool -> (
              let txn = Option.map Store.txn_begin cache in
              match
                run_dist dpool ?phase_cache:(phase_cache_of txn) ~mem subset
              with
              | optimized, report, lstats, precoded ->
                Option.iter Store.txn_commit txn;
                (optimized, report, lstats, precoded)
              | exception Distwork.Worker_lost -> local ())
          in
          let table_of optimized =
            let opt_tbl = Hashtbl.create 16 in
            List.iter
              (fun (m' : Ilmod.t) -> Hashtbl.replace opt_tbl m'.Ilmod.mname m')
              optimized;
            opt_tbl
          in
          match cache with
          | None ->
            if decomposable && (jobs > 1 || Option.is_some dist_pool) then begin
              (* Same partition as cache invalidation, used here as
                 the unit of parallel/distributed link-time CMO (the
                 WHOPR LTRANS analogy). *)
              let part = Invalidate.compute cmo_set in
              let optimized, _ =
                run_components ~txns:false (Invalidate.components part)
              in
              let opt_tbl = table_of optimized in
              List.map (fun name -> Hashtbl.find opt_tbl name) all_names
              @ outside
            end
            else begin
              let optimized, report, lstats, _ = run_whole ~mem cmo_set in
              record_hlo (report, lstats);
              optimized @ outside
            end
          | Some store ->
            let part = Invalidate.compute cmo_set in
            (* Snapshot digests before registration, like mod_funcs. *)
            let il_fp = Hashtbl.create 16 in
            List.iter
              (fun (m : Ilmod.t) ->
                Hashtbl.replace il_fp m.Ilmod.mname
                  (Fingerprint.of_strings [ Ilcodec.encode_module m ]))
              cmo_set;
            let opt_fp = Options.cache_fingerprint options in
            let sel_fp =
              match !selection with
              | None -> "nosel"
              | Some sel ->
                Fingerprint.of_strings
                  (("sel" :: sel.Selectivity.cmo_modules)
                  @ ("|" :: sel.Selectivity.hot_functions))
            in
            (* The key of a module: its component's (name, digest)
               pairs plus the slice of the external context its
               component can observe — external callers pin IPA
               argument lattices and keep functions alive; external
               stores block const-global folding. *)
            let comp_parts_memo = Hashtbl.create 8 in
            let component_parts comp =
              let head = List.hd comp in
              match Hashtbl.find_opt comp_parts_memo head with
              | Some parts -> parts
              | None ->
                let ext_called =
                  List.concat_map
                    (fun n ->
                      Option.value ~default:[] (Hashtbl.find_opt mod_funcs n)
                      |> List.filter_map (fun (fname, _) ->
                             if Hashtbl.mem called fname then Some fname
                             else None))
                    comp
                  |> List.sort String.compare
                in
                let ext_stored =
                  List.concat_map (Invalidate.global_refs part) comp
                  |> List.sort_uniq String.compare
                  |> List.filter (Hashtbl.mem stored)
                in
                let parts =
                  List.concat_map
                    (fun n ->
                      [ n; Option.value ~default:"" (Hashtbl.find_opt il_fp n) ])
                    comp
                  @ ("|called" :: ext_called)
                  @ ("|stored" :: ext_stored)
                in
                Hashtbl.replace comp_parts_memo head parts;
                parts
            in
            let keys = Hashtbl.create 16 in
            List.iter
              (fun name ->
                let comp =
                  if decomposable then Invalidate.component part name
                  else all_names
                in
                Hashtbl.replace keys name
                  (Fingerprint.of_strings
                     ("cmo1" :: opt_fp :: sel_fp :: name :: "|comp"
                     :: component_parts comp)))
              all_names;
            let fetched = Hashtbl.create 16 in
            let missing =
              List.filter
                (fun name ->
                  match fetch_module store (Hashtbl.find keys name) name with
                  | Some cached ->
                    Hashtbl.replace fetched name cached;
                    false
                  | None -> true)
                all_names
            in
            (* Persist (and publish) the fresh artifacts.  Modules a
               worker process optimized are stored under the worker's
               own encoding ([precoded]) — the bytes that crossed the
               wire define the artifact, with no parent-side
               re-encode in between. *)
            let store_results ?(precoded = []) optimized =
              let pre = Hashtbl.create 16 in
              List.iter (fun (n, b) -> Hashtbl.replace pre n b) precoded;
              List.iter
                (fun (m' : Ilmod.t) ->
                  match Hashtbl.find_opt keys m'.Ilmod.mname with
                  | Some key ->
                    let bytes =
                      match Hashtbl.find_opt pre m'.Ilmod.mname with
                      | Some b -> b
                      | None -> Ilcodec.encode_module m'
                    in
                    Store.add store key bytes;
                    remote_put key bytes
                  | None -> ())
                optimized
            in
            if missing = [] then begin
              (* Every artifact current: the link step skips HLO
                 entirely. *)
              cmo_cached := all_names;
              List.map (Hashtbl.find fetched) all_names @ outside
            end
            else begin
              let rerun_names =
                if decomposable then Invalidate.closure part ~changed:missing
                else all_names
              in
              cmo_reoptimized := rerun_names;
              cmo_cached :=
                List.filter (fun n -> not (List.mem n rerun_names)) all_names;
              let optimized, precoded =
                if decomposable then
                  (* Exactly the components holding a stale module
                     rerun; every fetch above already happened, so the
                     transactions' snapshot view of the store is fixed
                     before any worker starts. *)
                  run_components ~txns:true
                    (List.filter
                       (fun comp ->
                         List.exists (fun n -> List.mem n missing) comp)
                       (Invalidate.components part))
                else begin
                  let optimized, report, lstats, precoded =
                    run_whole ~mem cmo_set
                  in
                  record_hlo (report, lstats);
                  (optimized, precoded)
                end
              in
              store_results ~precoded optimized;
              let opt_tbl = table_of optimized in
              List.map
                (fun name ->
                  match Hashtbl.find_opt opt_tbl name with
                  | Some m' -> m'
                  | None -> Hashtbl.find fetched name)
                all_names
              @ outside
            end
        end
    in
    let hlo_t1 = Sys.time () in
    let hlo_w1 = Unix.gettimeofday () in
    Log.info (fun m ->
        m "%s: hlo %.3fs, cmo %d/%d lines" (Options.to_string options)
          (hlo_t1 -. hlo_t0) !cmo_lines total_lines);
    (* Code generation: per-module and independent.  Parallel workers
       carry their own stats accumulator and accountant, merged in
       module order after the join, so objects, stats and modeled
       peaks match the sequential run. *)
    let llo_stats = ref zero_llo_stats in
    let layout = options.Options.pbo && options.Options.level <> Options.O1 in
    (* Post-CMO view: clones present, IPA-removed routines gone — a
       reference that dangles here would dangle at link time too. *)
    let llo_check =
      checker_of
        (memo_locked (fun () -> Ilcheck.env_of_modules processed_modules))
    in
    let objects =
      Obs.with_span ~cat:"stage" "llo" @@ fun () ->
      if jobs > 1 then begin
        let results =
          Parwork.with_pool ~jobs (fun pool ->
              Parwork.map pool
                (fun m ->
                  let wmem = Memstats.create () in
                  let acc = ref zero_llo_stats in
                  let obj =
                    llo_module ?check:llo_check ~mem:(Some wmem) ~layout acc m
                  in
                  (obj, !acc, wmem))
                processed_modules)
        in
        List.map
          (fun (obj, stats, wmem) ->
            llo_stats := add_llo_stats !llo_stats stats;
            Memstats.merge mem wmem;
            obj)
          results
      end
      else
        List.map
          (llo_module ?check:llo_check ~mem:(Some mem) ~layout llo_stats)
          processed_modules
    in
    let llo_t1 = Sys.time () in
    let llo_w1 = Unix.gettimeofday () in
    (* Link, clustering routines when profiled. *)
    let image =
      Obs.with_span ~cat:"stage" "link" @@ fun () ->
      let routine_order =
        if options.Options.pbo then begin
          let weights = cluster_weights processed_modules in
          if weights = [] then None
          else
            Some
              (Obs.with_span ~cat:"link" "cluster" (fun () ->
                   Cluster.order
                     ~names:(all_func_names processed_modules)
                     ~weights))
        end
        else None
      in
      link_or_fail ?routine_order objects
    in
    let link_t1 = Sys.time () in
    Log.info (fun m ->
        m "%s: llo %.3fs, link %.3fs, %d instrs"
          (Options.to_string options) (llo_t1 -. hlo_t1) (link_t1 -. llo_t1)
          (Array.length image.Image.code));
    {
      image;
      objects;
      manifest = None;
      report =
        {
          options;
          hlo = !hlo_report;
          loader_stats = !loader_stats;
          mem_peak = Memstats.peak mem;
          mem_peak_hlo = Memstats.peak_hlo mem;
          selection = !selection;
          llo = !llo_stats;
          frontend_seconds = 0.0;
          hlo_seconds = hlo_t1 -. hlo_t0;
          llo_seconds = llo_t1 -. hlo_t1;
          link_seconds = link_t1 -. llo_t1;
          frontend_wall_seconds = 0.0;
          hlo_wall_seconds = hlo_w1 -. hlo_w0;
          llo_wall_seconds = llo_w1 -. hlo_w1;
          workers_used = jobs;
          total_lines;
          cmo_lines = !cmo_lines;
          warm_lines = !warm_lines;
          cold_lines = !cold_lines;
          cache =
            Option.map
              (fun _ ->
                {
                  hits = !cache_hits;
                  misses = !cache_misses;
                  remote_hits = !remote_hits;
                  remote_misses = !remote_misses;
                  cmo_cached = !cmo_cached;
                  cmo_reoptimized = !cmo_reoptimized;
                })
              cache;
          obs = obs_summary ();
        };
    }
  end

let compile_modules ?profile ?cache ?naim_repo ?remote options modules =
  try compile_modules_inner ?profile ?cache ?naim_repo ?remote options modules
  with Ilcheck.Violation vs -> error "%s" (render_violations vs)

(* The trace lifecycle lives with whoever owns the whole build
   ([compile] here, [Buildsys.build] for the on-disk workflow):
   start the sink, run the build, write the file, stop.  A failed
   build stops the sink without writing — a partial trace with
   dangling spans would mislead more than it helps. *)
let with_tracing (options : Options.t) f =
  match options.Options.trace with
  | None -> f ()
  | Some path -> (
    Obs.start ();
    match f () with
    | v ->
      (try Fsio.atomic_write path (Obs.export ())
       with Sys_error m ->
         Obs.tick "obs" "export_errors" 1;
         Log.warn (fun f -> f "trace not written to %s (%s)" path m));
      Obs.stop ();
      v
    | exception e ->
      Obs.stop ();
      raise e)

let compile ?profile ?cache ?naim_repo ?remote options sources =
  with_tracing options @@ fun () ->
  let t0 = Sys.time () in
  let w0 = Unix.gettimeofday () in
  let modules =
    Obs.with_span ~cat:"stage" "frontend" (fun () ->
        frontend ~jobs:(max 1 options.Options.jobs) sources)
  in
  let t1 = Sys.time () in
  let w1 = Unix.gettimeofday () in
  let build =
    compile_modules ?profile ?cache ?naim_repo ?remote options modules
  in
  {
    build with
    report =
      {
        build.report with
        frontend_seconds = t1 -. t0;
        frontend_wall_seconds = w1 -. w0;
      };
  }

let run ?input ?fuel ?attribute build = Vm.run ?input ?fuel ?attribute build.image

let train ?(inputs = [ [||] ]) sources =
  let build = compile Options.instrumented sources in
  let manifest =
    match build.manifest with
    | Some m -> m
    | None -> error "instrumented build produced no manifest"
  in
  let db = Db.create () in
  List.iter
    (fun input ->
      let outcome = Vm.run ~input build.image in
      Probe.record_counters manifest outcome.Vm.probes db)
    inputs;
  db

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s" (Options.to_string r.options);
  Format.fprintf ppf "@,lines: %d total, %d in CMO set%s" r.total_lines
    r.cmo_lines
    (if r.warm_lines + r.cold_lines > 0 then
       Printf.sprintf " (%d warm, %d cold)" r.warm_lines r.cold_lines
     else "");
  Format.fprintf ppf
    "@,time: frontend %.3fs, hlo %.3fs, llo %.3fs, link %.3fs"
    r.frontend_seconds r.hlo_seconds r.llo_seconds r.link_seconds;
  if r.workers_used > 1 then
    Format.fprintf ppf
      "@,parallel: %d workers; wall frontend %.3fs, hlo %.3fs, llo %.3fs; \
       speedup %.2fx"
      r.workers_used r.frontend_wall_seconds r.hlo_wall_seconds
      r.llo_wall_seconds (par_speedup r);
  Format.fprintf ppf "@,memory peak: %d bytes (hlo %d)" r.mem_peak r.mem_peak_hlo;
  Format.fprintf ppf "@,llo: %d routines, %d instrs, %d spills, %d peeps"
    r.llo.Llo.routines r.llo.Llo.mach_instrs r.llo.Llo.spilled_vregs
    r.llo.Llo.peephole_rewrites;
  (match r.hlo with
  | Some h -> Format.fprintf ppf "@,%a" Hlo.pp_report h
  | None -> ());
  (match r.cache with
  | Some c ->
    Format.fprintf ppf
      "@,cache: %d module hits, %d misses; %d cmo cached, %d re-optimized"
      c.hits c.misses
      (List.length c.cmo_cached)
      (List.length c.cmo_reoptimized);
    if c.remote_hits + c.remote_misses > 0 then
      Format.fprintf ppf "@,remote cache: %d hits, %d misses" c.remote_hits
        c.remote_misses
  | None -> ());
  (match r.selection with
  | Some s -> Format.fprintf ppf "@,%a" Selectivity.pp s
  | None -> ());
  (match r.obs with
  | Some s -> Format.fprintf ppf "@,%a" Obs.pp_summary s
  | None -> ());
  Format.fprintf ppf "@]"

(* Machine-readable report: every numeric field plus the derived
   cpu/wall aggregates, so downstream consumers (the bench tables,
   scripts diffing two builds) stop re-deriving arithmetic from the
   pretty-printer. *)
let report_to_json r =
  let num_i n = Json.Num (float_of_int n) in
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("options", Json.Str (Options.to_string r.options));
      ( "lines",
        Json.Obj
          [
            ("total", num_i r.total_lines);
            ("cmo", num_i r.cmo_lines);
            ("warm", num_i r.warm_lines);
            ("cold", num_i r.cold_lines);
          ] );
      ( "cpu_seconds",
        Json.Obj
          [
            ("frontend", Json.Num r.frontend_seconds);
            ("hlo", Json.Num r.hlo_seconds);
            ("llo", Json.Num r.llo_seconds);
            ("link", Json.Num r.link_seconds);
            ("phases", Json.Num (phase_cpu_seconds r));
          ] );
      ( "wall_seconds",
        Json.Obj
          [
            ("frontend", Json.Num r.frontend_wall_seconds);
            ("hlo", Json.Num r.hlo_wall_seconds);
            ("llo", Json.Num r.llo_wall_seconds);
            ("phases", Json.Num (phase_wall_seconds r));
          ] );
      ("workers_used", num_i r.workers_used);
      ("par_speedup", Json.Num (par_speedup r));
      ( "memory",
        Json.Obj
          [ ("peak", num_i r.mem_peak); ("peak_hlo", num_i r.mem_peak_hlo) ]
      );
      ( "llo",
        Json.Obj
          [
            ("routines", num_i r.llo.Llo.routines);
            ("mach_instrs", num_i r.llo.Llo.mach_instrs);
            ("spilled_vregs", num_i r.llo.Llo.spilled_vregs);
            ("peephole_rewrites", num_i r.llo.Llo.peephole_rewrites);
            ("layout_changes", num_i r.llo.Llo.layout_changes);
          ] );
      ( "hlo",
        opt
          (fun (h : Hlo.report) ->
            Json.Obj
              [
                ("clones", num_i h.Hlo.clones);
                ("funcs_optimized", num_i h.Hlo.funcs_optimized);
                ("funcs_skipped", num_i h.Hlo.funcs_skipped);
                ("rewrites", num_i h.Hlo.rewrites);
                ( "inline_operations",
                  opt
                    (fun (s : Inline.stats) -> num_i s.Inline.operations)
                    h.Hlo.inline_stats );
              ])
          r.hlo );
      ( "loader",
        opt
          (fun (s : Loader.stats) ->
            Json.Obj
              [
                ("acquires", num_i s.Loader.acquires);
                ("cache_hits", num_i s.Loader.cache_hits);
                ("uncompactions", num_i s.Loader.uncompactions);
                ("repo_loads", num_i s.Loader.repo_loads);
                ("compactions", num_i s.Loader.compactions);
                ("offloads", num_i s.Loader.offloads);
                ("symtab_compactions", num_i s.Loader.symtab_compactions);
              ])
          r.loader_stats );
      ( "cache",
        opt
          (fun c ->
            Json.Obj
              [
                ("hits", num_i c.hits);
                ("misses", num_i c.misses);
                ("remote_hits", num_i c.remote_hits);
                ("remote_misses", num_i c.remote_misses);
                ( "cmo_cached",
                  Json.Arr (List.map (fun n -> Json.Str n) c.cmo_cached) );
                ( "cmo_reoptimized",
                  Json.Arr (List.map (fun n -> Json.Str n) c.cmo_reoptimized)
                );
              ])
          r.cache );
      ( "trace",
        opt
          (fun (s : Obs.summary) ->
            Json.Obj
              [
                ("events", num_i s.Obs.event_count);
                ("tracks", num_i s.Obs.track_count);
                ("open_spans", num_i s.Obs.open_spans);
                ( "counters",
                  Json.Obj
                    (List.map (fun (k, v) -> (k, Json.Num v)) s.Obs.counters)
                );
              ])
          r.obs );
    ]
