(** Bounded Domain-pool executor for the pipeline's embarrassingly
    parallel points (per-module frontend, per-component link-time HLO,
    per-module codegen).

    Determinism contract: results are delivered in submission order
    regardless of completion order, and a failed task re-raises its
    exception (with the worker's backtrace) at the position the
    sequential run would have raised it — the first failure in input
    order.  With [jobs = 1] no domain is ever spawned and every task
    runs inline at submission, so the sequential path is not merely
    equivalent to the parallel one, it is the same code. *)

type pool
type 'a future

val create : jobs:int -> pool
(** [create ~jobs] spawns [jobs] worker domains when [jobs > 1]; with
    [jobs <= 1] the pool is inline (no domains). *)

val jobs : pool -> int
(** The worker count the pool was created with (at least 1). *)

val submit : pool -> (unit -> 'a) -> 'a future
(** Enqueue a task.  On an inline pool the task runs immediately. *)

val await : 'a future -> 'a
(** Block until the task completes; re-raises a captured exception
    with its original backtrace. *)

val map : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one task per element and await them in input order.  The
    first failure (by input order, as in [List.map]) is re-raised. *)

val shutdown : pool -> unit
(** Join every worker domain.  Submitting afterwards is an error.
    Idempotent; an inline pool's shutdown is a no-op. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
