type level = O1 | O2 | O4

type t = {
  level : level;
  pbo : bool;
  instrument : bool;
  selectivity : float option;
  tiered : bool;
  machine_memory : int;
  naim_level : Cmo_naim.Loader.level option;
  inline_config : Cmo_hlo.Inline.config option;
  rewrite_limit : int option;
  inline_limit : int option;
  cmo_modules : string list option;
  jobs : int;
  check : bool;
  trace : string option;
  dist : bool;
  workers : string list;
  dist_timeout : float option;
}

(* All process-tree environment knobs parse in one place.  CMO_JOBS /
   CMO_CHECK / CMO_TRACE let CI and whole test runs exercise the
   parallel, verified or traced paths without touching call sites;
   the corresponding flags (-j, --check, --trace) still override per
   build.  The fuzz seed lives here too so test helpers and the bench
   campaign resolve it identically. *)
type env = {
  env_jobs : int;  (* CMO_JOBS, >= 1; else 1 *)
  env_check : bool;  (* CMO_CHECK: anything but unset/""/"0" *)
  env_trace : string option;  (* CMO_TRACE: trace output path *)
  env_fuzz_seed : int option;  (* CMO_FUZZ_SEED, else QCHECK_SEED *)
  env_fault : string option;  (* CMO_FAULT: fsio fault-plan spec *)
  env_socket : string option;  (* CMO_SOCKET: cmocd socket path *)
  env_daemon_jobs : int;  (* CMO_DAEMON_JOBS, >= 1; else 2 *)
  env_queue_max : int;  (* CMO_QUEUE_MAX, >= 1; else 64 *)
  env_dist : bool;  (* CMO_DIST: anything but unset/""/"0" *)
  env_dist_worker : string option;  (* CMO_DIST_WORKER: worker binary *)
  env_dist_workers : string list;  (* CMO_DIST_WORKERS: host:port,... *)
  env_dist_timeout : float option;  (* CMO_DIST_TIMEOUT: read deadline, s *)
  env_dist_deadline : float option;  (* CMO_DIST_DEADLINE: straggler bound, s *)
  env_net_fault : string option;  (* CMO_NET_FAULT: netio fault-plan spec *)
  env_cohort : string option;  (* CMO_COHORT: default profile cohort *)
  env_flip_threshold : float option;  (* CMO_FLIP_THRESHOLD, in (0,1] *)
}

let from_env ?(get = Sys.getenv_opt) () =
  let int_of name =
    Option.bind (get name) (fun s -> int_of_string_opt (String.trim s))
  in
  {
    env_jobs = (match int_of "CMO_JOBS" with Some n when n >= 1 -> n | _ -> 1);
    env_check =
      (match get "CMO_CHECK" with Some ("" | "0") | None -> false | Some _ -> true);
    env_trace = (match get "CMO_TRACE" with Some "" | None -> None | some -> some);
    env_fuzz_seed =
      (match int_of "CMO_FUZZ_SEED" with
      | Some _ as s -> s
      | None -> int_of "QCHECK_SEED");
    env_fault = (match get "CMO_FAULT" with Some "" | None -> None | some -> some);
    env_socket =
      (match get "CMO_SOCKET" with Some "" | None -> None | some -> some);
    env_daemon_jobs =
      (match int_of "CMO_DAEMON_JOBS" with Some n when n >= 1 -> n | _ -> 2);
    env_queue_max =
      (match int_of "CMO_QUEUE_MAX" with Some n when n >= 1 -> n | _ -> 64);
    env_dist =
      (match get "CMO_DIST" with Some ("" | "0") | None -> false | Some _ -> true);
    env_dist_worker =
      (match get "CMO_DIST_WORKER" with Some "" | None -> None | some -> some);
    env_dist_workers =
      (match get "CMO_DIST_WORKERS" with
      | Some s ->
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun a -> a <> "")
      | None -> []);
    env_dist_timeout =
      (match
         Option.bind (get "CMO_DIST_TIMEOUT") (fun s ->
             float_of_string_opt (String.trim s))
       with
      | Some t when t > 0.0 -> Some t
      | _ -> None);
    env_dist_deadline =
      (match
         Option.bind (get "CMO_DIST_DEADLINE") (fun s ->
             float_of_string_opt (String.trim s))
       with
      | Some t when t > 0.0 -> Some t
      | _ -> None);
    env_net_fault =
      (match get "CMO_NET_FAULT" with Some "" | None -> None | some -> some);
    env_cohort =
      (match get "CMO_COHORT" with Some "" | None -> None | some -> some);
    env_flip_threshold =
      (match
         Option.bind (get "CMO_FLIP_THRESHOLD") (fun s ->
             float_of_string_opt (String.trim s))
       with
      | Some f when f > 0.0 && f <= 1.0 -> Some f
      | _ -> None);
  }

let env = from_env ()
let default_jobs = env.env_jobs
let default_check = env.env_check

let base =
  {
    level = O2;
    pbo = false;
    instrument = false;
    selectivity = None;
    tiered = false;
    machine_memory = 256 * 1024 * 1024;
    naim_level = None;
    inline_config = None;
    rewrite_limit = None;
    inline_limit = None;
    cmo_modules = None;
    jobs = default_jobs;
    check = default_check;
    trace = env.env_trace;
    dist = env.env_dist;
    workers = env.env_dist_workers;
    dist_timeout = env.env_dist_timeout;
  }

let o1 = { base with level = O1 }
let o2 = base
let o2_pbo = { base with pbo = true }
let o4 = { base with level = O4 }
let o4_pbo = { base with level = O4; pbo = true }

let o4_pbo_selective percent =
  { base with level = O4; pbo = true; selectivity = Some percent }

let o4_pbo_tiered percent =
  { base with level = O4; pbo = true; selectivity = Some percent; tiered = true }

let instrumented = { base with instrument = true }

(* Canonical rendering of every field that can change generated code.
   machine_memory, naim_level, jobs, check, trace, dist, workers and
   dist_timeout are deliberately excluded: NAIM compaction/offload round-trips
   losslessly and parallel builds are bit-identical to sequential ones
   (both are tested invariants), so artifacts cached under one memory
   or worker configuration stay valid under another; the verifier and
   the trace sink observe and never rewrite, so checked/traced and
   plain builds share artifacts too; and distributed (process-worker)
   builds are byte-identical to in-process ones — the distribution
   determinism matrix is exactly the test that keeps [dist] (and with
   it worker placement and deadlines) out of the key. *)
let cache_fingerprint t =
  let opt f = function Some v -> f v | None -> "-" in
  let inline_config =
    opt
      (fun (c : Cmo_hlo.Inline.config) ->
        Printf.sprintf "%d/%h/%h/%d/%d/%d/%h/%b/%s" c.Cmo_hlo.Inline.always_threshold
          c.Cmo_hlo.Inline.hot_count_threshold c.Cmo_hlo.Inline.hot_density_ratio
          c.Cmo_hlo.Inline.hot_size_limit c.Cmo_hlo.Inline.cold_size_limit
          c.Cmo_hlo.Inline.caller_size_limit c.Cmo_hlo.Inline.program_growth
          c.Cmo_hlo.Inline.use_profile
          (opt string_of_int c.Cmo_hlo.Inline.operation_limit))
      t.inline_config
  in
  String.concat ";"
    [
      (match t.level with O1 -> "O1" | O2 -> "O2" | O4 -> "O4");
      string_of_bool t.pbo;
      opt (Printf.sprintf "%h") t.selectivity;
      string_of_bool t.tiered;
      opt string_of_int t.rewrite_limit;
      opt string_of_int t.inline_limit;
      opt (String.concat ",") t.cmo_modules;
      inline_config;
    ]

(* ---- wire codec (Codec, same substrate as object files) ----

   A partition job shipped to a cmoc-worker process carries the full
   option record, so the worker reproduces the parent's optimization
   decisions exactly.  Every field travels — including the excluded-
   from-fingerprint ones like [machine_memory], which steer NAIM
   behaviour even though they cannot change artifacts. *)

module Codec = Cmo_support.Codec

let level_tag = function O1 -> 1 | O2 -> 2 | O4 -> 4

let level_of_tag = function
  | 1 -> O1
  | 2 -> O2
  | 4 -> O4
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad level tag %d" n)

let naim_level_tag = function
  | Cmo_naim.Loader.Off -> 0
  | Cmo_naim.Loader.Ir_compaction -> 1
  | Cmo_naim.Loader.St_compaction -> 2
  | Cmo_naim.Loader.Offloading -> 3

let naim_level_of_tag = function
  | 0 -> Cmo_naim.Loader.Off
  | 1 -> Cmo_naim.Loader.Ir_compaction
  | 2 -> Cmo_naim.Loader.St_compaction
  | 3 -> Cmo_naim.Loader.Offloading
  | n -> Codec.Reader.corrupt (Printf.sprintf "bad NAIM level tag %d" n)

let write_opt w f = function
  | None -> Codec.Writer.bool w false
  | Some v ->
    Codec.Writer.bool w true;
    f v

let read_opt r f = if Codec.Reader.bool r then Some (f r) else None

let encode w t =
  Codec.Writer.byte w (level_tag t.level);
  Codec.Writer.bool w t.pbo;
  Codec.Writer.bool w t.instrument;
  write_opt w (Codec.Writer.float w) t.selectivity;
  Codec.Writer.bool w t.tiered;
  Codec.Writer.uvarint w t.machine_memory;
  write_opt w (fun l -> Codec.Writer.byte w (naim_level_tag l)) t.naim_level;
  write_opt w
    (fun (c : Cmo_hlo.Inline.config) ->
      Codec.Writer.varint w c.Cmo_hlo.Inline.always_threshold;
      Codec.Writer.float w c.Cmo_hlo.Inline.hot_count_threshold;
      Codec.Writer.float w c.Cmo_hlo.Inline.hot_density_ratio;
      Codec.Writer.varint w c.Cmo_hlo.Inline.hot_size_limit;
      Codec.Writer.varint w c.Cmo_hlo.Inline.cold_size_limit;
      Codec.Writer.varint w c.Cmo_hlo.Inline.caller_size_limit;
      Codec.Writer.float w c.Cmo_hlo.Inline.program_growth;
      Codec.Writer.bool w c.Cmo_hlo.Inline.use_profile;
      write_opt w (Codec.Writer.varint w) c.Cmo_hlo.Inline.operation_limit)
    t.inline_config;
  write_opt w (Codec.Writer.varint w) t.rewrite_limit;
  write_opt w (Codec.Writer.varint w) t.inline_limit;
  write_opt w (Codec.Writer.list w (Codec.Writer.string w)) t.cmo_modules;
  Codec.Writer.uvarint w t.jobs;
  Codec.Writer.bool w t.check;
  write_opt w (Codec.Writer.string w) t.trace;
  Codec.Writer.bool w t.dist;
  Codec.Writer.list w (Codec.Writer.string w) t.workers;
  write_opt w (Codec.Writer.float w) t.dist_timeout

let decode r =
  let level = level_of_tag (Codec.Reader.byte r) in
  let pbo = Codec.Reader.bool r in
  let instrument = Codec.Reader.bool r in
  let selectivity = read_opt r Codec.Reader.float in
  let tiered = Codec.Reader.bool r in
  let machine_memory = Codec.Reader.uvarint r in
  let naim_level =
    read_opt r (fun r -> naim_level_of_tag (Codec.Reader.byte r))
  in
  let inline_config =
    read_opt r (fun r ->
        let always_threshold = Codec.Reader.varint r in
        let hot_count_threshold = Codec.Reader.float r in
        let hot_density_ratio = Codec.Reader.float r in
        let hot_size_limit = Codec.Reader.varint r in
        let cold_size_limit = Codec.Reader.varint r in
        let caller_size_limit = Codec.Reader.varint r in
        let program_growth = Codec.Reader.float r in
        let use_profile = Codec.Reader.bool r in
        let operation_limit = read_opt r Codec.Reader.varint in
        {
          Cmo_hlo.Inline.always_threshold;
          hot_count_threshold;
          hot_density_ratio;
          hot_size_limit;
          cold_size_limit;
          caller_size_limit;
          program_growth;
          use_profile;
          operation_limit;
        })
  in
  let rewrite_limit = read_opt r Codec.Reader.varint in
  let inline_limit = read_opt r Codec.Reader.varint in
  let cmo_modules = read_opt r (fun r -> Codec.Reader.list r Codec.Reader.string) in
  let jobs = Codec.Reader.uvarint r in
  let check = Codec.Reader.bool r in
  let trace = read_opt r Codec.Reader.string in
  let dist = Codec.Reader.bool r in
  let workers = Codec.Reader.list r Codec.Reader.string in
  let dist_timeout = read_opt r Codec.Reader.float in
  {
    level;
    pbo;
    instrument;
    selectivity;
    tiered;
    machine_memory;
    naim_level;
    inline_config;
    rewrite_limit;
    inline_limit;
    cmo_modules;
    jobs;
    check;
    trace;
    dist;
    workers;
    dist_timeout;
  }

let to_string t =
  let level =
    match t.level with O1 -> "+O1" | O2 -> "+O2" | O4 -> "+O4"
  in
  String.concat ""
    [
      level;
      (if t.pbo then " +P" else "");
      (if t.instrument then " +I" else "");
      (match t.selectivity with
      | Some p -> Printf.sprintf " sel=%.1f%%" p
      | None -> "");
      (if t.tiered then " tiered" else "");
    ]
