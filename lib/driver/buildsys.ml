module Ilmod = Cmo_il.Ilmod
module Correlate = Cmo_profile.Correlate
module Phase = Cmo_hlo.Phase
module Llo = Cmo_llo.Llo
module Objfile = Cmo_link.Objfile
module Linker = Cmo_link.Linker
module Memstats = Cmo_naim.Memstats
module Store = Cmo_cache.Store
module Fsio = Cmo_support.Fsio

let log_src = Logs.Src.create "cmo.buildsys" ~doc:"Incremental build system"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  dir : string;
  cache_enabled : bool;
  cache_dir : string;
  cache_capacity : int option;
}

let create ?(cache = true) ?cache_dir ?cache_capacity ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Buildsys.create: %s is not a directory" dir);
  {
    dir;
    cache_enabled = cache;
    cache_dir =
      (match cache_dir with
      | Some d -> d
      | None -> Filename.concat dir ".cmo-cache");
    cache_capacity;
  }

let cache_dir t = t.cache_dir

type outcome = {
  build : Pipeline.build;
  recompiled : string list;
  reused : string list;
}

let object_path t name = Filename.concat t.dir (name ^ ".o")

let digest text = Digest.to_hex (Digest.string text)

let clean t =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".o" then Fsio.remove (Filename.concat t.dir f))
    (Sys.readdir t.dir);
  Store.wipe ~dir:t.cache_dir

(* Compile one module to a code object (the non-CMO path). *)
let compile_code_object ?profile (options : Options.t) ~source_digest m =
  (match (options.Options.pbo, profile) with
  | true, Some db -> ignore (Correlate.annotate db [ m ])
  | true, None | false, _ -> Correlate.clear [ m ]);
  if options.Options.level = Options.O2 then
    List.iter (fun f -> ignore (Phase.optimize_func f)) m.Ilmod.funcs;
  let layout = options.Options.pbo && options.Options.level <> Options.O1 in
  let codes, _stats = Llo.compile_module ~layout m in
  {
    (Objfile.of_code ~module_name:m.Ilmod.mname ~globals:m.Ilmod.globals
       ~source_digest codes)
    with
    Objfile.source_digest = source_digest;
  }

let load_if_current t (s : Pipeline.source) =
  let path = object_path t s.Pipeline.name in
  if Sys.file_exists path then begin
    match Objfile.load path with
    | obj when obj.Objfile.source_digest = digest s.Pipeline.text ->
      (* An object built for a different mode is not current: CMO
         needs IL payloads, non-CMO needs code. *)
      Some obj
    | _ -> None
    (* An unreadable or corrupt object is stale, and only that —
       [Fsio.Crash] in particular must keep propagating, or a
       simulated power cut would degrade into a silent rebuild. *)
    | exception (Sys_error _ | Cmo_support.Codec.Reader.Corrupt _ | End_of_file)
      ->
      None
  end
  else None

(* ---- sessions ----

   A session is the warm state a build request runs against: the open
   artifact store and (optionally) a shared NAIM repository.  One-shot
   [build] opens a session, runs one request, closes it; the build
   server keeps one session open for its whole lifetime so every
   request after the first hits a warm store. *)

type session = {
  sconfig : t;
  mutable sstore : Store.t option;
  srepo : Cmo_naim.Repository.t option;
  mutable sclosed : bool;
}

let open_store t =
  if t.cache_enabled then
    Some (Store.open_ ?capacity:t.cache_capacity ~dir:t.cache_dir ())
  else None

let open_session ?(naim = false) t =
  let srepo =
    if naim then begin
      Fsio.mkdirs t.cache_dir;
      Some (Cmo_naim.Repository.create
              ~path:(Filename.concat t.cache_dir "naim.repo"))
    end
    else None
  in
  { sconfig = t; sstore = open_store t; srepo; sclosed = false }

let session_store s = s.sstore

let session_repo s = s.srepo

let reopen_store s =
  Option.iter (fun store -> try Store.close store with Sys_error _ -> ()) s.sstore;
  s.sstore <- open_store s.sconfig

let close_session s =
  if not s.sclosed then begin
    s.sclosed <- true;
    Option.iter Store.close s.sstore;
    s.sstore <- None;
    Option.iter Cmo_naim.Repository.close s.srepo
  end

let request ?profile ?remote s (options : Options.t) sources =
  if s.sclosed then invalid_arg "Buildsys.request: session is closed";
  let t = s.sconfig in
  if options.Options.instrument then
    raise
      (Pipeline.Compile_error
         "instrumented builds are in-memory only; use Pipeline.train");
  Pipeline.with_tracing options @@ fun () ->
  let want_il = options.Options.level = Options.O4 in
  let recompiled = ref [] in
  let reused = ref [] in
  let objects =
    Cmo_obs.Obs.with_span ~cat:"stage" "frontend" @@ fun () ->
    List.map
      (fun (s : Pipeline.source) ->
        let current =
          match load_if_current t s with
          | Some obj when Objfile.is_il obj = want_il -> Some obj
          | Some _ | None -> None
        in
        match current with
        | Some obj ->
          reused := s.Pipeline.name :: !reused;
          Cmo_obs.Obs.instant ~cat:"frontend" s.Pipeline.name;
          obj
        | None ->
          recompiled := s.Pipeline.name :: !recompiled;
          let m = Pipeline.frontend_one s in
          let source_digest = digest s.Pipeline.text in
          let obj =
            if want_il then
              { (Objfile.of_il ~source_digest m) with Objfile.source_digest = source_digest }
            else compile_code_object ?profile options ~source_digest m
          in
          (try Objfile.save obj (object_path t s.Pipeline.name)
           with Sys_error m ->
             (* The object stays in memory for this build and is
                recompiled next time; not a failed build. *)
             Cmo_obs.Obs.tick "buildsys" "object_write_errors" 1;
             Log.warn (fun f ->
                 f "object for %s not saved (%s)" s.Pipeline.name m));
          obj)
      sources
  in
  let build_result =
    if want_il then begin
      (* CMO happens at link time, over the IL read back from disk. *)
      let modules =
        List.map
          (fun (o : Objfile.t) ->
            match o.Objfile.payload with
            | Objfile.Il m -> m
            | Objfile.Code _ ->
              raise
                (Pipeline.Compile_error
                   (Printf.sprintf "object %s lacks an IL payload"
                      o.Objfile.module_name)))
          objects
      in
      match s.sstore with
      | Some store ->
        let b =
          Pipeline.compile_modules ?profile ~cache:store ?naim_repo:s.srepo
            ?remote options modules
        in
        (* Keep the warm store durable between requests: the session
           outlives this build, so flush now rather than at close. *)
        Store.flush store;
        b
      | None ->
        Pipeline.compile_modules ?profile ?naim_repo:s.srepo options modules
    end
    else begin
      let image =
        Cmo_obs.Obs.with_span ~cat:"stage" "link" @@ fun () ->
        match Linker.link objects with
        | Ok image -> image
        | Error errs ->
          raise
            (Pipeline.Compile_error
               (Format.asprintf "@[<v>link failed:@,%a@]"
                  (Format.pp_print_list ~pp_sep:Format.pp_print_cut
                     Linker.pp_error)
                  errs))
      in
      let mem = Memstats.create () in
      {
        Pipeline.image;
        objects;
        manifest = None;
        report =
          {
            Pipeline.options;
            hlo = None;
            loader_stats = None;
            mem_peak = Memstats.peak mem;
            mem_peak_hlo = 0;
            selection = None;
            llo =
              {
                Llo.routines = 0;
                mach_instrs = Array.length image.Cmo_link.Image.code;
                spilled_vregs = 0;
                peephole_rewrites = 0;
                layout_changes = 0;
              };
            frontend_seconds = 0.0;
            hlo_seconds = 0.0;
            llo_seconds = 0.0;
            link_seconds = 0.0;
            frontend_wall_seconds = 0.0;
            hlo_wall_seconds = 0.0;
            llo_wall_seconds = 0.0;
            workers_used = 1;
            total_lines = 0;
            cmo_lines = 0;
            warm_lines = 0;
            cold_lines = 0;
            cache = None;
            obs =
              (if Cmo_obs.Obs.enabled () then Some (Cmo_obs.Obs.summary ())
               else None);
          };
      }
    end
  in
  {
    build = build_result;
    recompiled = List.rev !recompiled;
    reused = List.rev !reused;
  }

let build ?profile ?remote t options sources =
  let s = open_session t in
  Fun.protect
    ~finally:(fun () -> close_session s)
    (fun () -> request ?profile ?remote s options sources)
