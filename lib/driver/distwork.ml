module Ilmod = Cmo_il.Ilmod
module Func = Cmo_il.Func
module Callgraph = Cmo_il.Callgraph
module Ilcodec = Cmo_il.Ilcodec
module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Hlo = Cmo_hlo.Hlo
module Inline = Cmo_hlo.Inline
module Ipa = Cmo_hlo.Ipa
module Ilcheck = Cmo_check.Ilcheck

let log_src = Logs.Src.create "cmo.dist" ~doc:"distributed CMO workers"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- the shared partition optimizer ------------------------------- *)

(* A domain-safe lazy (same rationale as the pipeline's copy): checker
   environments are shared read-only and [Lazy.force] is not
   domain-safe under races. *)
let memo_locked f =
  let m = Mutex.create () in
  let cell = ref None in
  fun () ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) @@ fun () ->
    match !cell with
    | Some v -> v
    | None ->
      let v = f () in
      cell := Some v;
      v

(* A loader-backed resolution environment: function arities straight
   from the pool headers (clones included, IPA-removed routines
   absent — exactly the NAIM ownership the verifier polices) and the
   globals of every registered module. *)
let loader_env loader =
  {
    Ilcheck.resolve =
      (fun name ->
        match Loader.arity_of loader name with
        | Some arity -> Some (Ilcheck.Func_binding { arity })
        | None ->
          Option.map
            (fun size -> Ilcheck.Global_binding { size })
            (Loader.global_size_of loader name));
  }

let optimize_subset ?phase_cache ?naim_repo ?hot_filter ?check_base
    ~(options : Options.t) ~externally_called ~externally_stored ~mem subset =
  let cg = Callgraph.build subset in
  (* Everything that reads module function lists must run before
     registration: the loader takes ownership and empties them. *)
  let main_in_set =
    List.exists
      (fun (m : Ilmod.t) ->
        List.exists (fun f -> f.Func.name = "main") m.Ilmod.funcs)
      subset
  in
  let loader_config =
    {
      Loader.default_config with
      Loader.machine_memory = options.Options.machine_memory;
      forced_level = options.Options.naim_level;
    }
  in
  let loader = Loader.create ?repo:naim_repo loader_config mem in
  List.iter (Loader.register_module loader) subset;
  let check =
    match check_base with
    | Some outside when options.Options.check ->
      let env =
        memo_locked (fun () -> Ilcheck.compose (loader_env loader) (outside ()))
      in
      Some (fun ~phase f -> Ilcheck.check_func_exn ~env:(env ()) ~phase f)
    | Some _ | None -> None
  in
  let ipa_context =
    {
      Ipa.externally_called;
      externally_stored;
      entry = (if main_in_set then Some "main" else None);
      keep_exported = true;
    }
  in
  let base_options = Hlo.o4_options ~profile:options.Options.pbo in
  let inline_config =
    let config =
      match options.Options.inline_config with
      | Some c -> c
      | None -> (
        match base_options.Hlo.inline with
        | Some c -> c
        | None -> Inline.default_config)
    in
    { config with Inline.operation_limit = options.Options.inline_limit }
  in
  let hlo_options =
    {
      base_options with
      Hlo.inline = Some inline_config;
      hot_filter;
      rewrite_limit = options.Options.rewrite_limit;
      phase_cache;
      check;
    }
  in
  let report = Hlo.run loader cg ~ipa_context hlo_options in
  let optimized = Loader.extract_modules loader in
  let lstats = Loader.stats loader in
  Loader.close loader;
  (optimized, report, lstats)

(* --- wire messages ------------------------------------------------ *)

type job = {
  job_options : Options.t;
  job_modules : string list;
  job_called : string list;
  job_stored : string list;
  job_hot : string list option;
  job_phase_cache : bool;
}

type mem_summary = { ms_resident : int list; ms_peak : int; ms_peak_hlo : int }

type done_payload = {
  done_modules : string list;
  done_report : Hlo.report;
  done_lstats : Loader.stats;
  done_mem : mem_summary;
}

type parent_msg = Job of job | Have of string option | Ack | Bye

type worker_msg =
  | Need of string
  | Keep of string * string
  | Done of done_payload
  | Fail of string

let write_opt w f = function
  | None -> Codec.Writer.bool w false
  | Some v ->
    Codec.Writer.bool w true;
    f v

let read_opt r f = if Codec.Reader.bool r then Some (f r) else None

let write_report w (r : Hlo.report) =
  Codec.Writer.uvarint w r.Hlo.clones;
  write_opt w
    (fun (s : Inline.stats) ->
      Codec.Writer.uvarint w s.Inline.operations;
      Codec.Writer.uvarint w s.Inline.cross_module;
      Codec.Writer.varint w s.Inline.bytes_grown;
      Codec.Writer.uvarint w s.Inline.rejected_too_big;
      Codec.Writer.uvarint w s.Inline.rejected_cold;
      Codec.Writer.uvarint w s.Inline.rejected_recursive;
      Codec.Writer.uvarint w s.Inline.rejected_caller_full)
    r.Hlo.inline_stats;
  write_opt w
    (fun (s : Ipa.stats) ->
      Codec.Writer.uvarint w s.Ipa.const_params;
      Codec.Writer.uvarint w s.Ipa.const_global_loads;
      Codec.Writer.list w (Codec.Writer.string w) s.Ipa.dead_functions)
    r.Hlo.ipa_stats;
  Codec.Writer.uvarint w r.Hlo.funcs_optimized;
  Codec.Writer.uvarint w r.Hlo.funcs_skipped;
  Codec.Writer.uvarint w r.Hlo.rewrites

let read_report r =
  let clones = Codec.Reader.uvarint r in
  let inline_stats =
    read_opt r (fun r ->
        let operations = Codec.Reader.uvarint r in
        let cross_module = Codec.Reader.uvarint r in
        let bytes_grown = Codec.Reader.varint r in
        let rejected_too_big = Codec.Reader.uvarint r in
        let rejected_cold = Codec.Reader.uvarint r in
        let rejected_recursive = Codec.Reader.uvarint r in
        let rejected_caller_full = Codec.Reader.uvarint r in
        {
          Inline.operations;
          cross_module;
          bytes_grown;
          rejected_too_big;
          rejected_cold;
          rejected_recursive;
          rejected_caller_full;
        })
  in
  let ipa_stats =
    read_opt r (fun r ->
        let const_params = Codec.Reader.uvarint r in
        let const_global_loads = Codec.Reader.uvarint r in
        let dead_functions = Codec.Reader.list r Codec.Reader.string in
        { Ipa.const_params; const_global_loads; dead_functions })
  in
  let funcs_optimized = Codec.Reader.uvarint r in
  let funcs_skipped = Codec.Reader.uvarint r in
  let rewrites = Codec.Reader.uvarint r in
  { Hlo.clones; inline_stats; ipa_stats; funcs_optimized; funcs_skipped; rewrites }

let write_lstats w (s : Loader.stats) =
  Codec.Writer.uvarint w s.Loader.acquires;
  Codec.Writer.uvarint w s.Loader.cache_hits;
  Codec.Writer.uvarint w s.Loader.uncompactions;
  Codec.Writer.uvarint w s.Loader.repo_loads;
  Codec.Writer.uvarint w s.Loader.compactions;
  Codec.Writer.uvarint w s.Loader.offloads;
  Codec.Writer.uvarint w s.Loader.symtab_compactions

let read_lstats r =
  let acquires = Codec.Reader.uvarint r in
  let cache_hits = Codec.Reader.uvarint r in
  let uncompactions = Codec.Reader.uvarint r in
  let repo_loads = Codec.Reader.uvarint r in
  let compactions = Codec.Reader.uvarint r in
  let offloads = Codec.Reader.uvarint r in
  let symtab_compactions = Codec.Reader.uvarint r in
  {
    Loader.acquires;
    cache_hits;
    uncompactions;
    repo_loads;
    compactions;
    offloads;
    symtab_compactions;
  }

let write_mem w m =
  Codec.Writer.list w (Codec.Writer.uvarint w) m.ms_resident;
  Codec.Writer.uvarint w m.ms_peak;
  Codec.Writer.uvarint w m.ms_peak_hlo

let read_mem r =
  let ms_resident = Codec.Reader.list r Codec.Reader.uvarint in
  let ms_peak = Codec.Reader.uvarint r in
  let ms_peak_hlo = Codec.Reader.uvarint r in
  if List.length ms_resident <> List.length Memstats.all_categories then
    Codec.Reader.corrupt "mem summary category count";
  { ms_resident; ms_peak; ms_peak_hlo }

let encoded f v =
  let w = Codec.Writer.create () in
  f w v;
  Codec.Writer.contents w

let decoded name f s =
  let r = Codec.Reader.of_string s in
  let v = f r in
  if not (Codec.Reader.at_end r) then
    Codec.Reader.corrupt (name ^ ": trailing bytes");
  v

let encode_parent =
  encoded (fun w -> function
    | Job j ->
      Codec.Writer.byte w 1;
      Options.encode w j.job_options;
      Codec.Writer.list w (Codec.Writer.string w) j.job_modules;
      Codec.Writer.list w (Codec.Writer.string w) j.job_called;
      Codec.Writer.list w (Codec.Writer.string w) j.job_stored;
      write_opt w (Codec.Writer.list w (Codec.Writer.string w)) j.job_hot;
      Codec.Writer.bool w j.job_phase_cache
    | Have data ->
      Codec.Writer.byte w 2;
      write_opt w (Codec.Writer.string w) data
    | Ack -> Codec.Writer.byte w 3
    | Bye -> Codec.Writer.byte w 4)

let decode_parent =
  decoded "parent message" (fun r ->
      match Codec.Reader.byte r with
      | 1 ->
        let job_options = Options.decode r in
        let job_modules = Codec.Reader.list r Codec.Reader.string in
        let job_called = Codec.Reader.list r Codec.Reader.string in
        let job_stored = Codec.Reader.list r Codec.Reader.string in
        let job_hot = read_opt r (fun r -> Codec.Reader.list r Codec.Reader.string) in
        let job_phase_cache = Codec.Reader.bool r in
        Job
          {
            job_options;
            job_modules;
            job_called;
            job_stored;
            job_hot;
            job_phase_cache;
          }
      | 2 -> Have (read_opt r Codec.Reader.string)
      | 3 -> Ack
      | 4 -> Bye
      | n -> Codec.Reader.corrupt (Printf.sprintf "bad parent tag %d" n))

let encode_worker =
  encoded (fun w -> function
    | Need key ->
      Codec.Writer.byte w 1;
      Codec.Writer.string w key
    | Keep (key, data) ->
      Codec.Writer.byte w 2;
      Codec.Writer.string w key;
      Codec.Writer.string w data
    | Done d ->
      Codec.Writer.byte w 3;
      Codec.Writer.list w (Codec.Writer.string w) d.done_modules;
      write_report w d.done_report;
      write_lstats w d.done_lstats;
      write_mem w d.done_mem
    | Fail reason ->
      Codec.Writer.byte w 4;
      Codec.Writer.string w reason)

let decode_worker =
  decoded "worker message" (fun r ->
      match Codec.Reader.byte r with
      | 1 -> Need (Codec.Reader.string r)
      | 2 ->
        let key = Codec.Reader.string r in
        let data = Codec.Reader.string r in
        Keep (key, data)
      | 3 ->
        let done_modules = Codec.Reader.list r Codec.Reader.string in
        let done_report = read_report r in
        let done_lstats = read_lstats r in
        let done_mem = read_mem r in
        Done { done_modules; done_report; done_lstats; done_mem }
      | 4 -> Fail (Codec.Reader.string r)
      | n -> Codec.Reader.corrupt (Printf.sprintf "bad worker tag %d" n))

(* --- memory-accountant transport ---------------------------------- *)

let summary_of_memstats m =
  {
    ms_resident = List.map (Memstats.resident_of m) Memstats.all_categories;
    ms_peak = Memstats.peak m;
    ms_peak_hlo = Memstats.peak_hlo m;
  }

(* Replay a charge/release sequence that leaves the reconstructed
   accountant with exactly the worker's per-category residency, peak
   and HLO peak, so [Memstats.merge] folds it as it would have folded
   the worker's own instance.  Order matters: the non-Llo categories
   go first so the transient Derived charge reproduces [peak_hlo]
   (total resident never exceeds it at that point), then Llo and a
   transient Llo charge lift the overall peak. *)
let memstats_of_summary s =
  let m = Memstats.create () in
  let llo = ref 0 in
  List.iter2
    (fun cat n ->
      if cat = Memstats.Llo then llo := n
      else if n > 0 then Memstats.charge m cat n)
    Memstats.all_categories s.ms_resident;
  let dh = s.ms_peak_hlo - Memstats.hlo_resident m in
  if dh > 0 then begin
    Memstats.charge m Memstats.Derived dh;
    Memstats.release m Memstats.Derived dh
  end;
  if !llo > 0 then Memstats.charge m Memstats.Llo !llo;
  let dp = s.ms_peak - Memstats.resident m in
  if dp > 0 then begin
    Memstats.charge m Memstats.Llo dp;
    Memstats.release m Memstats.Llo dp
  end;
  m

(* --- counters ----------------------------------------------------- *)

let jobs_counter = Atomic.make 0
let lost_counter = Atomic.make 0
let events_counter = Atomic.make 0
let jobs_total () = Atomic.get jobs_counter
let lost_total () = Atomic.get lost_counter
let events_total () = Atomic.get events_counter

(* --- the worker side ---------------------------------------------- *)

exception Relay_broken

let run_job_local ~phase_cache (job : job) =
  let options = job.job_options in
  let modules = List.map Ilcodec.decode_module job.job_modules in
  let table names =
    let h = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace h n ()) names;
    h
  in
  let called = table job.job_called in
  let stored = table job.job_stored in
  let hot_filter =
    Option.map (fun names -> Hashtbl.mem (table names)) job.job_hot
  in
  let mem = Memstats.create () in
  let optimized, report, lstats =
    optimize_subset ?phase_cache ?hot_filter ~options
      ~externally_called:(Hashtbl.mem called)
      ~externally_stored:(Hashtbl.mem stored) ~mem modules
  in
  {
    done_modules = List.map Ilcodec.encode_module optimized;
    done_report = report;
    done_lstats = lstats;
    done_mem = summary_of_memstats mem;
  }

let worker_main in_fd out_fd =
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let send msg =
    try Fsio.write_framed out_fd (encode_worker msg)
    with Unix.Unix_error _ | Sys_error _ -> raise Relay_broken
  in
  let recv () =
    match Fsio.read_framed in_fd with
    | Ok payload -> (
      try Some (decode_parent payload)
      with Codec.Reader.Corrupt _ -> raise Relay_broken)
    | Error `Eof -> None
    | Error (`Bad _ | `Timeout) -> raise Relay_broken
  in
  (* The phase-cache relay: every find/add the optimizer performs
     becomes a strict request/reply exchange with the parent, which
     logs it into the partition's store transaction in this exact
     order — the op log, not the process boundary, decides the store
     bytes. *)
  let relay_cache =
    {
      Hlo.pc_find =
        (fun key ->
          send (Need key);
          match recv () with
          | Some (Have data) -> data
          | Some _ | None -> raise Relay_broken);
      pc_add =
        (fun key data ->
          send (Keep (key, data));
          match recv () with
          | Some Ack -> ()
          | Some _ | None -> raise Relay_broken);
    }
  in
  let rec serve () =
    match recv () with
    | None | Some Bye -> 0
    | Some (Have _ | Ack) -> 2
    | Some (Job job) -> (
      let phase_cache = if job.job_phase_cache then Some relay_cache else None in
      match run_job_local ~phase_cache job with
      | payload ->
        send (Done payload);
        serve ()
      | exception Relay_broken -> 2
      | exception e ->
        (* A genuine optimization failure: report it and keep serving —
           the parent degrades this partition to a local run, which
           reproduces the same failure with its real diagnostics. *)
        send (Fail (Printexc.to_string e));
        serve ())
  in
  let code = try serve () with Relay_broken -> 2 in
  exit code

(* --- the parent side ---------------------------------------------- *)

type worker_proc = { pid : int; fd : Unix.file_descr }

type pool = {
  bin : string;
  timeout_s : float;
  chaos_at : int option;  (* kill the active worker at this event *)
  chaos_fired : bool Atomic.t;
  events : int Atomic.t;  (* this pool's protocol-event clock *)
  lock : Mutex.t;
  mutable idle : worker_proc list;
  mutable procs : worker_proc list;
}

exception Worker_lost
exception Unavailable of string

let resolve_worker () =
  match Sys.getenv_opt "CMO_DIST_WORKER" with
  | Some p when p <> "" -> p
  | _ ->
    let dir = Filename.dirname Sys.executable_name in
    let sibling = Filename.concat dir "cmoc_worker.exe" in
    if Sys.file_exists sibling then sibling
    else
      Filename.concat
        (Filename.concat (Filename.concat dir Filename.parent_dir_name) "bin")
        "cmoc_worker.exe"

let parse_chaos = function
  | None -> None
  | Some spec -> (
    match String.index_opt spec '@' with
    | Some i
      when String.sub spec 0 i = "kill" ->
      int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
    | _ -> None)

let create_pool ?worker ?(timeout_s = 60.0) ?chaos () =
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let bin = match worker with Some b -> b | None -> resolve_worker () in
  if not (Sys.file_exists bin) then
    raise (Unavailable (Printf.sprintf "worker binary %s not found" bin));
  let chaos =
    match chaos with Some _ as c -> c | None -> Sys.getenv_opt "CMO_DIST_CHAOS"
  in
  {
    bin;
    timeout_s;
    chaos_at = parse_chaos chaos;
    chaos_fired = Atomic.make false;
    events = Atomic.make 0;
    lock = Mutex.create ();
    idle = [];
    procs = [];
  }

let locked pool f =
  Mutex.lock pool.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.lock) f

let spawn pool =
  let parent_fd, child_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.clear_close_on_exec child_fd;
  let pid = Unix.create_process pool.bin [| pool.bin |] child_fd child_fd Unix.stderr in
  Unix.close child_fd;
  let w = { pid; fd = parent_fd } in
  locked pool (fun () -> pool.procs <- w :: pool.procs);
  w

let checkout pool =
  match
    locked pool (fun () ->
        match pool.idle with
        | w :: rest ->
          pool.idle <- rest;
          Some w
        | [] -> None)
  with
  | Some w -> w
  | None -> spawn pool

let checkin pool w = locked pool (fun () -> pool.idle <- w :: pool.idle)

(* Reap a worker that is gone or no longer trustworthy.  SIGKILL is
   idempotent on an already-dead pid within our waitpid window. *)
let destroy pool w =
  locked pool (fun () ->
      pool.procs <- List.filter (fun p -> p.pid <> w.pid) pool.procs;
      pool.idle <- List.filter (fun p -> p.pid <> w.pid) pool.idle);
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  Atomic.incr lost_counter

(* One protocol event on the pool's clock; at the chaos mark, the
   active worker dies mid-conversation — exactly what a machine loss
   at that protocol step looks like to the parent. *)
let chaos_tick pool w =
  Atomic.incr events_counter;
  let n = Atomic.fetch_and_add pool.events 1 + 1 in
  match pool.chaos_at with
  | Some at
    when n = at
         && not (Atomic.exchange pool.chaos_fired true) ->
    Log.debug (fun m -> m "chaos: killing worker %d at event %d" w.pid n);
    destroy pool w;
    raise Worker_lost
  | _ -> ()

let run_job pool ?phase_cache job =
  let w = checkout pool in
  let lose () =
    destroy pool w;
    raise Worker_lost
  in
  let send msg =
    chaos_tick pool w;
    try Fsio.write_framed w.fd (encode_parent msg)
    with Unix.Unix_error _ | Sys_error _ -> lose ()
  in
  let recv () =
    chaos_tick pool w;
    match Fsio.read_framed ~timeout_s:pool.timeout_s w.fd with
    | Ok payload -> (
      try decode_worker payload with Codec.Reader.Corrupt _ -> lose ())
    | Error (`Eof | `Bad _ | `Timeout) -> lose ()
  in
  send (Job { job with job_phase_cache = phase_cache <> None });
  let rec wait () =
    match recv () with
    | Need key ->
      let data =
        match phase_cache with Some pc -> pc.Hlo.pc_find key | None -> None
      in
      send (Have data);
      wait ()
    | Keep (key, data) ->
      (match phase_cache with
      | Some pc -> pc.Hlo.pc_add key data
      | None -> ());
      send Ack;
      wait ()
    | Done payload ->
      checkin pool w;
      Atomic.incr jobs_counter;
      payload
    | Fail reason ->
      (* The worker is healthy; the job failed.  Keep the worker,
         count a degradation, and let the local rerun reproduce the
         failure (or, for environment-dependent faults, succeed). *)
      Log.debug (fun m -> m "worker %d failed job: %s" w.pid reason);
      checkin pool w;
      Atomic.incr lost_counter;
      raise Worker_lost
  in
  wait ()

let close_pool pool =
  let ps = locked pool (fun () ->
      let ps = pool.procs in
      pool.procs <- [];
      pool.idle <- [];
      ps)
  in
  List.iter
    (fun w ->
      (try Fsio.write_framed w.fd (encode_parent Bye)
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
    ps

(* --- remote artifact cache ---------------------------------------- *)

type remote = {
  remote_get : string -> string option;
  remote_put : string -> string -> unit;
}
