module Ilmod = Cmo_il.Ilmod
module Func = Cmo_il.Func
module Callgraph = Cmo_il.Callgraph
module Ilcodec = Cmo_il.Ilcodec
module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Netio = Cmo_support.Netio
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Hlo = Cmo_hlo.Hlo
module Inline = Cmo_hlo.Inline
module Ipa = Cmo_hlo.Ipa
module Ilcheck = Cmo_check.Ilcheck

let log_src = Logs.Src.create "cmo.dist" ~doc:"distributed CMO workers"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- the shared partition optimizer ------------------------------- *)

(* A domain-safe lazy (same rationale as the pipeline's copy): checker
   environments are shared read-only and [Lazy.force] is not
   domain-safe under races. *)
let memo_locked f =
  let m = Mutex.create () in
  let cell = ref None in
  fun () ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) @@ fun () ->
    match !cell with
    | Some v -> v
    | None ->
      let v = f () in
      cell := Some v;
      v

(* A loader-backed resolution environment: function arities straight
   from the pool headers (clones included, IPA-removed routines
   absent — exactly the NAIM ownership the verifier polices) and the
   globals of every registered module. *)
let loader_env loader =
  {
    Ilcheck.resolve =
      (fun name ->
        match Loader.arity_of loader name with
        | Some arity -> Some (Ilcheck.Func_binding { arity })
        | None ->
          Option.map
            (fun size -> Ilcheck.Global_binding { size })
            (Loader.global_size_of loader name));
  }

let optimize_subset ?phase_cache ?naim_repo ?hot_filter ?check_base
    ~(options : Options.t) ~externally_called ~externally_stored ~mem subset =
  let cg = Callgraph.build subset in
  (* Everything that reads module function lists must run before
     registration: the loader takes ownership and empties them. *)
  let main_in_set =
    List.exists
      (fun (m : Ilmod.t) ->
        List.exists (fun f -> f.Func.name = "main") m.Ilmod.funcs)
      subset
  in
  let loader_config =
    {
      Loader.default_config with
      Loader.machine_memory = options.Options.machine_memory;
      forced_level = options.Options.naim_level;
    }
  in
  let loader = Loader.create ?repo:naim_repo loader_config mem in
  List.iter (Loader.register_module loader) subset;
  let check =
    match check_base with
    | Some outside when options.Options.check ->
      let env =
        memo_locked (fun () -> Ilcheck.compose (loader_env loader) (outside ()))
      in
      Some (fun ~phase f -> Ilcheck.check_func_exn ~env:(env ()) ~phase f)
    | Some _ | None -> None
  in
  let ipa_context =
    {
      Ipa.externally_called;
      externally_stored;
      entry = (if main_in_set then Some "main" else None);
      keep_exported = true;
    }
  in
  let base_options = Hlo.o4_options ~profile:options.Options.pbo in
  let inline_config =
    let config =
      match options.Options.inline_config with
      | Some c -> c
      | None -> (
        match base_options.Hlo.inline with
        | Some c -> c
        | None -> Inline.default_config)
    in
    { config with Inline.operation_limit = options.Options.inline_limit }
  in
  let hlo_options =
    {
      base_options with
      Hlo.inline = Some inline_config;
      hot_filter;
      rewrite_limit = options.Options.rewrite_limit;
      phase_cache;
      check;
    }
  in
  let report = Hlo.run loader cg ~ipa_context hlo_options in
  let optimized = Loader.extract_modules loader in
  let lstats = Loader.stats loader in
  Loader.close loader;
  (optimized, report, lstats)

(* --- wire messages ------------------------------------------------ *)

(* The IL-codec generation this binary speaks.  Bumped whenever any
   wire payload changes shape (job options, module encoding, message
   set); a worker whose [wire_version] differs from the parent's is
   version-skewed and must be refused, never mixed into artifacts. *)
let wire_version = 2

type hello = {
  h_wire : int;  (* the worker's [wire_version] *)
  h_digest : string;  (* the worker binary's content digest *)
}

type job = {
  job_options : Options.t;
  job_modules : string list;
  job_called : string list;
  job_stored : string list;
  job_hot : string list option;
  job_phase_cache : bool;
}

type mem_summary = { ms_resident : int list; ms_peak : int; ms_peak_hlo : int }

type done_payload = {
  done_modules : string list;
  done_report : Hlo.report;
  done_lstats : Loader.stats;
  done_mem : mem_summary;
}

type parent_msg =
  | Job of job
  | Have of string option
  | Ack
  | Bye
  | Refuse of string

type worker_msg =
  | Need of string
  | Keep of string * string
  | Done of done_payload
  | Fail of string
  | Hello of hello
  | Pulse

let write_opt w f = function
  | None -> Codec.Writer.bool w false
  | Some v ->
    Codec.Writer.bool w true;
    f v

let read_opt r f = if Codec.Reader.bool r then Some (f r) else None

let write_report w (r : Hlo.report) =
  Codec.Writer.uvarint w r.Hlo.clones;
  write_opt w
    (fun (s : Inline.stats) ->
      Codec.Writer.uvarint w s.Inline.operations;
      Codec.Writer.uvarint w s.Inline.cross_module;
      Codec.Writer.varint w s.Inline.bytes_grown;
      Codec.Writer.uvarint w s.Inline.rejected_too_big;
      Codec.Writer.uvarint w s.Inline.rejected_cold;
      Codec.Writer.uvarint w s.Inline.rejected_recursive;
      Codec.Writer.uvarint w s.Inline.rejected_caller_full)
    r.Hlo.inline_stats;
  write_opt w
    (fun (s : Ipa.stats) ->
      Codec.Writer.uvarint w s.Ipa.const_params;
      Codec.Writer.uvarint w s.Ipa.const_global_loads;
      Codec.Writer.list w (Codec.Writer.string w) s.Ipa.dead_functions)
    r.Hlo.ipa_stats;
  Codec.Writer.uvarint w r.Hlo.funcs_optimized;
  Codec.Writer.uvarint w r.Hlo.funcs_skipped;
  Codec.Writer.uvarint w r.Hlo.rewrites

let read_report r =
  let clones = Codec.Reader.uvarint r in
  let inline_stats =
    read_opt r (fun r ->
        let operations = Codec.Reader.uvarint r in
        let cross_module = Codec.Reader.uvarint r in
        let bytes_grown = Codec.Reader.varint r in
        let rejected_too_big = Codec.Reader.uvarint r in
        let rejected_cold = Codec.Reader.uvarint r in
        let rejected_recursive = Codec.Reader.uvarint r in
        let rejected_caller_full = Codec.Reader.uvarint r in
        {
          Inline.operations;
          cross_module;
          bytes_grown;
          rejected_too_big;
          rejected_cold;
          rejected_recursive;
          rejected_caller_full;
        })
  in
  let ipa_stats =
    read_opt r (fun r ->
        let const_params = Codec.Reader.uvarint r in
        let const_global_loads = Codec.Reader.uvarint r in
        let dead_functions = Codec.Reader.list r Codec.Reader.string in
        { Ipa.const_params; const_global_loads; dead_functions })
  in
  let funcs_optimized = Codec.Reader.uvarint r in
  let funcs_skipped = Codec.Reader.uvarint r in
  let rewrites = Codec.Reader.uvarint r in
  { Hlo.clones; inline_stats; ipa_stats; funcs_optimized; funcs_skipped; rewrites }

let write_lstats w (s : Loader.stats) =
  Codec.Writer.uvarint w s.Loader.acquires;
  Codec.Writer.uvarint w s.Loader.cache_hits;
  Codec.Writer.uvarint w s.Loader.uncompactions;
  Codec.Writer.uvarint w s.Loader.repo_loads;
  Codec.Writer.uvarint w s.Loader.compactions;
  Codec.Writer.uvarint w s.Loader.offloads;
  Codec.Writer.uvarint w s.Loader.symtab_compactions

let read_lstats r =
  let acquires = Codec.Reader.uvarint r in
  let cache_hits = Codec.Reader.uvarint r in
  let uncompactions = Codec.Reader.uvarint r in
  let repo_loads = Codec.Reader.uvarint r in
  let compactions = Codec.Reader.uvarint r in
  let offloads = Codec.Reader.uvarint r in
  let symtab_compactions = Codec.Reader.uvarint r in
  {
    Loader.acquires;
    cache_hits;
    uncompactions;
    repo_loads;
    compactions;
    offloads;
    symtab_compactions;
  }

let write_mem w m =
  Codec.Writer.list w (Codec.Writer.uvarint w) m.ms_resident;
  Codec.Writer.uvarint w m.ms_peak;
  Codec.Writer.uvarint w m.ms_peak_hlo

let read_mem r =
  let ms_resident = Codec.Reader.list r Codec.Reader.uvarint in
  let ms_peak = Codec.Reader.uvarint r in
  let ms_peak_hlo = Codec.Reader.uvarint r in
  if List.length ms_resident <> List.length Memstats.all_categories then
    Codec.Reader.corrupt "mem summary category count";
  { ms_resident; ms_peak; ms_peak_hlo }

let encoded f v =
  let w = Codec.Writer.create () in
  f w v;
  Codec.Writer.contents w

let decoded name f s =
  let r = Codec.Reader.of_string s in
  let v = f r in
  if not (Codec.Reader.at_end r) then
    Codec.Reader.corrupt (name ^ ": trailing bytes");
  v

let encode_parent =
  encoded (fun w -> function
    | Job j ->
      Codec.Writer.byte w 1;
      Options.encode w j.job_options;
      Codec.Writer.list w (Codec.Writer.string w) j.job_modules;
      Codec.Writer.list w (Codec.Writer.string w) j.job_called;
      Codec.Writer.list w (Codec.Writer.string w) j.job_stored;
      write_opt w (Codec.Writer.list w (Codec.Writer.string w)) j.job_hot;
      Codec.Writer.bool w j.job_phase_cache
    | Have data ->
      Codec.Writer.byte w 2;
      write_opt w (Codec.Writer.string w) data
    | Ack -> Codec.Writer.byte w 3
    | Bye -> Codec.Writer.byte w 4
    | Refuse reason ->
      Codec.Writer.byte w 5;
      Codec.Writer.string w reason)

let decode_parent =
  decoded "parent message" (fun r ->
      match Codec.Reader.byte r with
      | 1 ->
        let job_options = Options.decode r in
        let job_modules = Codec.Reader.list r Codec.Reader.string in
        let job_called = Codec.Reader.list r Codec.Reader.string in
        let job_stored = Codec.Reader.list r Codec.Reader.string in
        let job_hot = read_opt r (fun r -> Codec.Reader.list r Codec.Reader.string) in
        let job_phase_cache = Codec.Reader.bool r in
        Job
          {
            job_options;
            job_modules;
            job_called;
            job_stored;
            job_hot;
            job_phase_cache;
          }
      | 2 -> Have (read_opt r Codec.Reader.string)
      | 3 -> Ack
      | 4 -> Bye
      | 5 -> Refuse (Codec.Reader.string r)
      | n -> Codec.Reader.corrupt (Printf.sprintf "bad parent tag %d" n))

let encode_worker =
  encoded (fun w -> function
    | Need key ->
      Codec.Writer.byte w 1;
      Codec.Writer.string w key
    | Keep (key, data) ->
      Codec.Writer.byte w 2;
      Codec.Writer.string w key;
      Codec.Writer.string w data
    | Done d ->
      Codec.Writer.byte w 3;
      Codec.Writer.list w (Codec.Writer.string w) d.done_modules;
      write_report w d.done_report;
      write_lstats w d.done_lstats;
      write_mem w d.done_mem
    | Fail reason ->
      Codec.Writer.byte w 4;
      Codec.Writer.string w reason
    | Hello h ->
      Codec.Writer.byte w 5;
      Codec.Writer.uvarint w h.h_wire;
      Codec.Writer.string w h.h_digest
    | Pulse -> Codec.Writer.byte w 6)

let decode_worker =
  decoded "worker message" (fun r ->
      match Codec.Reader.byte r with
      | 1 -> Need (Codec.Reader.string r)
      | 2 ->
        let key = Codec.Reader.string r in
        let data = Codec.Reader.string r in
        Keep (key, data)
      | 3 ->
        let done_modules = Codec.Reader.list r Codec.Reader.string in
        let done_report = read_report r in
        let done_lstats = read_lstats r in
        let done_mem = read_mem r in
        Done { done_modules; done_report; done_lstats; done_mem }
      | 4 -> Fail (Codec.Reader.string r)
      | 5 ->
        let h_wire = Codec.Reader.uvarint r in
        let h_digest = Codec.Reader.string r in
        Hello { h_wire; h_digest }
      | 6 -> Pulse
      | n -> Codec.Reader.corrupt (Printf.sprintf "bad worker tag %d" n))

(* --- memory-accountant transport ---------------------------------- *)

let summary_of_memstats m =
  {
    ms_resident = List.map (Memstats.resident_of m) Memstats.all_categories;
    ms_peak = Memstats.peak m;
    ms_peak_hlo = Memstats.peak_hlo m;
  }

(* Replay a charge/release sequence that leaves the reconstructed
   accountant with exactly the worker's per-category residency, peak
   and HLO peak, so [Memstats.merge] folds it as it would have folded
   the worker's own instance.  Order matters: the non-Llo categories
   go first so the transient Derived charge reproduces [peak_hlo]
   (total resident never exceeds it at that point), then Llo and a
   transient Llo charge lift the overall peak. *)
let memstats_of_summary s =
  let m = Memstats.create () in
  let llo = ref 0 in
  List.iter2
    (fun cat n ->
      if cat = Memstats.Llo then llo := n
      else if n > 0 then Memstats.charge m cat n)
    Memstats.all_categories s.ms_resident;
  let dh = s.ms_peak_hlo - Memstats.hlo_resident m in
  if dh > 0 then begin
    Memstats.charge m Memstats.Derived dh;
    Memstats.release m Memstats.Derived dh
  end;
  if !llo > 0 then Memstats.charge m Memstats.Llo !llo;
  let dp = s.ms_peak - Memstats.resident m in
  if dp > 0 then begin
    Memstats.charge m Memstats.Llo dp;
    Memstats.release m Memstats.Llo dp
  end;
  m

(* --- counters ----------------------------------------------------- *)

let jobs_counter = Atomic.make 0
let lost_counter = Atomic.make 0
let events_counter = Atomic.make 0
let refused_counter = Atomic.make 0
let stragglers_counter = Atomic.make 0
let retired_counter = Atomic.make 0
let jobs_total () = Atomic.get jobs_counter
let lost_total () = Atomic.get lost_counter
let events_total () = Atomic.get events_counter
let refused_total () = Atomic.get refused_counter
let stragglers_total () = Atomic.get stragglers_counter
let retired_total () = Atomic.get retired_counter

(* --- the worker side ---------------------------------------------- *)

exception Relay_broken

let run_job_local ~phase_cache (job : job) =
  let options = job.job_options in
  let modules = List.map Ilcodec.decode_module job.job_modules in
  let table names =
    let h = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace h n ()) names;
    h
  in
  let called = table job.job_called in
  let stored = table job.job_stored in
  let hot_filter =
    Option.map (fun names -> Hashtbl.mem (table names)) job.job_hot
  in
  let mem = Memstats.create () in
  let optimized, report, lstats =
    optimize_subset ?phase_cache ?hot_filter ~options
      ~externally_called:(Hashtbl.mem called)
      ~externally_stored:(Hashtbl.mem stored) ~mem modules
  in
  {
    done_modules = List.map Ilcodec.encode_module optimized;
    done_report = report;
    done_lstats = lstats;
    done_mem = summary_of_memstats mem;
  }

(* The fingerprint this worker reports in its [Hello]: the running
   binary's content digest, overridable through [$CMO_WORKER_FP] (the
   skew tests' lever — a spawned worker inherits the parent's
   environment, so the override makes the {e reported} fingerprint
   diverge from the binary the parent expects). *)
let self_fingerprint () =
  match Sys.getenv_opt "CMO_WORKER_FP" with
  | Some fp when fp <> "" -> fp
  | _ -> (
    try Digest.to_hex (Digest.file Sys.executable_name)
    with Sys_error _ | Unix.Unix_error _ -> "unknown")

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some f when f >= 0.0 -> f
  | _ -> default

(* Run [f] while a background thread sends [Pulse] every [hb] seconds
   — proof of life during a long optimization, so the parent can tell
   a straggler (alive but past its deadline) from a dead peer.  Sends
   go through the caller's lock-serialized [send], so a pulse can
   never interleave with a relay frame. *)
let with_pulses ~hb ~send f =
  if hb <= 0.0 then f ()
  else begin
    let stop = Atomic.make false in
    let tick = min hb 0.05 in
    let th =
      Thread.create
        (fun () ->
          let rec loop acc =
            if not (Atomic.get stop) then begin
              Thread.delay tick;
              let acc = acc +. tick in
              if acc >= hb then begin
                (match send Pulse with
                | () -> loop 0.0
                | exception _ -> Atomic.set stop true)
              end
              else loop acc
            end
          in
          loop 0.0)
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join th)
      f
  end

(* Serve one parent conversation on an fd pair (a socketpair to a
   spawned worker, or one accepted TCP connection).  Returns the exit
   status: 0 for a clean goodbye (Bye, EOF or a version refusal), 2
   for a protocol violation. *)
let serve_conn in_fd out_fd =
  let send_lock = Mutex.create () in
  let send msg =
    Mutex.lock send_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock send_lock)
      (fun () ->
        try Fsio.write_framed out_fd (encode_worker msg)
        with Unix.Unix_error _ | Sys_error _ -> raise Relay_broken)
  in
  let recv () =
    match Fsio.read_framed in_fd with
    | Ok payload -> (
      try Some (decode_parent payload)
      with Codec.Reader.Corrupt _ -> raise Relay_broken)
    | Error `Eof -> None
    | Error (`Bad _ | `Timeout) -> raise Relay_broken
  in
  (* The phase-cache relay: every find/add the optimizer performs
     becomes a strict request/reply exchange with the parent, which
     logs it into the partition's store transaction in this exact
     order — the op log, not the process boundary, decides the store
     bytes. *)
  let relay_cache =
    {
      Hlo.pc_find =
        (fun key ->
          send (Need key);
          match recv () with
          | Some (Have data) -> data
          | Some _ | None -> raise Relay_broken);
      pc_add =
        (fun key data ->
          send (Keep (key, data));
          match recv () with
          | Some Ack -> ()
          | Some _ | None -> raise Relay_broken);
    }
  in
  let hb = env_float "CMO_WORKER_HB" 5.0 in
  let slow = env_float "CMO_WORKER_SLOW_S" 0.0 in
  let rec serve () =
    match recv () with
    | None | Some Bye -> 0
    | Some (Refuse reason) ->
      Log.warn (fun m -> m "parent refused this worker: %s" reason);
      0
    | Some (Have _ | Ack) -> 2
    | Some (Job job) -> (
      let phase_cache = if job.job_phase_cache then Some relay_cache else None in
      let work () =
        if slow > 0.0 then Thread.delay slow;
        run_job_local ~phase_cache job
      in
      match with_pulses ~hb ~send work with
      | payload ->
        send (Done payload);
        serve ()
      | exception Relay_broken -> 2
      | exception e ->
        (* A genuine optimization failure: report it and keep serving —
           the parent degrades this partition to a local run, which
           reproduces the same failure with its real diagnostics. *)
        send (Fail (Printexc.to_string e));
        serve ())
  in
  try
    (* The mandatory handshake: version and identity first, before any
       job bytes, so a skewed worker is refused before it can touch an
       artifact. *)
    send (Hello { h_wire = wire_version; h_digest = self_fingerprint () });
    serve ()
  with Relay_broken -> 2

let worker_main in_fd out_fd =
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  exit (serve_conn in_fd out_fd)

let worker_listen ?port_file host port =
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd, actual = Netio.listen host port in
  (* The parseable "where am I" line tooling scrapes (port 0 binds an
     ephemeral port); the optional port file is the race-free variant. *)
  Printf.printf "cmoc-worker: listening on %s\n%!" (Netio.format_addr host actual);
  (match port_file with
  | Some path -> Fsio.atomic_write path (string_of_int actual ^ "\n")
  | None -> ());
  let rec accept_loop () =
    match Unix.accept ~cloexec:true fd with
    | conn, _ ->
      (* One thread per conversation: a fleet parent dials one
         connection per concurrent job, and a stalled conversation
         must not block the next accept. *)
      ignore
        (Thread.create
           (fun () ->
             (try ignore (serve_conn conn conn) with _ -> ());
             try Unix.close conn with Unix.Unix_error _ -> ())
           ());
      accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ()

(* --- the parent side ---------------------------------------------- *)

(* A remote worker machine: dialed on demand (several concurrent
   connections are fine — the listener serves each in a thread), with
   a consecutive-loss circuit breaker.  [breaker_limit] straight
   losses retire the endpoint for the rest of the pool's life; any
   completed job resets the count. *)
type endpoint = {
  ep_addr : string;  (* as configured, "host:port" *)
  ep_host : string;
  ep_port : int;
  mutable ep_fails : int;  (* consecutive losses *)
  mutable ep_retired : bool;
}

let breaker_limit = 3

type wkind =
  | Proc of int  (* a spawned local worker, by pid *)
  | Net of endpoint  (* one connection to a remote worker *)

type worker_conn = { kind : wkind; fd : Unix.file_descr }

type pool = {
  bin : string option;  (* None: no local binary, endpoints only *)
  expect_fp : string option;  (* the fingerprint Hello must report *)
  timeout_s : float;
  deadline_s : float option;  (* straggler redo bound per job *)
  endpoints : endpoint list;
  rr : int Atomic.t;  (* round-robin dial cursor *)
  chaos_at : int option;  (* kill the active worker at this event *)
  chaos_fired : bool Atomic.t;
  events : int Atomic.t;  (* this pool's protocol-event clock *)
  lock : Mutex.t;
  mutable local_refused : bool;  (* the local binary failed handshake *)
  mutable idle : worker_conn list;
  mutable conns : worker_conn list;
}

exception Worker_lost
exception Unavailable of string

let resolve_worker () =
  match Sys.getenv_opt "CMO_DIST_WORKER" with
  | Some p when p <> "" -> p
  | _ ->
    let dir = Filename.dirname Sys.executable_name in
    let sibling = Filename.concat dir "cmoc_worker.exe" in
    if Sys.file_exists sibling then sibling
    else
      Filename.concat
        (Filename.concat (Filename.concat dir Filename.parent_dir_name) "bin")
        "cmoc_worker.exe"

let parse_chaos = function
  | None -> None
  | Some spec -> (
    match String.index_opt spec '@' with
    | Some i
      when String.sub spec 0 i = "kill" ->
      int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
    | _ -> None)

(* The fingerprint the parent demands in every [Hello]:
   [$CMO_DIST_EXPECT_FP] when set (fleet deployments pin it), else the
   local worker binary's digest (spawned workers and same-build remote
   workers match it), else nothing to compare against — only the wire
   version is checked. *)
let expected_fingerprint bin =
  match Sys.getenv_opt "CMO_DIST_EXPECT_FP" with
  | Some fp when fp <> "" -> Some fp
  | _ -> (
    match bin with
    | None -> None
    | Some b -> (
      try Some (Digest.to_hex (Digest.file b))
      with Sys_error _ | Unix.Unix_error _ -> None))

let create_pool ?worker ?timeout_s ?deadline_s ?workers ?chaos () =
  if Sys.os_type <> "Win32" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Env knobs are re-read per pool (not the process-start snapshot in
     [Options.env]) — like [$CMO_DIST_CHAOS], the fault/robustness
     suites flip them between builds inside one process. *)
  let dyn = Options.from_env () in
  let timeout_s =
    match timeout_s with
    | Some t -> t
    | None -> (
      match dyn.Options.env_dist_timeout with Some t -> t | None -> 60.0)
  in
  let deadline_s =
    match deadline_s with
    | Some _ as d -> d
    | None -> dyn.Options.env_dist_deadline
  in
  let workers =
    match workers with
    | Some ws -> ws
    | None -> dyn.Options.env_dist_workers
  in
  let endpoints =
    List.filter_map
      (fun addr ->
        match Netio.parse_addr addr with
        | Ok (h, p) ->
          Some
            { ep_addr = addr; ep_host = h; ep_port = p; ep_fails = 0;
              ep_retired = false }
        | Error m ->
          Log.warn (fun f -> f "ignoring worker endpoint: %s" m);
          None)
      workers
  in
  let bin = match worker with Some b -> b | None -> resolve_worker () in
  let bin = if Sys.file_exists bin then Some bin else None in
  if bin = None && endpoints = [] then
    raise
      (Unavailable
         (Printf.sprintf "worker binary %s not found and no --workers given"
            (match worker with Some b -> b | None -> resolve_worker ())));
  let chaos =
    match chaos with Some _ as c -> c | None -> Sys.getenv_opt "CMO_DIST_CHAOS"
  in
  {
    bin;
    expect_fp = expected_fingerprint bin;
    timeout_s;
    deadline_s;
    endpoints;
    rr = Atomic.make 0;
    chaos_at = parse_chaos chaos;
    chaos_fired = Atomic.make false;
    events = Atomic.make 0;
    lock = Mutex.create ();
    local_refused = false;
    idle = [];
    conns = [];
  }

let locked pool f =
  Mutex.lock pool.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool.lock) f

let same_conn a b = a.fd == b.fd

let spawn pool bin =
  let parent_fd, child_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.clear_close_on_exec child_fd;
  let pid = Unix.create_process bin [| bin |] child_fd child_fd Unix.stderr in
  Unix.close child_fd;
  let w = { kind = Proc pid; fd = parent_fd } in
  locked pool (fun () -> pool.conns <- w :: pool.conns);
  w

(* A consecutive loss on an endpoint; trips the breaker at the
   limit. *)
let note_endpoint_loss pool e =
  locked pool (fun () ->
      e.ep_fails <- e.ep_fails + 1;
      if e.ep_fails >= breaker_limit && not e.ep_retired then begin
        e.ep_retired <- true;
        Atomic.incr retired_counter;
        Log.warn (fun m ->
            m "retiring worker %s after %d consecutive losses" e.ep_addr
              e.ep_fails)
      end)

(* Reap a worker that is gone or no longer trustworthy.  SIGKILL is
   idempotent on an already-dead pid within our waitpid window; a
   remote loss feeds the endpoint's circuit breaker instead. *)
let destroy pool w =
  locked pool (fun () ->
      pool.conns <- List.filter (fun p -> not (same_conn p w)) pool.conns;
      pool.idle <- List.filter (fun p -> not (same_conn p w)) pool.idle);
  (match w.kind with
  | Proc pid ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  | Net e -> note_endpoint_loss pool e);
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  Atomic.incr lost_counter

(* Consume the mandatory [Hello] on a fresh connection and verify the
   worker's version fingerprint.  A skewed worker is told why
   ([Refuse]) and discarded — its jobs are never mixed into
   artifacts; for a remote endpoint the skew also retires the
   endpoint outright (version skew does not heal by retrying). *)
let handshake pool w =
  let refuse reason =
    Atomic.incr refused_counter;
    Log.warn (fun m ->
        m "refusing %s worker: %s"
          (match w.kind with Proc _ -> "spawned" | Net e -> e.ep_addr)
          reason);
    (try Netio.send w.fd (encode_parent (Refuse reason))
     with Unix.Unix_error _ | Sys_error _ -> ());
    (match w.kind with
    | Proc _ -> pool.local_refused <- true
    | Net e ->
      locked pool (fun () ->
          if not e.ep_retired then begin
            e.ep_retired <- true;
            Atomic.incr retired_counter
          end));
    destroy pool w;
    raise Worker_lost
  in
  match Netio.recv ~timeout_s:pool.timeout_s w.fd with
  | Ok payload -> (
    match decode_worker payload with
    | Hello h ->
      if h.h_wire <> wire_version then
        refuse
          (Printf.sprintf "wire version %d, this build speaks %d" h.h_wire
             wire_version)
      else (
        match pool.expect_fp with
        | Some fp when fp <> h.h_digest ->
          refuse
            (Printf.sprintf "binary fingerprint %s, expected %s" h.h_digest fp)
        | Some _ | None -> ())
    | _ ->
      destroy pool w;
      raise Worker_lost
    | exception Codec.Reader.Corrupt _ ->
      destroy pool w;
      raise Worker_lost)
  | Error (`Eof | `Bad _ | `Timeout) ->
    destroy pool w;
    raise Worker_lost

let rotate n xs =
  if xs = [] then []
  else
    let n = n mod List.length xs in
    let rec split i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> split (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split n [] xs

let checkout pool =
  match
    locked pool (fun () ->
        match pool.idle with
        | w :: rest ->
          pool.idle <- rest;
          Some w
        | [] -> None)
  with
  | Some w -> w
  | None ->
    let live =
      locked pool (fun () ->
          List.filter (fun e -> not e.ep_retired) pool.endpoints)
    in
    let candidates = rotate (Atomic.fetch_and_add pool.rr 1) live in
    let spawn_local () =
      match pool.bin with
      | Some bin when not pool.local_refused ->
        let w = spawn pool bin in
        handshake pool w;
        w
      | _ -> raise Worker_lost
    in
    let rec dial = function
      | [] -> spawn_local ()
      | e :: rest -> (
        match Netio.connect e.ep_host e.ep_port with
        | fd ->
          let w = { kind = Net e; fd } in
          locked pool (fun () -> pool.conns <- w :: pool.conns);
          (try
             handshake pool w;
             w
           with Worker_lost -> dial rest)
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (* A failed dial is an endpoint loss (feeds the breaker) but
             not a lost job — the next candidate or a local spawn can
             still run it on a worker. *)
          note_endpoint_loss pool e;
          dial rest)
    in
    dial candidates

let checkin pool w = locked pool (fun () -> pool.idle <- w :: pool.idle)

(* One protocol event on the pool's clock; at the chaos mark, the
   active worker dies mid-conversation — exactly what a machine loss
   at that protocol step looks like to the parent. *)
let chaos_tick pool w =
  Atomic.incr events_counter;
  let n = Atomic.fetch_and_add pool.events 1 + 1 in
  match pool.chaos_at with
  | Some at
    when n = at
         && not (Atomic.exchange pool.chaos_fired true) ->
    Log.debug (fun m -> m "chaos: killing active worker at event %d" n);
    destroy pool w;
    raise Worker_lost
  | _ -> ()

let run_job pool ?phase_cache job =
  let w = checkout pool in
  let started = Unix.gettimeofday () in
  let lose () =
    destroy pool w;
    raise Worker_lost
  in
  (* Straggler redo: the job has a deadline independent of the read
     timeout — heartbeats prove the worker is alive, but a partition
     must not wait on a live-but-slow machine when redoing the work
     locally is cheaper.  Checked against the wall clock at every
     received message (pulses included). *)
  let check_deadline () =
    match pool.deadline_s with
    | Some d when Unix.gettimeofday () -. started > d ->
      Atomic.incr stragglers_counter;
      Log.debug (fun m -> m "straggler: job past its %.3fs deadline, redoing" d);
      lose ()
    | _ -> ()
  in
  let send msg =
    chaos_tick pool w;
    try Netio.send w.fd (encode_parent msg)
    with Unix.Unix_error _ | Sys_error _ -> lose ()
  in
  let recv () =
    chaos_tick pool w;
    match Netio.recv ~timeout_s:pool.timeout_s w.fd with
    | Ok payload -> (
      try decode_worker payload with Codec.Reader.Corrupt _ -> lose ())
    | Error (`Eof | `Bad _ | `Timeout) -> lose ()
  in
  send (Job { job with job_phase_cache = phase_cache <> None });
  let rec wait () =
    match recv () with
    | Pulse ->
      check_deadline ();
      wait ()
    | Hello _ ->
      (* Out-of-band handshake mid-conversation: protocol violation. *)
      lose ()
    | Need key ->
      check_deadline ();
      let data =
        match phase_cache with Some pc -> pc.Hlo.pc_find key | None -> None
      in
      send (Have data);
      wait ()
    | Keep (key, data) ->
      check_deadline ();
      (match phase_cache with
      | Some pc -> pc.Hlo.pc_add key data
      | None -> ());
      send Ack;
      wait ()
    | Done payload ->
      (match w.kind with
      | Net e -> locked pool (fun () -> e.ep_fails <- 0)
      | Proc _ -> ());
      checkin pool w;
      Atomic.incr jobs_counter;
      payload
    | Fail reason ->
      (* The worker is healthy; the job failed.  Keep the worker,
         count a degradation, and let the local rerun reproduce the
         failure (or, for environment-dependent faults, succeed). *)
      Log.debug (fun m -> m "worker failed job: %s" reason);
      (match w.kind with
      | Net e -> locked pool (fun () -> e.ep_fails <- 0)
      | Proc _ -> ());
      checkin pool w;
      Atomic.incr lost_counter;
      raise Worker_lost
  in
  wait ()

let close_pool pool =
  let ps =
    locked pool (fun () ->
        let ps = pool.conns in
        pool.conns <- [];
        pool.idle <- [];
        ps)
  in
  List.iter
    (fun w ->
      (try Fsio.write_framed w.fd (encode_parent Bye)
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      match w.kind with
      | Proc pid -> (
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      | Net _ -> ())
    ps

(* --- remote artifact cache ---------------------------------------- *)

type remote = {
  remote_get : string -> string option;
  remote_put : string -> string -> unit;
}
