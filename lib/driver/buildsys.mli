(** A miniature [make]-style build driver over on-disk object files.

    Demonstrates the paper's section 6.1 claim: the CMO framework
    needs no persistent program database — all persistent state except
    profiles lives in ordinary object files, so a timestamp/digest
    build tool can drive it.

    A workspace maps module names to [<name>.o] files under a
    directory.  [build] recompiles exactly the modules whose source
    digest differs from the one recorded in their object file (the
    moral equivalent of make's timestamp comparison), then performs
    the link step — which, in CMO mode, re-runs cross-module
    optimization over the IL payloads, reproducing the paper's
    trade-off that "a change in one module potentially requires
    recompilation of all modules in the CMO set" being replaced by
    re-optimization at link time.

    That trade-off is softened by a persistent artifact cache (on by
    default): link-time CMO results are stored content-addressed
    under [<dir>/.cmo-cache] (two files, [index] and [payload] — see
    {!Cmo_cache.Store}), so a rebuild with no effective change skips
    the optimizer entirely and an incremental change re-optimizes
    only its invalidation closure.  {!clean} wipes the cache along
    with the object files. *)

type t

val create :
  ?cache:bool -> ?cache_dir:string -> ?cache_capacity:int -> dir:string ->
  unit -> t
(** The directory must exist and be writable.  [cache] (default
    [true]) enables the link-time artifact cache; [cache_dir]
    overrides its location (default [<dir>/.cmo-cache]) and
    [cache_capacity] its live-byte bound (default 256 MiB, see
    {!Cmo_cache.Store.open_}). *)

val cache_dir : t -> string
(** Where this workspace's artifact cache lives (whether enabled or
    not). *)

type outcome = {
  build : Pipeline.build;
  recompiled : string list;  (** Modules whose object was rebuilt. *)
  reused : string list;  (** Modules whose object was up to date. *)
}

val build :
  ?profile:Cmo_profile.Db.t ->
  t ->
  Options.t ->
  Pipeline.source list ->
  outcome
(** Frontend (per changed module) to object files, then link.  For
    [O4], object files carry IL payloads and the CMO happens here, at
    link time, over the IL read back from disk.
    @raise Pipeline.Compile_error on any failure. *)

val object_path : t -> string -> string
val clean : t -> unit
(** Remove every object file in the workspace and wipe the artifact
    cache directory. *)
