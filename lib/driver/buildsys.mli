(** A miniature [make]-style build driver over on-disk object files.

    Demonstrates the paper's section 6.1 claim: the CMO framework
    needs no persistent program database — all persistent state except
    profiles lives in ordinary object files, so a timestamp/digest
    build tool can drive it.

    A workspace maps module names to [<name>.o] files under a
    directory.  [build] recompiles exactly the modules whose source
    digest differs from the one recorded in their object file (the
    moral equivalent of make's timestamp comparison), then performs
    the link step — which, in CMO mode, re-runs cross-module
    optimization over the IL payloads, reproducing the paper's
    trade-off that "a change in one module potentially requires
    recompilation of all modules in the CMO set" being replaced by
    re-optimization at link time.

    That trade-off is softened by a persistent artifact cache (on by
    default): link-time CMO results are stored content-addressed
    under [<dir>/.cmo-cache] (two files, [index] and [payload] — see
    {!Cmo_cache.Store}), so a rebuild with no effective change skips
    the optimizer entirely and an incremental change re-optimizes
    only its invalidation closure.  {!clean} wipes the cache along
    with the object files. *)

type t

val create :
  ?cache:bool -> ?cache_dir:string -> ?cache_capacity:int -> dir:string ->
  unit -> t
(** The directory must exist and be writable.  [cache] (default
    [true]) enables the link-time artifact cache; [cache_dir]
    overrides its location (default [<dir>/.cmo-cache]) and
    [cache_capacity] its live-byte bound (default 256 MiB, see
    {!Cmo_cache.Store.open_}). *)

val cache_dir : t -> string
(** Where this workspace's artifact cache lives (whether enabled or
    not). *)

type outcome = {
  build : Pipeline.build;
  recompiled : string list;  (** Modules whose object was rebuilt. *)
  reused : string list;  (** Modules whose object was up to date. *)
}

(** {2 Sessions}

    A build is a value: {!open_session} captures the warm state — the
    open artifact store and (optionally) a shared NAIM repository —
    and {!request} runs one build against it.  One-shot {!build}
    is open → request → close; the build server ([cmocd]) keeps one
    session open for its whole lifetime instead, so every request
    after the first sees a warm store, and shares the session's store
    and repository across concurrent in-flight requests (the store's
    operations and transactions are internally synchronized, as is
    the repository). *)

type session

val open_session : ?naim:bool -> t -> session
(** Open the workspace's warm state: the artifact store when the
    workspace has caching enabled, plus — with [naim] (default
    [false]) — a shared on-disk NAIM repository under the cache
    directory that every request's O4 loaders offload to. *)

val session_store : session -> Cmo_cache.Store.t option
val session_repo : session -> Cmo_naim.Repository.t option

val reopen_store : session -> unit
(** Close (best effort) and reopen the session's store, revalidating
    it from disk.  The server calls this after a request ran under a
    crash fault plan: the simulated power cut makes the I/O layer
    inert, so the in-memory store state can be ahead of the bytes
    actually on disk — reopening discards it and recovers exactly as
    a restarted process would. *)

val request :
  ?profile:Cmo_profile.Db.t ->
  ?remote:Distwork.remote ->
  session ->
  Options.t ->
  Pipeline.source list ->
  outcome
(** One build against the session: frontend (per changed module) to
    object files, then link.  For [O4], object files carry IL
    payloads and the CMO happens here, at link time, over the IL read
    back from disk — against the session's warm store, which is
    flushed (not closed) afterwards.  [remote] is the remote artifact
    cache handed to {!Pipeline.compile_modules} (no effect without a
    store).  Concurrent requests on one session must not share the
    workspace directory's object files; the server avoids this by
    compiling in memory via {!Pipeline} against
    {!session_store}/{!session_repo}.
    @raise Pipeline.Compile_error on any failure.
    @raise Invalid_argument on a closed session. *)

val close_session : session -> unit
(** Flush and close the store and close (and delete) the repository.
    Idempotent. *)

val build :
  ?profile:Cmo_profile.Db.t ->
  ?remote:Distwork.remote ->
  t ->
  Options.t ->
  Pipeline.source list ->
  outcome
(** [open_session] → {!request} → [close_session], the one-shot
    workflow.
    @raise Pipeline.Compile_error on any failure. *)

val object_path : t -> string -> string
val clean : t -> unit
(** Remove every object file in the workspace and wipe the artifact
    cache directory. *)
