module Codec = Cmo_support.Codec

type key =
  | Fentry of string
  | Block of string * int
  | Edge of string * int * int

type t = { counts : (key, float) Hashtbl.t }

let create () = { counts = Hashtbl.create 256 }

let add t key v =
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key (prev +. v)

let get t key = Option.value ~default:0.0 (Hashtbl.find_opt t.counts key)

let mem t key = Hashtbl.mem t.counts key

let is_empty t = Hashtbl.length t.counts = 0

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge ~into src = Hashtbl.iter (fun k v -> add into k v) src.counts

(* Weighted merge: each count contributes scaled by [weight].  A key
   appears at most once per source db, so iteration order over [src]
   cannot change the sums — cross-shard accumulation order is the
   caller's responsibility (Ingest canonicalizes it). *)
let merge_weighted ~into ~weight src =
  if weight <> 0.0 then
    Hashtbl.iter (fun k v -> add into k (weight *. v)) src.counts

let scale t f =
  (* Snapshot the keys: mutating a Hashtbl mid-iteration is UB. *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.counts [] in
  List.iter
    (fun k -> Hashtbl.replace t.counts k (f *. Hashtbl.find t.counts k))
    keys

(* Exponential staleness decay: age 0 multiplies by [rate^0 = 1] and
   is required to be a byte-level identity, so it is special-cased
   away from float exponentiation entirely. *)
let decay t ~rate ~age =
  if age < 0 then invalid_arg "Db.decay: negative age";
  if age > 0 then scale t (rate ** float_of_int age)

let copy t =
  let c = create () in
  Hashtbl.iter (fun k v -> Hashtbl.replace c.counts k v) t.counts;
  c

let total t = Hashtbl.fold (fun _ v acc -> acc +. v) t.counts 0.0

let version = 1

(* Canonical serialization: entries are written in sorted key order,
   so two databases holding bitwise-equal counts serialize to the same
   bytes no matter what order the counts were accumulated in.  Floats
   are written as their IEEE bits (Codec.float), never formatted. *)
let encode t =
  let w = Codec.Writer.create () in
  Codec.Writer.byte w version;
  Codec.Writer.uvarint w (Hashtbl.length t.counts);
  List.iter
    (fun (key, count) ->
      (match key with
      | Fentry f ->
        Codec.Writer.byte w 0;
        Codec.Writer.string w f
      | Block (f, l) ->
        Codec.Writer.byte w 1;
        Codec.Writer.string w f;
        Codec.Writer.uvarint w l
      | Edge (f, a, b) ->
        Codec.Writer.byte w 2;
        Codec.Writer.string w f;
        Codec.Writer.uvarint w a;
        Codec.Writer.uvarint w b);
      Codec.Writer.float w count)
    (entries t);
  Codec.Writer.contents w

(* Atomic (temp + fsync + rename): a crash mid-save leaves the old
   profile, never a torn one that a later build chokes on. *)
let save t path = Cmo_support.Fsio.atomic_write path (encode t)

let decode data =
  let r = Codec.Reader.of_string data in
  let v = Codec.Reader.byte r in
  if v <> version then
    Codec.Reader.corrupt
      (Printf.sprintf "profile db version mismatch: %d vs %d" v version);
  let t = create () in
  let n = Codec.Reader.uvarint r in
  for _ = 1 to n do
    let key =
      match Codec.Reader.byte r with
      | 0 -> Fentry (Codec.Reader.string r)
      | 1 ->
        let f = Codec.Reader.string r in
        Block (f, Codec.Reader.uvarint r)
      | 2 ->
        let f = Codec.Reader.string r in
        let a = Codec.Reader.uvarint r in
        let b = Codec.Reader.uvarint r in
        Edge (f, a, b)
      | tag -> Codec.Reader.corrupt (Printf.sprintf "bad key tag %d" tag)
    in
    add t key (Codec.Reader.float r)
  done;
  t

let load path = decode (Cmo_support.Fsio.read_file path)

let pp_key ppf = function
  | Fentry f -> Format.fprintf ppf "entry(%s)" f
  | Block (f, l) -> Format.fprintf ppf "block(%s, L%d)" f l
  | Edge (f, a, b) -> Format.fprintf ppf "edge(%s, L%d->L%d)" f a b
