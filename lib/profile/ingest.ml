module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Obs = Cmo_obs.Obs

type meta = {
  source_fp : string;
  sample_rate : float;
  weight : float;
  age : int;
}

type shard = { meta : meta; db : Db.t }

type policy = {
  current_fp : string;
  decay_rate : float;
  skew_weight : float;
  clamp_ratio : float;
}

let default_policy ~current_fp =
  { current_fp; decay_rate = 0.9; skew_weight = 0.25; clamp_ratio = 4.0 }

type stats = {
  ing_shards : int;
  ing_skipped : int;
  ing_skewed : int;
  ing_clamped : int;
  ing_weight : float;
}

let fingerprint sources =
  let sources =
    List.sort (fun (a, _) (b, _) -> String.compare a b) sources
  in
  let w = Codec.Writer.create () in
  List.iter
    (fun (name, text) ->
      Codec.Writer.string w name;
      Codec.Writer.string w text)
    sources;
  Digest.to_hex (Digest.string (Codec.Writer.contents w))

(* Shard encoding: a version byte, the meta fields, then the embedded
   canonical Db bytes as one length-prefixed string. *)

let shard_version = 1

let encode_shard s =
  let w = Codec.Writer.create () in
  Codec.Writer.byte w shard_version;
  Codec.Writer.string w s.meta.source_fp;
  Codec.Writer.float w s.meta.sample_rate;
  Codec.Writer.float w s.meta.weight;
  Codec.Writer.uvarint w s.meta.age;
  Codec.Writer.string w (Db.encode s.db);
  Codec.Writer.contents w

let decode_shard data =
  let r = Codec.Reader.of_string data in
  let v = Codec.Reader.byte r in
  if v <> shard_version then
    Codec.Reader.corrupt
      (Printf.sprintf "profile shard version mismatch: %d vs %d" v
         shard_version);
  let source_fp = Codec.Reader.string r in
  let sample_rate = Codec.Reader.float r in
  let weight = Codec.Reader.float r in
  let age = Codec.Reader.uvarint r in
  let db = Db.decode (Codec.Reader.string r) in
  if not (Codec.Reader.at_end r) then
    Codec.Reader.corrupt "trailing bytes after profile shard";
  { meta = { source_fp; sample_rate; weight; age }; db }

(* The skew test: a shard recorded against other sources is
   down-weighted, never dropped — AutoFDO tolerance for version drift.
   An empty current_fp disables the test (offline ingests that do not
   know the build's sources). *)
let skewed policy meta =
  policy.current_fp <> "" && meta.source_fp <> policy.current_fp

let effective_weight policy meta =
  if meta.weight <= 0.0 then 0.0
  else begin
    let upscale =
      (* A sample rate of 1/100 means each recorded event stands for
         ~100 real ones.  Out-of-range rates degrade to no upscale:
         amplifying by a garbage rate is exactly the poisoning vector
         the clamp exists to stop, so do not manufacture it here. *)
      if meta.sample_rate > 0.0 && meta.sample_rate <= 1.0 then
        1.0 /. meta.sample_rate
      else 1.0
    in
    let decayed =
      if meta.age > 0 then policy.decay_rate ** float_of_int meta.age else 1.0
    in
    let skew = if skewed policy meta then policy.skew_weight else 1.0 in
    meta.weight *. upscale *. decayed *. skew
  end

(* Lower-middle/average median, on a sorted copy: deterministic and
   order-independent, which the canonicalization law depends on. *)
let median = function
  | [] -> 0.0
  | masses ->
    let a = Array.of_list masses in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let ingest ~policy ?(skipped = 0) shards =
  Obs.with_span ~cat:"ingest" "profile-ingest" @@ fun () ->
  (* Canonical fold order: sort by the digest of each shard's encoded
     bytes.  Identical shards compare equal and are interchangeable,
     so the fold — and therefore every per-key float accumulation
     order — is a function of the shard multiset, not of arrival
     order.  That is what makes the merged Db's bytes permutation
     invariant. *)
  let keyed =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun s -> (Digest.string (encode_shard s), s)) shards)
  in
  let weighted =
    List.map
      (fun (_, s) ->
        let w = effective_weight policy s.meta in
        (s, w, w *. Db.total s.db))
      keyed
  in
  (* Poisoning clamp: with at least three shards there is a meaningful
     notion of agreement, and any shard whose weighted mass exceeds
     clamp_ratio x the median mass is scaled back down to the cap.  A
     1000x-inflated adversarial shard then contributes no more than a
     few honest shards' worth. *)
  (* Only contributing shards form the agreement statistic: a
     weight-0 or empty shard adds nothing to the merge, so it must not
     shift the median either — otherwise appending an invisible shard
     would change the cap and break the no-op law. *)
  let masses =
    List.filter (fun m -> m > 0.0) (List.map (fun (_, _, m) -> m) weighted)
  in
  let cap =
    if List.length masses >= 3 then policy.clamp_ratio *. median masses
    else 0.0
  in
  let into = Db.create () in
  let skewed_n = ref 0 and clamped_n = ref 0 and total_w = ref 0.0 in
  List.iter
    (fun (s, w, mass) ->
      let w =
        if cap > 0.0 && mass > cap then begin
          incr clamped_n;
          w *. (cap /. mass)
        end
        else w
      in
      if w > 0.0 && skewed policy s.meta then incr skewed_n;
      total_w := !total_w +. w;
      Db.merge_weighted ~into ~weight:w s.db)
    weighted;
  let stats =
    {
      ing_shards = List.length shards;
      ing_skipped = skipped;
      ing_skewed = !skewed_n;
      ing_clamped = !clamped_n;
      ing_weight = !total_w;
    }
  in
  if Obs.enabled () then begin
    Obs.tick "ingest" "shards" stats.ing_shards;
    Obs.tick "ingest" "skipped" stats.ing_skipped;
    Obs.tick "ingest" "skewed" stats.ing_skewed;
    Obs.tick "ingest" "clamped" stats.ing_clamped
  end;
  (into, stats)

(* Pack I/O: an append-only file of CMR1 framed shards.  Writing goes
   through the Fsio appender (fault-injectable, repaired to a record
   boundary on short writes); reading resynchronizes past damage. *)

let write_pack path shards =
  let ap = Fsio.open_append ~trunc:true path in
  Fun.protect
    ~finally:(fun () -> Fsio.close_append ~fsync:true ap)
    (fun () ->
      List.iter (fun s -> ignore (Fsio.append_record ap (encode_shard s)))
        shards)

let append_pack path shards =
  let ap = Fsio.open_append path in
  Fun.protect
    ~finally:(fun () -> Fsio.close_append ~fsync:true ap)
    (fun () ->
      List.iter (fun s -> ignore (Fsio.append_record ap (encode_shard s)))
        shards)

(* The frame magic, for resynchronization.  Fsio does not export it —
   stream consumers normally treat a bad frame as fatal — but a pack
   is a durability surface where one corrupt shard must not take the
   records after it down, so we scan forward for the next magic. *)
let record_magic = "CMR1"

let decode_pack data =
  let n = String.length data in
  let shards = ref [] and skipped = ref 0 in
  let resync pos =
    let rec find p =
      if p + String.length record_magic > n then n
      else
        match String.index_from_opt data p record_magic.[0] with
        | None -> n
        | Some i ->
          if
            i + String.length record_magic <= n
            && String.sub data i (String.length record_magic) = record_magic
          then i
          else find (i + 1)
    in
    find pos
  in
  let rec go pos =
    if pos < n then
      match Fsio.scan_frame data ~pos with
      | Fsio.Frame { payload; next } ->
        (match decode_shard payload with
        | s -> shards := s :: !shards
        | exception Codec.Reader.Corrupt _ -> incr skipped);
        go next
      | Fsio.Need _ ->
        (* A torn tail (crash mid-append): structurally incomplete,
           nothing after it can be trusted. *)
        incr skipped
      | Fsio.Bad _ ->
        (* Bad magic or CRC mismatch: count one casualty and scan
           forward for the next frame boundary. *)
        incr skipped;
        go (resync (pos + 1))
  in
  go 0;
  (List.rev !shards, !skipped)

let read_pack path = decode_pack (Fsio.read_file path)

let ingest_paths ~policy paths =
  let shards = ref [] and skipped = ref 0 in
  List.iter
    (fun path ->
      match read_pack path with
      | ss, sk ->
        shards := List.rev_append ss !shards;
        skipped := !skipped + sk
      | exception Sys_error _ ->
        (* An unreadable pack is one casualty, not a failed ingest. *)
        incr skipped)
    paths;
  ingest ~policy ~skipped:!skipped (List.rev !shards)
