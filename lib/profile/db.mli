(** The profile database.

    Persistent store of execution counts keyed by stable program
    coordinates (function name, block label, edge).  It is the only
    persistent state of the system that does not live in object files
    (paper section 6.1: "our system works with existing processes by
    maintaining all persistent information (save for profile data) in
    object files").

    Counts are floats: merging and scaling (stale-profile decay,
    inline distribution) produce fractional values. *)

type key =
  | Fentry of string  (** Function entry count. *)
  | Block of string * int  (** (function, block label) execution count. *)
  | Edge of string * int * int
      (** (function, from label, to label) traversal count of a
          conditional edge. *)

type t

val create : unit -> t

val add : t -> key -> float -> unit
(** Accumulate into the existing count. *)

val get : t -> key -> float
(** 0 when absent. *)

val mem : t -> key -> bool

val is_empty : t -> bool

val entries : t -> (key * float) list
(** Deterministically ordered (by key). *)

val merge : into:t -> t -> unit
(** Accumulate every count of the second database into [into]. *)

val merge_weighted : into:t -> weight:float -> t -> unit
(** [merge] with every contributed count scaled by [weight].
    [weight = 0.] is a guaranteed no-op (not even a key is created);
    [weight = 1.] is exactly {!merge}.  Within one call the iteration
    order over the source cannot affect the result (each key occurs
    once per db); across calls float addition does not associate
    exactly, so callers wanting byte-stable results must canonicalize
    the fold order themselves (see [Ingest]). *)

val scale : t -> float -> unit
(** Multiply every count in place. *)

val decay : t -> rate:float -> age:int -> unit
(** Exponential staleness decay: multiply every count by [rate^age].
    [age = 0] is a byte-level identity (no float operation is
    performed at all).  @raise Invalid_argument on negative [age]. *)

val copy : t -> t

val total : t -> float

val encode : t -> string
(** Canonical serialization: entries in sorted key order, counts as
    IEEE-754 bits.  Two databases with bitwise-equal contents encode
    to equal bytes regardless of insertion order. *)

val decode : string -> t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val save : t -> string -> unit
(** [encode] to a file via an atomic write. *)

val load : string -> t
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input,
    [Sys_error] if unreadable. *)

val pp_key : Format.formatter -> key -> unit
