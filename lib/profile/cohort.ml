module Codec = Cmo_support.Codec
module Fsio = Cmo_support.Fsio
module Json = Cmo_obs.Json
module Obs = Cmo_obs.Obs

exception Bad_name of string

(* Cohort names become file names under the registry root, so the
   alphabet is the conservative portable one and the first character
   cannot make the name hidden or option-like. *)
let valid_name name =
  let ok_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  let n = String.length name in
  n > 0 && n <= 64
  && name.[0] <> '.'
  && name.[0] <> '-'
  && String.for_all ok_char name

let checked name = if not (valid_name name) then raise (Bad_name name)

type t = { root : string }

let open_ ~dir =
  Fsio.mkdirs dir;
  { root = dir }

let dir t = t.root

let pack_path t name = Filename.concat t.root (name ^ ".pack")
let meta_path t name = Filename.concat t.root (name ^ ".meta")
let snap_path t name = Filename.concat t.root (name ^ ".snap")

type info = {
  ci_name : string;
  ci_shards : int;
  ci_damaged : int;
  ci_bytes : int;
  ci_tags : string list;
  ci_snapshot : bool;
}

let exists t name =
  checked name;
  Sys.file_exists (pack_path t name)

let create t name =
  checked name;
  let path = pack_path t name in
  if not (Sys.file_exists path) then
    Fsio.close_append ~fsync:true (Fsio.open_append path)

(* Reads never raise on damage: an unreadable pack is all-skipped, a
   damaged one decodes its survivors (Ingest resynchronizes on the
   frame magic). *)
let shards t name =
  checked name;
  let path = pack_path t name in
  if not (Sys.file_exists path) then ([], 0)
  else match Ingest.read_pack path with
    | r -> r
    | exception Sys_error _ -> ([], 1)

let ingest_into t name new_shards =
  checked name;
  Ingest.append_pack (pack_path t name) new_shards;
  let decodable, _ = shards t name in
  if Obs.enabled () then
    Obs.tick "cohort" "ingested" (List.length new_shards);
  List.length decodable

(* ---- tags: a tiny atomically-replaced meta record ---- *)

let meta_version = 1

let encode_tags tags =
  let w = Codec.Writer.create () in
  Codec.Writer.byte w meta_version;
  Codec.Writer.list w (Codec.Writer.string w) tags;
  Codec.Writer.contents w

let decode_tags data =
  let r = Codec.Reader.of_string data in
  let v = Codec.Reader.byte r in
  if v <> meta_version then
    Codec.Reader.corrupt (Printf.sprintf "cohort meta version %d" v);
  let tags = Codec.Reader.list r Codec.Reader.string in
  if not (Codec.Reader.at_end r) then
    Codec.Reader.corrupt "trailing bytes after cohort meta";
  tags

let tags t name =
  checked name;
  let path = meta_path t name in
  if not (Sys.file_exists path) then []
  else
    match decode_tags (Fsio.read_file path) with
    | tags -> List.sort_uniq String.compare tags
    | exception (Codec.Reader.Corrupt _ | Sys_error _) ->
      (* Tags are advisory; a damaged meta degrades to none rather
         than poisoning every registry listing. *)
      []

let tag t name label =
  checked name;
  create t name;
  let tags = List.sort_uniq String.compare (label :: tags t name) in
  Fsio.atomic_write (meta_path t name) (encode_tags tags)

(* ---- canonical pulls and snapshots ---- *)

let pull t ~policy name =
  let shards, skipped = shards t name in
  Ingest.ingest ~policy ~skipped shards

let snapshot t ~policy name =
  let db, _ = pull t ~policy name in
  Fsio.atomic_write (snap_path t name) (Db.encode db);
  db

let snapshot_db t name =
  checked name;
  let path = snap_path t name in
  if not (Sys.file_exists path) then None
  else
    match Db.decode (Fsio.read_file path) with
    | db -> Some db
    | exception (Codec.Reader.Corrupt _ | Sys_error _) -> None

let remove t name =
  checked name;
  List.iter
    (fun path -> if Sys.file_exists path then Fsio.remove path)
    [ pack_path t name; meta_path t name; snap_path t name ]

(* ---- listing and GC ---- *)

let names t =
  match Sys.readdir t.root with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun e ->
           match Filename.chop_suffix_opt ~suffix:".pack" e with
           | Some name when valid_name name -> Some name
           | _ -> None)
    |> List.sort String.compare
  | exception Sys_error _ -> []

let info_of t name =
  let decodable, damaged = shards t name in
  let bytes =
    match Fsio.read_file (pack_path t name) with
    | data -> String.length data
    | exception Sys_error _ -> 0
  in
  {
    ci_name = name;
    ci_shards = List.length decodable;
    ci_damaged = damaged;
    ci_bytes = bytes;
    ci_tags = tags t name;
    ci_snapshot = Sys.file_exists (snap_path t name);
  }

let list t = List.map (info_of t) (names t)

type gc_stats = {
  gc_cohorts : int;
  gc_removed : int;
  gc_kept_shards : int;
  gc_damage_dropped : int;
  gc_bytes_reclaimed : int;
}

let gc ?(drop = []) t =
  List.iter checked drop;
  (* A crash during a previous compaction can leave a temp pack; it
     was never renamed into place, so it is garbage by definition. *)
  (match Sys.readdir t.root with
  | entries ->
    Array.iter
      (fun e ->
        if Filename.check_suffix e ".gctmp" then
          Fsio.remove (Filename.concat t.root e))
      entries
  | exception Sys_error _ -> ());
  let removed = ref 0 in
  List.iter
    (fun name ->
      if exists t name then begin
        remove t name;
        incr removed
      end)
    drop;
  let kept = ref 0 and damage = ref 0 and reclaimed = ref 0 in
  let survivors = names t in
  List.iter
    (fun name ->
      let decodable, skipped = shards t name in
      kept := !kept + List.length decodable;
      if skipped > 0 then begin
        (* Compact: write survivors to a temp pack, rename over the
           original.  A crash leaves either the damaged-but-readable
           old pack or the clean new one — pulls are byte-identical
           either way, because the reader already skipped the frames
           compaction discards. *)
        damage := !damage + skipped;
        let path = pack_path t name in
        let old_bytes =
          match Fsio.read_file path with
          | data -> String.length data
          | exception Sys_error _ -> 0
        in
        let tmp = path ^ ".gctmp" in
        Ingest.write_pack tmp decodable;
        let new_bytes = String.length (Fsio.read_file tmp) in
        Fsio.rename tmp path;
        reclaimed := !reclaimed + max 0 (old_bytes - new_bytes)
      end)
    survivors;
  (* Orphan meta/snap files (their pack was dropped mid-remove by an
     earlier crash) are swept so remove stays idempotent. *)
  (match Sys.readdir t.root with
  | entries ->
    Array.iter
      (fun e ->
        let orphan suffix =
          match Filename.chop_suffix_opt ~suffix e with
          | Some name ->
            valid_name name && not (Sys.file_exists (pack_path t name))
          | None -> false
        in
        if orphan ".meta" || orphan ".snap" then
          Fsio.remove (Filename.concat t.root e))
      entries
  | exception Sys_error _ -> ());
  {
    gc_cohorts = List.length survivors;
    gc_removed = !removed;
    gc_kept_shards = !kept;
    gc_damage_dropped = !damage;
    gc_bytes_reclaimed = !reclaimed;
  }

(* ---- the selection-diff engine ---- *)

module Diff = struct
  type hot_set = {
    hs_label : string;
    hs_modules : (string * float) list;
    hs_functions : (string * float) list;
  }

  let empty_hot_set label =
    { hs_label = label; hs_modules = []; hs_functions = [] }

  type delta = { d_name : string; d_base : float; d_canary : float }

  type verdict = Flip | No_flip

  type report = {
    r_threshold : float;
    r_base : string;
    r_canary : string;
    r_mod_in : delta list;
    r_mod_out : delta list;
    r_fun_in : delta list;
    r_fun_out : delta list;
    r_shifts : delta list;
    r_max_shift : float;
    r_verdict : verdict;
  }

  let default_threshold = 0.02

  (* Symmetric difference of two weighted name sets: [(entered,
     left)], entered sorted by canary share, left by base share,
     heaviest first, names breaking ties — deterministic, so equal
     inputs give byte-equal reports. *)
  let sym_diff base canary =
    let find name l =
      match List.assoc_opt name l with Some s -> s | None -> 0.0
    in
    let entered =
      List.filter_map
        (fun (name, share) ->
          if List.mem_assoc name base then None
          else Some { d_name = name; d_base = 0.0; d_canary = share })
        canary
    in
    let left =
      List.filter_map
        (fun (name, share) ->
          if List.mem_assoc name canary then None
          else Some { d_name = name; d_base = share; d_canary = 0.0 })
        base
    in
    let by_share side =
      List.sort (fun a b ->
          match compare (side b) (side a) with
          | 0 -> String.compare a.d_name b.d_name
          | c -> c)
    in
    ( by_share (fun d -> d.d_canary) entered,
      by_share (fun d -> d.d_base) left,
      find )

  let diff ?(threshold = default_threshold) ~base canary =
    let mod_in, mod_out, find_mod =
      sym_diff base.hs_modules canary.hs_modules
    in
    let fun_in, fun_out, _ =
      sym_diff base.hs_functions canary.hs_functions
    in
    let shifts =
      List.filter_map
        (fun (name, bshare) ->
          if not (List.mem_assoc name canary.hs_modules) then None
          else
            let cshare = find_mod name canary.hs_modules in
            if cshare = bshare then None
            else Some { d_name = name; d_base = bshare; d_canary = cshare })
        base.hs_modules
      |> List.sort (fun a b ->
             let shift d = abs_float (d.d_canary -. d.d_base) in
             match compare (shift b) (shift a) with
             | 0 -> String.compare a.d_name b.d_name
             | c -> c)
    in
    let max_shift =
      List.fold_left
        (fun acc d -> max acc (abs_float (d.d_canary -. d.d_base)))
        0.0 shifts
    in
    (* The verdict is about module selection — the unit of CMO
       recompilation: a flip is a module crossing the hot-set boundary
       while carrying at least [threshold] of the hot weight on
       whichever side it is hot.  Function churn and share drift are
       reported but never page anyone by themselves. *)
    let crossing =
      List.exists (fun d -> d.d_canary >= threshold) mod_in
      || List.exists (fun d -> d.d_base >= threshold) mod_out
    in
    {
      r_threshold = threshold;
      r_base = base.hs_label;
      r_canary = canary.hs_label;
      r_mod_in = mod_in;
      r_mod_out = mod_out;
      r_fun_in = fun_in;
      r_fun_out = fun_out;
      r_shifts = shifts;
      r_max_shift = max_shift;
      r_verdict = (if crossing then Flip else No_flip);
    }

  let report_version = 1

  let write_delta w d =
    Codec.Writer.string w d.d_name;
    Codec.Writer.float w d.d_base;
    Codec.Writer.float w d.d_canary

  let read_delta r =
    let d_name = Codec.Reader.string r in
    let d_base = Codec.Reader.float r in
    let d_canary = Codec.Reader.float r in
    { d_name; d_base; d_canary }

  let encode rep =
    let w = Codec.Writer.create () in
    Codec.Writer.byte w report_version;
    Codec.Writer.float w rep.r_threshold;
    Codec.Writer.string w rep.r_base;
    Codec.Writer.string w rep.r_canary;
    List.iter
      (fun deltas -> Codec.Writer.list w (write_delta w) deltas)
      [ rep.r_mod_in; rep.r_mod_out; rep.r_fun_in; rep.r_fun_out;
        rep.r_shifts ];
    Codec.Writer.float w rep.r_max_shift;
    Codec.Writer.bool w (rep.r_verdict = Flip);
    Codec.Writer.contents w

  let decode data =
    let r = Codec.Reader.of_string data in
    let v = Codec.Reader.byte r in
    if v <> report_version then
      Codec.Reader.corrupt (Printf.sprintf "cohort report version %d" v);
    let r_threshold = Codec.Reader.float r in
    let r_base = Codec.Reader.string r in
    let r_canary = Codec.Reader.string r in
    let deltas () = Codec.Reader.list r read_delta in
    let r_mod_in = deltas () in
    let r_mod_out = deltas () in
    let r_fun_in = deltas () in
    let r_fun_out = deltas () in
    let r_shifts = deltas () in
    let r_max_shift = Codec.Reader.float r in
    let r_verdict = if Codec.Reader.bool r then Flip else No_flip in
    if not (Codec.Reader.at_end r) then
      Codec.Reader.corrupt "trailing bytes after cohort report";
    { r_threshold; r_base; r_canary; r_mod_in; r_mod_out; r_fun_in;
      r_fun_out; r_shifts; r_max_shift; r_verdict }

  let json_of_deltas deltas =
    Json.Arr
      (List.map
         (fun d ->
           Json.Obj
             [
               ("name", Json.Str d.d_name);
               ("base", Json.Num d.d_base);
               ("canary", Json.Num d.d_canary);
             ])
         deltas)

  let report_to_json rep =
    Json.Obj
      [
        ("base", Json.Str rep.r_base);
        ("canary", Json.Str rep.r_canary);
        ("threshold", Json.Num rep.r_threshold);
        ("modules_in", json_of_deltas rep.r_mod_in);
        ("modules_out", json_of_deltas rep.r_mod_out);
        ("functions_in", json_of_deltas rep.r_fun_in);
        ("functions_out", json_of_deltas rep.r_fun_out);
        ("shifts", json_of_deltas rep.r_shifts);
        ("max_shift", Json.Num rep.r_max_shift);
        ( "verdict",
          Json.Str (match rep.r_verdict with Flip -> "flip" | No_flip -> "no-flip")
        );
      ]

  let pp_report ppf rep =
    let section title side deltas =
      if deltas <> [] then begin
        Format.fprintf ppf "  %s:@." title;
        List.iter
          (fun d ->
            Format.fprintf ppf "    %-24s base=%.4f canary=%.4f%s@."
              d.d_name d.d_base d.d_canary
              (if side d >= rep.r_threshold then "  [over threshold]" else ""))
          deltas
      end
    in
    Format.fprintf ppf "cohort-diff %s -> %s (threshold %.3f)@." rep.r_base
      rep.r_canary rep.r_threshold;
    section "modules entering hot set" (fun d -> d.d_canary) rep.r_mod_in;
    section "modules leaving hot set" (fun d -> d.d_base) rep.r_mod_out;
    section "functions entering hot set" (fun d -> d.d_canary) rep.r_fun_in;
    section "functions leaving hot set" (fun d -> d.d_base) rep.r_fun_out;
    if rep.r_shifts <> [] then begin
      Format.fprintf ppf "  share shifts (common modules):@.";
      List.iter
        (fun d ->
          Format.fprintf ppf "    %-24s %.4f -> %.4f (%+.4f)@." d.d_name
            d.d_base d.d_canary (d.d_canary -. d.d_base))
        rep.r_shifts
    end;
    match rep.r_verdict with
    | Flip ->
      let crossing =
        List.length
          (List.filter (fun d -> d.d_canary >= rep.r_threshold) rep.r_mod_in)
        + List.length
            (List.filter (fun d -> d.d_base >= rep.r_threshold) rep.r_mod_out)
      in
      Format.fprintf ppf
        "cohort-diff: FLIP (%d module(s) crossed the hot-set boundary above \
         threshold %.3f)@."
        crossing rep.r_threshold
    | No_flip ->
      Format.fprintf ppf "cohort-diff: no-flip (max share shift %.4f)@."
        rep.r_max_shift
end
