(** Fleet-scale profile ingestion.

    One instrumented run produces one {!Db}; a fleet produces
    thousands of {e shards} — noisy, sampled, recorded against
    whatever source version each user happened to be running.  This
    module folds them into one canonical database (the AutoFDO regime:
    sampled, decayed, version-skewed profiles feeding an optimizing
    build; see PAPERS.md "From Profiling to Optimization").

    {2 The merge algebra}

    The fold is built from {!Db.merge_weighted}, whose laws the
    property suite ([test/test_ingest.ml]) enforces:

    - {b commutative} and {b associative} up to float tolerance:
      per-key sums are the same multiset of additions in any order;
    - {b weighted identity}: weight 0 is a no-op (no key is even
      created), weight 1 is plain {!Db.merge};
    - {b decay}: [Db.decay ~age:0] is a byte-level identity;
      [rate < 1] is monotone non-increasing in [age];
    - {b order-canonicalized}: {!ingest} sorts shards by the digest of
      their encoded bytes before folding, and every per-shard
      coefficient (sampling upscale, decay, skew down-weight, the
      poisoning clamp) is computed from the {e multiset} of shards —
      so the merged Db serializes byte-identically no matter what
      order the shards arrived in.

    {2 Degradation}

    Shards travel as CMR1 framed records ({!Fsio.frame}) in
    append-only pack files.  A corrupt or torn shard is {b skipped and
    counted, never a failed ingest}: the reader resynchronizes on the
    next frame magic, and the skip count is surfaced in {!stats} and
    on the [ingest/skipped] Obs counter. *)

type meta = {
  source_fp : string;
      (** Fingerprint of the source version the shard was recorded
          against (see {!fingerprint}); [""] = unknown. *)
  sample_rate : float;
      (** Fraction of events the profiler recorded, in (0, 1]; counts
          are upscaled by its inverse.  Out-of-range values degrade to
          1 (no upscale) rather than amplifying garbage. *)
  weight : float;  (** Trust weight; [<= 0] contributes nothing. *)
  age : int;  (** Staleness in versions behind the fleet head. *)
}

type shard = { meta : meta; db : Db.t }

type policy = {
  current_fp : string;
      (** Fingerprint of the sources being built; [""] disables the
          skew test (every shard is treated as current). *)
  decay_rate : float;
      (** Per-age multiplier for stale shards (default 0.9). *)
  skew_weight : float;
      (** Multiplier for shards whose [source_fp] does not match
          [current_fp] — down-weighted, never dropped (default 0.25). *)
  clamp_ratio : float;
      (** Poisoning clamp: with >= 3 {e contributing} shards (weighted
          mass > 0), a shard's weighted mass (effective weight x
          {!Db.total}) is capped at [clamp_ratio x median] of the
          contributing masses (default 4).  Zero-mass shards are
          excluded so they stay byte-level no-ops. *)
}

val default_policy : current_fp:string -> policy

type stats = {
  ing_shards : int;  (** Shards merged. *)
  ing_skipped : int;  (** Corrupt/torn shards skipped and counted. *)
  ing_skewed : int;  (** Version-skewed shards (down-weighted). *)
  ing_clamped : int;  (** Shards that hit the poisoning clamp. *)
  ing_weight : float;  (** Sum of applied effective weights. *)
}

val effective_weight : policy -> meta -> float
(** [weight x 1/sample_rate x decay_rate^age x skew], before the
    clamp.  Age 0 performs no float exponentiation at all. *)

val ingest : policy:policy -> ?skipped:int -> shard list -> Db.t * stats
(** Fold the shards into a fresh canonical database.  [skipped] seeds
    [ing_skipped] (pack readers count damage separately).  The result
    {!Db.encode}s byte-identically under any permutation of the input
    list. *)

val fingerprint : (string * string) list -> string
(** Source-version fingerprint over [(module name, source text)]
    pairs; order-insensitive (sorted by name). *)

(** {2 Shard and pack encoding} *)

val encode_shard : shard -> string

val decode_shard : string -> shard
(** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

val write_pack : string -> shard list -> unit
(** Write a pack of framed shards, replacing the file. *)

val append_pack : string -> shard list -> unit
(** Append framed shards to a pack (creating it as needed). *)

val decode_pack : string -> shard list * int
(** [(shards, skipped)]: every decodable framed shard in the byte
    stream, resynchronizing past corrupt frames and torn tails, each
    counted in [skipped].  Never raises on damage. *)

val read_pack : string -> shard list * int
(** {!decode_pack} of the file's bytes.  [Sys_error] if unreadable. *)

val ingest_paths : policy:policy -> string list -> Db.t * stats
(** Read every path as a pack and {!ingest} the union.  An unreadable
    file counts one skip; all damage degrades, nothing raises. *)
