(** Named profile cohorts: a persistent registry of profile sets.

    A fleet does not have {e one} canonical profile — it has canary vs
    stable cohorts, A/B experiment arms, per-input-class profiles.
    This module keeps a directory of named shard packs (the {!Ingest}
    pack format: append-only CMR1 frames that skip-and-count damage)
    plus per-cohort metadata, and answers the question that matters
    operationally: {e do two cohorts induce different module
    selections?}

    {2 Registry layout}

    Everything lives under one root directory; the directory {e is}
    the registry — there is no central index file to go stale:

    {v
    <root>/<name>.pack   append-only shard pack (Ingest frames)
    <root>/<name>.meta   tags, atomically replaced (Fsio.atomic_write)
    <root>/<name>.snap   materialized canonical Db bytes (optional)
    v}

    Durability follows the repo's two idioms: packs grow through the
    {!Cmo_support.Fsio} appender (a torn tail degrades to
    skip-and-count on read), while meta and snapshot files are
    replaced atomically (a crash leaves the old bytes or the new,
    never a prefix).  [gc] compaction writes the surviving shards to a
    temporary pack and renames it over the old one, so a crash during
    compaction leaves either the damaged-but-readable original or the
    clean replacement.

    {2 Canonical pulls}

    [pull] is {!Ingest.ingest} over the pack's decodable shards, so a
    cohort's merged database {!Db.encode}s byte-identically no matter
    what order its shards arrived in, and a daemon-side pull equals a
    local ingest of the same shards, byte for byte. *)

exception Bad_name of string
(** Raised by every operation handed a name that fails {!valid_name};
    cohort names become file names, so they are validated, never
    trusted. *)

val valid_name : string -> bool
(** Non-empty, at most 64 chars, drawn from [A-Za-z0-9_.-], not
    starting with [.] or [-]. *)

type t
(** An open registry rooted at a directory. *)

val open_ : dir:string -> t
(** Create the root directory as needed and open the registry. *)

val dir : t -> string

type info = {
  ci_name : string;
  ci_shards : int;  (** Decodable shards in the pack. *)
  ci_damaged : int;  (** Corrupt/torn frames skipped by the reader. *)
  ci_bytes : int;  (** Pack size on disk. *)
  ci_tags : string list;  (** Sorted, duplicate-free. *)
  ci_snapshot : bool;  (** A materialized snapshot exists. *)
}

val create : t -> string -> unit
(** Ensure the cohort exists (an empty pack).  Idempotent. *)

val exists : t -> string -> bool

val list : t -> info list
(** Every cohort in the registry, sorted by name. *)

val ingest_into : t -> string -> Ingest.shard list -> int
(** Append shards to the cohort's pack, creating the cohort as
    needed.  Returns the number of decodable shards the pack now
    holds (the [Cohort_stored] acknowledgement surface). *)

val shards : t -> string -> Ingest.shard list * int
(** [(shards, damaged)] from the cohort's pack; a missing cohort is
    [([], 0)].  Damage is skipped and counted, never raised. *)

val tag : t -> string -> string -> unit
(** Add a label to the cohort's tag set (created if missing).  The
    meta file is replaced atomically. *)

val tags : t -> string -> string list
(** Sorted tag set; missing or corrupt meta degrades to []. *)

val pull : t -> policy:Ingest.policy -> string -> Db.t * Ingest.stats
(** Canonical merged database of the cohort's decodable shards under
    the given policy.  Byte-identical to a local {!Ingest.ingest} of
    the same shards. *)

val snapshot : t -> policy:Ingest.policy -> string -> Db.t
(** Materialize the cohort's canonical database to [<name>.snap]
    (atomic replace) and return it. *)

val snapshot_db : t -> string -> Db.t option
(** The last materialized snapshot; [None] when absent or corrupt —
    callers degrade to a fresh {!pull} (recompute), never fail. *)

val remove : t -> string -> unit
(** Delete the cohort's pack, meta and snapshot.  Idempotent. *)

type gc_stats = {
  gc_cohorts : int;  (** Cohorts surviving the sweep. *)
  gc_removed : int;  (** Cohorts dropped (the [drop] list). *)
  gc_kept_shards : int;  (** Decodable shards across survivors. *)
  gc_damage_dropped : int;  (** Corrupt frames compacted away. *)
  gc_bytes_reclaimed : int;  (** Pack bytes freed by compaction. *)
}

val gc : ?drop:string list -> t -> gc_stats
(** Sweep the registry: remove every cohort in [drop], rewrite any
    pack containing damage to just its decodable shards (temp file +
    rename, crash-safe), and delete orphan meta/snapshot files whose
    pack is gone.  Byte-identical pulls before and after: compaction
    only discards frames the reader was already skipping. *)

(** {2 Selection diff}

    The pure engine behind canary alerting: given the weighted hot
    set each cohort induces (see [Cmo_hlo.Selectivity.cohort_hot_set]
    for the computation against a real program), report the symmetric
    difference of the module/function hot sets, the per-name weight
    deltas, and a would-flip verdict. *)

module Diff : sig
  type hot_set = {
    hs_label : string;  (** Cohort name. *)
    hs_modules : (string * float) list;
        (** (module, share of hot weight), share sums to 1 over the
            set (0 when the set is empty), heaviest first. *)
    hs_functions : (string * float) list;
  }

  val empty_hot_set : string -> hot_set

  type delta = {
    d_name : string;
    d_base : float;  (** Share in the base cohort's hot set (0 if out). *)
    d_canary : float;  (** Share in the canary's hot set (0 if out). *)
  }

  type verdict = Flip | No_flip

  type report = {
    r_threshold : float;
    r_base : string;  (** Base hot-set label. *)
    r_canary : string;
    r_mod_in : delta list;
        (** Modules the canary pulls {e into} the hot set, by canary
            share, heaviest first. *)
    r_mod_out : delta list;  (** Modules the canary drops, by base share. *)
    r_fun_in : delta list;
    r_fun_out : delta list;
    r_shifts : delta list;
        (** Modules in both hot sets whose share moved, by absolute
            shift, largest first. *)
    r_max_shift : float;  (** Largest absolute share shift. *)
    r_verdict : verdict;
  }

  val default_threshold : float
  (** 0.02: a module entering or leaving the hot set matters once it
      carries 2% of the hot weight on either side. *)

  val diff : ?threshold:float -> base:hot_set -> hot_set -> report
  (** [diff ~base canary].
      Deterministic in its inputs: equal hot sets yield a [No_flip]
      report that {!encode}s byte-identically across runs.  The
      verdict is [Flip] iff some {e module} enters or leaves the hot
      set carrying at least [threshold] share on whichever side it is
      hot. *)

  val encode : report -> string
  (** Canonical bytes (the wire and on-disk form). *)

  val decode : string -> report
  (** @raise Cmo_support.Codec.Reader.Corrupt on malformed input. *)

  val report_to_json : report -> Cmo_obs.Json.t

  val pp_report : Format.formatter -> report -> unit
  (** Human rendering; the last line is the greppable verdict
      ([cohort-diff: FLIP ...] or [cohort-diff: no-flip ...]). *)
end
