module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Instr = Cmo_il.Instr

type stats = {
  functions : int;
  functions_with_profile : int;
  blocks : int;
  blocks_matched : int;
  total_count : float;
  unmatched_keys : int;
  unmatched_weight : float;
}

(* The stale-profile gap: db keys that match nothing in the current
   program used to vanish without a trace, so "the profile is 90%
   dead" looked exactly like "the profile is fresh".  Walk the db once
   against the program's structure tables and account for every key
   that found no home. *)
let unmatched db modules =
  let fnames = Hashtbl.create 64 in
  let blocks = Hashtbl.create 256 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          Hashtbl.replace fnames f.Func.name ();
          List.iter
            (fun (b : Func.block) ->
              Hashtbl.replace blocks (f.Func.name, b.Func.label) ())
            f.Func.blocks)
        m.Ilmod.funcs)
    modules;
  let keys = ref 0 and weight = ref 0.0 in
  List.iter
    (fun (key, count) ->
      let matched =
        match key with
        | Db.Fentry f -> Hashtbl.mem fnames f
        | Db.Block (f, l) -> Hashtbl.mem blocks (f, l)
        | Db.Edge (f, a, b) ->
          Hashtbl.mem blocks (f, a) && Hashtbl.mem blocks (f, b)
      in
      if not matched then begin
        incr keys;
        weight := !weight +. count
      end)
    (Db.entries db);
  (!keys, !weight)

let annotate db modules =
  let functions = ref 0 in
  let functions_with_profile = ref 0 in
  let blocks = ref 0 in
  let blocks_matched = ref 0 in
  let total_count = ref 0.0 in
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          incr functions;
          let any = ref false in
          List.iter
            (fun (b : Func.block) ->
              incr blocks;
              let key = Db.Block (f.Func.name, b.Func.label) in
              let count = Db.get db key in
              if Db.mem db key then begin
                incr blocks_matched;
                any := true
              end;
              b.Func.freq <- count;
              total_count := !total_count +. count;
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call c -> c.Instr.call_count <- count
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Store _ | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks;
          if !any then incr functions_with_profile)
        m.Ilmod.funcs)
    modules;
  let unmatched_keys, unmatched_weight = unmatched db modules in
  if Cmo_obs.Obs.enabled () then begin
    Cmo_obs.Obs.tick "correlate" "unmatched_keys" unmatched_keys;
    Cmo_obs.Obs.tick "correlate" "matched_blocks" !blocks_matched
  end;
  {
    functions = !functions;
    functions_with_profile = !functions_with_profile;
    blocks = !blocks;
    blocks_matched = !blocks_matched;
    total_count = !total_count;
    unmatched_keys;
    unmatched_weight;
  }

let clear modules =
  List.iter
    (fun (m : Ilmod.t) ->
      List.iter
        (fun (f : Func.t) ->
          List.iter
            (fun (b : Func.block) ->
              b.Func.freq <- 0.0;
              List.iter
                (fun i ->
                  match i with
                  | Instr.Call c -> c.Instr.call_count <- 0.0
                  | Instr.Move _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
                  | Instr.Store _ | Instr.Probe _ -> ())
                b.Func.instrs)
            f.Func.blocks)
        m.Ilmod.funcs)
    modules

let edge_count db ~fname ~src ~dst = Db.get db (Db.Edge (fname, src, dst))

let pp_stats ppf s =
  Format.fprintf ppf
    "functions %d/%d with profile, blocks %d/%d matched, total count %.0f, \
     %d unmatched keys (weight %.0f)"
    s.functions_with_profile s.functions s.blocks_matched s.blocks
    s.total_count s.unmatched_keys s.unmatched_weight
