(** Correlation of profile data with current program structures.

    The paper (section 3): "The compiler correlates profile
    information from the database with current program structures, and
    uses the data to improve various heuristics."  Correlation is
    name-and-label based: the frontend is deterministic, so unchanged
    source produces identical block labels and the counts attach
    exactly; changed functions simply match fewer (or no) keys and are
    treated as cold — the graceful degradation under stale profiles
    discussed in section 6.2.

    Annotation writes [Func.block.freq] (block execution counts) and
    [Instr.call.call_count] (the count of the containing block). *)

type stats = {
  functions : int;
  functions_with_profile : int;
      (** Functions where at least one block key matched. *)
  blocks : int;
  blocks_matched : int;  (** Blocks whose key was present in the db. *)
  total_count : float;  (** Sum of all annotated block counts. *)
  unmatched_keys : int;
      (** Db keys that matched nothing in the current program — the
          profile weight silently ignored under source drift.  Also
          ticked to the [correlate/unmatched_keys] Obs counter. *)
  unmatched_weight : float;  (** Summed counts of those keys. *)
}

val annotate : Db.t -> Cmo_il.Ilmod.t list -> stats
(** Annotate in place. Probe instructions, if present, are ignored. *)

val clear : Cmo_il.Ilmod.t list -> unit
(** Reset all annotations to 0 (an unprofiled compilation). *)

val edge_count : Db.t -> fname:string -> src:int -> dst:int -> float
(** Measured traversal count of a conditional edge, 0 when absent. *)

val pp_stats : Format.formatter -> stats -> unit
