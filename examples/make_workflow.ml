(* Build-environment compatibility (paper section 6.1): the CMO
   framework keeps all persistent state, except profiles, in ordinary
   object files, so a make-style tool can drive it.  This example
   walks the incremental-build workflow:

   1. full build (+O4 +P): frontends dump IL object files, CMO runs
      at link time;
   2. null build: every object is up to date, only the link-time CMO
      re-runs;
   3. touch one module: exactly that module's frontend re-runs.

     dune exec examples/make_workflow.exe *)

module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Buildsys = Cmo_driver.Buildsys
module Vm = Cmo_vm.Vm

let sources =
  [
    {
      Pipeline.name = "main_m";
      text =
        {|
        func main() {
          var s = 0;
          var i = 0;
          while (i < 2000) { s = (s + step(i, s)) & 65535; i = i + 1; }
          print(s);
          return s;
        }
        |};
    };
    { Pipeline.name = "lib_a"; text = "func step(x, s) { return twist(x) + (s >> 1); }" };
    { Pipeline.name = "lib_b"; text = "func twist(v) { return v * 3 + 1; }" };
  ]

let show label (o : Buildsys.outcome) =
  Printf.printf "%-24s recompiled: [%s]  reused: [%s]\n" label
    (String.concat ", " o.Buildsys.recompiled)
    (String.concat ", " o.Buildsys.reused)

let () =
  let dir = Filename.temp_file "cmo_make" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let ws = Buildsys.create ~dir () in
  let profile = Pipeline.train sources in

  let first = Buildsys.build ~profile ws Options.o4_pbo sources in
  show "full build:" first;
  let r1 = Pipeline.run first.Buildsys.build in

  let second = Buildsys.build ~profile ws Options.o4_pbo sources in
  show "null build:" second;

  (* Edit one library module. *)
  let edited =
    List.map
      (fun s ->
        if s.Pipeline.name = "lib_b" then
          { s with Pipeline.text = "func twist(v) { return v * 3 + 2; }" }
        else s)
      sources
  in
  let third = Buildsys.build ~profile ws Options.o4_pbo edited in
  show "after editing lib_b:" third;
  let r3 = Pipeline.run third.Buildsys.build in

  Printf.printf "\nresult before edit: %Ld, after: %Ld\n" r1.Vm.ret r3.Vm.ret;
  Printf.printf
    "(IL object files on disk: %s)\n"
    (String.concat ", "
       (List.filter (fun f -> Filename.check_suffix f ".o")
          (Array.to_list (Sys.readdir dir))));
  Buildsys.clean ws;
  Sys.rmdir dir
