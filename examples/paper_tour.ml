(* A guided tour: one run that demonstrates each of the paper's main
   claims in order, on a single mid-sized application.

     dune exec examples/paper_tour.exe

   Sections mirror the paper:
     §2  CMO+PBO beats PBO beats the default level
     §4  NAIM: sub-linear optimizer memory, staged thresholds
     §5  selectivity: the hot fraction carries the benefit
     §6.1 build-tool compatibility: state lives in object files
     §6.2 reproducibility and stale profiles *)

module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Loader = Cmo_naim.Loader
module Vm = Cmo_vm.Vm

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  let cfg = Genprog.scale (Suite.find "vortex") 0.8 in
  let listing = Genprog.generate cfg in
  let sources = List.map (fun (name, text) -> { Pipeline.name; text }) listing in
  Printf.printf "application: %d modules, %d lines (synthetic '%s' personality)\n"
    (List.length sources)
    (Genprog.source_lines listing)
    cfg.Genprog.name;

  (* -------- §2: the headline speedups -------- *)
  section "2. Performance: +O2 < +O2+P < +O4+P";
  let profile = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let input = Genprog.reference_input cfg in
  let run options profile =
    Pipeline.run ~input (Pipeline.compile ?profile options sources)
  in
  let o2 = run Options.o2 None in
  let o2p = run Options.o2_pbo (Some profile) in
  let o4p = run Options.o4_pbo (Some profile) in
  assert (o2.Vm.ret = o4p.Vm.ret && o2.Vm.output = o4p.Vm.output);
  Printf.printf "  +O2     %9d cycles  (baseline)\n" o2.Vm.cycles;
  Printf.printf "  +O2 +P  %9d cycles  (%.2fx)\n" o2p.Vm.cycles
    (float_of_int o2.Vm.cycles /. float_of_int o2p.Vm.cycles);
  Printf.printf "  +O4 +P  %9d cycles  (%.2fx)  <- cross-module + profile\n"
    o4p.Vm.cycles
    (float_of_int o2.Vm.cycles /. float_of_int o4p.Vm.cycles);

  (* -------- §4: NAIM -------- *)
  section "4. NAIM: same compile, smaller machine";
  List.iter
    (fun mb ->
      let options =
        { Options.o4_pbo with Options.machine_memory = mb * 1024 * 1024 }
      in
      let build = Pipeline.compile ~profile options sources in
      let r = build.Pipeline.report in
      let level =
        match r.Pipeline.loader_stats with
        | Some s when s.Loader.offloads > 0 -> "offloading to disk"
        | Some s when s.Loader.symtab_compactions > 0 -> "symtab compaction"
        | Some s when s.Loader.compactions > 0 -> "IR compaction"
        | Some _ -> "everything expanded"
        | None -> "-"
      in
      Printf.printf "  %3d MB machine: peak HLO %5.1f MB  (%s)\n" mb
        (float_of_int r.Pipeline.mem_peak_hlo /. 1024. /. 1024.)
        level)
    [ 256; 16; 4 ];

  (* -------- §5: selectivity -------- *)
  section "5. Selectivity: the hot fraction carries the benefit";
  List.iter
    (fun percent ->
      let build =
        Pipeline.compile ~profile (Options.o4_pbo_selective percent) sources
      in
      let o = Pipeline.run ~input build in
      Printf.printf "  top %5.1f%% of call sites -> %4.1f%% of lines in CMO, %9d cycles\n"
        percent
        (100.
        *. float_of_int build.Pipeline.report.Pipeline.cmo_lines
        /. float_of_int build.Pipeline.report.Pipeline.total_lines)
        o.Vm.cycles)
    [ 2.0; 10.0; 100.0 ];

  (* -------- §6.1: build-tool compatibility -------- *)
  section "6.1 Everything persistent lives in object files";
  let dir = Filename.temp_file "cmo_tour" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let ws = Cmo_driver.Buildsys.create ~dir () in
  let first = Cmo_driver.Buildsys.build ~profile ws Options.o4_pbo sources in
  let second = Cmo_driver.Buildsys.build ~profile ws Options.o4_pbo sources in
  Printf.printf "  full build compiled %d modules; null build reused %d objects\n"
    (List.length first.Cmo_driver.Buildsys.recompiled)
    (List.length second.Cmo_driver.Buildsys.reused);
  Cmo_driver.Buildsys.clean ws;
  Sys.rmdir dir;

  (* -------- §6.2: reproducibility + stale profiles -------- *)
  section "6.2 Reproducibility and stale profiles";
  let image_a = (Pipeline.compile ~profile Options.o4_pbo sources).Pipeline.image in
  let image_b = (Pipeline.compile ~profile Options.o4_pbo sources).Pipeline.image in
  Printf.printf "  two independent builds bit-identical: %b\n"
    (image_a.Cmo_link.Image.code = image_b.Cmo_link.Image.code);
  let evolved_listing =
    Genprog.evolve cfg ~changed:[ 0; 3; 7; 11 ] ~evolution:1
  in
  let evolved =
    List.map (fun (name, text) -> { Pipeline.name; text }) evolved_listing
  in
  let stale_build = Pipeline.compile ~profile Options.o4_pbo evolved in
  let o_stale = Pipeline.run ~input stale_build in
  let fresh_profile =
    Pipeline.train ~inputs:[ Genprog.training_input cfg ] evolved
  in
  let o_fresh =
    Pipeline.run ~input (Pipeline.compile ~profile:fresh_profile Options.o4_pbo evolved)
  in
  assert (o_stale.Vm.ret = o_fresh.Vm.ret);
  Printf.printf
    "  after changing 4 modules: stale-profile build %d cycles, fresh %d\n"
    o_stale.Vm.cycles o_fresh.Vm.cycles;
  Printf.printf "  (stale profiles stay correct; they just optimize less well)\n"
