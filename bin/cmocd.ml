(* cmocd: the build-server daemon.

     cmocd --socket /tmp/cmo.sock --jobs 2 --state-dir .cmocd

   Serves cmoc --remote build requests over a Unix-domain socket
   against a warm artifact store and NAIM repository (lib/server).
   SIGINT/SIGTERM shut down gracefully: in-flight and already-queued
   requests drain, new ones are refused, the socket file is removed. *)

module Options = Cmo_driver.Options
module Server = Cmo_server.Server
open Cmdliner

let socket_arg =
  let default =
    match Options.env.Options.env_socket with
    | Some s -> s
    | None -> "cmocd.sock"
  in
  Arg.(value & opt string default & info [ "socket"; "listen" ] ~docv:"ADDR"
         ~doc:"Where to listen: a Unix-domain socket path, or \
               tcp:HOST:PORT for the multi-machine transport (port 0 \
               binds an ephemeral port; the ready line reports the \
               actual one).  Defaults to \\$CMO_SOCKET or cmocd.sock.")

let jobs_arg =
  Arg.(value & opt int Options.env.Options.env_daemon_jobs
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Concurrent build requests (builder threads).  Defaults \
                 to \\$CMO_DAEMON_JOBS or 2.  Each request additionally \
                 parallelizes internally per its own jobs setting.")

let queue_max_arg =
  Arg.(value & opt int Options.env.Options.env_queue_max
       & info [ "queue-max" ] ~docv:"N"
           ~doc:"Admission bound: at most N requests queued; beyond that \
                 requests are rejected (clients retry).  Defaults to \
                 \\$CMO_QUEUE_MAX or 64.")

let state_dir_arg =
  Arg.(value & opt string ".cmocd" & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Where the daemon's warm state lives (artifact store and \
               NAIM repository); created if missing.")

let cache_capacity_arg =
  Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~docv:"MB"
         ~doc:"Artifact store live-byte bound in MiB (default 256).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record the daemon's whole lifetime with the observability \
               sink and write a Chrome-trace JSON to FILE on shutdown; \
               per-request reports then carry cumulative counters.  Also \
               enabled by \\$CMO_TRACE.")

let pid_file_arg =
  Arg.(value & opt (some string) None & info [ "pid-file" ] ~docv:"FILE"
         ~doc:"Write the daemon's pid to FILE once listening; removed on \
               clean shutdown.  Supervision scripts use it to find and to \
               confirm teardown of the daemon.")

let log_arg =
  let level =
    Arg.enum
      [ ("quiet", None); ("info", Some Logs.Info); ("debug", Some Logs.Debug) ]
  in
  Arg.(value & opt level (Some Logs.Info) & info [ "log" ] ~docv:"LEVEL"
         ~doc:"Daemon diagnostics: quiet, info, debug.")

let action socket jobs queue_max state_dir cache_capacity trace pid_file log =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level log;
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else if queue_max < 1 then `Error (false, "--queue-max must be >= 1")
  else begin
    let trace =
      match trace with None -> Options.env.Options.env_trace | some -> some
    in
    let cfg =
      {
        Server.socket;
        builders = jobs;
        queue_max;
        state_dir;
        cache_capacity =
          Option.map (fun mb -> mb * 1024 * 1024) cache_capacity;
        trace;
      }
    in
    (* start installs the SIGINT/SIGTERM shutdown handlers itself,
       before unblocking the signals — installing them here would
       leave a window where a signal kills us without a drain. *)
    match Server.start ~handle_signals:true cfg with
    | exception Unix.Unix_error (e, _, _) ->
      `Error
        (false, Printf.sprintf "cannot listen on %s: %s" socket
                  (Unix.error_message e))
    | exception Sys_error m ->
      `Error (false, Printf.sprintf "cannot listen on %s: %s" socket m)
    | t ->
      Option.iter
        (fun f ->
          Cmo_support.Fsio.atomic_write f (string_of_int (Unix.getpid ()) ^ "\n"))
        pid_file;
      (* The ready line is the contract scripts wait on before
         pointing clients at the socket; Server.address (not the raw
         config) so a tcp:HOST:0 request reports the real port. *)
      Printf.printf "cmocd: listening on %s\n%!" (Server.address t);
      Server.wait t;
      Option.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        pid_file;
      Printf.printf "cmocd: shutdown complete\n%!";
      `Ok ()
  end

let cmd =
  let doc = "build-server daemon for the CMO toolchain" in
  Cmd.v
    (Cmd.info "cmocd" ~version:"1.0" ~doc)
    Term.(ret (const action $ socket_arg $ jobs_arg $ queue_max_arg
               $ state_dir_arg $ cache_capacity_arg $ trace_arg $ pid_file_arg
               $ log_arg))

let () = exit (Cmd.eval cmd)
