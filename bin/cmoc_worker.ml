(* cmoc-worker: one distributed link-time CMO partition worker.

   Two placements, one protocol:

   - spawned by the parent build process (no arguments): serve
     partition jobs framed over stdin/stdout until the parent says
     Bye or closes the pipe;
   - a fleet member ([--listen HOST:PORT], port 0 = ephemeral):
     accept TCP connections and serve each one the same conversation,
     announcing the bound address on stdout (and in [--port-file]
     when given, for race-free harnesses).

   All state is per-job — a worker holds no heap shared with the
   parent or with other workers, which is the process isolation the
   distributed mode exists to provide. *)

let usage () =
  prerr_endline
    "usage: cmoc-worker [--listen HOST:PORT] [--port-file FILE]";
  exit 64

let () =
  (* The parent talks protocol on our stdin/stdout; anything the
     toolchain prints must not corrupt it, so diagnostics go to
     stderr. *)
  Logs.set_reporter (Logs.format_reporter ~app:Format.err_formatter ());
  (match Sys.getenv_opt "CMO_WORKER_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level None);
  let listen = ref None in
  let port_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--listen" :: addr :: rest ->
      listen := Some addr;
      parse rest
    | "--port-file" :: path :: rest ->
      port_file := Some path;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !listen with
  | None -> Cmo_driver.Distwork.worker_main Unix.stdin Unix.stdout
  | Some addr -> (
    match Cmo_support.Netio.parse_addr addr with
    | Error m ->
      prerr_endline ("cmoc-worker: " ^ m);
      exit 64
    | Ok (host, port) -> (
      try Cmo_driver.Distwork.worker_listen ?port_file:!port_file host port
      with Sys_error m ->
        prerr_endline ("cmoc-worker: " ^ m);
        exit 1))
