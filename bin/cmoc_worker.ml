(* cmoc-worker: one distributed link-time CMO partition worker.

   Spawned by the parent build process (never by hand): it serves
   partition jobs framed over stdin/stdout until the parent says Bye
   or closes the pipe.  All state is per-job — a worker holds no heap
   shared with the parent or with other workers, which is the process
   isolation the distributed mode exists to provide. *)

let () =
  (* The parent talks protocol on our stdin/stdout; anything the
     toolchain prints must not corrupt it, so diagnostics go to
     stderr. *)
  Logs.set_reporter (Logs.format_reporter ~app:Format.err_formatter ());
  (match Sys.getenv_opt "CMO_WORKER_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level None);
  Cmo_driver.Distwork.worker_main Unix.stdin Unix.stdout
