(* cmoc: the command-line driver for the CMO toolchain.

   Subcommands mirror the production workflow the paper describes:

     cmoc compile a.mc b.mc -O4 -P --profile app.prof --run
     cmoc train a.mc b.mc -o app.prof --input 40,17
     cmoc dump a.mc --what il|asm
     cmoc gen --bench gcc --dir ./src
     cmoc bench-info

   Sources are MiniC files; the module name is the file's basename. *)

module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Buildsys = Cmo_driver.Buildsys
module Db = Cmo_profile.Db
module Vm = Cmo_vm.Vm
module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Fsio = Cmo_support.Fsio
module Netio = Cmo_support.Netio
module Json = Cmo_obs.Json
module Proto = Cmo_server.Proto
module Client = Cmo_server.Client
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_path path =
  let name = Filename.remove_extension (Filename.basename path) in
  { Pipeline.name; text = read_file path }

let parse_input s =
  if s = "" then [||]
  else
    String.split_on_char ',' s
    |> List.map (fun x -> Int64.of_string (String.trim x))
    |> Array.of_list

(* ---- common arguments ---- *)

let sources_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"SOURCE" ~doc:"MiniC source files.")

let level_arg =
  let level =
    Arg.enum [ ("1", Options.O1); ("2", Options.O2); ("4", Options.O4) ]
  in
  Arg.(value & opt level Options.O2 & info [ "O" ] ~docv:"LEVEL"
         ~doc:"Optimization level: 1 (basic blocks), 2 (intraprocedural), 4 (cross-module).")

let pbo_arg =
  Arg.(value & flag & info [ "P"; "pbo" ] ~doc:"Profile-based optimization (+P).")

let profile_arg =
  Arg.(value & opt (some file) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Profile database produced by $(b,cmoc train).")

let selectivity_arg =
  Arg.(value & opt (some float) None & info [ "select" ] ~docv:"PERCENT"
         ~doc:"Coarse-grained selectivity: compile only the modules containing the hottest PERCENT of call sites with CMO.")

let input_arg =
  Arg.(value & opt string "" & info [ "input" ] ~docv:"N,N,..."
         ~doc:"Program input vector (read by the arg intrinsic).")

let jobs_arg =
  Arg.(value & opt int Options.default_jobs & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel pipeline phases \
               (frontend, link-time CMO components, codegen).  Any N \
               produces byte-identical output; defaults to \\$CMO_JOBS \
               or 1.")

let machine_memory_arg =
  Arg.(value & opt int 256 & info [ "machine-mb" ] ~docv:"MB"
         ~doc:"Modeled machine memory for NAIM thresholds.")

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Run the IL verifier after every optimization phase of \
               every routine, failing the build with a named \
               phase/function/instruction diagnostic on the first \
               broken invariant.  Also enabled by \\$CMO_CHECK.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome-trace (Perfetto-loadable) JSON of the \
               build to FILE: stage and per-module spans, per-worker \
               tracks, cache and loader counters, and the NAIM memory \
               timeline.  Also enabled by \\$CMO_TRACE.  Tracing never \
               changes the built image or the cache keys.")

let fault_plan_arg =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Install a deterministic I/O fault plan before building: \
               a comma-separated spec such as $(b,count), \
               $(b,crash@12,seed=3) or $(b,enospc@5) (grammar in \
               lib/support/fsio.mli).  Also read from \\$CMO_FAULT; \
               the flag wins.  When a plan is active the operation and \
               injection counts are reported on stderr after the \
               build.")

let install_fault_plan flag =
  match (match flag with Some _ -> flag | None -> Options.env.Options.env_fault) with
  | None -> ()
  | Some spec -> (
    match Fsio.install_plan spec with
    | Ok () -> ()
    | Error m ->
      raise (Pipeline.Compile_error (Printf.sprintf "bad fault plan %S: %s" spec m)))

(* The network counterpart ($CMO_NET_FAULT, grammar in
   lib/support/netio.mli).  Only the parent build process installs it:
   cmoc-worker and cmocd never read the variable, so a plan exercises
   the dialing side of every link exactly once. *)
let install_net_fault_plan () =
  match Options.env.Options.env_net_fault with
  | None -> ()
  | Some spec -> (
    match Netio.install_plan spec with
    | Ok () -> ()
    | Error m ->
      raise
        (Pipeline.Compile_error
           (Printf.sprintf "bad net fault plan %S: %s" spec m)))

(* A planned crash can fire inside an unwind-time finalizer, where
   [Fun.protect] wraps it; either way it is the simulated power cut. *)
let rec is_crash = function
  | Fsio.Crash -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let report_fault_plan () =
  if Fsio.plan_active () then
    Printf.eprintf "fault plan: %d io ops, %d injected, %d retries\n%!"
      (Fsio.op_count ()) (Fsio.injected ()) (Fsio.retries ());
  if Netio.plan_active () then
    Printf.eprintf "net fault plan: %d net ops, %d injected, %d retries\n%!"
      (Netio.op_count ()) (Netio.injected ()) (Netio.retries ())

let make_options level pbo selectivity machine_mb jobs check trace =
  let base =
    {
      Options.o2 with
      Options.level;
      pbo;
      selectivity;
      machine_memory = machine_mb * 1024 * 1024;
      jobs = max 1 jobs;
      check = check || Options.default_check;
    }
  in
  (* [Options.base] already carries \$CMO_TRACE; the flag overrides. *)
  match trace with None -> base | Some _ -> { base with Options.trace }

(* A missing, unreadable or corrupt profile degrades to building
   without one — PBO is an optimization, not a correctness input. *)
let load_profile = function
  | None -> None
  | Some path -> (
    match Db.load path with
    | db -> Some db
    | exception (Sys_error reason | Cmo_support.Codec.Reader.Corrupt reason) ->
      Logs.warn (fun f ->
          f "profile %s unusable (%s); building without it" path reason);
      None
    | exception End_of_file ->
      Logs.warn (fun f ->
          f "profile %s truncated; building without it" path);
      None)

let log_arg =
  let level =
    Arg.enum
      [ ("quiet", None); ("info", Some Logs.Info); ("debug", Some Logs.Debug) ]
  in
  Arg.(value & opt level None & info [ "log" ] ~docv:"LEVEL"
         ~doc:"Compiler diagnostics: quiet, info (stage timings), debug (loader traffic).")

let setup_logs level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level level

let report_json_arg =
  Arg.(value & opt (some string) None & info [ "report-json" ] ~docv:"FILE"
         ~doc:"Write the machine-readable compilation report (every \
               numeric report field plus derived aggregates) to FILE as \
               JSON.")

let write_report_json file json_string =
  Option.iter (fun f -> Fsio.atomic_write f json_string) file

(* ---- remote mode (the cmocd client) ---- *)

let remote_flag =
  Arg.(value & flag & info [ "remote" ]
         ~doc:"Send the build to a running $(b,cmocd) instead of \
               compiling in-process; the daemon's warm cache serves \
               unchanged modules.  The socket comes from --socket or \
               \\$CMO_SOCKET.  Artifacts are byte-identical to a local \
               build.")

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"The $(b,cmocd) Unix-domain socket (with --remote, or \
               as the remote artifact cache with $(b,cmoc build \
               --dist)).  Defaults to \\$CMO_SOCKET.")

let dist_flag =
  Arg.(value & flag & info [ "dist" ]
         ~doc:"Distributed link-time CMO: run +O4 partitions in \
               isolated $(b,cmoc-worker) processes instead of worker \
               domains.  Any worker loss degrades the affected \
               partition back to in-process execution; output is \
               byte-identical either way.  Also enabled by \
               \\$CMO_DIST.  The worker binary comes from \
               \\$CMO_DIST_WORKER or is found next to cmoc.")

let workers_arg =
  Arg.(value & opt_all string [] & info [ "workers" ] ~docv:"HOST:PORT,..."
         ~doc:"Remote $(b,cmoc-worker --listen) endpoints to place \
               distributed partitions on, alongside (or instead of) \
               spawned local workers.  Comma-separated, repeatable.  \
               Implies --dist.  Also read from \\$CMO_DIST_WORKERS; \
               the flag wins.  A worker whose version handshake does \
               not match is refused and its jobs run locally — output \
               stays byte-identical.")

(* --workers accepts both repeats and comma lists; normalize to the
   flat endpoint list Options carries. *)
let resolve_workers flags =
  let split s =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.concat_map split flags

let resolve_socket = function
  | Some s -> s
  | None -> (
    match Options.env.Options.env_socket with
    | Some s -> s
    | None ->
      raise
        (Pipeline.Compile_error "--remote needs --socket or $CMO_SOCKET"))

(* One build over the wire: returns the relinked image (deterministic
   from the returned object bytes) and the server's report JSON.  A
   fault plan given with --fault-plan travels inside the request and
   applies on the server, to this request only. *)
let remote_compile ~socket ~(options : Options.t) ~fault sources =
  let req =
    {
      Proto.tag = Printf.sprintf "cmoc-%d" (Unix.getpid ());
      level = options.Options.level;
      pbo = options.Options.pbo;
      jobs = options.Options.jobs;
      check = options.Options.check;
      fault;
      sources;
    }
  in
  let fail fmt = Printf.ksprintf (fun m -> raise (Pipeline.Compile_error m)) fmt in
  match Client.with_connect ~socket (fun c -> Client.build c req) with
  | exception Unix.Unix_error (e, _, _) ->
    fail "cannot reach cmocd at %s: %s" socket (Unix.error_message e)
  | exception Client.Protocol_error m -> fail "cmocd protocol error: %s" m
  | Proto.Rejected { reason; _ } -> fail "cmocd rejected the build: %s" reason
  | Proto.Failed { reason; _ } -> fail "cmocd build failed: %s" reason
  | Proto.Pong | Proto.Stats_reply _ | Proto.Shutting_down
  | Proto.Cache_hit _ | Proto.Cache_miss | Proto.Cache_stored
  | Proto.Profile_stored _ | Proto.Profile_db _ | Proto.Cohort_listing _
  | Proto.Cohort_stored _ | Proto.Cohort_db _ | Proto.Cohort_report _ ->
    fail "cmocd protocol error: unexpected reply"
  | Proto.Built { objects; report; _ } -> (
    let objects = List.map Cmo_link.Objfile.decode objects in
    match Cmo_link.Linker.link objects with
    | Ok image -> (image, report)
    | Error errs ->
      fail "%s"
        (Format.asprintf "@[<v>link of remote objects failed:@,%a@]"
           (Format.pp_print_list ~pp_sep:Format.pp_print_cut
              Cmo_link.Linker.pp_error)
           errs))

(* ---- compile ---- *)

let compile_cmd =
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Execute the linked image on the VM.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the compilation report.")
  in
  let map_flag =
    Arg.(value & flag & info [ "map" ] ~doc:"Print the linker map.")
  in
  let hot_flag =
    Arg.(value & flag & info [ "hot-report" ]
           ~doc:"With --run: print the routines the cycles went to, hottest first.")
  in
  let print_outcome ~hot_report (outcome : Vm.outcome) =
    List.iter (Printf.printf "%Ld\n") outcome.Vm.output;
    Printf.printf "exit: %Ld  (%d cycles, %d instructions, %d calls, %d icache misses)\n"
      outcome.Vm.ret outcome.Vm.cycles outcome.Vm.instructions
      outcome.Vm.calls outcome.Vm.icache_misses;
    if hot_report then begin
      Printf.printf "\nflat profile (top 15 routines by cycles):\n";
      List.iteri
        (fun i (name, cyc) ->
          if i < 15 then
            Printf.printf "  %6.2f%%  %10d  %s\n"
              (100.0 *. float_of_int cyc /. float_of_int outcome.Vm.cycles)
              cyc name)
        outcome.Vm.func_cycles
    end
  in
  let action paths level pbo profile selectivity machine_mb jobs check trace fault log input run_it verbose map_it hot_report remote dist workers socket report_json =
    try
      setup_logs log;
      let workers = resolve_workers workers in
      let dist = dist || workers <> [] in
      if remote && dist then
        raise
          (Pipeline.Compile_error
             "--remote and --dist are mutually exclusive: --remote ships \
              the whole build to cmocd, --dist runs it here on worker \
              processes");
      let sources = List.map source_of_path paths in
      let options = make_options level pbo selectivity machine_mb jobs check trace in
      let options =
        if dist then { options with Options.dist = true } else options
      in
      let options =
        if workers = [] then options else { options with Options.workers }
      in
      (* The flag wins over $CMO_FAULT, like the local path. *)
      let fault =
        match fault with
        | Some _ -> fault
        | None -> Options.env.Options.env_fault
      in
      if remote then begin
        let socket = resolve_socket socket in
        let image, report = remote_compile ~socket ~options ~fault sources in
        write_report_json report_json report;
        if verbose then print_endline report;
        if map_it then Format.printf "%a@." Cmo_link.Image.pp_map image;
        if run_it then
          print_outcome ~hot_report
            (Vm.run ~input:(parse_input input) ~attribute:hot_report image)
        else
          Printf.printf "linked %d instructions\n"
            (Array.length image.Cmo_link.Image.code)
      end
      else begin
        install_fault_plan fault;
        install_net_fault_plan ();
        let build = Pipeline.compile ?profile:(load_profile profile) options sources in
        write_report_json report_json
          (Json.to_string (Pipeline.report_to_json build.Pipeline.report));
        if verbose then
          Format.printf "%a@." Pipeline.pp_report build.Pipeline.report;
        if map_it then
          Format.printf "%a@." Cmo_link.Image.pp_map build.Pipeline.image;
        if run_it then
          print_outcome ~hot_report
            (Pipeline.run ~input:(parse_input input) ~attribute:hot_report build)
        else
          Printf.printf "linked %d instructions\n"
            (Array.length build.Pipeline.image.Cmo_link.Image.code);
        report_fault_plan ()
      end;
      `Ok ()
    with
    | Pipeline.Compile_error msg -> `Error (false, msg)
    | Vm.Fault msg -> `Error (false, "runtime fault: " ^ msg)
    | e when is_crash e ->
      report_fault_plan ();
      `Error (false, "simulated crash (fault plan): build aborted")
  in
  let doc = "Compile (and optionally run) MiniC modules, locally or via cmocd." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(ret (const action $ sources_arg $ level_arg $ pbo_arg $ profile_arg
               $ selectivity_arg $ machine_memory_arg $ jobs_arg $ check_arg
               $ trace_arg $ fault_plan_arg $ log_arg $ input_arg $ run_flag
               $ verbose $ map_flag $ hot_flag $ remote_flag $ dist_flag
               $ workers_arg $ socket_arg $ report_json_arg))

(* ---- train ---- *)

let train_cmd =
  let out_arg =
    Arg.(value & opt string "app.prof" & info [ "o" ] ~docv:"FILE"
           ~doc:"Profile database output path.")
  in
  let inputs_arg =
    Arg.(value & opt_all string [] & info [ "input" ] ~docv:"N,N,..."
           ~doc:"Training input vector (repeatable; runs accumulate).")
  in
  let action paths out inputs =
    try
      let sources = List.map source_of_path paths in
      let inputs =
        match inputs with [] -> [ [||] ] | l -> List.map parse_input l
      in
      let db = Pipeline.train ~inputs sources in
      Db.save db out;
      Printf.printf "wrote %s (%d counters, total count %.0f)\n" out
        (List.length (Db.entries db))
        (Db.total db);
      `Ok ()
    with Pipeline.Compile_error msg -> `Error (false, msg)
  in
  let doc = "Build instrumented (+I), run training inputs, write the profile database." in
  Cmd.v (Cmd.info "train" ~doc)
    Term.(ret (const action $ sources_arg $ out_arg $ inputs_arg))

(* ---- dump ---- *)

let dump_cmd =
  let what_arg =
    Arg.(value & opt (enum [ ("il", `Il); ("asm", `Asm) ]) `Il
         & info [ "what" ] ~doc:"What to dump: il (frontend output) or asm (machine code).")
  in
  let action paths what =
    try
      let sources = List.map source_of_path paths in
      (match what with
      | `Il ->
        List.iter
          (fun s ->
            let m = Pipeline.frontend_one s in
            Format.printf "%a@." Cmo_il.Ilmod.pp m)
          sources
      | `Asm ->
        List.iter
          (fun s ->
            let m = Pipeline.frontend_one s in
            let globals = m.Cmo_il.Ilmod.globals in
            let codes, _ = Cmo_llo.Llo.compile_module m in
            Cmo_llo.Asm.print_module Format.std_formatter
              ~module_name:m.Cmo_il.Ilmod.mname ~globals codes)
          sources);
      `Ok ()
    with Pipeline.Compile_error msg -> `Error (false, msg)
  in
  let doc = "Dump intermediate representations." in
  Cmd.v (Cmd.info "dump" ~doc)
    Term.(ret (const action $ sources_arg $ what_arg))

(* ---- gen ---- *)

let gen_cmd =
  let bench_arg =
    Arg.(required & opt (some string) None & info [ "bench" ] ~docv:"NAME"
           ~doc:"Benchmark personality (see $(b,cmoc bench-info)).")
  in
  let dir_arg =
    Arg.(value & opt string "." & info [ "dir" ] ~docv:"DIR"
           ~doc:"Output directory for the generated .mc files.")
  in
  let scale_arg =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR"
           ~doc:"Scale the module count by FACTOR.")
  in
  let action bench dir factor =
    match Suite.find bench with
    | exception Not_found ->
      `Error (false, Printf.sprintf "unknown benchmark %s" bench)
    | cfg ->
      let cfg = if factor = 1.0 then cfg else Genprog.scale cfg factor in
      let sources = Genprog.generate cfg in
      Fsio.mkdirs dir;
      List.iter
        (fun (name, text) ->
          let path = Filename.concat dir (name ^ ".mc") in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text))
        sources;
      Printf.printf "wrote %d modules (%d lines) to %s\n" (List.length sources)
        (Genprog.source_lines sources) dir;
      Printf.printf "training input: %s\nreference input: %s\n"
        (String.concat ","
           (Array.to_list (Array.map Int64.to_string (Genprog.training_input cfg))))
        (String.concat ","
           (Array.to_list (Array.map Int64.to_string (Genprog.reference_input cfg))));
      `Ok ()
  in
  let doc = "Generate a synthetic benchmark's MiniC sources." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(ret (const action $ bench_arg $ dir_arg $ scale_arg))

(* ---- assemble ---- *)

let assemble_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE"
           ~doc:"Object file output (default: INPUT with .o).")
  in
  let asm_sources =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.s"
           ~doc:"Assembly listings produced by $(b,cmoc dump --what asm).")
  in
  let action paths out =
    try
      List.iter
        (fun path ->
          let text = read_file path in
          let module_name, globals, codes = Cmo_llo.Asm.parse_module text in
          let obj =
            Cmo_link.Objfile.of_code ~module_name ~globals
              ~source_digest:(Digest.to_hex (Digest.string text))
              codes
          in
          let target =
            match out with
            | Some o when List.length paths = 1 -> o
            | Some _ | None ->
              Filename.remove_extension path ^ ".o"
          in
          Cmo_link.Objfile.save obj target;
          Printf.printf "assembled %s -> %s (%d routines)
" path target
            (List.length codes))
        paths;
      `Ok ()
    with Cmo_llo.Asm.Parse_error (line, msg) ->
      `Error (false, Printf.sprintf "line %d: %s" line msg)
  in
  let doc = "Assemble a textual listing back into an object file." in
  Cmd.v (Cmd.info "assemble" ~doc) Term.(ret (const action $ asm_sources $ out_arg))

(* ---- isolate ---- *)

let isolate_cmd =
  let module Isolate = Cmo_driver.Isolate in
  let max_ops_arg =
    Arg.(value & opt int 512 & info [ "max-ops" ] ~docv:"N"
           ~doc:"Upper bound for the operation-limit binary search.")
  in
  let action paths profile input max_ops =
    try
      let sources = List.map source_of_path paths in
      let profile = load_profile profile in
      let input = parse_input input in
      let observe options =
        let build = Pipeline.compile ?profile options sources in
        let o = Pipeline.run ~input build in
        (o.Vm.ret, o.Vm.output)
      in
      (* Reference semantics: the minimally optimized build. *)
      let expected = observe Options.o1 in
      let check observed =
        if observed = expected then Isolate.Good else Isolate.Bad observed
      in
      let full = { Options.o4_pbo with Options.pbo = profile <> None } in
      match check (observe full) with
      | Isolate.Good ->
        print_endline
          "no divergence: +O4 agrees with the +O1 baseline on this input";
        `Ok ()
      | Isolate.Bad _ ->
        print_endline "divergence found; reducing the CMO module set...";
        let module_names = List.map (fun s -> s.Pipeline.name) sources in
        let compile ~cmo_modules =
          observe { full with Options.cmo_modules = Some cmo_modules }
        in
        (match Isolate.isolate_modules ~compile ~check ~modules:module_names with
        | Some (reduced, _) ->
          Printf.printf "minimal failing CMO set: %s\n"
            (String.concat ", " reduced);
          let compile ~limit =
            observe
              { full with
                Options.cmo_modules = Some reduced;
                inline_limit = Some limit }
          in
          (match
             Isolate.isolate_operation_limit ~compile ~check ~max_limit:max_ops
           with
          | Some (n, _) ->
            Printf.printf "guilty operation: inline #%d within that set\n" n
          | None ->
            print_endline
              "failure is not inline-count-monotone; try --max-ops or the \
               scalar rewrite limit")
        | None ->
          print_endline
            "failure vanished during reduction (not module-monotone)");
        `Ok ()
    with
    | Pipeline.Compile_error msg -> `Error (false, msg)
    | Vm.Fault msg -> `Error (false, "runtime fault: " ^ msg)
  in
  let doc =
    "Hunt a cross-module miscompilation: compare +O4 against the +O1 \
     baseline, reduce the CMO module set, then binary-search the inline \
     operation limit (the paper's section 6.3 workflow)."
  in
  Cmd.v (Cmd.info "isolate" ~doc)
    Term.(ret (const action $ sources_arg $ profile_arg $ input_arg $ max_ops_arg))

(* ---- link ---- *)

let link_cmd =
  let obj_args =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.o"
           ~doc:"Object files (code payloads; produced by $(b,cmoc assemble) or a build).")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Execute the linked image.")
  in
  let map_flag =
    Arg.(value & flag & info [ "map" ] ~doc:"Print the linker map.")
  in
  let action paths input run_it map_it =
    let objects = List.map Cmo_link.Objfile.load paths in
    match Cmo_link.Linker.link objects with
    | Error errs ->
      `Error
        ( false,
          Format.asprintf "@[<v>link failed:@,%a@]"
            (Format.pp_print_list ~pp_sep:Format.pp_print_cut
               Cmo_link.Linker.pp_error)
            errs )
    | Ok image ->
      if map_it then Format.printf "%a@." Cmo_link.Image.pp_map image;
      if run_it then begin
        let o = Cmo_vm.Vm.run ~input:(parse_input input) image in
        List.iter (Printf.printf "%Ld\n") o.Vm.output;
        Printf.printf "exit: %Ld  (%d cycles)\n" o.Vm.ret o.Vm.cycles
      end
      else
        Printf.printf "linked %d instructions from %d objects\n"
          (Array.length image.Cmo_link.Image.code)
          (List.length objects);
      `Ok ()
  in
  let doc = "Link object files into an image (and optionally run it)." in
  Cmd.v (Cmd.info "link" ~doc)
    Term.(ret (const action $ obj_args $ input_arg $ run_flag $ map_flag))

(* ---- profile-show ---- *)

let profile_show_cmd =
  let db_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Profile database to inspect.")
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N"
           ~doc:"Show the N hottest counters.")
  in
  let action path top =
    let db = Db.load path in
    let entries = Db.entries db in
    Printf.printf "%d counters, total count %.0f
" (List.length entries)
      (Db.total db);
    let hottest =
      List.stable_sort (fun (_, a) (_, b) -> compare b a) entries
    in
    List.iteri
      (fun i (key, count) ->
        if i < top then
          Format.printf "  %12.0f  %a@." count Db.pp_key key)
      hottest;
    `Ok ()
  in
  let doc = "Inspect a profile database (hottest counters first)." in
  Cmd.v (Cmd.info "profile-show" ~doc)
    Term.(ret (const action $ db_arg $ top_arg))

(* ---- profile: fleet ingestion ---- *)

module Ingest = Cmo_profile.Ingest

let fingerprint_of_paths paths =
  Ingest.fingerprint
    (List.map
       (fun p -> (Filename.remove_extension (Filename.basename p), read_file p))
       paths)

let fp_arg =
  Arg.(value & opt string "" & info [ "fp" ] ~docv:"FP"
         ~doc:"Source-version fingerprint (from $(b,cmoc profile \
               fingerprint)).  Empty disables version-skew handling.")

let pack_out_arg =
  Arg.(value & opt string "fleet.shards" & info [ "o" ] ~docv:"FILE"
         ~doc:"Shard pack to append to (created if missing).")

let profile_fingerprint_cmd =
  let action paths =
    Printf.printf "%s\n" (fingerprint_of_paths paths);
    `Ok ()
  in
  let doc = "Print the source-version fingerprint shards are stamped with." in
  Cmd.v (Cmd.info "fingerprint" ~doc) Term.(ret (const action $ sources_arg))

let profile_shard_cmd =
  let prof_arg =
    Arg.(required & opt (some file) None & info [ "profile" ] ~docv:"FILE"
           ~doc:"Profile database ($(b,cmoc train) output) to wrap as a shard.")
  in
  let rate_arg =
    Arg.(value & opt float 1.0 & info [ "sample-rate" ] ~docv:"R"
           ~doc:"Sampling rate this profile was recorded at, in (0,1].")
  in
  let weight_arg =
    Arg.(value & opt float 1.0 & info [ "weight" ] ~docv:"W"
           ~doc:"Trust weight of this shard.")
  in
  let age_arg =
    Arg.(value & opt int 0 & info [ "age" ] ~docv:"N"
           ~doc:"Staleness in versions behind the fleet head.")
  in
  let action paths prof out rate weight age =
    try
      let db = Db.load prof in
      let meta =
        {
          Ingest.source_fp = fingerprint_of_paths paths;
          sample_rate = rate;
          weight;
          age;
        }
      in
      Ingest.append_pack out [ { Ingest.meta; db } ];
      let shards, skipped = Ingest.read_pack out in
      Printf.printf "appended to %s (%d shards, %d damaged)\n" out
        (List.length shards) skipped;
      `Ok ()
    with
    | Sys_error m | Cmo_support.Codec.Reader.Corrupt m -> `Error (false, m)
  in
  let doc = "Wrap a trained profile as a fleet shard and append it to a pack." in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(ret (const action $ sources_arg $ prof_arg $ pack_out_arg $ rate_arg
               $ weight_arg $ age_arg))

let profile_policy_args =
  let decay_arg =
    Arg.(value & opt float 0.9 & info [ "decay-rate" ] ~docv:"R"
           ~doc:"Per-age multiplier for stale shards.")
  in
  let skew_arg =
    Arg.(value & opt float 0.25 & info [ "skew-weight" ] ~docv:"W"
           ~doc:"Multiplier for shards recorded against other source \
                 versions (down-weighted, never dropped).")
  in
  let clamp_arg =
    Arg.(value & opt float 4.0 & info [ "clamp-ratio" ] ~docv:"K"
           ~doc:"Poisoning clamp: cap any shard's weighted mass at K x \
                 the median shard mass (needs >= 3 shards).")
  in
  Term.(const (fun decay skew clamp current_fp ->
            {
              Ingest.current_fp;
              decay_rate = decay;
              skew_weight = skew;
              clamp_ratio = clamp;
            })
        $ decay_arg $ skew_arg $ clamp_arg $ fp_arg)

let pp_ingest_stats (st : Ingest.stats) =
  Printf.printf
    "ingested %d shards (%d skipped, %d skewed, %d clamped, weight %.2f)\n"
    st.Ingest.ing_shards st.Ingest.ing_skipped st.Ingest.ing_skewed
    st.Ingest.ing_clamped st.Ingest.ing_weight

(* The machine-readable twin of [pp_ingest_stats]: the same flat
   numeric-fields-in-an-object shape as [Pipeline.report_to_json], so
   dashboards consume both with one parser.  The unmatched fields only
   appear when the caller supplied sources to correlate against. *)
let ingest_report_json (st : Ingest.stats) db unmatched =
  let n v = Json.Num v in
  let ni v = Json.Num (float_of_int v) in
  let base =
    [
      ("shards_merged", ni st.Ingest.ing_shards);
      ("shards_skipped", ni st.Ingest.ing_skipped);
      ("shards_skewed", ni st.Ingest.ing_skewed);
      ("shards_clamped", ni st.Ingest.ing_clamped);
      ("applied_weight", n st.Ingest.ing_weight);
      ("counters", ni (List.length (Db.entries db)));
      ("total_count", n (Db.total db));
    ]
  in
  let extra =
    match unmatched with
    | None -> []
    | Some (cst : Cmo_profile.Correlate.stats) ->
      [
        ("matched_count", n cst.Cmo_profile.Correlate.total_count);
        ("unmatched_keys", ni cst.Cmo_profile.Correlate.unmatched_keys);
        ("unmatched_weight", n cst.Cmo_profile.Correlate.unmatched_weight);
      ]
  in
  Json.to_string (Json.Obj (base @ extra))

let profile_ingest_cmd =
  let packs_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PACK"
           ~doc:"Shard packs to ingest (corrupt shards are skipped and \
                 counted, never fatal).")
  in
  let out_arg =
    Arg.(value & opt string "fleet.prof" & info [ "o" ] ~docv:"FILE"
           ~doc:"Merged canonical profile database output path.")
  in
  let against_arg =
    Arg.(value & opt_all file [] & info [ "against" ] ~docv:"SRC"
           ~doc:"Source files to correlate the merged database \
                 against; adds unmatched key/weight accounting to the \
                 JSON report (repeatable).")
  in
  let action packs out policy report_json against =
    try
      let db, st = Ingest.ingest_paths ~policy packs in
      Db.save db out;
      pp_ingest_stats st;
      Printf.printf "wrote %s (%d counters, total count %.0f)\n" out
        (List.length (Db.entries db))
        (Db.total db);
      let unmatched =
        if against = [] then None
        else begin
          let modules =
            Pipeline.frontend (List.map source_of_path against)
          in
          let cst = Cmo_profile.Correlate.annotate db modules in
          Cmo_profile.Correlate.clear modules;
          Printf.printf "against %d modules: %d unmatched keys, weight %.0f\n"
            (List.length modules)
            cst.Cmo_profile.Correlate.unmatched_keys
            cst.Cmo_profile.Correlate.unmatched_weight;
          Some cst
        end
      in
      write_report_json report_json (ingest_report_json st db unmatched);
      `Ok ()
    with
    | Sys_error m -> `Error (false, m)
    | Pipeline.Compile_error m -> `Error (false, m)
  in
  let doc = "Merge fleet shard packs into one canonical profile database." in
  Cmd.v (Cmd.info "ingest" ~doc)
    Term.(ret (const action $ packs_arg $ out_arg $ profile_policy_args
               $ report_json_arg $ against_arg))

(* --cohort NAME routes push/pull at a named cohort instead of the
   daemon's anonymous fleet pack; $CMO_COHORT supplies the default. *)
let cohort_opt_arg =
  Arg.(value & opt (some string) None & info [ "cohort" ] ~docv:"NAME"
         ~doc:"Route this operation at the named daemon cohort \
               instead of the anonymous fleet pack.  Defaults to \
               \\$CMO_COHORT when set.")

let resolve_cohort = function
  | Some name -> Some name
  | None -> Options.env.Options.env_cohort

let profile_push_cmd =
  let packs_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PACK"
           ~doc:"Shard packs whose shards are uploaded to the daemon.")
  in
  let action packs socket cohort =
    try
      let socket = resolve_socket socket in
      let cohort = resolve_cohort cohort in
      let pushed = ref 0 and skipped = ref 0 and stored = ref 0 in
      Client.with_connect ~socket (fun c ->
          List.iter
            (fun pack ->
              let shards, damaged = Ingest.read_pack pack in
              skipped := !skipped + damaged;
              match cohort with
              | Some name ->
                stored :=
                  Client.cohort_ingest c ~cohort:name
                    (List.map Ingest.encode_shard shards);
                pushed := !pushed + List.length shards
              | None ->
                List.iter
                  (fun s ->
                    stored := Client.profile_put c (Ingest.encode_shard s);
                    incr pushed)
                  shards)
            packs);
      Printf.printf "pushed %d shards (%d damaged skipped); %s holds %d\n"
        !pushed !skipped
        (match cohort with
        | Some name -> Printf.sprintf "cohort %s" name
        | None -> "daemon")
        !stored;
      `Ok ()
    with
    | Pipeline.Compile_error m | Sys_error m | Client.Protocol_error m ->
      `Error (false, m)
    | Unix.Unix_error (e, _, _) ->
      `Error (false, "cannot reach cmocd: " ^ Unix.error_message e)
  in
  let doc = "Upload fleet shards to a cmocd daemon." in
  Cmd.v (Cmd.info "push" ~doc)
    Term.(ret (const action $ packs_arg $ socket_arg $ cohort_opt_arg))

let profile_pull_cmd =
  let out_arg =
    Arg.(value & opt string "fleet.prof" & info [ "o" ] ~docv:"FILE"
           ~doc:"Where to write the daemon's merged canonical database.")
  in
  let action out socket fp cohort =
    try
      let socket = resolve_socket socket in
      let data, shards, skipped =
        Client.with_connect ~socket (fun c ->
            match resolve_cohort cohort with
            | Some name -> Client.cohort_pull c ~cohort:name ~current_fp:fp
            | None -> Client.profile_get c ~current_fp:fp)
      in
      (* The daemon's bytes are already canonical; write them verbatim
         so pull-vs-local-ingest byte comparisons are meaningful. *)
      Fsio.atomic_write out data;
      Printf.printf "wrote %s (%d shards merged, %d skipped)\n" out shards
        skipped;
      `Ok ()
    with
    | Pipeline.Compile_error m | Sys_error m | Client.Protocol_error m ->
      `Error (false, m)
    | Unix.Unix_error (e, _, _) ->
      `Error (false, "cannot reach cmocd: " ^ Unix.error_message e)
  in
  let doc = "Fetch the daemon's merged fleet profile." in
  Cmd.v (Cmd.info "pull" ~doc)
    Term.(ret (const action $ out_arg $ socket_arg $ fp_arg $ cohort_opt_arg))

(* ---- profile ab: the A/B arm generator ---- *)

let profile_ab_cmd =
  let prof_arg =
    Arg.(required & opt (some file) None & info [ "profile" ] ~docv:"FILE"
           ~doc:"Oracle profile database ($(b,cmoc train) output) both \
                 arms sample from.")
  in
  let divergence_arg =
    Arg.(value & opt float 0.5 & info [ "divergence" ] ~docv:"F"
           ~doc:"Planted divergence of arm B, in [0,1]: 0 makes the \
                 arms byte-identical, 1 swaps the hottest and coldest \
                 keys outright.")
  in
  let users_arg =
    Arg.(value & opt int 40 & info [ "users" ] ~docv:"N"
           ~doc:"Simulated users per arm.")
  in
  let rate_arg =
    Arg.(value & opt float 1.0 & info [ "sample-rate" ] ~docv:"R"
           ~doc:"Per-event recording probability, in (0,1].")
  in
  let noise_arg =
    Arg.(value & opt float 0.1 & info [ "noise" ] ~docv:"X"
           ~doc:"Relative per-key jitter.")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N"
           ~doc:"Fleet seed (both arms share it, so divergence 0 \
                 yields byte-identical arms).")
  in
  let a_arg =
    Arg.(value & opt string "armA.shards" & info [ "a" ] ~docv:"FILE"
           ~doc:"Arm A shard pack output (replaced).")
  in
  let b_arg =
    Arg.(value & opt string "armB.shards" & info [ "b" ] ~docv:"FILE"
           ~doc:"Arm B shard pack output (replaced).")
  in
  let action paths prof divergence users rate noise seed a b =
    try
      let oracle = Db.load prof in
      let current_fp = fingerprint_of_paths paths in
      let cfg =
        {
          Cmo_workload.Fleet.users;
          sample_rate = rate;
          stale_fraction = 0.0;
          noise;
          fleet_seed = seed;
        }
      in
      let arm_a, arm_b =
        Cmo_workload.Fleet.ab_arms cfg ~oracle ~current_fp ~divergence
      in
      Ingest.write_pack a arm_a;
      Ingest.write_pack b arm_b;
      Printf.printf
        "wrote %s and %s (%d users per arm, divergence %.2f, rate %g)\n" a b
        users divergence rate;
      `Ok ()
    with Sys_error m | Cmo_support.Codec.Reader.Corrupt m -> `Error (false, m)
  in
  let doc =
    "Generate the two shard packs of a canary experiment: arm A \
     samples the oracle, arm B a divergence-diverted copy."
  in
  Cmd.v (Cmd.info "ab" ~doc)
    Term.(ret (const action $ sources_arg $ prof_arg $ divergence_arg
               $ users_arg $ rate_arg $ noise_arg $ seed_arg $ a_arg $ b_arg))

(* ---- profile cohort: the named registry ---- *)

let state_dir_arg =
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Operate on the cohort registry under this cmocd state \
               directory without a daemon (offline mode).")

(* Remote when a socket is named (flag or $CMO_SOCKET), local when a
   state dir is; naming both is ambiguous and refused. *)
let cohort_mode socket state_dir =
  match (socket, state_dir) with
  | Some _, Some _ ->
    raise (Pipeline.Compile_error "--socket and --state-dir are exclusive")
  | None, Some dir -> `Local (Filename.concat dir "cohorts")
  | Some s, None -> `Remote s
  | None, None -> (
    match Options.env.Options.env_socket with
    | Some s -> `Remote s
    | None ->
      raise
        (Pipeline.Compile_error
           "cohort operations need --socket/$CMO_SOCKET or --state-dir"))

let cohort_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"COHORT"
         ~doc:"Cohort name ([A-Za-z0-9_.-], not starting with . or -).")

let cohort_errors = function
  | Pipeline.Compile_error m | Sys_error m | Client.Protocol_error m ->
    `Error (false, m)
  | Cmo_profile.Cohort.Bad_name n -> `Error (false, "bad cohort name: " ^ n)
  | Unix.Unix_error (e, _, _) ->
    `Error (false, "cannot reach cmocd: " ^ Unix.error_message e)
  | e -> raise e

let cohort_create_cmd =
  let action name socket state_dir =
    try
      (match cohort_mode socket state_dir with
      | `Remote socket ->
        ignore
          (Client.with_connect ~socket (fun c ->
               Client.cohort_ingest c ~cohort:name []))
      | `Local dir ->
        let reg = Cmo_profile.Cohort.open_ ~dir in
        Cmo_profile.Cohort.create reg name);
      Printf.printf "created cohort %s\n" name;
      `Ok ()
    with e -> cohort_errors e
  in
  let doc = "Create an empty named cohort (idempotent)." in
  Cmd.v (Cmd.info "create" ~doc)
    Term.(ret (const action $ cohort_name_arg $ socket_arg $ state_dir_arg))

let cohort_ingest_cmd =
  let packs_arg =
    Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"PACK"
           ~doc:"Shard packs whose shards join the cohort.")
  in
  let action name packs socket state_dir =
    try
      let shards = ref [] and damaged = ref 0 in
      List.iter
        (fun pack ->
          let ss, d = Ingest.read_pack pack in
          shards := !shards @ ss;
          damaged := !damaged + d)
        packs;
      let stored =
        match cohort_mode socket state_dir with
        | `Remote socket ->
          Client.with_connect ~socket (fun c ->
              Client.cohort_ingest c ~cohort:name
                (List.map Ingest.encode_shard !shards))
        | `Local dir ->
          let reg = Cmo_profile.Cohort.open_ ~dir in
          Cmo_profile.Cohort.create reg name;
          Cmo_profile.Cohort.ingest_into reg name !shards
      in
      Printf.printf
        "cohort %s holds %d shards (%d ingested, %d damaged skipped on read)\n"
        name stored (List.length !shards) !damaged;
      `Ok ()
    with e -> cohort_errors e
  in
  let doc = "Append fleet shards to a named cohort (created as needed)." in
  Cmd.v (Cmd.info "ingest" ~doc)
    Term.(ret (const action $ cohort_name_arg $ packs_arg $ socket_arg
               $ state_dir_arg))

let cohort_list_cmd =
  let action socket state_dir =
    try
      let infos =
        match cohort_mode socket state_dir with
        | `Remote socket ->
          Client.with_connect ~socket (fun c -> Client.cohort_list c)
        | `Local dir -> Cmo_profile.Cohort.list (Cmo_profile.Cohort.open_ ~dir)
      in
      if infos = [] then Printf.printf "no cohorts\n"
      else
        List.iter
          (fun (i : Cmo_profile.Cohort.info) ->
            Printf.printf "%-24s %5d shards %4d damaged %8d bytes%s%s\n"
              i.Cmo_profile.Cohort.ci_name i.ci_shards i.ci_damaged i.ci_bytes
              (if i.ci_snapshot then "  [snapshot]" else "")
              (match i.ci_tags with
              | [] -> ""
              | tags -> "  tags: " ^ String.concat "," tags))
          infos;
      `Ok ()
    with e -> cohort_errors e
  in
  let doc = "List the registry's named cohorts." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(ret (const action $ socket_arg $ state_dir_arg))

let cohort_diff_cmd =
  let base_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE"
           ~doc:"Base (stable) cohort.")
  in
  let canary_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANARY"
           ~doc:"Canary cohort.")
  in
  let diff_sources_arg =
    Arg.(non_empty & pos_right 1 file [] & info [] ~docv:"SOURCES"
           ~doc:"The program whose hot-set selection is compared.")
  in
  let percent_arg =
    Arg.(value & opt float 20.0 & info [ "percent" ] ~docv:"P"
           ~doc:"Hot-set selection percentage (as in PBO selectivity).")
  in
  let threshold_arg =
    Arg.(value & opt (some float) None & info [ "threshold" ] ~docv:"T"
           ~doc:"Would-flip share threshold in (0,1]; defaults to \
                 \\$CMO_FLIP_THRESHOLD, else 0.02.")
  in
  let fail_on_flip_flag =
    Arg.(value & flag & info [ "fail-on-flip" ]
           ~doc:"Exit non-zero when the verdict is FLIP — the alerting \
                 hook for canary pipelines.")
  in
  let action base canary paths socket state_dir percent threshold report_json
      fail_on_flip =
    try
      let threshold =
        match threshold with
        | Some t -> t
        | None -> (
          match Options.env.Options.env_flip_threshold with
          | Some t -> t
          | None -> Cmo_profile.Cohort.Diff.default_threshold)
      in
      let sources = List.map source_of_path paths in
      let report =
        match cohort_mode socket state_dir with
        | `Remote socket ->
          Client.with_connect ~socket (fun c ->
              Client.cohort_diff c ~base ~canary ~percent ~threshold sources)
        | `Local dir ->
          let reg = Cmo_profile.Cohort.open_ ~dir in
          let current_fp =
            Ingest.fingerprint
              (List.map
                 (fun (s : Pipeline.source) ->
                   (s.Pipeline.name, s.Pipeline.text))
                 sources)
          in
          let policy = Ingest.default_policy ~current_fp in
          let base_db = fst (Cmo_profile.Cohort.pull reg ~policy base) in
          let canary_db = fst (Cmo_profile.Cohort.pull reg ~policy canary) in
          let modules = Pipeline.frontend sources in
          let hot label db =
            Cmo_hlo.Selectivity.cohort_hot_set ~percent ~label db modules
          in
          Cmo_profile.Cohort.Diff.diff ~threshold ~base:(hot base base_db)
            (hot canary canary_db)
      in
      Format.printf "%a@?" Cmo_profile.Cohort.Diff.pp_report report;
      write_report_json report_json
        (Json.to_string (Cmo_profile.Cohort.Diff.report_to_json report));
      if fail_on_flip && report.Cmo_profile.Cohort.Diff.r_verdict = Flip then
        `Error (false, "canary would flip the hot set")
      else `Ok ()
    with e -> cohort_errors e
  in
  let doc =
    "Compare the module/function hot sets two cohorts induce on a \
     program and report the would-flip verdict."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(ret (const action $ base_arg $ canary_arg $ diff_sources_arg
               $ socket_arg $ state_dir_arg $ percent_arg $ threshold_arg
               $ report_json_arg $ fail_on_flip_flag))

let cohort_gc_cmd =
  let drop_arg =
    Arg.(value & opt_all string [] & info [ "drop" ] ~docv:"NAME"
           ~doc:"Remove this cohort entirely (repeatable).")
  in
  let gc_state_dir_arg =
    Arg.(value & opt string ".cmocd" & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"The cmocd state directory whose registry is swept \
                 (run offline; stop the daemon first).")
  in
  let action state_dir drops =
    try
      let reg =
        Cmo_profile.Cohort.open_ ~dir:(Filename.concat state_dir "cohorts")
      in
      let st = Cmo_profile.Cohort.gc ~drop:drops reg in
      Printf.printf
        "gc: %d cohorts kept (%d shards), %d removed, %d damaged frames \
         compacted, %d bytes reclaimed\n"
        st.Cmo_profile.Cohort.gc_cohorts st.gc_kept_shards st.gc_removed
        st.gc_damage_dropped st.gc_bytes_reclaimed;
      `Ok ()
    with e -> cohort_errors e
  in
  let doc =
    "Sweep the cohort registry offline: drop named cohorts, compact \
     damaged packs, delete orphan metadata."
  in
  Cmd.v (Cmd.info "gc" ~doc)
    Term.(ret (const action $ gc_state_dir_arg $ drop_arg))

let profile_cohort_cmd =
  let doc =
    "Named profile cohorts: create, ingest, list, selection-diff, gc."
  in
  Cmd.group (Cmd.info "cohort" ~doc)
    [ cohort_create_cmd; cohort_ingest_cmd; cohort_list_cmd; cohort_diff_cmd;
      cohort_gc_cmd ]

let profile_cmd =
  let doc =
    "Fleet profile operations: fingerprint, shard, ingest, push, pull, \
     ab, cohort."
  in
  Cmd.group (Cmd.info "profile" ~doc)
    [ profile_fingerprint_cmd; profile_shard_cmd; profile_ingest_cmd;
      profile_push_cmd; profile_pull_cmd; profile_ab_cmd; profile_cohort_cmd ]

(* ---- build ---- *)

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Artifact cache directory (default: the workspace's DIR/.cmo-cache).")

let cache_capacity_arg =
  Arg.(value & opt (some int) None & info [ "cache-capacity" ] ~docv:"MB"
         ~doc:"Artifact cache capacity in MiB (default 256).")

let build_cmd =
  let dir_arg =
    Arg.(value & opt dir "." & info [ "dir" ] ~docv:"DIR"
           ~doc:"Workspace directory for object files and the artifact cache.")
  in
  let no_cache_flag =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Disable the link-time artifact cache.")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Execute the linked image on the VM.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the compilation report.")
  in
  let action paths level pbo profile selectivity machine_mb jobs check trace
      fault log input dir no_cache cache_dir cache_capacity run_it verbose
      dist workers socket report_json =
    try
      setup_logs log;
      install_fault_plan fault;
      install_net_fault_plan ();
      let workers = resolve_workers workers in
      let dist = dist || workers <> [] in
      let sources = List.map source_of_path paths in
      let options = make_options level pbo selectivity machine_mb jobs check trace in
      let options =
        if dist then { options with Options.dist = true } else options
      in
      let options =
        if workers = [] then options else { options with Options.workers }
      in
      let ws =
        Buildsys.create ~cache:(not no_cache) ?cache_dir
          ?cache_capacity:(Option.map (fun mb -> mb * 1024 * 1024) cache_capacity)
          ~dir ()
      in
      (* With --dist and a socket, a running cmocd doubles as a remote
         artifact cache shared across checkouts; an unreachable daemon
         degrades to a purely local build. *)
      let client =
        let socket =
          match socket with
          | Some _ -> socket
          | None -> Options.env.Options.env_socket
        in
        match socket with
        | Some s when options.Options.dist -> (
          match Client.connect ~socket:s with
          | c -> Some c
          | exception Unix.Unix_error (e, _, _) ->
            Logs.warn (fun f ->
                f "remote cache at %s unreachable (%s); building without it"
                  s (Unix.error_message e));
            None
          | exception Sys_error m ->
            (* Netio.connect (tcp: sockets) reports exhausted retries
               this way; same degradation either transport. *)
            Logs.warn (fun f ->
                f "remote cache at %s unreachable (%s); building without it" s m);
            None)
        | Some _ | None -> None
      in
      Fun.protect ~finally:(fun () -> Option.iter Client.close client)
      @@ fun () ->
      let remote = Option.map Client.remote client in
      let outcome =
        (* ^C mid-build must not leave half-written [.tmp] artifacts
           around the workspace: Break unwinds through the build's
           finalizers (closing the store), then the sweep below picks
           up whatever an interrupted atomic_write abandoned. *)
        let previous =
          Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> raise Sys.Break))
        in
        match
          Buildsys.build ?profile:(load_profile profile) ?remote ws options
            sources
        with
        | outcome ->
          Sys.set_signal Sys.sigint previous;
          outcome
        | exception Sys.Break ->
          List.iter
            (fun d ->
              if Sys.file_exists d && Sys.is_directory d then
                Array.iter
                  (fun f ->
                    if Filename.check_suffix f ".tmp" then
                      try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
                  (Sys.readdir d))
            [ dir; Buildsys.cache_dir ws ];
          prerr_endline "cmoc: interrupted; temp artifacts cleaned";
          exit 130
      in
      write_report_json report_json
        (Json.to_string
           (Pipeline.report_to_json outcome.Buildsys.build.Pipeline.report));
      Printf.printf "frontend: %d recompiled, %d reused\n"
        (List.length outcome.Buildsys.recompiled)
        (List.length outcome.Buildsys.reused);
      let report = outcome.Buildsys.build.Pipeline.report in
      (match report.Pipeline.cache with
      | Some c ->
        Printf.printf
          "link cache: %d hits, %d misses; %d cmo modules cached, %d re-optimized\n"
          c.Pipeline.hits c.Pipeline.misses
          (List.length c.Pipeline.cmo_cached)
          (List.length c.Pipeline.cmo_reoptimized);
        if c.Pipeline.remote_hits + c.Pipeline.remote_misses > 0 then
          Printf.printf "remote cache: %d hits, %d misses\n"
            c.Pipeline.remote_hits c.Pipeline.remote_misses
      | None -> ());
      if report.Pipeline.workers_used > 1 then
        Printf.printf "parallel: %d workers, %.2fx speedup (cpu/wall)\n"
          report.Pipeline.workers_used (Pipeline.par_speedup report);
      if verbose then Format.printf "%a@." Pipeline.pp_report report;
      if run_it then begin
        let o = Pipeline.run ~input:(parse_input input) outcome.Buildsys.build in
        List.iter (Printf.printf "%Ld\n") o.Vm.output;
        Printf.printf "exit: %Ld  (%d cycles)\n" o.Vm.ret o.Vm.cycles
      end
      else
        Printf.printf "linked %d instructions\n"
          (Array.length outcome.Buildsys.build.Pipeline.image.Cmo_link.Image.code);
      report_fault_plan ();
      `Ok ()
    with
    | Pipeline.Compile_error msg -> `Error (false, msg)
    | Vm.Fault msg -> `Error (false, "runtime fault: " ^ msg)
    | e when is_crash e ->
      report_fault_plan ();
      `Error (false, "simulated crash (fault plan): build aborted")
  in
  let doc =
    "Incremental build over on-disk object files, with cached link-time \
     cross-module optimization."
  in
  Cmd.v (Cmd.info "build" ~doc)
    Term.(ret (const action $ sources_arg $ level_arg $ pbo_arg $ profile_arg
               $ selectivity_arg $ machine_memory_arg $ jobs_arg $ check_arg
               $ trace_arg $ fault_plan_arg $ log_arg $ input_arg $ dir_arg
               $ no_cache_flag $ cache_dir_arg $ cache_capacity_arg $ run_flag
               $ verbose $ dist_flag $ workers_arg $ socket_arg
               $ report_json_arg))

(* ---- cache ---- *)

let cache_cmd =
  let module Store = Cmo_cache.Store in
  let what_arg =
    Arg.(required
         & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
         & info [] ~docv:"ACTION"
             ~doc:"$(b,stats) prints hit/miss/eviction counters and sizes; \
                   $(b,clear) drops every artifact.")
  in
  let dir_of = function Some d -> d | None -> ".cmo-cache" in
  let action what cache_dir capacity =
    let dir = dir_of cache_dir in
    match what with
    | `Stats ->
      if Sys.file_exists dir then begin
        let store =
          Store.open_
            ?capacity:(Option.map (fun mb -> mb * 1024 * 1024) capacity)
            ~dir ()
        in
        Fun.protect
          ~finally:(fun () -> Store.close store)
          (fun () ->
            Format.printf "%s:@.%a@." dir Store.pp_stats (Store.stats store));
        `Ok ()
      end
      else begin
        Printf.printf "no cache at %s\n" dir;
        `Ok ()
      end
    | `Clear ->
      if Sys.file_exists dir then begin
        let store = Store.open_ ~dir () in
        Fun.protect
          ~finally:(fun () -> Store.close store)
          (fun () -> Store.clear store);
        Printf.printf "cleared %s\n" dir
      end
      else Printf.printf "no cache at %s\n" dir;
      `Ok ()
  in
  let doc = "Inspect or clear a link-time artifact cache." in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(ret (const action $ what_arg $ cache_dir_arg $ cache_capacity_arg))

(* ---- bench-info ---- *)

let bench_info_cmd =
  let action () =
    Printf.printf "%-10s %8s %6s %6s %7s\n" "name" "modules" "hot" "weight" "lines";
    List.iter
      (fun (name, cfg) ->
        Printf.printf "%-10s %8d %6d %5d%% %7d\n" name cfg.Genprog.modules
          cfg.Genprog.hot_modules cfg.Genprog.hot_weight
          (Genprog.source_lines (Genprog.generate cfg)))
      (Suite.all @ [ ("storm", Suite.storm) ]);
    Printf.printf
      "(storm is the build-server load personality; not part of the figure suite)\n";
    `Ok ()
  in
  let doc = "List the benchmark personalities." in
  Cmd.v (Cmd.info "bench-info" ~doc) Term.(ret (const action $ const ()))

let main_cmd =
  let doc = "scalable cross-module optimization toolchain (PLDI 1998 reproduction)" in
  Cmd.group
    (Cmd.info "cmoc" ~version:"1.0" ~doc)
    [ compile_cmd; build_cmd; cache_cmd; train_cmd; dump_cmd; gen_cmd;
      assemble_cmd; link_cmd; isolate_cmd; profile_show_cmd; profile_cmd;
      bench_info_cmd ]

let () = exit (Cmd.eval main_cmd)
