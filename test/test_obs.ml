(* Tests for the observability subsystem: the JSON writer/parser, the
   span/counter recording API, deterministic merging across worker
   counts, and the tentpole invariant — tracing never changes what the
   compiler produces. *)

module Obs = Cmo_obs.Obs
module Json = Cmo_obs.Json
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline

(* Every test that turns the sink on must turn it off on every exit
   path: the flag is process-global and a leak would trace the rest of
   the suite. *)
let with_sink f =
  Obs.start ();
  Fun.protect ~finally:Obs.stop f

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te");
        ("n", Json.Num 42.0);
        ("frac", Json.Num 1.5);
        ("neg", Json.Num (-0.25));
        ("t", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str ""; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_integral_numbers () =
  (* Integral floats print without a decimal point, so trace
     timestamps and counters stay compact and tool-friendly. *)
  Alcotest.(check string) "int" "[42,-3,1.5]"
    (Json.to_string (Json.Arr [ Json.Num 42.0; Json.Num (-3.0); Json.Num 1.5 ]))

let test_json_parse_escapes () =
  match Json.parse {|{"k":"aA\n\"\\"}|} with
  | Ok v ->
    Alcotest.(check (option string)) "escapes decoded" (Some "aA\n\"\\")
      (Option.bind (Json.member "k" v) Json.str)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad

(* ---------- recording ---------- *)

let test_disabled_records_nothing () =
  Alcotest.(check bool) "off by default" false (Obs.enabled ());
  Obs.span_begin "ghost";
  Obs.tick "ghost" "n" 1;
  Obs.span_end ();
  with_sink @@ fun () ->
  Alcotest.(check int) "no pre-start events" 0
    (List.length (List.concat_map snd (Obs.tracks ())))

let test_span_nesting () =
  with_sink @@ fun () ->
  Obs.with_span ~cat:"stage" "outer" (fun () ->
      Obs.with_span ~cat:"phase" "inner" (fun () -> ()));
  let s = Obs.summary () in
  Alcotest.(check int) "events" 4 s.Obs.event_count;
  Alcotest.(check int) "balanced" 0 s.Obs.open_spans;
  let labels = List.map (fun st -> st.Obs.label) s.Obs.span_stats in
  (* Stage spans keep their name; other categories aggregate. *)
  Alcotest.(check bool) "outer kept by name" true (List.mem "outer" labels);
  Alcotest.(check bool) "inner folded to cat" true (List.mem "phase" labels)

let test_stray_span_end_ignored () =
  with_sink @@ fun () ->
  Obs.span_end ();
  Obs.with_span "real" (fun () -> ());
  let s = Obs.summary () in
  Alcotest.(check int) "only the real span" 2 s.Obs.event_count;
  Alcotest.(check int) "still balanced" 0 s.Obs.open_spans

let test_span_end_on_exception () =
  with_sink @@ fun () ->
  (try Obs.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed across raise" 0
    (Obs.summary ()).Obs.open_spans

let test_counter_totals () =
  with_sink @@ fun () ->
  Obs.tick "cache" "hits" 2;
  Obs.tick "cache" "hits" 3;
  Obs.tick "cache" "misses" 1;
  Obs.tick "io" "bytes" 100;
  let totals = Obs.counter_totals () in
  Alcotest.(check (option (float 1e-9))) "hits accumulate" (Some 5.0)
    (List.assoc_opt "cache/hits" totals);
  Alcotest.(check (option (float 1e-9))) "misses separate" (Some 1.0)
    (List.assoc_opt "cache/misses" totals);
  Alcotest.(check (option (float 1e-9))) "names separate" (Some 100.0)
    (List.assoc_opt "io/bytes" totals)

let test_restart_drops_old_events () =
  with_sink (fun () -> Obs.with_span "first" (fun () -> ()));
  with_sink @@ fun () ->
  Obs.with_span "second" (fun () -> ());
  let begins =
    List.concat_map
      (fun (_, evs) ->
        List.filter_map
          (function Obs.Begin { name; _ } -> Some name | _ -> None)
          evs)
      (Obs.tracks ())
  in
  Alcotest.(check (list string)) "only the new trace" [ "second" ] begins

let test_export_is_valid_chrome_trace () =
  with_sink @@ fun () ->
  Obs.with_span ~cat:"stage" "s" (fun () -> Obs.tick "c" "n" 1);
  Obs.instant "mark";
  match Json.parse (Obs.export ()) with
  | Error e -> Alcotest.failf "export not valid JSON: %s" e
  | Ok (Json.Arr events) ->
    Alcotest.(check bool) "has events" true (List.length events >= 5);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "every event has ph" true
          (Json.member "ph" ev <> None))
      events
  | Ok _ -> Alcotest.fail "export is not an event array"

(* ---------- the pipeline under the sink ---------- *)

let sources : Pipeline.source list =
  [
    {
      Pipeline.name = "obs_main";
      text =
        {|
        func main() {
          var s = 0;
          var i = 0;
          while (i < 20) { s = s + obs_step(i); i = i + 1; }
          print(s);
          return s;
        }
        |};
    };
    {
      Pipeline.name = "obs_util";
      text =
        {|
        func obs_step(x) { return obs_half(x) * 3 + 1; }
        static func obs_half(v) { return v / 2; }
        |};
    };
  ]

(* The (cat, name) multiset of spans, minus the "worker" lifecycle
   spans, which exist exactly when jobs > 1 and say nothing about the
   compiled program. *)
let begin_multiset () =
  List.concat_map
    (fun (_, evs) ->
      List.filter_map
        (function
          | Obs.Begin { cat = "worker"; _ } -> None
          | Obs.Begin { name; cat; _ } -> Some (cat, name)
          | _ -> None)
        evs)
    (Obs.tracks ())
  |> List.sort compare

let test_deterministic_across_jobs () =
  (* The traced span structure at +O2 is a function of the program,
     not of the worker count: per-track assignment may race, but the
     multiset of (cat, name) spans must match between -j 1 and -j 4. *)
  let run jobs =
    with_sink @@ fun () ->
    ignore (Pipeline.compile { Options.o2 with Options.jobs } sources);
    begin_multiset ()
  in
  Alcotest.(check (list (pair string string)))
    "same spans at -j 1 and -j 4" (run 1) (run 4)

let test_traced_build_byte_identical () =
  let options = { Options.o4 with Options.jobs = 4 } in
  let plain = Pipeline.compile options sources in
  let path = Filename.temp_file "cmo_obs" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let traced =
    Pipeline.compile { options with Options.trace = Some path } sources
  in
  Alcotest.(check bool) "code identical" true
    (plain.Pipeline.image.Cmo_link.Image.code
    = traced.Pipeline.image.Cmo_link.Image.code);
  Alcotest.(check bool) "objects identical" true
    (plain.Pipeline.objects = traced.Pipeline.objects);
  Alcotest.(check bool) "sink off after the build" false (Obs.enabled ());
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match Json.parse text with
  | Ok (Json.Arr _) -> ()
  | Ok _ -> Alcotest.fail "trace file is not an event array"
  | Error e -> Alcotest.failf "trace file invalid: %s" e);
  Alcotest.(check bool) "summary attached to report" true
    (traced.Pipeline.report.Pipeline.obs <> None);
  Alcotest.(check bool) "no summary untraced" true
    (plain.Pipeline.report.Pipeline.obs = None)

let test_traced_o4_structure () =
  with_sink @@ fun () ->
  ignore (Pipeline.compile { Options.o4 with Options.jobs = 4 } sources);
  let s = Obs.summary () in
  Alcotest.(check int) "all spans closed" 0 s.Obs.open_spans;
  let labels = List.map (fun st -> st.Obs.label) s.Obs.span_stats in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " stage present") true
        (List.mem stage labels))
    [ "frontend"; "hlo"; "llo"; "link" ];
  Alcotest.(check bool) "a worker track exists" true
    (List.exists
       (fun (name, _) ->
         String.length name > 7 && String.sub name 0 7 = "worker-")
       (Obs.tracks ()));
  Alcotest.(check bool) "loader counters recorded" true
    (List.assoc_opt "naim.loader/acquires" s.Obs.counters <> None);
  let naim_samples =
    List.concat_map
      (fun (_, evs) ->
        List.filter
          (function
            | Obs.Counter { name = "NAIM memory"; _ } -> true
            | _ -> false)
          evs)
      (Obs.tracks ())
  in
  Alcotest.(check bool) "memory timeline sampled" true (naim_samples <> [])

let test_trace_outside_fingerprint () =
  let base = { Options.o4 with Options.jobs = 4 } in
  Alcotest.(check string) "trace not fingerprinted"
    (Options.cache_fingerprint base)
    (Options.cache_fingerprint { base with Options.trace = Some "t.json" });
  Alcotest.(check bool) "level is fingerprinted" true
    (Options.cache_fingerprint base
    <> Options.cache_fingerprint { base with Options.level = Options.O2 })

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json integral numbers", `Quick, test_json_integral_numbers);
    ("json escapes", `Quick, test_json_parse_escapes);
    ("json rejects garbage", `Quick, test_json_rejects_garbage);
    ("disabled records nothing", `Quick, test_disabled_records_nothing);
    ("span nesting", `Quick, test_span_nesting);
    ("stray span_end ignored", `Quick, test_stray_span_end_ignored);
    ("span closed on exception", `Quick, test_span_end_on_exception);
    ("counter totals", `Quick, test_counter_totals);
    ("restart drops old events", `Quick, test_restart_drops_old_events);
    ("export is chrome trace", `Quick, test_export_is_valid_chrome_trace);
    ("deterministic across jobs", `Quick, test_deterministic_across_jobs);
    ("traced build byte-identical", `Quick, test_traced_build_byte_identical);
    ("traced O4 structure", `Quick, test_traced_o4_structure);
    ("trace outside fingerprint", `Quick, test_trace_outside_fingerprint);
  ]
