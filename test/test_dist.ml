(* Distributed WHOPR-style CMO, proven byte-invisible: the
   cross-process determinism matrix ({threads, worker processes,
   remote cache} × {O2, O4, O4+P} × {cold, warm} × {j1, j4} against
   the threads-j1 oracle), qcheck fuzz over the new wire messages, a
   worker kill-sweep (SIGKILL at every protocol event; the build
   recovers byte-identical and never hangs), and the remote artifact
   cache end-to-end through a live in-process cmocd. *)

module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Distwork = Cmo_driver.Distwork
module Store = Cmo_cache.Store
module Fsio = Cmo_support.Fsio
module Netio = Cmo_support.Netio
module Codec = Cmo_support.Codec
module Memstats = Cmo_naim.Memstats
module Loader = Cmo_naim.Loader
module Hlo = Cmo_hlo.Hlo
module Inline = Cmo_hlo.Inline
module Ipa = Cmo_hlo.Ipa
module Server = Cmo_server.Server
module Client = Cmo_server.Client
module Vm = Cmo_vm.Vm

(* ---------- scaffolding ---------- *)

let with_dir f = Helpers.with_dir ~prefix:"cmo_dist" f
let same_build = Helpers.same_build
let same_store_bytes = Helpers.same_store_bytes

let with_closed_store dir f =
  let store = Store.open_ ~dir () in
  Fun.protect ~finally:(fun () -> Store.close store) (fun () -> f store)

(* Set an env knob for the callback's lifetime.  Both dist knobs treat
   the empty string as unset ([resolve_worker], [parse_chaos]), so
   restoring an absent variable to [""] is a faithful reset. *)
let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let usage (b : Pipeline.build) =
  match b.Pipeline.report.Pipeline.cache with
  | Some c -> c
  | None -> Alcotest.fail "expected cache usage"

(* ---------- the worker binary resolves ---------- *)

(* Fail loudly rather than silently degrading every dist cell to the
   in-process path: the rest of this suite assumes real processes. *)
let test_worker_binary_resolves () =
  let bin = Distwork.resolve_worker () in
  Alcotest.(check bool)
    (Printf.sprintf "worker binary exists at %s" bin)
    true (Sys.file_exists bin)

(* ---------- wire-protocol fuzz ---------- *)

let gen_wire_string = QCheck.Gen.(string_size (int_range 0 16))
let gen_nat = QCheck.Gen.int_range 0 1_000_000

let gen_options =
  QCheck.Gen.(
    map3
      (fun base jobs dist -> { base with Options.jobs; dist })
      (oneofl [ Options.o2; Options.o4; Options.o4_pbo ])
      (int_range 1 16) bool)

let gen_job =
  QCheck.Gen.(
    let* job_options = gen_options in
    let* job_modules = list_size (int_range 0 4) gen_wire_string in
    let* job_called = list_size (int_range 0 4) gen_wire_string in
    let* job_stored = list_size (int_range 0 4) gen_wire_string in
    let* job_hot = option (list_size (int_range 0 3) gen_wire_string) in
    let+ job_phase_cache = bool in
    {
      Distwork.job_options;
      job_modules;
      job_called;
      job_stored;
      job_hot;
      job_phase_cache;
    })

let gen_inline_stats =
  QCheck.Gen.(
    let* operations = gen_nat in
    let* cross_module = gen_nat in
    let* bytes_grown = int_range (-1_000_000) 1_000_000 in
    let* rejected_too_big = gen_nat in
    let* rejected_cold = gen_nat in
    let* rejected_recursive = gen_nat in
    let+ rejected_caller_full = gen_nat in
    {
      Inline.operations;
      cross_module;
      bytes_grown;
      rejected_too_big;
      rejected_cold;
      rejected_recursive;
      rejected_caller_full;
    })

let gen_ipa_stats =
  QCheck.Gen.(
    let* const_params = gen_nat in
    let* const_global_loads = gen_nat in
    let+ dead_functions = list_size (int_range 0 4) gen_wire_string in
    { Ipa.const_params; const_global_loads; dead_functions })

let gen_report =
  QCheck.Gen.(
    let* clones = gen_nat in
    let* inline_stats = option gen_inline_stats in
    let* ipa_stats = option gen_ipa_stats in
    let* funcs_optimized = gen_nat in
    let* funcs_skipped = gen_nat in
    let+ rewrites = gen_nat in
    { Hlo.clones; inline_stats; ipa_stats; funcs_optimized; funcs_skipped; rewrites })

let gen_lstats =
  QCheck.Gen.(
    let* acquires = gen_nat in
    let* cache_hits = gen_nat in
    let* uncompactions = gen_nat in
    let* repo_loads = gen_nat in
    let* compactions = gen_nat in
    let* offloads = gen_nat in
    let+ symtab_compactions = gen_nat in
    {
      Loader.acquires;
      cache_hits;
      uncompactions;
      repo_loads;
      compactions;
      offloads;
      symtab_compactions;
    })

let gen_mem_summary =
  (* The decoder validates the residency list against the category
     count, so a valid summary must carry exactly that many entries. *)
  let ncat = List.length Memstats.all_categories in
  QCheck.Gen.(
    let* ms_resident = list_repeat ncat gen_nat in
    let* ms_peak = gen_nat in
    let+ ms_peak_hlo = gen_nat in
    { Distwork.ms_resident; ms_peak; ms_peak_hlo })

let gen_parent_msg =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun j -> Distwork.Job j) gen_job);
        (3, map (fun d -> Distwork.Have d) (option gen_wire_string));
        (2, return Distwork.Ack);
        (1, return Distwork.Bye);
        (2, map (fun r -> Distwork.Refuse r) gen_wire_string);
      ])

(* Hello fingerprints range over arbitrary strings and wire versions
   over arbitrary naturals — the handshake decoder must survive (and
   round-trip) anything a skewed peer could legitimately encode. *)
let gen_hello =
  QCheck.Gen.(
    map2
      (fun h_wire h_digest -> { Distwork.h_wire; h_digest })
      gen_nat gen_wire_string)

let gen_worker_msg =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun k -> Distwork.Need k) gen_wire_string);
        (2, map2 (fun k v -> Distwork.Keep (k, v)) gen_wire_string gen_wire_string);
        ( 3,
          let* done_modules = list_size (int_range 0 4) gen_wire_string in
          let* done_report = gen_report in
          let* done_lstats = gen_lstats in
          let+ done_mem = gen_mem_summary in
          Distwork.Done { done_modules; done_report; done_lstats; done_mem } );
        (1, map (fun r -> Distwork.Fail r) gen_wire_string);
        (2, map (fun h -> Distwork.Hello h) gen_hello);
        (1, return Distwork.Pulse);
      ])

let parent_tag = function
  | Distwork.Job _ -> "Job"
  | Distwork.Have _ -> "Have"
  | Distwork.Ack -> "Ack"
  | Distwork.Bye -> "Bye"
  | Distwork.Refuse _ -> "Refuse"

let worker_tag = function
  | Distwork.Need _ -> "Need"
  | Distwork.Keep _ -> "Keep"
  | Distwork.Done _ -> "Done"
  | Distwork.Fail _ -> "Fail"
  | Distwork.Hello _ -> "Hello"
  | Distwork.Pulse -> "Pulse"

let parent_arb = QCheck.make ~print:parent_tag gen_parent_msg
let worker_arb = QCheck.make ~print:worker_tag gen_worker_msg

let qcheck_parent_roundtrip =
  QCheck.Test.make ~name:"dist wire: parent messages round-trip" ~count:300
    parent_arb (fun m ->
      Distwork.decode_parent (Distwork.encode_parent m) = m)

let qcheck_worker_roundtrip =
  QCheck.Test.make ~name:"dist wire: worker messages round-trip" ~count:300
    worker_arb (fun m ->
      Distwork.decode_worker (Distwork.encode_worker m) = m)

(* Every strict prefix of a valid encoding is corrupt — the decoders
   never accept a truncated message and never crash some other way. *)
let rejects_truncation decode enc where =
  let k = int_of_float (where *. float_of_int (String.length enc - 1)) in
  match decode (Helpers.truncated enc k) with
  | _ -> false
  | exception Codec.Reader.Corrupt _ -> true

let qcheck_parent_truncation =
  QCheck.Test.make ~name:"dist wire: truncated parent payloads are corrupt"
    ~count:300
    QCheck.(pair parent_arb (make Gen.(float_bound_inclusive 1.0)))
    (fun (m, where) ->
      rejects_truncation Distwork.decode_parent (Distwork.encode_parent m) where)

let qcheck_worker_truncation =
  QCheck.Test.make ~name:"dist wire: truncated worker payloads are corrupt"
    ~count:300
    QCheck.(pair worker_arb (make Gen.(float_bound_inclusive 1.0)))
    (fun (m, where) ->
      rejects_truncation Distwork.decode_worker (Distwork.encode_worker m) where)

(* Arbitrary bytes: decode returns a message or raises [Corrupt] —
   anything else (Invalid_argument, Out_of_memory, a hang) fails. *)
let qcheck_wire_garbage =
  QCheck.Test.make ~name:"dist wire: garbage never crashes the decoders"
    ~count:500
    (QCheck.make
       ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size (int_range 0 64)))
    (fun s ->
      let safe decode =
        match decode s with
        | _ -> true
        | exception Codec.Reader.Corrupt _ -> true
      in
      safe Distwork.decode_parent && safe Distwork.decode_worker)

(* A bit flip anywhere in the framed transport encoding is caught by
   the CMR1 scan machinery (magic, length or CRC) before the payload
   decoder ever sees it: [scan_frame] never yields the frame. *)
let qcheck_framed_bitflip =
  QCheck.Test.make ~name:"dist wire: framed bit flips never scan as valid"
    ~count:300
    QCheck.(
      pair parent_arb
        (make Gen.(pair (float_bound_inclusive 1.0) (int_range 1 255))))
    (fun (m, (where, bits)) ->
      let framed = Fsio.frame (Distwork.encode_parent m) in
      let i =
        min
          (String.length framed - 1)
          (int_of_float (where *. float_of_int (String.length framed)))
      in
      match Fsio.scan_frame (Helpers.flip_byte framed i bits) ~pos:0 with
      | Fsio.Frame _ -> false
      | Fsio.Need _ | Fsio.Bad _ -> true)

(* The same faults at the fd level, where the pool actually reads. *)
let test_framed_fd_faults () =
  let with_pair f =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ())
      (fun () -> f a b)
  in
  let msg = Distwork.encode_worker (Distwork.Need "some-fingerprint") in
  (* Clean round trip over the wire. *)
  with_pair (fun a b ->
      Fsio.write_framed a msg;
      match Fsio.read_framed b with
      | Ok payload ->
        Alcotest.(check bool) "clean frame decodes" true
          (Distwork.decode_worker payload = Distwork.Need "some-fingerprint")
      | Error _ -> Alcotest.fail "clean frame did not read back");
  (* A flipped byte mid-frame is fatal for the connection. *)
  with_pair (fun a b ->
      let framed = Fsio.frame msg in
      let corrupt = Helpers.flip_byte framed (String.length framed - 2) 0x10 in
      let n = Unix.write_substring a corrupt 0 (String.length corrupt) in
      Alcotest.(check int) "wrote whole frame" (String.length corrupt) n;
      Unix.close a;
      match Fsio.read_framed b with
      | Error (`Bad _) -> ()
      | Ok _ -> Alcotest.fail "corrupt frame read back as valid"
      | Error `Eof -> Alcotest.fail "corrupt frame reported as clean EOF"
      | Error `Timeout -> Alcotest.fail "unexpected timeout");
  (* A close inside a frame (the SIGKILL shape) is [`Bad], not EOF. *)
  with_pair (fun a b ->
      let framed = Fsio.frame msg in
      let cut = String.length framed - 3 in
      ignore (Unix.write_substring a framed 0 cut);
      Unix.close a;
      match Fsio.read_framed b with
      | Error (`Bad _) -> ()
      | other ->
        Alcotest.failf "mid-frame close read as %s"
          (match other with
          | Ok _ -> "Ok"
          | Error `Eof -> "Eof"
          | Error `Timeout -> "Timeout"
          | Error (`Bad _) -> assert false));
  (* A stalled peer trips the bounded timeout — the hang bound. *)
  with_pair (fun _a b ->
      match Fsio.read_framed ~timeout_s:0.05 b with
      | Error `Timeout -> ()
      | _ -> Alcotest.fail "stalled read did not time out")

(* ---------- a TCP worker fleet ---------- *)

(* Spawn [n] real [cmoc-worker --listen] processes on loopback
   ephemeral ports and hand their [host:port] endpoints to [f].  The
   port file (written atomically by the worker once bound) is the
   race-free ready signal.  Workers inherit the test's environment at
   spawn time, which is how the skew and straggler legs plant
   [$CMO_WORKER_*] levers in the fleet. *)
let with_fleet n f =
  with_dir @@ fun dir ->
  let bin = Distwork.resolve_worker () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let members =
    List.init n (fun i ->
        let pf = Filename.concat dir (Printf.sprintf "port%d" i) in
        let pid =
          Unix.create_process bin
            [| bin; "--listen"; "127.0.0.1:0"; "--port-file"; pf |]
            Unix.stdin devnull Unix.stderr
        in
        (pid, pf))
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (pid, _) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        members)
  @@ fun () ->
  let wait_port pf =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      match
        if Sys.file_exists pf then
          int_of_string_opt (String.trim (Helpers.read_file pf))
        else None
      with
      | Some port -> Printf.sprintf "127.0.0.1:%d" port
      | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "worker never wrote %s" pf
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    in
    go ()
  in
  f (List.map (fun (_, pf) -> wait_port pf) members)

(* ---------- the determinism matrix ---------- *)

(* The four execution modes under test.  [Threads] (the j=1 oracle's
   mode) is test_parallel's subject; here it only anchors the matrix.
   [Tcp] places partitions on a real loopback worker fleet. *)
type mode = Threads | Procs | Tcp of string list | Remote

let mode_name = function
  | Threads -> "threads"
  | Procs -> "procs"
  | Tcp _ -> "tcp"
  | Remote -> "remote"

(* A deterministic in-memory remote cache, fresh per build leg so
   every leg sees the identical remote state its sibling did.  The
   protocol transport itself is exercised against a live cmocd
   below. *)
let memory_remote () =
  let tbl = Hashtbl.create 64 in
  {
    Distwork.remote_get = (fun key -> Hashtbl.find_opt tbl key);
    remote_put = (fun key data -> Hashtbl.replace tbl key data);
  }

let build ~mode ?remote ?profile ?cache options jobs sources =
  let options =
    { options with Options.jobs; dist = (mode <> Threads) }
  in
  let options =
    match mode with
    | Tcp workers -> { options with Options.workers }
    | Threads | Procs | Remote -> options
  in
  let remote = if mode = Remote then remote else None in
  Pipeline.compile ?profile ?cache ?remote options sources

(* One (program, options, mode) cell: uncached, cold-cached and
   warm-cached builds at j=1 and j=4 must all reproduce the
   threads-j1 oracle's artifacts, and — because a fresh remote makes
   every leg's store-op log identical — the store bytes must equal
   the oracle's store bytes across modes, not just across j. *)
let check_mode_cell name ?profile options sources ~oracle ~oracle_dir mode =
  let name = name ^ " [" ^ mode_name mode ^ "]" in
  let fresh_remote () =
    match mode with Remote -> Some (memory_remote ()) | _ -> None
  in
  let b1 = build ~mode ?remote:(fresh_remote ()) ?profile options 1 sources in
  let b4 = build ~mode ?remote:(fresh_remote ()) ?profile options 4 sources in
  same_build (name ^ " uncached j1 = oracle") oracle b1;
  same_build (name ^ " uncached j4 = oracle") oracle b4;
  with_dir (fun d1 ->
      with_dir (fun d4 ->
          let r1 = fresh_remote () and r4 = fresh_remote () in
          let cached dir remote jobs =
            with_closed_store dir (fun store ->
                build ~mode ?remote ?profile ~cache:store options jobs sources)
          in
          let c1 = cached d1 r1 1 in
          let c4 = cached d4 r4 4 in
          same_build (name ^ " cold j1 = oracle") oracle c1;
          same_build (name ^ " cold j4 = oracle") oracle c4;
          Alcotest.(check bool) (name ^ ": cold store bytes j4 = j1") true
            (same_store_bytes d1 d4);
          Alcotest.(check bool) (name ^ ": cold store bytes = oracle's") true
            (same_store_bytes d1 oracle_dir);
          (* Warm rebuilds over each leg's own store and remote. *)
          let w1 = cached d1 r1 1 in
          let w4 = cached d4 r4 4 in
          same_build (name ^ " warm j1 = oracle") oracle w1;
          same_build (name ^ " warm j4 = oracle") oracle w4;
          Alcotest.(check bool) (name ^ ": warm store bytes j4 = j1") true
            (same_store_bytes d1 d4)))

let check_level name ?profile options sources =
  let oracle = build ~mode:Threads ?profile options 1 sources in
  with_dir (fun oracle_dir ->
      ignore
        (with_closed_store oracle_dir (fun store ->
             build ~mode:Threads ?profile ~cache:store options 1 sources));
      with_fleet 2 (fun endpoints ->
          List.iter
            (check_mode_cell name ?profile options sources ~oracle ~oracle_dir)
            [ Procs; Tcp endpoints; Remote ]))

let matrix_sources = Test_parallel.prog_with_rootless

let test_matrix_o2 () = check_level "matrix +O2" Options.o2 matrix_sources
let test_matrix_o4 () = check_level "matrix +O4" Options.o4 matrix_sources

let test_matrix_o4_pbo () =
  let profile = Pipeline.train matrix_sources in
  check_level "matrix +O4+P" ~profile Options.o4_pbo matrix_sources

(* The single-component program ships as one whole-set job — the
   other distribution path. *)
let test_matrix_chain () =
  check_level "matrix chain +O4" Options.o4 Test_parallel.prog_chain

(* Not just identical bytes: real partition jobs completed on worker
   processes, nothing was lost, and the distributed image behaves. *)
let test_dist_jobs_accounted () =
  let jobs0 = Distwork.jobs_total () in
  let lost0 = Distwork.lost_total () in
  let oracle = build ~mode:Threads Options.o4 1 matrix_sources in
  let b = build ~mode:Procs Options.o4 4 matrix_sources in
  same_build "accounted build = oracle" oracle b;
  Alcotest.(check bool) "partition jobs ran on workers" true
    (Distwork.jobs_total () - jobs0 >= 2);
  Alcotest.(check int) "no workers lost on the clean path" lost0
    (Distwork.lost_total ());
  let o = Pipeline.run b in
  let oo = Pipeline.run oracle in
  Alcotest.(check bool) "distributed image behaves like the oracle" true
    (o.Vm.output = oo.Vm.output && o.Vm.ret = oo.Vm.ret)

(* ---------- graceful degradation ---------- *)

(* No worker binary: the build warns, runs in-process, and produces
   the oracle's bytes — [dist] is a deployment detail, not a mode. *)
let test_degrades_without_worker () =
  let oracle = build ~mode:Threads Options.o4 1 matrix_sources in
  with_env "CMO_DIST_WORKER" "/nonexistent/cmoc_worker" (fun () ->
      let jobs0 = Distwork.jobs_total () in
      let b = build ~mode:Procs Options.o4 2 matrix_sources in
      same_build "no-worker build = oracle" oracle b;
      Alcotest.(check int) "no partition jobs ran" jobs0
        (Distwork.jobs_total ()))

(* ---------- the kill-sweep ---------- *)

(* SIGKILL the active worker at every protocol event in turn.  Each
   chaos build must (a) terminate within the hang bound, (b) record
   the lost worker, and (c) still produce the oracle's artifact and
   store bytes — degradation visible only in [lost_total]. *)
let kill_sweep_sources = Test_parallel.prog_chain

let test_kill_sweep () =
  let options = { Options.o4 with Options.dist = true } in
  with_dir @@ fun oracle_dir ->
  let oracle =
    with_closed_store oracle_dir (fun store ->
        Pipeline.compile ~cache:store { Options.o4 with Options.jobs = 1 }
          kill_sweep_sources)
  in
  (* A clean distributed run sizes the sweep: its protocol-event count
     is the number of distinct kill points. *)
  let events0 = Distwork.events_total () in
  with_dir (fun d ->
      let b =
        with_closed_store d (fun store ->
            Pipeline.compile ~cache:store { options with Options.jobs = 2 }
              kill_sweep_sources)
      in
      same_build "clean dist run = oracle" oracle b;
      Alcotest.(check bool) "clean dist store bytes = oracle's" true
        (same_store_bytes d oracle_dir));
  let n = Distwork.events_total () - events0 in
  Alcotest.(check bool)
    (Printf.sprintf "clean dist run spoke the protocol (%d events)" n)
    true (n > 0);
  for k = 1 to n do
    with_env "CMO_DIST_CHAOS" (Printf.sprintf "kill@%d" k) (fun () ->
        with_dir (fun d ->
            let lost0 = Distwork.lost_total () in
            let b =
              with_closed_store d (fun store ->
                  Pipeline.compile ~cache:store
                    { options with Options.jobs = 2 }
                    kill_sweep_sources)
            in
            same_build (Printf.sprintf "kill@%d build = oracle" k) oracle b;
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d store bytes = oracle's" k)
              true
              (same_store_bytes d oracle_dir);
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d recorded the lost worker" k)
              true
              (Distwork.lost_total () > lost0)))
  done

(* ---------- the TCP fleet: placement, skew, stragglers, partitions ---------- *)

(* Jobs really land on the fleet: with no usable local binary the
   build still completes byte-identically, every partition job runs
   over TCP, and nothing is lost on the clean path. *)
let test_tcp_jobs_accounted () =
  let oracle = build ~mode:Threads Options.o4 1 matrix_sources in
  with_fleet 2 @@ fun endpoints ->
  with_env "CMO_DIST_WORKER" "/nonexistent/cmoc_worker" @@ fun () ->
  let jobs0 = Distwork.jobs_total () in
  let lost0 = Distwork.lost_total () in
  let b = build ~mode:(Tcp endpoints) Options.o4 4 matrix_sources in
  same_build "tcp fleet build = oracle" oracle b;
  Alcotest.(check bool) "partition jobs ran over TCP" true
    (Distwork.jobs_total () - jobs0 >= 2);
  Alcotest.(check int) "no workers lost on the clean path" lost0
    (Distwork.lost_total ());
  let o = Pipeline.run b in
  let oo = Pipeline.run oracle in
  Alcotest.(check bool) "tcp image behaves like the oracle" true
    (o.Vm.output = oo.Vm.output && o.Vm.ret = oo.Vm.ret)

(* A worker fleet built from a different binary: the handshake refuses
   every skewed Hello (fingerprint mismatch), no skewed worker ever
   touches an artifact, and the refused jobs run locally —
   byte-identical.  [$CMO_WORKER_FP] makes the fleet (and any spawned
   local, which inherits it) {e report} a fake fingerprint while the
   parent still expects the real binary digest. *)
let test_tcp_skewed_fleet_refused () =
  let oracle = build ~mode:Threads Options.o4 1 matrix_sources in
  with_env "CMO_WORKER_FP" "deadbeef-version-skew" @@ fun () ->
  with_fleet 2 @@ fun endpoints ->
  let jobs0 = Distwork.jobs_total () in
  let refused0 = Distwork.refused_total () in
  let retired0 = Distwork.retired_total () in
  let b = build ~mode:(Tcp endpoints) Options.o4 2 matrix_sources in
  same_build "skewed fleet build = oracle" oracle b;
  Alcotest.(check bool) "skewed workers were refused" true
    (Distwork.refused_total () > refused0);
  Alcotest.(check bool) "skewed endpoints were retired" true
    (Distwork.retired_total () > retired0);
  Alcotest.(check int) "no job completed on a skewed worker" jobs0
    (Distwork.jobs_total ())

(* The same skew on spawned pipe workers — the handshake is
   transport-independent. *)
let test_skewed_local_worker_refused () =
  let oracle = build ~mode:Threads Options.o4 1 matrix_sources in
  with_env "CMO_WORKER_FP" "deadbeef-version-skew" @@ fun () ->
  let jobs0 = Distwork.jobs_total () in
  let refused0 = Distwork.refused_total () in
  let b = build ~mode:Procs Options.o4 2 matrix_sources in
  same_build "skewed local build = oracle" oracle b;
  Alcotest.(check bool) "skewed spawned worker was refused" true
    (Distwork.refused_total () > refused0);
  Alcotest.(check int) "no job completed on a skewed worker" jobs0
    (Distwork.jobs_total ())

(* A live-but-slow fleet: heartbeats prove the workers are alive, the
   per-job deadline declares them stragglers anyway, and every
   straggled partition is redone locally — byte-identical, with the
   redo visible on the straggler counter. *)
let test_tcp_straggler_redo () =
  with_dir @@ fun oracle_dir ->
  let oracle =
    with_closed_store oracle_dir (fun store ->
        build ~mode:Threads ~cache:store Options.o4 1 kill_sweep_sources)
  in
  with_env "CMO_WORKER_SLOW_S" "1.5" @@ fun () ->
  with_env "CMO_WORKER_HB" "0.2" @@ fun () ->
  with_fleet 1 @@ fun endpoints ->
  with_env "CMO_DIST_DEADLINE" "0.4" @@ fun () ->
  let stragglers0 = Distwork.stragglers_total () in
  let lost0 = Distwork.lost_total () in
  with_dir (fun d ->
      let b =
        with_closed_store d (fun store ->
            build ~mode:(Tcp endpoints) ~cache:store Options.o4 2
              kill_sweep_sources)
      in
      same_build "straggler build = oracle" oracle b;
      Alcotest.(check bool) "straggler store bytes = oracle's" true
        (same_store_bytes d oracle_dir);
      Alcotest.(check bool) "straggler redo recorded" true
        (Distwork.stragglers_total () > stragglers0);
      Alcotest.(check bool) "straggled worker counted lost" true
        (Distwork.lost_total () > lost0))

(* Three straight losses trip the circuit breaker: a dead endpoint is
   dialed (and its refusal retried through the bounded connect
   retries), fails, and after [breaker_limit] consecutive losses is
   retired for the pool's life — later checkouts never dial it
   again. *)
let test_breaker_retires_dead_endpoint () =
  let lfd, port = Netio.listen "127.0.0.1" 0 in
  Unix.close lfd;
  (* No local binary: every loss is the endpoint's. *)
  with_env "CMO_DIST_WORKER" "/nonexistent/cmoc_worker" @@ fun () ->
  let pool =
    Distwork.create_pool
      ~workers:[ Printf.sprintf "127.0.0.1:%d" port ]
      ~timeout_s:2.0 ()
  in
  Fun.protect ~finally:(fun () -> Distwork.close_pool pool) @@ fun () ->
  let retired0 = Distwork.retired_total () in
  let job =
    {
      Distwork.job_options = Options.o4;
      job_modules = [];
      job_called = [];
      job_stored = [];
      job_hot = None;
      job_phase_cache = false;
    }
  in
  for i = 1 to 4 do
    match Distwork.run_job pool job with
    | _ -> Alcotest.failf "attempt %d ran with no live workers" i
    | exception Distwork.Worker_lost -> ()
  done;
  Alcotest.(check int) "endpoint retired after three straight losses"
    (retired0 + 1)
    (Distwork.retired_total ())

(* ---------- the network partition sweep ---------- *)

(* Sever the network at every protocol event in turn ([partition@K] is
   sticky: once severed, every later send is eaten, every recv times
   out, every dial fails).  Whatever the event, the build must
   terminate within the hang bound, degrade the affected partitions to
   local runs, and still produce the oracle's artifact and store
   bytes. *)
let test_tcp_partition_sweep () =
  with_fleet 1 @@ fun endpoints ->
  with_dir @@ fun oracle_dir ->
  let oracle =
    with_closed_store oracle_dir (fun store ->
        build ~mode:Threads ~cache:store Options.o4 1 kill_sweep_sources)
  in
  (* A counting plan sizes the sweep: its net-operation count is the
     number of distinct severing points. *)
  (match Netio.install_plan "count" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "count plan rejected: %s" m);
  Fun.protect ~finally:Netio.clear_plan @@ fun () ->
  with_dir (fun d ->
      let b =
        with_closed_store d (fun store ->
            build ~mode:(Tcp endpoints) ~cache:store Options.o4 2
              kill_sweep_sources)
      in
      same_build "clean tcp run = oracle" oracle b;
      Alcotest.(check bool) "clean tcp store bytes = oracle's" true
        (same_store_bytes d oracle_dir));
  let n = Netio.op_count () in
  Alcotest.(check bool)
    (Printf.sprintf "clean tcp run used the wire (%d net ops)" n)
    true (n > 0);
  for k = 1 to n do
    (match Netio.install_plan (Printf.sprintf "partition@%d" k) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "partition@%d rejected: %s" k m);
    with_dir (fun d ->
        let lost0 = Distwork.lost_total () in
        let b =
          with_closed_store d (fun store ->
              build ~mode:(Tcp endpoints) ~cache:store Options.o4 2
                kill_sweep_sources)
        in
        same_build (Printf.sprintf "partition@%d build = oracle" k) oracle b;
        Alcotest.(check bool)
          (Printf.sprintf "partition@%d store bytes = oracle's" k)
          true
          (same_store_bytes d oracle_dir);
        Alcotest.(check bool)
          (Printf.sprintf "partition@%d recorded the severed worker" k)
          true
          (Distwork.lost_total () > lost0))
  done;
  Netio.clear_plan ()

(* Each transient fault kind at the first protocol event: the
   connection is written off, the partition redone locally, the
   artifact unchanged.  (The partition sweep covers position; this
   covers kind.) *)
let test_tcp_fault_kinds_recover () =
  with_fleet 1 @@ fun endpoints ->
  let oracle = build ~mode:Threads Options.o4 1 kill_sweep_sources in
  List.iter
    (fun spec ->
      (match Netio.install_plan spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s rejected: %s" spec m);
      Fun.protect ~finally:Netio.clear_plan (fun () ->
          let lost0 = Distwork.lost_total () in
          let b = build ~mode:(Tcp endpoints) Options.o4 2 kill_sweep_sources in
          same_build (spec ^ " build = oracle") oracle b;
          Alcotest.(check bool) (spec ^ " wrote off the connection") true
            (Distwork.lost_total () > lost0)))
    [ "drop@1"; "stall@1"; "garble@1,seed=9"; "reset@1"; "garble@2,seed=4" ]

(* ---------- the remote artifact cache through a live cmocd ---------- *)

(* Two "checkouts" (separate local stores) share one daemon: the first
   cold build publishes every module artifact; the second's cold build
   fetches them all and re-optimizes nothing.  Then the daemon dies
   and the remote degrades to misses without failing the build. *)
let test_remote_cache_via_cmocd () =
  with_dir @@ fun dir ->
  let config =
    {
      Server.socket = Filename.concat dir "cmocd.sock";
      builders = 1;
      queue_max = 4;
      state_dir = Filename.concat dir "state";
      cache_capacity = None;
      trace = None;
    }
  in
  let sources = Test_parallel.prog_two_components in
  let options = { Options.o4 with Options.jobs = 2; dist = true } in
  let oracle = Pipeline.compile { Options.o4 with Options.jobs = 1 } sources in
  let t = Server.start config in
  let stopped = ref false in
  let stop () =
    if not !stopped then begin
      stopped := true;
      Server.shutdown t;
      Server.wait t
    end
  in
  Fun.protect ~finally:stop @@ fun () ->
  Client.with_connect ~socket:config.Server.socket @@ fun conn ->
  let remote = Client.remote conn in
  with_dir (fun d1 ->
      let b1 =
        with_closed_store d1 (fun store ->
            Pipeline.compile ~cache:store ~remote options sources)
      in
      same_build "checkout 1 cold = oracle" oracle b1;
      let u1 = usage b1 in
      Alcotest.(check int) "checkout 1 found nothing remote" 0
        u1.Pipeline.remote_hits;
      Alcotest.(check bool) "checkout 1 consulted the remote" true
        (u1.Pipeline.remote_misses > 0));
  with_dir (fun d2 ->
      let b2 =
        with_closed_store d2 (fun store ->
            Pipeline.compile ~cache:store ~remote options sources)
      in
      same_build "checkout 2 cold = oracle" oracle b2;
      let u2 = usage b2 in
      Alcotest.(check bool) "checkout 2 fetched from the daemon" true
        (u2.Pipeline.remote_hits > 0);
      Alcotest.(check int) "checkout 2 missed nothing remote" 0
        u2.Pipeline.remote_misses;
      Alcotest.(check (list string)) "checkout 2 re-optimized nothing" []
        u2.Pipeline.cmo_reoptimized);
  (* Kill the daemon out from under the connection: every subsequent
     remote call degrades to a miss, and the build carries on. *)
  stop ();
  Alcotest.(check (option string)) "dead daemon reads as a miss" None
    (remote.Distwork.remote_get "any-key");
  remote.Distwork.remote_put "any-key" "ignored";
  with_dir (fun d3 ->
      let b3 =
        with_closed_store d3 (fun store ->
            Pipeline.compile ~cache:store ~remote options sources)
      in
      same_build "build over a dead daemon = oracle" oracle b3;
      let u3 = usage b3 in
      Alcotest.(check int) "dead daemon yields no hits" 0
        u3.Pipeline.remote_hits)

let suite =
  [
    ("worker binary resolves", `Quick, test_worker_binary_resolves);
    Helpers.to_alcotest qcheck_parent_roundtrip;
    Helpers.to_alcotest qcheck_worker_roundtrip;
    Helpers.to_alcotest qcheck_parent_truncation;
    Helpers.to_alcotest qcheck_worker_truncation;
    Helpers.to_alcotest qcheck_wire_garbage;
    Helpers.to_alcotest qcheck_framed_bitflip;
    ("framed transport faults", `Quick, test_framed_fd_faults);
    ("matrix +O2", `Quick, test_matrix_o2);
    ("matrix +O4", `Slow, test_matrix_o4);
    ("matrix +O4+P", `Slow, test_matrix_o4_pbo);
    ("matrix whole-set chain", `Slow, test_matrix_chain);
    ("dist jobs accounted", `Quick, test_dist_jobs_accounted);
    ("tcp jobs accounted", `Quick, test_tcp_jobs_accounted);
    ("degrades without worker", `Quick, test_degrades_without_worker);
    ("skewed fleet refused", `Quick, test_tcp_skewed_fleet_refused);
    ("skewed local worker refused", `Quick, test_skewed_local_worker_refused);
    ("straggler redo", `Quick, test_tcp_straggler_redo);
    ("breaker retires dead endpoint", `Quick, test_breaker_retires_dead_endpoint);
    ("kill-sweep", `Slow, test_kill_sweep);
    ("partition sweep over tcp", `Slow, test_tcp_partition_sweep);
    ("tcp fault kinds recover", `Quick, test_tcp_fault_kinds_recover);
    ("remote cache via cmocd", `Slow, test_remote_cache_via_cmocd);
  ]
