(* Corpus replay: every MiniC program under [test/corpus/] (shrunk
   regression reproducers) and [examples/minic/] (documentation
   examples) compiles at every optimization level and matches the
   reference interpreter byte-for-byte — on everything printed and on
   the exit value.  A divergence the campaign once found can never
   quietly come back. *)

module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Corpus = Cmo_campaign.Corpus
module Vm = Cmo_vm.Vm

let replay_input = [| 7L; 3L; 11L; 2L |]

let levels =
  [
    ("O1", Options.o1);
    ("O2", Options.o2);
    ("O4", Options.o4);
    ("O4+P", Options.o4_pbo);
  ]

let replay name program () =
  let sources =
    List.map (fun (name, text) -> { Pipeline.name; text }) program
  in
  let expected = Interp.run ~input:replay_input (Pipeline.frontend sources) in
  List.iter
    (fun (label, options) ->
      let profile =
        if options.Options.pbo then
          Some (Pipeline.train ~inputs:[ replay_input ] sources)
        else None
      in
      let build = Pipeline.compile ?profile options sources in
      let actual = Pipeline.run ~input:replay_input build in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %s: ret %Ld = %Ld, %d printed" name label
           expected.Interp.ret actual.Vm.ret
           (List.length expected.Interp.output))
        true
        (Int64.equal expected.Interp.ret actual.Vm.ret
        && expected.Interp.output = actual.Vm.output))
    levels

(* Both directories are declared as test deps in [test/dune], so dune
   copies them next to the test binary and reruns on changes. *)
let dirs = [ "corpus"; Filename.concat (Filename.concat ".." "examples") "minic" ]

let entries = List.concat_map (fun dir -> Corpus.load_dir dir) dirs

let test_corpus_is_populated () =
  (* An empty corpus means the dune deps broke, not that there is
     nothing to replay. *)
  Alcotest.(check bool)
    (Printf.sprintf "found %d corpus entries" (List.length entries))
    true
    (List.length entries >= 4)

let suite =
  Alcotest.test_case "corpus directories populated" `Quick
    test_corpus_is_populated
  :: List.map
       (fun (name, program) ->
         Alcotest.test_case ("replay " ^ name) `Quick (replay name program))
       entries
