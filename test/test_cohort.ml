(* Profile cohorts: the named registry (layout, persistence, canonical
   pulls, gc compaction) and the pure selection-diff engine (symmetric
   difference of hot sets, the would-flip verdict, and the canonical
   report codec), plus the Fleet A/B arm generator the canary bench
   and CI smoke are built on. *)

module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Cohort = Cmo_profile.Cohort
module Diff = Cmo_profile.Cohort.Diff
module Fleet = Cmo_workload.Fleet
module Prng = Cmo_support.Prng
module Codec = Cmo_support.Codec

let with_dir f = Helpers.with_dir ~prefix:"cmo_cohort" f

(* Deterministic synthetic shards, distinct content per index. *)
let mk_shard i =
  let prng = Prng.create (9100 + (i * 173)) in
  let db = Db.create () in
  let funcs = [| "alpha"; "beta"; "gamma"; "delta" |] in
  for _ = 1 to 6 + Prng.int prng 8 do
    let f = Prng.choose prng funcs in
    let key =
      match Prng.int prng 3 with
      | 0 -> Db.Fentry f
      | 1 -> Db.Block (f, Prng.int prng 5)
      | _ -> Db.Edge (f, Prng.int prng 5, Prng.int prng 5)
    in
    Db.add db key (float_of_int (1 + Prng.int prng 400))
  done;
  {
    Ingest.meta =
      { Ingest.source_fp = "fp"; sample_rate = 1.0; weight = 1.0; age = 0 };
    db;
  }

let shards = List.init 6 mk_shard
let policy = Ingest.default_policy ~current_fp:"fp"

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* ---------- names ---------- *)

let test_names () =
  List.iter
    (fun n ->
      Alcotest.(check bool) ("valid: " ^ n) true (Cohort.valid_name n))
    [ "stable"; "canary-2"; "a"; "r1.2_rc"; String.make 64 'x' ];
  List.iter
    (fun n ->
      Alcotest.(check bool) ("invalid: " ^ String.escaped n) false
        (Cohort.valid_name n))
    [
      "";
      ".hidden";
      "-dash";
      "a/b";
      "a b";
      "a\nb";
      "..";
      String.make 65 'x';
    ];
  with_dir @@ fun dir ->
  let reg = Cohort.open_ ~dir in
  match Cohort.create reg "../escape" with
  | () -> Alcotest.fail "bad name accepted"
  | exception Cohort.Bad_name _ -> ()

(* ---------- registry basics ---------- *)

let test_registry_basics () =
  with_dir @@ fun dir ->
  let reg = Cohort.open_ ~dir in
  Alcotest.(check bool) "absent before create" false (Cohort.exists reg "s");
  Cohort.create reg "s";
  Cohort.create reg "s";
  Alcotest.(check bool) "created" true (Cohort.exists reg "s");
  Cohort.create reg "a";
  Cohort.tag reg "s" "prod";
  Cohort.tag reg "s" "v2";
  Cohort.tag reg "s" "prod";
  Alcotest.(check (list string)) "tags sorted, duplicate-free"
    [ "prod"; "v2" ] (Cohort.tags reg "s");
  (match Cohort.list reg with
  | [ a; s ] ->
    Alcotest.(check string) "listing sorted" "a" a.Cohort.ci_name;
    Alcotest.(check string) "listing sorted (2)" "s" s.Cohort.ci_name;
    Alcotest.(check (list string)) "tags in listing" [ "prod"; "v2" ]
      s.Cohort.ci_tags
  | l -> Alcotest.failf "list returned %d entries" (List.length l));
  (* A reopened registry sees the same state: the directory is the
     registry. *)
  let reg' = Cohort.open_ ~dir in
  Alcotest.(check bool) "reopen sees the cohort" true (Cohort.exists reg' "s");
  Alcotest.(check (list string)) "reopen sees the tags" [ "prod"; "v2" ]
    (Cohort.tags reg' "s");
  Cohort.remove reg' "a";
  Cohort.remove reg' "a";
  Alcotest.(check int) "remove is idempotent" 1
    (List.length (Cohort.list reg'))

(* ---------- canonical pulls ---------- *)

let test_pull_canonical () =
  with_dir @@ fun dir ->
  let r1 = Cohort.open_ ~dir:(Filename.concat dir "r1") in
  let r2 = Cohort.open_ ~dir:(Filename.concat dir "r2") in
  Alcotest.(check int) "ingest counts" (List.length shards)
    (Cohort.ingest_into r1 "c" shards);
  Alcotest.(check int) "reversed ingest counts" (List.length shards)
    (Cohort.ingest_into r2 "c" (List.rev shards));
  let p1 = Db.encode (fst (Cohort.pull r1 ~policy "c")) in
  let p2 = Db.encode (fst (Cohort.pull r2 ~policy "c")) in
  Alcotest.(check bool) "arrival order cannot change the pull" true (p1 = p2);
  let local, _ = Ingest.ingest ~policy shards in
  Alcotest.(check bool) "pull equals a local ingest, byte for byte" true
    (p1 = Db.encode local);
  (* Appending in two batches is the same pack as one. *)
  let r3 = Cohort.open_ ~dir:(Filename.concat dir "r3") in
  let k = List.length shards / 2 in
  ignore (Cohort.ingest_into r3 "c" (List.filteri (fun i _ -> i < k) shards));
  ignore (Cohort.ingest_into r3 "c" (List.filteri (fun i _ -> i >= k) shards));
  Alcotest.(check bool) "batched ingest pulls identically" true
    (p1 = Db.encode (fst (Cohort.pull r3 ~policy "c")));
  (* A missing cohort is an empty database, not an error. *)
  let empty, st = Cohort.pull r1 ~policy "no-such" in
  Alcotest.(check bool) "missing cohort pulls empty" true (Db.is_empty empty);
  Alcotest.(check int) "missing cohort merges nothing" 0 st.Ingest.ing_shards

(* ---------- snapshots ---------- *)

let test_snapshot () =
  with_dir @@ fun dir ->
  let reg = Cohort.open_ ~dir in
  ignore (Cohort.ingest_into reg "c" shards);
  Alcotest.(check bool) "no snapshot before materializing" true
    (Cohort.snapshot_db reg "c" = None);
  let snap = Cohort.snapshot reg ~policy "c" in
  let live = fst (Cohort.pull reg ~policy "c") in
  Alcotest.(check bool) "snapshot equals the pull" true
    (Db.encode snap = Db.encode live);
  (match Cohort.snapshot_db reg "c" with
  | Some db ->
    Alcotest.(check bool) "snapshot_db reads it back" true
      (Db.encode db = Db.encode live)
  | None -> Alcotest.fail "snapshot not readable back");
  (match Cohort.list reg with
  | [ i ] -> Alcotest.(check bool) "snapshot visible in listing" true
               i.Cohort.ci_snapshot
  | _ -> Alcotest.fail "listing lost the cohort");
  (* A corrupt snapshot degrades to None (recompute), never raises. *)
  write_raw (Filename.concat dir "c.snap") "not a database";
  Alcotest.(check bool) "corrupt snapshot degrades to None" true
    (Cohort.snapshot_db reg "c" = None)

(* ---------- gc ---------- *)

let test_gc () =
  with_dir @@ fun dir ->
  let reg = Cohort.open_ ~dir in
  ignore (Cohort.ingest_into reg "keep" shards);
  ignore (Cohort.ingest_into reg "drop-me" shards);
  (* Plant damage mid-pack: flip one byte of a frame body. *)
  let pack = Filename.concat dir "keep.pack" in
  let raw = read_raw pack in
  write_raw pack (Helpers.flip_byte raw (String.length raw / 2) 0x20);
  let _, damaged = Cohort.shards reg "keep" in
  Alcotest.(check bool) "damage visible before gc" true (damaged > 0);
  let before = Db.encode (fst (Cohort.pull reg ~policy "keep")) in
  let st = Cohort.gc ~drop:[ "drop-me" ] reg in
  Alcotest.(check int) "one cohort dropped" 1 st.Cohort.gc_removed;
  Alcotest.(check int) "one cohort kept" 1 st.Cohort.gc_cohorts;
  Alcotest.(check bool) "damage compacted away" true
    (st.Cohort.gc_damage_dropped > 0);
  Alcotest.(check bool) "compaction reclaimed bytes" true
    (st.Cohort.gc_bytes_reclaimed > 0);
  let _, damaged' = Cohort.shards reg "keep" in
  Alcotest.(check int) "pack clean after gc" 0 damaged';
  Alcotest.(check bool) "gc cannot change the pull" true
    (before = Db.encode (fst (Cohort.pull reg ~policy "keep")));
  Alcotest.(check bool) "dropped cohort gone" false
    (Cohort.exists reg "drop-me")

(* ---------- the selection diff ---------- *)

let hs label mods =
  {
    Diff.hs_label = label;
    hs_modules = mods;
    hs_functions = List.map (fun (m, s) -> (m ^ "/f", s)) mods;
  }

let test_diff_verdict () =
  (* Equal hot sets: a clean no-flip with empty deltas. *)
  let stable = hs "stable" [ ("a", 0.6); ("b", 0.4) ] in
  let r = Diff.diff ~base:stable (hs "canary" [ ("a", 0.6); ("b", 0.4) ]) in
  Alcotest.(check bool) "identical sets are no-flip" true
    (r.Diff.r_verdict = Diff.No_flip
    && r.Diff.r_mod_in = []
    && r.Diff.r_mod_out = []
    && r.Diff.r_max_shift = 0.0);
  Alcotest.(check string) "labels travel" "stable" r.Diff.r_base;
  (* A module swap above threshold flips. *)
  let r = Diff.diff ~base:stable (hs "canary" [ ("a", 0.6); ("c", 0.4) ]) in
  Alcotest.(check bool) "heavy module churn flips" true
    (r.Diff.r_verdict = Diff.Flip);
  (match (r.Diff.r_mod_in, r.Diff.r_mod_out) with
  | [ mi ], [ mo ] ->
    Alcotest.(check string) "entering module" "c" mi.Diff.d_name;
    Alcotest.(check string) "leaving module" "b" mo.Diff.d_name
  | _ -> Alcotest.fail "symmetric difference wrong");
  (* The same churn below threshold is reported but does not flip. *)
  let r =
    Diff.diff
      ~base:(hs "stable" [ ("a", 0.99); ("b", 0.01) ])
      (hs "canary" [ ("a", 0.99); ("c", 0.01) ])
  in
  Alcotest.(check bool) "light module churn is no-flip" true
    (r.Diff.r_verdict = Diff.No_flip
    && r.Diff.r_mod_in <> []
    && r.Diff.r_mod_out <> []);
  (* An explicit threshold flips it. *)
  let r =
    Diff.diff ~threshold:0.005
      ~base:(hs "stable" [ ("a", 0.99); ("b", 0.01) ])
      (hs "canary" [ ("a", 0.99); ("c", 0.01) ])
  in
  Alcotest.(check bool) "tighter threshold flips the same churn" true
    (r.Diff.r_verdict = Diff.Flip);
  (* Function churn alone never triggers the verdict. *)
  let base =
    {
      Diff.hs_label = "stable";
      hs_modules = [ ("a", 1.0) ];
      hs_functions = [ ("a/f", 1.0) ];
    }
  in
  let canary =
    {
      Diff.hs_label = "canary";
      hs_modules = [ ("a", 1.0) ];
      hs_functions = [ ("a/g", 1.0) ];
    }
  in
  let r = Diff.diff ~base canary in
  Alcotest.(check bool) "function-only churn is no-flip" true
    (r.Diff.r_verdict = Diff.No_flip && r.Diff.r_fun_in <> []);
  (* Share drift inside a stable set is a shift, not a flip. *)
  let r =
    Diff.diff
      ~base:(hs "stable" [ ("a", 0.9); ("b", 0.1) ])
      (hs "canary" [ ("a", 0.1); ("b", 0.9) ])
  in
  Alcotest.(check bool) "drift reports max shift without flipping" true
    (r.Diff.r_verdict = Diff.No_flip
    && r.Diff.r_max_shift > 0.7
    && r.Diff.r_shifts <> [])

(* ---------- report codec ---------- *)

let gen_hot_set label =
  let open QCheck.Gen in
  let* names = shuffle_l [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6" ] in
  let* n = 0 -- 5 in
  let chosen = List.filteri (fun i _ -> i < n) names in
  let* shares = list_repeat n (float_bound_inclusive 1.0) in
  return
    {
      Diff.hs_label = label;
      hs_modules = List.combine chosen shares;
      hs_functions =
        List.combine (List.map (fun m -> m ^ "/f") chosen) shares;
    }

let gen_report =
  let open QCheck.Gen in
  let* base = gen_hot_set "stable" in
  let* canary = gen_hot_set "canary" in
  let* threshold = float_bound_inclusive 0.1 in
  return (Diff.diff ~threshold ~base canary)

let qcheck_report_roundtrip =
  QCheck.Test.make ~name:"diff reports round-trip the canonical codec"
    ~count:200
    (QCheck.make gen_report)
    (fun r ->
      Diff.decode (Diff.encode r) = r
      && Diff.encode r = Diff.encode (Diff.decode (Diff.encode r)))

let qcheck_report_garbage =
  QCheck.Test.make ~name:"arbitrary bytes never crash the report decoder"
    ~count:200
    (QCheck.make QCheck.Gen.(string_size (0 -- 60)))
    (fun s ->
      match Diff.decode s with
      | _ -> true
      | exception Codec.Reader.Corrupt _ -> true)

(* ---------- the A/B arm generator ---------- *)

let test_fleet_arms () =
  let oracle = Db.create () in
  List.iteri
    (fun i f ->
      Db.add oracle (Db.Fentry f) (float_of_int (100 * (i + 1)));
      Db.add oracle (Db.Block (f, 0)) (float_of_int (10 * (i + 1))))
    [ "alpha"; "beta"; "gamma"; "delta" ];
  (* fraction 0 is a plain copy. *)
  Alcotest.(check bool) "divert 0 is a copy" true
    (Db.encode (Fleet.divert ~fraction:0.0 oracle) = Db.encode oracle);
  (* fraction 1 swaps counts rank-for-rank: different bytes, same
     total (the multiset of counts is preserved). *)
  let swapped = Fleet.divert ~fraction:1.0 oracle in
  Alcotest.(check bool) "divert 1 changes the database" true
    (Db.encode swapped <> Db.encode oracle);
  Alcotest.(check bool) "divert 1 preserves total mass" true
    (Float.abs (Db.total swapped -. Db.total oracle)
    < 1e-6 *. Db.total oracle);
  (* divergence 0 arms are byte-identical shard for shard. *)
  let cfg =
    {
      Fleet.users = 5;
      sample_rate = 1.0;
      stale_fraction = 0.0;
      noise = 0.1;
      fleet_seed = 3;
    }
  in
  let a, b = Fleet.ab_arms cfg ~oracle ~current_fp:"fp" ~divergence:0.0 in
  Alcotest.(check bool) "divergence 0 arms byte-identical" true
    (List.for_all2
       (fun x y -> Ingest.encode_shard x = Ingest.encode_shard y)
       a b);
  (* A planted divergence leaves arm A alone and changes only arm B. *)
  let a', b' = Fleet.ab_arms cfg ~oracle ~current_fp:"fp" ~divergence:1.0 in
  Alcotest.(check bool) "arm A independent of the divergence" true
    (List.for_all2
       (fun x y -> Ingest.encode_shard x = Ingest.encode_shard y)
       a a');
  Alcotest.(check bool) "arm B carries the divergence" true
    (List.exists2
       (fun x y -> Ingest.encode_shard x <> Ingest.encode_shard y)
       b b')

let suite =
  [
    ("cohort names", `Quick, test_names);
    ("registry basics and reopen", `Quick, test_registry_basics);
    ("canonical pulls", `Quick, test_pull_canonical);
    ("snapshots", `Quick, test_snapshot);
    ("gc compaction and drop", `Quick, test_gc);
    ("diff verdicts", `Quick, test_diff_verdict);
    Helpers.to_alcotest qcheck_report_roundtrip;
    Helpers.to_alcotest qcheck_report_garbage;
    ("fleet A/B arms", `Quick, test_fleet_arms);
  ]
