(* The fault-injected I/O layer: plan grammar, record framing,
   atomic-write crash states, retry, and the consumers' graceful
   degradation — including the property that any single corruption of
   the cache store (index or payload, flip or truncation) still
   yields a successful, byte-identical rebuild. *)

module Fsio = Cmo_support.Fsio
module Store = Cmo_cache.Store
module Repository = Cmo_naim.Repository
module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Buildsys = Cmo_driver.Buildsys

let remove_tree = Helpers.remove_tree

(* Helpers.with_dir plus the fault-suite invariant: whatever happened
   inside, no plan leaks into the next test. *)
let with_dir f =
  Helpers.with_dir ~prefix:"cmo_fault" (fun dir ->
      Fun.protect ~finally:Fsio.clear_plan (fun () -> f dir))

let install spec =
  match Fsio.install_plan spec with
  | Ok () -> ()
  | Error m -> Alcotest.failf "plan %S rejected: %s" spec m

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let rec is_crash = function
  | Fsio.Crash -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* ---------- plan grammar ---------- *)

let test_plan_parse () =
  Fun.protect ~finally:Fsio.clear_plan @@ fun () ->
  List.iter
    (fun spec -> install spec)
    [ "count"; "crash@1"; "enospc@5,seed=3"; "eio@2,short@7,transient@9";
      " crash@4 , seed=12 " ];
  List.iter
    (fun spec ->
      match Fsio.install_plan spec with
      | Ok () -> Alcotest.failf "plan %S accepted" spec
      | Error _ -> ())
    [ ""; "bogus"; "crash@0"; "crash@x"; "flip@3"; "seed=x"; "crash=3" ]

let test_counters_without_plan () =
  Fsio.clear_plan ();
  Alcotest.(check bool) "no plan" false (Fsio.plan_active ());
  Alcotest.(check int) "no ops counted" 0 (Fsio.op_count ());
  Alcotest.(check int) "no injections" 0 (Fsio.injected ())

(* ---------- crc32 ---------- *)

let test_crc32_vector () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Fsio.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Fsio.crc32 "")

(* ---------- whole files ---------- *)

let test_atomic_write_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "f" in
  Fsio.atomic_write path "one";
  Alcotest.(check string) "written" "one" (Fsio.read_file path);
  Fsio.atomic_write path "two";
  Alcotest.(check string) "replaced" "two" (Fsio.read_file path)

let test_atomic_write_crash_states () =
  (* atomic_write is three operations (write, fsync, rename); a crash
     at any of them leaves the previous contents intact. *)
  with_dir @@ fun dir ->
  let path = Filename.concat dir "f" in
  Fsio.atomic_write path "old-bytes";
  for k = 1 to 3 do
    install (Printf.sprintf "crash@%d,seed=%d" k k);
    (match Fsio.atomic_write path "NEW-BYTES!" with
    | () -> Alcotest.failf "crash@%d did not fire" k
    | exception e when is_crash e -> ());
    Fsio.clear_plan ();
    Alcotest.(check string)
      (Printf.sprintf "target intact after crash@%d" k)
      "old-bytes" (read_raw path)
  done

let test_injected_errors_look_real () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "f" in
  Fsio.atomic_write path "data";
  install "eio@1";
  (match Fsio.read_file path with
  | _ -> Alcotest.fail "eio@1 did not fire"
  | exception Sys_error m ->
    Alcotest.(check bool) "message names the injection" true
      (contains_sub m "injected eio"));
  Alcotest.(check int) "one injection" 1 (Fsio.injected ())

(* ---------- record framing ---------- *)

let test_record_roundtrip_and_torn_tail () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let a = Fsio.open_append path in
  let payloads = [ "alpha"; ""; String.make 300 'q' ] in
  let offsets = List.map (fun p -> (Fsio.append_record a p, p)) payloads in
  Fsio.close_append ~fsync:true a;
  List.iter
    (fun (off, p) ->
      Alcotest.(check string) "roundtrip" p
        (Fsio.read_record path ~offset:off ~length:(String.length p)))
    offsets;
  let whole = read_raw path in
  Alcotest.(check (pair int int)) "structurally whole"
    (String.length whole, String.length whole)
    (Fsio.valid_prefix path);
  (* A torn append: half a header at the end of the file. *)
  write_raw path (whole ^ "CMR1\x99");
  let valid_end, size = Fsio.valid_prefix path in
  Alcotest.(check int) "torn tail detected" (String.length whole) valid_end;
  Alcotest.(check int) "physical size seen" (String.length whole + 5) size;
  Fsio.truncate path valid_end;
  Alcotest.(check (pair int int)) "repaired"
    (valid_end, valid_end) (Fsio.valid_prefix path)

let test_record_corruption_detected () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let a = Fsio.open_append path in
  let off = Fsio.append_record a "payload-bytes" in
  Fsio.close_append a;
  let raw = read_raw path in
  let flipped = Bytes.of_string raw in
  let pos = Fsio.frame_overhead + 3 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x40));
  write_raw path (Bytes.to_string flipped);
  match Fsio.read_record path ~offset:off ~length:(String.length "payload-bytes") with
  | _ -> Alcotest.fail "corrupt record read back"
  | exception Fsio.Corrupt_record { reason; _ } ->
    Alcotest.(check string) "crc failure" "crc mismatch" reason

let test_short_write_repair () =
  (* Operation 1 is the open; the short write hits the append.  The
     file must be repaired to the record boundary so the next append
     is readable. *)
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  install "short@2,seed=11";
  let a = Fsio.open_append path in
  (match Fsio.append_record a (String.make 100 'x') with
  | _ -> Alcotest.fail "short@2 did not fire"
  | exception Sys_error _ -> ());
  let off = Fsio.append_record a "after-the-fault" in
  Fsio.close_append a;
  Fsio.clear_plan ();
  Alcotest.(check string) "append after repair readable" "after-the-fault"
    (Fsio.read_record path ~offset:off ~length:(String.length "after-the-fault"));
  let valid_end, size = Fsio.valid_prefix path in
  Alcotest.(check int) "no torn bytes left behind" size valid_end

let test_transient_retry () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let before = Fsio.retries () in
  install "transient@2,seed=5";
  let a = Fsio.open_append path in
  let off = Fsio.append_record a "eventually" in
  Fsio.close_append a;
  Fsio.clear_plan ();
  Alcotest.(check string) "append succeeded through retries" "eventually"
    (Fsio.read_record path ~offset:off ~length:(String.length "eventually"));
  Alcotest.(check int) "two retries burned" (before + 2) (Fsio.retries ())

(* ---------- repository framing ---------- *)

let test_repository_detects_corruption () =
  let path = Filename.temp_file "cmo_fault_repo" ".bin" in
  let r = Repository.create ~path in
  Fun.protect
    ~finally:(fun () ->
      Repository.close r;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let h = Repository.store r "pool-bytes" in
      Alcotest.(check string) "clean fetch" "pool-bytes" (Repository.fetch r h);
      let raw = read_raw path in
      let flipped = Bytes.of_string raw in
      let pos = Fsio.frame_overhead + 1 in
      Bytes.set flipped pos
        (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x01));
      write_raw path (Bytes.to_string flipped);
      match Repository.fetch r h with
      | _ -> Alcotest.fail "corrupt pool fetched"
      | exception Fsio.Corrupt_record _ -> ())

(* ---------- store degradation ---------- *)

let test_store_quarantines_corrupt_record () =
  with_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  Store.add store "key" "precious-artifact";
  Store.close store;
  let path = Filename.concat dir "payload" in
  let raw = read_raw path in
  let flipped = Bytes.of_string raw in
  let pos = Fsio.frame_overhead + 4 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x10));
  write_raw path (Bytes.to_string flipped);
  let store = Store.open_ ~dir () in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      Alcotest.(check (option string)) "corrupt record is a miss" None
        (Store.find store "key");
      let qdir = Filename.concat dir "quarantine" in
      Alcotest.(check bool) "quarantine directory created" true
        (Sys.file_exists qdir && Sys.is_directory qdir);
      Alcotest.(check bool) "damaged bytes preserved" true
        (Array.length (Sys.readdir qdir) > 0);
      (* The store stays usable. *)
      Store.add store "key" "recomputed";
      Alcotest.(check (option string)) "recomputed artifact cached"
        (Some "recomputed") (Store.find store "key"))

let test_store_add_degrades_on_fault () =
  with_dir @@ fun dir ->
  let store = Store.open_ ~dir () in
  Fun.protect ~finally:(fun () -> Fsio.clear_plan (); Store.close store)
  @@ fun () ->
  Store.add store "good" "kept-bytes";
  (* Fault the next payload append (op 1 under this fresh plan). *)
  install "enospc@1";
  Store.add store "doomed" "lost-bytes";
  Fsio.clear_plan ();
  Alcotest.(check (option string)) "faulted add degraded to absence" None
    (Store.find store "doomed");
  Alcotest.(check (option string)) "earlier artifact unharmed"
    (Some "kept-bytes") (Store.find store "good");
  Store.add store "doomed" "second-try";
  Alcotest.(check (option string)) "store usable after the fault"
    (Some "second-try") (Store.find store "doomed")

(* ---------- whole-build degradation ---------- *)

let mini_sources : Pipeline.source list =
  [
    { Pipeline.name = "fm_main";
      text =
        {|
        func main() {
          var n = 12;
          var s = 0;
          var i = 0;
          while (i < n) { s = s + mix(i, s); i = i + 1; }
          print(s);
          return s & 255;
        }
        |} };
    { Pipeline.name = "fm_lib";
      text =
        {|
        static func twist(v) { return v * 3 + 1; }
        func mix(x, seed) { return (seed / 3) + twist(x); }
        |} };
  ]

(* Operation numbering, and therefore the sweep, is only meaningful
   single-threaded; CI runs the suite at CMO_JOBS=4 as well, so pin
   jobs here. *)
let o4_serial = { Options.o4 with Options.jobs = 1 }

let build_in dir =
  Buildsys.build (Buildsys.create ~dir ()) o4_serial mini_sources

let same_build (a : Buildsys.outcome) (b : Buildsys.outcome) =
  let a = a.Buildsys.build and b = b.Buildsys.build in
  a.Pipeline.image.Cmo_link.Image.code = b.Pipeline.image.Cmo_link.Image.code
  && a.Pipeline.image.Cmo_link.Image.funcs
       = b.Pipeline.image.Cmo_link.Image.funcs
  && a.Pipeline.objects = b.Pipeline.objects

let test_injection_off_is_pure () =
  (* A counting plan must observe without perturbing: same image,
     same store bytes as a plain build. *)
  with_dir @@ fun dir ->
  let plain_dir = Filename.concat dir "plain" in
  let counted_dir = Filename.concat dir "counted" in
  Sys.mkdir plain_dir 0o755;
  Sys.mkdir counted_dir 0o755;
  let plain = build_in plain_dir in
  install "count";
  let counted = build_in counted_dir in
  let n = Fsio.op_count () in
  Fsio.clear_plan ();
  Alcotest.(check bool) "identical build" true (same_build plain counted);
  Alcotest.(check bool) "operations counted" true (n > 0);
  List.iter
    (fun file ->
      Alcotest.(check string)
        (file ^ " bytes identical")
        (read_raw (Filename.concat (Filename.concat plain_dir ".cmo-cache") file))
        (read_raw
           (Filename.concat (Filename.concat counted_dir ".cmo-cache") file)))
    [ "index"; "payload" ]

let test_crash_sweep_recovers () =
  (* The exhaustive sweep: for every operation of a cold build, crash
     there, then require the recovery build to match the oracle.
     (bench fault-sweep runs the same loop over a larger program.) *)
  with_dir @@ fun dir ->
  let fresh () =
    remove_tree dir;
    Sys.mkdir dir 0o755
  in
  let oracle = build_in dir in
  fresh ();
  install "count";
  ignore (build_in dir);
  let n = Fsio.op_count () in
  Fsio.clear_plan ();
  Alcotest.(check bool) "sites found" true (n > 0);
  for k = 1 to n do
    fresh ();
    install (Printf.sprintf "crash@%d,seed=%d" k k);
    (match build_in dir with
    | _ -> Alcotest.failf "crash@%d never fired" k
    | exception e when is_crash e -> ());
    Fsio.clear_plan ();
    match build_in dir with
    | recovered ->
      if not (same_build oracle recovered) then
        Alcotest.failf "crash@%d: recovery diverged" k
    | exception e ->
      Alcotest.failf "crash@%d: recovery failed: %s" k (Printexc.to_string e)
  done

let test_trace_export_degrades () =
  let options =
    { o4_serial with Options.trace = Some "/nonexistent-dir/trace.json" }
  in
  let build = Pipeline.compile options mini_sources in
  Alcotest.(check bool) "build survived unwritable trace path" true
    (Array.length build.Pipeline.image.Cmo_link.Image.code > 0)

(* ---------- the corruption property ---------- *)

(* Any single corruption — a byte flip or a truncation, anywhere in
   the index or the payload — must leave the next build successful
   and byte-identical to the oracle. *)
let test_corruption_rebuild =
  QCheck.Test.make ~name:"any index/payload corruption rebuilds identically"
    ~count:60 Helpers.corruption_arbitrary
    (fun (in_index, truncate_it, where, bits) ->
      with_dir @@ fun dir ->
      let oracle = build_in dir in
      let cache = Filename.concat dir ".cmo-cache" in
      let victim = Filename.concat cache (if in_index then "index" else "payload") in
      let raw = read_raw victim in
      let size = String.length raw in
      QCheck.assume (size > 0);
      let pos = min (size - 1) (int_of_float (where *. float_of_int size)) in
      if truncate_it then Unix.truncate victim pos
      else write_raw victim (Helpers.flip_byte raw pos bits);
      match build_in dir with
      | rebuilt -> same_build oracle rebuilt
      | exception e ->
        QCheck.Test.fail_reportf "rebuild failed: %s" (Printexc.to_string e))

(* ---------- profile-pack ingest degradation ---------- *)

module Ingest = Cmo_profile.Ingest
module Db = Cmo_profile.Db
module Prng = Cmo_support.Prng

(* Deterministic synthetic shards, distinct content per index. *)
let mk_shard i =
  let prng = Prng.create (7000 + (i * 131)) in
  let db = Db.create () in
  let funcs = [| "alpha"; "beta"; "gamma" |] in
  for _ = 1 to 5 + Prng.int prng 10 do
    let f = Prng.choose prng funcs in
    let key =
      match Prng.int prng 3 with
      | 0 -> Db.Fentry f
      | 1 -> Db.Block (f, Prng.int prng 6)
      | _ -> Db.Edge (f, Prng.int prng 6, Prng.int prng 6)
    in
    Db.add db key (float_of_int (1 + Prng.int prng 500))
  done;
  {
    Ingest.meta =
      { Ingest.source_fp = "fp"; sample_rate = 1.0; weight = 1.0; age = 0 };
    db;
  }

let pack_shards = List.init 8 mk_shard
let ingest_policy = Ingest.default_policy ~current_fp:"fp"

(* Any single corruption of a shard pack — flip or truncation,
   anywhere (the arbitrary's file bool is reinterpreted as "flip a
   second, mirrored byte too") — must degrade to skip-and-count:
   nothing raises, no corrupted shard is ever decoded as new content,
   and the merged database is byte-identical to ingesting exactly the
   surviving subset of the originals. *)
let test_pack_corruption_clean_subset =
  QCheck.Test.make
    ~name:"corrupt shard pack merges exactly the surviving subset" ~count:60
    Helpers.corruption_arbitrary
    (fun (double_flip, truncate_it, where, bits) ->
      with_dir @@ fun dir ->
      let path = Filename.concat dir "fleet.shards" in
      Ingest.write_pack path pack_shards;
      let raw = read_raw path in
      let size = String.length raw in
      let pos = min (size - 1) (int_of_float (where *. float_of_int size)) in
      if truncate_it then Unix.truncate path pos
      else begin
        let raw = Helpers.flip_byte raw pos bits in
        let raw =
          if double_flip then Helpers.flip_byte raw (size - 1 - pos) bits
          else raw
        in
        write_raw path raw
      end;
      let got, skipped = Ingest.read_pack path in
      let originals = List.map Ingest.encode_shard pack_shards in
      List.iter
        (fun s ->
          if not (List.mem (Ingest.encode_shard s) originals) then
            QCheck.Test.fail_reportf "corrupted shard decoded as new content")
        got;
      (* A flip always damages the frame it lands in; only a
         truncation can land exactly on a frame boundary and lose a
         clean suffix without a countable casualty. *)
      if
        (not truncate_it)
        && List.length got < List.length pack_shards
        && skipped = 0
      then QCheck.Test.fail_reportf "lost shards without counting a skip";
      let db_pack, stats = Ingest.ingest_paths ~policy:ingest_policy [ path ] in
      let got_bytes = List.map Ingest.encode_shard got in
      let matched =
        List.filter
          (fun s -> List.mem (Ingest.encode_shard s) got_bytes)
          pack_shards
      in
      let db_subset, _ = Ingest.ingest ~policy:ingest_policy matched in
      Db.encode db_pack = Db.encode db_subset
      && stats.Ingest.ing_skipped = skipped)

(* Crash every operation of a pack write in turn; whatever state the
   crash left behind, reading must degrade (never raise, never decode
   altered content), and the standard repair — truncate to the valid
   prefix, append the missing shards — must restore a clean pack whose
   ingest is byte-identical to the never-crashed one. *)
let test_pack_crash_sweep () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "fleet.shards" in
  install "count";
  Ingest.write_pack path pack_shards;
  let n = Fsio.op_count () in
  Fsio.clear_plan ();
  Alcotest.(check bool) "sites found" true (n > 0);
  let clean, clean_skips = Ingest.read_pack path in
  Alcotest.(check int) "clean pack has no skips" 0 clean_skips;
  Alcotest.(check int) "clean pack is whole" (List.length pack_shards)
    (List.length clean);
  let oracle_bytes = List.map Ingest.encode_shard pack_shards in
  let clean_db, _ = Ingest.ingest ~policy:ingest_policy pack_shards in
  let clean_encoding = Db.encode clean_db in
  for k = 1 to n do
    if Sys.file_exists path then Sys.remove path;
    install (Printf.sprintf "crash@%d,seed=%d" k k);
    (match Ingest.write_pack path pack_shards with
    | () -> Alcotest.failf "crash@%d never fired" k
    | exception e when is_crash e -> ());
    Fsio.clear_plan ();
    (* Degraded read of whatever the crash left. *)
    let got =
      if Sys.file_exists path then fst (Ingest.read_pack path) else []
    in
    List.iter
      (fun s ->
        if not (List.mem (Ingest.encode_shard s) oracle_bytes) then
          Alcotest.failf "crash@%d: altered shard decoded" k)
      got;
    (* Repair to the valid record boundary, append what is missing. *)
    if Sys.file_exists path then begin
      let valid_end, _ = Fsio.valid_prefix path in
      Fsio.truncate path valid_end
    end;
    let have =
      if Sys.file_exists path then
        List.map Ingest.encode_shard (fst (Ingest.read_pack path))
      else []
    in
    let missing =
      List.filter
        (fun s -> not (List.mem (Ingest.encode_shard s) have))
        pack_shards
    in
    Ingest.append_pack path missing;
    let final, skipped = Ingest.read_pack path in
    if skipped <> 0 then Alcotest.failf "crash@%d: repaired pack not clean" k;
    let db, _ = Ingest.ingest ~policy:ingest_policy final in
    if Db.encode db <> clean_encoding then
      Alcotest.failf "crash@%d: recovered ingest diverged" k
  done

(* ---------- cohort registry crash sweep ---------- *)

module Cohort = Cmo_profile.Cohort

(* The registry's full write surface — create, ingest, tag, snapshot,
   gc with a dropped cohort — crashed at every I/O operation in turn.
   After each crash the reopened registry must be readable (no read
   raises: packs skip-and-count, meta and snapshots degrade), and the
   standard repair — re-run the sequence, appending only the shards a
   torn pack is missing — must land in the oracle state: pulls,
   shard counts, tags, snapshots and the listing all identical to the
   never-crashed run.  (Damage and byte counts are excluded: a torn
   frame legitimately survives until gc compacts it.) *)
let test_cohort_crash_sweep () =
  with_dir @@ fun dir ->
  let reg_dir = Filename.concat dir "reg" in
  let arm_a = List.filteri (fun i _ -> i < 4) pack_shards in
  let arm_b = List.filteri (fun i _ -> i >= 4) pack_shards in
  (* Appends are repaired, not replayed: only the shards the pack does
     not already hold are re-ingested, so a crash mid-append cannot
     double-count on retry. *)
  let ensure reg name want =
    let have, _ = Cohort.shards reg name in
    let have = List.map Ingest.encode_shard have in
    let missing =
      List.filter (fun s -> not (List.mem (Ingest.encode_shard s) have)) want
    in
    ignore (Cohort.ingest_into reg name missing)
  in
  let ops reg =
    Cohort.create reg "stable";
    ensure reg "stable" arm_a;
    ensure reg "canary" arm_b;
    Cohort.tag reg "stable" "prod";
    Cohort.tag reg "stable" "v2";
    ignore (Cohort.snapshot reg ~policy:ingest_policy "stable");
    Cohort.create reg "doomed";
    ignore (Cohort.gc ~drop:[ "doomed" ] reg)
  in
  let state reg =
    let pulls =
      List.map
        (fun n -> Db.encode (fst (Cohort.pull reg ~policy:ingest_policy n)))
        [ "stable"; "canary" ]
    in
    let snap =
      match Cohort.snapshot_db reg "stable" with
      | Some db -> Db.encode db
      | None -> ""
    in
    let infos =
      List.map
        (fun i ->
          ( i.Cohort.ci_name,
            i.Cohort.ci_shards,
            i.Cohort.ci_tags,
            i.Cohort.ci_snapshot ))
        (Cohort.list reg)
    in
    (pulls, snap, infos)
  in
  let oracle =
    let reg = Cohort.open_ ~dir:reg_dir in
    ops reg;
    state reg
  in
  remove_tree reg_dir;
  install "count";
  ops (Cohort.open_ ~dir:reg_dir);
  let n = Fsio.op_count () in
  Fsio.clear_plan ();
  Alcotest.(check bool) "sites found" true (n > 0);
  for k = 1 to n do
    remove_tree reg_dir;
    install (Printf.sprintf "crash@%d,seed=%d" k k);
    (match ops (Cohort.open_ ~dir:reg_dir) with
    | () -> Alcotest.failf "crash@%d never fired" k
    | exception e when is_crash e -> ());
    Fsio.clear_plan ();
    (* Whatever the crash left behind, every read degrades — nothing
       raises. *)
    let reg = Cohort.open_ ~dir:reg_dir in
    (match state reg with
    | _ -> ()
    | exception e ->
      Alcotest.failf "crash@%d: read raised: %s" k (Printexc.to_string e));
    (* The repair from that state must land in the oracle state. *)
    ops reg;
    if state reg <> oracle then Alcotest.failf "crash@%d: repair diverged" k
  done

(* ---------- the network chokepoint (Netio) ---------- *)

(* Fsio's plan discipline applied to the wire: the same grammar shape,
   counters, purity-of-counting and injected-errors-look-real
   properties, against Netio's own fault kinds. *)

module Netio = Cmo_support.Netio

let net_install spec =
  match Netio.install_plan spec with
  | Ok () -> ()
  | Error m -> Alcotest.failf "net plan %S rejected: %s" spec m

let with_net_plan spec f =
  net_install spec;
  Fun.protect ~finally:Netio.clear_plan f

let test_net_plan_parse () =
  Fun.protect ~finally:Netio.clear_plan @@ fun () ->
  List.iter net_install
    [ "count"; "drop@1"; "stall@5,seed=3"; "garble@2,reset@7,partition@9";
      " drop@4 , seed=12 " ];
  List.iter
    (fun spec ->
      match Netio.install_plan spec with
      | Ok () -> Alcotest.failf "net plan %S accepted" spec
      | Error _ -> ())
    (* crash/enospc are Fsio kinds — the wire injector must not
       accept disk faults. *)
    [ ""; "bogus"; "drop@0"; "drop@x"; "crash@3"; "enospc@1"; "seed=x";
      "drop=3" ]

let test_net_counters_without_plan () =
  Netio.clear_plan ();
  Alcotest.(check bool) "no plan" false (Netio.plan_active ());
  Alcotest.(check int) "no ops counted" 0 (Netio.op_count ());
  Alcotest.(check int) "no injections" 0 (Netio.injected ())

let test_net_parse_addr () =
  let ok s = Netio.parse_addr s in
  Alcotest.(check bool) "plain" true (ok "127.0.0.1:80" = Ok ("127.0.0.1", 80));
  Alcotest.(check bool) "port 0" true (ok "box:0" = Ok ("box", 0));
  (* The split is at the last colon, so bracketless IPv6 hosts work. *)
  Alcotest.(check bool) "last colon" true (ok "::1:443" = Ok ("::1", 443));
  List.iter
    (fun s ->
      match ok s with
      | Ok _ -> Alcotest.failf "address %S accepted" s
      | Error _ -> ())
    [ "noport"; "h:"; "h:x"; "h:70000"; "h:-1"; ":80" ]

(* One connected socketpair per scenario: Netio.send/recv treat any
   stream fd alike, so the fault semantics are testable without a
   listener. *)
let with_net_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Netio.clear_plan ();
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* A counting plan observes without perturbing — Netio's copy of the
   Fsio purity property. *)
let test_net_counting_is_pure () =
  with_net_pair @@ fun a b ->
  with_net_plan "count" @@ fun () ->
  Netio.send a "across the wire";
  (match Netio.recv ~timeout_s:1.0 b with
  | Ok payload -> Alcotest.(check string) "payload intact" "across the wire" payload
  | Error _ -> Alcotest.fail "counted recv failed");
  Alcotest.(check int) "two operations counted" 2 (Netio.op_count ());
  Alcotest.(check int) "nothing injected" 0 (Netio.injected ())

let test_net_drop () =
  with_net_pair @@ fun a b ->
  (* Send side: the message vanishes silently — the peer's bounded
     read times out for real because nothing was written. *)
  with_net_plan "drop@1" (fun () ->
      Netio.send a "lost";
      Alcotest.(check int) "drop injected" 1 (Netio.injected ());
      match Fsio.read_framed ~timeout_s:0.05 b with
      | Error `Timeout -> ()
      | _ -> Alcotest.fail "dropped send reached the peer");
  (* Recv side: the frame is on the wire, but operation K never sees
     it — and because the fd is untouched, the next operation does. *)
  with_net_plan "drop@1" (fun () ->
      Fsio.write_framed a "delayed";
      (match Netio.recv ~timeout_s:1.0 b with
      | Error `Timeout -> ()
      | _ -> Alcotest.fail "dropped recv yielded data");
      match Netio.recv ~timeout_s:1.0 b with
      | Ok payload -> Alcotest.(check string) "frame survives the drop" "delayed" payload
      | Error _ -> Alcotest.fail "post-drop recv failed")

let test_net_stall () =
  with_net_pair @@ fun a b ->
  with_net_plan "stall@1" (fun () ->
      let t0 = Unix.gettimeofday () in
      (match Netio.recv ~timeout_s:30.0 b with
      | Error `Timeout -> ()
      | _ -> Alcotest.fail "stalled recv yielded data");
      (* Fail-fast: the injected timeout must not sleep out the
         deadline — that is what keeps partition sweeps cheap. *)
      Alcotest.(check bool) "injected stall is immediate" true
        (Unix.gettimeofday () -. t0 < 5.0));
  with_net_plan "stall@1" (fun () ->
      match Netio.send a "wedged" with
      | () -> Alcotest.fail "stalled send succeeded"
      | exception Sys_error _ -> ())

let test_net_garble () =
  (* Send side: the peer's CRC machinery refuses the damaged frame —
     the corruption is detected by the receiver, like real line
     noise. *)
  with_net_pair (fun a b ->
      with_net_plan "garble@1,seed=7" (fun () ->
          Netio.send a "precious bits";
          match Fsio.read_framed ~timeout_s:1.0 b with
          | Error (`Bad _) -> ()
          | Ok _ -> Alcotest.fail "garbled frame passed the peer's CRC"
          | Error `Eof -> Alcotest.fail "garbled send read as EOF"
          | Error `Timeout -> Alcotest.fail "garbled send wrote nothing"));
  (* Recv side: reported locally without consuming the stream. *)
  with_net_pair (fun a b ->
      with_net_plan "garble@1" (fun () ->
          Fsio.write_framed a "precious bits";
          (match Netio.recv ~timeout_s:1.0 b with
          | Error (`Bad _) -> ()
          | _ -> Alcotest.fail "garbled recv did not report Bad");
          match Netio.recv ~timeout_s:1.0 b with
          | Ok p -> Alcotest.(check string) "stream intact after garble" "precious bits" p
          | Error _ -> Alcotest.fail "post-garble recv failed"))

let test_net_reset_is_one_shot () =
  with_net_pair @@ fun a b ->
  with_net_plan "reset@1" @@ fun () ->
  (match Netio.send a "gone" with
  | () -> Alcotest.fail "reset send succeeded"
  | exception Sys_error _ -> ());
  (* One-shot: the connection works again at the next operation. *)
  Netio.send a "back";
  match Netio.recv ~timeout_s:1.0 b with
  | Ok p -> Alcotest.(check string) "post-reset roundtrip" "back" p
  | Error _ -> Alcotest.fail "post-reset recv failed"

let test_net_partition_is_sticky () =
  with_net_pair @@ fun a b ->
  with_net_plan "partition@1" @@ fun () ->
  Netio.send a "severed";
  Alcotest.(check int) "partition injected once" 1 (Netio.injected ());
  (* Every later operation is suppressed without advancing the
     operation clock: sends write nothing, recvs time out, dials
     fail. *)
  let ops_after = Netio.op_count () in
  Netio.send a "also severed";
  (match Netio.recv ~timeout_s:1.0 b with
  | Error `Timeout -> ()
  | _ -> Alcotest.fail "severed recv yielded data");
  (match Netio.connect ~timeout_s:0.2 "127.0.0.1" 1 with
  | fd ->
    Unix.close fd;
    Alcotest.fail "severed connect succeeded"
  | exception Sys_error _ -> ());
  Alcotest.(check int) "severed ops do not count" ops_after (Netio.op_count ());
  Alcotest.(check int) "partition counts once" 1 (Netio.injected ());
  (* Clearing the plan heals the partition. *)
  Netio.clear_plan ();
  Netio.send a "healed";
  match Netio.recv ~timeout_s:1.0 b with
  | Ok p -> Alcotest.(check string) "post-heal roundtrip" "healed" p
  | Error _ -> Alcotest.fail "post-heal recv failed"

(* Real loopback: listen on an ephemeral port, dial it, move frames
   both ways — the no-plan fast path of the whole connect stack. *)
let test_net_listen_connect_roundtrip () =
  Netio.clear_plan ();
  let lfd, port = Netio.listen "127.0.0.1" 0 in
  Fun.protect ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Alcotest.(check bool) "ephemeral port picked" true (port > 0);
  let cfd = Netio.connect ~timeout_s:5.0 "127.0.0.1" port in
  let sfd, _ = Unix.accept lfd in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close cfd with Unix.Unix_error _ -> ());
      try Unix.close sfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Netio.send cfd "ping";
  (match Netio.recv ~timeout_s:5.0 sfd with
  | Ok p -> Alcotest.(check string) "client->server" "ping" p
  | Error _ -> Alcotest.fail "server never saw the frame");
  Netio.send sfd "pong";
  match Netio.recv ~timeout_s:5.0 cfd with
  | Ok p -> Alcotest.(check string) "server->client" "pong" p
  | Error _ -> Alcotest.fail "client never saw the reply"

(* A dead port is a transient connect error: the dialer retries its
   bounded attempts (visible on the retry counter) and then fails with
   Sys_error — an injected-or-real distinction the caller cannot
   see. *)
let test_net_connect_retries_then_fails () =
  Netio.clear_plan ();
  let lfd, port = Netio.listen "127.0.0.1" 0 in
  Unix.close lfd;
  let r0 = Netio.retries () in
  (match Netio.connect ~timeout_s:0.5 "127.0.0.1" port with
  | fd ->
    Unix.close fd;
    Alcotest.fail "connect to a closed port succeeded"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "bounded retries burned" true (Netio.retries () - r0 >= 2)

let suite =
  [
    ("plan grammar", `Quick, test_plan_parse);
    ("counters without a plan", `Quick, test_counters_without_plan);
    ("crc32 check value", `Quick, test_crc32_vector);
    ("atomic write roundtrip", `Quick, test_atomic_write_roundtrip);
    ("atomic write crash states", `Quick, test_atomic_write_crash_states);
    ("injected errors look real", `Quick, test_injected_errors_look_real);
    ("record roundtrip and torn tail", `Quick, test_record_roundtrip_and_torn_tail);
    ("record corruption detected", `Quick, test_record_corruption_detected);
    ("short write repaired", `Quick, test_short_write_repair);
    ("transient errors retried", `Quick, test_transient_retry);
    ("repository detects corruption", `Quick, test_repository_detects_corruption);
    ("store quarantines corrupt record", `Quick, test_store_quarantines_corrupt_record);
    ("store add degrades on fault", `Quick, test_store_add_degrades_on_fault);
    ("counting plan is pure", `Quick, test_injection_off_is_pure);
    ("crash sweep recovers", `Slow, test_crash_sweep_recovers);
    ("trace export degrades", `Quick, test_trace_export_degrades);
    Helpers.to_alcotest test_corruption_rebuild;
    Helpers.to_alcotest test_pack_corruption_clean_subset;
    ("pack crash sweep", `Slow, test_pack_crash_sweep);
    ("cohort registry crash sweep", `Slow, test_cohort_crash_sweep);
    ("net plan grammar", `Quick, test_net_plan_parse);
    ("net counters without a plan", `Quick, test_net_counters_without_plan);
    ("net address parsing", `Quick, test_net_parse_addr);
    ("net counting plan is pure", `Quick, test_net_counting_is_pure);
    ("net drop semantics", `Quick, test_net_drop);
    ("net stall semantics", `Quick, test_net_stall);
    ("net garble semantics", `Quick, test_net_garble);
    ("net reset is one-shot", `Quick, test_net_reset_is_one_shot);
    ("net partition is sticky", `Quick, test_net_partition_is_sticky);
    ("net listen/connect roundtrip", `Quick, test_net_listen_connect_roundtrip);
    ("net connect retries then fails", `Quick, test_net_connect_retries_then_fails);
  ]
