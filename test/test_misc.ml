(* Edge cases and report/pretty-printer smoke tests that don't fit the
   per-library suites. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats
module Db = Cmo_profile.Db
module Vm = Cmo_vm.Vm

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---------- arithmetic edges ---------- *)

let test_min_int_edges () =
  (* Division overflow (min_int / -1) and friends must not raise and
     must agree between the interpreter and the VM. *)
  let src =
    {|
    func main() {
      var m = 0 - 9223372036854775807 - 1;
      print(m / -1);
      print(m % -1);
      print(m * -1);
      print(-m);
      print(m >> 63);
      print(m << 1);
      return 0;
    }
    |}
  in
  let modules = [ Helpers.compile src ] in
  let expected = Interp.run modules in
  let build = Pipeline.compile_modules Options.o2 modules in
  let got = Pipeline.run build in
  Alcotest.(check (list int64)) "interp = vm on min_int edges"
    expected.Interp.output got.Vm.output

let test_shift_amount_masking () =
  let src =
    "func main() { print(1 << 64); print(1 << 65); print(4 >> -1); return 0; }"
  in
  let modules = [ Helpers.compile src ] in
  let expected = Interp.run modules in
  (* 1 << 64 masks to 1 << 0 = 1; 1 << 65 = 2; 4 >> -1 masks to 4 >> 63. *)
  Alcotest.(check (list int64)) "masked shifts" [ 1L; 2L; 0L ]
    expected.Interp.output;
  let got = Pipeline.run (Pipeline.compile_modules Options.o2 modules) in
  Alcotest.(check (list int64)) "vm agrees" expected.Interp.output got.Vm.output

(* ---------- pretty printers / reports ---------- *)

let small_app () =
  [
    { Pipeline.name = "a"; text = "func main() { return work(3) + 1; }" };
    {
      Pipeline.name = "b";
      text =
        {|
        func work(x) {
          var s = 0;
          var i = 0;
          while (i < 200) { s = (s + x * i) & 4095; i = i + 1; }
          return s;
        }
        |};
    };
  ]

let test_options_to_string () =
  Alcotest.(check string) "o2" "+O2" (Options.to_string Options.o2);
  Alcotest.(check string) "o4 pbo" "+O4 +P" (Options.to_string Options.o4_pbo);
  Alcotest.(check string) "instrumented" "+O2 +I"
    (Options.to_string Options.instrumented);
  Alcotest.(check string) "selective" "+O4 +P sel=20.0%"
    (Options.to_string (Options.o4_pbo_selective 20.0));
  Alcotest.(check string) "tiered" "+O4 +P sel=10.0% tiered"
    (Options.to_string (Options.o4_pbo_tiered 10.0))

let test_pipeline_report_renders () =
  let sources = small_app () in
  let db = Pipeline.train sources in
  let build = Pipeline.compile ~profile:db Options.o4_pbo sources in
  let text = Format.asprintf "%a" Pipeline.pp_report build.Pipeline.report in
  Alcotest.(check bool) "mentions the level" true (contains text "+O4 +P");
  Alcotest.(check bool) "mentions memory" true (contains text "memory peak");
  Alcotest.(check bool) "mentions inline diagnostics" true
    (contains text "sites not inlined")

let test_image_map_renders () =
  let build = Pipeline.compile Options.o2 (small_app ()) in
  let text =
    Format.asprintf "%a" Cmo_link.Image.pp_map build.Pipeline.image
  in
  Alcotest.(check bool) "lists main" true (contains text "main");
  Alcotest.(check bool) "lists work" true (contains text "work");
  Alcotest.(check bool) "shows entry" true (contains text "entry:")

let test_func_and_module_pp_render () =
  let m = Helpers.compile "global g[2] = {7, 8}; func main() { g[0] = g[1]; return g[0]; }" in
  let text = Format.asprintf "%a" Ilmod.pp m in
  Alcotest.(check bool) "module header" true (contains text "module test");
  Alcotest.(check bool) "global" true (contains text "global g[2]");
  Alcotest.(check bool) "function body" true (contains text "load")

let test_mach_pp_renders () =
  let m = Helpers.compile "func main() { return 6 * 7; }" in
  let codes, _ = Cmo_llo.Llo.compile_module m in
  let text =
    Format.asprintf "%a" Cmo_llo.Mach.pp_func (List.hd codes)
  in
  Alcotest.(check bool) "has header" true (contains text "main");
  Alcotest.(check bool) "has ret" true (contains text "ret")

(* ---------- API misuse is rejected ---------- *)

let test_loader_double_release_rejected () =
  let mem = Memstats.create () in
  let loader = Loader.create Loader.default_config mem in
  let m = Ilmod.create "m" in
  Ilmod.add_func m (Helpers.make_linear_func "f");
  Loader.register_module loader m;
  ignore (Loader.acquire loader "f");
  Loader.release loader "f";
  Alcotest.(check bool) "second release rejected" true
    (try
       Loader.release loader "f";
       false
     with Invalid_argument _ -> true);
  Loader.close loader

let test_loader_removed_func_unknown () =
  let mem = Memstats.create () in
  let loader = Loader.create Loader.default_config mem in
  let m = Ilmod.create "m" in
  Ilmod.add_func m (Helpers.make_linear_func "f");
  Loader.register_module loader m;
  Loader.remove_func loader "f";
  Alcotest.(check bool) "acquire after remove raises" true
    (try
       ignore (Loader.acquire loader "f");
       false
     with Not_found -> true);
  Loader.close loader

let test_db_load_missing_file () =
  Alcotest.(check bool) "missing file raises Sys_error" true
    (try
       ignore (Db.load "/nonexistent/cmo.prof");
       false
     with Sys_error _ -> true)

let test_buildsys_bad_dir_rejected () =
  Alcotest.(check bool) "missing dir rejected" true
    (try
       ignore (Buildsys.create ~dir:"/nonexistent/cmo_ws" ());
       false
     with Invalid_argument _ -> true)

let test_vm_halt_mid_program () =
  (* A linked image whose entry immediately halts: halt reports rv. *)
  let image =
    {
      Cmo_link.Image.code =
        [| Cmo_llo.Mach.Li (Cmo_llo.Mach.reg_rv, 99L); Cmo_llo.Mach.Halt |];
      entry = 0;
      funcs = [ ("main", 0, 2) ];
      globals = [];
      data_init = [];
      data_cells = 0;
    }
  in
  let o = Vm.run image in
  Alcotest.(check int64) "halt returns rv" 99L o.Vm.ret

let test_vm_unresolved_symbol_faults () =
  let image =
    {
      Cmo_link.Image.code = [| Cmo_llo.Mach.Call_sym "ghost" |];
      entry = 0;
      funcs = [ ("main", 0, 1) ];
      globals = [];
      data_init = [];
      data_cells = 0;
    }
  in
  Alcotest.(check bool) "faults on symbolic instr" true
    (try
       ignore (Vm.run image);
       false
     with Vm.Fault _ -> true)

let test_interp_missing_main () =
  let m = Helpers.compile "func helper(x) { return x; }" in
  Alcotest.(check bool) "no main trapped" true
    (try
       ignore (Interp.run [ m ]);
       false
     with Interp.Runtime_error _ -> true)

(* ---------- determinism of whole builds ---------- *)

let test_build_determinism () =
  (* Section 6.2: "the compiler must behave in exactly the same way
     when compiling the same piece of code, using the same profile
     data ... from run to run."  Two independent full builds must
     produce identical images. *)
  let build () =
    let sources = small_app () in
    let db = Pipeline.train sources in
    (Pipeline.compile ~profile:db Options.o4_pbo sources).Pipeline.image
  in
  let a = build () in
  let b = build () in
  Alcotest.(check bool) "identical code arrays" true
    (a.Cmo_link.Image.code = b.Cmo_link.Image.code);
  Alcotest.(check bool) "identical data" true
    (a.Cmo_link.Image.data_init = b.Cmo_link.Image.data_init
    && a.Cmo_link.Image.funcs = b.Cmo_link.Image.funcs)

let suite =
  [
    ("min_int edges agree", `Quick, test_min_int_edges);
    ("shift masking agrees", `Quick, test_shift_amount_masking);
    ("options to_string", `Quick, test_options_to_string);
    ("pipeline report renders", `Quick, test_pipeline_report_renders);
    ("image map renders", `Quick, test_image_map_renders);
    ("func/module pp renders", `Quick, test_func_and_module_pp_render);
    ("mach pp renders", `Quick, test_mach_pp_renders);
    ("loader double release", `Quick, test_loader_double_release_rejected);
    ("loader removed func", `Quick, test_loader_removed_func_unknown);
    ("db missing file", `Quick, test_db_load_missing_file);
    ("buildsys bad dir", `Quick, test_buildsys_bad_dir_rejected);
    ("vm halt semantics", `Quick, test_vm_halt_mid_program);
    ("vm unresolved symbol", `Quick, test_vm_unresolved_symbol_faults);
    ("interp missing main", `Quick, test_interp_missing_main);
    ("build determinism", `Quick, test_build_determinism);
  ]
