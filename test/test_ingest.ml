(* Property suite for fleet-scale profile ingestion: the merge-algebra
   laws that [Ingest] documents and relies on (commutativity,
   associativity up to float tolerance, weighted identities, decay
   laws, order-canonicalized byte-identical serialization), the shard
   and pack codecs, and the Fig-6-style end-to-end regression — a
   generated fleet at full sampling must select the same hot-module
   set as the single-run oracle, and stay >= 0.95 overlap at 1/100
   sampling. *)

module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Correlate = Cmo_profile.Correlate
module Fleet = Cmo_workload.Fleet
module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Selectivity = Cmo_hlo.Selectivity
module Pipeline = Cmo_driver.Pipeline
module Options = Cmo_driver.Options
module Prng = Cmo_support.Prng

(* ---------- generators ---------- *)

(* Small key space on purpose: collisions across generated databases
   are what exercise the accumulate path of the merge. *)
let key_gen =
  let open QCheck.Gen in
  let name = oneofl [ "f"; "g"; "h"; "m0"; "m1" ] in
  oneof
    [
      map (fun n -> Db.Fentry n) name;
      map2 (fun n l -> Db.Block (n, l)) name (int_bound 5);
      map3 (fun n a b -> Db.Edge (n, a, b)) name (int_bound 5) (int_bound 5);
    ]

(* Positive dyadic-ish counts; fractional values exercise the float
   paths without being denormal noise. *)
let count_gen =
  QCheck.Gen.map (fun n -> float_of_int n /. 16.0) (QCheck.Gen.int_range 1 4096)

let entries_gen =
  QCheck.Gen.list_size (QCheck.Gen.int_bound 30)
    (QCheck.Gen.pair key_gen count_gen)

let db_of_entries es =
  let db = Db.create () in
  List.iter (fun (k, v) -> Db.add db k v) es;
  db

let print_entries es =
  "["
  ^ String.concat "; "
      (List.map (fun (k, v) -> Format.asprintf "%a=%g" Db.pp_key k v) es)
  ^ "]"

let entries_arb = QCheck.make ~print:print_entries entries_gen

let meta_gen =
  let open QCheck.Gen in
  map
    (fun (source_fp, sample_rate, weight, age) ->
      { Ingest.source_fp; sample_rate; weight; age })
    (quad
       (oneofl [ "vA"; "vB" ])
       (oneofl [ 1.0; 0.5; 0.25; 0.01 ])
       (oneofl [ 0.0; 0.5; 1.0; 2.0 ])
       (int_bound 3))

let shard_gen =
  QCheck.Gen.map
    (fun (meta, es) -> { Ingest.meta; db = db_of_entries es })
    (QCheck.Gen.pair meta_gen entries_gen)

let print_shard (s : Ingest.shard) =
  Format.asprintf "{fp=%s rate=%g w=%g age=%d %s}" s.Ingest.meta.Ingest.source_fp
    s.Ingest.meta.Ingest.sample_rate s.Ingest.meta.Ingest.weight
    s.Ingest.meta.Ingest.age
    (print_entries (Db.entries s.Ingest.db))

let shards_arb n =
  QCheck.make
    ~print:(fun l -> String.concat "\n" (List.map print_shard l))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 n) shard_gen)

(* Relative float tolerance: the algebra holds up to reassociation of
   IEEE additions, not bit-exactly. *)
let close a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let db_close a b =
  let ea = Db.entries a and eb = Db.entries b in
  List.length ea = List.length eb
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && close v1 v2) ea eb

let policy = Ingest.default_policy ~current_fp:"vA"

(* ---------- merge laws ---------- *)

(* Two-way merge commutes *byte-exactly*: per key the same two floats
   are added, and IEEE addition of two operands is commutative. *)
let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative (byte-identical)" ~count:200
    (QCheck.pair entries_arb entries_arb)
    (fun (e1, e2) ->
      let ab = db_of_entries e1 in
      Db.merge ~into:ab (db_of_entries e2);
      let ba = db_of_entries e2 in
      Db.merge ~into:ba (db_of_entries e1);
      Db.encode ab = Db.encode ba)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative (float tolerance)" ~count:200
    (QCheck.triple entries_arb entries_arb entries_arb)
    (fun (e1, e2, e3) ->
      (* ((a + b) + c) *)
      let l = db_of_entries e1 in
      Db.merge ~into:l (db_of_entries e2);
      Db.merge ~into:l (db_of_entries e3);
      (* (a + (b + c)) *)
      let bc = db_of_entries e2 in
      Db.merge ~into:bc (db_of_entries e3);
      let r = db_of_entries e1 in
      Db.merge ~into:r bc;
      db_close l r)

let prop_weight_zero_noop =
  QCheck.Test.make ~name:"weight 0 merge is a byte-level no-op" ~count:200
    (QCheck.pair entries_arb entries_arb)
    (fun (e1, e2) ->
      let into = db_of_entries e1 in
      let before = Db.encode into in
      Db.merge_weighted ~into ~weight:0.0 (db_of_entries e2);
      Db.encode into = before)

let prop_weight_one_is_merge =
  QCheck.Test.make ~name:"weight 1 merge equals plain merge" ~count:200
    (QCheck.pair entries_arb entries_arb)
    (fun (e1, e2) ->
      let w = db_of_entries e1 in
      Db.merge_weighted ~into:w ~weight:1.0 (db_of_entries e2);
      let p = db_of_entries e1 in
      Db.merge ~into:p (db_of_entries e2);
      Db.encode w = Db.encode p)

let prop_decay_age_zero_identity =
  QCheck.Test.make ~name:"decay at age 0 is a byte-level identity" ~count:200
    entries_arb
    (fun es ->
      let db = db_of_entries es in
      let before = Db.encode db in
      Db.decay db ~rate:0.9 ~age:0;
      Db.encode db = before)

let prop_decay_monotone =
  QCheck.Test.make ~name:"decay is monotone non-increasing in age" ~count:200
    (QCheck.pair entries_arb (QCheck.int_range 1 4))
    (fun (es, age) ->
      let younger = db_of_entries es in
      let older = db_of_entries es in
      Db.decay younger ~rate:0.9 ~age;
      Db.decay older ~rate:0.9 ~age:(age + 1);
      Db.total older <= Db.total younger +. 1e-9)

(* ---------- canonical ingest ---------- *)

let shuffled seed l =
  let a = Array.of_list l in
  Prng.shuffle (Prng.create seed) a;
  Array.to_list a

let prop_ingest_order_canonical =
  QCheck.Test.make
    ~name:"ingest serializes byte-identically under shard permutation"
    ~count:50
    (QCheck.pair (shards_arb 8) QCheck.small_nat)
    (fun (shards, seed) ->
      let d1, s1 = Ingest.ingest ~policy shards in
      let d2, s2 = Ingest.ingest ~policy (List.rev shards) in
      let d3, s3 = Ingest.ingest ~policy (shuffled (seed + 1) shards) in
      Db.encode d1 = Db.encode d2
      && Db.encode d1 = Db.encode d3
      && s1 = s2 && s1 = s3)

let prop_zero_weight_shards_invisible =
  QCheck.Test.make
    ~name:"weight-0 shards leave the merged db byte-identical" ~count:50
    (QCheck.pair (shards_arb 6) entries_arb)
    (fun (shards, es) ->
      let dead =
        {
          Ingest.meta =
            { Ingest.source_fp = "vA"; sample_rate = 1.0; weight = 0.0; age = 0 };
          db = db_of_entries es;
        }
      in
      let with_dead, _ = Ingest.ingest ~policy (dead :: shards) in
      let without, _ = Ingest.ingest ~policy shards in
      Db.encode with_dead = Db.encode without)

(* ---------- codecs ---------- *)

let prop_shard_roundtrip =
  QCheck.Test.make ~name:"shard codec round-trips" ~count:200
    (QCheck.make ~print:print_shard shard_gen)
    (fun s ->
      let s' = Ingest.decode_shard (Ingest.encode_shard s) in
      s'.Ingest.meta = s.Ingest.meta
      && Db.encode s'.Ingest.db = Db.encode s.Ingest.db)

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"pack write/read round-trips with 0 skipped"
    ~count:30 (shards_arb 8)
    (fun shards ->
      Helpers.with_dir (fun dir ->
          let path = Filename.concat dir "shards.pack" in
          Ingest.write_pack path shards;
          let got, skipped = Ingest.read_pack path in
          skipped = 0
          && List.map Ingest.encode_shard got
             = List.map Ingest.encode_shard shards))

let test_effective_weight () =
  let m ?(fp = "vA") ?(rate = 1.0) ?(w = 1.0) ?(age = 0) () =
    { Ingest.source_fp = fp; sample_rate = rate; weight = w; age }
  in
  Alcotest.(check (float 1e-12)) "plain" 1.0
    (Ingest.effective_weight policy (m ()));
  Alcotest.(check (float 1e-12)) "sampling upscale" 4.0
    (Ingest.effective_weight policy (m ~rate:0.25 ()));
  Alcotest.(check (float 1e-12)) "bad rate degrades to 1" 1.0
    (Ingest.effective_weight policy (m ~rate:0.0 ()));
  Alcotest.(check (float 1e-12)) "decay" (0.9 *. 0.9)
    (Ingest.effective_weight policy (m ~age:2 ()));
  Alcotest.(check (float 1e-12)) "skew down-weight" 0.25
    (Ingest.effective_weight policy (m ~fp:"vB" ()));
  Alcotest.(check (float 1e-12)) "everything composes"
    (2.0 *. 4.0 *. 0.9 *. 0.25)
    (Ingest.effective_weight policy (m ~fp:"vB" ~rate:0.25 ~w:2.0 ~age:1 ()))

let test_fingerprint_order_insensitive () =
  let a = [ ("m1", "x"); ("m2", "y") ] in
  let b = [ ("m2", "y"); ("m1", "x") ] in
  Alcotest.(check string) "order-insensitive" (Ingest.fingerprint a)
    (Ingest.fingerprint b);
  Alcotest.(check bool) "content-sensitive" true
    (Ingest.fingerprint a <> Ingest.fingerprint [ ("m1", "x"); ("m2", "z") ])

(* ---------- the Fig-6 regression ---------- *)

let sources_of gen =
  List.map (fun (name, text) -> { Pipeline.name; text }) gen

(* Hot-module set under 20% selectivity once the given profile is
   correlated onto the modules. *)
let hot_set db modules =
  ignore (Correlate.annotate db modules);
  let sel = Selectivity.select ~percent:20.0 modules in
  Correlate.clear modules;
  List.sort_uniq compare sel.Selectivity.cmo_modules

let test_fleet_matches_oracle_selection () =
  let cfg = Suite.find "li" in
  let gen = Genprog.generate cfg in
  let sources = sources_of gen in
  let oracle = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let modules = Pipeline.frontend sources in
  let oracle_set = hot_set oracle modules in
  Alcotest.(check bool) "oracle selects something" true (oracle_set <> []);
  let current_fp = Ingest.fingerprint gen in
  let policy = Ingest.default_policy ~current_fp in
  let fleet rate seed =
    Fleet.generate
      { Fleet.default with Fleet.users = 40; sample_rate = rate; fleet_seed = seed }
      ~oracle ~current_fp ()
  in
  (* Full sampling: the fleet database must select exactly the oracle
     hot set. *)
  let full, stats = Ingest.ingest ~policy (fleet 1.0 11) in
  Alcotest.(check int) "all shards merged" 40 stats.Ingest.ing_shards;
  Alcotest.(check (list string)) "full-sampling fleet = oracle selection"
    oracle_set (hot_set full modules);
  (* 1/100 sampling: hot-set overlap >= 0.95. *)
  let sampled, _ = Ingest.ingest ~policy (fleet 0.01 13) in
  let s_set = hot_set sampled modules in
  let inter = List.filter (fun m -> List.mem m oracle_set) s_set in
  let overlap =
    float_of_int (List.length inter)
    /. float_of_int (max 1 (List.length oracle_set))
  in
  Alcotest.(check bool)
    (Printf.sprintf "1/100-sampling overlap %.2f >= 0.95" overlap)
    true (overlap >= 0.95)

(* The acceptance criterion behind the whole exercise: any arrival
   order yields a byte-identical canonical db, and the *build* made
   from it is deterministic — enforced here, not just eyeballed in the
   bench. *)
let test_ingest_build_deterministic () =
  let cfg =
    {
      Genprog.name = "ingdet";
      seed = 19;
      modules = 6;
      hot_modules = 2;
      funcs_per_module = (3, 6);
      hot_weight = 85;
      main_iters = 200;
      leaf_iters = (3, 8);
      tiny_leaf_percent = 40;
    }
  in
  let gen = Genprog.generate cfg in
  let sources = sources_of gen in
  let oracle = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let current_fp = Ingest.fingerprint gen in
  let policy = Ingest.default_policy ~current_fp in
  let shards =
    Fleet.generate
      { Fleet.default with Fleet.users = 16; sample_rate = 0.2; fleet_seed = 5 }
      ~oracle ~current_fp ()
  in
  let d1, _ = Ingest.ingest ~policy shards in
  let d2, _ = Ingest.ingest ~policy (shuffled 99 shards) in
  Alcotest.(check bool) "permuted ingest is byte-identical" true
    (Db.encode d1 = Db.encode d2);
  let b1 = Pipeline.compile ~profile:d1 Options.o4_pbo sources in
  let b2 = Pipeline.compile ~profile:d2 Options.o4_pbo sources in
  Helpers.same_build "build from permuted-ingest profiles" b1 b2

(* One 1000x-inflated adversarial shard must not change module
   selection when the clamp is on. *)
let test_poison_clamped () =
  let cfg = Suite.find "li" in
  let gen = Genprog.generate cfg in
  let sources = sources_of gen in
  let oracle = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
  let modules = Pipeline.frontend sources in
  let current_fp = Ingest.fingerprint gen in
  let policy = Ingest.default_policy ~current_fp in
  (* Enough honest shards that the clamped attacker's residual mass
     (~clamp_ratio medians' worth) is a small fraction of the total. *)
  let clean =
    Fleet.generate
      { Fleet.default with Fleet.users = 60; fleet_seed = 21 }
      ~oracle ~current_fp ()
  in
  let clean_db, _ = Ingest.ingest ~policy clean in
  let clean_set = hot_set clean_db modules in
  let poisoned = Fleet.poison ~factor:1000.0 (List.hd clean) :: clean in
  let db, stats = Ingest.ingest ~policy poisoned in
  Alcotest.(check bool) "clamp engaged" true (stats.Ingest.ing_clamped > 0);
  Alcotest.(check (list string)) "selection unchanged under poisoning"
    clean_set (hot_set db modules)

let suite =
  [
    Helpers.to_alcotest prop_merge_commutative;
    Helpers.to_alcotest prop_merge_associative;
    Helpers.to_alcotest prop_weight_zero_noop;
    Helpers.to_alcotest prop_weight_one_is_merge;
    Helpers.to_alcotest prop_decay_age_zero_identity;
    Helpers.to_alcotest prop_decay_monotone;
    Helpers.to_alcotest prop_ingest_order_canonical;
    Helpers.to_alcotest prop_zero_weight_shards_invisible;
    Helpers.to_alcotest prop_shard_roundtrip;
    Helpers.to_alcotest prop_pack_roundtrip;
    ("effective weight", `Quick, test_effective_weight);
    ("fingerprint", `Quick, test_fingerprint_order_insensitive);
    ("fleet matches oracle selection", `Slow, test_fleet_matches_oracle_selection);
    ("permuted ingest builds identically", `Slow, test_ingest_build_deterministic);
    ("poisoned shard clamped", `Slow, test_poison_clamped);
  ]
