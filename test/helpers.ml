(* Shared helpers for the test suites: MiniC snippets, tiny IL
   builders, and outcome comparison. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp

let compile ?(name = "test") source =
  Cmo_frontend.Frontend.compile_exn ~module_name:name source

let compile_all sources =
  List.map (fun (name, src) -> compile ~name src) sources

let run ?input modules = Interp.run ?input modules

let run_main ?input source = run ?input [ compile source ]

(* A function [name(a, b) = a*2 + b] built directly in IL. *)
let make_linear_func ?(linkage = Func.Exported) name =
  let f = Func.create ~name ~arity:2 ~linkage in
  let t1 = Func.new_reg f in
  let t2 = Func.new_reg f in
  let b =
    Func.add_block f
      [
        Instr.Binop (Instr.Mul, t1, Instr.Reg 0, Instr.Imm 2L);
        Instr.Binop (Instr.Add, t2, Instr.Reg t1, Instr.Reg 1);
      ]
      (Instr.Ret (Some (Instr.Reg t2)))
  in
  f.Func.entry <- b.Func.label;
  f.Func.src_lines <- 3;
  f

let outcome_testable =
  let pp ppf (o : Interp.outcome) =
    Format.fprintf ppf "ret=%Ld output=[%a]" o.Interp.ret
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf v -> Format.fprintf ppf "%Ld" v))
      o.Interp.output
  in
  let eq (a : Interp.outcome) (b : Interp.outcome) =
    Int64.equal a.Interp.ret b.Interp.ret && a.Interp.output = b.Interp.output
  in
  Alcotest.testable pp eq

(* Check two program variants have identical observable behaviour. *)
let check_same_behaviour ?input msg modules_a modules_b =
  let a = run ?input modules_a in
  let b = run ?input modules_b in
  Alcotest.check outcome_testable msg a b

(* ---------- temp-dir scaffolding ---------- *)

(* Best-effort recursive delete: entries that vanish mid-walk (another
   cleanup, an injected fault) are fine — a failing test must not
   cascade into a cleanup failure. *)
let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* A fresh empty directory for the callback's lifetime. *)
let with_dir ?(prefix = "cmo_test") f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* ---------- byte-identity comparison ----------

   The differential suites (parallel, distributed) all reduce to the
   same observation: two builds are "the same" when the image, the
   objects and — when stores are attached — every store file agree
   byte for byte. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every file of the two store directories, byte for byte: the index
   (entries, offsets, LRU ticks, counters) and the payload log. *)
let same_store_bytes a b =
  let files dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
  files a = files b
  && List.for_all
       (fun f -> read_file (Filename.concat a f) = read_file (Filename.concat b f))
       (files a)

let same_build msg (a : Cmo_driver.Pipeline.build) (b : Cmo_driver.Pipeline.build) =
  let module Pipeline = Cmo_driver.Pipeline in
  let module Image = Cmo_link.Image in
  Alcotest.(check bool) (msg ^ ": image code") true
    (a.Pipeline.image.Image.code = b.Pipeline.image.Image.code);
  Alcotest.(check bool) (msg ^ ": image tables") true
    (a.Pipeline.image.Image.funcs = b.Pipeline.image.Image.funcs
    && a.Pipeline.image.Image.data_init = b.Pipeline.image.Image.data_init
    && a.Pipeline.image.Image.globals = b.Pipeline.image.Image.globals);
  Alcotest.(check bool) (msg ^ ": objects") true
    (a.Pipeline.objects = b.Pipeline.objects)

(* ---------- corruption primitives ----------

   Every fault suite corrupts bytes the same two ways — xor a bit
   mask into one byte, or cut the tail off — so the primitives live
   here and the suites differ only in what they corrupt. *)

let flip_byte s i bits =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bits));
  Bytes.to_string b

let truncated s k = String.sub s 0 (min (max k 0) (String.length s))

(* One corruption event: which file (index/payload — reinterpret
   freely as any two-target choice), truncate or flip, a relative
   position in [0,1], and a non-zero bit mask. *)
let corruption_arbitrary =
  QCheck.make
    ~print:(fun (in_index, truncate_it, where, bits) ->
      Printf.sprintf "{file=%s; kind=%s; where=%f; bits=%x}"
        (if in_index then "index" else "payload")
        (if truncate_it then "truncate" else "flip")
        where bits)
    QCheck.Gen.(quad bool bool (float_bound_inclusive 1.0) (int_range 1 255))

(* ---------- deterministic fuzz seeds ---------- *)

(* Every property-based suite draws its randomness from one seed so a
   CI failure is reproducible from a single number.  The environment
   lookup ([CMO_FUZZ_SEED] wins, then qcheck's own [QCHECK_SEED]) is
   [Options.from_env]'s, shared with the bench fuzz campaign; absent
   both, a fresh random seed.  Whichever it was, a failing property
   prints it with the command to replay (see HACKING.md). *)
let fuzz_seed =
  lazy
    (match (Cmo_driver.Options.from_env ()).Cmo_driver.Options.env_fuzz_seed with
    | Some s -> s
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000)

(* [QCheck_alcotest.to_alcotest] with the shared seed, and the seed
   printed on failure so the exact run can be replayed. *)
let to_alcotest test =
  let seed = Lazy.force fuzz_seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run () =
    try run ()
    with e ->
      Printf.printf "fuzz seed: %d (replay with CMO_FUZZ_SEED=%d)\n%!" seed seed;
      raise e
  in
  (name, speed, run)
