(* Shared helpers for the test suites: MiniC snippets, tiny IL
   builders, and outcome comparison. *)

module Instr = Cmo_il.Instr
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Interp = Cmo_il.Interp

let compile ?(name = "test") source =
  Cmo_frontend.Frontend.compile_exn ~module_name:name source

let compile_all sources =
  List.map (fun (name, src) -> compile ~name src) sources

let run ?input modules = Interp.run ?input modules

let run_main ?input source = run ?input [ compile source ]

(* A function [name(a, b) = a*2 + b] built directly in IL. *)
let make_linear_func ?(linkage = Func.Exported) name =
  let f = Func.create ~name ~arity:2 ~linkage in
  let t1 = Func.new_reg f in
  let t2 = Func.new_reg f in
  let b =
    Func.add_block f
      [
        Instr.Binop (Instr.Mul, t1, Instr.Reg 0, Instr.Imm 2L);
        Instr.Binop (Instr.Add, t2, Instr.Reg t1, Instr.Reg 1);
      ]
      (Instr.Ret (Some (Instr.Reg t2)))
  in
  f.Func.entry <- b.Func.label;
  f.Func.src_lines <- 3;
  f

let outcome_testable =
  let pp ppf (o : Interp.outcome) =
    Format.fprintf ppf "ret=%Ld output=[%a]" o.Interp.ret
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf v -> Format.fprintf ppf "%Ld" v))
      o.Interp.output
  in
  let eq (a : Interp.outcome) (b : Interp.outcome) =
    Int64.equal a.Interp.ret b.Interp.ret && a.Interp.output = b.Interp.output
  in
  Alcotest.testable pp eq

(* Check two program variants have identical observable behaviour. *)
let check_same_behaviour ?input msg modules_a modules_b =
  let a = run ?input modules_a in
  let b = run ?input modules_b in
  Alcotest.check outcome_testable msg a b

(* ---------- deterministic fuzz seeds ---------- *)

(* Every property-based suite draws its randomness from one seed so a
   CI failure is reproducible from a single number.  The environment
   lookup ([CMO_FUZZ_SEED] wins, then qcheck's own [QCHECK_SEED]) is
   [Options.from_env]'s, shared with the bench fuzz campaign; absent
   both, a fresh random seed.  Whichever it was, a failing property
   prints it with the command to replay (see HACKING.md). *)
let fuzz_seed =
  lazy
    (match (Cmo_driver.Options.from_env ()).Cmo_driver.Options.env_fuzz_seed with
    | Some s -> s
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000)

(* [QCheck_alcotest.to_alcotest] with the shared seed, and the seed
   printed on failure so the exact run can be replayed. *)
let to_alcotest test =
  let seed = Lazy.force fuzz_seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run () =
    try run ()
    with e ->
      Printf.printf "fuzz seed: %d (replay with CMO_FUZZ_SEED=%d)\n%!" seed seed;
      raise e
  in
  (name, speed, run)
