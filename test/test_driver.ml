(* End-to-end tests of the compilation driver: option levels,
   profile-guided builds, selectivity, the build system, and bug
   isolation.  The load-bearing checks are differential: every
   optimization level must produce the same observable behaviour on
   the VM as the IL reference interpreter. *)

module Interp = Cmo_il.Interp
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Isolate = Cmo_driver.Isolate
module Db = Cmo_profile.Db
module Vm = Cmo_vm.Vm
module Hlo = Cmo_hlo.Hlo

(* A small but structurally realistic application: four modules, a hot
   kernel behind a module boundary, cold error paths, shared globals,
   arrays, recursion, and multi-argument calls. *)
let app_sources : Pipeline.source list =
  [
    {
      Pipeline.name = "main_mod";
      text =
        {|
        extern global histogram;
        func main() {
          var n = arg(0);
          if (n <= 0) { n = 40; }
          var s = 0;
          var i = 0;
          while (i < n) {
            s = s + transform(i, s);
            if (s > 100000000) { s = overflow_handler(s); }
            i = i + 1;
          }
          record(s);
          print(s);
          print(histogram);
          return checksum(s, n);
        }
        |};
    };
    {
      Pipeline.name = "kernel_mod";
      text =
        {|
        static global weights[8] = {3, 1, 4, 1, 5, 9, 2, 6};
        func transform(x, seed) {
          var acc = seed % 977;
          var j = 0;
          while (j < 8) {
            acc = acc + weights[j] * scale(x + j);
            j = j + 1;
          }
          return acc;
        }
        static func scale(v) { return v * 2 + 1; }
        |};
    };
    {
      Pipeline.name = "stats_mod";
      text =
        {|
        global histogram;
        global bins[16];
        func record(v) {
          var b = v % 16;
          if (b < 0) { b = -b; }
          bins[b] = bins[b] + 1;
          histogram = histogram + 1;
          return 0;
        }
        func checksum(a, b) {
          var h = a * 31 + b;
          var i = 0;
          while (i < 16) { h = h ^ (bins[i] << (i % 8)); i = i + 1; }
          return h;
        }
        |};
    };
    {
      Pipeline.name = "error_mod";
      text =
        {|
        func overflow_handler(v) {
          print(999999);
          var r = v;
          while (r > 1000) { r = r / 2; }
          return r;
        }
        |};
    };
  ]

let reference ?input () =
  Interp.run ?input (Pipeline.frontend app_sources)

let profile_db () = Pipeline.train ~inputs:[ [| 40L |] ] app_sources

let check_level ?input options profile =
  let expected = reference ?input () in
  let build = Pipeline.compile ?profile options app_sources in
  let outcome = Pipeline.run ?input build in
  Alcotest.(check int64)
    (Options.to_string options ^ " return value")
    expected.Interp.ret outcome.Vm.ret;
  Alcotest.(check (list int64))
    (Options.to_string options ^ " output")
    expected.Interp.output outcome.Vm.output;
  (build, outcome)

(* ---------- correctness at every level ---------- *)

let test_o1_correct () = ignore (check_level Options.o1 None)
let test_o2_correct () = ignore (check_level Options.o2 None)

let test_o2_pbo_correct () =
  ignore (check_level Options.o2_pbo (Some (profile_db ())))

let test_o4_correct () = ignore (check_level Options.o4 None)

let test_o4_pbo_correct () =
  ignore (check_level Options.o4_pbo (Some (profile_db ())))

let test_o4_pbo_selective_correct () =
  ignore
    (check_level (Options.o4_pbo_selective 30.0) (Some (profile_db ())))

let test_levels_correct_on_other_input () =
  let db = profile_db () in
  (* Run on an input the profile never saw (including the cold
     overflow path if it triggers). *)
  List.iter
    (fun input ->
      ignore (check_level ~input Options.o4_pbo (Some db));
      ignore (check_level ~input (Options.o4_pbo_selective 25.0) (Some db)))
    [ [| 7L |]; [| 100L |]; [| 0L |] ]

(* ---------- the performance ordering (Figure 1 in miniature) ---------- *)

let test_o4_pbo_faster_than_o2 () =
  let db = profile_db () in
  let _, o2 = check_level Options.o2 None in
  let _, o4p = check_level Options.o4_pbo (Some db) in
  Alcotest.(check bool)
    (Printf.sprintf "cycles: o4+pbo %d < o2 %d" o4p.Vm.cycles o2.Vm.cycles)
    true
    (o4p.Vm.cycles < o2.Vm.cycles)

let test_o2_faster_than_o1 () =
  let _, o1 = check_level Options.o1 None in
  let _, o2 = check_level Options.o2 None in
  Alcotest.(check bool)
    (Printf.sprintf "cycles: o2 %d <= o1 %d" o2.Vm.cycles o1.Vm.cycles)
    true
    (o2.Vm.cycles <= o1.Vm.cycles)

let test_o4_pbo_fewer_calls () =
  let db = profile_db () in
  let _, o2 = check_level Options.o2 None in
  let _, o4p = check_level Options.o4_pbo (Some db) in
  Alcotest.(check bool) "inlining removed dynamic calls" true
    (o4p.Vm.calls < o2.Vm.calls)

(* ---------- reports ---------- *)

let test_report_o4_fields () =
  let db = profile_db () in
  let build = Pipeline.compile ~profile:db Options.o4_pbo app_sources in
  let r = build.Pipeline.report in
  Alcotest.(check bool) "hlo report present" true (r.Pipeline.hlo <> None);
  Alcotest.(check bool) "loader stats present" true
    (r.Pipeline.loader_stats <> None);
  Alcotest.(check bool) "memory peak recorded" true (r.Pipeline.mem_peak > 0);
  Alcotest.(check bool) "cmo covers all lines" true
    (r.Pipeline.cmo_lines = r.Pipeline.total_lines);
  match r.Pipeline.hlo with
  | Some h ->
    Alcotest.(check bool) "inlining happened" true
      (match h.Hlo.inline_stats with
      | Some s -> s.Cmo_hlo.Inline.operations > 0
      | None -> false)
  | None -> ()

let test_par_speedup_edges () =
  (* Degenerate timing fields must not divide by zero: either side
     unmeasured pins the speedup at 1.0.  Start from a real report so
     the test tracks the record's shape. *)
  let r = (Pipeline.compile Options.o2 app_sources).Pipeline.report in
  let timed =
    {
      r with
      Pipeline.frontend_seconds = 1.2;
      hlo_seconds = 0.6;
      llo_seconds = 0.2;
      frontend_wall_seconds = 0.6;
      hlo_wall_seconds = 0.3;
      llo_wall_seconds = 0.1;
    }
  in
  Alcotest.(check (float 1e-9)) "cpu/wall" 2.0 (Pipeline.par_speedup timed);
  Alcotest.(check (float 1e-9)) "cpu sums" 2.0 (Pipeline.phase_cpu_seconds timed);
  Alcotest.(check (float 1e-9)) "wall sums" 1.0
    (Pipeline.phase_wall_seconds timed);
  let zero_wall =
    {
      timed with
      Pipeline.frontend_wall_seconds = 0.0;
      hlo_wall_seconds = 0.0;
      llo_wall_seconds = 0.0;
    }
  in
  Alcotest.(check (float 1e-9)) "zero wall -> 1.0" 1.0
    (Pipeline.par_speedup zero_wall);
  let zero_cpu =
    {
      timed with
      Pipeline.frontend_seconds = 0.0;
      hlo_seconds = 0.0;
      llo_seconds = 0.0;
    }
  in
  Alcotest.(check (float 1e-9)) "zero cpu -> 1.0" 1.0
    (Pipeline.par_speedup zero_cpu)

let test_report_selective_fields () =
  let db = profile_db () in
  let build =
    Pipeline.compile ~profile:db (Options.o4_pbo_selective 25.0) app_sources
  in
  let r = build.Pipeline.report in
  Alcotest.(check bool) "selection recorded" true (r.Pipeline.selection <> None);
  Alcotest.(check bool) "cmo lines a strict subset" true
    (r.Pipeline.cmo_lines < r.Pipeline.total_lines)

let test_instrumented_build_behaviour () =
  let expected = reference () in
  let build = Pipeline.compile Options.instrumented app_sources in
  Alcotest.(check bool) "manifest present" true (build.Pipeline.manifest <> None);
  let outcome = Pipeline.run build in
  Alcotest.(check int64) "+I preserves results" expected.Interp.ret outcome.Vm.ret;
  Alcotest.(check bool) "+I counts probes" true (outcome.Vm.probes <> [])

let test_train_produces_counts () =
  let db = profile_db () in
  Alcotest.(check bool) "db has counts" true (Db.total db > 0.0)

let test_duplicate_module_names_rejected () =
  let sources =
    [
      { Pipeline.name = "dup"; text = "func main() { return 1; }" };
      { Pipeline.name = "dup"; text = "func f() { return 2; }" };
    ]
  in
  Alcotest.(check bool) "duplicate names rejected" true
    (try
       ignore (Pipeline.frontend sources);
       false
     with Pipeline.Compile_error msg ->
       let contains s sub =
         let sl = String.length sub and l = String.length s in
         let rec go i = i + sl <= l && (String.sub s i sl = sub || go (i + 1)) in
         go 0
       in
       contains msg "dup")

(* ---------- parallel code generation ---------- *)

let test_parallel_codegen_bit_identical () =
  let db = profile_db () in
  let image_with jobs =
    let options = { Options.o4_pbo with Options.jobs } in
    (Pipeline.compile ~profile:db options app_sources).Pipeline.image
  in
  let seq = image_with 1 in
  let par = image_with 4 in
  Alcotest.(check bool) "identical machine code" true
    (seq.Cmo_link.Image.code = par.Cmo_link.Image.code);
  Alcotest.(check (list (triple string int int))) "identical layout"
    seq.Cmo_link.Image.funcs par.Cmo_link.Image.funcs

let test_parallel_codegen_correct () =
  let db = profile_db () in
  ignore
    (check_level
       { Options.o4_pbo with Options.jobs = 4 }
       (Some db))

(* ---------- explicit CMO module sets (isolation axis) ---------- *)

let test_explicit_cmo_set_correct () =
  let db = profile_db () in
  List.iter
    (fun subset ->
      let options = { Options.o4_pbo with Options.cmo_modules = Some subset } in
      ignore (check_level options (Some db)))
    [
      [ "kernel_mod" ];
      [ "main_mod"; "stats_mod" ];
      [ "main_mod"; "kernel_mod"; "stats_mod"; "error_mod" ];
      [];
    ]

let test_explicit_cmo_set_overrides_selectivity () =
  let db = profile_db () in
  let options =
    { (Options.o4_pbo_selective 50.0) with
      Options.cmo_modules = Some [ "error_mod" ] }
  in
  let build = Pipeline.compile ~profile:db options app_sources in
  (* Only error_mod's lines are in the CMO set. *)
  Alcotest.(check bool) "tiny CMO set" true
    (build.Pipeline.report.Pipeline.cmo_lines
     < build.Pipeline.report.Pipeline.total_lines / 2)

(* ---------- tiered (multi-layered) selectivity ---------- *)

let test_tiered_correct () =
  let db = profile_db () in
  ignore (check_level (Options.o4_pbo_tiered 25.0) (Some db))

let test_tiered_reports_three_layers () =
  let db = profile_db () in
  let build =
    Pipeline.compile ~profile:db (Options.o4_pbo_tiered 25.0) app_sources
  in
  let r = build.Pipeline.report in
  Alcotest.(check bool) "has CMO lines" true (r.Pipeline.cmo_lines > 0);
  (* error_mod never executes on the training input (40 iterations
     never overflow), so the tiered build must classify it cold. *)
  Alcotest.(check bool) "has cold lines" true (r.Pipeline.cold_lines > 0);
  Alcotest.(check int) "layers partition the program" r.Pipeline.total_lines
    (r.Pipeline.cmo_lines + r.Pipeline.warm_lines + r.Pipeline.cold_lines)

let test_tiered_cold_code_still_correct () =
  (* Run on an input that DOES hit the cold tier: the minimally
     compiled overflow path must still behave identically. *)
  let db = profile_db () in
  ignore (check_level ~input:[| 100L |] (Options.o4_pbo_tiered 25.0) (Some db))

let test_untiered_has_no_cold_lines () =
  let db = profile_db () in
  let build =
    Pipeline.compile ~profile:db (Options.o4_pbo_selective 25.0) app_sources
  in
  Alcotest.(check int) "no cold tier" 0
    build.Pipeline.report.Pipeline.cold_lines

(* ---------- build system ---------- *)

let with_workspace f =
  Helpers.with_dir ~prefix:"cmo_ws" (fun dir -> f (Buildsys.create ~dir ()))

let test_buildsys_full_then_null_build () =
  with_workspace (fun ws ->
      let first = Buildsys.build ws Options.o2 app_sources in
      Alcotest.(check int) "all compiled" 4
        (List.length first.Buildsys.recompiled);
      let second = Buildsys.build ws Options.o2 app_sources in
      Alcotest.(check int) "nothing recompiled" 0
        (List.length second.Buildsys.recompiled);
      Alcotest.(check int) "all reused" 4 (List.length second.Buildsys.reused);
      let expected = reference () in
      let o = Pipeline.run second.Buildsys.build in
      Alcotest.(check int64) "null build runs right" expected.Interp.ret o.Vm.ret)

let test_buildsys_incremental_change () =
  with_workspace (fun ws ->
      ignore (Buildsys.build ws Options.o2 app_sources);
      let changed =
        List.map
          (fun (s : Pipeline.source) ->
            if s.Pipeline.name = "error_mod" then
              {
                s with
                Pipeline.text =
                  {|
                  func overflow_handler(v) {
                    print(888888);
                    var r = v;
                    while (r > 500) { r = r / 3; }
                    return r;
                  }
                  |};
              }
            else s)
          app_sources
      in
      let rebuilt = Buildsys.build ws Options.o2 changed in
      Alcotest.(check (list string)) "only the changed module" [ "error_mod" ]
        rebuilt.Buildsys.recompiled;
      (* The rebuilt program must match the interpreter on the new
         sources. *)
      let expected = Interp.run (Pipeline.frontend changed) in
      let o = Pipeline.run rebuilt.Buildsys.build in
      Alcotest.(check int64) "rebuild correct" expected.Interp.ret o.Vm.ret)

let test_buildsys_cmo_mode () =
  with_workspace (fun ws ->
      let db = profile_db () in
      let first = Buildsys.build ~profile:db ws Options.o4_pbo app_sources in
      let expected = reference () in
      let o = Pipeline.run first.Buildsys.build in
      Alcotest.(check int64) "CMO from disk objects" expected.Interp.ret o.Vm.ret;
      (* IL objects are reused across builds; CMO re-runs at link. *)
      let second = Buildsys.build ~profile:db ws Options.o4_pbo app_sources in
      Alcotest.(check int) "IL objects reused" 4
        (List.length second.Buildsys.reused))

let test_buildsys_level_switch_recompiles () =
  with_workspace (fun ws ->
      ignore (Buildsys.build ws Options.o2 app_sources);
      (* Switching to CMO needs IL payloads: everything recompiles. *)
      let cmo = Buildsys.build ws Options.o4 app_sources in
      Alcotest.(check int) "all recompiled for CMO" 4
        (List.length cmo.Buildsys.recompiled))

let test_buildsys_clean () =
  with_workspace (fun ws ->
      ignore (Buildsys.build ws Options.o2 app_sources);
      Buildsys.clean ws;
      let again = Buildsys.build ws Options.o2 app_sources in
      Alcotest.(check int) "clean forces rebuild" 4
        (List.length again.Buildsys.recompiled))

(* ---------- bug isolation ---------- *)

let test_isolate_modules_synthetic () =
  (* The "bug" appears exactly when modules b and d are both in the
     CMO set — the paper's several-modules-needed case. *)
  let compile ~cmo_modules = cmo_modules in
  let check set =
    if List.mem "b" set && List.mem "d" set then Isolate.Bad "boom"
    else Isolate.Good
  in
  match
    Isolate.isolate_modules ~compile ~check ~modules:[ "a"; "b"; "c"; "d"; "e" ]
  with
  | Some (reduced, "boom") ->
    Alcotest.(check (list string)) "minimal pair found" [ "b"; "d" ]
      (List.sort compare reduced)
  | Some _ -> Alcotest.fail "wrong evidence"
  | None -> Alcotest.fail "failure not reproduced"

let test_isolate_modules_good_program () =
  let compile ~cmo_modules = cmo_modules in
  let check _ = Isolate.Good in
  Alcotest.(check bool) "no failure, no isolation" true
    (Isolate.isolate_modules ~compile ~check ~modules:[ "a"; "b" ] = None)

let test_isolate_operation_limit_synthetic () =
  (* Operation 7 is the culprit: builds with limit >= 7 fail. *)
  let compile ~limit = limit in
  let check limit = if limit >= 7 then Isolate.Bad limit else Isolate.Good in
  match Isolate.isolate_operation_limit ~compile ~check ~max_limit:1000 with
  | Some (7, _) -> ()
  | Some (n, _) -> Alcotest.failf "found %d instead of 7" n
  | None -> Alcotest.fail "not found"

let test_isolate_operation_limit_never_fails () =
  let compile ~limit = limit in
  let check _ = Isolate.Good in
  Alcotest.(check bool) "no bug, no blame" true
    (Isolate.isolate_operation_limit ~compile ~check ~max_limit:100 = None)

let test_isolate_with_real_pipeline () =
  (* Integration: binary search over the real inline operation limit.
     There is no actual miscompile, so define "failure" as "the image
     has fewer dynamic calls than the uninlined build" — monotone in
     the limit, and exercises the full compile-at-limit plumbing. *)
  let db = profile_db () in
  let baseline_calls =
    let build =
      Pipeline.compile ~profile:db
        { Options.o4_pbo with Options.inline_limit = Some 0 }
        app_sources
    in
    (Pipeline.run build).Vm.calls
  in
  let compile ~limit =
    let build =
      Pipeline.compile ~profile:db
        { Options.o4_pbo with Options.inline_limit = Some limit }
        app_sources
    in
    (Pipeline.run build).Vm.calls
  in
  let check calls =
    if calls < baseline_calls then Isolate.Bad calls else Isolate.Good
  in
  match Isolate.isolate_operation_limit ~compile ~check ~max_limit:64 with
  | Some (n, _) ->
    Alcotest.(check bool) "first effective inline found" true (n >= 1 && n <= 64)
  | None -> Alcotest.fail "inlining never changed call counts"

let suite =
  [
    ("O1 correct", `Quick, test_o1_correct);
    ("O2 correct", `Quick, test_o2_correct);
    ("O2+P correct", `Quick, test_o2_pbo_correct);
    ("O4 correct", `Quick, test_o4_correct);
    ("O4+P correct", `Quick, test_o4_pbo_correct);
    ("O4+P selective correct", `Quick, test_o4_pbo_selective_correct);
    ("correct on unseen inputs", `Quick, test_levels_correct_on_other_input);
    ("O4+P faster than O2", `Quick, test_o4_pbo_faster_than_o2);
    ("O2 not slower than O1", `Quick, test_o2_faster_than_o1);
    ("O4+P removes calls", `Quick, test_o4_pbo_fewer_calls);
    ("report O4 fields", `Quick, test_report_o4_fields);
    ("report selective fields", `Quick, test_report_selective_fields);
    ("par_speedup edge cases", `Quick, test_par_speedup_edges);
    ("instrumented build behaviour", `Quick, test_instrumented_build_behaviour);
    ("training produces counts", `Quick, test_train_produces_counts);
    ("duplicate module names", `Quick, test_duplicate_module_names_rejected);
    ("parallel codegen bit-identical", `Quick, test_parallel_codegen_bit_identical);
    ("parallel codegen correct", `Quick, test_parallel_codegen_correct);
    ("explicit CMO set correct", `Quick, test_explicit_cmo_set_correct);
    ("explicit CMO set wins", `Quick, test_explicit_cmo_set_overrides_selectivity);
    ("tiered correct", `Quick, test_tiered_correct);
    ("tiered three layers", `Quick, test_tiered_reports_three_layers);
    ("tiered cold path correct", `Quick, test_tiered_cold_code_still_correct);
    ("untiered no cold tier", `Quick, test_untiered_has_no_cold_lines);
    ("buildsys full then null build", `Quick, test_buildsys_full_then_null_build);
    ("buildsys incremental change", `Quick, test_buildsys_incremental_change);
    ("buildsys CMO mode", `Quick, test_buildsys_cmo_mode);
    ("buildsys level switch", `Quick, test_buildsys_level_switch_recompiles);
    ("buildsys clean", `Quick, test_buildsys_clean);
    ("isolate modules (synthetic)", `Quick, test_isolate_modules_synthetic);
    ("isolate modules (good program)", `Quick, test_isolate_modules_good_program);
    ("isolate operation (synthetic)", `Quick, test_isolate_operation_limit_synthetic);
    ("isolate operation (never fails)", `Quick, test_isolate_operation_limit_never_fails);
    ("isolate via real pipeline", `Quick, test_isolate_with_real_pipeline);
  ]
