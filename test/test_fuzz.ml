(* Randomized differential testing.

   Three layers:
   - random arithmetic programs: expression trees rendered to MiniC,
     compiled through the full backend, executed on the VM, compared
     against the reference interpreter;
   - random whole programs: workload-generator output over random
     seeds, compiled at +O4 +P (the most aggressive configuration) and
     compared against the interpreter;
   - random loader traffic: arbitrary acquire/release/mutate/unload
     sequences against the NAIM loader, checking the accounting and
     the code's integrity afterwards. *)

module Interp = Cmo_il.Interp
module Func = Cmo_il.Func
module Ilmod = Cmo_il.Ilmod
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Genprog = Cmo_workload.Genprog
module Vm = Cmo_vm.Vm
module Loader = Cmo_naim.Loader
module Memstats = Cmo_naim.Memstats

(* ---------- random expressions ---------- *)

(* A QCheck generator of MiniC expression strings over the given
   atoms (variables, global reads, indexed array reads, call forms)
   and bounded constants.  Division and shifts are included
   deliberately: their edge cases (zero, negatives, large shift
   amounts) are where IL, interpreter and VM must agree exactly. *)
let gen_expr_over ?(depth = 4) atoms =
  let open QCheck.Gen in
  let var = oneofl atoms in
  let const = map Int64.to_string (map Int64.of_int (int_range (-100) 100)) in
  let rec expr n =
    if n = 0 then oneof [ var; const ]
    else
      frequency
        [
          (2, var);
          (1, const);
          ( 6,
            let* op =
              oneofl
                [ "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<<"; ">>";
                  "=="; "!="; "<"; "<="; ">"; ">="; "&&"; "||" ]
            in
            let* l = expr (n - 1) in
            let* r = expr (n - 1) in
            return (Printf.sprintf "(%s %s %s)" l op r) );
          ( 1,
            let* e = expr (n - 1) in
            return (Printf.sprintf "(-%s)" e) );
          ( 1,
            let* e = expr (n - 1) in
            return (Printf.sprintf "(!%s)" e) );
        ]
  in
  expr depth

let gen_expr = gen_expr_over [ "a"; "b"; "c" ]

let arbitrary_expr_program =
  QCheck.make
    ~print:(fun (e, a, b, c) -> Printf.sprintf "%s with a=%Ld b=%Ld c=%Ld" e a b c)
    QCheck.Gen.(
      let* e = gen_expr in
      let* a = map Int64.of_int (int_range (-1000) 1000) in
      let* b = map Int64.of_int (int_range (-1000) 1000) in
      let* c = map Int64.of_int (int_range (-1000) 1000) in
      return (e, a, b, c))

let compile_and_both_run src input =
  let modules = [ Cmo_frontend.Frontend.compile_exn ~module_name:"fz" src ] in
  let expected = Interp.run ~input modules in
  let build = Pipeline.compile_modules Options.o2 modules in
  let actual = Pipeline.run ~input build in
  (expected, actual)

let fuzz_expressions =
  QCheck.Test.make ~name:"random expressions: VM = interpreter" ~count:150
    arbitrary_expr_program (fun (e, a, b, c) ->
      let src =
        Printf.sprintf
          "func main() { var a = arg(0); var b = arg(1); var c = arg(2); return %s; }"
          e
      in
      let expected, actual = compile_and_both_run src [| a; b; c |] in
      Int64.equal expected.Interp.ret actual.Vm.ret)

(* The same expressions must also survive the full optimizer: compare
   +O1 (no scalar optimization) against +O2 (full pipeline) on the VM. *)
let fuzz_expressions_optimized =
  QCheck.Test.make ~name:"random expressions: O2 = O1" ~count:100
    arbitrary_expr_program (fun (e, a, b, c) ->
      let src =
        Printf.sprintf
          "func main() { var a = arg(0); var b = arg(1); var c = arg(2); return %s; }"
          e
      in
      let input = [| a; b; c |] in
      let run options =
        let modules = [ Cmo_frontend.Frontend.compile_exn ~module_name:"fz" src ] in
        (Pipeline.run ~input (Pipeline.compile_modules options modules)).Vm.ret
      in
      Int64.equal (run Options.o1) (run Options.o2))

(* ---------- random statement-level programs ---------- *)

(* Beyond pure expressions: programs with a scalar global, an array
   indexed by masked random expressions, helper-function calls (one of
   them mutating the global), prints, and bounded while/for loops.
   Every loop counts a fresh local down from a masked bound, so the
   generated programs always terminate. *)
let gen_stmt_program =
  let open QCheck.Gen in
  let fresh = ref 0 in
  let atoms =
    [ "a"; "b"; "c"; "g"; "arr[(a & 7)]"; "arr[(b & 7)]";
      "h1(a, b)"; "h2(c)" ]
  in
  let expr = gen_expr_over ~depth:3 atoms in
  let rec stmts depth n =
    if n = 0 then return ""
    else
      let* s = stmt depth in
      let* rest = stmts depth (n - 1) in
      return (s ^ "\n  " ^ rest)
  and stmt depth =
    let leaf =
      [
        ( 4,
          let* lhs = oneofl [ "a"; "b"; "c"; "g" ] in
          let* e = expr in
          return (Printf.sprintf "%s = %s;" lhs e) );
        ( 2,
          let* i = expr in
          let* e = expr in
          return (Printf.sprintf "arr[(%s) & 7] = %s;" i e) );
        ( 1,
          let* e = expr in
          return (Printf.sprintf "print(%s);" e) );
        ( 1,
          let* e = expr in
          return (Printf.sprintf "c = h1(%s, b);" e) );
      ]
    in
    let nested =
      [
        ( 2,
          let* cond = expr in
          let* t = stmts (depth - 1) 2 in
          let* f = stmts (depth - 1) 2 in
          return (Printf.sprintf "if (%s) { %s } else { %s }" cond t f) );
        ( 2,
          let* bound = expr in
          let* body = stmts (depth - 1) 2 in
          incr fresh;
          let i = Printf.sprintf "i%d" !fresh in
          return
            (Printf.sprintf
               "var %s = (%s) & 15; while (%s > 0) { %s = %s - 1; %s }" i
               bound i i i body) );
        ( 1,
          let* bound = expr in
          let* body = stmts (depth - 1) 2 in
          incr fresh;
          let j = Printf.sprintf "j%d" !fresh in
          return
            (Printf.sprintf
               "for (var %s = 0; %s < ((%s) & 7); %s = %s + 1) { %s }" j j
               bound j j body) );
      ]
    in
    frequency (if depth = 0 then leaf else leaf @ nested)
  in
  let* body = stmts 2 6 in
  return
    (Printf.sprintf
       "global g = 3;\n\
        global arr[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n\
        func h1(x, y) { return (x * 3) ^ (y + arr[x & 7]); }\n\
        static func h2(x) { g = g + 1; return x + g; }\n\
        func main() {\n\
       \  var a = arg(0); var b = arg(1); var c = arg(2);\n\
       \  %s\n\
       \  return (a ^ b) + (c ^ g) + arr[(a - b) & 7];\n\
        }\n"
       body)

let arbitrary_stmt_program =
  QCheck.make
    ~print:(fun (src, a, b, c) ->
      Printf.sprintf "%s\nwith a=%Ld b=%Ld c=%Ld" src a b c)
    QCheck.Gen.(
      let* src = gen_stmt_program in
      let* a = map Int64.of_int (int_range (-1000) 1000) in
      let* b = map Int64.of_int (int_range (-1000) 1000) in
      let* c = map Int64.of_int (int_range (-1000) 1000) in
      return (src, a, b, c))

(* The statement-level programs run through the most aggressive
   single-module configuration and must match the interpreter on both
   the return value and everything printed. *)
let fuzz_statement_programs =
  QCheck.Test.make ~name:"random statement programs: O2 = interpreter"
    ~count:80 arbitrary_stmt_program (fun (src, a, b, c) ->
      let input = [| a; b; c |] in
      let modules = [ Cmo_frontend.Frontend.compile_exn ~module_name:"fz" src ] in
      let expected = Interp.run ~input modules in
      let build = Pipeline.compile_modules Options.o2 modules in
      let actual = Pipeline.run ~input build in
      Int64.equal expected.Interp.ret actual.Vm.ret
      && expected.Interp.output = actual.Vm.output)

(* ---------- random whole programs ---------- *)

let config_of_seed seed = Genprog.fuzz_config ~name:"fuzz" seed

let fuzz_whole_programs =
  QCheck.Test.make ~name:"random programs: O4+P behaves like the interpreter"
    ~count:12
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let cfg = config_of_seed seed in
      let sources =
        List.map
          (fun (name, text) -> { Pipeline.name; text })
          (Genprog.generate cfg)
      in
      let input = Genprog.reference_input cfg in
      let expected = Interp.run ~input (Pipeline.frontend sources) in
      let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
      let build = Pipeline.compile ~profile:db Options.o4_pbo sources in
      let actual = Pipeline.run ~input build in
      Int64.equal expected.Interp.ret actual.Vm.ret
      && expected.Interp.output = actual.Vm.output)

let fuzz_whole_programs_tiered =
  QCheck.Test.make ~name:"random programs: tiered selective = interpreter"
    ~count:8
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let cfg = config_of_seed seed in
      let sources =
        List.map
          (fun (name, text) -> { Pipeline.name; text })
          (Genprog.generate cfg)
      in
      let input = Genprog.reference_input cfg in
      let expected = Interp.run ~input (Pipeline.frontend sources) in
      let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
      let build =
        Pipeline.compile ~profile:db
          (Options.o4_pbo_tiered (float_of_int (5 + (seed mod 30))))
          sources
      in
      let actual = Pipeline.run ~input build in
      Int64.equal expected.Interp.ret actual.Vm.ret
      && expected.Interp.output = actual.Vm.output)

(* ---------- per-pass differential on realistic modules ---------- *)

(* Apply one scalar pass in isolation to every function of a
   generated program and require unchanged behaviour — pinpointing a
   faulty pass directly, where the whole-pipeline fuzz would only say
   "something broke". *)
let passes : (string * (Cmo_il.Func.t -> int)) list =
  [
    ("constprop", Cmo_hlo.Constprop.run);
    ("copyprop", Cmo_hlo.Copyprop.run);
    ("valnum", Cmo_hlo.Valnum.run);
    ("dce", Cmo_hlo.Dce.run);
    ("licm", Cmo_hlo.Licm.run);
    ("unroll", fun f -> Cmo_hlo.Unroll.run f);
    ("cfg", fun f -> if Cmo_hlo.Cfg.simplify f then 1 else 0);
    ("layout", fun f -> if Cmo_llo.Layout.run f then 1 else 0);
  ]

let fuzz_single_pass =
  QCheck.Test.make ~name:"random programs: each pass alone preserves behaviour"
    ~count:16
    (QCheck.make
       ~print:(fun (seed, p) -> Printf.sprintf "seed %d, pass %s" seed (fst (List.nth passes p)))
       QCheck.Gen.(
         let* seed = int_range 1 10_000 in
         let* p = int_range 0 (List.length passes - 1) in
         return (seed, p)))
    (fun (seed, p) ->
      let pass_name, pass = List.nth passes p in
      ignore pass_name;
      let cfg = config_of_seed seed in
      let sources =
        List.map
          (fun (name, text) -> { Pipeline.name; text })
          (Genprog.generate cfg)
      in
      let input = Genprog.reference_input cfg in
      let baseline = Pipeline.frontend sources in
      let transformed = Pipeline.frontend sources in
      (* Annotate with a profile so layout has frequencies to chew on. *)
      let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
      ignore (Cmo_profile.Correlate.annotate db transformed);
      List.iter
        (fun (m : Ilmod.t) ->
          List.iter (fun f -> ignore (pass f)) m.Ilmod.funcs)
        transformed;
      let expected = Interp.run ~input baseline in
      let got = Interp.run ~input transformed in
      Int64.equal expected.Interp.ret got.Interp.ret
      && expected.Interp.output = got.Interp.output
      && Cmo_il.Verify.check_program transformed = [])

(* ---------- random loader traffic ---------- *)

type loader_op = Acquire of int | Release | Mutate | Unload_all

let arbitrary_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (5, map (fun i -> Acquire i) (int_range 0 9));
        (4, return Release);
        (2, return Mutate);
        (1, return Unload_all);
      ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Acquire i -> Printf.sprintf "A%d" i
             | Release -> "R"
             | Mutate -> "M"
             | Unload_all -> "U")
           ops))
    (list_size (int_range 5 60) op)

(* A module with ten distinctive functions to push through the
   loader. *)
let fuzz_module () =
  let m = Ilmod.create "fz" in
  for i = 0 to 9 do
    let f =
      Func.create ~name:(Printf.sprintf "fz_f%d" i) ~arity:1
        ~linkage:Func.Exported
    in
    let r = Func.new_reg f in
    let b =
      Func.add_block f
        [ Cmo_il.Instr.Binop
            (Cmo_il.Instr.Mul, r, Cmo_il.Instr.Reg 0,
             Cmo_il.Instr.Imm (Int64.of_int (i + 2))) ]
        (Cmo_il.Instr.Ret (Some (Cmo_il.Instr.Reg r)))
    in
    f.Func.entry <- b.Func.label;
    f.Func.src_lines <- 2;
    Ilmod.add_func m f
  done;
  m

let fuzz_loader_traffic =
  QCheck.Test.make ~name:"loader: random traffic keeps accounting sound"
    ~count:60 arbitrary_ops (fun ops ->
      let mem = Memstats.create () in
      let loader =
        Loader.create
          { Loader.default_config with
            Loader.machine_memory = 20_000;
            forced_level = Some Loader.Offloading }
          mem
      in
      Loader.register_module loader (fuzz_module ());
      let pinned = ref [] in  (* stack of names we hold *)
      let expected_growth = Hashtbl.create 4 in
      List.iter
        (fun op ->
          match op with
          | Acquire i ->
            let name = Printf.sprintf "fz_f%d" i in
            ignore (Loader.acquire loader name);
            pinned := name :: !pinned
          | Release -> (
            match !pinned with
            | name :: rest ->
              Loader.release loader name;
              pinned := rest
            | [] -> ())
          | Mutate -> (
            match !pinned with
            | name :: _ ->
              let f = Loader.acquire loader name in
              let r = Func.new_reg f in
              ignore
                (Func.add_block f
                   [ Cmo_il.Instr.Move (r, Cmo_il.Instr.Imm 7L) ]
                   (Cmo_il.Instr.Ret None));
              Loader.update loader f;
              Loader.release loader name;
              Hashtbl.replace expected_growth name ()
            | [] -> ())
          | Unload_all -> Loader.unload_all loader)
        ops;
      (* Drain pins and unload everything. *)
      List.iter (fun name -> Loader.release loader name) !pinned;
      Loader.unload_all loader;
      (* Accounting: no expanded IR left, nothing negative. *)
      let sound =
        Memstats.resident_of mem Memstats.Ir_expanded = 0
        && Memstats.resident mem >= 0
      in
      (* Integrity: every function still decodes with the right name
         and a sane block count. *)
      let intact =
        List.for_all
          (fun name ->
            Loader.with_func loader name (fun f ->
                f.Func.name = name && List.length f.Func.blocks >= 1))
          (Loader.func_names loader)
      in
      Loader.close loader;
      sound && intact)

(* ---------- structural properties ---------- *)

let fuzz_cluster_permutation =
  QCheck.Test.make ~name:"cluster: any weights produce a permutation" ~count:100
    QCheck.(pair (int_range 1 12) (small_list (pair (pair small_nat small_nat) (float_range 0.0 100.0))))
    (fun (n, raw_weights) ->
      let names = List.init n (fun i -> Printf.sprintf "f%d" i) in
      let weights =
        List.map
          (fun ((a, b), w) ->
            ((Printf.sprintf "f%d" (a mod (n + 2)), Printf.sprintf "f%d" (b mod (n + 2))), w))
          raw_weights
      in
      let order = Cmo_link.Cluster.order ~names ~weights in
      List.sort compare order = List.sort compare names)

let fuzz_selectivity_monotone =
  QCheck.Test.make ~name:"selectivity: larger percent selects a superset"
    ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let cfg = config_of_seed seed in
      let sources =
        List.map
          (fun (name, text) -> { Pipeline.name; text })
          (Genprog.generate cfg)
      in
      let modules = Pipeline.frontend sources in
      let db = Pipeline.train ~inputs:[ Genprog.training_input cfg ] sources in
      ignore (Cmo_profile.Correlate.annotate db modules);
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      let sel p = Cmo_hlo.Selectivity.select ~percent:p modules in
      let s5 = sel 5.0 and s20 = sel 20.0 and s100 = sel 100.0 in
      subset s5.Cmo_hlo.Selectivity.selected_sites
        s20.Cmo_hlo.Selectivity.selected_sites
      && subset s20.Cmo_hlo.Selectivity.selected_sites
           s100.Cmo_hlo.Selectivity.selected_sites
      && subset s5.Cmo_hlo.Selectivity.cmo_modules
           s20.Cmo_hlo.Selectivity.cmo_modules
      && subset s20.Cmo_hlo.Selectivity.cmo_modules
           s100.Cmo_hlo.Selectivity.cmo_modules)

(* ---------- decoder robustness ---------- *)

(* Malformed bytes must raise [Corrupt] (or produce a value), never
   crash, loop, or allocate absurdly.  Exercises the same decoders
   that parse object files and the NAIM repository. *)
let fuzz_decoders_robust =
  QCheck.Test.make ~name:"decoders: garbage in, Corrupt (not crash) out"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 300))
    (fun bytes ->
      let safe f =
        match f () with
        | _ -> true
        | exception Cmo_support.Codec.Reader.Corrupt _ -> true
        | exception Invalid_argument _ -> true
      in
      safe (fun () -> Cmo_il.Ilcodec.decode_module bytes)
      && safe (fun () -> Cmo_link.Objfile.decode bytes)
      && safe (fun () -> Cmo_llo.Mach.decode_func bytes))

(* Truncations of VALID encodings are the realistic corruption (torn
   writes); every prefix must be rejected cleanly too. *)
let fuzz_truncated_valid_encoding =
  QCheck.Test.make ~name:"decoders: every truncation of a valid module rejected"
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1000))
    (fun cut ->
      let m =
        Cmo_frontend.Frontend.compile_exn ~module_name:"t"
          "global g[4] = {1,2,3,4}; func main() { return g[2]; }"
      in
      let bytes = Cmo_il.Ilcodec.encode_module m in
      let n = String.length bytes in
      let cut = cut mod n in
      let truncated = String.sub bytes 0 cut in
      match Cmo_il.Ilcodec.decode_module truncated with
      | _ -> false  (* a strict prefix can never be a complete module *)
      | exception Cmo_support.Codec.Reader.Corrupt _ -> true
      | exception Invalid_argument _ -> true)

let suite =
  [
    Helpers.to_alcotest fuzz_expressions;
    Helpers.to_alcotest fuzz_expressions_optimized;
    Helpers.to_alcotest fuzz_statement_programs;
    Helpers.to_alcotest fuzz_whole_programs;
    Helpers.to_alcotest fuzz_whole_programs_tiered;
    Helpers.to_alcotest fuzz_single_pass;
    Helpers.to_alcotest fuzz_loader_traffic;
    Helpers.to_alcotest fuzz_cluster_permutation;
    Helpers.to_alcotest fuzz_selectivity_monotone;
    Helpers.to_alcotest fuzz_decoders_robust;
    Helpers.to_alcotest fuzz_truncated_valid_encoding;
  ]
