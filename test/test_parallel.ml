(* The parallel pipeline's headline invariant, tested differentially:
   whatever the worker count, a build produces byte-identical images,
   objects and — when a store is attached — identical cache bytes on
   disk.  Plus the Parwork executor itself, the store under domain
   concurrency, and the accountant-merge model. *)

module Parwork = Cmo_driver.Parwork
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Store = Cmo_cache.Store
module Invalidate = Cmo_cache.Invalidate
module Memstats = Cmo_naim.Memstats
module Genprog = Cmo_workload.Genprog
module Suite = Cmo_workload.Suite
module Ilmod = Cmo_il.Ilmod
module Vm = Cmo_vm.Vm

(* ---------- scaffolding ---------- *)

let with_dir f = Helpers.with_dir ~prefix:"cmo_par" f
let same_store_bytes = Helpers.same_store_bytes
let same_build = Helpers.same_build

(* ---------- the fixture programs ---------- *)

(* Two weakly-connected components: {pm_a, pm_b} live via main,
   {pm_c, pm_d} exported library code coupled by a shared global. *)
let prog_two_components : Pipeline.source list =
  [
    {
      Pipeline.name = "pm_a";
      text =
        {|
        func main() {
          var s = 0;
          var i = 0;
          while (i < 40) { s = s + mix(i, s); i = i + 1; }
          print(s);
          return s & 255;
        }
        |};
    };
    {
      Pipeline.name = "pm_b";
      text =
        {|
        static func twist(v) { return v * 5 + 1; }
        func mix(x, seed) { return (seed / 3) + twist(x); }
        |};
    };
    {
      Pipeline.name = "pm_c";
      text =
        {|
        extern global tally;
        func report(v) { tally = tally + pack(v); return tally; }
        |};
    };
    {
      Pipeline.name = "pm_d";
      text =
        {|
        global tally = 0;
        func pack(v) { return v * 7; }
        |};
    };
  ]

(* A rootless component rides along: pm_dead's functions are all
   [static] and unreachable, so the whole-set run's IPA deletes them
   while the component-parallel run takes the empty-funcs shortcut —
   both must land on the same bytes. *)
let prog_with_rootless : Pipeline.source list =
  prog_two_components
  @ [
      {
        Pipeline.name = "pm_dead";
        text =
          {|
          static func helper(x) { return x * 3 + 1; }
          static func orphan(x) { return helper(x) + helper(x + 1); }
          |};
      };
    ]

(* One deep component: a cross-module inline chain whose result feeds
   a constant-foldable global — the shapes CMO actually rewrites. *)
let prog_chain : Pipeline.source list =
  [
    {
      Pipeline.name = "ch_main";
      text =
        {|
        func main() {
          var s = 0;
          var i = 0;
          while (i < 30) { s = (s + stage1(i, s)) & 65535; i = i + 1; }
          print(s);
          return s & 255;
        }
        |};
    };
    {
      Pipeline.name = "ch_mid";
      text =
        {|
        extern global knob;
        func stage1(x, seed) { return stage2(x + knob, seed) + 1; }
        |};
    };
    {
      Pipeline.name = "ch_leaf";
      text =
        {|
        global knob = 4;
        static func core(v) { return v * 9 + 2; }
        func stage2(x, seed) { return (core(x) + seed) & 65535; }
        |};
    };
  ]

(* The gcc-like generated workload, scaled for CI and sharded so the
   link step sees several independent components. *)
let workload_listing =
  lazy (Genprog.sharded (Genprog.scale (Suite.find "gcc") 0.25) ~shards:2)

let workload_sources () =
  List.map
    (fun (name, text) -> { Pipeline.name; text })
    (Lazy.force workload_listing)

let workload_cmo_modules () =
  List.filter_map
    (fun (n, _) -> if String.equal n "main_mod" then None else Some n)
    (Lazy.force workload_listing)

(* ---------- Parwork itself ---------- *)

let test_parwork_map_order () =
  List.iter
    (fun jobs ->
      let input = List.init 37 Fun.id in
      let out =
        Parwork.with_pool ~jobs (fun pool ->
            Parwork.map pool (fun i -> (i * i) + 1) input)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "order kept at jobs=%d" jobs)
        (List.map (fun i -> (i * i) + 1) input)
        out)
    [ 1; 2; 4 ]

exception Boom of int

let test_parwork_first_error_by_input_order () =
  List.iter
    (fun jobs ->
      match
        Parwork.with_pool ~jobs (fun pool ->
            Parwork.map pool
              (fun i -> if i >= 5 then raise (Boom i) else i)
              (List.init 20 Fun.id))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "first failing input wins at jobs=%d" jobs)
          5 i)
    [ 1; 2; 4 ]

let test_parwork_submit_await () =
  Parwork.with_pool ~jobs:3 (fun pool ->
      let futures = List.init 10 (fun i -> Parwork.submit pool (fun () -> i * 2)) in
      (* Await out of submission order on purpose. *)
      List.iter
        (fun (i, f) ->
          Alcotest.(check int) "future value" (i * 2) (Parwork.await f))
        (List.rev (List.mapi (fun i f -> (i, f)) futures));
      Alcotest.(check int) "worker count" 3 (Parwork.jobs pool))

(* ---------- the sharded workload really decomposes ---------- *)

let test_sharded_workload_components () =
  let sources = workload_sources () in
  let cmo = workload_cmo_modules () in
  let modules =
    List.filter
      (fun (m : Ilmod.t) -> List.mem m.Ilmod.mname cmo)
      (Pipeline.frontend sources)
  in
  let comps = Invalidate.components (Invalidate.compute modules) in
  (* Each shard may decompose further internally, but no component
     ever spans two shards, and the shards split symmetrically. *)
  let shard_of name =
    (* "s<k>m###" or "s<k>_main_mod" → k *)
    let i = ref 1 in
    while !i < String.length name
          && name.[!i] >= '0' && name.[!i] <= '9' do incr i done;
    String.sub name 0 !i
  in
  let shards_hit comp =
    List.sort_uniq compare (List.map shard_of comp)
  in
  List.iter
    (fun comp ->
      Alcotest.(check int) "component confined to one shard" 1
        (List.length (shards_hit comp)))
    comps;
  Alcotest.(check int) "both shards represented" 2
    (List.length (List.sort_uniq compare (List.concat_map shards_hit comps)));
  Alcotest.(check bool) "shards decompose symmetrically" true
    (List.length comps mod 2 = 0 && List.length comps >= 2)

(* ---------- the determinism matrix ---------- *)

let build ?profile ?cache options jobs sources =
  Pipeline.compile ?profile ?cache { options with Options.jobs } sources

let with_closed_store dir f =
  let store = Store.open_ ~dir () in
  Fun.protect ~finally:(fun () -> Store.close store) (fun () -> f store)

(* One (program, options) cell: j=4 must reproduce the j=1 oracle —
   uncached, then cold-cached (comparing the resulting store bytes
   too), then warm-cached over the j=1-built store. *)
let check_cell name ?profile options sources =
  let b1 = build ?profile options 1 sources in
  let b4 = build ?profile options 4 sources in
  same_build (name ^ " uncached j4=j1") b1 b4;
  with_dir (fun d1 ->
      with_dir (fun d4 ->
          let c1 =
            with_closed_store d1 (fun store ->
                build ?profile ~cache:store options 1 sources)
          in
          let c4 =
            with_closed_store d4 (fun store ->
                build ?profile ~cache:store options 4 sources)
          in
          same_build (name ^ " cold cached j4=j1") c1 c4;
          same_build (name ^ " cached=uncached") b1 c4;
          Alcotest.(check bool) (name ^ ": store bytes j4=j1") true
            (same_store_bytes d1 d4);
          (* Warm rebuild at j=4 against the store the j=1 build
             wrote, and vice versa: artifacts are interchangeable. *)
          let w41 =
            with_closed_store d1 (fun store ->
                build ?profile ~cache:store options 4 sources)
          in
          let w14 =
            with_closed_store d4 (fun store ->
                build ?profile ~cache:store options 1 sources)
          in
          same_build (name ^ " warm j4 over j1 store") c1 w41;
          same_build (name ^ " warm j1 over j4 store") c1 w14;
          Alcotest.(check bool) (name ^ ": store bytes after warm") true
            (same_store_bytes d1 d4)))

let matrix_programs () =
  [
    ("two-components", prog_two_components, None);
    ("rootless-member", prog_with_rootless, None);
    ("chain", prog_chain, None);
    ("gcc-sharded", workload_sources (), Some (workload_cmo_modules ()));
  ]

let test_determinism_o2 () =
  List.iter
    (fun (name, sources, _) -> check_cell (name ^ " +O2") Options.o2 sources)
    (matrix_programs ())

let test_determinism_o4 () =
  List.iter
    (fun (name, sources, cmo) ->
      let options = { Options.o4 with Options.cmo_modules = cmo } in
      check_cell (name ^ " +O4") options sources)
    (matrix_programs ())

let test_determinism_o4_pbo () =
  List.iter
    (fun (name, sources, cmo) ->
      let profile = Pipeline.train sources in
      let options = { Options.o4_pbo with Options.cmo_modules = cmo } in
      check_cell (name ^ " +O4+P") ~profile options sources)
    (matrix_programs ())

let test_parallel_build_runs_right () =
  (* Not just identical bytes: the j=4 image behaves. *)
  let b = build Options.o4 4 prog_two_components in
  let o = Pipeline.run b in
  Alcotest.(check bool) "prints the accumulated sum" true
    (List.length o.Vm.output = 1);
  Alcotest.(check int) "workers recorded" 4
    b.Pipeline.report.Pipeline.workers_used

let test_incremental_edit_parallel () =
  (* An edit rebuilt at j=4 equals the same edit rebuilt at j=1,
     including which modules the usage report says were re-optimized. *)
  let original = prog_two_components in
  let edited =
    List.map
      (fun (s : Pipeline.source) ->
        if String.equal s.Pipeline.name "pm_d" then
          { s with Pipeline.text = {|
        global tally = 0;
        func pack(v) { return v * 31 + 1; }
        |} }
        else s)
      original
  in
  with_dir (fun d1 ->
      with_dir (fun d4 ->
          let cold dir jobs sources =
            with_closed_store dir (fun store ->
                build ~cache:store Options.o4 jobs sources)
          in
          ignore (cold d1 1 original);
          ignore (cold d4 4 original);
          let i1 = cold d1 1 edited in
          let i4 = cold d4 4 edited in
          same_build "edited j4=j1" i1 i4;
          Alcotest.(check bool) "store bytes after edit j4=j1" true
            (same_store_bytes d1 d4);
          let usage (b : Pipeline.build) =
            match b.Pipeline.report.Pipeline.cache with
            | Some c ->
              ( List.sort compare c.Pipeline.cmo_cached,
                List.sort compare c.Pipeline.cmo_reoptimized,
                c.Pipeline.hits, c.Pipeline.misses )
            | None -> Alcotest.fail "expected cache usage"
          in
          Alcotest.(check bool) "usage reports agree" true
            (usage i1 = usage i4);
          let _, reopt, _, _ = usage i4 in
          Alcotest.(check (list string)) "only the edited closure reran"
            [ "pm_c"; "pm_d" ] reopt))

(* ---------- property: random edits, random worker counts ---------- *)

let history_arb =
  QCheck.make
    ~print:(fun h ->
      String.concat ";"
        (List.map (fun (w, v, j) -> Printf.sprintf "%c=%d@j%d" w v j) h))
    QCheck.Gen.(
      list_size (int_range 1 4)
        (triple
           (map (fun b -> if b then 'b' else 'd') bool)
           (int_range 1 50) (int_range 1 4)))

(* prog_two_components with editable constants, mirroring
   test_cache's [app] but under varying worker counts. *)
let editable ~kb ~kd : Pipeline.source list =
  List.map
    (fun (s : Pipeline.source) ->
      match s.Pipeline.name with
      | "pm_b" ->
        {
          s with
          Pipeline.text =
            Printf.sprintf
              {|
              static func twist(v) { return v * %d + 1; }
              func mix(x, seed) { return (seed / 3) + twist(x); }
              |}
              kb;
        }
      | "pm_d" ->
        {
          s with
          Pipeline.text =
            Printf.sprintf
              {|
              global tally = 0;
              func pack(v) { return v * %d; }
              |}
              kd;
        }
      | _ -> s)
    prog_two_components

let test_random_edits_random_jobs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"random edit histories at random worker counts = sequential"
       ~count:10 history_arb (fun history ->
         with_dir (fun dir ->
             with_closed_store dir (fun store ->
                 let kb = ref 5 and kd = ref 7 in
                 ignore
                   (build ~cache:store Options.o4 1 (editable ~kb:!kb ~kd:!kd));
                 List.for_all
                   (fun (which, v, jobs) ->
                     if which = 'b' then kb := v else kd := v;
                     let sources = editable ~kb:!kb ~kd:!kd in
                     let cached = build ~cache:store Options.o4 jobs sources in
                     let fresh = build Options.o4 1 sources in
                     cached.Pipeline.image.Cmo_link.Image.code
                     = fresh.Pipeline.image.Cmo_link.Image.code
                     && cached.Pipeline.objects = fresh.Pipeline.objects
                     && (Pipeline.run cached).Vm.output
                        = (Pipeline.run fresh).Vm.output)
                   history))))

(* ---------- the store under domain concurrency ---------- *)

let test_store_concurrent_stress () =
  with_dir (fun dir ->
      let store = Store.open_ ~dir () in
      let domains = 4 and keys = 10 and rounds = 150 in
      let value d k r = Printf.sprintf "d%d-k%d-r%d" d k r in
      let worker d () =
        for r = 0 to rounds - 1 do
          let k = (r + d) mod keys in
          Store.add store (Printf.sprintf "k%d" k) (value d k r);
          match Store.find store (Printf.sprintf "k%d" ((k + 3) mod keys)) with
          | Some data ->
            (* Whatever we read is some complete write, never a torn
               or interleaved one. *)
            if
              not
                (String.length data > 2
                && data.[0] = 'd'
                && String.contains data 'k'
                && String.contains data 'r')
            then Alcotest.failf "torn read: %S" data
          | None -> ()
        done
      in
      let spawned =
        List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      let s = Store.stats store in
      Alcotest.(check int) "every key present" keys s.Store.entries;
      Alcotest.(check int) "every add counted" (domains * rounds)
        s.Store.stores;
      (* The index survives a round trip with everything intact. *)
      Store.close store;
      let store = Store.open_ ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          Alcotest.(check int) "entries persist" keys
            (Store.stats store).Store.entries;
          for k = 0 to keys - 1 do
            match Store.find store (Printf.sprintf "k%d" k) with
            | Some _ -> ()
            | None -> Alcotest.failf "k%d lost across reopen" k
          done))

let test_store_truncated_payload_recovery () =
  with_dir (fun dir ->
      let store = Store.open_ ~dir () in
      Store.add store "early" "first-bytes";
      Store.add store "late" (String.make 64 'z');
      Store.close store;
      (* A crash between the payload append and fsync: the second
         record is torn mid-frame but the index still names it.  On
         reopen the torn tail is truncated away, the stale entry
         degrades to a miss and the store keeps going. *)
      let first_record =
        Cmo_support.Fsio.frame_overhead + String.length "first-bytes"
      in
      Unix.truncate (Filename.concat dir "payload") (first_record + 7);
      let store = Store.open_ ~dir () in
      Fun.protect
        ~finally:(fun () -> Store.close store)
        (fun () ->
          Alcotest.(check (option string)) "prefix entry still readable"
            (Some "first-bytes") (Store.find store "early");
          Alcotest.(check (option string)) "truncated entry degrades to miss"
            None (Store.find store "late");
          Store.add store "late" "replacement";
          Alcotest.(check (option string)) "store usable after recovery"
            (Some "replacement") (Store.find store "late");
          Alcotest.(check (option string)) "earlier entry unharmed"
            (Some "first-bytes") (Store.find store "early")))

(* ---------- the accountant merge model ---------- *)

let test_memstats_merge_single_worker_exact () =
  (* One worker's merged accountant must reproduce the sequential
     peaks exactly: the merge rebases the worker's peak on the
     destination's residency at merge time. *)
  let script m =
    Memstats.charge m Memstats.Ir_expanded 1000;
    Memstats.charge m Memstats.Llo 5000;
    Memstats.release m Memstats.Llo 5000;
    Memstats.charge m Memstats.Derived 300;
    Memstats.release m Memstats.Ir_expanded 400
  in
  let sequential = Memstats.create () in
  Memstats.charge sequential Memstats.Global 2000;
  script sequential;
  let main = Memstats.create () in
  Memstats.charge main Memstats.Global 2000;
  let worker = Memstats.create () in
  script worker;
  Memstats.merge main worker;
  Alcotest.(check int) "merged peak = sequential peak"
    (Memstats.peak sequential) (Memstats.peak main);
  Alcotest.(check int) "merged hlo peak = sequential hlo peak"
    (Memstats.peak_hlo sequential) (Memstats.peak_hlo main);
  Alcotest.(check int) "merged residency = sequential residency"
    (Memstats.resident sequential) (Memstats.resident main)

let test_memstats_merge_deterministic () =
  let mk charges =
    let m = Memstats.create () in
    List.iter (fun (c, n) -> Memstats.charge m c n) charges;
    m
  in
  let run () =
    let dst = mk [ (Memstats.Global, 100) ] in
    Memstats.merge dst (mk [ (Memstats.Ir_expanded, 700) ]);
    Memstats.merge dst (mk [ (Memstats.Ir_compacted, 50) ]);
    (Memstats.peak dst, Memstats.peak_hlo dst, Memstats.resident dst)
  in
  Alcotest.(check (triple int int int)) "merge order fixed = same result"
    (run ()) (run ())

let test_mem_peak_hlo_job_invariant () =
  (* Cached decomposable builds take the component path at every j,
     so the merged HLO peak is a build artifact like any other:
     independent of the worker count. *)
  with_dir (fun d1 ->
      with_dir (fun d4 ->
          let peak dir jobs =
            (with_closed_store dir (fun store ->
                 build ~cache:store Options.o4 jobs prog_two_components))
              .Pipeline.report.Pipeline.mem_peak_hlo
          in
          Alcotest.(check int) "mem_peak_hlo j4 = j1" (peak d1 1) (peak d4 4)))

let suite =
  [
    ("parwork map order", `Quick, test_parwork_map_order);
    ("parwork error order", `Quick, test_parwork_first_error_by_input_order);
    ("parwork submit/await", `Quick, test_parwork_submit_await);
    ("sharded workload components", `Quick, test_sharded_workload_components);
    ("determinism +O2", `Quick, test_determinism_o2);
    ("determinism +O4", `Slow, test_determinism_o4);
    ("determinism +O4+P", `Slow, test_determinism_o4_pbo);
    ("parallel build runs", `Quick, test_parallel_build_runs_right);
    ("incremental edit in parallel", `Quick, test_incremental_edit_parallel);
    test_random_edits_random_jobs;
    ("store concurrent stress", `Quick, test_store_concurrent_stress);
    ("store truncated payload", `Quick, test_store_truncated_payload_recovery);
    ("memstats merge exact", `Quick, test_memstats_merge_single_worker_exact);
    ("memstats merge deterministic", `Quick, test_memstats_merge_deterministic);
    ("mem_peak_hlo job-invariant", `Quick, test_mem_peak_hlo_job_invariant);
  ]
