(* The build server: wire-protocol round-trips (qcheck over every
   message shape), framing violations (torn, garbage, bit-flipped,
   short reads) through the CMR1 scan path, the scheduler's admission
   and fairness rules, Buildsys sessions, and an end-to-end daemon
   exercise over a real socket — byte-identity against a one-shot
   build, warm second request, per-request crash isolation, graceful
   shutdown. *)

module Fsio = Cmo_support.Fsio
module Options = Cmo_driver.Options
module Pipeline = Cmo_driver.Pipeline
module Buildsys = Cmo_driver.Buildsys
module Objfile = Cmo_link.Objfile
module Proto = Cmo_server.Proto
module Sched = Cmo_server.Sched
module Server = Cmo_server.Server
module Client = Cmo_server.Client
module Db = Cmo_profile.Db
module Ingest = Cmo_profile.Ingest
module Cohort = Cmo_profile.Cohort

let with_dir f = Helpers.with_dir ~prefix:"cmo_server" f

(* --- protocol round-trips ------------------------------------------ *)

let gen_string = QCheck.Gen.(string_size (0 -- 24))

let gen_source =
  QCheck.Gen.map2
    (fun name text -> { Pipeline.name; text })
    gen_string
    QCheck.Gen.(string_size (0 -- 80))

let gen_build_req =
  let open QCheck.Gen in
  let* tag = gen_string in
  let* level = oneofl [ Options.O1; Options.O2; Options.O4 ] in
  let* pbo = bool in
  let* jobs = 1 -- 8 in
  let* check = bool in
  let* fault = option gen_string in
  let* sources = list_size (0 -- 5) gen_source in
  return { Proto.tag; level; pbo; jobs; check; fault; sources }

let gen_request =
  let open QCheck.Gen in
  oneof
    [
      return Proto.Ping;
      return Proto.Stats;
      return Proto.Shutdown;
      map (fun b -> Proto.Build b) gen_build_req;
      map (fun key -> Proto.Cache_get { key }) gen_string;
      map2
        (fun key data -> Proto.Cache_put { key; data })
        gen_string
        (string_size (0 -- 80));
      map (fun shard -> Proto.Profile_put { shard }) (string_size (0 -- 80));
      map (fun current_fp -> Proto.Profile_get { current_fp }) gen_string;
      return Proto.Cohort_list;
      (let* cohort = gen_string in
       let* shards = list_size (0 -- 4) (string_size (0 -- 60)) in
       return (Proto.Cohort_ingest { cohort; shards }));
      (let* cohort = gen_string and* current_fp = gen_string in
       return (Proto.Cohort_pull { cohort; current_fp }));
      (let* base = gen_string and* canary = gen_string in
       let* percent = float_bound_inclusive 100.0 in
       let* threshold = float_bound_inclusive 1.0 in
       let* sources = list_size (0 -- 3) gen_source in
       return (Proto.Cohort_diff { base; canary; percent; threshold; sources }));
    ]

let gen_stats =
  let open QCheck.Gen in
  let n = 0 -- 10_000 in
  let* accepted = n and* completed = n and* failed = n and* rejected = n in
  let* queue_depth = n and* inflight = n in
  let* store_hits = n and* store_misses = n in
  return
    {
      Proto.accepted;
      completed;
      failed;
      rejected;
      queue_depth;
      inflight;
      store_hits;
      store_misses;
    }

let gen_cohort_info =
  let open QCheck.Gen in
  let* ci_name = gen_string in
  let* ci_shards = 0 -- 1000 and* ci_damaged = 0 -- 50 in
  let* ci_bytes = 0 -- 1_000_000 in
  let* ci_tags = list_size (0 -- 4) gen_string in
  let* ci_snapshot = bool in
  return
    { Cohort.ci_name; ci_shards; ci_damaged; ci_bytes; ci_tags; ci_snapshot }

let gen_response =
  let open QCheck.Gen in
  oneof
    [
      return Proto.Pong;
      return Proto.Shutting_down;
      (let* tag = gen_string in
       let* objects = list_size (0 -- 4) gen_string in
       let* report = gen_string in
       return (Proto.Built { tag; objects; report }));
      (let* tag = gen_string and* reason = gen_string in
       return (Proto.Rejected { tag; reason }));
      (let* tag = gen_string and* reason = gen_string in
       return (Proto.Failed { tag; reason }));
      map (fun s -> Proto.Stats_reply s) gen_stats;
      return Proto.Cache_miss;
      return Proto.Cache_stored;
      map (fun data -> Proto.Cache_hit { data }) gen_string;
      map (fun shards -> Proto.Profile_stored { shards }) (0 -- 10_000);
      (let* data = string_size (0 -- 80) in
       let* shards = 0 -- 1000 and* skipped = 0 -- 100 in
       return (Proto.Profile_db { data; shards; skipped }));
      map
        (fun cohorts -> Proto.Cohort_listing { cohorts })
        (list_size (0 -- 4) gen_cohort_info);
      (let* cohort = gen_string and* shards = 0 -- 1000 in
       return (Proto.Cohort_stored { cohort; shards }));
      (let* data = string_size (0 -- 80) in
       let* shards = 0 -- 1000 and* skipped = 0 -- 100 in
       return (Proto.Cohort_db { data; shards; skipped }));
      map (fun report -> Proto.Cohort_report { report }) (string_size (0 -- 80));
    ]

let arb_request =
  QCheck.make
    ~print:(fun r -> String.escaped (Proto.string_of_request r))
    gen_request

let arb_response =
  QCheck.make
    ~print:(fun r -> String.escaped (Proto.string_of_response r))
    gen_response

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"every request round-trips the wire codec" ~count:300
    arb_request (fun r ->
      Proto.request_of_string (Proto.string_of_request r) = Ok r)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"every response round-trips the wire codec"
    ~count:300 arb_response (fun r ->
      Proto.response_of_string (Proto.string_of_response r) = Ok r)

let qcheck_request_truncation =
  QCheck.Test.make ~name:"truncated requests decode to errors, never raise"
    ~count:200
    QCheck.(pair arb_request (float_bound_inclusive 1.0))
    (fun (r, frac) ->
      let s = Proto.string_of_request r in
      let k = int_of_float (frac *. float_of_int (String.length s)) in
      let k = min k (String.length s - 1) in
      k < 0
      ||
      match Proto.request_of_string (String.sub s 0 k) with
      | Ok _ -> false (* a strict prefix must not decode *)
      | Error _ -> true)

let qcheck_garbage_no_raise =
  QCheck.Test.make ~name:"arbitrary bytes never crash the decoders" ~count:300
    (QCheck.make QCheck.Gen.(string_size (0 -- 60)))
    (fun s ->
      (match Proto.request_of_string s with Ok _ | Error _ -> ());
      (match Proto.response_of_string s with Ok _ | Error _ -> ());
      true)

(* --- framing: torn / garbage / bit-flips through the CMR1 scan ----- *)

let test_frame_scan () =
  let f = Fsio.frame "hello server" in
  (match Fsio.scan_frame f ~pos:0 with
  | Fsio.Frame { payload; next } ->
    Alcotest.(check string) "payload" "hello server" payload;
    Alcotest.(check int) "next" (String.length f) next
  | _ -> Alcotest.fail "frame did not scan");
  (* Torn: every strict prefix is Need, never Frame, never Bad. *)
  for k = 0 to String.length f - 1 do
    match Fsio.scan_frame (String.sub f 0 k) ~pos:0 with
    | Fsio.Need n -> Alcotest.(check bool) "need positive" true (n > 0)
    | Fsio.Frame _ -> Alcotest.failf "prefix %d scanned as a whole frame" k
    | Fsio.Bad _ -> Alcotest.failf "prefix %d scanned as Bad, not Need" k
  done;
  (* Any single bit flip is Bad (magic or CRC catches it). *)
  for i = 0 to String.length f - 1 do
    match Fsio.scan_frame (Helpers.flip_byte f i 0x40) ~pos:0 with
    | Fsio.Bad _ -> ()
    | Fsio.Frame _ -> Alcotest.failf "bit flip at %d went undetected" i
    | Fsio.Need _ ->
      (* Flipping a length byte can turn the frame into a longer,
         still-incomplete one; acceptable only past the magic. *)
      if i < 4 then Alcotest.failf "magic flip at %d read as Need" i
  done

let test_valid_prefix () =
  let a = Fsio.frame "one" and b = Fsio.frame "two" in
  let torn = String.sub (Fsio.frame "three") 0 7 in
  let whole = a ^ b in
  Alcotest.(check int) "whole stream" (String.length whole)
    (Fsio.valid_prefix_string whole);
  Alcotest.(check int) "torn tail ignored" (String.length whole)
    (Fsio.valid_prefix_string (whole ^ torn));
  Alcotest.(check int) "garbage stops the scan at zero" 0
    (Fsio.valid_prefix_string ("XXXX" ^ whole))

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_read_message () =
  (* Round trip. *)
  with_socketpair (fun a b ->
      Proto.write_message a "payload bytes";
      match Proto.read_message b with
      | Ok p -> Alcotest.(check string) "round trip" "payload bytes" p
      | Error _ -> Alcotest.fail "read_message failed on a good frame");
  (* Clean close between messages is Eof. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Proto.read_message b with
      | Error `Eof -> ()
      | _ -> Alcotest.fail "clean close was not Eof");
  (* Garbage bytes are a framing violation. *)
  with_socketpair (fun a b ->
      let junk = "NOPE this is not a frame at all........" in
      ignore (Unix.write_substring a junk 0 (String.length junk));
      Unix.close a;
      match Proto.read_message b with
      | Error (`Bad _) -> ()
      | Ok _ -> Alcotest.fail "garbage decoded as a message"
      | Error `Eof -> Alcotest.fail "garbage read as clean Eof");
  (* A short read — close mid-frame — is Bad, not Eof: the peer died
     inside a message. *)
  with_socketpair (fun a b ->
      let f = Fsio.frame "cut off" in
      ignore (Unix.write_substring a f 0 7);
      Unix.close a;
      match Proto.read_message b with
      | Error (`Bad _) -> ()
      | Ok _ | Error `Eof -> Alcotest.fail "torn frame not reported as Bad")

(* --- the scheduler ------------------------------------------------- *)

let test_sched_admission () =
  let q = Sched.create ~queue_max:2 () in
  Alcotest.(check bool) "first admitted" true (Sched.submit q ~cost:1 "a");
  Alcotest.(check bool) "second admitted" true (Sched.submit q ~cost:1 "b");
  Alcotest.(check bool) "third refused" false (Sched.submit q ~cost:1 "c");
  Alcotest.(check (option string)) "drain one" (Some "a") (Sched.take q);
  Alcotest.(check bool) "slot freed" true (Sched.submit q ~cost:1 "c")

let test_sched_aging () =
  let q = Sched.create ~small_cost:10 ~age_rounds:2 ~queue_max:16 () in
  Alcotest.(check bool) "big admitted" true (Sched.submit q ~cost:100 "big");
  List.iter
    (fun s -> assert (Sched.submit q ~cost:1 s))
    [ "s1"; "s2"; "s3"; "s4" ];
  (* Small class dispatches first, FIFO; after two dispatches the big
     entry has aged into the interactive class and its lower seq wins. *)
  let order = List.init 5 (fun _ -> Option.get (Sched.take q)) in
  Alcotest.(check (list string))
    "FIFO with aging" [ "s1"; "s2"; "big"; "s3"; "s4" ] order

(* The scheduler's fairness contract under random traffic, checked
   against a reference model: admission refuses exactly at the bound;
   an admitted entry is dispatched within [age_rounds + queue_max]
   dispatches of joining (after [age_rounds] passes it is promoted to
   the interactive class, behind at most the [queue_max] entries
   already queued — nothing that arrives later can cut ahead); and
   two entries of the same cost class never dispatch out of
   submission order. *)
let qcheck_sched_no_starvation =
  let gen =
    QCheck.Gen.(
      list_size (10 -- 120)
        (frequency
           [ (2, return `Small); (2, return `Big); (3, return `Take) ]))
  in
  let print ops =
    String.concat ""
      (List.map (function `Small -> "s" | `Big -> "B" | `Take -> ".") ops)
  in
  QCheck.Test.make
    ~name:"sched: random two-class arrivals stay bounded and ordered"
    ~count:100 (QCheck.make ~print gen)
    (fun ops ->
      let queue_max = 8 and age_rounds = 3 in
      let q = Sched.create ~small_cost:10 ~age_rounds ~queue_max () in
      let next_id = ref 0 in
      (* Oldest first: (id, big, dispatches seen while queued). *)
      let queued = ref [] in
      let dispatch_one () =
        match Sched.take q with
        | None ->
          QCheck.Test.fail_report "take returned None with entries queued"
        | Some (id, big) ->
          (match List.find_opt (fun (i, _, _) -> i = id) !queued with
          | None ->
            QCheck.Test.fail_reportf "dispatched unknown entry %d" id
          | Some (_, _, waits) ->
            if waits > age_rounds + queue_max then
              QCheck.Test.fail_reportf
                "entry %d waited %d dispatches (bound %d)" id waits
                (age_rounds + queue_max));
          (match List.find_opt (fun (_, b, _) -> b = big) !queued with
          | Some (oldest, _, _) when oldest <> id ->
            QCheck.Test.fail_reportf
              "same-class reorder: %d dispatched before %d" id oldest
          | _ -> ());
          queued :=
            List.filter_map
              (fun (i, b, w) ->
                if i = id then None else Some (i, b, w + 1))
              !queued
      in
      List.iter
        (function
          | (`Small | `Big) as cls ->
            let big = cls = `Big in
            let id = !next_id in
            incr next_id;
            let admitted =
              Sched.submit q ~cost:(if big then 100 else 1) (id, big)
            in
            if admitted <> (List.length !queued < queue_max) then
              QCheck.Test.fail_reportf
                "admission of %d disagrees with the depth bound" id;
            if admitted then queued := !queued @ [ (id, big, 0) ]
          | `Take -> if !queued <> [] then dispatch_one ())
        ops;
      (* Close and drain: everything admitted still dispatches, under
         the same bound and ordering. *)
      Sched.close q;
      while !queued <> [] do
        dispatch_one ()
      done;
      Sched.take q = None)

let test_sched_close_drains () =
  let q = Sched.create ~queue_max:4 () in
  assert (Sched.submit q ~cost:1 "a");
  assert (Sched.submit q ~cost:1 "b");
  Sched.close q;
  Alcotest.(check bool) "closed refuses" false (Sched.submit q ~cost:1 "c");
  Alcotest.(check (option string)) "drains a" (Some "a") (Sched.take q);
  Alcotest.(check (option string)) "drains b" (Some "b") (Sched.take q);
  Alcotest.(check (option string)) "then empty" None (Sched.take q);
  Alcotest.(check bool) "reports closed" true (Sched.closed q)

(* --- Buildsys sessions --------------------------------------------- *)

let session_sources =
  [
    {
      Pipeline.name = "sv_main";
      text =
        {|
        func main() {
          var s = 0;
          var i = 0;
          while (i < 10) { s = s + step(i, s); i = i + 1; }
          print(s);
          return s & 255;
        }
        |};
    };
    {
      Pipeline.name = "sv_lib";
      text =
        {|
        static func scale(v) { return v * 5 + 2; }
        func step(x, acc) { return (acc / 4) + scale(x); }
        |};
    };
  ]

let test_session_warm () =
  with_dir @@ fun dir ->
  let ws = Buildsys.create ~dir () in
  let s = Buildsys.open_session ~naim:true ws in
  Fun.protect ~finally:(fun () -> Buildsys.close_session s) @@ fun () ->
  let o4 = { Options.o4 with Options.jobs = 1 } in
  let r1 = Buildsys.request s o4 session_sources in
  let r2 = Buildsys.request s o4 session_sources in
  Alcotest.(check bool) "warm request byte-identical" true
    (r1.Buildsys.build.Pipeline.objects = r2.Buildsys.build.Pipeline.objects);
  (match r2.Buildsys.build.Pipeline.report.Pipeline.cache with
  | Some c ->
    Alcotest.(check bool) "warm request hits the store" true
      (c.Pipeline.hits > 0);
    Alcotest.(check int) "warm request misses nothing" 0 c.Pipeline.misses
  | None -> Alcotest.fail "session build carried no cache report");
  (* Close is idempotent; a request after close is an error. *)
  Buildsys.close_session s;
  match Buildsys.request s o4 session_sources with
  | _ -> Alcotest.fail "request on a closed session succeeded"
  | exception Invalid_argument _ -> ()

(* --- end to end ---------------------------------------------------- *)

let test_end_to_end () =
  with_dir @@ fun dir ->
  let config =
    {
      Server.socket = Filename.concat dir "cmocd.sock";
      builders = 2;
      queue_max = 8;
      state_dir = Filename.concat dir "state";
      cache_capacity = None;
      trace = None;
    }
  in
  let oracle =
    List.map Objfile.encode
      (Pipeline.compile
         { Options.o4 with Options.jobs = 1 }
         session_sources)
        .Pipeline.objects
  in
  let t = Server.start config in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        Server.shutdown t;
        Server.wait t
      end)
  @@ fun () ->
  Client.with_connect ~socket:config.Server.socket (fun conn ->
      Alcotest.(check bool) "ping" true (Client.ping conn);
      let req ?fault tag =
        {
          Proto.tag;
          level = Options.O4;
          pbo = false;
          jobs = 1;
          check = false;
          fault;
          sources = session_sources;
        }
      in
      (match Client.build conn (req "cold") with
      | Proto.Built { objects; _ } ->
        Alcotest.(check bool) "cold build matches one-shot" true
          (objects = oracle)
      | _ -> Alcotest.fail "cold build did not complete");
      (match Client.build conn (req "warm") with
      | Proto.Built { objects; _ } ->
        Alcotest.(check bool) "warm build matches one-shot" true
          (objects = oracle)
      | _ -> Alcotest.fail "warm build did not complete");
      let st = Client.stats conn in
      Alcotest.(check bool) "warm traffic visible in stats" true
        (st.Proto.store_hits > 0);
      (* The remote artifact cache, inline on the same connection:
         misses are clean, puts round-trip, and the degrading [remote]
         wrapper exposes both without ever raising. *)
      Alcotest.(check (option string)) "cache_get miss" None
        (Client.cache_get conn "no-such-fingerprint");
      Client.cache_put conn "dist-key" "dist-bytes";
      Alcotest.(check (option string)) "cache_put then hit"
        (Some "dist-bytes")
        (Client.cache_get conn "dist-key");
      let remote = Client.remote conn in
      Alcotest.(check (option string)) "remote wrapper hit"
        (Some "dist-bytes")
        (remote.Cmo_driver.Distwork.remote_get "dist-key");
      Alcotest.(check (option string)) "remote wrapper miss" None
        (remote.Cmo_driver.Distwork.remote_get "still-absent");
      (* A second daemon on the same socket must refuse to start
         rather than hijack this one's socket file. *)
      (match Server.start config with
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
      | exception e ->
        Alcotest.fail
          ("second daemon failed oddly: " ^ Printexc.to_string e)
      | t2 ->
        Server.shutdown t2;
        Server.wait t2;
        Alcotest.fail "second daemon hijacked a live socket");
      (* A crash plan kills its own request only. *)
      (match Client.build conn (req ~fault:"crash@2,seed=5" "chaos") with
      | Proto.Failed _ -> ()
      | Proto.Built _ -> Alcotest.fail "crash plan never fired"
      | _ -> Alcotest.fail "chaos request got an unexpected reply");
      (match Client.build conn (req "retry") with
      | Proto.Built { objects; _ } ->
        Alcotest.(check bool) "post-crash retry byte-identical" true
          (objects = oracle)
      | _ -> Alcotest.fail "daemon stopped serving after a crash request");
      (* The chaos reopen must not reset the cumulative counters. *)
      let st' = Client.stats conn in
      Alcotest.(check bool) "store hits cumulative across chaos" true
        (st'.Proto.store_hits >= st.Proto.store_hits);
      (* Profile cohorts, inline on the same connection: a daemon pull
         must be byte-identical to a local ingest of the same shards,
         and bad names or garbage shards are refused without hurting
         the connection. *)
      let shard seed count =
        let db = Db.create () in
        Db.add db (Db.Fentry "main") count;
        Db.add db (Db.Block ("main", seed)) (2.0 *. count);
        Ingest.encode_shard
          {
            Ingest.meta =
              {
                Ingest.source_fp = "fp-e2e";
                sample_rate = 1.0;
                weight = 1.0;
                age = 0;
              };
            db;
          }
      in
      let s1 = shard 1 100.0 and s2 = shard 2 50.0 in
      Alcotest.(check int) "cohort create via empty ingest" 0
        (Client.cohort_ingest conn ~cohort:"stable" []);
      Alcotest.(check int) "cohort ingest counts shards" 2
        (Client.cohort_ingest conn ~cohort:"stable" [ s1; s2 ]);
      (match Client.cohort_list conn with
      | [ info ] ->
        Alcotest.(check string) "cohort listed" "stable" info.Cohort.ci_name;
        Alcotest.(check int) "cohort shard count" 2 info.Cohort.ci_shards
      | l -> Alcotest.failf "cohort list returned %d entries" (List.length l));
      let data, merged, skipped =
        Client.cohort_pull conn ~cohort:"stable" ~current_fp:"fp-e2e"
      in
      Alcotest.(check int) "pull merges both shards" 2 merged;
      Alcotest.(check int) "pull skips nothing" 0 skipped;
      let local, _ =
        Ingest.ingest
          ~policy:(Ingest.default_policy ~current_fp:"fp-e2e")
          (List.map Ingest.decode_shard [ s1; s2 ])
      in
      Alcotest.(check bool) "daemon pull equals local ingest" true
        (data = Db.encode local);
      (match Client.cohort_ingest conn ~cohort:"../escape" [] with
      | _ -> Alcotest.fail "path-escaping cohort name accepted"
      | exception Client.Protocol_error _ -> ());
      (match Client.cohort_ingest conn ~cohort:"stable" [ "garbage" ] with
      | _ -> Alcotest.fail "garbage shard accepted"
      | exception Client.Protocol_error _ -> ());
      (* The connection survives the refusals, and a diff of a cohort
         against itself on this program is a clean no-flip. *)
      let r =
        Client.cohort_diff conn ~base:"stable" ~canary:"stable" ~percent:20.0
          ~threshold:0.02 session_sources
      in
      Alcotest.(check bool) "self-diff is no-flip with empty deltas" true
        (r.Cohort.Diff.r_verdict = Cohort.Diff.No_flip
        && r.Cohort.Diff.r_mod_in = []
        && r.Cohort.Diff.r_mod_out = []);
      Client.shutdown_server conn);
  Server.wait t;
  finished := true;
  Alcotest.(check bool) "socket removed on shutdown" false
    (Sys.file_exists config.Server.socket)

(* The same daemon over the multi-machine transport: a [tcp:] socket
   with an ephemeral port, the actual address read back from
   {!Server.address}, and the whole client surface (ping, builds
   byte-identical to a one-shot, the remote artifact cache) unchanged
   — the transport is a deployment detail.  A second daemon on the
   bound port is refused by the kernel, and shutdown leaves no socket
   file behind because there never was one. *)
let test_end_to_end_tcp () =
  with_dir @@ fun dir ->
  let config =
    {
      Server.socket = "tcp:127.0.0.1:0";
      builders = 2;
      queue_max = 8;
      state_dir = Filename.concat dir "state";
      cache_capacity = None;
      trace = None;
    }
  in
  let oracle =
    List.map Objfile.encode
      (Pipeline.compile
         { Options.o4 with Options.jobs = 1 }
         session_sources)
        .Pipeline.objects
  in
  let t = Server.start config in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        Server.shutdown t;
        Server.wait t
      end)
  @@ fun () ->
  let address = Server.address t in
  Alcotest.(check bool) "ephemeral port resolved"
    true
    (String.length address > String.length "tcp:127.0.0.1:"
    && String.sub address 0 14 = "tcp:127.0.0.1:"
    && address <> config.Server.socket);
  Client.with_connect ~socket:address (fun conn ->
      Alcotest.(check bool) "ping over tcp" true (Client.ping conn);
      let req tag =
        {
          Proto.tag;
          level = Options.O4;
          pbo = false;
          jobs = 1;
          check = false;
          fault = None;
          sources = session_sources;
        }
      in
      (match Client.build conn (req "tcp-cold") with
      | Proto.Built { objects; _ } ->
        Alcotest.(check bool) "tcp build matches one-shot" true
          (objects = oracle)
      | _ -> Alcotest.fail "tcp build did not complete");
      Alcotest.(check (option string)) "tcp cache_get miss" None
        (Client.cache_get conn "no-such-fingerprint");
      Client.cache_put conn "tcp-key" "tcp-bytes";
      Alcotest.(check (option string)) "tcp cache roundtrip"
        (Some "tcp-bytes")
        (Client.cache_get conn "tcp-key");
      (* The bound port is taken: a second daemon must fail to bind,
         not silently serve from somewhere else. *)
      (match
         Server.start
           { config with Server.socket = address;
             state_dir = Filename.concat dir "state2" }
       with
      | exception Sys_error _ -> ()
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
      | t2 ->
        Server.shutdown t2;
        Server.wait t2;
        Alcotest.fail "second daemon bound a live tcp port");
      Client.shutdown_server conn);
  Server.wait t;
  finished := true

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_request_truncation;
    QCheck_alcotest.to_alcotest qcheck_garbage_no_raise;
    Alcotest.test_case "CMR1 frame scan: torn and flipped" `Quick
      test_frame_scan;
    Alcotest.test_case "valid prefix over a frame stream" `Quick
      test_valid_prefix;
    Alcotest.test_case "read_message: eof, garbage, short read" `Quick
      test_read_message;
    Alcotest.test_case "sched: bounded admission" `Quick test_sched_admission;
    Alcotest.test_case "sched: FIFO with aging" `Quick test_sched_aging;
    Alcotest.test_case "sched: close drains" `Quick test_sched_close_drains;
    Helpers.to_alcotest qcheck_sched_no_starvation;
    Alcotest.test_case "buildsys session: warm store, closed errors" `Quick
      test_session_warm;
    Alcotest.test_case "daemon end to end over a socket" `Quick
      test_end_to_end;
    Alcotest.test_case "daemon end to end over tcp" `Quick test_end_to_end_tcp;
  ]
